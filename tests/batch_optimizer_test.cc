#include "service/batch_optimizer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "baselines/dp.h"
#include "core/rmq.h"
#include "service/cooperative_scheduler.h"
#include "service/thread_pool.h"

namespace moqo {
namespace {

OptimizerFactory RmqFactory(int max_iterations) {
  return [max_iterations] {
    RmqConfig config;
    config.max_iterations = max_iterations;
    return std::make_unique<Rmq>(config);
  };
}

std::vector<BatchTask> SmallBatch(int n, int tables,
                                  int64_t deadline_micros = 0) {
  GeneratorConfig generator;
  generator.num_tables = tables;
  return GenerateBatch(n, generator, /*master_seed=*/2016, deadline_micros);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  pool.Wait();  // empty pool: returns immediately
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(GenerateBatchTest, IsDeterministicAndFansOutSeeds) {
  std::vector<BatchTask> a = SmallBatch(5, 6);
  std::vector<BatchTask> b = SmallBatch(5, 6);
  ASSERT_EQ(a.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a[static_cast<size_t>(i)].seed, b[static_cast<size_t>(i)].seed);
    for (int j = 0; j < i; ++j) {
      EXPECT_NE(a[static_cast<size_t>(i)].seed,
                a[static_cast<size_t>(j)].seed);
    }
  }
}

TEST(BatchOptimizerTest, EmptyBatchReturnsEmptyReport) {
  BatchConfig config;
  config.num_threads = 4;
  BatchOptimizer batch(config, RmqFactory(10));
  BatchReport report = batch.Run({});
  EXPECT_TRUE(report.tasks.empty());
  EXPECT_EQ(report.total_frontier, 0u);
  EXPECT_EQ(report.max_frontier, 0u);
}

// The core determinism guarantee: identical task seeds and iteration budgets
// produce bitwise-identical frontiers regardless of the thread count.
TEST(BatchOptimizerTest, FrontiersIdenticalAcrossThreadCounts) {
  std::vector<BatchTask> tasks = SmallBatch(8, 6);

  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(25)).Run(tasks);

  BatchConfig parallel;
  parallel.num_threads = 8;
  BatchReport wide = BatchOptimizer(parallel, RmqFactory(25)).Run(tasks);

  ASSERT_EQ(reference.tasks.size(), wide.tasks.size());
  for (const BatchTaskResult& task : reference.tasks) {
    EXPECT_FALSE(task.frontier.empty());
  }
  BatchComparison cmp = CompareToReference(reference, wide);
  EXPECT_TRUE(cmp.identical);
  EXPECT_DOUBLE_EQ(cmp.max_alpha, 1.0);
  EXPECT_DOUBLE_EQ(cmp.mean_alpha, 1.0);
}

TEST(BatchOptimizerTest, RepeatedRunsAreDeterministic) {
  std::vector<BatchTask> tasks = SmallBatch(4, 6);
  BatchConfig config;
  config.num_threads = 3;
  BatchOptimizer batch(config, RmqFactory(15));
  BatchComparison cmp = CompareToReference(batch.Run(tasks), batch.Run(tasks));
  EXPECT_TRUE(cmp.identical);
}

// A task with a wall-clock deadline must return promptly once it expires,
// even mid-optimization on a large query. The slack absorbs scheduler noise
// and sanitizer overhead; it is far below the runtime of an unbounded run.
TEST(BatchOptimizerTest, HonorsTaskDeadlines) {
  constexpr int64_t kDeadlineMicros = 100 * 1000;
  std::vector<BatchTask> tasks = SmallBatch(4, 18, kDeadlineMicros);
  BatchConfig config;
  config.num_threads = 2;
  BatchOptimizer batch(config, RmqFactory(/*max_iterations=*/0));
  BatchReport report = batch.Run(tasks);
  ASSERT_EQ(report.tasks.size(), 4u);
  for (const BatchTaskResult& task : report.tasks) {
    EXPECT_TRUE(task.had_deadline);
    EXPECT_LT(task.optimize_millis, 2000.0);
  }
}

// hold_full_window keeps each slot occupied for the full optimization
// window: two windows on one thread take at least two windows of wall time.
TEST(BatchOptimizerTest, HoldFullWindowOccupiesSlotUntilDeadline) {
  constexpr int64_t kWindowMicros = 50 * 1000;
  std::vector<BatchTask> tasks = SmallBatch(2, 4, kWindowMicros);
  BatchConfig config;
  config.num_threads = 1;
  config.hold_full_window = true;
  BatchOptimizer batch(config, RmqFactory(1));
  BatchReport report = batch.Run(tasks);
  EXPECT_GE(report.wall_millis, 95.0);
  for (const BatchTaskResult& task : report.tasks) {
    EXPECT_GE(task.elapsed_millis, 45.0);
    EXPECT_GE(task.elapsed_millis, task.optimize_millis);
  }
}

TEST(BatchOptimizerTest, ReportAggregatesFrontierSizes) {
  std::vector<BatchTask> tasks = SmallBatch(3, 5);
  BatchConfig config;
  BatchOptimizer batch(config, RmqFactory(10));
  BatchReport report = batch.Run(tasks);
  size_t total = 0;
  size_t max = 0;
  for (const BatchTaskResult& task : report.tasks) {
    total += task.frontier.size();
    max = std::max(max, task.frontier.size());
  }
  EXPECT_EQ(report.total_frontier, total);
  EXPECT_EQ(report.max_frontier, max);
  EXPECT_GT(report.total_frontier, 0u);
  EXPECT_FALSE(report.Summary().empty());
}

TEST(PercentileTest, NearestRank) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 0.5), 5.0);
  std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.95), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 4.0);
}

// Regression: an empty sample — e.g. every submission of a batch bounced
// off a full admission window under AdmissionPolicy::kReject, so no
// optimize-time was ever recorded — must yield 0.0 at every quantile, not
// an out-of-bounds read.
TEST(PercentileTest, EmptySampleIsZeroAtEveryQuantile) {
  for (double q : {0.0, 0.5, 0.95, 1.0, -3.0, 7.0}) {
    EXPECT_DOUBLE_EQ(Percentile({}, q), 0.0) << "q=" << q;
  }
  // Aggregating a report with no tasks exercises the same path.
  BatchReport empty;
  empty.Aggregate();
  EXPECT_DOUBLE_EQ(empty.p50_optimize_millis, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95_optimize_millis, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_frontier, 0.0);
  EXPECT_DOUBLE_EQ(empty.deadline_hit_rate, 1.0);
  EXPECT_FALSE(empty.Summary().empty());
}

// A report whose every slot was migrated away aggregates like an empty one
// (the destination scheduler reports those tasks).
TEST(BatchReportTest, MigratedSlotsAreExcludedFromAggregates) {
  BatchReport report;
  BatchTaskResult stub;
  stub.index = 0;
  stub.migrated = true;
  stub.had_deadline = true;
  stub.optimize_millis = 123.0;
  report.tasks.push_back(stub);
  BatchTaskResult real;
  real.index = 1;
  real.optimize_millis = 2.0;
  real.frontier.resize(3);
  report.tasks.push_back(real);
  report.Aggregate();
  EXPECT_EQ(report.migrated_tasks, 1u);
  EXPECT_EQ(report.deadline_tasks, 0u);
  EXPECT_EQ(report.total_frontier, 3u);
  EXPECT_DOUBLE_EQ(report.mean_frontier, 3.0);
  EXPECT_DOUBLE_EQ(report.p50_optimize_millis, 2.0);
  EXPECT_NE(report.Summary().find("migrated away: 1"), std::string::npos);
}

// A gave-up run (DP abandoning an oversized query) must never be recorded
// as a deadline hit, even though its session reports Done well inside the
// window. Regression for the hit-rate bug where a 25-table DP task counted
// as a hit with an empty frontier.
TEST(BatchOptimizerTest, GaveUpDpRunIsNeverADeadlineHit) {
  GeneratorConfig generator;
  generator.num_tables = 25;  // beyond DpConfig::max_tables
  std::vector<BatchTask> tasks =
      GenerateBatch(1, generator, /*master_seed=*/3, /*deadline_micros=*/
                    60 * 1000 * 1000);
  BatchConfig config;
  BatchReport report = BatchOptimizer(config, [] {
                         return std::make_unique<DpOptimizer>();
                       }).Run(tasks);
  ASSERT_EQ(report.tasks.size(), 1u);
  EXPECT_TRUE(report.tasks[0].gave_up);
  EXPECT_TRUE(report.tasks[0].frontier.empty());
  EXPECT_TRUE(report.tasks[0].had_deadline);
  EXPECT_FALSE(report.tasks[0].deadline_hit);
  EXPECT_EQ(report.deadline_tasks, 1u);
  EXPECT_EQ(report.deadline_hits, 0u);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 0.0);
}

TEST(BatchReportTest, SummaryReportsPercentilesAndTotals) {
  BatchReport report;
  report.num_threads = 2;
  report.wall_millis = 10.0;
  for (int i = 0; i < 4; ++i) {
    BatchTaskResult task;
    task.index = i;
    task.optimize_millis = static_cast<double>(i + 1);
    task.frontier.resize(static_cast<size_t>(i));
    report.tasks.push_back(std::move(task));
  }
  report.Aggregate();
  EXPECT_EQ(report.total_frontier, 6u);
  EXPECT_EQ(report.max_frontier, 3u);
  EXPECT_DOUBLE_EQ(report.mean_frontier, 1.5);
  EXPECT_DOUBLE_EQ(report.p50_optimize_millis, 2.0);
  EXPECT_DOUBLE_EQ(report.p95_optimize_millis, 4.0);

  std::string summary = report.Summary();
  EXPECT_NE(summary.find("4 tasks on 2 thread(s)"), std::string::npos);
  EXPECT_NE(summary.find("p50 2"), std::string::npos);
  EXPECT_NE(summary.find("p95 4"), std::string::npos);
}

// The cooperative scheduler must produce frontiers bitwise identical to a
// blocking single-thread run of the same iteration-bounded tasks — the
// end-to-end determinism contract spanning sessions and multiplexing.
TEST(CooperativeSchedulerTest, MatchesBlockingBatchReference) {
  std::vector<BatchTask> tasks = SmallBatch(8, 6);

  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(25)).Run(tasks);

  CooperativeConfig coop;
  coop.num_threads = 4;
  coop.steps_per_slice = 3;
  BatchReport multiplexed =
      CooperativeScheduler(coop, RmqFactory(25)).Run(tasks);

  ASSERT_EQ(multiplexed.tasks.size(), tasks.size());
  BatchComparison cmp = CompareToReference(reference, multiplexed);
  EXPECT_TRUE(cmp.identical);
  EXPECT_DOUBLE_EQ(cmp.max_alpha, 1.0);
  for (const BatchTaskResult& task : multiplexed.tasks) {
    EXPECT_FALSE(task.frontier.empty());
    EXPECT_EQ(task.steps, 25);
    EXPECT_GE(task.elapsed_millis, task.optimize_millis);
  }
}

TEST(CooperativeSchedulerTest, DeterministicAcrossThreadsAndSliceSizes) {
  std::vector<BatchTask> tasks = SmallBatch(6, 6);

  CooperativeConfig narrow;
  narrow.num_threads = 1;
  narrow.steps_per_slice = 1;
  BatchReport a = CooperativeScheduler(narrow, RmqFactory(15)).Run(tasks);

  CooperativeConfig wide;
  wide.num_threads = 8;
  wide.steps_per_slice = 4;
  BatchReport b = CooperativeScheduler(wide, RmqFactory(15)).Run(tasks);

  BatchComparison cmp = CompareToReference(a, b);
  EXPECT_TRUE(cmp.identical);
}

TEST(CooperativeSchedulerTest, EmptyBatchReturnsEmptyReport) {
  CooperativeConfig config;
  config.num_threads = 4;
  BatchReport report = CooperativeScheduler(config, RmqFactory(5)).Run({});
  EXPECT_TRUE(report.tasks.empty());
  EXPECT_EQ(report.total_frontier, 0u);
}

// A deadline-bounded task with an unbounded optimizer must be finalized
// once its wall-clock window (started at admission) expires.
TEST(CooperativeSchedulerTest, HonorsTaskDeadlines) {
  constexpr int64_t kDeadlineMicros = 100 * 1000;
  std::vector<BatchTask> tasks = SmallBatch(4, 18, kDeadlineMicros);
  CooperativeConfig config;
  config.num_threads = 2;
  CooperativeScheduler scheduler(config, RmqFactory(/*max_iterations=*/0));
  Stopwatch watch;
  BatchReport report = scheduler.Run(tasks);
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
  ASSERT_EQ(report.tasks.size(), 4u);
  for (const BatchTaskResult& task : report.tasks) {
    EXPECT_TRUE(task.had_deadline);
    EXPECT_GT(task.elapsed_millis, 0.0);
  }
}

TEST(CanonicalFrontierTest, SortsLexicographically) {
  // CanonicalFrontier is what makes bitwise comparison order-insensitive;
  // verify the ordering contract directly on cost vectors via a batch run.
  std::vector<BatchTask> tasks = SmallBatch(1, 6);
  BatchConfig config;
  BatchOptimizer batch(config, RmqFactory(20));
  BatchReport report = batch.Run(tasks);
  ASSERT_EQ(report.tasks.size(), 1u);
  const std::vector<CostVector>& frontier = report.tasks[0].frontier;
  for (size_t i = 1; i < frontier.size(); ++i) {
    const CostVector& prev = frontier[i - 1];
    const CostVector& cur = frontier[i];
    bool less_or_equal = prev[0] < cur[0] ||
                         (prev[0] == cur[0] && prev[1] <= cur[1]);
    EXPECT_TRUE(less_or_equal) << "frontier not in canonical order at " << i;
  }
}

}  // namespace
}  // namespace moqo
