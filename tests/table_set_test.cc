#include "common/table_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace moqo {
namespace {

TEST(TableSetTest, EmptyByDefault) {
  TableSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.Min(), -1);
  EXPECT_EQ(s.Max(), -1);
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(TableSetTest, AddRemoveContains) {
  TableSet s;
  s.Add(5);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 1);
  s.Remove(5);
  EXPECT_FALSE(s.Contains(5));
  EXPECT_TRUE(s.Empty());
}

TEST(TableSetTest, ContainsOutOfRangeIsFalse) {
  TableSet s = TableSet::FirstN(10);
  EXPECT_FALSE(s.Contains(-1));
  EXPECT_FALSE(s.Contains(TableSet::kCapacity));
  EXPECT_FALSE(s.Contains(1000));
}

TEST(TableSetTest, SingletonAndFirstN) {
  TableSet s = TableSet::Singleton(77);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(77));

  TableSet f = TableSet::FirstN(100);
  EXPECT_EQ(f.Count(), 100);
  EXPECT_TRUE(f.Contains(0));
  EXPECT_TRUE(f.Contains(99));
  EXPECT_FALSE(f.Contains(100));
}

TEST(TableSetTest, WorksAcrossWordBoundaries) {
  TableSet s;
  for (int t : {0, 63, 64, 127, 128, 191, 192, 255}) s.Add(t);
  EXPECT_EQ(s.Count(), 8);
  for (int t : {0, 63, 64, 127, 128, 191, 192, 255}) {
    EXPECT_TRUE(s.Contains(t)) << t;
  }
  EXPECT_EQ(s.Min(), 0);
  EXPECT_EQ(s.Max(), 255);
}

TEST(TableSetTest, UnionIntersectMinus) {
  TableSet a = TableSet::FirstN(10);   // {0..9}
  TableSet b;
  for (int i = 5; i < 15; ++i) b.Add(i);  // {5..14}

  TableSet u = a.Union(b);
  EXPECT_EQ(u.Count(), 15);

  TableSet i = a.Intersect(b);
  EXPECT_EQ(i.Count(), 5);
  EXPECT_TRUE(i.Contains(5));
  EXPECT_FALSE(i.Contains(4));

  TableSet m = a.Minus(b);
  EXPECT_EQ(m.Count(), 5);
  EXPECT_TRUE(m.Contains(0));
  EXPECT_FALSE(m.Contains(5));
}

TEST(TableSetTest, SubsetAndDisjoint) {
  TableSet a = TableSet::FirstN(5);
  TableSet b = TableSet::FirstN(10);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));

  TableSet c;
  c.Add(200);
  EXPECT_TRUE(a.DisjointWith(c));
  EXPECT_FALSE(a.DisjointWith(b));
}

TEST(TableSetTest, MinMax) {
  TableSet s;
  s.Add(42);
  s.Add(17);
  s.Add(130);
  EXPECT_EQ(s.Min(), 17);
  EXPECT_EQ(s.Max(), 130);
}

TEST(TableSetTest, ForEachVisitsInIncreasingOrder) {
  TableSet s;
  for (int t : {3, 70, 140, 9, 255}) s.Add(t);
  std::vector<int> seen;
  s.ForEach([&](int t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<int>{3, 9, 70, 140, 255}));
}

TEST(TableSetTest, EqualityAndHash) {
  TableSet a = TableSet::FirstN(20);
  TableSet b = TableSet::FirstN(20);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Add(100);
  EXPECT_NE(a, b);
}

TEST(TableSetTest, HashDistributesDistinctSingletons) {
  std::unordered_set<size_t> hashes;
  for (int t = 0; t < TableSet::kCapacity; ++t) {
    hashes.insert(TableSet::Singleton(t).Hash());
  }
  // All 256 singleton hashes should be distinct for a reasonable mixer.
  EXPECT_EQ(hashes.size(), static_cast<size_t>(TableSet::kCapacity));
}

TEST(TableSetTest, ToStringFormat) {
  TableSet s;
  s.Add(0);
  s.Add(3);
  s.Add(7);
  EXPECT_EQ(s.ToString(), "{0,3,7}");
}

class TableSetSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(TableSetSizeTest, FirstNInvariants) {
  int n = GetParam();
  TableSet s = TableSet::FirstN(n);
  EXPECT_EQ(s.Count(), n);
  if (n > 0) {
    EXPECT_EQ(s.Min(), 0);
    EXPECT_EQ(s.Max(), n - 1);
  }
  EXPECT_TRUE(s.IsSubsetOf(TableSet::FirstN(TableSet::kCapacity)));
  // Union with itself is identity; intersection with empty is empty.
  EXPECT_EQ(s.Union(s), s);
  EXPECT_TRUE(s.Intersect(TableSet()).Empty());
  EXPECT_EQ(s.Minus(TableSet()), s);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableSetSizeTest,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 100, 128, 200,
                                           255, 256));

}  // namespace
}  // namespace moqo
