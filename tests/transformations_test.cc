#include "plan/transformations.h"

#include <gtest/gtest.h>

#include <set>

#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer, Metric::kDisk}),
        factory(query, &model) {}
};

TEST(TransformationsTest, ScanMutationsAreOperatorSwaps) {
  Fixture fx(5, 1);  // seed 1: mixed index availability
  for (int t = 0; t < 5; ++t) {
    PlanPtr scan = fx.factory.MakeScan(t, ScanAlgorithm::kFullScan);
    std::vector<PlanPtr> muts = RootMutations(scan, &fx.factory);
    size_t applicable = fx.factory.ApplicableScans(t).size();
    EXPECT_EQ(muts.size(), applicable - 1);
    for (const PlanPtr& m : muts) {
      EXPECT_FALSE(m->IsJoin());
      EXPECT_EQ(m->table(), t);
      EXPECT_NE(m->scan_op(), ScanAlgorithm::kFullScan);
    }
  }
}

TEST(TransformationsTest, JoinRootMutationCountForScanChildren) {
  Fixture fx(5);
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr join = fx.factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  std::vector<PlanPtr> muts = RootMutations(join, &fx.factory);
  // 7 operator swaps + 1 commutativity; no associativity (children are
  // scans).
  EXPECT_EQ(muts.size(), 8u);
}

TEST(TransformationsTest, MutationsPreserveTableSet) {
  Fixture fx(8);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    for (const PlanPtr& m : RootMutations(p, &fx.factory)) {
      EXPECT_EQ(m->rel(), p->rel());
      EXPECT_EQ(m->NodeCount(), p->NodeCount());
      EXPECT_DOUBLE_EQ(m->cardinality(), p->cardinality());
    }
  }
}

TEST(TransformationsTest, CommutativityIsAnInvolution) {
  Fixture fx(4);
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr join = fx.factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  // Find the commuted mutation and commute it again.
  for (const PlanPtr& m : RootMutations(join, &fx.factory)) {
    if (m->join_op() == join->join_op() && m->outer() == s1) {
      for (const PlanPtr& mm : RootMutations(m, &fx.factory)) {
        if (mm->join_op() == join->join_op() && mm->outer() == s0) {
          EXPECT_TRUE(mm->cost().EqualTo(join->cost()));
          return;
        }
      }
    }
  }
  FAIL() << "commutativity mutation not found";
}

TEST(TransformationsTest, AssociativityRulesPresent) {
  Fixture fx(6);
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr s2 = fx.factory.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr left = fx.factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  PlanPtr top = fx.factory.MakeJoin(left, s2, JoinAlgorithm::kHashMedium);

  bool saw_assoc = false;      // (0 (1 2))
  bool saw_exchange = false;   // ((0 2) 1)
  for (const PlanPtr& m : RootMutations(top, &fx.factory)) {
    if (!m->IsJoin()) continue;
    if (!m->outer()->IsJoin() && m->inner()->IsJoin() &&
        m->outer()->rel() == TableSet::Singleton(0)) {
      saw_assoc = true;
    }
    if (m->outer()->IsJoin() && !m->inner()->IsJoin() &&
        m->inner()->rel() == TableSet::Singleton(1)) {
      saw_exchange = true;
    }
  }
  EXPECT_TRUE(saw_assoc);
  EXPECT_TRUE(saw_exchange);
}

TEST(TransformationsTest, RightSideRulesPresent) {
  Fixture fx(6);
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr s2 = fx.factory.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr right = fx.factory.MakeJoin(s1, s2, JoinAlgorithm::kHashSmall);
  PlanPtr top = fx.factory.MakeJoin(s0, right, JoinAlgorithm::kHashMedium);

  bool saw_right_assoc = false;  // ((0 1) 2)
  bool saw_right_exchange = false;  // (1 (0 2))
  for (const PlanPtr& m : RootMutations(top, &fx.factory)) {
    if (!m->IsJoin()) continue;
    if (m->outer()->IsJoin() && !m->inner()->IsJoin() &&
        m->inner()->rel() == TableSet::Singleton(2)) {
      saw_right_assoc = true;
    }
    if (!m->outer()->IsJoin() && m->inner()->IsJoin() &&
        m->outer()->rel() == TableSet::Singleton(1)) {
      saw_right_exchange = true;
    }
  }
  EXPECT_TRUE(saw_right_assoc);
  EXPECT_TRUE(saw_right_exchange);
}

TEST(TransformationsTest, AllNeighborsCoversEveryNode) {
  Fixture fx(6);
  Rng rng(5);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  std::vector<PlanPtr> neighbors = AllNeighbors(p, &fx.factory);
  // Each of the 11 nodes contributes at least one mutation (joins: >= 8,
  // scans: >= 0), so the neighborhood is substantial.
  EXPECT_GE(neighbors.size(), 8u * 5u);
  for (const PlanPtr& n : neighbors) {
    EXPECT_EQ(n->rel(), p->rel());
  }
}

TEST(TransformationsTest, AllNeighborsProducesDistinctPlans) {
  Fixture fx(5);
  Rng rng(7);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  std::set<std::string> shapes;
  for (const PlanPtr& n : AllNeighbors(p, &fx.factory)) {
    shapes.insert(n->ToString());
  }
  EXPECT_GT(shapes.size(), 10u);
}

TEST(TransformationsTest, RandomNeighborValidOrNull) {
  Fixture fx(10);
  Rng rng(9);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  int non_null = 0;
  for (int i = 0; i < 100; ++i) {
    PlanPtr n = RandomNeighbor(p, &fx.factory, &rng);
    if (n != nullptr) {
      ++non_null;
      EXPECT_EQ(n->rel(), p->rel());
      EXPECT_NE(n->ToString(), p->ToString());
    }
  }
  // Join mutations always exist; only index-less scan nodes return null.
  EXPECT_GT(non_null, 50);
}

TEST(TransformationsTest, NeighborhoodIsSymmetricOnJoinOrders) {
  // If B is a neighbor of A via commutativity, A must be a neighbor of B.
  Fixture fx(4);
  Rng rng(11);
  PlanPtr a = RandomPlan(&fx.factory, &rng);
  for (const PlanPtr& b : AllNeighbors(a, &fx.factory)) {
    if (b->ToString() == a->ToString()) continue;
    bool back = false;
    for (const PlanPtr& c : AllNeighbors(b, &fx.factory)) {
      if (c->ToString() == a->ToString()) {
        back = true;
        break;
      }
    }
    EXPECT_TRUE(back) << "no way back from " << b->ToString() << " to "
                      << a->ToString();
  }
}

TEST(TransformationsTest, CountNodesMatchesPlanNodeCount) {
  Fixture fx(7);
  Rng rng(13);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  EXPECT_EQ(CountNodes(p), p->NodeCount());
  EXPECT_EQ(CountNodes(p), 13);
}

}  // namespace
}  // namespace moqo
