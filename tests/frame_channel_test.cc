// Frame transport robustness suite: round-trips over socketpairs, torn
// I/O (1-byte chunks on both directions), truncation at every byte of a
// frame followed by peer death, corrupted CRC/magic/length fields,
// partial frames surviving Recv timeouts, duplicate frame delivery, and
// the connect/accept timeout paths for Unix-domain and TCP listeners.
#include "net/frame_channel.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace moqo {
namespace net {
namespace {

std::vector<uint8_t> Payload(size_t n, uint8_t salt = 0) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 31 + salt) & 0xff);
  }
  return bytes;
}

std::string TempSocketPath(const char* tag) {
  return "/tmp/moqo-frame-test-" + std::to_string(getpid()) + "-" + tag +
         ".sock";
}

TEST(FrameChannelTest, PairRoundTripsPayloads) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  for (size_t size : {size_t{1}, size_t{13}, size_t{4096}}) {
    std::vector<uint8_t> sent = Payload(size, static_cast<uint8_t>(size));
    ASSERT_EQ(a.Send(sent), IoStatus::kOk);
    std::vector<uint8_t> got;
    ASSERT_EQ(b.Recv(&got, 1000), IoStatus::kOk);
    EXPECT_EQ(got, sent);
  }
}

TEST(FrameChannelTest, EmptyPayloadRoundTrips) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  ASSERT_EQ(a.Send({}), IoStatus::kOk);
  std::vector<uint8_t> got{1, 2, 3};
  ASSERT_EQ(b.Recv(&got, 1000), IoStatus::kOk);
  EXPECT_TRUE(got.empty());
}

// The worst-case torn transport: every syscall moves exactly one byte, in
// both directions. Frames must still arrive intact and in order.
TEST(FrameChannelTest, OneByteIoChunksReassemble) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  a.set_io_chunk_limit(1);
  b.set_io_chunk_limit(1);
  std::vector<uint8_t> first = Payload(100, 1);
  std::vector<uint8_t> second = Payload(57, 2);
  ASSERT_EQ(a.Send(first), IoStatus::kOk);
  ASSERT_EQ(a.Send(second), IoStatus::kOk);
  std::vector<uint8_t> got;
  ASSERT_EQ(b.Recv(&got, 2000), IoStatus::kOk);
  EXPECT_EQ(got, first);
  ASSERT_EQ(b.Recv(&got, 2000), IoStatus::kOk);
  EXPECT_EQ(got, second);
}

// A peer killed mid-write leaves a prefix of a frame on the stream. For
// every possible cut point: a cut before any byte arrived is a clean
// close (kClosed); a cut after at least one byte is a torn frame
// (kError). The receiver must never deliver a partial payload.
TEST(FrameChannelTest, TruncationAtEveryByteThenDeathNeverDelivers) {
  std::vector<uint8_t> frame = FrameBytes(Payload(16, 3));
  for (size_t cut = 0; cut <= frame.size(); ++cut) {
    FrameChannel sender, receiver;
    ASSERT_TRUE(FrameChannel::Pair(&sender, &receiver));
    if (cut > 0) {
      ASSERT_EQ(::send(sender.fd(), frame.data(), cut, MSG_NOSIGNAL),
                static_cast<ssize_t>(cut));
    }
    sender.Close();  // the kill -9
    std::vector<uint8_t> got;
    IoStatus status = receiver.Recv(&got, 1000);
    if (cut == frame.size()) {
      EXPECT_EQ(status, IoStatus::kOk) << "cut=" << cut;
      EXPECT_EQ(got, Payload(16, 3));
    } else if (cut == 0) {
      EXPECT_EQ(status, IoStatus::kClosed) << "cut=" << cut;
    } else {
      EXPECT_EQ(status, IoStatus::kError) << "cut=" << cut;
      EXPECT_TRUE(got.empty()) << "cut=" << cut;
    }
  }
}

TEST(FrameChannelTest, CorruptPayloadFailsCrc) {
  std::vector<uint8_t> frame = FrameBytes(Payload(32, 4));
  frame[kFrameHeaderBytes + 7] ^= 0x40;
  FrameChannel sender, receiver;
  ASSERT_TRUE(FrameChannel::Pair(&sender, &receiver));
  ASSERT_EQ(::send(sender.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  std::vector<uint8_t> got;
  EXPECT_EQ(receiver.Recv(&got, 1000), IoStatus::kError);
  EXPECT_NE(receiver.last_error().find("CRC"), std::string::npos);
}

// The error strings are per-direction state: a failing Send() must not
// clobber the receive-direction diagnostic another thread may be reading
// (under the one-sender + one-receiver contract the two directions run
// concurrently, so a shared string would also be a data race — the TSan
// variant of the next test exercises exactly that interleaving).
TEST(FrameChannelTest, SendFailureDoesNotClobberReceiveError) {
  std::vector<uint8_t> frame = FrameBytes(Payload(32, 9));
  frame[kFrameHeaderBytes + 3] ^= 0x10;  // corrupt one payload byte
  FrameChannel sender, receiver;
  ASSERT_TRUE(FrameChannel::Pair(&sender, &receiver));
  ASSERT_EQ(::send(sender.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  std::vector<uint8_t> got;
  ASSERT_EQ(receiver.Recv(&got, 1000), IoStatus::kError);
  ASSERT_NE(receiver.last_error().find("CRC"), std::string::npos);

  // Now fail a send on the same channel: the receive diagnostic survives
  // and the send failure is reported through its own accessor.
  sender.Close();
  receiver.Close();
  EXPECT_EQ(receiver.Send(Payload(4, 1)), IoStatus::kError);
  EXPECT_NE(receiver.send_error().find("send"), std::string::npos);
  EXPECT_NE(receiver.last_error().find("CRC"), std::string::npos)
      << "Send() overwrote the receive-direction error";
}

// One thread hammers Send() into a dead peer while the other drives
// Recv() to an error: with a single shared error string this is a
// write-write race TSan flags; with per-direction strings it is clean.
TEST(FrameChannelTest, ConcurrentSendAndRecvErrorsDoNotRace) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  b.Shutdown();  // both directions die; fd stays valid on both sides
  std::thread sender([&a] {
    for (int i = 0; i < 100; ++i) {
      a.Send(Payload(16, static_cast<uint8_t>(i)));
    }
  });
  std::vector<uint8_t> got;
  for (int i = 0; i < 100; ++i) {
    a.Recv(&got, 10);
  }
  sender.join();
  // Each direction reports its own failure.
  EXPECT_FALSE(a.last_error().empty());
  EXPECT_FALSE(a.send_error().empty());
}

TEST(FrameChannelTest, BadMagicAndOversizedLengthAreErrors) {
  {
    std::vector<uint8_t> frame = FrameBytes(Payload(8, 5));
    frame[0] ^= 0xff;  // magic
    FrameChannel sender, receiver;
    ASSERT_TRUE(FrameChannel::Pair(&sender, &receiver));
    ASSERT_EQ(::send(sender.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    std::vector<uint8_t> got;
    EXPECT_EQ(receiver.Recv(&got, 1000), IoStatus::kError);
    EXPECT_NE(receiver.last_error().find("magic"), std::string::npos);
  }
  {
    std::vector<uint8_t> frame = FrameBytes(Payload(8, 6));
    frame[7] = 0xff;  // length field high byte: > kMaxFramePayload
    FrameChannel sender, receiver;
    ASSERT_TRUE(FrameChannel::Pair(&sender, &receiver));
    ASSERT_EQ(::send(sender.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    std::vector<uint8_t> got;
    EXPECT_EQ(receiver.Recv(&got, 1000), IoStatus::kError);
    EXPECT_NE(receiver.last_error().find("exceeds"), std::string::npos);
  }
}

// The same frame delivered twice is two identical receptions — the
// transport is deliberately dumb about duplicates; idempotency lives in
// the protocol layer (duplicate request ids are rejected there).
TEST(FrameChannelTest, DuplicateFrameDeliversTwice) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  std::vector<uint8_t> frame = FrameBytes(Payload(24, 7));
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(::send(a.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
  }
  std::vector<uint8_t> first, second;
  ASSERT_EQ(b.Recv(&first, 1000), IoStatus::kOk);
  ASSERT_EQ(b.Recv(&second, 1000), IoStatus::kOk);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, Payload(24, 7));
}

TEST(FrameChannelTest, RecvTimesOutThenCompletes) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  std::vector<uint8_t> got;
  EXPECT_EQ(b.Recv(&got, 30), IoStatus::kTimeout);
  ASSERT_EQ(a.Send(Payload(10, 8)), IoStatus::kOk);
  EXPECT_EQ(b.Recv(&got, 1000), IoStatus::kOk);
  EXPECT_EQ(got, Payload(10, 8));
}

// A frame split across Recv calls: the first call times out holding a
// partial frame, the rest arrives later, and the reassembled payload is
// delivered intact by the next call.
TEST(FrameChannelTest, PartialFrameSurvivesTimeoutBoundary) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  std::vector<uint8_t> frame = FrameBytes(Payload(64, 9));
  size_t half = frame.size() / 2;
  ASSERT_EQ(::send(a.fd(), frame.data(), half, MSG_NOSIGNAL),
            static_cast<ssize_t>(half));
  std::vector<uint8_t> got;
  EXPECT_EQ(b.Recv(&got, 50), IoStatus::kTimeout);
  ASSERT_EQ(::send(a.fd(), frame.data() + half, frame.size() - half,
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size() - half));
  EXPECT_EQ(b.Recv(&got, 1000), IoStatus::kOk);
  EXPECT_EQ(got, Payload(64, 9));
}

TEST(FrameChannelTest, OversizedSendIsRefusedLocally) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  std::vector<uint8_t> huge(kMaxFramePayload + 1, 0);
  EXPECT_EQ(a.Send(huge), IoStatus::kError);
}

TEST(FrameChannelTest, SendAndRecvOnClosedChannelError) {
  FrameChannel channel;
  EXPECT_EQ(channel.Send({1}), IoStatus::kError);
  std::vector<uint8_t> got;
  EXPECT_EQ(channel.Recv(&got, 10), IoStatus::kError);
}

// Cross-thread teardown: Shutdown() from one thread wakes another thread
// blocked in Recv() on the same channel (kClosed at a frame boundary),
// without invalidating the fd under it — the pattern RemoteShard uses to
// stop its receiver.
TEST(FrameChannelTest, ShutdownUnblocksAConcurrentReceiver) {
  FrameChannel a, b;
  ASSERT_TRUE(FrameChannel::Pair(&a, &b));
  IoStatus seen = IoStatus::kOk;
  std::thread receiver([&] {
    std::vector<uint8_t> got;
    seen = a.Recv(&got, /*timeout_ms=*/-1);  // blocks until shutdown
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  a.Shutdown();
  receiver.join();
  EXPECT_EQ(seen, IoStatus::kClosed);
  EXPECT_TRUE(a.connected());  // fd still owned; Close is the owner's job
  EXPECT_EQ(a.Send({1}), IoStatus::kClosed);
  a.Close();
  EXPECT_FALSE(a.connected());
}

TEST(FrameListenerTest, UnixListenerAcceptsAndRoundTrips) {
  std::string path = TempSocketPath("unix");
  std::string error;
  auto listener = FrameListener::ListenUnix(path, &error);
  ASSERT_TRUE(listener.has_value()) << error;
  std::thread client([&] {
    auto channel = ConnectUnix(path, 2000);
    ASSERT_TRUE(channel.has_value());
    ASSERT_EQ(channel->Send(Payload(20, 10)), IoStatus::kOk);
  });
  auto accepted = listener->Accept(2000);
  ASSERT_TRUE(accepted.has_value()) << listener->last_error();
  std::vector<uint8_t> got;
  EXPECT_EQ(accepted->Recv(&got, 2000), IoStatus::kOk);
  EXPECT_EQ(got, Payload(20, 10));
  client.join();
}

TEST(FrameListenerTest, AcceptTimesOutWithoutClient) {
  std::string path = TempSocketPath("accept-timeout");
  std::string error;
  auto listener = FrameListener::ListenUnix(path, &error);
  ASSERT_TRUE(listener.has_value()) << error;
  EXPECT_FALSE(listener->Accept(50).has_value());
  EXPECT_NE(listener->last_error().find("timed out"), std::string::npos);
}

TEST(FrameListenerTest, ConnectToMissingUnixSocketFails) {
  std::string error;
  auto channel =
      ConnectUnix(TempSocketPath("nonexistent"), 200, &error);
  EXPECT_FALSE(channel.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(FrameListenerTest, TcpEphemeralPortRoundTrips) {
  std::string error;
  auto listener = FrameListener::ListenTcp(0, &error);
  ASSERT_TRUE(listener.has_value()) << error;
  ASSERT_NE(listener->port(), 0);
  std::thread client([&] {
    auto channel = ConnectTcp("127.0.0.1", listener->port(), 2000, nullptr);
    ASSERT_TRUE(channel.has_value());
    ASSERT_EQ(channel->Send(Payload(33, 11)), IoStatus::kOk);
    std::vector<uint8_t> echo;
    ASSERT_EQ(channel->Recv(&echo, 2000), IoStatus::kOk);
    EXPECT_EQ(echo, Payload(5, 12));
  });
  auto accepted = listener->Accept(2000);
  ASSERT_TRUE(accepted.has_value()) << listener->last_error();
  std::vector<uint8_t> got;
  EXPECT_EQ(accepted->Recv(&got, 2000), IoStatus::kOk);
  EXPECT_EQ(got, Payload(33, 11));
  EXPECT_EQ(accepted->Send(Payload(5, 12)), IoStatus::kOk);
  client.join();
}

}  // namespace
}  // namespace net
}  // namespace moqo
