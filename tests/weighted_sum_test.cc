#include "baselines/weighted_sum.h"

#include <gtest/gtest.h>

#include "baselines/dp.h"
#include "pareto/epsilon_indicator.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 8, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer, Metric::kDisk}),
        factory(query, &model) {}
};

TEST(WeightedSumTest, ProducesValidNonDominatedPlans) {
  Fixture fx;
  WeightedSum ws;
  Rng rng(1);
  std::vector<PlanPtr> plans =
      ws.Optimize(&fx.factory, &rng, Deadline::AfterMillis(120), nullptr);
  ASSERT_FALSE(plans.empty());
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
  }
  for (const PlanPtr& a : plans) {
    for (const PlanPtr& b : plans) {
      if (a == b) continue;
      EXPECT_FALSE(a->cost().StrictlyDominates(b->cost()));
    }
  }
}

TEST(WeightedSumTest, FindsPerMetricExtremesWell) {
  // Axis-aligned weight vectors are part of the sweep, so the scalarized
  // climber should find plans close to the per-metric minima of the exact
  // frontier on a small query.
  Fixture fx(4, 7);
  std::vector<CostVector> exact;
  for (const PlanPtr& p : ExactParetoSet(&fx.factory)) {
    exact.push_back(p->cost());
  }
  exact = ParetoFilter(exact);

  WeightedSum ws;
  Rng rng(2);
  std::vector<PlanPtr> plans =
      ws.Optimize(&fx.factory, &rng, Deadline::AfterMillis(300), nullptr);
  for (int m = 0; m < 3; ++m) {
    double exact_min = kMaxCost;
    for (const CostVector& c : exact) exact_min = std::min(exact_min, c[m]);
    double found_min = kMaxCost;
    for (const PlanPtr& p : plans) {
      found_min = std::min(found_min, p->cost()[m]);
    }
    EXPECT_LE(found_min, exact_min * 3.0) << "metric " << m;
  }
}

TEST(WeightedSumTest, CallbackFires) {
  Fixture fx;
  WeightedSum ws;
  Rng rng(3);
  int calls = 0;
  ws.Optimize(&fx.factory, &rng, Deadline::AfterMillis(60),
              [&](const std::vector<PlanPtr>&) { ++calls; });
  EXPECT_GE(calls, 1);
}

TEST(WeightedSumTest, HonorsDeadline) {
  Fixture fx(40);
  WeightedSum ws;
  Rng rng(4);
  Stopwatch watch;
  ws.Optimize(&fx.factory, &rng, Deadline::AfterMillis(50), nullptr);
  EXPECT_LT(watch.ElapsedMillis(), 10000.0);
}

TEST(MoneyMetricTest, MoneyTradesOffAgainstTime) {
  // The monetary metric prices buffer steeply: a big-memory hash join is
  // fast but expensive, a small block-nested-loop is slow but cheap.
  CostModel m({Metric::kTime, Metric::kMoney});
  double card = 2e4;
  CostVector fast = m.JoinCost(JoinAlgorithm::kHashLarge, card, 100.0,
                               OutputFormat::kUnsorted, card, 100.0,
                               OutputFormat::kUnsorted, card);
  CostVector cheap = m.JoinCost(JoinAlgorithm::kBlockNestedLoopSmall, card,
                                100.0, OutputFormat::kUnsorted, card, 100.0,
                                OutputFormat::kUnsorted, card);
  EXPECT_LT(fast[0], cheap[0]);   // hash is faster
  EXPECT_LT(cheap[1], fast[1]);   // BNL is cheaper
  EXPECT_EQ(ToString(Metric::kMoney), "money");
}

}  // namespace
}  // namespace moqo
