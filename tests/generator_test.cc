#include "query/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace moqo {
namespace {

TEST(GeneratorTest, ToStringNames) {
  EXPECT_EQ(ToString(GraphType::kChain), "chain");
  EXPECT_EQ(ToString(GraphType::kCycle), "cycle");
  EXPECT_EQ(ToString(GraphType::kStar), "star");
  EXPECT_EQ(ToString(GraphType::kRandom), "random");
  EXPECT_EQ(ToString(SelectivityModel::kSteinbrunn), "steinbrunn");
  EXPECT_EQ(ToString(SelectivityModel::kMinMax), "minmax");
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  config.num_tables = 12;
  Rng a(99);
  Rng b(99);
  QueryPtr qa = GenerateQuery(config, &a);
  QueryPtr qb = GenerateQuery(config, &b);
  ASSERT_EQ(qa->NumTables(), qb->NumTables());
  for (int t = 0; t < qa->NumTables(); ++t) {
    EXPECT_DOUBLE_EQ(qa->catalog().Cardinality(t),
                     qb->catalog().Cardinality(t));
  }
  ASSERT_EQ(qa->graph().Edges().size(), qb->graph().Edges().size());
  for (size_t e = 0; e < qa->graph().Edges().size(); ++e) {
    EXPECT_DOUBLE_EQ(qa->graph().Edges()[e].selectivity,
                     qb->graph().Edges()[e].selectivity);
  }
}

TEST(GeneratorTest, CardinalitiesInSteinbrunnStrata) {
  Rng rng(1);
  GeneratorConfig config;
  config.num_tables = 40;
  QueryPtr q = GenerateQuery(config, &rng);
  for (int t = 0; t < q->NumTables(); ++t) {
    double c = q->catalog().Cardinality(t);
    EXPECT_GE(c, 10.0);
    EXPECT_LE(c, 100000.0);
  }
}

TEST(GeneratorTest, StratifiedMixesSmallAndLargeTables) {
  Rng rng(2);
  GeneratorConfig config;
  config.num_tables = 40;
  QueryPtr q = GenerateQuery(config, &rng);
  int small = 0;
  int large = 0;
  for (int t = 0; t < q->NumTables(); ++t) {
    double c = q->catalog().Cardinality(t);
    if (c < 1000.0) ++small;
    if (c >= 10000.0) ++large;
  }
  // Stratified sampling guarantees ~10 per decade for 40 tables.
  EXPECT_GE(small, 10);
  EXPECT_GE(large, 5);
}

struct GraphCase {
  GraphType type;
  int tables;
  size_t expected_edges;
};

class GraphStructureTest : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GraphStructureTest, EdgeCountMatchesTopology) {
  GraphCase c = GetParam();
  Rng rng(7);
  GeneratorConfig config;
  config.num_tables = c.tables;
  config.graph_type = c.type;
  config.random_extra_edge_probability = 0.0;
  QueryPtr q = GenerateQuery(config, &rng);
  EXPECT_EQ(q->graph().Edges().size(), c.expected_edges);
  // Every generated query's full table set must be connected.
  EXPECT_TRUE(q->graph().InducedConnected(q->AllTables()));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, GraphStructureTest,
    ::testing::Values(GraphCase{GraphType::kChain, 10, 9},
                      GraphCase{GraphType::kChain, 2, 1},
                      GraphCase{GraphType::kCycle, 10, 10},
                      GraphCase{GraphType::kCycle, 3, 3},
                      GraphCase{GraphType::kStar, 10, 9},
                      GraphCase{GraphType::kStar, 4, 3},
                      GraphCase{GraphType::kRandom, 10, 9},
                      GraphCase{GraphType::kChain, 100, 99},
                      GraphCase{GraphType::kStar, 100, 99}));

TEST(GeneratorTest, CycleOfTwoHasSingleEdge) {
  // A 2-cycle would duplicate the (0,1) edge; the generator avoids that.
  Rng rng(3);
  GeneratorConfig config;
  config.num_tables = 2;
  config.graph_type = GraphType::kCycle;
  QueryPtr q = GenerateQuery(config, &rng);
  EXPECT_EQ(q->graph().Edges().size(), 1u);
}

TEST(GeneratorTest, StarCenterIsTableZero) {
  Rng rng(5);
  GeneratorConfig config;
  config.num_tables = 8;
  config.graph_type = GraphType::kStar;
  QueryPtr q = GenerateQuery(config, &rng);
  for (const JoinEdge& e : q->graph().Edges()) {
    EXPECT_TRUE(e.left == 0 || e.right == 0);
  }
  EXPECT_EQ(q->graph().Neighbors(0).Count(), 7);
}

TEST(GeneratorTest, SteinbrunnSelectivitiesInRange) {
  Rng rng(11);
  GeneratorConfig config;
  config.num_tables = 30;
  config.selectivity_model = SelectivityModel::kSteinbrunn;
  QueryPtr q = GenerateQuery(config, &rng);
  for (const JoinEdge& e : q->graph().Edges()) {
    EXPECT_GT(e.selectivity, 0.0);
    EXPECT_LE(e.selectivity, 1.0);
    EXPECT_GE(e.selectivity, 1e-4 * 0.999);
  }
}

TEST(GeneratorTest, MinMaxJoinsLieBetweenInputCardinalities) {
  Rng rng(13);
  GeneratorConfig config;
  config.num_tables = 30;
  config.selectivity_model = SelectivityModel::kMinMax;
  QueryPtr q = GenerateQuery(config, &rng);
  for (const JoinEdge& e : q->graph().Edges()) {
    double ca = q->catalog().Cardinality(e.left);
    double cb = q->catalog().Cardinality(e.right);
    double out = ca * cb * e.selectivity;
    EXPECT_GE(out, std::min(ca, cb) * 0.999);
    EXPECT_LE(out, std::max(ca, cb) * 1.001);
  }
}

TEST(GeneratorTest, IndexProbabilityExtremes) {
  Rng rng(17);
  GeneratorConfig config;
  config.num_tables = 20;
  config.index_probability = 0.0;
  QueryPtr q0 = GenerateQuery(config, &rng);
  for (int t = 0; t < 20; ++t) EXPECT_FALSE(q0->catalog().Table(t).has_index);

  config.index_probability = 1.0;
  QueryPtr q1 = GenerateQuery(config, &rng);
  for (int t = 0; t < 20; ++t) EXPECT_TRUE(q1->catalog().Table(t).has_index);
}

TEST(GeneratorTest, RandomGraphIsConnectedWithExtraEdges) {
  Rng rng(19);
  GeneratorConfig config;
  config.num_tables = 25;
  config.graph_type = GraphType::kRandom;
  config.random_extra_edge_probability = 0.2;
  QueryPtr q = GenerateQuery(config, &rng);
  EXPECT_TRUE(q->graph().InducedConnected(q->AllTables()));
  EXPECT_GE(q->graph().Edges().size(), 24u);
}

TEST(GeneratorTest, SingleTableQuery) {
  Rng rng(23);
  GeneratorConfig config;
  config.num_tables = 1;
  QueryPtr q = GenerateQuery(config, &rng);
  EXPECT_EQ(q->NumTables(), 1);
  EXPECT_TRUE(q->graph().Edges().empty());
}

TEST(SampleCardinalityTest, StrataBounds) {
  Rng rng(29);
  for (int s = 0; s < 4; ++s) {
    double lo = std::pow(10.0, s + 1);
    for (int i = 0; i < 50; ++i) {
      double c = SampleCardinality(&rng, s);
      EXPECT_GE(c, lo * 0.999) << "stratum " << s;
      EXPECT_LE(c, lo * 10.0) << "stratum " << s;
    }
  }
}

}  // namespace
}  // namespace moqo
