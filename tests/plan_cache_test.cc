#include "core/plan_cache.h"

#include <gtest/gtest.h>

#include "plan/plan_factory.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 6)
      : query([&] {
          Rng rng(42);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(PlanCacheTest, InsertAndLookup) {
  Fixture fx;
  PlanCache cache;
  PlanPtr scan = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  EXPECT_TRUE(cache.Insert(scan->rel(), scan, 1.0));
  EXPECT_EQ(cache.Lookup(scan->rel()).size(), 1u);
  EXPECT_EQ(cache.NumTableSets(), 1u);
  EXPECT_EQ(cache.TotalPlans(), 1u);
}

TEST(PlanCacheTest, LookupUnknownSetIsEmpty) {
  PlanCache cache;
  EXPECT_TRUE(cache.Lookup(TableSet::FirstN(3)).empty());
}

TEST(PlanCacheTest, DuplicateInsertRejected) {
  Fixture fx;
  PlanCache cache;
  PlanPtr scan = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  EXPECT_TRUE(cache.Insert(scan->rel(), scan, 1.0));
  // Identical cost and format: approx-dominated by the cached plan.
  EXPECT_FALSE(cache.Insert(scan->rel(), scan, 1.0));
  EXPECT_EQ(cache.TotalPlans(), 1u);
}

TEST(PlanCacheTest, DifferentFormatsCoexist) {
  // Table 0 of seed-42 catalog may or may not have an index; build a
  // deterministic catalog instead.
  Catalog catalog;
  catalog.AddTable({1000.0, 100.0, true});
  JoinGraph graph(1);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);
  PlanCache cache;
  PlanPtr full = factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr index = factory.MakeScan(0, ScanAlgorithm::kIndexScan);
  EXPECT_TRUE(cache.Insert(full->rel(), full, 1e9));
  // Even with a huge alpha, the index scan has a different output format
  // and is therefore kept.
  EXPECT_TRUE(cache.Insert(index->rel(), index, 1e9));
  EXPECT_EQ(cache.TotalPlans(), 2u);
}

TEST(PlanCacheTest, CoarseAlphaPrunesAggressively) {
  Fixture fx(8);
  PlanCache coarse;
  PlanCache fine;
  Rng rng(7);
  TableSet all = fx.factory.query().AllTables();
  for (int i = 0; i < 200; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    coarse.Insert(all, p, 1e6);
    fine.Insert(all, p, 1.0);
  }
  EXPECT_LE(coarse.Lookup(all).size(), fine.Lookup(all).size());
}

TEST(PlanCacheTest, CachedPlansMutuallyNonDominatedSameFormat) {
  Fixture fx(8);
  PlanCache cache;
  Rng rng(9);
  TableSet all = fx.factory.query().AllTables();
  for (int i = 0; i < 200; ++i) {
    cache.Insert(all, RandomPlan(&fx.factory, &rng), 1.0);
  }
  const std::vector<PlanPtr>& plans = cache.Lookup(all);
  for (const PlanPtr& a : plans) {
    for (const PlanPtr& b : plans) {
      if (a == b) continue;
      if (SameOutput(*a, *b)) {
        // With alpha = 1 the Prune rule guarantees plain non-dominance.
        EXPECT_FALSE(a->cost().WeakDominates(b->cost()) &&
                     !a->cost().EqualTo(b->cost()));
      }
    }
  }
}

TEST(PlanCacheTest, NewPlanEvictsDominated) {
  // Insert a sort-merge join first, then the strictly dominating hash join
  // (same build as the pareto_archive test): the former must be evicted
  // only if formats match — they do not here (sorted vs unsorted), so both
  // stay.
  Catalog catalog;
  catalog.AddTable({1000.0, 100.0, false});
  catalog.AddTable({1000.0, 100.0, false});
  JoinGraph graph(2);
  graph.AddEdge(0, 1, 0.1);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);

  PlanPtr s0 = factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr sm = factory.MakeJoin(s0, s1, JoinAlgorithm::kSortMergeSmall);
  PlanPtr hj = factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  PlanCache cache;
  EXPECT_TRUE(cache.Insert(sm->rel(), sm, 1.0));
  EXPECT_TRUE(cache.Insert(hj->rel(), hj, 1.0));
  EXPECT_EQ(cache.Lookup(sm->rel()).size(), 2u);

  // A second, more expensive unsorted join IS evicted by the hash join.
  PlanPtr bnl = factory.MakeJoin(s0, s1, JoinAlgorithm::kNestedLoop);
  EXPECT_FALSE(hj->cost().WeakDominates(bnl->cost()) &&
               cache.Insert(bnl->rel(), bnl, 1.0));
}

TEST(PlanCacheTest, SeparateEntriesPerTableSet) {
  Fixture fx;
  PlanCache cache;
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  cache.Insert(s0->rel(), s0, 1.0);
  cache.Insert(s1->rel(), s1, 1.0);
  EXPECT_EQ(cache.NumTableSets(), 2u);
  EXPECT_EQ(cache.Lookup(s0->rel()).size(), 1u);
  EXPECT_EQ(cache.Lookup(s1->rel()).size(), 1u);
}

TEST(PlanCacheTest, ClearEmptiesEverything) {
  Fixture fx;
  PlanCache cache;
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  cache.Insert(s0->rel(), s0, 1.0);
  cache.Clear();
  EXPECT_EQ(cache.NumTableSets(), 0u);
  EXPECT_EQ(cache.TotalPlans(), 0u);
}

}  // namespace
}  // namespace moqo
