#include "plan/plan.h"

#include <gtest/gtest.h>

#include "plan/plan_factory.h"
#include "query/generator.h"

namespace moqo {
namespace {

// Hand-built 3-table chain query with deterministic statistics.
QueryPtr TinyQuery() {
  Catalog catalog;
  catalog.AddTable({1000.0, 100.0, true});
  catalog.AddTable({2000.0, 50.0, false});
  catalog.AddTable({500.0, 80.0, true});
  JoinGraph graph(3);
  graph.AddEdge(0, 1, 0.01);
  graph.AddEdge(1, 2, 0.1);
  return std::make_shared<Query>(std::move(catalog), std::move(graph));
}

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : query_(TinyQuery()),
        model_({Metric::kTime, Metric::kBuffer, Metric::kDisk}),
        factory_(query_, &model_) {}

  QueryPtr query_;
  CostModel model_;
  PlanFactory factory_;
};

TEST_F(PlanTest, ScanProperties) {
  PlanPtr scan = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  EXPECT_FALSE(scan->IsJoin());
  EXPECT_EQ(scan->table(), 0);
  EXPECT_EQ(scan->scan_op(), ScanAlgorithm::kFullScan);
  EXPECT_EQ(scan->rel(), TableSet::Singleton(0));
  EXPECT_DOUBLE_EQ(scan->cardinality(), 1000.0);
  EXPECT_DOUBLE_EQ(scan->tuple_bytes(), 100.0);
  EXPECT_EQ(scan->format(), OutputFormat::kUnsorted);
  EXPECT_EQ(scan->NodeCount(), 1);
  EXPECT_EQ(scan->cost().size(), 3);
}

TEST_F(PlanTest, IndexScanSorted) {
  PlanPtr scan = factory_.MakeScan(2, ScanAlgorithm::kIndexScan);
  EXPECT_EQ(scan->format(), OutputFormat::kSorted);
}

TEST_F(PlanTest, JoinProperties) {
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr join = factory_.MakeJoin(s0, s1, JoinAlgorithm::kHashLarge);
  EXPECT_TRUE(join->IsJoin());
  EXPECT_EQ(join->join_op(), JoinAlgorithm::kHashLarge);
  EXPECT_EQ(join->rel().Count(), 2);
  EXPECT_EQ(join->NodeCount(), 3);
  // |T0 join T1| = 1000 * 2000 * 0.01.
  EXPECT_DOUBLE_EQ(join->cardinality(), 20000.0);
  EXPECT_DOUBLE_EQ(join->tuple_bytes(), 150.0);
  EXPECT_EQ(join->outer(), s0);
  EXPECT_EQ(join->inner(), s1);
}

TEST_F(PlanTest, JoinCostCombinesChildren) {
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr join = factory_.MakeJoin(s0, s1, JoinAlgorithm::kHashLarge);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(join->cost()[i], s0->cost()[i]);
    EXPECT_GT(join->cost()[i], s1->cost()[i]);
  }
}

TEST_F(PlanTest, CardinalityOrderIndependent) {
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr s2 = factory_.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr left =
      factory_.MakeJoin(factory_.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall),
                        s2, JoinAlgorithm::kHashSmall);
  PlanPtr right = factory_.MakeJoin(
      s0, factory_.MakeJoin(s1, s2, JoinAlgorithm::kNestedLoop),
      JoinAlgorithm::kSortMergeLarge);
  EXPECT_DOUBLE_EQ(left->cardinality(), right->cardinality());
  EXPECT_EQ(left->rel(), right->rel());
}

TEST_F(PlanTest, CrossProductSelectivityOne) {
  // Tables 0 and 2 share no predicate: pure cross product.
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s2 = factory_.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr cross = factory_.MakeJoin(s0, s2, JoinAlgorithm::kHashLarge);
  EXPECT_DOUBLE_EQ(cross->cardinality(), 1000.0 * 500.0);
}

TEST_F(PlanTest, SortMergeOutputSorted) {
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr sm = factory_.MakeJoin(s0, s1, JoinAlgorithm::kSortMergeSmall);
  EXPECT_EQ(sm->format(), OutputFormat::kSorted);
  PlanPtr hj = factory_.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  EXPECT_EQ(hj->format(), OutputFormat::kUnsorted);
}

TEST_F(PlanTest, SortedInputsMakeSortMergeCheaper) {
  PlanPtr sorted0 = factory_.MakeScan(0, ScanAlgorithm::kIndexScan);
  PlanPtr plain0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr from_sorted =
      factory_.MakeJoin(sorted0, s1, JoinAlgorithm::kSortMergeSmall);
  PlanPtr from_plain =
      factory_.MakeJoin(plain0, s1, JoinAlgorithm::kSortMergeSmall);
  // Subtract child costs to compare the operator-local time share.
  double op_time_sorted =
      from_sorted->cost()[0] - sorted0->cost()[0] - s1->cost()[0];
  double op_time_plain =
      from_plain->cost()[0] - plain0->cost()[0] - s1->cost()[0];
  EXPECT_LT(op_time_sorted, op_time_plain);
}

TEST_F(PlanTest, RebuildReproducesCostExactly) {
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kIndexScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr s2 = factory_.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr p = factory_.MakeJoin(
      factory_.MakeJoin(s0, s1, JoinAlgorithm::kSortMergeSmall), s2,
      JoinAlgorithm::kBlockNestedLoopLarge);
  PlanPtr rebuilt = factory_.Rebuild(p);
  EXPECT_TRUE(p->cost().EqualTo(rebuilt->cost()));
  EXPECT_EQ(p->ToString(), rebuilt->ToString());
}

TEST_F(PlanTest, ApplicableScansRespectIndexes) {
  EXPECT_EQ(factory_.ApplicableScans(0).size(), 2u);  // has index
  EXPECT_EQ(factory_.ApplicableScans(1).size(), 1u);  // no index
}

TEST_F(PlanTest, ToStringRendersTree) {
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr join = factory_.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  EXPECT_EQ(join->ToString(), "(T0 HJs T1)");
  PlanPtr idx = factory_.MakeScan(2, ScanAlgorithm::kIndexScan);
  EXPECT_EQ(idx->ToString(), "T2i");
}

TEST_F(PlanTest, BetterPlanRequiresSameOutputAndStrictDominance) {
  PlanPtr s0a = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s0b = factory_.MakeScan(0, ScanAlgorithm::kIndexScan);
  // Different formats: never comparable regardless of cost.
  EXPECT_FALSE(BetterPlan(*s0a, *s0b));
  EXPECT_FALSE(BetterPlan(*s0b, *s0a));
  // Same plan: no strict dominance.
  EXPECT_FALSE(BetterPlan(*s0a, *s0a));
}

TEST_F(PlanTest, SigBetterPlanUsesAlpha) {
  PlanPtr s1 = factory_.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr s0 = factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  // Same format; with a huge alpha each approx-dominates the other.
  EXPECT_TRUE(SigBetterPlan(*s1, *s0, 1e12));
  EXPECT_TRUE(SigBetterPlan(*s0, *s1, 1e12));
}

TEST_F(PlanTest, PlansBuiltCounter) {
  int64_t before = factory_.plans_built();
  factory_.MakeScan(0, ScanAlgorithm::kFullScan);
  EXPECT_EQ(factory_.plans_built(), before + 1);
}

TEST_F(PlanTest, CardinalityMemoization) {
  TableSet s = TableSet::FirstN(3);
  double first = factory_.Cardinality(s);
  double second = factory_.Cardinality(s);
  EXPECT_DOUBLE_EQ(first, second);
  // 1000 * 2000 * 500 * 0.01 * 0.1 = 1e9 * 1e-3.
  EXPECT_DOUBLE_EQ(first, 1e6);
}

TEST_F(PlanTest, CardinalityCapped) {
  // A synthetic query whose cross product overflows the cap.
  Catalog catalog;
  for (int i = 0; i < 100; ++i) catalog.AddTable({1e5, 100.0, false});
  JoinGraph graph(100);
  QueryPtr big = std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime});
  PlanFactory factory(big, &model);
  EXPECT_LE(factory.Cardinality(TableSet::FirstN(100)), kMaxCardinality);
}

}  // namespace
}  // namespace moqo
