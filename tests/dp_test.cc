#include "baselines/dp.h"

#include <gtest/gtest.h>

#include <limits>

#include "pareto/epsilon_indicator.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, int metrics = 2, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model([&] {
          std::vector<Metric> ms = {Metric::kTime, Metric::kBuffer,
                                    Metric::kDisk};
          ms.resize(static_cast<size_t>(metrics));
          return CostModel(ms);
        }()),
        factory(query, &model) {}
};

std::vector<CostVector> Costs(const std::vector<PlanPtr>& plans) {
  std::vector<CostVector> out;
  for (const PlanPtr& p : plans) out.push_back(p->cost());
  return out;
}

// Runs one DP session to completion (or deadline) and reports whether the
// full lattice was processed.
struct DpRun {
  std::vector<PlanPtr> plans;
  bool finished = false;
};

DpRun RunDp(const DpConfig& config, PlanFactory* factory, uint64_t seed,
            const Deadline& deadline = Deadline()) {
  DpSession session(config);
  Rng rng(seed);
  session.Begin(factory, &rng);
  DpRun run;
  run.plans = RunSession(&session, deadline);
  run.finished = session.finished();
  return run;
}

TEST(DpTest, Names) {
  DpConfig config;
  config.alpha = 2.0;
  EXPECT_EQ(DpOptimizer(config).name(), "DP(2)");
  config.alpha = 1000.0;
  EXPECT_EQ(DpOptimizer(config).name(), "DP(1000)");
  config.alpha = std::numeric_limits<double>::infinity();
  EXPECT_EQ(DpOptimizer(config).name(), "DP(Infinity)");
  config.alpha = 1.01;
  EXPECT_EQ(DpOptimizer(config).name(), "DP(1.01)");
}

TEST(DpTest, ExactParetoSetOnTinyQuery) {
  Fixture fx(4);
  std::vector<PlanPtr> exact = ExactParetoSet(&fx.factory);
  ASSERT_FALSE(exact.empty());
  for (const PlanPtr& p : exact) {
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
  }
}

TEST(DpTest, ExactSetDominatesEveryRandomPlan) {
  // The exact Pareto frontier must weakly dominate any plan whatsoever.
  Fixture fx(5, 3);
  std::vector<CostVector> exact = Costs(ExactParetoSet(&fx.factory));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    double ratio = AlphaError(exact, {p->cost()});
    EXPECT_DOUBLE_EQ(ratio, 1.0)
        << "random plan " << p->ToString()
        << " not covered by the exact frontier";
  }
}

TEST(DpTest, AlphaGuaranteeHolds) {
  // DP(alpha) output must alpha-approximate the exact frontier.
  Fixture fx(5, 3);
  std::vector<CostVector> exact =
      ParetoFilter(Costs(ExactParetoSet(&fx.factory)));
  for (double alpha : {1.5, 2.0, 10.0, 1000.0}) {
    DpConfig config;
    config.alpha = alpha;
    DpRun run = RunDp(config, &fx.factory, 2);
    ASSERT_TRUE(run.finished);
    double err = AlphaError(Costs(run.plans), exact);
    EXPECT_LE(err, alpha * 1.0001) << "DP(" << alpha << ")";
  }
}

TEST(DpTest, CoarserAlphaYieldsFewerPlans) {
  Fixture fx(6, 3);
  size_t prev = std::numeric_limits<size_t>::max();
  for (double alpha : {1.0, 2.0, 1000.0}) {
    DpConfig config;
    config.alpha = alpha;
    DpOptimizer dp(config);
    Rng rng(3);
    size_t count = dp.Optimize(&fx.factory, &rng, Deadline(), nullptr).size();
    EXPECT_LE(count, prev) << "alpha " << alpha;
    prev = count;
  }
}

TEST(DpTest, InfinityAlphaKeepsFormatsOnly) {
  Fixture fx(4);
  DpConfig config;
  config.alpha = std::numeric_limits<double>::infinity();
  DpOptimizer dp(config);
  Rng rng(4);
  std::vector<PlanPtr> plans =
      dp.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  // At most one plan per output data representation.
  EXPECT_LE(plans.size(), 2u);
  EXPECT_GE(plans.size(), 1u);
}

TEST(DpTest, GivesUpBeyondMaxTables) {
  Fixture fx(25);
  DpConfig config;
  config.alpha = 2.0;
  config.max_tables = 20;
  Stopwatch watch;
  DpRun run = RunDp(config, &fx.factory, 5, Deadline::AfterMillis(200));
  EXPECT_TRUE(run.plans.empty());
  EXPECT_FALSE(run.finished);
  EXPECT_LT(watch.ElapsedMillis(), 100.0);  // immediate give-up
}

TEST(DpTest, DeadlineAbortsMidSearch) {
  Fixture fx(14, 3);
  DpConfig config;
  config.alpha = 1.0;  // exact: way too slow for 14 tables
  Stopwatch watch;
  DpRun run = RunDp(config, &fx.factory, 6, Deadline::AfterMillis(100));
  EXPECT_TRUE(run.plans.empty());
  EXPECT_FALSE(run.finished);
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
}

TEST(DpTest, CallbackOnceOnCompletion) {
  Fixture fx(4);
  DpConfig config;
  config.alpha = 2.0;
  DpOptimizer dp(config);
  Rng rng(7);
  int calls = 0;
  dp.Optimize(&fx.factory, &rng, Deadline(),
              [&](const std::vector<PlanPtr>& frontier) {
                ++calls;
                EXPECT_FALSE(frontier.empty());
              });
  EXPECT_EQ(calls, 1);
}

TEST(DpTest, SingleTableQuery) {
  Fixture fx(1);
  std::vector<PlanPtr> plans = ExactParetoSet(&fx.factory);
  ASSERT_FALSE(plans.empty());
  EXPECT_FALSE(plans.front()->IsJoin());
}

TEST(DpTest, TwoTableQueryExploresBothOrders) {
  // The exact frontier for two tables must not be worse than any manually
  // constructed plan in either operand order.
  Fixture fx(2, 3, 9);
  std::vector<CostVector> exact = Costs(ExactParetoSet(&fx.factory));
  for (ScanAlgorithm s0 : fx.factory.ApplicableScans(0)) {
    for (ScanAlgorithm s1 : fx.factory.ApplicableScans(1)) {
      for (JoinAlgorithm op : AllJoinAlgorithms()) {
        PlanPtr a = fx.factory.MakeJoin(fx.factory.MakeScan(0, s0),
                                        fx.factory.MakeScan(1, s1), op);
        PlanPtr b = fx.factory.MakeJoin(fx.factory.MakeScan(1, s1),
                                        fx.factory.MakeScan(0, s0), op);
        EXPECT_DOUBLE_EQ(AlphaError(exact, {a->cost()}), 1.0);
        EXPECT_DOUBLE_EQ(AlphaError(exact, {b->cost()}), 1.0);
      }
    }
  }
}

class DpSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(DpSizeTest, FinishesAndCoversRandomPlans) {
  Fixture fx(GetParam(), 2);
  DpConfig config;
  config.alpha = 1.0;
  DpRun run = RunDp(config, &fx.factory, 8);
  ASSERT_TRUE(run.finished);
  std::vector<CostVector> frontier = Costs(run.plans);
  Rng sample_rng(9);
  for (int i = 0; i < 20; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &sample_rng);
    EXPECT_DOUBLE_EQ(AlphaError(frontier, {p->cost()}), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DpSizeTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace moqo
