#include "core/pareto_climb.h"

#include <gtest/gtest.h>

#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, int metrics = 3, uint64_t seed = 42,
                   GraphType graph = GraphType::kChain)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          config.graph_type = graph;
          return GenerateQuery(config, &rng);
        }()),
        model([&] {
          std::vector<Metric> ms = {Metric::kTime, Metric::kBuffer,
                                    Metric::kDisk};
          ms.resize(static_cast<size_t>(metrics));
          return CostModel(ms);
        }()),
        factory(query, &model) {}
};

TEST(ParetoStepTest, AlwaysReturnsAtLeastOnePlan) {
  Fixture fx(6);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    std::vector<PlanPtr> step = ParetoStep(p, &fx.factory);
    EXPECT_FALSE(step.empty());
  }
}

TEST(ParetoStepTest, UsuallyContainsAnImprovementOfInput) {
  // The recombination of unchanged children is always generated, so most
  // steps return a plan weakly dominating the input; the constant-width
  // pruning may occasionally evict it in favor of incomparable plans, so
  // this holds for the majority, not universally.
  Fixture fx(6);
  Rng rng(2);
  int covered = 0;
  for (int i = 0; i < 20; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    for (const PlanPtr& m : ParetoStep(p, &fx.factory)) {
      if (m->cost().WeakDominates(p->cost())) {
        ++covered;
        break;
      }
    }
  }
  EXPECT_GE(covered, 12);
}

TEST(ParetoStepTest, PreservesTableSet) {
  Fixture fx(8);
  Rng rng(3);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  for (const PlanPtr& m : ParetoStep(p, &fx.factory)) {
    EXPECT_EQ(m->rel(), p->rel());
  }
}

TEST(ParetoStepTest, ResultsMutuallyNonDominatedPerFormat) {
  Fixture fx(8);
  Rng rng(4);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  std::vector<PlanPtr> step = ParetoStep(p, &fx.factory);
  for (const PlanPtr& a : step) {
    for (const PlanPtr& b : step) {
      if (a == b) continue;
      if (SameOutput(*a, *b)) {
        EXPECT_FALSE(a->cost().StrictlyDominates(b->cost()));
      }
    }
  }
}

TEST(ParetoClimbTest, NeverWorseThanStart) {
  Fixture fx(10);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    PlanPtr start = RandomPlan(&fx.factory, &rng);
    PlanPtr opt = ParetoClimb(start, &fx.factory);
    EXPECT_TRUE(opt->cost().WeakDominates(start->cost()))
        << "climb must never worsen any metric";
  }
}

TEST(ParetoClimbTest, UsuallyImprovesRandomPlans) {
  Fixture fx(10);
  Rng rng(6);
  int improved = 0;
  for (int i = 0; i < 20; ++i) {
    PlanPtr start = RandomPlan(&fx.factory, &rng);
    PlanPtr opt = ParetoClimb(start, &fx.factory);
    if (opt->cost().StrictlyDominates(start->cost())) ++improved;
  }
  EXPECT_GE(improved, 15);  // random plans are almost never locally optimal
}

TEST(ParetoClimbTest, FixedPointIsStable) {
  Fixture fx(8);
  Rng rng(7);
  PlanPtr opt = ParetoClimb(RandomPlan(&fx.factory, &rng), &fx.factory);
  ClimbStats stats;
  PlanPtr again = ParetoClimb(opt, &fx.factory, &stats);
  EXPECT_EQ(stats.steps, 0);
  EXPECT_TRUE(again->cost().EqualTo(opt->cost()));
}

TEST(ParetoClimbTest, FixedPointsTradeExactnessForSpeed) {
  // With the constant-width pruning of Lemma 2 (kMaxPerFormat), climbing
  // fixed points are *not* guaranteed local optima of the complete
  // neighborhood: the width-bounded step can evict the candidate that a
  // naive climber would have used. The invariants that DO hold:
  //   - polishing with the naive climber never violates dominance,
  //   - the fast climb still removes the bulk of a random plan's cost
  //     (its fixed point is orders of magnitude below the start).
  for (int metrics : {2, 3}) {
    Fixture fx(5, metrics);
    Rng rng(8);
    for (int i = 0; i < 15; ++i) {
      PlanPtr start = RandomPlan(&fx.factory, &rng);
      PlanPtr opt = ParetoClimb(start, &fx.factory);
      EXPECT_TRUE(opt->cost().WeakDominates(start->cost()));
      PlanPtr polished = NaiveClimb(opt, &fx.factory);
      EXPECT_TRUE(polished->cost().WeakDominates(opt->cost()));
      EXPECT_TRUE(IsLocalParetoOptimum(polished, &fx.factory));
    }
  }
}

TEST(ParetoClimbTest, RecordsPathLength) {
  Fixture fx(15);
  Rng rng(9);
  ClimbStats stats;
  ParetoClimb(RandomPlan(&fx.factory, &rng), &fx.factory, &stats);
  EXPECT_GE(stats.steps, 0);
  EXPECT_GT(stats.plans_examined, 0);
}

TEST(ParetoClimbTest, DeadlineAborts) {
  Fixture fx(60);
  Rng rng(10);
  PlanPtr start = RandomPlan(&fx.factory, &rng);
  // An already-expired deadline returns the start plan unchanged.
  PlanPtr out = ParetoClimb(start, &fx.factory, nullptr,
                            Deadline::AfterMicros(0));
  EXPECT_TRUE(out->cost().EqualTo(start->cost()));
}

TEST(NaiveClimbTest, NeverWorseThanStartAndStable) {
  Fixture fx(6);
  Rng rng(11);
  PlanPtr start = RandomPlan(&fx.factory, &rng);
  PlanPtr opt = NaiveClimb(start, &fx.factory);
  EXPECT_TRUE(opt->cost().WeakDominates(start->cost()));
  EXPECT_TRUE(IsLocalParetoOptimum(opt, &fx.factory));
}

TEST(NaiveClimbTest, FastClimberAtLeastMatchesNaiveQuality) {
  // The fast climber applies mutations in independent subtrees
  // simultaneously; combined moves can dominate where single mutations do
  // not, so it often escapes to *better* local optima than the naive
  // single-mutation climber (the paper's Section 4.2 rationale). Require
  // the fast climber to be no worse in aggregate.
  Fixture fx(7);
  Rng rng(12);
  double fast_total = 0.0;
  double naive_total = 0.0;
  for (int i = 0; i < 10; ++i) {
    PlanPtr start = RandomPlan(&fx.factory, &rng);
    fast_total += ParetoClimb(start, &fx.factory)->cost().Sum();
    naive_total += NaiveClimb(start, &fx.factory)->cost().Sum();
  }
  EXPECT_LE(fast_total, naive_total * 1.5);
}

TEST(ParetoClimbTest, FewerStepsThanNaive) {
  // Subtree parallelism applies several mutations per step, so the fast
  // climber's accepted-step count should not exceed the naive one's on
  // average.
  Fixture fx(12);
  Rng rng(13);
  int64_t fast_steps = 0;
  int64_t naive_steps = 0;
  for (int i = 0; i < 10; ++i) {
    PlanPtr start = RandomPlan(&fx.factory, &rng);
    ClimbStats fast, naive;
    ParetoClimb(start, &fx.factory, &fast);
    NaiveClimb(start, &fx.factory, &naive);
    fast_steps += fast.steps;
    naive_steps += naive.steps;
  }
  EXPECT_LE(fast_steps, naive_steps);
}

class ClimbPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClimbPropertyTest, ClimbInvariantsAcrossSizesAndMetrics) {
  auto [tables, metrics] = GetParam();
  Fixture fx(tables, metrics);
  Rng rng(CombineSeed(static_cast<uint64_t>(tables),
                      static_cast<uint64_t>(metrics)));
  PlanPtr start = RandomPlan(&fx.factory, &rng);
  ClimbStats stats;
  PlanPtr opt = ParetoClimb(start, &fx.factory, &stats);
  EXPECT_TRUE(opt->cost().WeakDominates(start->cost()));
  EXPECT_EQ(opt->rel(), fx.factory.query().AllTables());
  EXPECT_EQ(opt->NodeCount(), 2 * tables - 1);
  // Path lengths stay small (the paper measures ~4-6 even at 100 tables).
  EXPECT_LE(stats.steps, 12 + tables);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClimbPropertyTest,
    ::testing::Combine(::testing::Values(2, 5, 10, 25, 50),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace moqo
