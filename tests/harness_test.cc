// Tests for the evaluation harness: anytime recording, metric sampling,
// medians, suites, experiment runner, and report formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "core/rmq.h"
#include "harness/anytime.h"
#include "harness/csv.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/suite.h"
#include "plan/random_plan.h"
#include "query/generator.h"
#include "service/batch_optimizer.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 6)
      : query([&] {
          Rng rng(42);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(AnytimeRecorderTest, RecordsSnapshotsInOrder) {
  Fixture fx;
  AnytimeRecorder recorder;
  recorder.Start();
  Rng rng(1);
  AnytimeCallback cb = recorder.MakeCallback();
  cb({RandomPlan(&fx.factory, &rng)});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cb({RandomPlan(&fx.factory, &rng), RandomPlan(&fx.factory, &rng)});
  ASSERT_EQ(recorder.snapshots().size(), 2u);
  EXPECT_LE(recorder.snapshots()[0].elapsed_micros,
            recorder.snapshots()[1].elapsed_micros);
  EXPECT_EQ(recorder.snapshots()[0].frontier.size(), 1u);
  EXPECT_EQ(recorder.snapshots()[1].frontier.size(), 2u);
}

TEST(AnytimeRecorderTest, SkipsIdenticalSnapshots) {
  Fixture fx;
  AnytimeRecorder recorder;
  recorder.Start();
  Rng rng(2);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  AnytimeCallback cb = recorder.MakeCallback();
  cb({p});
  cb({p});
  cb({p});
  EXPECT_EQ(recorder.snapshots().size(), 1u);
}

TEST(AnytimeRecorderTest, FrontierAtReplaysHistory) {
  Fixture fx;
  AnytimeRecorder recorder;
  recorder.Start();
  Rng rng(3);
  AnytimeCallback cb = recorder.MakeCallback();
  cb({RandomPlan(&fx.factory, &rng)});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cb({RandomPlan(&fx.factory, &rng), RandomPlan(&fx.factory, &rng)});

  int64_t t0 = recorder.snapshots()[0].elapsed_micros;
  int64_t t1 = recorder.snapshots()[1].elapsed_micros;
  EXPECT_TRUE(recorder.FrontierAt(t0 - 1).empty());
  EXPECT_EQ(recorder.FrontierAt(t0).size(), 1u);
  EXPECT_EQ(recorder.FrontierAt((t0 + t1) / 2).size(), 1u);
  EXPECT_EQ(recorder.FrontierAt(t1 + 1000000).size(), 2u);
  EXPECT_EQ(recorder.FinalFrontier().size(), 2u);
}

TEST(AnytimeRecorderTest, EmptyRecorder) {
  AnytimeRecorder recorder;
  EXPECT_TRUE(recorder.FinalFrontier().empty());
  EXPECT_TRUE(recorder.FrontierAt(1000000).empty());
}

TEST(AnytimeRecorderTest, FrontierAtBoundaries) {
  Fixture fx;
  AnytimeRecorder recorder;
  recorder.Start();
  Rng rng(6);
  AnytimeCallback cb = recorder.MakeCallback();
  // Ensure the first snapshot lands at a strictly positive timestamp so
  // "before the first snapshot" is a reachable query.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cb({RandomPlan(&fx.factory, &rng)});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cb({RandomPlan(&fx.factory, &rng), RandomPlan(&fx.factory, &rng)});
  ASSERT_EQ(recorder.snapshots().size(), 2u);
  int64_t t0 = recorder.snapshots()[0].elapsed_micros;
  int64_t t1 = recorder.snapshots()[1].elapsed_micros;
  ASSERT_GT(t0, 0);

  // Before the first snapshot: nothing had been produced yet.
  EXPECT_TRUE(recorder.FrontierAt(0).empty());
  EXPECT_TRUE(recorder.FrontierAt(-1).empty());
  EXPECT_TRUE(recorder.FrontierAt(t0 - 1).empty());
  // Exactly at a snapshot timestamp: that snapshot is current.
  EXPECT_EQ(recorder.FrontierAt(t0).size(), 1u);
  EXPECT_EQ(recorder.FrontierAt(t1).size(), 2u);
  // Past the last snapshot: the final frontier stays current.
  EXPECT_EQ(recorder.FrontierAt(t1 + 1).size(), 2u);
  EXPECT_EQ(recorder.FrontierAt(std::numeric_limits<int64_t>::max()).size(),
            2u);
}

TEST(StepAndRecordTest, RecordsSliceBoundarySnapshots) {
  Fixture fx;
  RmqConfig config;
  config.max_iterations = 5;
  RmqSession session(config);
  AnytimeRecorder recorder;
  Rng rng(7);
  recorder.Start();
  session.Begin(&fx.factory, &rng);
  std::vector<PlanPtr> final_plans =
      StepAndRecord(&session, Deadline(), &recorder);

  EXPECT_TRUE(session.Done());
  ASSERT_FALSE(final_plans.empty());
  ASSERT_FALSE(recorder.snapshots().empty());
  // One snapshot per frontier-changing step at most, plus the final one.
  EXPECT_LE(recorder.snapshots().size(), 6u);
  // The recorded final frontier matches the returned plans.
  EXPECT_EQ(recorder.FinalFrontier().size(), final_plans.size());
  // Timestamps are non-decreasing slice boundaries.
  for (size_t i = 1; i < recorder.snapshots().size(); ++i) {
    EXPECT_LE(recorder.snapshots()[i - 1].elapsed_micros,
              recorder.snapshots()[i].elapsed_micros);
  }
}

TEST(SampleMetricsTest, SizesAndDistinctness) {
  Rng rng(4);
  for (int l = 1; l <= 3; ++l) {
    std::vector<Metric> m = SampleMetrics(l, &rng);
    ASSERT_EQ(m.size(), static_cast<size_t>(l));
    std::set<Metric> distinct(m.begin(), m.end());
    EXPECT_EQ(distinct.size(), m.size());
  }
}

TEST(SampleMetricsTest, CoversAllMetricsAcrossDraws) {
  Rng rng(5);
  std::set<Metric> seen;
  for (int i = 0; i < 100; ++i) {
    for (Metric m : SampleMetrics(1, &rng)) seen.insert(m);
  }
  EXPECT_EQ(seen.size(), DefaultMetricPool().size());
}

TEST(MedianTest, OddEvenEmpty) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_TRUE(std::isinf(Median({})));
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(Median({1.0, inf})));
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, inf}), 2.0);
}

TEST(SuiteTest, StandardSuiteComposition) {
  std::vector<AlgorithmSpec> suite = StandardSuite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].name, "DP(Infinity)");
  EXPECT_EQ(suite[1].name, "DP(1000)");
  EXPECT_EQ(suite[2].name, "DP(2)");
  EXPECT_EQ(suite[3].name, "SA");
  EXPECT_EQ(suite[4].name, "2P");
  EXPECT_EQ(suite[5].name, "NSGA-II");
  EXPECT_EQ(suite[6].name, "II");
  EXPECT_EQ(suite[7].name, "RMQ");
  for (const AlgorithmSpec& spec : suite) {
    std::unique_ptr<Optimizer> opt = spec.make();
    ASSERT_NE(opt, nullptr);
    EXPECT_EQ(opt->name(), spec.name);
  }
}

TEST(SuiteTest, SpecByName) {
  AlgorithmSpec rmq = SpecByName("RMQ");
  ASSERT_NE(rmq.make, nullptr);
  EXPECT_EQ(rmq.make()->name(), "RMQ");
  AlgorithmSpec unknown = SpecByName("nope");
  EXPECT_EQ(unknown.make, nullptr);
}

TEST(FormatAlphaTest, Ranges) {
  EXPECT_EQ(FormatAlpha(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatAlpha(1.0), "1.000");
  EXPECT_EQ(FormatAlpha(2.5), "2.500");
  EXPECT_EQ(FormatAlpha(1e6), "1e6.0");
  EXPECT_EQ(FormatAlpha(1e40), "1e40.0");
}

TEST(ExperimentTest, SmokeRunProducesFullGrid) {
  ExperimentConfig config;
  config.title = "test";
  config.graphs = {GraphType::kChain};
  config.sizes = {4, 6};
  config.num_metrics = 2;
  config.queries_per_point = 2;
  config.timeout_ms = 20;
  config.num_checkpoints = 3;
  std::vector<AlgorithmSpec> suite = {SpecByName("II"), SpecByName("RMQ")};
  ExperimentResult result = RunExperiment(config, suite);

  ASSERT_EQ(result.cells.size(), 2u);
  ASSERT_EQ(result.checkpoint_micros.size(), 3u);
  for (const CellResult& cell : result.cells) {
    ASSERT_EQ(cell.series.size(), 2u);
    for (const CellSeries& s : cell.series) {
      ASSERT_EQ(s.median_alpha.size(), 3u);
      for (double a : s.median_alpha) {
        EXPECT_GE(a, 1.0);
      }
      // Alpha is non-increasing over time for anytime algorithms.
      for (size_t c = 1; c < s.median_alpha.size(); ++c) {
        EXPECT_LE(s.median_alpha[c], s.median_alpha[c - 1] * 1.0001);
      }
    }
  }
}

TEST(ExperimentTest, ClippingBoundsAlpha) {
  ExperimentConfig config;
  config.title = "clip";
  config.graphs = {GraphType::kStar};
  config.sizes = {10};
  config.queries_per_point = 1;
  config.timeout_ms = 20;
  config.num_checkpoints = 2;
  config.clip_alpha = 100.0;
  std::vector<AlgorithmSpec> suite = {SpecByName("SA"), SpecByName("RMQ")};
  ExperimentResult result = RunExperiment(config, suite);
  for (const CellResult& cell : result.cells) {
    for (const CellSeries& s : cell.series) {
      for (double a : s.median_alpha) {
        EXPECT_LE(a, 100.0);
      }
    }
  }
}

TEST(ExperimentTest, DpReferenceModeOnSmallQuery) {
  ExperimentConfig config;
  config.title = "dpref";
  config.graphs = {GraphType::kChain};
  config.sizes = {4};
  config.queries_per_point = 1;
  config.timeout_ms = 50;
  config.num_checkpoints = 2;
  config.reference = ReferenceMode::kDpReference;
  config.dp_reference_alpha = 1.01;
  config.dp_reference_timeout_ms = 20000;
  std::vector<AlgorithmSpec> suite = {SpecByName("RMQ")};
  ExperimentResult result = RunExperiment(config, suite);
  ASSERT_EQ(result.cells.size(), 1u);
  // With a formal reference the error is finite and >= 1.
  double final_alpha = result.cells[0].series[0].median_alpha.back();
  EXPECT_GE(final_alpha, 1.0);
  EXPECT_LT(final_alpha, 1e6);
}

TEST(ReportTest, PrintExperimentRendersAllSections) {
  ExperimentConfig config;
  config.title = "render";
  config.graphs = {GraphType::kChain};
  config.sizes = {4};
  config.queries_per_point = 1;
  config.timeout_ms = 10;
  config.num_checkpoints = 2;
  std::vector<AlgorithmSpec> suite = {SpecByName("II"), SpecByName("RMQ")};
  ExperimentResult result = RunExperiment(config, suite);
  std::ostringstream out;
  PrintExperiment(result, out);
  std::string text = out.str();
  EXPECT_NE(text.find("render"), std::string::npos);
  EXPECT_NE(text.find("chain, 4 tables"), std::string::npos);
  EXPECT_NE(text.find("II"), std::string::npos);
  EXPECT_NE(text.find("RMQ"), std::string::npos);
  EXPECT_NE(text.find("winner@final"), std::string::npos);
}

TEST(CsvTest, WritesOneRowPerSeriesPoint) {
  ExperimentConfig config;
  config.title = "csv";
  config.graphs = {GraphType::kChain};
  config.sizes = {4};
  config.queries_per_point = 1;
  config.timeout_ms = 10;
  config.num_checkpoints = 3;
  std::vector<AlgorithmSpec> suite = {SpecByName("II"), SpecByName("RMQ")};
  ExperimentResult result = RunExperiment(config, suite);
  std::ostringstream out;
  WriteExperimentCsv(result, out);
  std::string csv = out.str();
  EXPECT_EQ(csv.rfind("graph,tables,algorithm,time_ms,median_alpha\n", 0),
            0u);
  // Header + cells x algorithms x checkpoints rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 1 * 2 * 3);
  EXPECT_NE(csv.find("chain,4,RMQ,"), std::string::npos);
}

TEST(CsvTest, InfiniteAlphaRendered) {
  ExperimentResult result;
  result.config.title = "inf";
  result.checkpoint_micros = {1000};
  CellResult cell;
  cell.graph = GraphType::kStar;
  cell.size = 9;
  CellSeries series;
  series.algorithm = "DP(2)";
  series.median_alpha = {std::numeric_limits<double>::infinity()};
  cell.series.push_back(series);
  result.cells.push_back(cell);
  std::ostringstream out;
  WriteExperimentCsv(result, out);
  EXPECT_NE(out.str().find("star,9,DP(2),1,inf"), std::string::npos);
}

// The bench headline metric: Aggregate() counts deadline tasks and hits
// and derives the hit rate (vacuously 1.0 without deadline tasks).
TEST(BatchReportTest, DeadlineHitRateAggregates) {
  BatchReport report;
  report.Aggregate();
  EXPECT_EQ(report.deadline_tasks, 0u);
  EXPECT_EQ(report.deadline_hits, 0u);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 1.0);

  // Two deadline-free tasks, three deadline tasks of which two hit.
  for (int i = 0; i < 5; ++i) {
    BatchTaskResult task;
    task.index = i;
    task.had_deadline = i >= 2;
    task.deadline_hit = i >= 3;
    report.tasks.push_back(std::move(task));
  }
  report.Aggregate();
  EXPECT_EQ(report.deadline_tasks, 3u);
  EXPECT_EQ(report.deadline_hits, 2u);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 2.0 / 3.0);
  EXPECT_NE(report.Summary().find("deadlines: 2/3 hit"), std::string::npos);

  // Deadline-free reports keep the hit line out of the summary.
  BatchReport no_deadlines;
  no_deadlines.tasks.resize(2);
  no_deadlines.Aggregate();
  EXPECT_DOUBLE_EQ(no_deadlines.deadline_hit_rate, 1.0);
  EXPECT_EQ(no_deadlines.Summary().find("deadlines:"), std::string::npos);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.title = "determinism";
  config.graphs = {GraphType::kChain};
  config.sizes = {5};
  config.queries_per_point = 1;
  config.timeout_ms = 0;  // zero budget: nothing runs, all inf
  config.num_checkpoints = 2;
  std::vector<AlgorithmSpec> suite = {SpecByName("RMQ")};
  ExperimentResult a = RunExperiment(config, suite);
  ExperimentResult b = RunExperiment(config, suite);
  EXPECT_EQ(a.cells[0].series[0].median_alpha.size(),
            b.cells[0].series[0].median_alpha.size());
}

}  // namespace
}  // namespace moqo
