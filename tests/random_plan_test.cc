#include "plan/random_plan.h"

#include <gtest/gtest.h>

#include <map>

#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

// Checks structural validity: every leaf is a distinct table, every join
// combines disjoint table sets, and the root joins all query tables.
void CheckValid(const PlanPtr& p, const Query& query) {
  EXPECT_EQ(p->rel(), query.AllTables());
  std::vector<PlanPtr> stack = {p};
  int leaves = 0;
  while (!stack.empty()) {
    PlanPtr node = stack.back();
    stack.pop_back();
    if (node->IsJoin()) {
      EXPECT_TRUE(node->outer()->rel().DisjointWith(node->inner()->rel()));
      EXPECT_EQ(node->outer()->rel().Union(node->inner()->rel()), node->rel());
      stack.push_back(node->outer());
      stack.push_back(node->inner());
    } else {
      ++leaves;
      EXPECT_EQ(node->rel(), TableSet::Singleton(node->table()));
    }
  }
  EXPECT_EQ(leaves, query.NumTables());
}

class RandomPlanSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanSizeTest, ProducesValidPlans) {
  Fixture fx(GetParam());
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    CheckValid(p, fx.factory.query());
    EXPECT_EQ(p->NodeCount(), 2 * GetParam() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomPlanSizeTest,
                         ::testing::Values(1, 2, 3, 5, 10, 30, 100, 200));

TEST(RandomPlanTest, DeterministicForSameSeed) {
  Fixture fx(10);
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(RandomPlan(&fx.factory, &a)->ToString(),
              RandomPlan(&fx.factory, &b)->ToString());
  }
}

TEST(RandomPlanTest, GeneratesDiversePlans) {
  Fixture fx(8);
  Rng rng(5);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(RandomPlan(&fx.factory, &rng)->ToString());
  }
  EXPECT_GT(seen.size(), 40u);  // almost all draws distinct
}

TEST(RandomPlanTest, GeneratesBushyShapes) {
  // With 4+ tables, uniform tree sampling must produce at least one bushy
  // plan (both root children are joins) within a reasonable sample.
  Fixture fx(6);
  Rng rng(11);
  bool bushy = false;
  for (int i = 0; i < 100 && !bushy; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    bushy = p->outer()->IsJoin() && p->inner()->IsJoin();
  }
  EXPECT_TRUE(bushy);
}

TEST(RandomPlanTest, ShapeDistributionNotDegenerate) {
  // For 3 leaves there are 12 shapes x leaf assignments of the join tree
  // (2 shapes x 6 permutations); check both shapes appear.
  Fixture fx(3);
  Rng rng(13);
  int left_deep = 0;
  int right_deep = 0;
  for (int i = 0; i < 200; ++i) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    if (p->outer()->IsJoin()) ++left_deep;
    if (p->inner()->IsJoin()) ++right_deep;
  }
  EXPECT_GT(left_deep, 40);
  EXPECT_GT(right_deep, 40);
}

TEST(RandomPlanTest, UsesVariedOperators) {
  Fixture fx(10);
  Rng rng(17);
  std::set<JoinAlgorithm> join_ops;
  for (int i = 0; i < 30; ++i) {
    std::vector<PlanPtr> stack = {RandomPlan(&fx.factory, &rng)};
    while (!stack.empty()) {
      PlanPtr node = stack.back();
      stack.pop_back();
      if (node->IsJoin()) {
        join_ops.insert(node->join_op());
        stack.push_back(node->outer());
        stack.push_back(node->inner());
      }
    }
  }
  EXPECT_EQ(join_ops.size(), AllJoinAlgorithms().size());
}

TEST(RandomPlanTest, LeftDeepPlansAreLeftDeep) {
  Fixture fx(12);
  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    PlanPtr p = RandomLeftDeepPlan(&fx.factory, &rng);
    CheckValid(p, fx.factory.query());
    PlanPtr node = p;
    while (node->IsJoin()) {
      EXPECT_FALSE(node->inner()->IsJoin());  // inner is always a scan
      node = node->outer();
    }
  }
}

TEST(RandomPlanTest, SingleTablePlan) {
  Fixture fx(1);
  Rng rng(23);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  EXPECT_FALSE(p->IsJoin());
  EXPECT_EQ(p->NodeCount(), 1);
}

TEST(RandomPlanTest, RandomScanOpRespectsApplicability) {
  // Force a catalog without indexes: only full scans may appear.
  Catalog catalog;
  for (int i = 0; i < 4; ++i) catalog.AddTable({1000.0, 100.0, false});
  JoinGraph graph(4);
  for (int i = 0; i + 1 < 4; ++i) graph.AddEdge(i, i + 1, 0.1);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);
  Rng rng(29);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(RandomScanOp(&factory, i % 4, &rng), ScanAlgorithm::kFullScan);
  }
}

TEST(RandomPlanTest, RandomJoinOpCoversAllAlgorithms) {
  Rng rng(31);
  std::set<JoinAlgorithm> seen;
  for (int i = 0; i < 500; ++i) seen.insert(RandomJoinOp(&rng));
  EXPECT_EQ(seen.size(), AllJoinAlgorithms().size());
}

}  // namespace
}  // namespace moqo
