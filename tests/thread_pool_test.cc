// Direct tests for the service thread pool: FIFO ordering, contention,
// exception safety, and clean shutdown with queued work.
#include "service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace moqo {
namespace {

// With a single worker the execution order is exactly the submission
// order — the FIFO contract determinism-sensitive callers rely on.
TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

// Under contention every task runs exactly once, regardless of how the
// workers interleave.
TEST(ThreadPoolTest, ContentionRunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 500;
  ThreadPool pool(8);
  std::atomic<int> total{0};
  std::vector<std::atomic<int>> per_task(kTasks);
  for (auto& slot : per_task) slot = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&total, &per_task, i] {
      ++per_task[static_cast<size_t>(i)];
      ++total;
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), kTasks);
  for (const auto& slot : per_task) {
    EXPECT_EQ(slot.load(), 1);
  }
}

// A throwing task must not take its worker down: Wait() rethrows the first
// failure and the pool keeps executing subsequent work.
TEST(ThreadPoolTest, WaitRethrowsFirstTaskExceptionAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);

  // The error is consumed: the pool is reusable and Wait() is clean again.
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, MixedThrowingAndNormalTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i) {
    if (i % 4 == 0) {
      pool.Submit([] { throw std::runtime_error("boom"); });
    } else {
      pool.Submit([&ran] { ++ran; });
    }
  }
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the first task exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 30);
}

// Destroying the pool with work still queued drains the queue first: every
// submitted task runs before the workers join.
TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // No Wait(): the destructor must finish the backlog itself.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
}  // namespace moqo
