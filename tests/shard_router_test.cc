// Shard router suite: consistent-hash placement properties, the
// Submit/Drain/Stop + futures front door over N scheduler shards,
// bitwise-identical frontiers vs an unsharded reference (static
// membership and under AddShard/RemoveShard rebalances), report
// aggregation in router submission order, and a cross-shard ping-pong
// rebalance under load for the TSan tier.
#include "service/shard_router.h"

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/wire.h"

namespace moqo {
namespace {

OptimizerFactory RmqFactory(int max_iterations) {
  return [max_iterations] {
    RmqConfig config;
    config.max_iterations = max_iterations;
    return std::make_unique<Rmq>(config);
  };
}

std::vector<BatchTask> SmallBatch(int n, int tables,
                                  uint64_t master_seed = 2016) {
  GeneratorConfig generator;
  generator.num_tables = tables;
  return GenerateBatch(n, generator, master_seed, /*deadline_micros=*/0);
}

BatchReport BlockingReference(const std::vector<BatchTask>& tasks,
                              int iterations) {
  BatchConfig single;
  single.num_threads = 1;
  return BatchOptimizer(single, RmqFactory(iterations)).Run(tasks);
}

// Placement is a pure function of query + seed + membership: two routers
// with the same configuration agree on every task, and the distribution
// uses more than one shard for a reasonable workload.
TEST(ShardRouterTest, PlacementIsDeterministicAndSpread) {
  std::vector<BatchTask> tasks = SmallBatch(32, 6);
  ShardRouterConfig config;
  config.num_shards = 4;
  ShardRouter a(config, RmqFactory(5));
  ShardRouter b(config, RmqFactory(5));

  std::set<size_t> used;
  for (const BatchTask& task : tasks) {
    size_t owner = a.ShardFor(task);
    EXPECT_EQ(b.ShardFor(task), owner);
    EXPECT_LT(owner, 4u);
    used.insert(owner);
  }
  EXPECT_GE(used.size(), 2u) << "all 32 tasks hashed onto one shard";
}

// The consistent-hashing contract: growing membership only moves keys
// *onto* the new shard — no task migrates between two old shards — and
// shrinking moves only the removed shard's keys.
TEST(ShardRouterTest, MembershipChangeMovesOnlyAffectedKeys) {
  std::vector<BatchTask> tasks = SmallBatch(64, 6);
  ShardRouterConfig config;
  config.num_shards = 3;
  ShardRouter router(config, RmqFactory(5));

  std::map<size_t, size_t> before;
  for (size_t i = 0; i < tasks.size(); ++i) {
    before[i] = router.ShardFor(tasks[i]);
  }
  size_t added = router.AddShard();
  size_t moved = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    size_t owner = router.ShardFor(tasks[i]);
    if (owner != before[i]) {
      EXPECT_EQ(owner, added)
          << "task " << i << " moved between two pre-existing shards";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u) << "a new shard attracted no keys";
  EXPECT_LT(moved, tasks.size()) << "adding one shard reshuffled everything";

  // Removing the shard restores exactly the old placement.
  ASSERT_TRUE(router.RemoveShard(added));
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(router.ShardFor(tasks[i]), before[i]) << "task " << i;
  }
  router.Stop();
}

// The acceptance contract: a 4-shard router produces frontiers bitwise
// identical to the unsharded scheduler reference, delivered both through
// the Submit() futures and the aggregated Stop() report (in router
// submission order).
TEST(ShardRouterTest, StaticShardingMatchesUnshardedReference) {
  std::vector<BatchTask> tasks = SmallBatch(12, 6);
  BatchReport reference = BlockingReference(tasks, 20);

  ShardRouterConfig config;
  config.num_shards = 4;
  config.shard.num_threads = 2;
  ShardRouter router(config, RmqFactory(20));
  router.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = router.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  router.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, 20);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged across sharding";
  }

  BatchReport report = router.Stop();
  ASSERT_EQ(report.tasks.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(report.tasks[i].index, static_cast<int>(i));
    EXPECT_TRUE(BitwiseEqual(report.tasks[i].frontier,
                             reference.tasks[i].frontier))
        << "report slot " << i << " diverged";
  }
  EXPECT_EQ(report.migrated_tasks, 0u);
}

// Mid-run elasticity: shards added and removed while tasks are in flight
// rebalance via suspend -> wire -> resume, and every future still delivers
// the reference frontier bitwise.
TEST(ShardRouterTest, RebalanceUnderMembershipChangeIsInvisible) {
  std::vector<BatchTask> tasks = SmallBatch(16, 6);
  BatchReport reference = BlockingReference(tasks, 25);

  ShardRouterConfig config;
  config.num_shards = 2;
  config.shard.num_threads = 2;
  config.shard.steps_per_slice = 1;
  ShardRouter router(config, RmqFactory(25));
  router.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  size_t added = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto ticket = router.Submit(tasks[i]);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
    if (i == 5) added = router.AddShard();
    if (i == 11) {
      ASSERT_TRUE(router.RemoveShard(added));
    }
  }
  EXPECT_EQ(router.shard_count(), 2u);
  router.Drain();

  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, 25);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged across a rebalance";
  }
  BatchReport report = router.Stop();
  ASSERT_EQ(report.tasks.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(report.tasks[i].frontier,
                             reference.tasks[i].frontier))
        << "report slot " << i << " diverged";
  }
}

// Removing the last shard is refused; removing an unknown id is refused;
// membership cannot change on a stopped router.
TEST(ShardRouterTest, MembershipGuards) {
  ShardRouterConfig config;
  config.num_shards = 1;
  ShardRouter router(config, RmqFactory(5));
  EXPECT_FALSE(router.RemoveShard(0));  // last shard
  EXPECT_FALSE(router.RemoveShard(99));
  size_t added = router.AddShard();
  EXPECT_TRUE(router.RemoveShard(added));
  EXPECT_EQ(router.shard_count(), 1u);
  router.Stop();
  EXPECT_EQ(router.AddShard(), static_cast<size_t>(-1));
  EXPECT_FALSE(router.RemoveShard(0));
  EXPECT_EQ(router.shard_count(), 0u);
}

// Back-pressure passes through: a full kReject admission window on the
// owning shard surfaces as a rejected router Submit().
TEST(ShardRouterTest, RejectionPropagates) {
  std::vector<BatchTask> tasks = SmallBatch(6, 5);
  ShardRouterConfig config;
  config.num_shards = 1;  // one shard so the window applies to every task
  config.shard.max_open = 2;
  config.shard.admission = AdmissionPolicy::kReject;
  ShardRouter router(config, RmqFactory(5));
  // Not started: nothing drains, so the third admission must bounce.
  ASSERT_TRUE(router.Submit(tasks[0]).has_value());
  ASSERT_TRUE(router.Submit(tasks[1]).has_value());
  EXPECT_FALSE(router.Submit(tasks[2]).has_value());
  EXPECT_EQ(router.submitted_count(), 2u);
  router.Drain();
  BatchReport report = router.Stop();
  EXPECT_EQ(report.tasks.size(), 2u);
  // Stopped: everything is rejected.
  EXPECT_FALSE(router.Submit(tasks[3]).has_value());
}

// Cross-shard ping-pong under load (the TSan tier runs this): one thread
// keeps submitting while another repeatedly adds and removes a shard,
// forcing rebalances in both directions over live workers. Every future
// must deliver the blocking reference bitwise.
TEST(ShardRouterTest, PingPongRebalanceUnderLoadIsRaceFree) {
  constexpr int kTasks = 24;
  std::vector<BatchTask> tasks = SmallBatch(kTasks, 6);
  BatchReport reference = BlockingReference(tasks, 30);

  ShardRouterConfig config;
  config.num_shards = 2;
  config.shard.num_threads = 2;
  config.shard.steps_per_slice = 1;
  ShardRouter router(config, RmqFactory(30));
  router.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  tickets.reserve(kTasks);
  std::thread rebalancer([&] {
    for (int round = 0; round < 6; ++round) {
      size_t added = router.AddShard();
      std::this_thread::yield();
      ASSERT_TRUE(router.RemoveShard(added));
    }
  });
  for (const BatchTask& task : tasks) {
    auto ticket = router.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  rebalancer.join();
  router.Drain();

  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, 30);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged during ping-pong rebalancing";
  }
  BatchReport report = router.Stop();
  EXPECT_EQ(report.tasks.size(), tasks.size());
}

// The wire-level resume path a router rebalance exercises, spelled out:
// suspend off a live scheduler, encode, decode, re-attach the promise,
// resume on a different scheduler — the original future delivers.
TEST(ShardRouterTest, ManualWireHopDeliversThroughOriginalFuture) {
  std::vector<BatchTask> tasks = SmallBatch(1, 6);
  BatchReport reference = BlockingReference(tasks, 12);

  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler source(config, RmqFactory(12));
  OnlineScheduler destination(config, RmqFactory(12));
  destination.Start();

  auto ticket = source.Submit(tasks[0]);
  ASSERT_TRUE(ticket.has_value());
  auto suspended = source.Suspend(0);
  ASSERT_TRUE(suspended.has_value());

  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(*suspended));
  WireTask wire;
  ASSERT_TRUE(DecodeWireTask(frame, &wire));
  SuspendedTask rebuilt =
      ToSuspendedTask(std::move(wire), std::move(suspended->promise));
  suspended->MarkConsumed();  // promise handed to the rebuilt task

  ASSERT_TRUE(destination.Resume(rebuilt));
  destination.Drain();
  BatchTaskResult result = ticket->get();
  EXPECT_EQ(result.steps, 12);
  EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[0].frontier));
  source.Stop();
  destination.Stop();
}

}  // namespace
}  // namespace moqo
