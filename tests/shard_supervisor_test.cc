// Supervised process-per-shard failover, against real shardd children
// (path injected as MOQO_SHARDD_PATH): spawn, mixed local/remote routing,
// clean shutdown, and the headline gate — kill -9 a shard mid-stream and
// every original future still delivers a frontier bitwise identical to an
// unperturbed single-threaded reference.
#include "service/shard_supervisor.h"

#include <signal.h>

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/shard_router.h"

namespace moqo {
namespace {

constexpr int kIterations = 40;

OptimizerFactory RmqFactory(int max_iterations) {
  return [max_iterations] {
    RmqConfig config;
    config.max_iterations = max_iterations;
    return std::make_unique<Rmq>(config);
  };
}

std::vector<BatchTask> SmallBatch(int n, int tables,
                                  uint64_t master_seed = 2016) {
  GeneratorConfig generator;
  generator.num_tables = tables;
  return GenerateBatch(n, generator, master_seed, /*deadline_micros=*/0);
}

BatchReport BlockingReference(const std::vector<BatchTask>& tasks,
                              int iterations) {
  BatchConfig single;
  single.num_threads = 1;
  return BatchOptimizer(single, RmqFactory(iterations)).Run(tasks);
}

ShardSupervisorConfig SupervisorConfig() {
  ShardSupervisorConfig config;
  config.server_binary = MOQO_SHARDD_PATH;
  config.server_args = {"--iterations=" + std::to_string(kIterations),
                        "--steps-per-slice=2", "--snapshot-every=2",
                        "--threads=2", "--heartbeat-ms=100"};
  // Generous: slow sanitizer runs must not fake a death.
  config.remote.silence_timeout_ms = 20000;
  config.remote.op_timeout_ms = 20000;
  return config;
}

TEST(ShardSupervisorTest, MixedLocalAndRemoteShardsMatchReference) {
  std::vector<BatchTask> tasks = SmallBatch(10, 6);
  BatchReport reference = BlockingReference(tasks, kIterations);

  ShardRouterConfig router_config;
  router_config.num_shards = 1;
  router_config.shard.num_threads = 2;
  ShardRouter router(router_config, RmqFactory(kIterations));
  router.Start();
  ShardSupervisor supervisor(SupervisorConfig(), &router);
  size_t first = supervisor.SpawnShard();
  size_t second = supervisor.SpawnShard();
  ASSERT_NE(first, static_cast<size_t>(-1));
  ASSERT_NE(second, static_cast<size_t>(-1));
  EXPECT_EQ(supervisor.spawned(), 2u);
  EXPECT_GT(supervisor.ShardPid(first), 0);
  EXPECT_EQ(router.shard_count(), 3u);

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = router.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  router.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(tickets[i].get().frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged in the mixed deployment";
  }
  BatchReport report = router.Stop();
  EXPECT_EQ(report.tasks.size(), tasks.size());
  EXPECT_EQ(supervisor.failovers(), 0u);
}

// The headline gate: kill -9 one shard process with tasks in flight. The
// supervisor detects the death, replays from the last snapshots onto the
// survivors, and every ORIGINAL future delivers bitwise-identically.
TEST(ShardSupervisorTest, Kill9MidStreamFailsOverBitwiseIdentically) {
  std::vector<BatchTask> tasks = SmallBatch(12, 6);
  BatchReport reference = BlockingReference(tasks, kIterations);

  ShardRouterConfig router_config;
  router_config.num_shards = 1;  // one local survivor is always present
  router_config.shard.num_threads = 2;
  ShardRouter router(router_config, RmqFactory(kIterations));
  router.Start();
  ShardSupervisor supervisor(SupervisorConfig(), &router);
  size_t remote_a = supervisor.SpawnShard();
  size_t remote_b = supervisor.SpawnShard();
  ASSERT_NE(remote_a, static_cast<size_t>(-1));
  ASSERT_NE(remote_b, static_cast<size_t>(-1));

  // Pick a victim that will own work; fall back to remote_a if the ring
  // sends every task to the other shards (unlikely but legal).
  size_t victim = remote_a;
  for (const BatchTask& task : tasks) {
    size_t owner = router.ShardFor(task);
    if (owner == remote_a || owner == remote_b) {
      victim = owner;
      break;
    }
  }

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = router.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  ASSERT_TRUE(supervisor.KillShard(victim, SIGKILL));
  ASSERT_TRUE(supervisor.WaitForFailovers(1, /*timeout_ms=*/30000))
      << "death of the killed shard was never failed over";
  EXPECT_EQ(router.failed_shards(), 1u);

  router.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, kIterations);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged across the kill -9 failover";
  }
  // The kill landed right after the submit burst, so the victim still
  // held in-flight work that had to replay.
  EXPECT_GT(router.failover_replayed(), 0u);
  EXPECT_GE(router.migrations(), router.failover_replayed());
  BatchReport report = router.Stop();
  EXPECT_EQ(report.tasks.size(), tasks.size());
}

// No survivor: killing the only shard fails every in-flight future with
// the failover context (shard id, route key) instead of a bare
// broken_promise.
TEST(ShardSupervisorTest, KillWithoutSurvivorFailsFuturesWithContext) {
  std::vector<BatchTask> tasks = SmallBatch(4, 6);

  ShardRouterConfig router_config;
  router_config.num_shards = 0;  // remote-only deployment
  router_config.shard.num_threads = 2;
  ShardRouter router(router_config, RmqFactory(kIterations));
  router.Start();
  ShardSupervisor supervisor(SupervisorConfig(), &router);
  size_t only = supervisor.SpawnShard();
  ASSERT_NE(only, static_cast<size_t>(-1));

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = router.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  ASSERT_TRUE(supervisor.KillShard(only, SIGKILL));
  ASSERT_TRUE(supervisor.WaitForFailovers(1, /*timeout_ms=*/30000));

  size_t contextual_failures = 0;
  for (auto& ticket : tickets) {
    try {
      ticket.get();
      // A task that finished before the kill legitimately has a result.
    } catch (const std::runtime_error& e) {
      std::string what = e.what();
      EXPECT_NE(what.find("failover from shard"), std::string::npos) << what;
      EXPECT_NE(what.find("route key 0x"), std::string::npos) << what;
      EXPECT_NE(what.find("fingerprint 0x"), std::string::npos) << what;
      ++contextual_failures;
    }
  }
  EXPECT_GT(contextual_failures, 0u)
      << "the kill landed mid-stream; some futures must report the loss";
  router.Stop();
}

}  // namespace
}  // namespace moqo
