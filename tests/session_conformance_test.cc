// Session-conformance suite: for every optimizer, a stepped session with a
// fixed seed and iteration-bounded configuration must produce a frontier
// bitwise identical to the blocking Optimize() call — the contract that
// lets the service layer multiplex sessions without changing results.
#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dp.h"
#include "baselines/iterative_improvement.h"
#include "baselines/nsga2.h"
#include "baselines/simulated_annealing.h"
#include "baselines/two_phase.h"
#include "baselines/weighted_sum.h"
#include "core/rmq.h"
#include "query/generator.h"
#include "service/batch_optimizer.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

/// One iteration-bounded algorithm under test.
struct BoundedAlgorithm {
  std::string label;
  std::function<std::unique_ptr<Optimizer>()> make;
};

// Every configuration bounds its own work (iterations / generations /
// epochs / climbs; DP finishes the lattice), so sessions report Done()
// without any deadline and both run modes are deterministic.
std::vector<BoundedAlgorithm> AllBoundedAlgorithms() {
  std::vector<BoundedAlgorithm> algorithms;
  algorithms.push_back({"RMQ", [] {
                          RmqConfig config;
                          config.max_iterations = 25;
                          return std::make_unique<Rmq>(config);
                        }});
  algorithms.push_back({"DP(2)", [] {
                          DpConfig config;
                          config.alpha = 2.0;
                          return std::make_unique<DpOptimizer>(config);
                        }});
  algorithms.push_back({"NSGA-II", [] {
                          Nsga2Config config;
                          config.population_size = 30;
                          config.max_generations = 5;
                          return std::make_unique<Nsga2>(config);
                        }});
  algorithms.push_back({"SA", [] {
                          SaConfig config;
                          config.max_epochs = 20;
                          return std::make_unique<SimulatedAnnealing>(config);
                        }});
  algorithms.push_back({"II", [] {
                          IiConfig config;
                          config.max_iterations = 10;
                          return std::make_unique<IterativeImprovement>(
                              config);
                        }});
  algorithms.push_back({"2P", [] {
                          TwoPhaseConfig config;
                          config.phase_one_iterations = 5;
                          config.max_phase_two_epochs = 10;
                          return std::make_unique<TwoPhase>(config);
                        }});
  algorithms.push_back({"WeightedSum", [] {
                          WeightedSumConfig config;
                          config.num_weight_vectors = 8;
                          config.max_climbs = 10;
                          return std::make_unique<WeightedSum>(config);
                        }});
  return algorithms;
}

void ExpectBitwiseEqual(const std::vector<CostVector>& a,
                        const std::vector<CostVector>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << " vector " << i;
    for (int j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j])
          << label << " vector " << i << " metric " << j;
    }
  }
}

class SessionConformanceTest
    : public ::testing::TestWithParam<size_t> {};

// The core conformance property: stepping a session until Done() yields
// the same frontier as the blocking wrapper, bit for bit.
TEST_P(SessionConformanceTest, SteppedEqualsBlocking) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  Fixture fx(6);
  constexpr uint64_t kSeed = 2016;

  Rng blocking_rng(kSeed);
  std::vector<CostVector> blocking =
      CanonicalFrontier(algorithm.make()->Optimize(
          &fx.factory, &blocking_rng, Deadline(), nullptr));
  ASSERT_FALSE(blocking.empty()) << algorithm.label;

  std::unique_ptr<OptimizerSession> session =
      algorithm.make()->NewSession();
  Rng stepped_rng(kSeed);
  session->Begin(&fx.factory, &stepped_rng);
  int64_t steps = 0;
  while (!session->Done()) {
    session->Step();
    ASSERT_LT(++steps, 100000) << algorithm.label << " never reports Done";
  }
  EXPECT_EQ(session->session_stats().steps, steps);
  ExpectBitwiseEqual(CanonicalFrontier(session->Frontier()), blocking,
                     algorithm.label);
}

// Interleaving independence: stepping two sessions alternately changes
// neither result — the property cooperative multiplexing relies on.
TEST_P(SessionConformanceTest, InterleavedSteppingMatchesSolo) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  Fixture fx_a(6, /*seed=*/42);
  Fixture fx_b(7, /*seed=*/43);

  auto solo = [&](Fixture* fx, uint64_t seed) {
    std::unique_ptr<OptimizerSession> session =
        algorithm.make()->NewSession();
    Rng rng(seed);
    session->Begin(&fx->factory, &rng);
    while (!session->Done()) session->Step();
    return CanonicalFrontier(session->Frontier());
  };
  std::vector<CostVector> solo_a = solo(&fx_a, 1);
  std::vector<CostVector> solo_b = solo(&fx_b, 2);

  std::unique_ptr<OptimizerSession> session_a =
      algorithm.make()->NewSession();
  std::unique_ptr<OptimizerSession> session_b =
      algorithm.make()->NewSession();
  Rng rng_a(1);
  Rng rng_b(2);
  session_a->Begin(&fx_a.factory, &rng_a);
  session_b->Begin(&fx_b.factory, &rng_b);
  while (!session_a->Done() || !session_b->Done()) {
    session_a->Step();
    session_b->Step();
  }
  ExpectBitwiseEqual(CanonicalFrontier(session_a->Frontier()), solo_a,
                     algorithm.label + " (a)");
  ExpectBitwiseEqual(CanonicalFrontier(session_b->Frontier()), solo_b,
                     algorithm.label + " (b)");
}

// A session can be rewound and reused: Begin() resets all per-run state.
TEST_P(SessionConformanceTest, BeginResetsSession) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  Fixture fx(6);

  std::unique_ptr<OptimizerSession> session =
      algorithm.make()->NewSession();
  auto run = [&] {
    Rng rng(7);
    session->Begin(&fx.factory, &rng);
    while (!session->Done()) session->Step();
    return CanonicalFrontier(session->Frontier());
  };
  std::vector<CostVector> first = run();
  std::vector<CostVector> second = run();
  ExpectBitwiseEqual(first, second, algorithm.label);
}

// Warm-start conformance: seeding a session with the frontier a cold run
// of the same (query, seed) produced must not change the result by a
// single bit. The frontier-cache warm path depends on this — a warm hit
// may pre-seed the session, never perturb it.
TEST_P(SessionConformanceTest, WarmStartFromOwnFrontierIsBitwiseIdentical) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  Fixture fx(6);
  constexpr uint64_t kSeed = 2016;

  std::unique_ptr<OptimizerSession> cold = algorithm.make()->NewSession();
  Rng cold_rng(kSeed);
  cold->Begin(&fx.factory, &cold_rng);
  while (!cold->Done()) cold->Step();
  std::vector<PlanPtr> cold_plans = cold->Frontier();
  std::vector<CostVector> cold_frontier = CanonicalFrontier(cold_plans);
  ASSERT_FALSE(cold_frontier.empty()) << algorithm.label;

  std::unique_ptr<OptimizerSession> warm = algorithm.make()->NewSession();
  Rng warm_rng(kSeed);
  warm->BeginFrom(&fx.factory, &warm_rng, cold_plans);
  while (!warm->Done()) warm->Step();
  ExpectBitwiseEqual(CanonicalFrontier(warm->Frontier()), cold_frontier,
                     algorithm.label + " warm-vs-cold");
}

// BeginFrom with no warm plans is exactly Begin.
TEST_P(SessionConformanceTest, BeginFromEmptyMatchesBegin) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  Fixture fx(6);

  std::unique_ptr<OptimizerSession> plain = algorithm.make()->NewSession();
  Rng plain_rng(11);
  plain->Begin(&fx.factory, &plain_rng);
  while (!plain->Done()) plain->Step();

  std::unique_ptr<OptimizerSession> empty = algorithm.make()->NewSession();
  Rng empty_rng(11);
  empty->BeginFrom(&fx.factory, &empty_rng, {});
  while (!empty->Done()) empty->Step();
  ExpectBitwiseEqual(CanonicalFrontier(empty->Frontier()),
                     CanonicalFrontier(plain->Frontier()),
                     algorithm.label + " BeginFrom({})");
}

// The warm archive must survive checkpoint/restore: suspending a
// warm-started session mid-run and resuming it elsewhere yields the same
// frontier as the uninterrupted warm run.
TEST_P(SessionConformanceTest, CheckpointRoundTripPreservesWarmPlans) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  Fixture fx(6);
  constexpr uint64_t kSeed = 99;

  // The warm seed: a quick cold run with a different rng stream.
  std::unique_ptr<OptimizerSession> donor = algorithm.make()->NewSession();
  Rng donor_rng(7);
  donor->Begin(&fx.factory, &donor_rng);
  while (!donor->Done()) donor->Step();
  std::vector<PlanPtr> warm_plans = donor->Frontier();
  ASSERT_FALSE(warm_plans.empty()) << algorithm.label;

  std::unique_ptr<OptimizerSession> straight =
      algorithm.make()->NewSession();
  Rng straight_rng(kSeed);
  straight->BeginFrom(&fx.factory, &straight_rng, warm_plans);
  int straight_steps = 0;
  while (!straight->Done()) {
    straight->Step();
    ++straight_steps;
  }

  std::unique_ptr<OptimizerSession> interrupted =
      algorithm.make()->NewSession();
  Rng interrupted_rng(kSeed);
  interrupted->BeginFrom(&fx.factory, &interrupted_rng, warm_plans);
  for (int i = 0; i < straight_steps / 2 && !interrupted->Done(); ++i) {
    interrupted->Step();
  }
  std::vector<uint8_t> snapshot = interrupted->Checkpoint();

  std::unique_ptr<OptimizerSession> resumed =
      algorithm.make()->NewSession();
  Rng resumed_rng(0);  // overwritten by the checkpointed rng state
  ASSERT_TRUE(resumed->Restore(&fx.factory, &resumed_rng, snapshot))
      << algorithm.label;
  while (!resumed->Done()) resumed->Step();
  ExpectBitwiseEqual(CanonicalFrontier(resumed->Frontier()),
                     CanonicalFrontier(straight->Frontier()),
                     algorithm.label + " restore-vs-straight");
}

// Arena reclamation contract: ResetArena() frees the previous generation
// wholesale, but only once every escaped PlanPtr has died — handles pin
// the arena they were built in (observable through a weak handle), so
// recycling the factory between sessions can never invalidate plans the
// caller still holds.
TEST(PlanArenaLifetimeTest, ResetArenaReclaimsOldArenaOnceHandlesDie) {
  Fixture fx(5);
  std::weak_ptr<PlanArena> old_arena = fx.factory.arena();
  {
    PlanPtr scan = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
    fx.factory.ResetArena();
    // The escaped handle still pins the old generation; the factory has
    // already moved on to a fresh arena.
    EXPECT_FALSE(old_arena.expired());
    EXPECT_NE(fx.factory.arena().get(), old_arena.lock().get());
    EXPECT_FALSE(scan->ToString().empty());
  }
  EXPECT_TRUE(old_arena.expired());
}

// A finished session's frontier must survive arena recycling bit-for-bit:
// the service layer hands frontiers to clients while the factory is being
// reset for the next query, and new plans built into the fresh arena must
// not disturb the escaped ones.
TEST(PlanArenaLifetimeTest, FrontierSurvivesResetArenaAndSessionTeardown) {
  Fixture fx(6);
  RmqConfig config;
  config.max_iterations = 25;
  Rmq rmq(config);
  Rng rng(2016);
  std::unique_ptr<OptimizerSession> session = rmq.NewSession();
  session->Begin(&fx.factory, &rng);
  while (!session->Done()) session->Step();

  std::vector<PlanPtr> frontier = session->Frontier();
  ASSERT_FALSE(frontier.empty());
  std::vector<std::string> reprs;
  std::vector<CostVector> costs;
  for (const PlanPtr& plan : frontier) {
    reprs.push_back(plan->ToString());
    costs.push_back(plan->cost());
  }

  std::weak_ptr<PlanArena> old_arena = fx.factory.arena();
  fx.factory.ResetArena();
  session.reset();
  EXPECT_FALSE(old_arena.expired());  // the frontier pins its generation

  // Build into the fresh arena, then verify the escaped frontier is
  // untouched — structure and costs bitwise identical.
  PlanPtr fresh = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  ASSERT_NE(fresh, nullptr);
  for (size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_EQ(frontier[i]->ToString(), reprs[i]);
    const CostVector& cost = frontier[i]->cost();
    ASSERT_EQ(cost.size(), costs[i].size());
    for (int m = 0; m < cost.size(); ++m) {
      EXPECT_EQ(cost[m], costs[i][m]);
    }
  }

  frontier.clear();
  EXPECT_TRUE(old_arena.expired());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SessionConformanceTest,
    ::testing::Range<size_t>(0, 7),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = AllBoundedAlgorithms()[info.param].label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace moqo
