// Cross-module integration and end-to-end property tests.
//
// These tests exercise the full stack — query generation, cost model, plan
// space, every optimizer, and the evaluation machinery — and verify the
// system-level invariants the paper relies on:
//
//  * the principle of optimality (replacing a sub-plan by a dominating
//    same-format plan never worsens the full plan);
//  * every optimizer emits structurally valid complete plans;
//  * all randomized optimizers converge toward the exact frontier on small
//    queries;
//  * RMQ scales to 100-table queries within modest time budgets.
#include <gtest/gtest.h>

#include "baselines/dp.h"
#include "baselines/iterative_improvement.h"
#include "baselines/nsga2.h"
#include "baselines/simulated_annealing.h"
#include "baselines/two_phase.h"
#include "core/rmq.h"
#include "harness/suite.h"
#include "pareto/epsilon_indicator.h"
#include "plan/random_plan.h"
#include "plan/transformations.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  Fixture(int tables, int metrics, uint64_t seed,
          GraphType graph = GraphType::kChain)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          config.graph_type = graph;
          return GenerateQuery(config, &rng);
        }()),
        model([&] {
          std::vector<Metric> ms = {Metric::kTime, Metric::kBuffer,
                                    Metric::kDisk};
          ms.resize(static_cast<size_t>(metrics));
          return CostModel(ms);
        }()),
        factory(query, &model) {}
};

std::vector<CostVector> Costs(const std::vector<PlanPtr>& plans) {
  std::vector<CostVector> out;
  for (const PlanPtr& p : plans) out.push_back(p->cost());
  return out;
}

// Replaces the outer child of a join with a same-format plan that weakly
// dominates it and checks the rebuilt plan weakly dominates the original.
TEST(PrincipleOfOptimalityTest, DominatingSubPlanNeverWorsensWholePlan) {
  Fixture fx(8, 3, 42);
  Rng rng(1);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 50; ++trial) {
    PlanPtr p = RandomPlan(&fx.factory, &rng);
    if (!p->IsJoin() || !p->outer()->IsJoin()) continue;
    // Climb the outer sub-plan only; result weakly dominates it.
    PlanPtr improved_outer = p->outer();
    for (const PlanPtr& m : RootMutations(p->outer(), &fx.factory)) {
      if (SameOutput(*m, *p->outer()) &&
          m->cost().WeakDominates(p->outer()->cost())) {
        improved_outer = m;
        break;
      }
    }
    if (improved_outer == p->outer()) continue;
    PlanPtr rebuilt =
        fx.factory.MakeJoin(improved_outer, p->inner(), p->join_op());
    EXPECT_TRUE(rebuilt->cost().WeakDominates(p->cost()))
        << "principle of optimality violated for " << p->ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(AllOptimizersTest, EmitValidCompletePlans) {
  Fixture fx(10, 3, 7);
  for (const AlgorithmSpec& spec : StandardSuite()) {
    std::unique_ptr<Optimizer> opt = spec.make();
    Rng rng(11);
    std::vector<PlanPtr> plans = opt->Optimize(
        &fx.factory, &rng, Deadline::AfterMillis(100), nullptr);
    // DP variants may time out on 10 tables; everything else must deliver.
    if (spec.name.rfind("DP", 0) != 0) {
      ASSERT_FALSE(plans.empty()) << spec.name;
    }
    for (const PlanPtr& p : plans) {
      EXPECT_EQ(p->rel(), fx.factory.query().AllTables()) << spec.name;
      EXPECT_EQ(p->NodeCount(), 2 * 10 - 1) << spec.name;
    }
  }
}

TEST(AllOptimizersTest, CallbacksNeverReportDominatedFrontiers) {
  Fixture fx(8, 2, 13);
  for (const AlgorithmSpec& spec : {SpecByName("II"), SpecByName("RMQ"),
                                    SpecByName("NSGA-II")}) {
    std::unique_ptr<Optimizer> opt = spec.make();
    Rng rng(17);
    opt->Optimize(&fx.factory, &rng, Deadline::AfterMillis(60),
                  [&](const std::vector<PlanPtr>& frontier) {
                    for (const PlanPtr& a : frontier) {
                      for (const PlanPtr& b : frontier) {
                        if (a == b) continue;
                        if (spec.name == "RMQ" && !SameOutput(*a, *b)) {
                          continue;  // RMQ prunes per format
                        }
                        EXPECT_FALSE(
                            a->cost().StrictlyDominates(b->cost()))
                            << spec.name;
                      }
                    }
                  });
  }
}

TEST(ConvergenceTest, RandomizedAlgorithmsApproachExactFrontier) {
  // On a 4-table query every randomized algorithm should come within a
  // modest factor of the exact frontier given a generous budget.
  Fixture fx(4, 2, 19);
  std::vector<CostVector> exact =
      ParetoFilter(Costs(ExactParetoSet(&fx.factory)));
  ASSERT_FALSE(exact.empty());

  struct Expectation {
    const char* name;
    double max_alpha;
  };
  // SA/2P explore via absolute-delta random walks and II/NSGA-II via
  // restarts; all must land within a loose bound on this tiny query. RMQ
  // gets a tighter bound.
  for (const Expectation& e : {Expectation{"II", 100.0},
                               Expectation{"NSGA-II", 100.0},
                               Expectation{"RMQ", 30.0}}) {
    AlgorithmSpec spec = SpecByName(e.name);
    std::unique_ptr<Optimizer> opt = spec.make();
    Rng rng(23);
    std::vector<PlanPtr> plans = opt->Optimize(
        &fx.factory, &rng, Deadline::AfterMillis(400), nullptr);
    double alpha = AlphaError(Costs(plans), exact);
    EXPECT_LE(alpha, e.max_alpha) << e.name;
  }
}

TEST(ScalabilityTest, RmqHandlesHundredTables) {
  Fixture fx(100, 3, 29, GraphType::kStar);
  RmqSession rmq;
  Rng rng(31);
  rmq.Begin(&fx.factory, &rng);
  std::vector<PlanPtr> plans =
      RunSession(&rmq, Deadline::AfterMillis(1500));
  ASSERT_FALSE(plans.empty());
  EXPECT_GE(rmq.stats().iterations, 1);
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel().Count(), 100);
  }
}

TEST(ScalabilityTest, DpCannotHandleTwentyFiveTables) {
  // Reproduces the paper's headline observation: DP produces nothing for
  // 25-table queries within an interactive budget while RMQ does.
  Fixture fx(25, 2, 37);
  DpConfig config;
  config.alpha = 1000.0;
  DpOptimizer dp(config);
  Rng rng(41);
  EXPECT_TRUE(
      dp.Optimize(&fx.factory, &rng, Deadline::AfterMillis(300), nullptr)
          .empty());

  Rmq rmq;
  Rng rng2(43);
  EXPECT_FALSE(
      rmq.Optimize(&fx.factory, &rng2, Deadline::AfterMillis(300), nullptr)
          .empty());
}

TEST(SharedFactoryTest, AlgorithmsShareOneFactorySafely) {
  // The experiment harness runs all algorithms against one PlanFactory;
  // interleaving optimizers must not corrupt memoized statistics.
  Fixture fx(8, 2, 47);
  double card_before = fx.factory.Cardinality(fx.factory.query().AllTables());
  for (const AlgorithmSpec& spec :
       {SpecByName("SA"), SpecByName("RMQ"), SpecByName("II")}) {
    std::unique_ptr<Optimizer> opt = spec.make();
    Rng rng(53);
    opt->Optimize(&fx.factory, &rng, Deadline::AfterMillis(30), nullptr);
  }
  EXPECT_DOUBLE_EQ(
      fx.factory.Cardinality(fx.factory.query().AllTables()), card_before);
}

TEST(MetricSubsetTest, SingleMetricDegeneratesToClassicOptimization) {
  // With l = 1 all Pareto sets collapse to (near-)single plans.
  Fixture fx(6, 1, 59);
  std::vector<PlanPtr> exact = ExactParetoSet(&fx.factory);
  ASSERT_FALSE(exact.empty());
  // DP keeps one plan per output representation; after a cost-only Pareto
  // filter a single scalar optimum remains.
  std::vector<CostVector> filtered = ParetoFilter(Costs(exact));
  ASSERT_EQ(filtered.size(), 1u);
  double optimum = filtered.front()[0];

  Rmq rmq;
  Rng rng(61);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(300), nullptr);
  ASSERT_FALSE(plans.empty());
  double best_found = plans.front()->cost()[0];
  for (const PlanPtr& p : plans) {
    best_found = std::min(best_found, p->cost()[0]);
  }
  // Within a small factor of the optimum.
  EXPECT_LE(best_found, optimum * 30.0);
}

class EndToEndGridTest
    : public ::testing::TestWithParam<std::tuple<GraphType, int>> {};

TEST_P(EndToEndGridTest, RmqBeatsRandomSamplingEverywhere) {
  auto [graph, tables] = GetParam();
  Fixture fx(tables, 3, 67, graph);

  // Baseline: pure random sampling archive for the same plan count.
  Rmq rmq;
  Rng rng(71);
  std::vector<PlanPtr> rmq_plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(150), nullptr);
  ASSERT_FALSE(rmq_plans.empty());

  Rng rnd_rng(73);
  std::vector<CostVector> random_costs;
  for (int i = 0; i < 200; ++i) {
    random_costs.push_back(RandomPlan(&fx.factory, &rnd_rng)->cost());
  }
  std::vector<CostVector> reference =
      UnionFrontier({Costs(rmq_plans), random_costs});
  double rmq_alpha = AlphaError(Costs(rmq_plans), reference);
  double random_alpha = AlphaError(ParetoFilter(random_costs), reference);
  EXPECT_LE(rmq_alpha, random_alpha)
      << ToString(graph) << " " << tables << " tables";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EndToEndGridTest,
    ::testing::Combine(::testing::Values(GraphType::kChain, GraphType::kStar,
                                         GraphType::kCycle),
                       ::testing::Values(10, 30)));

}  // namespace
}  // namespace moqo
