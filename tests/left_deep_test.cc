// Tests for the left-deep plan-space extension (Section 4.1 of the paper
// notes the algorithm adapts to different join-order spaces by exchanging
// the random plan generator and the transformation rule set).
#include <gtest/gtest.h>

#include "core/pareto_climb.h"
#include "core/rmq.h"
#include "plan/random_plan.h"
#include "plan/transformations.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 8, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(LeftDeepTest, IsLeftDeepRecognizesShapes) {
  Fixture fx(6);
  Rng rng(1);
  PlanPtr ld = RandomLeftDeepPlan(&fx.factory, &rng);
  EXPECT_TRUE(IsLeftDeep(ld));

  // A bushy plan with two join children is not left-deep.
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr s2 = fx.factory.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr s3 = fx.factory.MakeScan(3, ScanAlgorithm::kFullScan);
  PlanPtr bushy = fx.factory.MakeJoin(
      fx.factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall),
      fx.factory.MakeJoin(s2, s3, JoinAlgorithm::kHashSmall),
      JoinAlgorithm::kHashSmall);
  EXPECT_FALSE(IsLeftDeep(bushy));
  EXPECT_TRUE(IsLeftDeep(s0));
}

TEST(LeftDeepTest, RootMutationsPreserveLeftDeepShape) {
  Fixture fx(8);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    PlanPtr p = RandomLeftDeepPlan(&fx.factory, &rng);
    for (const PlanPtr& m :
         RootMutations(p, &fx.factory, PlanSpace::kLeftDeep)) {
      EXPECT_TRUE(IsLeftDeep(m)) << m->ToString();
      EXPECT_EQ(m->rel(), p->rel());
    }
  }
}

TEST(LeftDeepTest, AllNeighborsPreserveLeftDeepShape) {
  Fixture fx(7);
  Rng rng(3);
  PlanPtr p = RandomLeftDeepPlan(&fx.factory, &rng);
  std::vector<PlanPtr> neighbors =
      AllNeighbors(p, &fx.factory, PlanSpace::kLeftDeep);
  EXPECT_FALSE(neighbors.empty());
  for (const PlanPtr& n : neighbors) {
    EXPECT_TRUE(IsLeftDeep(n)) << n->ToString();
  }
}

TEST(LeftDeepTest, LeftDeepNeighborhoodReachesAllJoinOrders) {
  // Left join exchange + bottom-pair commutativity generate all
  // permutations: verify a different table can reach the innermost
  // position within a few moves.
  Fixture fx(4);
  Rng rng(4);
  PlanPtr p = RandomLeftDeepPlan(&fx.factory, &rng);
  // Collect the tables seen at the innermost (leftmost) position across
  // the 2-step neighborhood.
  std::set<int> innermost;
  auto leftmost_table = [](const PlanPtr& plan) {
    PlanPtr node = plan;
    while (node->IsJoin()) node = node->outer();
    return node->table();
  };
  innermost.insert(leftmost_table(p));
  for (const PlanPtr& n1 :
       AllNeighbors(p, &fx.factory, PlanSpace::kLeftDeep)) {
    innermost.insert(leftmost_table(n1));
    for (const PlanPtr& n2 :
         AllNeighbors(n1, &fx.factory, PlanSpace::kLeftDeep)) {
      innermost.insert(leftmost_table(n2));
    }
  }
  EXPECT_GE(innermost.size(), 3u);
}

TEST(LeftDeepTest, ParetoClimbStaysLeftDeep) {
  Fixture fx(10);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    PlanPtr start = RandomLeftDeepPlan(&fx.factory, &rng);
    PlanPtr opt = ParetoClimb(start, &fx.factory, nullptr, Deadline(),
                              PlanSpace::kLeftDeep);
    EXPECT_TRUE(IsLeftDeep(opt));
    EXPECT_TRUE(opt->cost().WeakDominates(start->cost()));
  }
}

TEST(LeftDeepTest, RmqLeftDeepModeProducesLeftDeepFrontier) {
  Fixture fx(10);
  RmqConfig config;
  config.plan_space = PlanSpace::kLeftDeep;
  config.max_iterations = 20;
  Rmq rmq(config);
  EXPECT_EQ(rmq.name(), "RMQ[leftdeep]");
  Rng rng(6);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(30000), nullptr);
  ASSERT_FALSE(plans.empty());
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
    // Note: frontier approximation recombines cached sub-plans bottom-up
    // along the left-deep plan's intermediate results; since every cached
    // sub-plan under left-deep mode is left-deep, results stay left-deep.
    EXPECT_TRUE(IsLeftDeep(p)) << p->ToString();
  }
}

TEST(LeftDeepTest, BushyFrontierAtLeastAsGoodAsLeftDeep) {
  // The bushy space strictly contains the left-deep space, so with the
  // same budget the bushy frontier should not be dominated wholesale.
  Fixture fx(12, 7);
  auto run = [&](PlanSpace space) {
    RmqConfig config;
    config.plan_space = space;
    config.max_iterations = 60;
    Rmq rmq(config);
    Rng rng(8);
    return rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(30000),
                        nullptr);
  };
  std::vector<PlanPtr> bushy = run(PlanSpace::kBushy);
  std::vector<PlanPtr> left_deep = run(PlanSpace::kLeftDeep);
  ASSERT_FALSE(bushy.empty());
  ASSERT_FALSE(left_deep.empty());
  double best_bushy = kMaxCost;
  for (const PlanPtr& p : bushy) {
    best_bushy = std::min(best_bushy, p->cost().Sum());
  }
  double best_ld = kMaxCost;
  for (const PlanPtr& p : left_deep) {
    best_ld = std::min(best_ld, p->cost().Sum());
  }
  EXPECT_LE(best_bushy, best_ld * 20.0);
}

}  // namespace
}  // namespace moqo
