// Wire-format robustness suite: CRC32 vectors, query/catalog record
// round-trips, bitwise-identical continuation of a checkpointed task that
// crossed the wire, and exhaustive rejection of malformed frames —
// truncation at every byte (with and without a repaired CRC, so the
// structural full-consumption checks are exercised, not just the
// trailer), wrong magic/version, corrupted CRC, bit flips, and trailing
// garbage.
#include "service/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/query_fingerprint.h"
#include "core/rmq.h"
#include "query/generator.h"
#include "service/batch_optimizer.h"

namespace moqo {
namespace {

BatchTask MakeTask(int tables, uint64_t seed = 7,
                   int64_t deadline_micros = 0) {
  Rng rng(seed);
  GeneratorConfig config;
  config.num_tables = tables;
  BatchTask task;
  task.query = GenerateQuery(config, &rng);
  task.seed = seed * 1000 + 1;
  task.deadline_micros = deadline_micros;
  return task;
}

/// Re-stamps the CRC trailer of a frame whose body was modified, so the
/// structural validation paths are reached instead of the CRC check.
void RepairCrc(std::vector<uint8_t>* frame) {
  ASSERT_GE(frame->size(), 4u);
  uint32_t crc = Crc32(frame->data(), frame->size() - 4);
  for (int i = 0; i < 4; ++i) {
    (*frame)[frame->size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
}

/// Truncates `frame` to `body_bytes` of body and appends a freshly
/// computed (valid) CRC trailer.
std::vector<uint8_t> TruncateWithValidCrc(const std::vector<uint8_t>& frame,
                                          size_t body_bytes) {
  std::vector<uint8_t> out(frame.begin(),
                           frame.begin() + static_cast<ptrdiff_t>(body_bytes));
  uint32_t crc = Crc32(out.data(), out.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return out;
}

TEST(Crc32Test, KnownAnswerVectors) {
  // The standard CRC-32 check value (IEEE 802.3 / zlib).
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check.data()),
                  check.size()),
            0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
  const std::string a = "a";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(a.data()), a.size()),
            0xe8b7be43u);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37);
  }
  uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32(data), clean) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1 << bit);
    }
  }
}

TEST(WireQueryRecordTest, CatalogAndGraphRoundTripBitExact) {
  BatchTask task = MakeTask(9);
  CheckpointWriter writer;
  WriteQuery(&writer, *task.query);
  std::vector<uint8_t> buffer = writer.Take();

  CheckpointReader reader(buffer, nullptr);
  QueryPtr restored = ReadQuery(&reader);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
  // operator== compares doubles bit-for-value: the round-tripped catalog
  // and predicate list must be indistinguishable.
  EXPECT_TRUE(*restored == *task.query);
}

TEST(WireQueryRecordTest, RejectsInvalidRecords) {
  // Empty catalog: a query joins at least one table, and plan generation
  // indexes table 0 unconditionally in release builds.
  {
    CheckpointWriter writer;
    writer.WriteU32(0);
    std::vector<uint8_t> buffer = writer.Take();
    CheckpointReader reader(buffer, nullptr);
    Catalog catalog;
    EXPECT_FALSE(ReadCatalog(&reader, &catalog));
  }
  // Catalog with a non-positive cardinality.
  {
    CheckpointWriter writer;
    writer.WriteU32(1);
    writer.WriteDouble(0.0);  // cardinality must be > 0
    writer.WriteDouble(100.0);
    writer.WriteU8(0);
    std::vector<uint8_t> buffer = writer.Take();
    CheckpointReader reader(buffer, nullptr);
    Catalog catalog;
    EXPECT_FALSE(ReadCatalog(&reader, &catalog));
  }
  // Join graph with an out-of-range endpoint.
  {
    CheckpointWriter writer;
    writer.WriteU64(1);
    writer.WriteU32(0);
    writer.WriteU32(5);  // only 2 tables
    writer.WriteDouble(0.5);
    std::vector<uint8_t> buffer = writer.Take();
    CheckpointReader reader(buffer, nullptr);
    JoinGraph graph;
    EXPECT_FALSE(ReadJoinGraph(&reader, /*num_tables=*/2, &graph));
  }
  // Join graph with a selectivity outside (0, 1].
  {
    CheckpointWriter writer;
    writer.WriteU64(1);
    writer.WriteU32(0);
    writer.WriteU32(1);
    writer.WriteDouble(1.5);
    std::vector<uint8_t> buffer = writer.Take();
    CheckpointReader reader(buffer, nullptr);
    JoinGraph graph;
    EXPECT_FALSE(ReadJoinGraph(&reader, /*num_tables=*/2, &graph));
  }
  // Self-join edge.
  {
    CheckpointWriter writer;
    writer.WriteU64(1);
    writer.WriteU32(1);
    writer.WriteU32(1);
    writer.WriteDouble(0.5);
    std::vector<uint8_t> buffer = writer.Take();
    CheckpointReader reader(buffer, nullptr);
    JoinGraph graph;
    EXPECT_FALSE(ReadJoinGraph(&reader, /*num_tables=*/2, &graph));
  }
}

TEST(WireTaskTest, FreshTaskRoundTrip) {
  BatchTask task = MakeTask(8, /*seed=*/21, /*deadline_micros=*/250000);
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));

  WireTask decoded;
  ASSERT_TRUE(DecodeWireTask(frame, &decoded));
  EXPECT_TRUE(*decoded.task.query == *task.query);
  EXPECT_EQ(decoded.task.seed, task.seed);
  EXPECT_EQ(decoded.task.deadline_micros, task.deadline_micros);
  EXPECT_TRUE(decoded.had_deadline);
  EXPECT_EQ(decoded.remaining_micros, task.deadline_micros);
  EXPECT_EQ(decoded.steps, 0);
  EXPECT_TRUE(decoded.checkpoint.empty());
  // The rebuilt query is a new object with the same value, so the
  // placement key — and therefore the shard — is unchanged by the hop.
  EXPECT_EQ(RouteKey(decoded.task), RouteKey(task));
}

// The determinism gate: a session checkpointed mid-run, shipped through
// the wire (query rebuilt from bytes on the "other side"), and restored
// against the rebuilt query must finish bitwise identical to the
// uninterrupted run.
TEST(WireTaskTest, MidRunCheckpointRestoresBitIdenticallyAcrossTheWire) {
  BatchTask task = MakeTask(7, /*seed=*/4);
  RmqConfig rmq_config;
  rmq_config.max_iterations = 18;
  Rmq rmq(rmq_config);
  CostModel model({Metric::kTime, Metric::kBuffer});

  // Uninterrupted reference.
  PlanFactory reference_factory(task.query, &model);
  Rng reference_rng(task.seed);
  auto reference = rmq.NewSession();
  reference->Begin(&reference_factory, &reference_rng);
  while (!reference->Done()) reference->Step();

  // Run half the steps, checkpoint, and put the task on the wire.
  PlanFactory source_factory(task.query, &model);
  Rng source_rng(task.seed);
  auto source = rmq.NewSession();
  source->Begin(&source_factory, &source_rng);
  for (int i = 0; i < 9; ++i) source->Step();
  WireTask wire = MakeWireTask(task);
  wire.checkpoint = source->Checkpoint();
  wire.steps = source->session_stats().steps;
  std::vector<uint8_t> frame = EncodeWireTask(wire);

  // The "receiving shard": everything below uses only the decoded frame.
  WireTask decoded;
  ASSERT_TRUE(DecodeWireTask(frame, &decoded));
  ASSERT_TRUE(*decoded.task.query == *task.query);
  PlanFactory destination_factory(decoded.task.query, &model);
  Rng destination_rng(decoded.task.seed);
  auto destination = rmq.NewSession();
  ASSERT_TRUE(destination->Restore(&destination_factory, &destination_rng,
                                   decoded.checkpoint));
  EXPECT_EQ(destination->session_stats().steps, 9);
  while (!destination->Done()) destination->Step();

  std::vector<CostVector> expected = CanonicalFrontier(reference->Frontier());
  std::vector<CostVector> actual = CanonicalFrontier(destination->Frontier());
  EXPECT_TRUE(BitwiseEqual(actual, expected))
      << "wire round-trip changed the result";
  EXPECT_EQ(destination->session_stats().steps,
            reference->session_stats().steps);
}

TEST(WireTaskTest, RejectsTruncationAtEveryByte) {
  BatchTask task = MakeTask(6, /*seed=*/9, /*deadline_micros=*/1000);
  WireTask wire = MakeWireTask(task);
  wire.checkpoint = {1, 2, 3, 4, 5};  // opaque payload, exercises ReadBytes
  std::vector<uint8_t> frame = EncodeWireTask(wire);
  WireTask decoded;
  ASSERT_TRUE(DecodeWireTask(frame, &decoded));

  for (size_t len = 0; len < frame.size(); ++len) {
    std::vector<uint8_t> truncated(frame.begin(),
                                   frame.begin() +
                                       static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodeWireTask(truncated, &decoded))
        << "accepted a frame truncated to " << len << " bytes";
  }
}

// Truncation with a *repaired* CRC reaches the structural parser at every
// field boundary; the parser must reject every prefix on its own (reads
// past the body, or leftover bytes when a shorter parse "succeeds").
TEST(WireTaskTest, RejectsRepairedCrcTruncationAtEveryByte) {
  BatchTask task = MakeTask(6, /*seed=*/9, /*deadline_micros=*/1000);
  WireTask wire = MakeWireTask(task);
  wire.checkpoint = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame = EncodeWireTask(wire);
  const size_t body_size = frame.size() - 4;

  WireTask decoded;
  for (size_t body = 0; body < body_size; ++body) {
    std::vector<uint8_t> candidate = TruncateWithValidCrc(frame, body);
    EXPECT_FALSE(DecodeWireTask(candidate, &decoded))
        << "accepted a structurally truncated body of " << body << " bytes";
  }
}

TEST(WireTaskTest, RejectsTrailingGarbageEvenWithValidCrc) {
  BatchTask task = MakeTask(6);
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  WireTask decoded;

  // Plain appended garbage: caught by the CRC.
  std::vector<uint8_t> padded = frame;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeWireTask(padded, &decoded));

  // Garbage framed deliberately (CRC recomputed over the padded body):
  // only the full-consumption check can catch this.
  std::vector<uint8_t> body(frame.begin(), frame.end() - 4);
  body.push_back(0xab);
  body.push_back(0xcd);
  uint32_t crc = Crc32(body);
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  EXPECT_FALSE(DecodeWireTask(body, &decoded))
      << "accepted trailing garbage behind a valid CRC";
}

TEST(WireTaskTest, RejectsWrongMagicVersionAndCorruptCrc) {
  BatchTask task = MakeTask(6);
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  WireTask decoded;

  std::vector<uint8_t> wrong_magic = frame;
  wrong_magic[0] ^= 0xff;
  RepairCrc(&wrong_magic);
  EXPECT_FALSE(DecodeWireTask(wrong_magic, &decoded));

  std::vector<uint8_t> wrong_version = frame;
  wrong_version[4] ^= 0x01;
  RepairCrc(&wrong_version);
  EXPECT_FALSE(DecodeWireTask(wrong_version, &decoded));

  std::vector<uint8_t> bad_crc = frame;
  bad_crc[bad_crc.size() - 1] ^= 0x01;
  EXPECT_FALSE(DecodeWireTask(bad_crc, &decoded));

  EXPECT_FALSE(DecodeWireTask({}, &decoded));
  EXPECT_FALSE(DecodeWireTask({0x4d, 0x4f, 0x51, 0x57}, &decoded));
}

TEST(WireTaskTest, RejectsBodyBitFlips) {
  BatchTask task = MakeTask(5, /*seed=*/3, /*deadline_micros=*/500);
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  WireTask decoded;
  // Without a CRC repair every flip is caught by the trailer check.
  for (size_t pos = 0; pos + 4 < frame.size(); pos += 7) {
    std::vector<uint8_t> corrupt = frame;
    corrupt[pos] ^= 0x10;
    EXPECT_FALSE(DecodeWireTask(corrupt, &decoded)) << "byte " << pos;
  }
}

// The scheduler treats deadline_micros <= 0 as "no deadline"; the encoder
// must normalize such a task instead of producing a frame its own decoder
// rejects (which would strand the task on a shard it can never leave).
// Oversized windows are clamped the same way Deadline::AfterMicros does.
TEST(WireTaskTest, DeadlineIsNormalizedNotRejected) {
  BatchTask task = MakeTask(5, /*seed=*/2, /*deadline_micros=*/-5);
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  WireTask decoded;
  ASSERT_TRUE(DecodeWireTask(frame, &decoded));
  EXPECT_EQ(decoded.task.deadline_micros, 0);
  EXPECT_FALSE(decoded.had_deadline);

  BatchTask huge = MakeTask(5, /*seed=*/2, INT64_MAX);
  ASSERT_TRUE(DecodeWireTask(EncodeWireTask(MakeWireTask(huge)), &decoded));
  EXPECT_EQ(decoded.task.deadline_micros, kMaxDeadlineMicros);

  // A foreign encoder shipping an un-clamped window is rejected: the
  // decoder bounds every field, not just the ones our encoder normalizes.
  WireTask raw = MakeWireTask(huge);
  raw.task.deadline_micros = INT64_MAX;
  EXPECT_FALSE(DecodeWireTask(EncodeWireTask(raw), &decoded));
}

// The 3-argument decode names the failure, so a rejection surfaced over
// the transport (shard server kReject, failover replay error) tells the
// operator WHAT was malformed, not just that something was.
TEST(WireTaskTest, DecodeFailuresCarryAReason) {
  BatchTask task = MakeTask(5, /*seed=*/11);
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  WireTask decoded;
  std::string why;

  EXPECT_FALSE(DecodeWireTask({}, &decoded, &why));
  EXPECT_EQ(why, "frame too short");

  std::vector<uint8_t> flipped = frame;
  flipped[frame.size() / 2] ^= 0x40;
  EXPECT_FALSE(DecodeWireTask(flipped, &decoded, &why));
  EXPECT_EQ(why, "CRC mismatch");

  std::vector<uint8_t> wrong_magic = frame;
  wrong_magic[0] ^= 0xff;
  RepairCrc(&wrong_magic);
  EXPECT_FALSE(DecodeWireTask(wrong_magic, &decoded, &why));
  EXPECT_EQ(why, "bad magic");

  std::vector<uint8_t> future_version = frame;
  future_version[4] = 0xee;
  RepairCrc(&future_version);
  EXPECT_FALSE(DecodeWireTask(future_version, &decoded, &why));
  EXPECT_EQ(why, "unsupported version");

  std::vector<uint8_t> padded = frame;
  padded.insert(padded.end() - 4, {0x00, 0x00});
  RepairCrc(&padded);
  EXPECT_FALSE(DecodeWireTask(padded, &decoded, &why));
  EXPECT_EQ(why, "trailing bytes after payload");

  // A success leaves the reason empty; a null reason pointer is legal.
  ASSERT_TRUE(DecodeWireTask(frame, &decoded, &why));
  EXPECT_TRUE(why.empty());
  ASSERT_TRUE(DecodeWireTask(frame, &decoded, nullptr));
}

TEST(WireTaskTest, TaskResultRoundTripsBitwise) {
  BatchTaskResult result;
  result.index = 42;  // NOT carried: the receiver re-stamps it.
  result.optimize_millis = 3.25;
  result.elapsed_millis = 7.5;
  result.admit_millis = 0.125;
  result.steps = 977;
  result.had_deadline = true;
  result.deadline_hit = true;
  CostVector a(2), b(2);
  a[0] = 1.5;
  a[1] = 8.0;
  b[0] = 2.75;
  b[1] = 4.0;
  result.frontier = {a, b};

  CheckpointWriter writer;
  EncodeTaskResult(&writer, result);
  std::vector<uint8_t> body = writer.Take();

  CheckpointReader reader(body, /*factory=*/nullptr);
  BatchTaskResult decoded;
  ASSERT_TRUE(DecodeTaskResult(&reader, &decoded));
  EXPECT_EQ(decoded.index, -1);
  EXPECT_EQ(decoded.optimize_millis, result.optimize_millis);
  EXPECT_EQ(decoded.elapsed_millis, result.elapsed_millis);
  EXPECT_EQ(decoded.admit_millis, result.admit_millis);
  EXPECT_EQ(decoded.steps, result.steps);
  EXPECT_TRUE(decoded.had_deadline);
  EXPECT_TRUE(decoded.deadline_hit);
  EXPECT_FALSE(decoded.gave_up);
  EXPECT_FALSE(decoded.migrated);
  EXPECT_TRUE(BitwiseEqual(decoded.frontier, result.frontier));
}

TEST(WireTaskTest, TaskResultDecodeRejectsMalformedBodies) {
  BatchTaskResult result;
  result.steps = 10;
  CostVector v(2);
  v[0] = 1.0;
  v[1] = 2.0;
  result.frontier = {v};
  CheckpointWriter writer;
  EncodeTaskResult(&writer, result);
  std::vector<uint8_t> body = writer.Take();

  // Truncation at every byte runs the reader out of input.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    std::vector<uint8_t> torn(body.begin(),
                              body.begin() + static_cast<ptrdiff_t>(cut));
    CheckpointReader reader(torn, nullptr);
    BatchTaskResult decoded;
    EXPECT_FALSE(DecodeTaskResult(&reader, &decoded)) << "cut " << cut;
  }

  // Structural garbage: a bool byte that is neither 0 nor 1, negative
  // steps, an out-of-range frontier count, a non-finite timing.
  {
    std::vector<uint8_t> bad_bool = body;
    bad_bool[3 * 8 + 8] = 2;  // first bool byte after 3 doubles + i64
    CheckpointReader reader(bad_bool, nullptr);
    BatchTaskResult decoded;
    EXPECT_FALSE(DecodeTaskResult(&reader, &decoded));
  }
  {
    BatchTaskResult negative = result;
    negative.steps = -4;
    CheckpointWriter bad_writer;
    EncodeTaskResult(&bad_writer, negative);
    std::vector<uint8_t> bad = bad_writer.Take();
    CheckpointReader reader(bad, nullptr);
    BatchTaskResult decoded;
    EXPECT_FALSE(DecodeTaskResult(&reader, &decoded));
  }
  {
    BatchTaskResult infinite = result;
    infinite.optimize_millis = -1.0;
    CheckpointWriter bad_writer;
    EncodeTaskResult(&bad_writer, infinite);
    std::vector<uint8_t> bad = bad_writer.Take();
    CheckpointReader reader(bad, nullptr);
    BatchTaskResult decoded;
    EXPECT_FALSE(DecodeTaskResult(&reader, &decoded));
  }
}

// Route keys are quoted in failover/migration error messages; the fixed
// sixteen-digit form keeps two renderings of the same key identical.
TEST(WireTaskTest, RouteKeyStringIsFixedWidthLowercaseHex) {
  EXPECT_EQ(RouteKeyString(0), "0x0000000000000000");
  EXPECT_EQ(RouteKeyString(0xabcdefull), "0x0000000000abcdef");
  EXPECT_EQ(RouteKeyString(0xFFFFFFFFFFFFFFFFull), "0xffffffffffffffff");
  BatchTask task = MakeTask(6, /*seed=*/3);
  std::string rendered = RouteKeyString(RouteKey(task));
  EXPECT_EQ(rendered.size(), 18u);
  EXPECT_EQ(rendered.substr(0, 2), "0x");
}

TEST(WireTaskTest, RouteKeyIsStableAndSeedSensitive) {
  BatchTask task = MakeTask(8, /*seed=*/13);
  uint64_t key = RouteKey(task);
  EXPECT_EQ(RouteKey(task), key);  // pure

  // Same query content in a distinct object: same key (placement must
  // survive serialization and process boundaries).
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  WireTask decoded;
  ASSERT_TRUE(DecodeWireTask(frame, &decoded));
  EXPECT_EQ(RouteKey(decoded.task), key);

  // A different seed is a different task and may land elsewhere.
  BatchTask reseeded = task;
  reseeded.seed ^= 1;
  EXPECT_NE(RouteKey(reseeded), key);
}

// served_from_cache travels with the result so routers can distinguish a
// shard-side cache answer from a computed one.
TEST(WireTaskTest, TaskResultCarriesServedFromCache) {
  BatchTaskResult result;
  result.steps = 0;
  result.served_from_cache = true;
  CostVector v(2);
  v[0] = 1.0;
  v[1] = 2.0;
  result.frontier = {v};
  CheckpointWriter writer;
  EncodeTaskResult(&writer, result);
  std::vector<uint8_t> body = writer.Take();
  CheckpointReader reader(body, nullptr);
  BatchTaskResult decoded;
  ASSERT_TRUE(DecodeTaskResult(&reader, &decoded));
  EXPECT_TRUE(decoded.served_from_cache);
}

// The canonical fingerprint is stamped once at the sender and verified at
// the receiver, so per-shard caches key identically without recomputing
// canonicalization on the hot path.
TEST(WireTaskTest, FingerprintIsStampedAndSurvivesTheWire) {
  BatchTask task = MakeTask(7, /*seed=*/5);
  WireTask wire = MakeWireTask(task);
  EXPECT_EQ(wire.task.fingerprint, QueryFingerprint(*task.query));
  EXPECT_NE(wire.task.fingerprint, 0u);

  std::vector<uint8_t> frame = EncodeWireTask(wire);
  WireTask decoded;
  ASSERT_TRUE(DecodeWireTask(frame, &decoded));
  EXPECT_EQ(decoded.task.fingerprint, wire.task.fingerprint);
  EXPECT_EQ(FingerprintOf(decoded.task), wire.task.fingerprint);
}

// A frame whose stamped fingerprint disagrees with the query it carries is
// rejected (valid CRC or not) — a shard must never poison its cache with a
// mislabeled frontier.
TEST(WireTaskTest, RejectsFingerprintMismatch) {
  BatchTask task = MakeTask(6, /*seed=*/11);
  WireTask wire = MakeWireTask(task);
  wire.task.fingerprint ^= 1;  // CRC is computed over the lie at encode
  std::vector<uint8_t> frame = EncodeWireTask(wire);
  WireTask decoded;
  std::string why;
  EXPECT_FALSE(DecodeWireTask(frame, &decoded, &why));
  EXPECT_NE(why.find("fingerprint mismatch"), std::string::npos) << why;
}

// Isomorphic relabelings of a query produce the same fingerprint, hence
// the same route key for the same seed: repeats of a shape land on the
// same shard no matter how the client numbered its tables.
TEST(WireTaskTest, RelabeledQueryKeepsRouteKey) {
  BatchTask task = MakeTask(5, /*seed=*/17);
  const Query& query = *task.query;
  const int n = query.NumTables();
  // Rotate table ids by one.
  std::vector<int> perm(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) perm[static_cast<size_t>(t)] = (t + 1) % n;
  std::vector<TableStats> stats(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    stats[static_cast<size_t>(perm[static_cast<size_t>(t)])] =
        query.catalog().Table(t);
  }
  JoinGraph graph(n);
  for (const JoinEdge& edge : query.graph().Edges()) {
    graph.AddEdge(perm[static_cast<size_t>(edge.left)],
                  perm[static_cast<size_t>(edge.right)], edge.selectivity);
  }
  BatchTask relabeled = task;
  relabeled.query = std::make_shared<Query>(Catalog(std::move(stats)),
                                            std::move(graph));
  relabeled.fingerprint = 0;  // force recomputation from the new object
  BatchTask original = task;
  original.fingerprint = 0;
  EXPECT_EQ(FingerprintOf(relabeled), FingerprintOf(original));
  EXPECT_EQ(RouteKey(relabeled), RouteKey(original));
}

}  // namespace
}  // namespace moqo
