#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/pareto_climb.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

TEST(AnalysisTest, DominanceProbabilityLemma3) {
  EXPECT_DOUBLE_EQ(DominanceProbability(1), 0.5);
  EXPECT_DOUBLE_EQ(DominanceProbability(2), 0.25);
  EXPECT_DOUBLE_EQ(DominanceProbability(3), 0.125);
}

TEST(AnalysisTest, NoDominatingNeighborLemma4) {
  // u(n, i) = (1 - (1/2)^(l*i))^n.
  EXPECT_DOUBLE_EQ(NoDominatingNeighborProbability(1, 1, 1), 0.5);
  EXPECT_NEAR(NoDominatingNeighborProbability(2, 1, 2), 0.75 * 0.75, 1e-12);
  // Longer paths make domination of all visited plans harder.
  for (int i = 1; i < 10; ++i) {
    EXPECT_LE(NoDominatingNeighborProbability(10, i, 2),
              NoDominatingNeighborProbability(10, i + 1, 2));
  }
  // More neighbors make escape easier (u decreases in n).
  for (int n = 1; n < 10; ++n) {
    EXPECT_GE(NoDominatingNeighborProbability(n, 3, 2),
              NoDominatingNeighborProbability(n + 1, 3, 2));
  }
}

TEST(AnalysisTest, ExpectedPathLengthFinite) {
  for (int l : {1, 2, 3}) {
    for (int n : {10, 25, 50, 100}) {
      double e = ExpectedClimbPathLength(n, l);
      EXPECT_GT(e, 1.0) << n << " " << l;
      EXPECT_LT(e, 3.0 * n) << n << " " << l;
    }
  }
}

TEST(AnalysisTest, ExpectedPathLengthGrowsSlowlyInTables) {
  // Theorem 2: expected path length is O(n); empirically it grows far
  // slower (the paper measures ~4-6 between 10 and 100 tables).
  double e10 = ExpectedClimbPathLength(10, 3);
  double e100 = ExpectedClimbPathLength(100, 3);
  EXPECT_LT(e100, e10 * 10.0);
  EXPECT_GT(e100, e10);  // monotone in n
}

TEST(AnalysisTest, MoreMetricsShortenExpectedPaths) {
  // Dominating neighbors are rarer with more metrics, so climbs end
  // sooner.
  EXPECT_GT(ExpectedClimbPathLength(50, 1), ExpectedClimbPathLength(50, 2));
  EXPECT_GT(ExpectedClimbPathLength(50, 2), ExpectedClimbPathLength(50, 3));
}

TEST(AnalysisTest, LocalOptimumProbabilityLemma5) {
  EXPECT_DOUBLE_EQ(LocalOptimumProbability(1, 1), 0.5);
  EXPECT_NEAR(LocalOptimumProbability(2, 2), 0.75 * 0.75, 1e-12);
  // Exponential decay in the neighbor count.
  EXPECT_LT(LocalOptimumProbability(100, 3), 1e-5);
  // More metrics -> more local optima.
  EXPECT_LT(LocalOptimumProbability(20, 1), LocalOptimumProbability(20, 3));
}

TEST(AnalysisTest, MeasuredPathLengthsSameOrderAsTheory) {
  // The statistical model is deliberately crude, but measured climb path
  // lengths should land within a small constant factor of its prediction
  // (Figure 3 left vs Theorem 1).
  Rng rng(42);
  GeneratorConfig gen;
  gen.num_tables = 25;
  QueryPtr query = GenerateQuery(gen, &rng);
  CostModel cost_model({Metric::kTime, Metric::kBuffer, Metric::kDisk});
  PlanFactory factory(query, &cost_model);

  double total_steps = 0.0;
  Rng plan_rng(7);
  for (int i = 0; i < 20; ++i) {
    ClimbStats stats;
    ParetoClimb(RandomPlan(&factory, &plan_rng), &factory, &stats);
    total_steps += stats.steps;
  }
  double measured = total_steps / 20.0;
  double theory = ExpectedClimbPathLength(25, 3);
  EXPECT_LT(measured, theory * 10.0);
  EXPECT_GT(measured, theory / 10.0);
}

}  // namespace
}  // namespace moqo
