// Fixture: wall time and ambient randomness outside approved sites.
#include <chrono>
#include <cstdlib>
#include <random>

int64_t Stamp() {
  auto now = std::chrono::system_clock::now();  // expect: wall-clock
  return now.time_since_epoch().count();
}

int Roll() {
  return rand() % 6;  // expect: wall-clock
}

unsigned Seed() {
  std::random_device device;  // expect: wall-clock
  return device();
}
