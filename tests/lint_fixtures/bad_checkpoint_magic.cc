// Fixture: an unversioned checkpoint stream — no reader can reject a
// foreign layout.
#include <cstdint>
#include <vector>

struct CheckpointWriter {
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  std::vector<uint8_t> Take();
};

std::vector<uint8_t> EncodeState(uint64_t steps) {
  CheckpointWriter writer;  // expect: checkpoint-magic
  writer.WriteU64(steps);
  return writer.Take();
}
