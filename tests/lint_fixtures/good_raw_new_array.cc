// Fixture: typed array ownership via make_unique.
#include <cstddef>
#include <memory>

struct Node {
  int value = 0;
};

std::unique_ptr<Node[]> AllocateChunk(size_t n) {
  return std::make_unique<Node[]>(n);
}
