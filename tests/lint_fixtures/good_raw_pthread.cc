// Fixture: the sanctioned threading surface.
#include <thread>

void Work();

void SpawnJoined() {
  std::thread worker([] { Work(); });
  worker.join();
}
