// Fixture: the approved time/randomness sources — monotonic clock and a
// seeded deterministic stream.
#include <chrono>
#include <cstdint>

struct Rng {
  explicit Rng(uint64_t seed);
  uint64_t Next();
};

int64_t Elapsed() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

uint64_t Draw(uint64_t seed) {
  Rng rng(seed);
  return rng.Next();
}
