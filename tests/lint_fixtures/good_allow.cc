// Fixture: the suppression mechanism. Both placements — trailing on the
// offending line and on the line directly above — must silence exactly
// the named rule.
#include <cstdint>
#include <vector>

struct CheckpointWriter {
  void WriteU64(uint64_t v);
  std::vector<uint8_t> Take();
};

std::vector<uint8_t> HashInput(uint64_t key) {
  // Bytes feed a hash in this same process and are never decoded, so no
  // version gate is needed.
  CheckpointWriter writer;  // moqo-lint: allow(checkpoint-magic)
  writer.WriteU64(key);
  return writer.Take();
}

std::vector<uint8_t> HashInputAbove(uint64_t key) {
  // moqo-lint: allow(checkpoint-magic)
  CheckpointWriter writer;
  writer.WriteU64(key);
  return writer.Take();
}
