// Fixture: hash-map iteration order leaking into serialized bytes.
#include <cstdint>
#include <unordered_map>

struct Writer {
  void WriteU64(uint64_t v);
};

struct Cache {
  std::unordered_map<uint64_t, int> entries_;
};

void Serialize(const Cache& cache, Writer* writer) {
  for (const auto& [key, value] : cache.entries_) {  // expect: unordered-serialization
    writer->WriteU64(key);
  }
}
