// Fixture: a versioned stream — magic + version lead the bytes, so a
// reader from another build rejects instead of misparsing.
#include <cstdint>
#include <vector>

inline constexpr uint32_t kStateMagic = 0x4d514f4du;
inline constexpr uint32_t kStateVersion = 1;

struct CheckpointWriter {
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  std::vector<uint8_t> Take();
};

std::vector<uint8_t> EncodeState(uint64_t steps) {
  CheckpointWriter writer;
  writer.WriteU32(kStateMagic);
  writer.WriteU32(kStateVersion);
  writer.WriteU64(steps);
  return writer.Take();
}
