// Fixture: ordered iteration into serialized bytes, and unordered
// iteration that never feeds a serializer — both clean.
#include <cstdint>
#include <map>
#include <unordered_map>

struct Writer {
  void WriteU64(uint64_t v);
};

struct Cache {
  std::map<uint64_t, int> ordered_;
  std::unordered_map<uint64_t, int> entries_;
};

void Serialize(const Cache& cache, Writer* writer) {
  for (const auto& [key, value] : cache.ordered_) {
    writer->WriteU64(key);
  }
}

uint64_t Total(const Cache& cache) {
  uint64_t total = 0;
  for (const auto& [key, value] : cache.entries_) {
    total += key;
  }
  return total;
}
