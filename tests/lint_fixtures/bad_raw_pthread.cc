// Fixture: direct pthread use instead of std::thread + moqo::Mutex.
#include <pthread.h>

void* Worker(void*);

void SpawnDetached() {
  pthread_t handle;
  pthread_create(&handle, nullptr, Worker, nullptr);  // expect: raw-pthread
  pthread_detach(handle);  // expect: raw-pthread
}
