// Fixture: raw array new with untyped ownership.
#include <cstddef>

struct Node {
  int value = 0;
};

Node* AllocateChunk(size_t n) {
  return new Node[n];  // expect: raw-new-array
}
