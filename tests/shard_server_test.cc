// Cross-process shard transport suite, run in-process over socketpairs:
// the ShardServer serve loop against a RemoteShard client (bitwise submit
// round-trips, mid-run resume over the wire, snapshot streaming, suspend
// rendezvous), raw-protocol abuse (duplicate request ids, undecodable
// bodies, clean shutdown handshake, client EOF), and connection-death
// recovery (orphaned tasks replayed locally through the router's
// FailShard, original futures delivering bitwise-identical frontiers).
#include "service/shard_server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/query_fingerprint.h"
#include "core/rmq.h"
#include "net/frame_channel.h"
#include "service/batch_optimizer.h"
#include "service/remote_shard.h"
#include "service/shard_protocol.h"
#include "service/shard_router.h"
#include "service/wire.h"

namespace moqo {
namespace {

OptimizerFactory RmqFactory(int max_iterations) {
  return [max_iterations] {
    RmqConfig config;
    config.max_iterations = max_iterations;
    return std::make_unique<Rmq>(config);
  };
}

std::vector<BatchTask> SmallBatch(int n, int tables,
                                  uint64_t master_seed = 2016) {
  GeneratorConfig generator;
  generator.num_tables = tables;
  return GenerateBatch(n, generator, master_seed, /*deadline_micros=*/0);
}

BatchReport BlockingReference(const std::vector<BatchTask>& tasks,
                              int iterations) {
  BatchConfig single;
  single.num_threads = 1;
  return BatchOptimizer(single, RmqFactory(iterations)).Run(tasks);
}

ShardServerConfig ServerConfig(int snapshot_every = 0) {
  ShardServerConfig config;
  config.scheduler.num_threads = 2;
  config.scheduler.steps_per_slice = 4;
  config.scheduler.snapshot_every = snapshot_every;
  config.pump_interval_ms = 5;
  config.heartbeat_ms = 100;
  return config;
}

RemoteShardConfig ClientConfig() {
  RemoteShardConfig config;
  config.recv_poll_ms = 10;
  // Generous: slow sanitizer runs must not fake a death.
  config.silence_timeout_ms = 20000;
  config.op_timeout_ms = 20000;
  return config;
}

/// One in-process shard server serving one end of a socketpair on its own
/// thread.
struct ServeThread {
  net::FrameChannel server_end;
  std::thread thread;
  bool clean = false;

  void Start(ShardServerConfig config, int iterations) {
    thread = std::thread([this, config = std::move(config), iterations] {
      ShardServer server(config, RmqFactory(iterations));
      clean = server.Serve(&server_end);
    });
  }
  void Join() {
    if (thread.joinable()) thread.join();
  }
  ~ServeThread() { Join(); }
};

TEST(ShardServerTest, SubmitOverWireMatchesBlockingReference) {
  std::vector<BatchTask> tasks = SmallBatch(8, 6);
  BatchReport reference = BlockingReference(tasks, 20);

  ServeThread serve;
  net::FrameChannel client_end;
  ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client_end));
  serve.Start(ServerConfig(), 20);

  RemoteShard shard(ClientConfig(), std::move(client_end));
  shard.Start();
  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = shard.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  shard.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, 20);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged across the wire";
  }
  BatchReport report = shard.Stop();
  serve.Join();
  EXPECT_TRUE(serve.clean);
  EXPECT_TRUE(shard.alive());
  ASSERT_EQ(report.tasks.size(), tasks.size());
  for (size_t i = 0; i < report.tasks.size(); ++i) {
    EXPECT_FALSE(report.tasks[i].migrated);
  }
}

// A task suspended mid-run off a local scheduler finishes bitwise
// identically on the far side of the wire: the checkpoint crosses as
// opaque bytes and restores against the rebuilt query.
TEST(ShardServerTest, MidRunResumeOverWireIsBitwiseIdentical) {
  std::vector<BatchTask> tasks = SmallBatch(6, 6);
  BatchReport reference = BlockingReference(tasks, 20);

  ServeThread serve;
  net::FrameChannel client_end;
  ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client_end));
  serve.Start(ServerConfig(), 20);
  RemoteShard shard(ClientConfig(), std::move(client_end));
  shard.Start();

  OnlineConfig local_config;
  local_config.num_threads = 2;
  local_config.steps_per_slice = 4;
  OnlineScheduler local(local_config, RmqFactory(20));
  local.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  size_t moved = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto ticket = local.Submit(tasks[i]);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
    // The workers race the suspension, so the hop catches tasks queued,
    // mid-run, or already finished — every case must preserve results.
    auto suspended = local.Suspend(i);
    if (suspended.has_value()) {
      ASSERT_TRUE(shard.Resume(*suspended));
      EXPECT_TRUE(suspended->consumed());
      ++moved;
    }
  }
  local.Drain();
  shard.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(tickets[i].get().frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged after the wire hop";
  }
  EXPECT_GT(moved, 0u);
  shard.Stop();
  local.Stop();
  serve.Join();
  EXPECT_TRUE(serve.clean);
}

// With the snapshot cadence on, the server streams kSnapshot recovery
// frames while tasks run; the client retains them without disturbing
// results.
TEST(ShardServerTest, PeriodicSnapshotsReachTheClient) {
  std::vector<BatchTask> tasks = SmallBatch(4, 6);
  BatchReport reference = BlockingReference(tasks, 40);

  ShardServerConfig config = ServerConfig(/*snapshot_every=*/1);
  config.scheduler.steps_per_slice = 2;  // many slice boundaries
  ServeThread serve;
  net::FrameChannel client_end;
  ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client_end));
  serve.Start(config, 40);

  RemoteShard shard(ClientConfig(), std::move(client_end));
  shard.Start();
  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = shard.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  shard.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(tickets[i].get().frontier, reference.tasks[i].frontier));
  }
  EXPECT_GT(shard.snapshots_received(), 0u);
  shard.Stop();
  serve.Join();
  EXPECT_TRUE(serve.clean);
}

// The suspend rendezvous: a task is pulled back off the server mid-run
// and finishes on a local scheduler, bitwise identical.
TEST(ShardServerTest, SuspendOverWireFinishesLocally) {
  std::vector<BatchTask> tasks = SmallBatch(6, 6);
  BatchReport reference = BlockingReference(tasks, 30);

  ShardServerConfig config = ServerConfig();
  config.scheduler.steps_per_slice = 2;
  ServeThread serve;
  net::FrameChannel client_end;
  ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client_end));
  serve.Start(config, 30);
  RemoteShard shard(ClientConfig(), std::move(client_end));
  shard.set_label("shard under test");
  shard.Start();

  OnlineConfig local_config;
  local_config.num_threads = 2;
  OnlineScheduler local(local_config, RmqFactory(30));
  local.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = shard.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  size_t pulled = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto suspended = shard.Suspend(i);
    // Finished tasks refuse suspension; racing is expected.
    if (!suspended.has_value()) continue;
    EXPECT_EQ(suspended->origin, "shard under test");
    ASSERT_TRUE(local.Resume(*suspended));
    ++pulled;
  }
  shard.Drain();
  local.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(tickets[i].get().frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged after suspend-back";
  }
  shard.Stop();
  local.Stop();
  serve.Join();
  EXPECT_TRUE(serve.clean);
}

// Raw protocol: the same request id twice is an explicit kReject (the
// duplicate-delivery guard), and a kSubmit body that is not a wire task
// is rejected with the decode reason — the connection survives both.
TEST(ShardServerTest, DuplicateAndGarbageSubmitsAreRejected) {
  std::vector<BatchTask> tasks = SmallBatch(1, 5);
  ServeThread serve;
  net::FrameChannel client;
  ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client));
  serve.Start(ServerConfig(), 5);

  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(tasks[0]));
  Message submit;
  submit.type = MsgType::kSubmit;
  submit.request_id = 7;
  submit.body = frame;
  ASSERT_EQ(client.Send(EncodeMessage(submit)), net::IoStatus::kOk);
  ASSERT_EQ(client.Send(EncodeMessage(submit)), net::IoStatus::kOk);
  Message garbage;
  garbage.type = MsgType::kSubmit;
  garbage.request_id = 8;
  garbage.body = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_EQ(client.Send(EncodeMessage(garbage)), net::IoStatus::kOk);

  std::set<uint64_t> rejected;
  std::string garbage_reason;
  bool got_result = false;
  for (int spins = 0; spins < 1000 && (rejected.size() < 2 || !got_result);
       ++spins) {
    std::vector<uint8_t> payload;
    if (client.Recv(&payload, 50) != net::IoStatus::kOk) continue;
    Message message;
    std::string why;
    ASSERT_TRUE(DecodeMessage(payload, &message, &why)) << why;
    if (message.type == MsgType::kReject) {
      rejected.insert(message.request_id);
      if (message.request_id == 8) {
        garbage_reason.assign(message.body.begin(), message.body.end());
      }
    }
    if (message.type == MsgType::kResult && message.request_id == 7) {
      got_result = true;
    }
  }
  EXPECT_TRUE(got_result) << "first submit of id 7 must still run";
  EXPECT_TRUE(rejected.count(7)) << "duplicate id 7 must be rejected";
  EXPECT_TRUE(rejected.count(8)) << "garbage body must be rejected";
  EXPECT_NE(garbage_reason.find("bad task frame"), std::string::npos)
      << garbage_reason;

  Message shutdown;
  shutdown.type = MsgType::kShutdown;
  ASSERT_EQ(client.Send(EncodeMessage(shutdown)), net::IoStatus::kOk);
  serve.Join();
  EXPECT_TRUE(serve.clean);
}

// The shutdown handshake: kShutdown drains and answers kBye after every
// result; a client that just disappears (EOF) ends Serve with a dirty
// (false) verdict instead of hanging.
TEST(ShardServerTest, ShutdownHandshakeAndClientEof) {
  {
    ServeThread serve;
    net::FrameChannel client;
    ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client));
    serve.Start(ServerConfig(), 5);
    Message shutdown;
    shutdown.type = MsgType::kShutdown;
    ASSERT_EQ(client.Send(EncodeMessage(shutdown)), net::IoStatus::kOk);
    bool got_bye = false;
    for (int spins = 0; spins < 200 && !got_bye; ++spins) {
      std::vector<uint8_t> payload;
      if (client.Recv(&payload, 50) != net::IoStatus::kOk) break;
      Message message;
      std::string why;
      ASSERT_TRUE(DecodeMessage(payload, &message, &why)) << why;
      got_bye = message.type == MsgType::kBye;
    }
    EXPECT_TRUE(got_bye);
    serve.Join();
    EXPECT_TRUE(serve.clean);
  }
  {
    ServeThread serve;
    net::FrameChannel client;
    ASSERT_TRUE(net::FrameChannel::Pair(&serve.server_end, &client));
    serve.Start(ServerConfig(), 5);
    client.Close();  // vanish
    serve.Join();
    EXPECT_FALSE(serve.clean);
  }
}

// Connection death with tasks in flight: the RemoteShard marks itself
// dead, the router's FailShard recovers the orphaned frames and replays
// them onto the surviving local shard, and the ORIGINAL futures deliver
// frontiers bitwise identical to the unperturbed reference.
TEST(ShardServerTest, DeadConnectionOrphansReplayThroughFailShard) {
  std::vector<BatchTask> tasks = SmallBatch(10, 6);
  BatchReport reference = BlockingReference(tasks, 15);

  ShardRouterConfig router_config;
  router_config.num_shards = 1;  // the survivor
  router_config.shard.num_threads = 2;
  ShardRouter router(router_config, RmqFactory(15));
  router.Start();

  // A "remote" shard whose server never answers: the far end of the pair
  // is simply dropped, the in-process stand-in for kill -9.
  net::FrameChannel far_end, client_end;
  ASSERT_TRUE(net::FrameChannel::Pair(&far_end, &client_end));
  RemoteShardConfig client_config = ClientConfig();
  auto remote =
      std::make_unique<RemoteShard>(client_config, std::move(client_end));
  RemoteShard* remote_ptr = remote.get();
  bool death_seen = false;
  std::mutex death_mu;
  std::condition_variable death_cv;
  remote->set_death_callback([&](RemoteShard*) {
    std::unique_lock<std::mutex> lock(death_mu);
    death_seen = true;
    death_cv.notify_all();
  });
  size_t remote_id = router.AddShard(std::move(remote));
  ASSERT_NE(remote_id, static_cast<size_t>(-1));

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = router.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  // Some tasks must have routed to the (doomed) remote shard.
  ASSERT_GT(remote_ptr->submitted_count(), 0u);

  far_end.Close();  // the death
  {
    std::unique_lock<std::mutex> lock(death_mu);
    ASSERT_TRUE(death_cv.wait_for(lock, std::chrono::seconds(10),
                                  [&] { return death_seen; }));
  }
  ASSERT_TRUE(router.FailShard(remote_id));
  EXPECT_EQ(router.failed_shards(), 1u);
  EXPECT_GT(router.failover_replayed(), 0u);

  router.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged across the failover";
  }
  BatchReport report = router.Stop();
  EXPECT_EQ(report.tasks.size(), tasks.size());
}

// An orphan abandoned instead of replayed fails its future with the
// failover context (shard id, route key) — never a bare broken_promise.
TEST(ShardServerTest, AbandonedOrphanErrorNamesShardAndRouteKey) {
  std::vector<BatchTask> tasks = SmallBatch(1, 5);
  net::FrameChannel far_end, client_end;
  ASSERT_TRUE(net::FrameChannel::Pair(&far_end, &client_end));
  RemoteShard shard(ClientConfig(), std::move(client_end));
  shard.set_label("remote shard (pid 424242)");
  shard.Start();
  auto ticket = shard.Submit(tasks[0]);
  ASSERT_TRUE(ticket.has_value());
  far_end.Close();
  for (int spins = 0; spins < 1000 && shard.alive(); ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(shard.alive());

  std::vector<OrphanTask> orphans = shard.TakeOrphans();
  ASSERT_EQ(orphans.size(), 1u);
  {
    WireTask wire;
    std::string why;
    ASSERT_TRUE(DecodeWireTask(orphans[0].frame, &wire, &why)) << why;
    SuspendedTask rebuilt =
        ToSuspendedTask(std::move(wire), std::move(orphans[0].promise));
    rebuilt.origin = "failover from shard 9, route key " +
                     RouteKeyString(0xabcdefull) + ", fingerprint " +
                     FingerprintString(0x123456ull);
    // Dropped without a resume: the destructor must fail the future
    // descriptively, carrying the origin.
  }
  try {
    ticket->get();
    FAIL() << "abandoned orphan must fail its future";
  } catch (const std::runtime_error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("failover from shard 9"), std::string::npos) << what;
    EXPECT_NE(what.find("route key 0x"), std::string::npos) << what;
    EXPECT_NE(what.find("fingerprint 0x"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace moqo
