#include "core/rmq.h"

#include <gtest/gtest.h>

#include "baselines/dp.h"
#include "pareto/epsilon_indicator.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, int metrics = 2, uint64_t seed = 42,
                   GraphType graph = GraphType::kChain)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          config.graph_type = graph;
          return GenerateQuery(config, &rng);
        }()),
        model([&] {
          std::vector<Metric> ms = {Metric::kTime, Metric::kBuffer,
                                    Metric::kDisk};
          ms.resize(static_cast<size_t>(metrics));
          return CostModel(ms);
        }()),
        factory(query, &model) {}
};

std::vector<CostVector> Costs(const std::vector<PlanPtr>& plans) {
  std::vector<CostVector> out;
  for (const PlanPtr& p : plans) out.push_back(p->cost());
  return out;
}

TEST(RmqTest, ProducesCompleteValidPlans) {
  Fixture fx(8);
  Rmq rmq;
  Rng rng(1);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(100), nullptr);
  ASSERT_FALSE(plans.empty());
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
  }
}

TEST(RmqTest, IterationBudgetRespected) {
  Fixture fx(6);
  RmqConfig config;
  config.max_iterations = 7;
  RmqSession session(config);
  Rng rng(2);
  session.Begin(&fx.factory, &rng);
  RunSession(&session, Deadline());
  EXPECT_TRUE(session.Done());
  EXPECT_EQ(session.stats().iterations, 7);
  EXPECT_EQ(session.stats().path_lengths.size(), 7u);
  EXPECT_EQ(session.session_stats().steps, 7);
}

TEST(RmqTest, CallbackInvokedEveryIteration) {
  Fixture fx(6);
  RmqConfig config;
  config.max_iterations = 5;
  Rmq rmq(config);
  Rng rng(3);
  int calls = 0;
  rmq.Optimize(&fx.factory, &rng, Deadline(),
               [&](const std::vector<PlanPtr>& frontier) {
                 ++calls;
                 EXPECT_FALSE(frontier.empty());
               });
  EXPECT_EQ(calls, 5);
}

TEST(RmqTest, ResultFrontierMutuallyNonDominatedPerFormat) {
  Fixture fx(8, 3);
  RmqConfig config;
  config.max_iterations = 50;
  Rmq rmq(config);
  Rng rng(4);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  for (const PlanPtr& a : plans) {
    for (const PlanPtr& b : plans) {
      if (a == b || !SameOutput(*a, *b)) continue;
      EXPECT_FALSE(a->cost().StrictlyDominates(b->cost()));
    }
  }
}

TEST(RmqTest, ConvergesToExactFrontierOnSmallQuery) {
  // With enough iterations the alpha schedule reaches 1 and the cache
  // converges toward the exact Pareto set; require a tight approximation.
  Fixture fx(4, 2, 7);
  std::vector<CostVector> exact = Costs(ExactParetoSet(&fx.factory));
  ASSERT_FALSE(exact.empty());

  // The paper's alpha schedule reaches exact pruning (alpha = 1) only
  // after ~8000 iterations (25 * 0.99^(i/25) < 1 <=> i > 8050).
  RmqConfig config;
  config.max_iterations = 12000;
  Rmq rmq(config);
  Rng rng(5);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(60000), nullptr);
  double alpha = AlphaError(Costs(plans), ParetoFilter(exact));
  EXPECT_LE(alpha, 1.25) << "RMQ should closely approximate the exact "
                            "frontier on a 4-table query";
}

TEST(RmqTest, FixedAlphaOneFindsOptimaFast) {
  // With fixed alpha = 1 and a few hundred iterations on a tiny query, the
  // result should essentially match the exact frontier.
  Fixture fx(3, 2, 13);
  std::vector<CostVector> exact = Costs(ExactParetoSet(&fx.factory));

  RmqConfig config;
  config.fixed_alpha = 1.0;
  config.max_iterations = 300;
  Rmq rmq(config);
  Rng rng(6);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(20000), nullptr);
  EXPECT_LE(AlphaError(Costs(plans), ParetoFilter(exact)), 1.05);
}

TEST(RmqTest, StatsPopulated) {
  Fixture fx(10, 3);
  RmqConfig config;
  config.max_iterations = 10;
  RmqSession session(config);
  Rng rng(7);
  session.Begin(&fx.factory, &rng);
  std::vector<PlanPtr> plans = RunSession(&session, Deadline());
  const RmqStats& stats = session.stats();
  EXPECT_EQ(stats.iterations, 10);
  EXPECT_GT(stats.frontier_insertions, 0);
  EXPECT_EQ(stats.final_frontier_size, plans.size());
  for (int len : stats.path_lengths) {
    EXPECT_GE(len, 0);
    EXPECT_LT(len, 100);
  }
}

TEST(RmqTest, NoClimbVariantStillProducesPlans) {
  Fixture fx(8);
  RmqConfig config;
  config.use_climb = false;
  config.max_iterations = 20;
  RmqSession session(config);
  Rng rng(8);
  session.Begin(&fx.factory, &rng);
  std::vector<PlanPtr> plans = RunSession(&session, Deadline());
  EXPECT_FALSE(plans.empty());
  // No climbs recorded.
  EXPECT_TRUE(session.stats().path_lengths.empty());
}

TEST(RmqTest, NoCacheVariantStillProducesPlans) {
  Fixture fx(8);
  RmqConfig config;
  config.share_cache = false;
  config.max_iterations = 20;
  Rmq rmq(config);
  Rng rng(9);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  EXPECT_FALSE(plans.empty());
}

TEST(RmqTest, NamesReflectConfiguration) {
  EXPECT_EQ(Rmq().name(), "RMQ");
  RmqConfig no_climb;
  no_climb.use_climb = false;
  EXPECT_EQ(Rmq(no_climb).name(), "RMQ[-climb]");
  RmqConfig no_cache;
  no_cache.share_cache = false;
  EXPECT_EQ(Rmq(no_cache).name(), "RMQ[-cache]");
}

TEST(RmqTest, DeterministicForSameSeed) {
  Fixture fx(7, 2);
  RmqConfig config;
  config.max_iterations = 30;
  std::vector<CostVector> a, b;
  {
    Rmq rmq(config);
    Rng rng(11);
    a = Costs(rmq.Optimize(&fx.factory, &rng, Deadline(), nullptr));
  }
  {
    Rmq rmq(config);
    Rng rng(11);
    b = Costs(rmq.Optimize(&fx.factory, &rng, Deadline(), nullptr));
  }
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i].EqualTo(b[i]));
}

TEST(RmqTest, ExpiredDeadlineYieldsEmptyResultGracefully) {
  Fixture fx(8);
  RmqSession session;
  Rng rng(12);
  session.Begin(&fx.factory, &rng);
  std::vector<PlanPtr> plans =
      RunSession(&session, Deadline::AfterMicros(0));
  EXPECT_TRUE(plans.empty());
  EXPECT_EQ(session.stats().iterations, 0);
}

class RmqScaleTest : public ::testing::TestWithParam<
                         std::tuple<int, int, GraphType>> {};

TEST_P(RmqScaleTest, HandlesSizeMetricGraphGrid) {
  auto [tables, metrics, graph] = GetParam();
  Fixture fx(tables, metrics, 42, graph);
  RmqConfig config;
  config.max_iterations = 3;
  Rmq rmq(config);
  Rng rng(13);
  std::vector<PlanPtr> plans =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(30000), nullptr);
  ASSERT_FALSE(plans.empty());
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
    for (int i = 0; i < p->cost().size(); ++i) {
      EXPECT_GT(p->cost()[i], 0.0);
      EXPECT_LE(p->cost()[i], kMaxCost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RmqScaleTest,
    ::testing::Combine(::testing::Values(2, 10, 40, 100),
                       ::testing::Values(2, 3),
                       ::testing::Values(GraphType::kChain, GraphType::kStar,
                                         GraphType::kCycle)));

}  // namespace
}  // namespace moqo
