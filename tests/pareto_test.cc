#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "pareto/epsilon_indicator.h"
#include "pareto/pareto_archive.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 6)
      : query([&] {
          Rng rng(42);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(ParetoArchiveTest, InsertAndDominate) {
  Fixture fx;
  ParetoArchive archive;
  Rng rng(1);
  PlanPtr p = RandomPlan(&fx.factory, &rng);
  EXPECT_TRUE(archive.Insert(p));
  EXPECT_EQ(archive.size(), 1u);
  // Re-inserting the same plan (equal cost) is rejected.
  EXPECT_FALSE(archive.Insert(p));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchiveTest, ArchiveIsMutuallyNonDominated) {
  Fixture fx;
  ParetoArchive archive;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) archive.Insert(RandomPlan(&fx.factory, &rng));
  const auto& plans = archive.plans();
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = 0; j < plans.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(plans[i]->cost().StrictlyDominates(plans[j]->cost()));
    }
  }
  EXPECT_GE(archive.size(), 1u);
}

TEST(ParetoArchiveTest, DominatedInsertRejectedAndEviction) {
  // Deterministic tiny query: both inputs fit the small buffer budget, so
  // the in-memory hash join strictly dominates the sort-merge join at the
  // same budget (it skips the sort phases) on (time, buffer).
  Catalog catalog;
  catalog.AddTable({1000.0, 100.0, false});
  catalog.AddTable({1000.0, 100.0, false});
  JoinGraph graph(2);
  graph.AddEdge(0, 1, 0.1);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);

  PlanPtr s0 = factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr good = factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
  PlanPtr bad = factory.MakeJoin(s0, s1, JoinAlgorithm::kSortMergeSmall);
  ASSERT_TRUE(good->cost().StrictlyDominates(bad->cost()))
      << "fixture assumption: hash dominates sort-merge at equal budget";

  ParetoArchive archive;
  EXPECT_TRUE(archive.Insert(bad));
  EXPECT_TRUE(archive.Insert(good));  // evicts bad
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_FALSE(archive.Insert(bad));  // rejected now
}

TEST(ParetoArchiveTest, FrontierMatchesPlans) {
  Fixture fx;
  ParetoArchive archive;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) archive.Insert(RandomPlan(&fx.factory, &rng));
  std::vector<CostVector> frontier = archive.Frontier();
  ASSERT_EQ(frontier.size(), archive.size());
  for (size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_TRUE(frontier[i].EqualTo(archive.plans()[i]->cost()));
  }
}

TEST(ParetoArchiveTest, Clear) {
  Fixture fx;
  ParetoArchive archive;
  Rng rng(4);
  archive.Insert(RandomPlan(&fx.factory, &rng));
  archive.Clear();
  EXPECT_TRUE(archive.empty());
}

TEST(ParetoFilterTest, RemovesDominatedAndDuplicates) {
  std::vector<CostVector> input = {
      {1.0, 5.0}, {2.0, 2.0}, {5.0, 1.0},
      {3.0, 3.0},          // dominated by (2,2)
      {2.0, 2.0},          // duplicate
      {1.0, 5.0},          // duplicate
  };
  std::vector<CostVector> out = ParetoFilter(input);
  EXPECT_EQ(out.size(), 3u);
}

TEST(ParetoFilterTest, EmptyInput) {
  EXPECT_TRUE(ParetoFilter({}).empty());
}

TEST(ParetoFilterTest, KeepsIncomparableVectors) {
  std::vector<CostVector> input = {{1.0, 9.0}, {9.0, 1.0}, {4.0, 4.0}};
  EXPECT_EQ(ParetoFilter(input).size(), 3u);
}

TEST(AlphaErrorTest, PerfectApproximationIsOne) {
  std::vector<CostVector> frontier = {{1.0, 5.0}, {5.0, 1.0}};
  EXPECT_DOUBLE_EQ(AlphaError(frontier, frontier), 1.0);
}

TEST(AlphaErrorTest, EmptyApproxIsInfinite) {
  std::vector<CostVector> reference = {{1.0, 1.0}};
  EXPECT_TRUE(std::isinf(AlphaError({}, reference)));
}

TEST(AlphaErrorTest, EmptyReferenceIsOne) {
  std::vector<CostVector> approx = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(AlphaError(approx, {}), 1.0);
}

TEST(AlphaErrorTest, SingleFactorOff) {
  std::vector<CostVector> reference = {{10.0, 10.0}};
  std::vector<CostVector> approx = {{20.0, 15.0}};
  EXPECT_DOUBLE_EQ(AlphaError(approx, reference), 2.0);
}

TEST(AlphaErrorTest, BestApproximatorPerReferencePoint) {
  std::vector<CostVector> reference = {{10.0, 10.0}, {100.0, 1.0}};
  std::vector<CostVector> approx = {{10.0, 10.0}, {110.0, 1.0}};
  // First point matched exactly; second within factor 1.1.
  EXPECT_NEAR(AlphaError(approx, reference), 1.1, 1e-12);
}

TEST(AlphaErrorTest, NeverBelowOne) {
  // Approximation strictly better than the reference still yields 1.
  std::vector<CostVector> reference = {{10.0, 10.0}};
  std::vector<CostVector> approx = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(AlphaError(approx, reference), 1.0);
}

TEST(AlphaErrorTest, SupersetHasNoError) {
  std::vector<CostVector> reference = {{1.0, 5.0}, {5.0, 1.0}};
  std::vector<CostVector> approx = {{1.0, 5.0}, {5.0, 1.0}, {3.0, 3.0}};
  EXPECT_DOUBLE_EQ(AlphaError(approx, reference), 1.0);
}

TEST(UnionFrontierTest, MergesAndFilters) {
  std::vector<std::vector<CostVector>> frontiers = {
      {{1.0, 5.0}, {4.0, 4.0}},
      {{5.0, 1.0}, {2.0, 2.0}},
  };
  std::vector<CostVector> merged = UnionFrontier(frontiers);
  // (4,4) is dominated by (2,2).
  EXPECT_EQ(merged.size(), 3u);
}

// Property: AlphaError of any subset of a frontier against the full
// frontier is >= 1, and adding points can only lower it.
class AlphaErrorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AlphaErrorPropertyTest, MonotoneInApproximationSet) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(1.0, 1000.0);
  std::vector<CostVector> reference;
  for (int i = 0; i < 30; ++i) {
    CostVector v(3);
    for (int k = 0; k < 3; ++k) v[k] = dist(gen);
    reference.push_back(v);
  }
  reference = ParetoFilter(reference);

  std::vector<CostVector> approx;
  double prev = std::numeric_limits<double>::infinity();
  for (const CostVector& v : reference) {
    approx.push_back(v);
    double alpha = AlphaError(approx, reference);
    EXPECT_GE(alpha, 1.0);
    EXPECT_LE(alpha, prev + 1e-9);  // adding points never hurts
    prev = alpha;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // full set approximates itself perfectly
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaErrorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace moqo
