// FrontierCache bounds, counters, LRU behavior, and thread safety
// (service/frontier_cache.h). The concurrent hammer test is in the CI TSan
// suite regex, so lock discipline is machine-checked.
#include "service/frontier_cache.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace moqo {
namespace {

/// An entry of predictable size: `payload` bytes of serialized plans and
/// one cost vector.
CachedFrontier MakeEntry(uint64_t fingerprint, uint64_t seed,
                         size_t payload) {
  CachedFrontier entry;
  entry.fingerprint = fingerprint;
  entry.seed = seed;
  entry.plan_bytes.assign(payload, 0xab);
  CostVector vec(2);
  vec[0] = static_cast<double>(fingerprint);
  vec[1] = static_cast<double>(seed);
  entry.frontier.push_back(vec);
  entry.steps = 7;
  return entry;
}

TEST(FrontierCacheTest, MissThenExactAndWarmHits) {
  FrontierCache cache;
  EXPECT_EQ(nullptr, cache.Lookup(1, 42));
  cache.Insert(MakeEntry(1, 42, 100));

  auto exact = cache.Lookup(1, 42);
  ASSERT_NE(nullptr, exact);
  EXPECT_EQ(42u, exact->seed);
  EXPECT_EQ(7, exact->steps);
  ASSERT_EQ(1u, exact->frontier.size());

  auto warm = cache.Lookup(1, 43);
  ASSERT_NE(nullptr, warm);
  EXPECT_EQ(exact.get(), warm.get());  // same entry, different hit class

  FrontierCacheStats stats = cache.stats();
  EXPECT_EQ(3u, stats.lookups);
  EXPECT_EQ(1u, stats.misses);
  EXPECT_EQ(1u, stats.exact_hits);
  EXPECT_EQ(1u, stats.warm_hits);
  EXPECT_EQ(2u, stats.hits());
  EXPECT_EQ(1u, stats.inserts);
  EXPECT_EQ(0u, stats.evictions);
  EXPECT_EQ(1u, stats.entries);
  EXPECT_GT(stats.bytes, 100u);
}

TEST(FrontierCacheTest, ReplaceKeepsOneEntryPerFingerprint) {
  FrontierCache cache;
  cache.Insert(MakeEntry(5, 1, 100));
  cache.Insert(MakeEntry(5, 2, 200));
  auto entry = cache.Lookup(5, 2);
  ASSERT_NE(nullptr, entry);
  EXPECT_EQ(2u, entry->seed);  // newest completion wins
  EXPECT_EQ(200u, entry->plan_bytes.size());
  FrontierCacheStats stats = cache.stats();
  EXPECT_EQ(1u, stats.entries);
  EXPECT_EQ(2u, stats.inserts);
  EXPECT_EQ(0u, stats.evictions);  // replacement is not an eviction
}

TEST(FrontierCacheTest, EvictsLeastRecentlyUsedAtByteBudget) {
  // One lock shard so the LRU order is global and deterministic. Budget
  // fits two of the three entries.
  FrontierCacheConfig config;
  config.lock_shards = 1;
  const size_t entry_bytes = CachedFrontierBytes(MakeEntry(0, 0, 1000));
  config.max_bytes = 2 * entry_bytes + entry_bytes / 2;
  FrontierCache cache(config);

  cache.Insert(MakeEntry(1, 0, 1000));
  cache.Insert(MakeEntry(2, 0, 1000));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(nullptr, cache.Lookup(1, 0));
  cache.Insert(MakeEntry(3, 0, 1000));

  EXPECT_NE(nullptr, cache.Lookup(1, 0));
  EXPECT_EQ(nullptr, cache.Lookup(2, 0));
  EXPECT_NE(nullptr, cache.Lookup(3, 0));
  FrontierCacheStats stats = cache.stats();
  EXPECT_EQ(1u, stats.evictions);
  EXPECT_EQ(2u, stats.entries);
  EXPECT_LE(stats.bytes, config.max_bytes);
}

TEST(FrontierCacheTest, OversizedEntryIsNeverAdmitted) {
  FrontierCacheConfig config;
  config.lock_shards = 1;
  config.max_bytes = 1024;
  FrontierCache cache(config);
  cache.Insert(MakeEntry(1, 0, 4096));
  EXPECT_EQ(nullptr, cache.Lookup(1, 0));
  FrontierCacheStats stats = cache.stats();
  EXPECT_EQ(0u, stats.inserts);
  EXPECT_EQ(0u, stats.entries);
  EXPECT_EQ(0u, stats.bytes);
}

TEST(FrontierCacheTest, ByteAccountingSumsEntries) {
  FrontierCacheConfig config;
  config.lock_shards = 1;
  config.max_bytes = 1 << 20;
  FrontierCache cache(config);
  CachedFrontier a = MakeEntry(1, 0, 100);
  CachedFrontier b = MakeEntry(2, 0, 300);
  const size_t expected = CachedFrontierBytes(a) + CachedFrontierBytes(b);
  cache.Insert(std::move(a));
  cache.Insert(std::move(b));
  EXPECT_EQ(expected, cache.stats().bytes);
}

TEST(FrontierCacheTest, CountersAreExactUnderSingleThread) {
  FrontierCacheConfig config;
  config.lock_shards = 4;
  FrontierCache cache(config);
  for (uint64_t f = 0; f < 32; ++f) cache.Insert(MakeEntry(f, f, 64));
  uint64_t expected_exact = 0;
  uint64_t expected_warm = 0;
  uint64_t expected_miss = 0;
  for (uint64_t f = 0; f < 48; ++f) {
    if (f < 32) {
      if (f % 2 == 0) {
        cache.Lookup(f, f);
        ++expected_exact;
      } else {
        cache.Lookup(f, f + 1);
        ++expected_warm;
      }
    } else {
      cache.Lookup(f, f);
      ++expected_miss;
    }
  }
  FrontierCacheStats stats = cache.stats();
  EXPECT_EQ(48u, stats.lookups);
  EXPECT_EQ(expected_exact, stats.exact_hits);
  EXPECT_EQ(expected_warm, stats.warm_hits);
  EXPECT_EQ(expected_miss, stats.misses);
  EXPECT_EQ(32u, stats.inserts);
}

TEST(FrontierCacheTest, ConcurrentHammerStaysConsistent) {
  // Lookup/insert/evict from many threads against a tight budget; run
  // under TSan in CI. Assertions check conservation: counters add up and
  // occupancy respects the budget once all threads are done.
  FrontierCacheConfig config;
  config.lock_shards = 4;
  config.max_bytes = 64 * 1024;
  FrontierCache cache(config);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> found{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &found, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t fingerprint = static_cast<uint64_t>((t * 31 + i) % 97);
        if (i % 3 == 0) {
          cache.Insert(MakeEntry(fingerprint, static_cast<uint64_t>(t),
                                 512 + (fingerprint % 7) * 128));
        } else {
          auto entry =
              cache.Lookup(fingerprint, static_cast<uint64_t>(t));
          if (entry != nullptr) {
            // Read through the shared_ptr to give TSan a cross-thread
            // access to race against eviction.
            found.fetch_add(entry->plan_bytes.size() != 0 ? 1 : 0,
                            std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  FrontierCacheStats stats = cache.stats();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * (kOpsPerThread - kOpsPerThread / 3 - (kOpsPerThread % 3 == 0 ? 0 : (kOpsPerThread % 3 == 1 ? 0 : 1))),
            stats.exact_hits + stats.warm_hits + stats.misses)
      << "every lookup must be classified exactly once";
  EXPECT_EQ(stats.lookups, stats.exact_hits + stats.warm_hits + stats.misses);
  EXPECT_LE(stats.bytes, config.max_bytes);
  EXPECT_GT(found.load(), 0u);
  EXPECT_GE(stats.inserts, stats.evictions);
}

}  // namespace
}  // namespace moqo
