#include "cost/cost_vector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

namespace moqo {
namespace {

TEST(CostVectorTest, ZeroConstruction) {
  CostVector v(3);
  EXPECT_EQ(v.size(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(CostVectorTest, InitializerList) {
  CostVector v = {1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(CostVectorTest, Addition) {
  CostVector a = {1.0, 2.0};
  CostVector b = {10.0, 20.0};
  CostVector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 11.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
}

TEST(CostVectorTest, AdditionClampsAtMaxCost) {
  CostVector a = {kMaxCost, 1.0};
  CostVector b = {kMaxCost, 1.0};
  CostVector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], kMaxCost);
  EXPECT_FALSE(std::isinf(c[0]));
}

TEST(CostVectorTest, WeakDominance) {
  CostVector a = {1.0, 2.0};
  CostVector b = {1.0, 3.0};
  EXPECT_TRUE(a.WeakDominates(b));
  EXPECT_FALSE(b.WeakDominates(a));
  EXPECT_TRUE(a.WeakDominates(a));  // reflexive
}

TEST(CostVectorTest, StrictDominance) {
  CostVector a = {1.0, 2.0};
  CostVector b = {1.0, 3.0};
  CostVector c = {0.5, 5.0};
  EXPECT_TRUE(a.StrictlyDominates(b));
  EXPECT_FALSE(a.StrictlyDominates(a));  // irreflexive
  EXPECT_FALSE(a.StrictlyDominates(c));  // incomparable
  EXPECT_FALSE(c.StrictlyDominates(a));
}

TEST(CostVectorTest, DominanceIsTransitive) {
  CostVector a = {1.0, 1.0, 1.0};
  CostVector b = {2.0, 1.0, 1.0};
  CostVector c = {2.0, 2.0, 1.0};
  EXPECT_TRUE(a.StrictlyDominates(b));
  EXPECT_TRUE(b.StrictlyDominates(c));
  EXPECT_TRUE(a.StrictlyDominates(c));
}

TEST(CostVectorTest, ApproxDominance) {
  CostVector a = {10.0, 10.0};
  CostVector b = {6.0, 6.0};
  // a is within factor 2 of b but not within factor 1.5.
  EXPECT_TRUE(a.ApproxDominates(b, 2.0));
  EXPECT_FALSE(a.ApproxDominates(b, 1.5));
  // Alpha = 1 reduces to weak dominance.
  EXPECT_TRUE(b.ApproxDominates(a, 1.0));
  EXPECT_FALSE(a.ApproxDominates(b, 1.0));
}

TEST(CostVectorTest, ApproxDominanceWithInfiniteAlpha) {
  CostVector a = {1e100, 1e100};
  CostVector b = {1.0, 1.0};
  EXPECT_TRUE(
      a.ApproxDominates(b, std::numeric_limits<double>::infinity()));
}

TEST(CostVectorTest, EqualTo) {
  CostVector a = {1.0, 2.0};
  CostVector b = {1.0, 2.0};
  CostVector c = {1.0, 2.5};
  EXPECT_TRUE(a.EqualTo(b));
  EXPECT_FALSE(a.EqualTo(c));
}

TEST(CostVectorTest, Sum) {
  CostVector a = {1.5, 2.5, 6.0};
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
}

TEST(CostVectorTest, MaxRatioOver) {
  CostVector a = {10.0, 30.0};
  CostVector r = {10.0, 10.0};
  EXPECT_DOUBLE_EQ(a.MaxRatioOver(r), 3.0);
}

TEST(CostVectorTest, MaxRatioOverHandlesZeros) {
  CostVector both_zero = {0.0, 5.0};
  CostVector ref_zero = {0.0, 5.0};
  EXPECT_DOUBLE_EQ(both_zero.MaxRatioOver(ref_zero), 1.0);

  CostVector positive = {1.0, 5.0};
  EXPECT_TRUE(std::isinf(positive.MaxRatioOver(ref_zero)));
}

TEST(CostVectorTest, ClampedRemovesNegativesAndNaN) {
  CostVector v = {-1.0, 2.0};
  v[0] = std::nan("");
  CostVector c = v.Clamped();
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(CostVectorTest, ToStringFormat) {
  CostVector v = {1.0, 2.5};
  EXPECT_EQ(v.ToString(), "(1, 2.5)");
}

// Regression: StrictlyDominates is evaluated in one pass (abort on any
// greater component, remember any strictly lower one). It must stay
// exactly WeakDominates && !EqualTo — in particular, equal vectors must
// not strictly dominate, and a vector lower in one component but higher
// in another must not either, regardless of component order.
TEST(CostVectorTest, StrictDominanceMatchesTwoPassDefinition) {
  const CostVector vectors[] = {
      {1.0, 2.0, 3.0},  {1.0, 2.0, 2.0},  {2.0, 2.0, 3.0},
      {1.0, 1.0, 4.0},  {4.0, 1.0, 1.0},  {1.0, 2.0, 3.0},
      {0.0, 0.0, 0.0},  {1.0, 2.0, 2.99},
  };
  for (const CostVector& a : vectors) {
    for (const CostVector& b : vectors) {
      EXPECT_EQ(a.StrictlyDominates(b), a.WeakDominates(b) && !a.EqualTo(b))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

// The branch-free fixed-lane kernel must agree with the scalar relations
// for any live metric count: the padding lanes (zero by CostVector's
// invariant) contribute 0 <= 0 to both directions and never flip a
// verdict.
TEST(CostVectorTest, DominanceCompareMatchesScalarRelations) {
  std::mt19937 gen(2016);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  for (int metrics = 1; metrics <= CostVector::kMaxMetrics; ++metrics) {
    for (int trial = 0; trial < 200; ++trial) {
      CostVector a(metrics);
      CostVector b(metrics);
      for (int i = 0; i < metrics; ++i) {
        a[i] = dist(gen);
        // Force frequent ties so the equality direction is exercised.
        b[i] = (trial % 3 == 0) ? a[i] : dist(gen);
      }
      bool a_le_b = false;
      bool b_le_a = false;
      DominanceCompare(a.data(), b.data(), &a_le_b, &b_le_a);
      EXPECT_EQ(a_le_b, a.WeakDominates(b));
      EXPECT_EQ(b_le_a, b.WeakDominates(a));
      EXPECT_EQ(a_le_b && !b_le_a, a.StrictlyDominates(b));
      EXPECT_EQ(a_le_b && b_le_a, a.EqualTo(b));
    }
  }
}

// Property sweep: strict dominance and approximate dominance must be
// consistent for random vector pairs.
class DominancePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DominancePropertyTest, StrictImpliesWeakImpliesApprox) {
  unsigned seed = static_cast<unsigned>(GetParam());
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(0.1, 100.0);
  for (int trial = 0; trial < 200; ++trial) {
    CostVector a(3);
    CostVector b(3);
    for (int i = 0; i < 3; ++i) {
      a[i] = dist(gen);
      b[i] = dist(gen);
    }
    if (a.StrictlyDominates(b)) {
      EXPECT_TRUE(a.WeakDominates(b));
      EXPECT_FALSE(b.StrictlyDominates(a));  // antisymmetric
    }
    if (a.WeakDominates(b)) {
      EXPECT_TRUE(a.ApproxDominates(b, 1.0));
      EXPECT_TRUE(a.ApproxDominates(b, 7.5));
      EXPECT_LE(a.MaxRatioOver(b), 1.0);
    }
    // ApproxDominates(alpha) is monotone in alpha.
    if (a.ApproxDominates(b, 1.2)) {
      EXPECT_TRUE(a.ApproxDominates(b, 2.0));
    }
    // MaxRatioOver is the tightest alpha.
    double alpha = a.MaxRatioOver(b);
    EXPECT_TRUE(a.ApproxDominates(b, alpha * 1.0000001));
    EXPECT_FALSE(a.ApproxDominates(b, alpha * 0.99) &&
                 alpha > 1e-9 && !a.WeakDominates(b) && alpha < 0.99);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominancePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace moqo
