// Tests for the execution substrate: dataset generation, operator
// correctness (all physical join algorithms agree), plan-equivalence of
// different join orders, and cardinality-estimate validation.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rmq.h"
#include "plan/random_plan.h"
#include "plan/transformations.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;
  Dataset dataset;

  explicit Fixture(int tables = 4, uint64_t seed = 42, double scale = 0.02)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model),
        dataset(query, [] { static Rng rng(7); return &rng; }(), scale,
                400) {}
};

TEST(DatasetTest, RowCountsScaledAndClamped) {
  Fixture fx(5, 1, 0.01);
  for (int t = 0; t < 5; ++t) {
    int rows = fx.dataset.RowsOf(t);
    EXPECT_GE(rows, 1);
    EXPECT_LE(rows, 400);
    double expected = fx.query->catalog().Cardinality(t) * 0.01;
    EXPECT_LE(rows, std::max(1.0, expected) + 1.0);
  }
}

TEST(DatasetTest, KeyColumnsPresentForIncidentEdges) {
  Fixture fx(5);
  const auto& edges = fx.query->graph().Edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    for (int endpoint : {edges[e].left, edges[e].right}) {
      const TableData& data = fx.dataset.table(endpoint);
      auto it = data.key_columns.find(static_cast<int>(e));
      ASSERT_NE(it, data.key_columns.end());
      EXPECT_EQ(it->second.size(), static_cast<size_t>(data.num_rows));
      for (int64_t key : it->second) {
        EXPECT_GE(key, 0);
        EXPECT_LT(key, fx.dataset.DomainOf(static_cast<int>(e)));
      }
    }
  }
}

TEST(DatasetTest, DomainApproximatesInverseSelectivity) {
  Fixture fx(6, 3);
  const auto& edges = fx.query->graph().Edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    double inv = 1.0 / edges[e].selectivity;
    EXPECT_NEAR(static_cast<double>(fx.dataset.DomainOf(static_cast<int>(e))),
                inv, inv * 0.5 + 1.0);
  }
}

TEST(ExecutorTest, ScanReturnsAllRows) {
  Fixture fx;
  Executor exec(&fx.dataset);
  PlanPtr scan = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  auto result = exec.Execute(scan);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->NumRows(), fx.dataset.RowsOf(0));
  EXPECT_EQ(result->tables, std::vector<int>{0});
}

TEST(ExecutorTest, AllJoinAlgorithmsProduceSameResult) {
  Fixture fx(3, 11);
  Executor exec(&fx.dataset);
  PlanPtr s0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr s1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);

  std::optional<ResultSet> reference;
  for (JoinAlgorithm op : AllJoinAlgorithms()) {
    PlanPtr join = fx.factory.MakeJoin(s0, s1, op);
    auto result = exec.Execute(join);
    ASSERT_TRUE(result.has_value()) << ToString(op);
    if (!reference.has_value()) {
      reference = result;
    } else {
      EXPECT_TRUE(SameResult(*reference, *result)) << ToString(op);
    }
  }
}

TEST(ExecutorTest, JoinOrderDoesNotChangeResult) {
  // Every join order and operator labeling of the same query computes the
  // same multiset of result tuples — execution-level validation of the
  // whole transformation rule set.
  Fixture fx(4, 13);
  Executor exec(&fx.dataset, 2000000);
  Rng rng(5);
  std::optional<ResultSet> reference;
  for (int i = 0; i < 8; ++i) {
    PlanPtr plan = RandomPlan(&fx.factory, &rng);
    auto result = exec.Execute(plan);
    ASSERT_TRUE(result.has_value()) << plan->ToString();
    if (!reference.has_value()) {
      reference = result;
    } else {
      EXPECT_TRUE(SameResult(*reference, *result)) << plan->ToString();
    }
  }
}

TEST(ExecutorTest, NeighborsComputeSameResult) {
  Fixture fx(4, 17);
  Executor exec(&fx.dataset, 2000000);
  Rng rng(7);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  auto reference = exec.Execute(plan);
  ASSERT_TRUE(reference.has_value());
  for (const PlanPtr& neighbor : AllNeighbors(plan, &fx.factory)) {
    auto result = exec.Execute(neighbor);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(SameResult(*reference, *result)) << neighbor->ToString();
  }
}

TEST(ExecutorTest, CrossProductCount) {
  // Two tables with no connecting predicate: result = |A| * |B| rows.
  Catalog catalog;
  catalog.AddTable({20.0, 100.0, false});
  catalog.AddTable({30.0, 100.0, false});
  JoinGraph graph(2);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime});
  PlanFactory factory(query, &model);
  Rng rng(1);
  Dataset dataset(query, &rng, 1.0, 1000);
  Executor exec(&dataset);
  for (JoinAlgorithm op :
       {JoinAlgorithm::kHashSmall, JoinAlgorithm::kNestedLoop,
        JoinAlgorithm::kSortMergeSmall}) {
    PlanPtr plan = factory.MakeJoin(
        factory.MakeScan(0, ScanAlgorithm::kFullScan),
        factory.MakeScan(1, ScanAlgorithm::kFullScan), op);
    auto result = exec.Execute(plan);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->NumRows(), 600) << ToString(op);
  }
}

TEST(ExecutorTest, IntermediateCapAborts) {
  Fixture fx(4, 19);
  Executor exec(&fx.dataset, /*max_intermediate_rows=*/10);
  Rng rng(9);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  // A tiny cap forces an abort on any non-trivial join result.
  auto result = exec.Execute(plan);
  if (result.has_value()) {
    EXPECT_LE(result->NumRows(), 10);
  }
}

TEST(ExecutorTest, StatsPopulated) {
  Fixture fx(3, 23);
  Executor exec(&fx.dataset);
  Rng rng(11);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  ExecStats stats;
  auto result = exec.Execute(plan, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stats.rows_out, result->NumRows());
  EXPECT_GT(stats.comparisons, 0);
  EXPECT_GE(stats.max_intermediate, result->NumRows());
}

TEST(ExecutorTest, ActualCardinalityTracksEstimate) {
  // The optimizer's estimate for the full join should be within an order
  // of magnitude of the executed cardinality when the dataset is generated
  // at matching scale (keys are independent uniform — exactly the cost
  // model's assumption).
  Catalog catalog;
  catalog.AddTable({300.0, 100.0, false});
  catalog.AddTable({400.0, 100.0, false});
  catalog.AddTable({200.0, 100.0, false});
  JoinGraph graph(3);
  graph.AddEdge(0, 1, 0.01);
  graph.AddEdge(1, 2, 0.02);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime});
  PlanFactory factory(query, &model);
  Rng rng(31);
  Dataset dataset(query, &rng, 1.0, 1000);
  Executor exec(&dataset, 10000000);

  PlanPtr plan = factory.MakeJoin(
      factory.MakeJoin(factory.MakeScan(0, ScanAlgorithm::kFullScan),
                       factory.MakeScan(1, ScanAlgorithm::kFullScan),
                       JoinAlgorithm::kHashLarge),
      factory.MakeScan(2, ScanAlgorithm::kFullScan),
      JoinAlgorithm::kHashLarge);
  auto result = exec.Execute(plan);
  ASSERT_TRUE(result.has_value());
  double estimated = factory.Cardinality(query->AllTables());
  double actual = static_cast<double>(result->NumRows());
  EXPECT_GT(actual, 0.0);
  EXPECT_LT(std::abs(std::log10(actual) - std::log10(estimated)), 1.0)
      << "estimated " << estimated << " vs actual " << actual;
}

TEST(ExecutorTest, OptimizedPlanBoundsIntermediateResults) {
  // Build a query whose catalog matches the materialized dataset exactly
  // (scale 1, no clamping) so the optimizer's estimates and the executed
  // data agree. The cheapest RMQ plan must then materialize intermediate
  // results no larger than the median random plan does — the point of
  // join-order optimization.
  Catalog catalog;
  catalog.AddTable({150.0, 100.0, false});
  catalog.AddTable({300.0, 100.0, false});
  catalog.AddTable({80.0, 100.0, false});
  catalog.AddTable({250.0, 100.0, false});
  catalog.AddTable({120.0, 100.0, false});
  JoinGraph graph(5);
  graph.AddEdge(0, 1, 0.01);
  graph.AddEdge(1, 2, 0.02);
  graph.AddEdge(2, 3, 0.005);
  graph.AddEdge(3, 4, 0.01);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);
  Rng data_rng(31);
  Dataset dataset(query, &data_rng, 1.0, 100000);
  Executor exec(&dataset, 50000000);

  Rmq rmq;
  Rng opt_rng(1);
  std::vector<PlanPtr> frontier =
      rmq.Optimize(&factory, &opt_rng, Deadline::AfterMillis(200), nullptr);
  ASSERT_FALSE(frontier.empty());
  PlanPtr best = frontier.front();
  for (const PlanPtr& p : frontier) {
    if (p->cost()[0] < best->cost()[0]) best = p;
  }
  ExecStats best_stats;
  ASSERT_TRUE(exec.Execute(best, &best_stats).has_value());

  Rng rnd(2);
  std::vector<int64_t> random_intermediate;
  for (int i = 0; i < 9; ++i) {
    ExecStats stats;
    if (exec.Execute(RandomPlan(&factory, &rnd), &stats).has_value()) {
      random_intermediate.push_back(stats.max_intermediate);
    } else {
      random_intermediate.push_back(INT64_MAX);  // aborted: blew the cap
    }
  }
  std::sort(random_intermediate.begin(), random_intermediate.end());
  EXPECT_LE(best_stats.max_intermediate,
            random_intermediate[random_intermediate.size() / 2]);
}

}  // namespace
}  // namespace moqo
