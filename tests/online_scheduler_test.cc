// Tests for the online deadline-aware optimization service: admission
// while workers are running, drain/stop semantics, back-pressure, the
// determinism contract across policies and thread counts, and EDF beating
// FIFO on deadline-hit-rate for a skewed workload.
#include "service/online_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/dp.h"
#include "core/rmq.h"
#include "service/batch_optimizer.h"

namespace moqo {
namespace {

OptimizerFactory RmqFactory(int max_iterations) {
  return [max_iterations] {
    RmqConfig config;
    config.max_iterations = max_iterations;
    return std::make_unique<Rmq>(config);
  };
}

std::vector<BatchTask> SmallBatch(int n, int tables,
                                  int64_t deadline_micros = 0,
                                  uint64_t master_seed = 2016) {
  GeneratorConfig generator;
  generator.num_tables = tables;
  return GenerateBatch(n, generator, master_seed, deadline_micros);
}


// The acceptance contract of the online service: tasks submitted while the
// workers are already running produce frontiers bitwise identical to a
// single-thread blocking reference, for every scheduling policy, at 1, 2,
// and 8 threads. Only timing may depend on policy and thread count.
TEST(OnlineSchedulerTest, SubmitWhileRunningMatchesBlockingReference) {
  std::vector<BatchTask> tasks = SmallBatch(10, 6);

  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(20)).Run(tasks);

  const SchedulingPolicy policies[] = {
      SchedulingPolicy::kFifo, SchedulingPolicy::kEarliestDeadlineFirst,
      SchedulingPolicy::kSlackWeighted};
  for (SchedulingPolicy policy : policies) {
    for (int threads : {1, 2, 8}) {
      OnlineConfig config;
      config.num_threads = threads;
      config.steps_per_slice = 2;
      config.policy = policy;
      OnlineScheduler service(config, RmqFactory(20));
      service.Start();

      std::vector<std::future<BatchTaskResult>> tickets;
      for (const BatchTask& task : tasks) {
        auto ticket = service.Submit(task);
        ASSERT_TRUE(ticket.has_value());
        tickets.push_back(std::move(*ticket));
      }
      BatchReport report = service.Stop();

      ASSERT_EQ(report.tasks.size(), tasks.size());
      BatchComparison cmp = CompareToReference(reference, report);
      EXPECT_TRUE(cmp.identical)
          << "policy " << static_cast<int>(policy) << " at " << threads
          << " threads diverged from the blocking reference";
      for (size_t i = 0; i < tickets.size(); ++i) {
        BatchTaskResult ticket_result = tickets[i].get();
        EXPECT_EQ(ticket_result.index, static_cast<int>(i));
        EXPECT_TRUE(BitwiseEqual(ticket_result.frontier,
                                 report.tasks[i].frontier));
        EXPECT_EQ(report.tasks[i].steps, 20);
      }
    }
  }
}

// Submissions are legal before Start(): they build a backlog the workers
// drain once started, and the service accepts more work after a Drain().
TEST(OnlineSchedulerTest, SubmitBeforeStartBuildsBacklogAndDrains) {
  std::vector<BatchTask> tasks = SmallBatch(6, 5);
  OnlineConfig config;
  config.num_threads = 2;
  OnlineScheduler service(config, RmqFactory(8));

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.Submit(tasks[static_cast<size_t>(i)]).has_value());
  }
  EXPECT_EQ(service.open_count(), 4u);
  EXPECT_EQ(service.submitted_count(), 4u);

  service.Drain();  // implicitly starts the workers
  EXPECT_EQ(service.open_count(), 0u);

  // The drained service keeps serving: admit two more tasks.
  ASSERT_TRUE(service.Submit(tasks[4]).has_value());
  ASSERT_TRUE(service.Submit(tasks[5]).has_value());
  BatchReport report = service.Stop();

  ASSERT_EQ(report.tasks.size(), 6u);
  for (size_t i = 0; i < report.tasks.size(); ++i) {
    EXPECT_EQ(report.tasks[i].index, static_cast<int>(i));
    EXPECT_FALSE(report.tasks[i].frontier.empty());
  }
}

// The headline scheduling claim: on a skewed workload — a backlog of
// loose-deadline queries admitted ahead of a burst of tight-deadline ones —
// EDF completes strictly more deadline windows than FIFO. Work and
// deadlines are calibrated against a blocking run on this machine, so the
// structural argument (FIFO serves the tight burst after 20 loose tasks,
// EDF serves it first) holds under sanitizers and on loaded runners.
TEST(OnlineSchedulerTest, EdfBeatsFifoOnSkewedDeadlineWorkload) {
  constexpr int kIterations = 20;
  constexpr int kLoose = 20;
  constexpr int kTight = 6;

  // Warm up (cold caches would inflate the calibration), then measure the
  // per-task cost of this workload on this machine.
  BatchConfig single;
  single.num_threads = 1;
  BatchOptimizer(single, RmqFactory(kIterations)).Run(SmallBatch(2, 6));
  Stopwatch calib_watch;
  BatchOptimizer(single, RmqFactory(kIterations)).Run(SmallBatch(4, 6));
  const double per_task_millis = calib_watch.ElapsedMillis() / 4.0;
  const auto scaled = [per_task_millis](double factor) {
    return static_cast<int64_t>(factor * per_task_millis * 1000.0);
  };

  // Loose tasks can wait out the whole backlog (300x one task); tight
  // tasks can survive the tight burst itself (12x > 6 tasks) but not the
  // loose backlog (12x < 20 tasks).
  std::vector<BatchTask> workload =
      SmallBatch(kLoose, 6, scaled(300.0), /*master_seed=*/7);
  std::vector<BatchTask> tight =
      SmallBatch(kTight, 6, scaled(12.0), /*master_seed=*/8);
  workload.insert(workload.end(), tight.begin(), tight.end());

  const auto run_policy = [&](SchedulingPolicy policy) {
    OnlineConfig config;
    config.num_threads = 1;
    // Run-to-completion slices: FIFO then serves strictly in admission
    // order, making the structural miss/hit argument exact.
    config.steps_per_slice = kIterations;
    config.policy = policy;
    OnlineScheduler service(config, RmqFactory(kIterations));
    for (const BatchTask& task : workload) service.Submit(task);
    service.Start();
    return service.Stop();
  };

  BatchReport fifo = run_policy(SchedulingPolicy::kFifo);
  BatchReport edf = run_policy(SchedulingPolicy::kEarliestDeadlineFirst);

  ASSERT_EQ(fifo.deadline_tasks, static_cast<size_t>(kLoose + kTight));
  ASSERT_EQ(edf.deadline_tasks, static_cast<size_t>(kLoose + kTight));
  EXPECT_GT(edf.deadline_hits, fifo.deadline_hits)
      << "EDF should rescue the tight-deadline burst that FIFO starves "
      << "(per-task cost " << per_task_millis << " ms)";
  EXPECT_GT(edf.deadline_hit_rate, fifo.deadline_hit_rate);
}

// A full admission window under kReject bounces submissions instead of
// blocking; a completed task frees its slot.
TEST(OnlineSchedulerTest, RejectPolicyBoundsOpenQueries) {
  std::vector<BatchTask> tasks = SmallBatch(4, 5);
  OnlineConfig config;
  config.num_threads = 2;
  config.max_open = 2;
  config.admission = AdmissionPolicy::kReject;
  OnlineScheduler service(config, RmqFactory(5));

  // Workers not started yet: admitted tasks stay open, so the window
  // fills deterministically.
  EXPECT_TRUE(service.Submit(tasks[0]).has_value());
  EXPECT_TRUE(service.Submit(tasks[1]).has_value());
  EXPECT_FALSE(service.Submit(tasks[2]).has_value());
  EXPECT_EQ(service.open_count(), 2u);

  service.Drain();
  EXPECT_TRUE(service.Submit(tasks[3]).has_value());
  BatchReport report = service.Stop();
  ASSERT_EQ(report.tasks.size(), 3u);  // the rejected task was never admitted
  for (const BatchTaskResult& task : report.tasks) {
    EXPECT_FALSE(task.frontier.empty());
  }
}

// Under kBlock a full window stalls the submitter until a slot frees up;
// every submission is eventually admitted.
TEST(OnlineSchedulerTest, BlockPolicyAdmitsOnceSlotsFree) {
  std::vector<BatchTask> tasks = SmallBatch(4, 5);
  OnlineConfig config;
  config.num_threads = 1;
  config.max_open = 1;
  config.admission = AdmissionPolicy::kBlock;
  OnlineScheduler service(config, RmqFactory(5));
  service.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = service.Submit(task);  // blocks while the window is full
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  BatchReport report = service.Stop();
  ASSERT_EQ(report.tasks.size(), 4u);
  for (auto& ticket : tickets) {
    EXPECT_FALSE(ticket.get().frontier.empty());
  }
}

// Deadline bookkeeping: an unbounded session under a deadline is finalized
// as a miss; a bounded session under a generous deadline is a hit.
TEST(OnlineSchedulerTest, DeadlineHitFlagsAndRates) {
  OnlineConfig config;
  config.num_threads = 2;
  config.policy = SchedulingPolicy::kEarliestDeadlineFirst;

  {
    // max_iterations = 0: never Done, so the 50 ms window must expire.
    OnlineScheduler service(config, RmqFactory(/*max_iterations=*/0));
    for (const BatchTask& task : SmallBatch(3, 10, /*deadline_micros=*/
                                            50 * 1000)) {
      service.Submit(task);
    }
    BatchReport report = service.Stop();
    ASSERT_EQ(report.tasks.size(), 3u);
    EXPECT_EQ(report.deadline_tasks, 3u);
    EXPECT_EQ(report.deadline_hits, 0u);
    EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 0.0);
    for (const BatchTaskResult& task : report.tasks) {
      EXPECT_TRUE(task.had_deadline);
      EXPECT_FALSE(task.deadline_hit);
      EXPECT_GE(task.elapsed_millis, 0.0);
    }
  }
  {
    // 10 iterations inside a 60 s window: every deadline is hit.
    OnlineScheduler service(config, RmqFactory(10));
    for (const BatchTask& task : SmallBatch(3, 5, /*deadline_micros=*/
                                            60 * 1000 * 1000)) {
      service.Submit(task);
    }
    BatchReport report = service.Stop();
    EXPECT_EQ(report.deadline_tasks, 3u);
    EXPECT_EQ(report.deadline_hits, 3u);
    EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 1.0);
  }
}

// retain_frontiers = false bounds a long-lived service's memory: each
// frontier is delivered through its future only, while the Stop() report
// keeps the scalar metrics and deadline aggregates.
TEST(OnlineSchedulerTest, RetainFrontiersOffDropsReportFrontiers) {
  OnlineConfig config;
  config.num_threads = 2;
  config.retain_frontiers = false;
  OnlineScheduler service(config, RmqFactory(8));
  service.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : SmallBatch(3, 5, /*deadline_micros=*/
                                          60 * 1000 * 1000)) {
    auto ticket = service.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  for (auto& ticket : tickets) {
    EXPECT_FALSE(ticket.get().frontier.empty());
  }
  BatchReport report = service.Stop();
  ASSERT_EQ(report.tasks.size(), 3u);
  EXPECT_EQ(report.total_frontier, 0u);
  EXPECT_EQ(report.deadline_hits, 3u);
  for (const BatchTaskResult& task : report.tasks) {
    EXPECT_TRUE(task.frontier.empty());
    EXPECT_GT(task.steps, 0);
  }
}

TEST(OnlineSchedulerTest, StopRejectsFurtherSubmissions) {
  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler service(config, RmqFactory(5));
  BatchReport report = service.Stop();  // never started, nothing admitted
  EXPECT_TRUE(report.tasks.empty());
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 1.0);
  EXPECT_FALSE(service.Submit(SmallBatch(1, 5)[0]).has_value());
}

// A DP task on an oversized query gives up immediately: Done, empty
// frontier, wall-clock window wide open. It must be finalized as a miss,
// never a hit — regression for the gave-up/deadline_hit bug.
TEST(OnlineSchedulerTest, GaveUpDpTaskIsNeverADeadlineHit) {
  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler service(config, [] {
    return std::make_unique<DpOptimizer>();  // max_tables = 20
  });
  GeneratorConfig generator;
  generator.num_tables = 25;
  std::vector<BatchTask> tasks =
      GenerateBatch(1, generator, /*master_seed=*/5, /*deadline_micros=*/
                    60 * 1000 * 1000);
  auto ticket = service.Submit(tasks[0]);
  ASSERT_TRUE(ticket.has_value());
  BatchReport report = service.Stop();

  BatchTaskResult result = ticket->get();
  EXPECT_TRUE(result.gave_up);
  EXPECT_TRUE(result.frontier.empty());
  EXPECT_TRUE(result.had_deadline);
  EXPECT_FALSE(result.deadline_hit);
  EXPECT_EQ(report.deadline_tasks, 1u);
  EXPECT_EQ(report.deadline_hits, 0u);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 0.0);
}

// Migration correctness: tasks suspended off one scheduler instance and
// resumed on another mid-run must still produce frontiers bitwise
// identical to the blocking single-thread reference, delivered through
// the *original* Submit() futures.
TEST(OnlineSchedulerTest, SuspendResumeMigrationMatchesBlockingReference) {
  std::vector<BatchTask> tasks = SmallBatch(8, 6);

  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(20)).Run(tasks);

  OnlineConfig config;
  config.num_threads = 2;
  OnlineScheduler source(config, RmqFactory(20));
  OnlineScheduler destination(config, RmqFactory(20));
  source.Start();
  destination.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  size_t migrated = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto ticket = source.Submit(tasks[i]);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
    // Migrate every second submission right away: the workers race us, so
    // the suspension lands pre-Begin, mid-run, or not at all (finished) —
    // all three must preserve the result.
    if (i % 2 == 1) {
      auto suspended = source.Suspend(i);
      if (suspended.has_value()) {
        ASSERT_TRUE(destination.Resume(*suspended));
        ++migrated;
      }
    }
  }
  source.Drain();
  destination.Drain();

  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, 20);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged after migration";
  }
  BatchReport source_report = source.Stop();
  BatchReport destination_report = destination.Stop();
  EXPECT_EQ(source_report.migrated_tasks, migrated);
  EXPECT_EQ(destination_report.tasks.size(), migrated);
  EXPECT_EQ(source_report.tasks.size(), tasks.size());
}

// A pre-Start backlog task has never run a slice; suspending it yields an
// empty checkpoint and resuming it (even into the same scheduler) begins
// the session from scratch with its original seed.
TEST(OnlineSchedulerTest, SuspendFromBacklogAndResumeIntoSameScheduler) {
  std::vector<BatchTask> tasks = SmallBatch(2, 5);
  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(8)).Run(tasks);

  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler service(config, RmqFactory(8));
  auto ticket0 = service.Submit(tasks[0]);
  auto ticket1 = service.Submit(tasks[1]);
  ASSERT_TRUE(ticket0.has_value() && ticket1.has_value());

  // Workers are not running: the suspension must find the task queued.
  auto suspended = service.Suspend(0);
  ASSERT_TRUE(suspended.has_value());
  EXPECT_TRUE(suspended->checkpoint.empty());
  EXPECT_EQ(suspended->steps, 0);
  EXPECT_EQ(service.open_count(), 1u);
  // Double-suspension is refused.
  EXPECT_FALSE(service.Suspend(0).has_value());

  // A never-started scheduler refuses the re-admission (no worker would
  // ever run it); the task stays intact and resumable once it is running.
  EXPECT_FALSE(service.Resume(*suspended));
  EXPECT_FALSE(suspended->consumed());
  service.Start();
  ASSERT_TRUE(service.Resume(*suspended));
  service.Drain();
  EXPECT_TRUE(BitwiseEqual(ticket0->get().frontier,
                           reference.tasks[0].frontier));
  EXPECT_TRUE(BitwiseEqual(ticket1->get().frontier,
                           reference.tasks[1].frontier));
  BatchReport report = service.Stop();
  // Three slots: two submissions plus the re-admission; slot 0 is a stub.
  ASSERT_EQ(report.tasks.size(), 3u);
  EXPECT_TRUE(report.tasks[0].migrated);
  EXPECT_EQ(report.migrated_tasks, 1u);
}

// Suspending an already-completed task reports nullopt, and a suspension
// releases the admission-window slot (back-pressure accounting).
TEST(OnlineSchedulerTest, SuspendReleasesWindowSlotAndRefusesFinished) {
  std::vector<BatchTask> tasks = SmallBatch(3, 5);
  OnlineConfig config;
  config.num_threads = 1;
  config.max_open = 2;
  config.admission = AdmissionPolicy::kReject;
  OnlineScheduler service(config, RmqFactory(6));

  // Pre-Start: fill the window, then make room by suspending.
  ASSERT_TRUE(service.Submit(tasks[0]).has_value());
  ASSERT_TRUE(service.Submit(tasks[1]).has_value());
  EXPECT_FALSE(service.Submit(tasks[2]).has_value());
  auto suspended = service.Suspend(1);
  ASSERT_TRUE(suspended.has_value());
  EXPECT_EQ(service.open_count(), 1u);
  auto ticket = service.Submit(tasks[2]);
  ASSERT_TRUE(ticket.has_value());

  service.Drain();
  // Every admitted task has finished; suspension is now impossible.
  EXPECT_FALSE(service.Suspend(0).has_value());
  EXPECT_FALSE(service.Suspend(2).has_value());
  EXPECT_FALSE(service.Suspend(99).has_value());
  ASSERT_TRUE(service.Resume(*suspended));
  // A consumed SuspendedTask is refused: re-admitting it would duplicate
  // the task with a moved-from promise.
  EXPECT_FALSE(service.Resume(*suspended));
  service.Drain();
  BatchReport report = service.Stop();
  EXPECT_EQ(report.migrated_tasks, 1u);
}

// An abandoned migration must surface as an explicit error at the
// submitter: dropping a SuspendedTask without Resume() fails the original
// Submit() future with a descriptive exception (not a bare broken
// promise), and the source scheduler's Drain()/Stop() complete without
// waiting on the migrated-away slot.
TEST(OnlineSchedulerTest, AbandonedSuspensionFailsFutureDescriptively) {
  std::vector<BatchTask> tasks = SmallBatch(2, 5);
  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler service(config, RmqFactory(6));
  auto ticket0 = service.Submit(tasks[0]);
  auto ticket1 = service.Submit(tasks[1]);
  ASSERT_TRUE(ticket0.has_value() && ticket1.has_value());

  {
    auto suspended = service.Suspend(0);
    ASSERT_TRUE(suspended.has_value());
    // Dropped here without Resume() — the task is lost in transit.
  }
  try {
    ticket0->get();
    FAIL() << "an abandoned task delivered a result";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("Resume"), std::string::npos)
        << "unhelpful abandonment message: " << error.what();
  } catch (const std::future_error&) {
    FAIL() << "abandonment surfaced as a bare broken promise";
  }

  // The suspension released its slot, so draining the remaining work must
  // not hang on the task that migrated away and died.
  service.Drain();
  EXPECT_EQ(ticket1->get().steps, 6);
  BatchReport report = service.Stop();
  EXPECT_EQ(report.migrated_tasks, 1u);
}

// Move-assigning over a live SuspendedTask abandons the overwritten task
// the same way destruction does.
TEST(OnlineSchedulerTest, MoveAssignAbandonsOverwrittenSuspension) {
  std::vector<BatchTask> tasks = SmallBatch(2, 5);
  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler service(config, RmqFactory(6));
  auto ticket0 = service.Submit(tasks[0]);
  auto ticket1 = service.Submit(tasks[1]);
  ASSERT_TRUE(ticket0.has_value() && ticket1.has_value());
  auto first = service.Suspend(0);
  auto second = service.Suspend(1);
  ASSERT_TRUE(first.has_value() && second.has_value());

  *first = std::move(*second);  // task 0's promise must fail descriptively
  EXPECT_THROW(ticket0->get(), std::runtime_error);

  service.Start();
  ASSERT_TRUE(service.Resume(*first));  // holds task 1 now
  service.Drain();
  EXPECT_EQ(ticket1->get().steps, 6);
  service.Stop();
}

// The SuspendedTask consumed flag is the single-owner hand-off contract
// in miniature: a fresh suspension is unconsumed; a successful Resume()
// consumes it (a second Resume() is refused instead of admitting a
// duplicate with a moved-from promise); and MarkConsumed() — the
// transport path, where the promise is moved into a rebuilt task — keeps
// the destructor from failing the moved-away future, which must stay
// deliverable by its new owner.
TEST(OnlineSchedulerTest, ConsumedFlagTracksPromiseOwnership) {
  std::vector<BatchTask> tasks = SmallBatch(2, 5);
  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler service(config, RmqFactory(6));
  auto ticket0 = service.Submit(tasks[0]);
  auto ticket1 = service.Submit(tasks[1]);
  ASSERT_TRUE(ticket0.has_value() && ticket1.has_value());

  // Suspend both from the pre-Start backlog — deterministic; once the
  // single worker is running it could finish task 1 before a later
  // Suspend(1) lands.
  auto suspended = service.Suspend(0);
  auto shipped = service.Suspend(1);
  ASSERT_TRUE(suspended.has_value());
  ASSERT_TRUE(shipped.has_value());
  EXPECT_FALSE(suspended->consumed());

  service.Start();
  ASSERT_TRUE(service.Resume(*suspended));
  EXPECT_TRUE(suspended->consumed());
  EXPECT_FALSE(service.Resume(*suspended))
      << "a consumed task was admitted twice";

  // Transport path: the promise moves into a rebuilt task (here, stood in
  // by a bare promise); MarkConsumed() tells the husk it no longer owns
  // the future, so dropping it must not fail the ticket.
  std::promise<BatchTaskResult> rebuilt = std::move(shipped->promise);
  shipped->MarkConsumed();
  EXPECT_TRUE(shipped->consumed());
  shipped.reset();  // destructor must leave the moved-away promise alone
  BatchTaskResult stub;
  stub.index = 1;
  stub.steps = 77;
  rebuilt.set_value(std::move(stub));
  EXPECT_EQ(ticket1->get().steps, 77);

  service.Drain();
  EXPECT_EQ(ticket0->get().steps, 6);
  service.Stop();
}

// A migration destination must be live: Resume() on a never-started or
// stopped scheduler returns false and leaves the task untouched, so the
// caller can land it on a running instance instead of parking it where no
// worker will ever pick it up.
TEST(OnlineSchedulerTest, ResumeRequiresRunningScheduler) {
  std::vector<BatchTask> tasks = SmallBatch(1, 5);
  OnlineConfig config;
  config.num_threads = 1;
  OnlineScheduler source(config, RmqFactory(6));
  auto ticket = source.Submit(tasks[0]);
  ASSERT_TRUE(ticket.has_value());
  auto suspended = source.Suspend(0);
  ASSERT_TRUE(suspended.has_value());

  OnlineScheduler never_started(config, RmqFactory(6));
  EXPECT_FALSE(never_started.Resume(*suspended));
  EXPECT_FALSE(suspended->consumed());

  OnlineScheduler stopped(config, RmqFactory(6));
  stopped.Stop();
  EXPECT_FALSE(stopped.Resume(*suspended));
  EXPECT_FALSE(suspended->consumed());

  // The same object still lands on a running scheduler, and the original
  // future delivers from there.
  OnlineScheduler running(config, RmqFactory(6));
  running.Start();
  ASSERT_TRUE(running.Resume(*suspended));
  running.Drain();
  EXPECT_EQ(ticket->get().steps, 6);
  running.Stop();
  source.Stop();
}

// Stress the suspension hand-off under load (the TSan tier runs this):
// a migrator thread ping-pongs tasks between two live schedulers while
// their workers are mid-slice; every future must still deliver the
// blocking reference bitwise.
TEST(OnlineSchedulerTest, ConcurrentSuspendResumeUnderLoadIsRaceFree) {
  constexpr int kTasks = 12;
  std::vector<BatchTask> tasks = SmallBatch(kTasks, 6);
  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(30)).Run(tasks);

  OnlineConfig config;
  config.num_threads = 4;
  config.steps_per_slice = 1;
  OnlineScheduler ping(config, RmqFactory(30));
  OnlineScheduler pong(config, RmqFactory(30));
  ping.Start();
  pong.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = ping.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }

  // Hop every task once ping -> pong while the workers are running, and
  // hop the even ones straight back pong -> ping.
  std::thread migrator([&] {
    for (size_t i = 0; i < kTasks; ++i) {
      auto suspended = ping.Suspend(i);
      if (!suspended.has_value()) continue;
      ASSERT_TRUE(pong.Resume(*suspended));
      if (i % 2 == 0) {
        // Its index on pong is pong's latest submission.
        auto back = pong.Suspend(pong.submitted_count() - 1);
        if (back.has_value()) {
          ASSERT_TRUE(ping.Resume(*back));
        }
      }
    }
  });
  migrator.join();
  ping.Drain();
  pong.Drain();

  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchTaskResult result = tickets[i].get();
    EXPECT_EQ(result.steps, 30);
    EXPECT_TRUE(BitwiseEqual(result.frontier, reference.tasks[i].frontier))
        << "task " << i << " diverged after ping-pong migration";
  }
  ping.Stop();
  pong.Stop();
}

// Periodic checkpoint snapshots (the failover recovery substrate): with a
// cadence set, every live task is checkpointed every K slices and pushed
// through the sink; the snapshots are observable (snapshot_count), carry
// a restorable mid-run state, and never perturb results.
TEST(OnlineSchedulerTest, PeriodicSnapshotsAreObservableAndHarmless) {
  std::vector<BatchTask> tasks = SmallBatch(6, 6);
  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, RmqFactory(30)).Run(tasks);

  std::mutex mu;
  std::vector<TaskSnapshot> collected;
  OnlineConfig config;
  config.num_threads = 2;
  config.steps_per_slice = 2;  // many slice boundaries per task
  config.snapshot_every = 2;
  config.snapshot_sink = [&](TaskSnapshot&& snapshot) {
    std::lock_guard<std::mutex> lock(mu);
    collected.push_back(std::move(snapshot));
  };
  OnlineScheduler service(config, RmqFactory(30));
  service.Start();
  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : tasks) {
    auto ticket = service.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(std::move(*ticket));
  }
  service.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(tickets[i].get().frontier, reference.tasks[i].frontier))
        << "task " << i << " perturbed by snapshotting";
  }
  service.Stop();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_GT(collected.size(), 0u);
  EXPECT_EQ(service.snapshot_count(), collected.size());
  for (const TaskSnapshot& snapshot : collected) {
    EXPECT_LT(snapshot.submission_index, tasks.size());
    EXPECT_FALSE(snapshot.checkpoint.empty());
    EXPECT_GT(snapshot.steps, 0);
    EXPECT_LT(snapshot.steps, 30);  // mid-run, never a finished task
    ASSERT_NE(snapshot.task.query, nullptr);
    EXPECT_EQ(snapshot.task.query->NumTables(), 6);
  }
  // 30 iterations at 2 steps/slice and a cadence of 2 is ~7 snapshots per
  // task; demand at least a few to prove the cadence repeats.
  EXPECT_GE(collected.size(), tasks.size());
}

// Snapshots stay off by default: a sink without a cadence never fires.
TEST(OnlineSchedulerTest, SnapshotsAreOffByDefault) {
  std::atomic<size_t> fired{0};
  OnlineConfig config;
  config.num_threads = 2;
  config.snapshot_sink = [&](TaskSnapshot&&) { ++fired; };
  OnlineScheduler service(config, RmqFactory(12));
  service.Start();
  std::vector<BatchTask> tasks = SmallBatch(3, 5);
  for (const BatchTask& task : tasks) {
    ASSERT_TRUE(service.Submit(task).has_value());
  }
  service.Drain();
  service.Stop();
  EXPECT_EQ(fired.load(), 0u);
  EXPECT_EQ(service.snapshot_count(), 0u);
}

// Destruction without an explicit Stop() drains admitted work so that no
// promise is broken and no worker leaks.
TEST(OnlineSchedulerTest, DestructorDrainsAdmittedTasks) {
  std::future<BatchTaskResult> ticket;
  {
    OnlineConfig config;
    config.num_threads = 2;
    OnlineScheduler service(config, RmqFactory(8));
    service.Start();
    auto maybe = service.Submit(SmallBatch(1, 5)[0]);
    ASSERT_TRUE(maybe.has_value());
    ticket = std::move(*maybe);
  }
  BatchTaskResult result = ticket.get();  // fulfilled, not broken
  EXPECT_FALSE(result.frontier.empty());
}

// Frontier cache, exact-hit path: resubmitting a completed (query, seed)
// is answered from the cache without a session — the future resolves with
// a bitwise-identical frontier, zero steps, and the served_from_cache
// marker, and the report counts it.
TEST(OnlineSchedulerTest, ExactCacheHitServesBitwiseIdenticalFrontier) {
  std::vector<BatchTask> tasks = SmallBatch(4, 6);
  auto cache = std::make_shared<FrontierCache>();
  OnlineConfig config;
  config.num_threads = 2;
  config.frontier_cache = cache;
  OnlineScheduler service(config, RmqFactory(20));
  service.Start();

  std::vector<std::future<BatchTaskResult>> cold;
  for (const BatchTask& task : tasks) {
    auto ticket = service.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    cold.push_back(std::move(*ticket));
  }
  service.Drain();  // all completions inserted before the resubmits
  std::vector<BatchTaskResult> cold_results;
  for (auto& ticket : cold) cold_results.push_back(ticket.get());

  std::vector<std::future<BatchTaskResult>> repeat;
  for (const BatchTask& task : tasks) {
    auto ticket = service.Submit(task);
    ASSERT_TRUE(ticket.has_value());
    repeat.push_back(std::move(*ticket));
  }
  for (size_t i = 0; i < repeat.size(); ++i) {
    BatchTaskResult result = repeat[i].get();
    EXPECT_TRUE(result.served_from_cache) << "task " << i;
    EXPECT_EQ(result.steps, 0) << "task " << i;
    EXPECT_FALSE(result.gave_up);
    EXPECT_TRUE(BitwiseEqual(result.frontier, cold_results[i].frontier))
        << "cached frontier for task " << i << " diverged";
  }
  BatchReport report = service.Stop();
  EXPECT_EQ(report.cache_served_tasks, tasks.size());
  ASSERT_EQ(report.tasks.size(), 2 * tasks.size());

  FrontierCacheStats stats = cache->stats();
  EXPECT_EQ(stats.exact_hits, tasks.size());
  EXPECT_EQ(stats.inserts, tasks.size());
  EXPECT_EQ(stats.entries, tasks.size());
}

// Frontier cache, warm-hit path: the same query under a different seed
// runs a full session (no shortcut, no determinism change — warm plans
// only widen the reported frontier) and its completion replaces the
// cache entry, so the newest seed then exact-hits.
TEST(OnlineSchedulerTest, WarmCacheHitRunsFullSessionAndReplacesEntry) {
  BatchTask task = SmallBatch(1, 6)[0];
  auto cache = std::make_shared<FrontierCache>();
  OnlineConfig config;
  config.num_threads = 1;
  config.frontier_cache = cache;
  OnlineScheduler service(config, RmqFactory(20));
  service.Start();

  ASSERT_TRUE(service.Submit(task).has_value());
  service.Drain();

  BatchTask reseeded = task;
  reseeded.seed = task.seed + 1;
  auto warm_ticket = service.Submit(reseeded);
  ASSERT_TRUE(warm_ticket.has_value());
  service.Drain();
  BatchTaskResult warm = warm_ticket->get();
  EXPECT_FALSE(warm.served_from_cache);
  EXPECT_EQ(warm.steps, 20);  // a real run, not a shortcut
  EXPECT_FALSE(warm.frontier.empty());

  FrontierCacheStats stats = cache->stats();
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.exact_hits, 0u);
  EXPECT_EQ(stats.inserts, 2u);   // completion replaced the entry
  EXPECT_EQ(stats.entries, 1u);   // one fingerprint, newest seed wins

  // The replacement now exact-hits for the new seed.
  auto repeat = service.Submit(reseeded);
  ASSERT_TRUE(repeat.has_value());
  BatchTaskResult repeated = repeat->get();
  EXPECT_TRUE(repeated.served_from_cache);
  EXPECT_TRUE(BitwiseEqual(repeated.frontier, warm.frontier));
  service.Stop();
}

// Without a cache configured, repeats run cold: nothing is served from
// cache and results still match the blocking reference.
TEST(OnlineSchedulerTest, CacheOffLeavesRepeatsCold) {
  std::vector<BatchTask> tasks = SmallBatch(2, 5);
  OnlineConfig config;
  config.num_threads = 2;
  OnlineScheduler service(config, RmqFactory(12));
  service.Start();
  for (int round = 0; round < 2; ++round) {
    for (const BatchTask& task : tasks) {
      ASSERT_TRUE(service.Submit(task).has_value());
    }
    service.Drain();
  }
  BatchReport report = service.Stop();
  EXPECT_EQ(report.cache_served_tasks, 0u);
  ASSERT_EQ(report.tasks.size(), 4u);
  for (const BatchTaskResult& result : report.tasks) {
    EXPECT_FALSE(result.served_from_cache);
    EXPECT_EQ(result.steps, 12);
  }
}

}  // namespace
}  // namespace moqo
