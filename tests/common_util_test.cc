#include <gtest/gtest.h>

#include <thread>

#include "common/deadline.h"
#include "common/flags.h"
#include "common/rng.h"

namespace moqo {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, 3))];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5) ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(CombineSeedTest, SensitiveToEveryArgument) {
  uint64_t base = CombineSeed(1, 2, 3, 4);
  EXPECT_NE(base, CombineSeed(2, 2, 3, 4));
  EXPECT_NE(base, CombineSeed(1, 3, 3, 4));
  EXPECT_NE(base, CombineSeed(1, 2, 4, 4));
  EXPECT_NE(base, CombineSeed(1, 2, 3, 5));
  EXPECT_EQ(base, CombineSeed(1, 2, 3, 4));
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  // Unbounded reports the saturation bound, not INT64_MAX, so callers can
  // add the remaining window to a timestamp without overflowing.
  EXPECT_EQ(d.RemainingMicros(), kMaxDeadlineMicros);
}

// Regression: negative windows (admission-relative deadlines computed by
// subtraction can go past due) must arm an already-expired deadline, not
// one ~292 millennia out via signed wrap-around.
TEST(DeadlineTest, NegativeWindowIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMicros(-1).Expired());
  EXPECT_TRUE(Deadline::AfterMicros(INT64_MIN).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(INT64_MIN).Expired());
  EXPECT_EQ(Deadline::AfterMicros(-100).RemainingMicros(), 0);
}

// Regression: near-INT64_MAX windows used to overflow — AfterMillis
// multiplied by 1000 before clamping, and the chrono time_point wrapped —
// producing deadlines that were spuriously expired. They must saturate.
TEST(DeadlineTest, HugeWindowSaturatesInsteadOfWrapping) {
  Deadline micros = Deadline::AfterMicros(INT64_MAX);
  EXPECT_FALSE(micros.Expired());
  EXPECT_GT(micros.RemainingMicros(), kMaxDeadlineMicros / 2);
  EXPECT_LE(micros.RemainingMicros(), kMaxDeadlineMicros);

  Deadline millis = Deadline::AfterMillis(INT64_MAX);
  EXPECT_FALSE(millis.Expired());
  EXPECT_GT(millis.RemainingMicros(), kMaxDeadlineMicros / 2);
}

// RemainingMicros() is bounded for every deadline, so adding it to a
// microsecond timestamp (the EDF scheduler key) cannot overflow.
TEST(DeadlineTest, RemainingMicrosIsSafeToAddToTimestamps) {
  const Deadline deadlines[] = {Deadline(), Deadline::AfterMicros(INT64_MAX),
                                Deadline::AfterMicros(50),
                                Deadline::AfterMicros(-50)};
  for (const Deadline& d : deadlines) {
    int64_t remaining = d.RemainingMicros();
    EXPECT_GE(remaining, 0);
    EXPECT_LE(remaining, kMaxDeadlineMicros);
    // A century's worth of microsecond timestamps still fits.
    EXPECT_GT(remaining + int64_t{3'155'760'000'000'000}, 0);
  }
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline d = Deadline::AfterMicros(1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMicros(), 0);
}

TEST(DeadlineTest, NotExpiredImmediately) {
  Deadline d = Deadline::AfterMillis(10000);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMicros(), 0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.ElapsedMicros(), 8000);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMicros(), 8000);
}

TEST(FlagsTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--timeout-ms=250", "--name=rmq"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("timeout-ms", 0), 250);
  EXPECT_EQ(flags.GetString("name", ""), "rmq");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 77), 77);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(flags.GetBool("missing", true));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BooleanForms) {
  const char* argv[] = {"prog", "--paper", "--verbose=false", "--x=1"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("paper", false));
  EXPECT_FALSE(flags.GetBool("verbose", true));
  EXPECT_TRUE(flags.GetBool("x", false));
}

TEST(FlagsTest, IntList) {
  const char* argv[] = {"prog", "--sizes=10,25,50"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetIntList("sizes", {}), (std::vector<int>{10, 25, 50}));
  EXPECT_EQ(flags.GetIntList("other", {1}), (std::vector<int>{1}));
}

TEST(FlagsTest, SpaceSeparatedNumericValue) {
  const char* argv[] = {"prog", "--reps", "12"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("reps", 0), 12);
}

TEST(FlagsTest, PositionalArguments) {
  const char* argv[] = {"prog", "run", "--x=1", "this"};
  Flags flags(4, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "this");
}

}  // namespace
}  // namespace moqo
