#include "core/frontier_approximation.h"

#include <gtest/gtest.h>

#include "baselines/dp.h"
#include "core/pareto_climb.h"
#include "pareto/epsilon_indicator.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 5, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(AlphaScheduleTest, PaperFormula) {
  // alpha = 25 * 0.99^floor(i/25), clamped to >= 1.
  EXPECT_DOUBLE_EQ(AlphaForIteration(1), 25.0);
  EXPECT_DOUBLE_EQ(AlphaForIteration(24), 25.0);
  EXPECT_DOUBLE_EQ(AlphaForIteration(25), 25.0 * 0.99);
  EXPECT_DOUBLE_EQ(AlphaForIteration(50), 25.0 * 0.99 * 0.99);
  EXPECT_GE(AlphaForIteration(1000000), 1.0);
  EXPECT_DOUBLE_EQ(AlphaForIteration(1000000), 1.0);  // clamp kicks in
}

TEST(AlphaScheduleTest, MonotoneNonIncreasing) {
  double prev = AlphaForIteration(1);
  for (int i = 2; i < 20000; i += 7) {
    double a = AlphaForIteration(i);
    EXPECT_LE(a, prev);
    EXPECT_GE(a, 1.0);
    prev = a;
  }
}

TEST(FrontierApproximationTest, PopulatesEveryIntermediateResult) {
  Fixture fx;
  Rng rng(1);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  PlanCache cache;
  ApproximateFrontiers(plan, &cache, 2.0, &fx.factory);
  // Walk the plan; every node's table set must have a cache entry.
  std::vector<PlanPtr> stack = {plan};
  while (!stack.empty()) {
    PlanPtr node = stack.back();
    stack.pop_back();
    EXPECT_FALSE(cache.Lookup(node->rel()).empty())
        << node->rel().ToString();
    if (node->IsJoin()) {
      stack.push_back(node->outer());
      stack.push_back(node->inner());
    }
  }
  // One entry per node table set: 2n - 1 nodes but singletons may repeat;
  // a random plan joining 5 tables has 5 scans + 4 joins = 9 distinct sets.
  EXPECT_EQ(cache.NumTableSets(), 9u);
}

TEST(FrontierApproximationTest, CachedPlansJoinTheRightTables) {
  Fixture fx;
  Rng rng(2);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  PlanCache cache;
  ApproximateFrontiers(plan, &cache, 2.0, &fx.factory);
  std::vector<PlanPtr> stack = {plan};
  while (!stack.empty()) {
    PlanPtr node = stack.back();
    stack.pop_back();
    for (const PlanPtr& cached : cache.Lookup(node->rel())) {
      EXPECT_EQ(cached->rel(), node->rel());
    }
    if (node->IsJoin()) {
      stack.push_back(node->outer());
      stack.push_back(node->inner());
    }
  }
}

TEST(FrontierApproximationTest, TriesAllOperatorCombinations) {
  // For a 2-table query, the frontier approximation over one plan must
  // enumerate every scan pair x join operator, i.e. the full plan space of
  // that join order (both operand orders appear via cached sub-plans only
  // in later iterations; here we check operators).
  Catalog catalog;
  catalog.AddTable({1000.0, 100.0, true});
  catalog.AddTable({2000.0, 50.0, true});
  JoinGraph graph(2);
  graph.AddEdge(0, 1, 0.01);
  QueryPtr query =
      std::make_shared<Query>(std::move(catalog), std::move(graph));
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);

  Rng rng(3);
  PlanPtr plan = RandomPlan(&factory, &rng);
  PlanCache cache;
  // Alpha = 1: keep the full Pareto set of the restricted space.
  ApproximateFrontiers(plan, &cache, 1.0, &factory);

  // Scans: both operators cached per table (different formats).
  EXPECT_EQ(cache.Lookup(TableSet::Singleton(0)).size(), 2u);
  EXPECT_EQ(cache.Lookup(TableSet::Singleton(1)).size(), 2u);
  // The root entry holds non-dominated plans over 2x2 scan combos x 8 join
  // ops; at least one plan per output format must survive.
  const auto& roots = cache.Lookup(TableSet::FirstN(2));
  EXPECT_GE(roots.size(), 2u);
  bool sorted = false;
  bool unsorted = false;
  for (const PlanPtr& p : roots) {
    sorted |= p->format() == OutputFormat::kSorted;
    unsorted |= p->format() == OutputFormat::kUnsorted;
  }
  EXPECT_TRUE(sorted);
  EXPECT_TRUE(unsorted);
}

TEST(FrontierApproximationTest, ExactAlphaRecoversRestrictedParetoSet) {
  // With alpha = 1 and the plan space restricted to one join order of a
  // 2-table query, the cache's root entry must contain every cost vector
  // of the true Pareto set that DP(1) computes (DP also explores the
  // commuted order, so cache results must be a superset-approximation with
  // alpha achievable = 1 only if commuting never helps; we check alpha
  // against DP on the same operand order by feeding both orders).
  Fixture fx(2, 7);
  Rng rng(4);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  PlanCache cache;
  ApproximateFrontiers(plan, &cache, 1.0, &fx.factory);
  // Feed the commuted join order as a second "iteration".
  PlanPtr commuted = fx.factory.MakeJoin(
      fx.factory.MakeScan(plan->inner()->table(), plan->inner()->scan_op()),
      fx.factory.MakeScan(plan->outer()->table(), plan->outer()->scan_op()),
      plan->join_op());
  ApproximateFrontiers(commuted, &cache, 1.0, &fx.factory);

  std::vector<CostVector> cached;
  for (const PlanPtr& p : cache.Lookup(fx.factory.query().AllTables())) {
    cached.push_back(p->cost());
  }
  std::vector<CostVector> exact;
  for (const PlanPtr& p : ExactParetoSet(&fx.factory)) {
    exact.push_back(p->cost());
  }
  EXPECT_DOUBLE_EQ(AlphaError(cached, ParetoFilter(exact)), 1.0);
}

TEST(FrontierApproximationTest, InsertionCountReported) {
  Fixture fx;
  Rng rng(5);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  PlanCache cache;
  int64_t inserted = ApproximateFrontiers(plan, &cache, 2.0, &fx.factory);
  EXPECT_GT(inserted, 0);
  EXPECT_EQ(static_cast<size_t>(inserted) >= cache.TotalPlans(), true);
}

TEST(FrontierApproximationTest, SecondPassWithSamePlanAddsLittle) {
  Fixture fx;
  Rng rng(6);
  PlanPtr plan = RandomPlan(&fx.factory, &rng);
  PlanCache cache;
  ApproximateFrontiers(plan, &cache, 2.0, &fx.factory);
  size_t before = cache.TotalPlans();
  ApproximateFrontiers(plan, &cache, 2.0, &fx.factory);
  // Deterministic recombination of the same cached inputs: nothing new
  // except recombinations of plans cached by the first pass; allow a few.
  EXPECT_LE(cache.TotalPlans(), before * 2);
}

TEST(FrontierApproximationTest, CacheSharingAcrossJoinOrders) {
  // Two plans with different join orders feed one cache; the root entry
  // must hold the best of both worlds (its alpha error against either
  // plan's own cost is <= 1, i.e. it dominates or matches them).
  Fixture fx(6, 11);
  Rng rng(7);
  PlanCache cache;
  PlanPtr a = ParetoClimb(RandomPlan(&fx.factory, &rng), &fx.factory);
  PlanPtr b = ParetoClimb(RandomPlan(&fx.factory, &rng), &fx.factory);
  ApproximateFrontiers(a, &cache, 1.0, &fx.factory);
  ApproximateFrontiers(b, &cache, 1.0, &fx.factory);
  std::vector<CostVector> roots;
  for (const PlanPtr& p : cache.Lookup(fx.factory.query().AllTables())) {
    roots.push_back(p->cost());
  }
  EXPECT_DOUBLE_EQ(AlphaError(roots, {a->cost()}), 1.0);
  EXPECT_DOUBLE_EQ(AlphaError(roots, {b->cost()}), 1.0);
}

}  // namespace
}  // namespace moqo
