// Property tests for the paper's Section 5 complexity claims, checked
// empirically against the implementation:
//
//  * Lemma 6 / Theorem 4 — with approximation factor alpha, the number of
//    plans the cache stores per table set is bounded by a polynomial
//    ~ (n log_alpha m)^(l-1);
//  * Theorem 5 — accumulated cache size grows at most linearly in
//    iterations x query size;
//  * Lemma 5 (qualitatively) — random plans are almost never local Pareto
//    optima, and the probability drops with query size.
#include <gtest/gtest.h>

#include <cmath>

#include "core/frontier_approximation.h"
#include "core/pareto_climb.h"
#include "core/plan_cache.h"
#include "core/rmq.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  Fixture(int tables, int metrics, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model([&] {
          std::vector<Metric> ms = {Metric::kTime, Metric::kBuffer,
                                    Metric::kDisk};
          ms.resize(static_cast<size_t>(metrics));
          return CostModel(ms);
        }()),
        factory(query, &model) {}
};

class CacheBoundTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(CacheBoundTest, Lemma6CacheEntriesPolynomiallyBounded) {
  auto [tables, metrics] = GetParam();
  Fixture fx(tables, metrics);
  const double alpha = 2.0;

  PlanCache cache;
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    PlanPtr plan = ParetoClimb(RandomPlan(&fx.factory, &rng), &fx.factory);
    ApproximateFrontiers(plan, &cache, alpha, &fx.factory);
  }

  // Lemma 6 bound: O((n log_alpha m)^(l-1)) plans per table set; our cost
  // components are bounded by kMaxCost, so log_alpha(m) <= log_alpha of
  // the largest representable cost. Check against the bound with a
  // generous constant (the output-format dimension adds a factor 2).
  double log_m = std::log(kMaxCost) / std::log(alpha);
  double bound =
      8.0 * std::pow(tables * log_m, metrics - 1) + 16.0;
  TableSet all = fx.factory.query().AllTables();
  EXPECT_LE(static_cast<double>(cache.Lookup(all).size()), bound);
  // Also check a few random cached sets.
  EXPECT_LE(static_cast<double>(cache.TotalPlans()),
            bound * static_cast<double>(cache.NumTableSets()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheBoundTest,
    ::testing::Combine(::testing::Values(4, 8, 12),
                       ::testing::Values(1, 2, 3)));

TEST(TheoremFiveTest, CacheGrowthLinearInIterations) {
  // Theorem 5: space is O(i * n * b(n)). Each iteration adds at most O(n)
  // table sets; verify the *set count* growth is at most linear with a
  // small constant.
  Fixture fx(12, 3);
  PlanCache cache;
  Rng rng(11);
  size_t prev_sets = 0;
  for (int i = 1; i <= 20; ++i) {
    PlanPtr plan = ParetoClimb(RandomPlan(&fx.factory, &rng), &fx.factory);
    ApproximateFrontiers(plan, &cache, 4.0, &fx.factory);
    size_t sets = cache.NumTableSets();
    // One plan contributes at most 2n - 1 = 23 table sets.
    EXPECT_LE(sets - prev_sets, static_cast<size_t>(2 * 12 - 1));
    prev_sets = sets;
  }
  EXPECT_LE(prev_sets, static_cast<size_t>(20 * (2 * 12 - 1)));
}

TEST(LemmaFiveTest, RandomPlansRarelyLocallyOptimal) {
  // Lemma 5: P(random plan is a local Pareto optimum) decays
  // exponentially in the neighbor count. Even for 6-table plans the rate
  // should be low; for 10-table plans lower still.
  auto measure = [](int tables) {
    Fixture fx(tables, 3, 99);
    Rng rng(13);
    int local = 0;
    const int kTrials = 40;
    for (int i = 0; i < kTrials; ++i) {
      if (IsLocalParetoOptimum(RandomPlan(&fx.factory, &rng), &fx.factory)) {
        ++local;
      }
    }
    return local;
  };
  int local6 = measure(6);
  EXPECT_LE(local6, 8);  // <= 20% (model predicts far less)
  int local12 = measure(12);
  EXPECT_LE(local12, local6 + 2);  // non-increasing modulo noise
}

TEST(ScheduleTest, PaperScheduleReachesExactPruning) {
  // The alpha schedule reaches 1 after finitely many iterations
  // (25 * 0.99^(i/25) < 1 for i > ~8000) and the Rmq helper honors both
  // the schedule and the fixed override.
  RmqConfig config;
  Rmq rmq(config);
  EXPECT_DOUBLE_EQ(rmq.AlphaFor(1), 25.0);
  EXPECT_GT(rmq.AlphaFor(4000), 1.0);
  EXPECT_DOUBLE_EQ(rmq.AlphaFor(9000), 1.0);

  RmqConfig fast;
  fast.alpha_decay = 0.5;
  fast.alpha_step = 1;
  Rmq fast_rmq(fast);
  EXPECT_DOUBLE_EQ(fast_rmq.AlphaFor(1), 12.5);
  EXPECT_DOUBLE_EQ(fast_rmq.AlphaFor(10), 1.0);

  RmqConfig fixed;
  fixed.fixed_alpha = 3.0;
  Rmq fixed_rmq(fixed);
  EXPECT_DOUBLE_EQ(fixed_rmq.AlphaFor(1), 3.0);
  EXPECT_DOUBLE_EQ(fixed_rmq.AlphaFor(100000), 3.0);
}

}  // namespace
}  // namespace moqo
