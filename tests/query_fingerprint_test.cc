// Canonicalization properties of the query fingerprint
// (core/query_fingerprint.h): relabeling-invariance (permuted tables,
// renumbered and endpoint-reversed edges, shuffled edge order) and
// sensitivity (statistics, selectivities, topology).
#include "core/query_fingerprint.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/generator.h"
#include "query/query.h"

namespace moqo {
namespace {

/// A small asymmetric base query: distinct cardinalities, a chain + one
/// chord, mixed index flags.
QueryPtr BaseQuery() {
  Catalog catalog;
  catalog.AddTable({1000.0, 100.0, false});
  catalog.AddTable({250.0, 80.0, true});
  catalog.AddTable({90000.0, 120.0, false});
  catalog.AddTable({40.0, 64.0, true});
  JoinGraph graph(4);
  graph.AddEdge(0, 1, 0.01);
  graph.AddEdge(1, 2, 0.001);
  graph.AddEdge(2, 3, 0.5);
  graph.AddEdge(0, 2, 0.25);
  return std::make_shared<Query>(std::move(catalog), std::move(graph));
}

/// Rebuilds `query` with table ids permuted by `perm` (new id of old table
/// t is perm[t]) and edges rewritten accordingly. Edge order follows the
/// original edge list; endpoint order within an edge is preserved modulo
/// the relabeling.
QueryPtr Relabel(const Query& query, const std::vector<int>& perm) {
  const int n = query.NumTables();
  std::vector<TableStats> stats(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    stats[static_cast<size_t>(perm[static_cast<size_t>(t)])] =
        query.catalog().Table(t);
  }
  JoinGraph graph(n);
  for (const JoinEdge& edge : query.graph().Edges()) {
    graph.AddEdge(perm[static_cast<size_t>(edge.left)],
                  perm[static_cast<size_t>(edge.right)], edge.selectivity);
  }
  return std::make_shared<Query>(Catalog(std::move(stats)), std::move(graph));
}

TEST(QueryFingerprintTest, StableAcrossCalls) {
  QueryPtr query = BaseQuery();
  EXPECT_EQ(QueryFingerprint(*query), QueryFingerprint(*query));
  EXPECT_EQ(CanonicalQueryBytes(*query), CanonicalQueryBytes(*query));
}

TEST(QueryFingerprintTest, PermutedTableOrderHashesIdentically) {
  QueryPtr query = BaseQuery();
  const std::vector<std::vector<int>> perms = {
      {1, 0, 2, 3}, {3, 2, 1, 0}, {2, 3, 0, 1}, {1, 2, 3, 0}};
  for (const std::vector<int>& perm : perms) {
    QueryPtr relabeled = Relabel(*query, perm);
    EXPECT_EQ(CanonicalQueryBytes(*query), CanonicalQueryBytes(*relabeled));
    EXPECT_EQ(QueryFingerprint(*query), QueryFingerprint(*relabeled));
  }
}

TEST(QueryFingerprintTest, ReversedEdgeEndpointsHashIdentically) {
  QueryPtr query = BaseQuery();
  Catalog catalog;
  for (int t = 0; t < query->NumTables(); ++t) {
    catalog.AddTable(query->catalog().Table(t));
  }
  JoinGraph graph(query->NumTables());
  for (const JoinEdge& edge : query->graph().Edges()) {
    graph.AddEdge(edge.right, edge.left, edge.selectivity);
  }
  Query reversed(std::move(catalog), std::move(graph));
  EXPECT_EQ(QueryFingerprint(*query), QueryFingerprint(reversed));
}

TEST(QueryFingerprintTest, ShuffledEdgeOrderHashesIdentically) {
  QueryPtr query = BaseQuery();
  std::vector<JoinEdge> edges = query->graph().Edges();
  std::reverse(edges.begin(), edges.end());
  Catalog catalog;
  for (int t = 0; t < query->NumTables(); ++t) {
    catalog.AddTable(query->catalog().Table(t));
  }
  JoinGraph graph(query->NumTables());
  for (const JoinEdge& edge : edges) {
    graph.AddEdge(edge.left, edge.right, edge.selectivity);
  }
  Query shuffled(std::move(catalog), std::move(graph));
  EXPECT_EQ(QueryFingerprint(*query), QueryFingerprint(shuffled));
}

TEST(QueryFingerprintTest, ChangedSelectivityHashesDifferently) {
  QueryPtr query = BaseQuery();
  Catalog catalog;
  for (int t = 0; t < query->NumTables(); ++t) {
    catalog.AddTable(query->catalog().Table(t));
  }
  JoinGraph graph(query->NumTables());
  bool first = true;
  for (const JoinEdge& edge : query->graph().Edges()) {
    graph.AddEdge(edge.left, edge.right,
                  first ? edge.selectivity * 0.5 : edge.selectivity);
    first = false;
  }
  Query changed(std::move(catalog), std::move(graph));
  EXPECT_NE(QueryFingerprint(*query), QueryFingerprint(changed));
}

TEST(QueryFingerprintTest, ChangedStatisticsHashDifferently) {
  QueryPtr query = BaseQuery();
  for (int t = 0; t < query->NumTables(); ++t) {
    Catalog catalog;
    for (int u = 0; u < query->NumTables(); ++u) {
      TableStats stats = query->catalog().Table(u);
      if (u == t) stats.cardinality += 1.0;
      catalog.AddTable(stats);
    }
    JoinGraph graph(query->NumTables());
    for (const JoinEdge& edge : query->graph().Edges()) {
      graph.AddEdge(edge.left, edge.right, edge.selectivity);
    }
    Query changed(std::move(catalog), std::move(graph));
    EXPECT_NE(QueryFingerprint(*query), QueryFingerprint(changed))
        << "cardinality bump of table " << t << " went unnoticed";
  }
}

TEST(QueryFingerprintTest, IndexFlagHashesDifferently) {
  QueryPtr query = BaseQuery();
  Catalog catalog;
  for (int t = 0; t < query->NumTables(); ++t) {
    TableStats stats = query->catalog().Table(t);
    if (t == 0) stats.has_index = !stats.has_index;
    catalog.AddTable(stats);
  }
  JoinGraph graph(query->NumTables());
  for (const JoinEdge& edge : query->graph().Edges()) {
    graph.AddEdge(edge.left, edge.right, edge.selectivity);
  }
  Query changed(std::move(catalog), std::move(graph));
  EXPECT_NE(QueryFingerprint(*query), QueryFingerprint(changed));
}

TEST(QueryFingerprintTest, DifferentTopologySameStatsHashesDifferently) {
  // Chain 0-1-2-3 vs star centered at 0, identical table statistics and
  // identical selectivity multiset: only the topology distinguishes them.
  Catalog stats;
  for (int t = 0; t < 4; ++t) stats.AddTable({1000.0, 100.0, false});
  Catalog stats2 = stats;
  JoinGraph chain(4);
  chain.AddEdge(0, 1, 0.1);
  chain.AddEdge(1, 2, 0.1);
  chain.AddEdge(2, 3, 0.1);
  JoinGraph star(4);
  star.AddEdge(0, 1, 0.1);
  star.AddEdge(0, 2, 0.1);
  star.AddEdge(0, 3, 0.1);
  Query chain_query(std::move(stats), std::move(chain));
  Query star_query(std::move(stats2), std::move(star));
  EXPECT_NE(QueryFingerprint(chain_query), QueryFingerprint(star_query));
}

TEST(QueryFingerprintTest, PropertyRandomizedRelabelings) {
  // Generated queries of every topology survive random relabelings with an
  // unchanged fingerprint, and a selectivity perturbation always changes
  // it.
  Rng rng(20260808);
  const GraphType types[] = {GraphType::kChain, GraphType::kCycle,
                             GraphType::kStar, GraphType::kRandom};
  for (GraphType type : types) {
    for (int trial = 0; trial < 8; ++trial) {
      GeneratorConfig config;
      config.num_tables = 3 + rng.UniformInt(0, 7);
      config.graph_type = type;
      Rng query_rng(rng.Fork());
      QueryPtr query = GenerateQuery(config, &query_rng);
      const uint64_t fingerprint = QueryFingerprint(*query);

      for (int relabeling = 0; relabeling < 4; ++relabeling) {
        std::vector<int> perm(static_cast<size_t>(query->NumTables()));
        std::iota(perm.begin(), perm.end(), 0);
        std::shuffle(perm.begin(), perm.end(), rng.engine());
        QueryPtr relabeled = Relabel(*query, perm);
        EXPECT_EQ(fingerprint, QueryFingerprint(*relabeled))
            << ToString(type) << " query changed fingerprint under "
               "relabeling";
      }

      // Perturb one random edge's selectivity.
      std::vector<JoinEdge> edges = query->graph().Edges();
      if (edges.empty()) continue;
      size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(edges.size()) - 1));
      edges[victim].selectivity =
          edges[victim].selectivity * 0.5 + 1e-7;
      Catalog catalog;
      for (int t = 0; t < query->NumTables(); ++t) {
        catalog.AddTable(query->catalog().Table(t));
      }
      JoinGraph graph(query->NumTables());
      for (const JoinEdge& edge : edges) {
        graph.AddEdge(edge.left, edge.right, edge.selectivity);
      }
      Query perturbed(std::move(catalog), std::move(graph));
      EXPECT_NE(fingerprint, QueryFingerprint(perturbed))
          << ToString(type) << " fingerprint blind to selectivity change";
    }
  }
}

TEST(QueryFingerprintTest, FingerprintStringFormat) {
  EXPECT_EQ("0x0000000000000000", FingerprintString(0));
  EXPECT_EQ("0x00000000000000ff", FingerprintString(0xff));
  EXPECT_EQ("0xdeadbeef00000000", FingerprintString(0xdeadbeef00000000ull));
  EXPECT_EQ(18u, FingerprintString(0x123456789abcdef0ull).size());
}

TEST(QueryFingerprintTest, Fnv1a64MatchesKnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(0xcbf29ce484222325ull, Fnv1a64(nullptr, 0));
  const uint8_t a[] = {'a'};
  EXPECT_EQ(0xaf63dc4c8601ec8cull, Fnv1a64(a, 1));
}

}  // namespace
}  // namespace moqo
