#include "plan/plan_export.h"

#include <gtest/gtest.h>

#include "core/rmq.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  Fixture()
      : query([&] {
          Rng rng(42);
          GeneratorConfig config;
          config.num_tables = 4;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(PlanExportTest, ScanJson) {
  Fixture fx;
  PlanPtr scan = fx.factory.MakeScan(2, ScanAlgorithm::kFullScan);
  std::string json = PlanToJson(scan);
  EXPECT_NE(json.find("\"op\":\"full-scan\""), std::string::npos);
  EXPECT_NE(json.find("\"table\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cost\":["), std::string::npos);
  EXPECT_NE(json.find("\"format\":\"unsorted\""), std::string::npos);
}

TEST(PlanExportTest, JoinJsonNests) {
  Fixture fx;
  PlanPtr join = fx.factory.MakeJoin(
      fx.factory.MakeScan(0, ScanAlgorithm::kFullScan),
      fx.factory.MakeScan(1, ScanAlgorithm::kFullScan),
      JoinAlgorithm::kHashMedium);
  std::string json = PlanToJson(join);
  EXPECT_NE(json.find("\"op\":\"hash-join(medium)\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\":{"), std::string::npos);
  EXPECT_NE(json.find("\"inner\":{"), std::string::npos);
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(PlanExportTest, FrontierJsonIsArray) {
  Fixture fx;
  Rmq rmq;
  Rng rng(1);
  std::vector<PlanPtr> frontier =
      rmq.Optimize(&fx.factory, &rng, Deadline::AfterMillis(50), nullptr);
  ASSERT_FALSE(frontier.empty());
  std::string json = FrontierToJson(frontier);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // One object per plan.
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"outer\"", pos)) != std::string::npos;
       ++pos) {
  }
  count = 0;
  for (size_t pos = 0; (pos = json.find("{\"op\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_GE(count, frontier.size());
}

TEST(PlanExportTest, CsvHeaderAndRows) {
  Fixture fx;
  std::vector<PlanPtr> plans = {
      fx.factory.MakeScan(0, ScanAlgorithm::kFullScan),
      fx.factory.MakeScan(1, ScanAlgorithm::kFullScan),
  };
  std::string csv =
      FrontierToCsv(plans, {Metric::kTime, Metric::kBuffer});
  EXPECT_EQ(csv.rfind("time,buffer,plan\n", 0), 0u);
  // Header + one line per plan.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("\"T0\""), std::string::npos);
}

TEST(PlanExportTest, EmptyFrontier) {
  EXPECT_EQ(FrontierToJson({}), "[]");
  std::string csv = FrontierToCsv({}, {Metric::kTime});
  EXPECT_EQ(csv, "time,plan\n");
}

}  // namespace
}  // namespace moqo
