#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include <set>

#include "cost/operators.h"

namespace moqo {
namespace {

CostModel ThreeMetricModel() {
  return CostModel({Metric::kTime, Metric::kBuffer, Metric::kDisk});
}

TEST(OperatorsTest, EnumerationsComplete) {
  EXPECT_EQ(AllJoinAlgorithms().size(),
            static_cast<size_t>(kNumJoinAlgorithms));
  EXPECT_EQ(AllScanAlgorithms().size(),
            static_cast<size_t>(kNumScanAlgorithms));
}

TEST(OperatorsTest, SortBasedOperatorsEmitSortedOutput) {
  EXPECT_EQ(FormatOf(JoinAlgorithm::kSortMergeSmall), OutputFormat::kSorted);
  EXPECT_EQ(FormatOf(JoinAlgorithm::kSortMergeLarge), OutputFormat::kSorted);
  EXPECT_EQ(FormatOf(ScanAlgorithm::kIndexScan), OutputFormat::kSorted);
  EXPECT_EQ(FormatOf(JoinAlgorithm::kHashLarge), OutputFormat::kUnsorted);
  EXPECT_EQ(FormatOf(ScanAlgorithm::kFullScan), OutputFormat::kUnsorted);
}

TEST(OperatorsTest, BufferBudgetsOrdered) {
  EXPECT_LT(BufferPages(JoinAlgorithm::kNestedLoop),
            BufferPages(JoinAlgorithm::kBlockNestedLoopSmall));
  EXPECT_LT(BufferPages(JoinAlgorithm::kBlockNestedLoopSmall),
            BufferPages(JoinAlgorithm::kBlockNestedLoopLarge));
  EXPECT_LT(BufferPages(JoinAlgorithm::kHashSmall),
            BufferPages(JoinAlgorithm::kHashMedium));
  EXPECT_LT(BufferPages(JoinAlgorithm::kHashMedium),
            BufferPages(JoinAlgorithm::kHashLarge));
  EXPECT_LT(BufferPages(JoinAlgorithm::kSortMergeSmall),
            BufferPages(JoinAlgorithm::kSortMergeLarge));
}

TEST(OperatorsTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (JoinAlgorithm op : AllJoinAlgorithms()) names.insert(ToString(op));
  EXPECT_EQ(names.size(), AllJoinAlgorithms().size());
}

TEST(CostModelTest, MetricProjectionOrder) {
  CostModel m({Metric::kBuffer, Metric::kTime});
  TableStats t{10000.0, 100.0, false};
  CostVector c = m.ScanCost(t, ScanAlgorithm::kFullScan);
  ASSERT_EQ(c.size(), 2);
  // Component 0 is buffer (4 pages for a full scan), component 1 is time.
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_GT(c[1], 4.0);
}

TEST(CostModelTest, ScanApplicability) {
  CostModel m = ThreeMetricModel();
  TableStats indexed{1000.0, 50.0, true};
  TableStats plain{1000.0, 50.0, false};
  EXPECT_TRUE(m.ScanApplicable(indexed, ScanAlgorithm::kFullScan));
  EXPECT_TRUE(m.ScanApplicable(indexed, ScanAlgorithm::kIndexScan));
  EXPECT_TRUE(m.ScanApplicable(plain, ScanAlgorithm::kFullScan));
  EXPECT_FALSE(m.ScanApplicable(plain, ScanAlgorithm::kIndexScan));
}

TEST(CostModelTest, IndexScanTradesTimeForBuffer) {
  CostModel m = ThreeMetricModel();
  TableStats t{50000.0, 100.0, true};
  CostVector full = m.ScanCost(t, ScanAlgorithm::kFullScan);
  CostVector index = m.ScanCost(t, ScanAlgorithm::kIndexScan);
  EXPECT_LT(full[0], index[0]);   // full scan is faster
  EXPECT_GT(full[1], index[1]);   // but uses more buffer
}

TEST(CostModelTest, AllCostsStrictlyPositive) {
  CostModel m = ThreeMetricModel();
  TableStats tiny{1.0, 8.0, true};
  for (ScanAlgorithm op : AllScanAlgorithms()) {
    CostVector c = m.ScanCost(tiny, op);
    for (int i = 0; i < c.size(); ++i) EXPECT_GE(c[i], 1.0);
  }
  for (JoinAlgorithm op : AllJoinAlgorithms()) {
    CostVector c = m.JoinCost(op, 1.0, 8.0, OutputFormat::kUnsorted, 1.0, 8.0,
                              OutputFormat::kUnsorted, 1.0);
    for (int i = 0; i < c.size(); ++i) EXPECT_GE(c[i], 1.0) << ToString(op);
  }
}

TEST(CostModelTest, Pages) {
  EXPECT_DOUBLE_EQ(CostModel::Pages(0.0, 100.0), 1.0);  // at least one page
  EXPECT_DOUBLE_EQ(CostModel::Pages(8192.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::Pages(8192.0, 2.0), 2.0);
}

TEST(CostModelTest, HashJoinInMemoryVsGrace) {
  CostModel m = ThreeMetricModel();
  // Small build side: fits the small budget -> one pass, no spill.
  CostVector fits = m.JoinCost(JoinAlgorithm::kHashSmall, 1000.0, 100.0,
                               OutputFormat::kUnsorted, 1000.0, 100.0,
                               OutputFormat::kUnsorted, 1000.0);
  // Large build side: grace hash with partitioning I/O and spill.
  CostVector spills = m.JoinCost(JoinAlgorithm::kHashSmall, 1e6, 100.0,
                                 OutputFormat::kUnsorted, 1e6, 100.0,
                                 OutputFormat::kUnsorted, 1e6);
  EXPECT_GT(spills[0], fits[0]);  // more time
  EXPECT_GT(spills[2], fits[2]);  // spills to disk
  EXPECT_DOUBLE_EQ(fits[2], 1.0);  // only the bookkeeping page

  // A larger memory budget avoids the spill entirely.
  CostVector big_mem = m.JoinCost(JoinAlgorithm::kHashLarge, 1e6, 100.0,
                                  OutputFormat::kUnsorted, 1e6, 100.0,
                                  OutputFormat::kUnsorted, 1e6);
  EXPECT_LT(big_mem[0], spills[0]);
  EXPECT_DOUBLE_EQ(big_mem[2], 1.0);
  EXPECT_GT(big_mem[1], spills[1]);  // at the price of more buffer
}

TEST(CostModelTest, SortMergeSkipsSortForSortedInputs) {
  CostModel m = ThreeMetricModel();
  double card = 1e6;
  CostVector unsorted = m.JoinCost(JoinAlgorithm::kSortMergeSmall, card,
                                   100.0, OutputFormat::kUnsorted, card,
                                   100.0, OutputFormat::kUnsorted, card);
  CostVector sorted = m.JoinCost(JoinAlgorithm::kSortMergeSmall, card, 100.0,
                                 OutputFormat::kSorted, card, 100.0,
                                 OutputFormat::kSorted, card);
  EXPECT_LT(sorted[0], unsorted[0]);      // no sort phases
  EXPECT_LT(sorted[2], unsorted[2]);      // no sort spill
  EXPECT_DOUBLE_EQ(sorted[2], 1.0);
}

TEST(CostModelTest, BlockNestedLoopBenefitsFromLargerBlocks) {
  CostModel m = ThreeMetricModel();
  double card = 1e6;
  CostVector small = m.JoinCost(JoinAlgorithm::kBlockNestedLoopSmall, card,
                                100.0, OutputFormat::kUnsorted, card, 100.0,
                                OutputFormat::kUnsorted, card);
  CostVector large = m.JoinCost(JoinAlgorithm::kBlockNestedLoopLarge, card,
                                100.0, OutputFormat::kUnsorted, card, 100.0,
                                OutputFormat::kUnsorted, card);
  EXPECT_LT(large[0], small[0]);
  EXPECT_GT(large[1], small[1]);
}

TEST(CostModelTest, NestedLoopQuadraticInPages) {
  CostModel m({Metric::kTime});
  double card = 1e5;
  CostVector nl = m.JoinCost(JoinAlgorithm::kNestedLoop, card, 100.0,
                             OutputFormat::kUnsorted, card, 100.0,
                             OutputFormat::kUnsorted, card);
  CostVector hash = m.JoinCost(JoinAlgorithm::kHashLarge, card, 100.0,
                               OutputFormat::kUnsorted, card, 100.0,
                               OutputFormat::kUnsorted, card);
  EXPECT_GT(nl[0], 100.0 * hash[0]);
}

TEST(CostModelTest, EnergyMetricSupported) {
  CostModel m({Metric::kTime, Metric::kEnergy});
  TableStats t{10000.0, 100.0, false};
  CostVector c = m.ScanCost(t, ScanAlgorithm::kFullScan);
  EXPECT_GT(c[1], 0.0);
  EXPECT_NE(c[0], c[1]);  // energy is not simply time
}

TEST(CostModelTest, CombineIsComponentwiseSum) {
  CostModel m({Metric::kTime, Metric::kBuffer});
  CostVector a = {1.0, 2.0};
  CostVector b = {10.0, 20.0};
  CostVector op = {100.0, 200.0};
  CostVector combined = m.Combine(a, b, op);
  EXPECT_DOUBLE_EQ(combined[0], 111.0);
  EXPECT_DOUBLE_EQ(combined[1], 222.0);
}

TEST(CostModelTest, DefaultMetricPoolIsPaperTriple) {
  const std::vector<Metric>& pool = DefaultMetricPool();
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool[0], Metric::kTime);
  EXPECT_EQ(pool[1], Metric::kBuffer);
  EXPECT_EQ(pool[2], Metric::kDisk);
}

TEST(CostModelTest, MetricNames) {
  EXPECT_EQ(ToString(Metric::kTime), "time");
  EXPECT_EQ(ToString(Metric::kBuffer), "buffer");
  EXPECT_EQ(ToString(Metric::kDisk), "disk");
  EXPECT_EQ(ToString(Metric::kEnergy), "energy");
}

// Monotonicity property: all operator costs are nondecreasing in input
// cardinality — required by the principle-of-optimality argument.
class JoinMonotonicityTest
    : public ::testing::TestWithParam<JoinAlgorithm> {};

TEST_P(JoinMonotonicityTest, CostNondecreasingInInputs) {
  JoinAlgorithm op = GetParam();
  CostModel m = ThreeMetricModel();
  double prev_time = 0.0;
  for (double card : {10.0, 1e3, 1e5, 1e7, 1e9}) {
    CostVector c = m.JoinCost(op, card, 100.0, OutputFormat::kUnsorted,
                              card, 100.0, OutputFormat::kUnsorted, card);
    EXPECT_GE(c[0], prev_time) << ToString(op) << " at card " << card;
    prev_time = c[0];
  }
}

INSTANTIATE_TEST_SUITE_P(AllJoinOps, JoinMonotonicityTest,
                         ::testing::ValuesIn(AllJoinAlgorithms()),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           std::string out;
                           for (char c : n) {
                             if (isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace moqo
