// Differential testing against brute-force plan enumeration.
//
// For tiny queries we can enumerate EVERY bushy plan (all ordered
// partitions of every table subset x all operator labelings) and compute
// the exact per-format Pareto frontiers directly. DP(1) must agree
// exactly, and every optimizer's output must be covered by the
// brute-force frontier. This is the strongest correctness oracle in the
// suite: it validates the DP split enumeration, the pruning rules, and
// the cost stamping in one shot.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "baselines/dp.h"
#include "core/rmq.h"
#include "pareto/epsilon_indicator.h"
#include "query/generator.h"

namespace moqo {
namespace {

// Enumerates every plan joining exactly `rel` (all ordered binary
// partitions, all operators). Exponential — for n <= 4 only.
std::vector<PlanPtr> EnumerateAllPlans(PlanFactory* factory,
                                       const TableSet& rel) {
  std::vector<PlanPtr> out;
  if (rel.Count() == 1) {
    int table = rel.Min();
    for (ScanAlgorithm op : factory->ApplicableScans(table)) {
      out.push_back(factory->MakeScan(table, op));
    }
    return out;
  }
  // Enumerate proper non-empty subsets of rel as the outer operand.
  std::vector<int> members;
  rel.ForEach([&](int t) { members.push_back(t); });
  int n = static_cast<int>(members.size());
  for (int mask = 1; mask < (1 << n) - 1; ++mask) {
    TableSet outer_rel;
    for (int b = 0; b < n; ++b) {
      if (mask & (1 << b)) outer_rel.Add(members[static_cast<size_t>(b)]);
    }
    TableSet inner_rel = rel.Minus(outer_rel);
    std::vector<PlanPtr> outer_plans = EnumerateAllPlans(factory, outer_rel);
    std::vector<PlanPtr> inner_plans = EnumerateAllPlans(factory, inner_rel);
    for (const PlanPtr& o : outer_plans) {
      for (const PlanPtr& i : inner_plans) {
        for (JoinAlgorithm op : AllJoinAlgorithms()) {
          out.push_back(factory->MakeJoin(o, i, op));
        }
      }
    }
  }
  return out;
}

// Per-format Pareto filter over full plans (cost-only within a format).
std::map<OutputFormat, std::vector<CostVector>> FormatFrontiers(
    const std::vector<PlanPtr>& plans) {
  std::map<OutputFormat, std::vector<CostVector>> by_format;
  for (const PlanPtr& p : plans) {
    by_format[p->format()].push_back(p->cost());
  }
  for (auto& [format, costs] : by_format) {
    costs = ParetoFilter(std::move(costs));
    // Canonical order for comparison.
    std::sort(costs.begin(), costs.end(),
              [](const CostVector& a, const CostVector& b) {
                for (int i = 0; i < a.size(); ++i) {
                  if (a[i] != b[i]) return a[i] < b[i];
                }
                return false;
              });
  }
  return by_format;
}

class BruteForceTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BruteForceTest, DpOneMatchesBruteForceFrontiers) {
  auto [tables, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  GeneratorConfig gen;
  gen.num_tables = tables;
  QueryPtr query = GenerateQuery(gen, &rng);
  CostModel model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &model);

  std::vector<PlanPtr> all = EnumerateAllPlans(&factory, query->AllTables());
  ASSERT_FALSE(all.empty());
  auto brute = FormatFrontiers(all);
  auto dp = FormatFrontiers(ExactParetoSet(&factory));

  ASSERT_EQ(brute.size(), dp.size());
  for (const auto& [format, brute_costs] : brute) {
    ASSERT_TRUE(dp.count(format)) << ToString(format);
    const std::vector<CostVector>& dp_costs = dp.at(format);
    ASSERT_EQ(brute_costs.size(), dp_costs.size()) << ToString(format);
    for (size_t i = 0; i < brute_costs.size(); ++i) {
      EXPECT_TRUE(brute_costs[i].EqualTo(dp_costs[i]))
          << ToString(format) << " " << i << ": "
          << brute_costs[i].ToString() << " vs " << dp_costs[i].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BruteForceTest,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(1, 2, 3)));

TEST(BruteForceTest, EveryOptimizerCoveredByBruteForce) {
  // No optimizer may produce a plan that the brute-force frontier does not
  // weakly dominate (it enumerates the whole space, after all).
  Rng rng(9);
  GeneratorConfig gen;
  gen.num_tables = 3;
  QueryPtr query = GenerateQuery(gen, &rng);
  CostModel model({Metric::kTime, Metric::kBuffer, Metric::kDisk});
  PlanFactory factory(query, &model);

  std::vector<CostVector> reference;
  for (const PlanPtr& p : EnumerateAllPlans(&factory, query->AllTables())) {
    reference.push_back(p->cost());
  }
  reference = ParetoFilter(std::move(reference));

  Rmq rmq;
  Rng opt_rng(1);
  for (const PlanPtr& p :
       rmq.Optimize(&factory, &opt_rng, Deadline::AfterMillis(100), nullptr)) {
    EXPECT_DOUBLE_EQ(AlphaError(reference, {p->cost()}), 1.0)
        << p->ToString();
  }
}

TEST(BruteForceTest, PlanSpaceSizeMatchesCatalanCounting) {
  // Structural sanity: with one scan and one join operator the number of
  // distinct plans for n tables equals the number of labeled binary trees:
  // C(n-1) * n! (Catalan x leaf permutations) x operator labelings. We
  // count for n = 3 with full operator sets: shapes = C(2) * 3! = 12
  // orderings; each has 2 joins (8 ops each) and 3 leaves (1-2 scan ops).
  Catalog catalog;
  for (int i = 0; i < 3; ++i) catalog.AddTable({100.0, 50.0, false});
  JoinGraph graph(3);
  graph.AddEdge(0, 1, 0.1);
  graph.AddEdge(1, 2, 0.1);
  QueryPtr query = std::make_shared<Query>(std::move(catalog),
                                           std::move(graph));
  CostModel model({Metric::kTime});
  PlanFactory factory(query, &model);
  std::vector<PlanPtr> all = EnumerateAllPlans(&factory, query->AllTables());
  // 12 join orders x 8^2 join-operator labelings x 1 scan op per table.
  EXPECT_EQ(all.size(), 12u * 64u);
}

}  // namespace
}  // namespace moqo
