// Checkpoint/restore conformance suite: for every algorithm, suspending a
// session mid-run (Checkpoint) and restoring it into a fresh session —
// with a fresh PlanFactory and a fresh Rng, as a migration between
// scheduler instances would — must be invisible: the resumed run produces
// a frontier bitwise identical to the uninterrupted reference and executes
// the same number of remaining steps. Also covers the serialization
// substrate itself (round-trips, structural plan sharing, corruption
// rejection).
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dp.h"
#include "baselines/iterative_improvement.h"
#include "baselines/nsga2.h"
#include "baselines/simulated_annealing.h"
#include "baselines/two_phase.h"
#include "baselines/weighted_sum.h"
#include "core/rmq.h"
#include "query/generator.h"
#include "service/batch_optimizer.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

struct BoundedAlgorithm {
  std::string label;
  std::function<std::unique_ptr<Optimizer>()> make;
};

// Iteration-bounded configurations (mirroring the session-conformance
// suite) so every run has a deterministic end and a deterministic frontier.
std::vector<BoundedAlgorithm> AllBoundedAlgorithms() {
  std::vector<BoundedAlgorithm> algorithms;
  algorithms.push_back({"RMQ", [] {
                          RmqConfig config;
                          config.max_iterations = 25;
                          return std::make_unique<Rmq>(config);
                        }});
  algorithms.push_back({"DP(2)", [] {
                          DpConfig config;
                          config.alpha = 2.0;
                          return std::make_unique<DpOptimizer>(config);
                        }});
  algorithms.push_back({"NSGA-II", [] {
                          Nsga2Config config;
                          config.population_size = 30;
                          config.max_generations = 5;
                          return std::make_unique<Nsga2>(config);
                        }});
  algorithms.push_back({"SA", [] {
                          SaConfig config;
                          config.max_epochs = 20;
                          return std::make_unique<SimulatedAnnealing>(config);
                        }});
  algorithms.push_back({"II", [] {
                          IiConfig config;
                          config.max_iterations = 10;
                          return std::make_unique<IterativeImprovement>(
                              config);
                        }});
  algorithms.push_back({"2P", [] {
                          TwoPhaseConfig config;
                          config.phase_one_iterations = 5;
                          config.max_phase_two_epochs = 10;
                          return std::make_unique<TwoPhase>(config);
                        }});
  algorithms.push_back({"WeightedSum", [] {
                          WeightedSumConfig config;
                          config.num_weight_vectors = 8;
                          config.max_climbs = 10;
                          return std::make_unique<WeightedSum>(config);
                        }});
  return algorithms;
}

void ExpectBitwiseEqual(const std::vector<CostVector>& a,
                        const std::vector<CostVector>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << " vector " << i;
    for (int j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j])
          << label << " vector " << i << " metric " << j;
    }
  }
}

class CheckpointConformanceTest : public ::testing::TestWithParam<size_t> {};

// The tentpole property: checkpoint after k steps, restore into a fresh
// session bound to a *fresh* factory and Rng (the migration scenario), run
// both to Done — frontier and total step count must match the
// uninterrupted run exactly, for every pause point.
TEST_P(CheckpointConformanceTest, RestoredRunIsBitwiseIndistinguishable) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  constexpr uint64_t kSeed = 2016;

  // Uninterrupted reference.
  Fixture reference_fx(6);
  std::unique_ptr<OptimizerSession> reference =
      algorithm.make()->NewSession();
  Rng reference_rng(kSeed);
  reference->Begin(&reference_fx.factory, &reference_rng);
  while (!reference->Done()) reference->Step();
  std::vector<CostVector> expected =
      CanonicalFrontier(reference->Frontier());
  int64_t expected_steps = reference->session_stats().steps;
  ASSERT_FALSE(expected.empty()) << algorithm.label;

  for (int64_t pause_after : {int64_t{0}, int64_t{1}, expected_steps / 2,
                              expected_steps}) {
    // Run a fresh session up to the pause point and checkpoint it.
    Fixture source_fx(6);
    std::unique_ptr<OptimizerSession> source =
        algorithm.make()->NewSession();
    Rng source_rng(kSeed);
    source->Begin(&source_fx.factory, &source_rng);
    for (int64_t s = 0; s < pause_after && !source->Done(); ++s) {
      source->Step();
    }
    std::vector<uint8_t> checkpoint = source->Checkpoint();

    // Restore into a different session / factory / Rng, as after a
    // migration; the Rng seed is deliberately wrong (the checkpointed
    // stream position must win).
    Fixture target_fx(6);
    std::unique_ptr<OptimizerSession> target =
        algorithm.make()->NewSession();
    Rng target_rng(kSeed + 999);
    ASSERT_TRUE(target->Restore(&target_fx.factory, &target_rng, checkpoint))
        << algorithm.label << " pause " << pause_after;
    EXPECT_EQ(target->session_stats().steps,
              source->session_stats().steps);

    while (!target->Done()) target->Step();
    EXPECT_EQ(target->session_stats().steps, expected_steps)
        << algorithm.label << " pause " << pause_after;
    ExpectBitwiseEqual(
        CanonicalFrontier(target->Frontier()), expected,
        algorithm.label + " pause " + std::to_string(pause_after));
  }
}

// Checkpointing must not perturb the source session: continuing it after
// Checkpoint() still reproduces the reference run.
TEST_P(CheckpointConformanceTest, CheckpointDoesNotDisturbSource) {
  BoundedAlgorithm algorithm = AllBoundedAlgorithms()[GetParam()];
  constexpr uint64_t kSeed = 7;

  Fixture reference_fx(5);
  std::unique_ptr<OptimizerSession> reference =
      algorithm.make()->NewSession();
  Rng reference_rng(kSeed);
  reference->Begin(&reference_fx.factory, &reference_rng);
  while (!reference->Done()) reference->Step();

  Fixture fx(5);
  std::unique_ptr<OptimizerSession> session = algorithm.make()->NewSession();
  Rng rng(kSeed);
  session->Begin(&fx.factory, &rng);
  while (!session->Done()) {
    session->Checkpoint();  // discard; must be a pure read
    session->Step();
  }
  EXPECT_EQ(session->session_stats().steps,
            reference->session_stats().steps);
  ExpectBitwiseEqual(CanonicalFrontier(session->Frontier()),
                     CanonicalFrontier(reference->Frontier()),
                     algorithm.label);
}

// A checkpoint only restores into a session of the same algorithm; any
// other session rejects it instead of resuming garbage.
TEST_P(CheckpointConformanceTest, RejectsForeignAndCorruptCheckpoints) {
  std::vector<BoundedAlgorithm> algorithms = AllBoundedAlgorithms();
  BoundedAlgorithm algorithm = algorithms[GetParam()];
  Fixture fx(5);
  std::unique_ptr<OptimizerSession> session = algorithm.make()->NewSession();
  Rng rng(11);
  session->Begin(&fx.factory, &rng);
  session->Step();
  std::vector<uint8_t> checkpoint = session->Checkpoint();

  // Foreign algorithm.
  BoundedAlgorithm other = algorithms[(GetParam() + 1) % algorithms.size()];
  std::unique_ptr<OptimizerSession> foreign = other.make()->NewSession();
  Rng foreign_rng(11);
  Fixture foreign_fx(5);
  EXPECT_FALSE(
      foreign->Restore(&foreign_fx.factory, &foreign_rng, checkpoint))
      << other.label << " accepted a " << algorithm.label << " checkpoint";

  // Truncation and trailing garbage.
  std::vector<uint8_t> truncated(checkpoint.begin(),
                                 checkpoint.end() - checkpoint.size() / 3);
  std::vector<uint8_t> padded = checkpoint;
  padded.push_back(0xff);
  std::vector<uint8_t> empty;
  for (const std::vector<uint8_t>* bad : {&truncated, &padded, &empty}) {
    Fixture bad_fx(5);
    std::unique_ptr<OptimizerSession> target =
        algorithm.make()->NewSession();
    Rng bad_rng(11);
    EXPECT_FALSE(target->Restore(&bad_fx.factory, &bad_rng, *bad))
        << algorithm.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CheckpointConformanceTest,
    ::testing::Range<size_t>(0, 7),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = AllBoundedAlgorithms()[info.param].label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Substrate tests.

TEST(CheckpointIoTest, PrimitiveRoundTrip) {
  CheckpointWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteI32(-42);
  writer.WriteU64(0x0123456789abcdefull);
  writer.WriteI64(INT64_MIN);
  writer.WriteDouble(3.141592653589793);
  writer.WriteDouble(-0.0);
  writer.WriteString("checkpoint");
  writer.WriteIntVector({1, -2, 3});
  writer.WriteDoubleVector({0.5, 1e300});
  TableSet set;
  set.Add(0);
  set.Add(63);
  set.Add(200);
  writer.WriteTableSet(set);
  std::vector<uint8_t> buffer = writer.Take();

  CheckpointReader reader(buffer, nullptr);
  EXPECT_EQ(reader.ReadU8(), 0xab);
  EXPECT_EQ(reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadI32(), -42);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.ReadI64(), INT64_MIN);
  EXPECT_EQ(reader.ReadDouble(), 3.141592653589793);
  double negative_zero = reader.ReadDouble();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));
  EXPECT_EQ(reader.ReadString(), "checkpoint");
  EXPECT_EQ(reader.ReadIntVector(), (std::vector<int>{1, -2, 3}));
  EXPECT_EQ(reader.ReadDoubleVector(), (std::vector<double>{0.5, 1e300}));
  EXPECT_EQ(reader.ReadTableSet(), set);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CheckpointIoTest, ReadPastEndFailsInsteadOfThrowing) {
  CheckpointWriter writer;
  writer.WriteU32(7);
  std::vector<uint8_t> buffer = writer.Take();
  CheckpointReader reader(buffer, nullptr);
  EXPECT_EQ(reader.ReadU64(), 0u);  // only 4 bytes available
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.ReadString(), "");  // stays failed
}

// Checkpoint bytes must not depend on PlanCache insertion history: the
// cache is an unordered_map, and two caches holding identical entries can
// iterate in different orders. WritePlanCache sorts keys canonically, so
// the serialized bytes — and every CRC and snapshot frame derived from
// them — are identical regardless of how the cache was built.
TEST(CheckpointIoTest, PlanCacheSerializationIsInsertionOrderInvariant) {
  Fixture fx(8);
  std::vector<PlanPtr> scans;
  for (int t = 0; t < 8; ++t) {
    scans.push_back(fx.factory.MakeScan(t, ScanAlgorithm::kFullScan));
  }

  PlanCache forward;
  for (int t = 0; t < 8; ++t) {
    forward.Insert(TableSet::Singleton(t), scans[static_cast<size_t>(t)],
                   1.0);
  }
  PlanCache backward;
  for (int t = 7; t >= 0; --t) {
    backward.Insert(TableSet::Singleton(t), scans[static_cast<size_t>(t)],
                    1.0);
  }
  ASSERT_EQ(forward.NumTableSets(), backward.NumTableSets());

  CheckpointWriter writer_forward;
  WritePlanCache(&writer_forward, forward);
  CheckpointWriter writer_backward;
  WritePlanCache(&writer_backward, backward);
  EXPECT_EQ(writer_forward.Take(), writer_backward.Take());
}

// Structural sharing survives the round-trip: a sub-plan referenced by two
// plans is serialized once and restored as one shared node.
TEST(CheckpointIoTest, PlanRoundTripPreservesSharingAndCosts) {
  Fixture fx(4);
  Rng rng(5);
  PlanPtr scan0 = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
  PlanPtr scan1 = fx.factory.MakeScan(1, ScanAlgorithm::kFullScan);
  PlanPtr shared = fx.factory.MakeJoin(scan0, scan1,
                                       JoinAlgorithm::kHashSmall);
  PlanPtr scan2 = fx.factory.MakeScan(2, ScanAlgorithm::kFullScan);
  PlanPtr scan3 = fx.factory.MakeScan(3, ScanAlgorithm::kFullScan);
  PlanPtr a = fx.factory.MakeJoin(shared, scan2, JoinAlgorithm::kNestedLoop);
  PlanPtr b = fx.factory.MakeJoin(shared, scan3,
                                  JoinAlgorithm::kSortMergeLarge);

  CheckpointWriter writer;
  writer.WritePlans({a, b});
  std::vector<uint8_t> buffer = writer.Take();

  Fixture target(4);
  CheckpointReader reader(buffer, &target.factory);
  std::vector<PlanPtr> restored = reader.ReadPlans();
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(restored.size(), 2u);
  // Same shared node object, not two structural copies.
  EXPECT_EQ(restored[0]->outer().get(), restored[1]->outer().get());
  // Costs restamped by the fresh factory are bit-identical.
  for (size_t i = 0; i < 2; ++i) {
    const CostVector& original = (i == 0 ? a : b)->cost();
    const CostVector& copy = restored[i]->cost();
    ASSERT_EQ(copy.size(), original.size());
    for (int m = 0; m < original.size(); ++m) {
      EXPECT_EQ(copy[m], original[m]);
    }
  }
  EXPECT_EQ(restored[0]->ToString(), a->ToString());
  EXPECT_EQ(restored[1]->ToString(), b->ToString());
}

// Arena lifetime across restore: restored plans are built into the target
// factory's arena, so they must survive the source fixture (factory +
// arena) being destroyed — and the target factory too, because escaped
// PlanPtr handles co-own the arena generation they were built in. The
// weak handle proves the arena is reclaimed exactly when the last plan
// handle dies, not before.
TEST(CheckpointIoTest, RestoredPlansOutliveSourceAndTargetFactories) {
  std::vector<uint8_t> buffer;
  std::string expected_repr;
  CostVector expected_cost;
  {
    Fixture source(4);
    PlanPtr s0 = source.factory.MakeScan(0, ScanAlgorithm::kFullScan);
    PlanPtr s1 = source.factory.MakeScan(1, ScanAlgorithm::kFullScan);
    PlanPtr plan =
        source.factory.MakeJoin(s0, s1, JoinAlgorithm::kHashSmall);
    expected_repr = plan->ToString();
    expected_cost = plan->cost();
    CheckpointWriter writer;
    writer.WritePlan(plan);
    buffer = writer.Take();
  }

  PlanPtr restored;
  std::weak_ptr<PlanArena> target_arena;
  {
    Fixture target(4);
    target_arena = target.factory.arena();
    CheckpointReader reader(buffer, &target.factory);
    restored = reader.ReadPlan();
    ASSERT_TRUE(reader.ok());
    ASSERT_NE(restored, nullptr);
  }

  EXPECT_FALSE(target_arena.expired());
  EXPECT_EQ(restored->ToString(), expected_repr);
  ASSERT_EQ(restored->cost().size(), expected_cost.size());
  for (int m = 0; m < expected_cost.size(); ++m) {
    EXPECT_EQ(restored->cost()[m], expected_cost[m]);
  }
  restored = nullptr;
  EXPECT_TRUE(target_arena.expired());
}

TEST(CheckpointIoTest, RejectsOutOfRangePlanRecords) {
  Fixture fx(3);
  {
    // Scan of a table beyond the query.
    CheckpointWriter writer;
    PlanPtr scan = fx.factory.MakeScan(0, ScanAlgorithm::kFullScan);
    writer.WritePlan(scan);
    std::vector<uint8_t> buffer = writer.Take();
    buffer[1] = 250;  // table id byte of the scan-def record
    CheckpointReader reader(buffer, &fx.factory);
    EXPECT_EQ(reader.ReadPlan(), nullptr);
    EXPECT_FALSE(reader.ok());
  }
  {
    // Reference to a node id that was never defined.
    CheckpointWriter writer;
    writer.WriteU8(1);  // kPlanRef
    writer.WriteU32(99);
    std::vector<uint8_t> buffer = writer.Take();
    CheckpointReader reader(buffer, &fx.factory);
    EXPECT_EQ(reader.ReadPlan(), nullptr);
    EXPECT_FALSE(reader.ok());
  }
}

// WritePlans never emits null elements, so a null inside a plan-list is
// corruption; accepting it would plant nullptrs in restored archives and
// crash the next Step(). Regression for the ReadPlans null check.
TEST(CheckpointIoTest, RejectsNullElementsInPlanLists) {
  Fixture fx(3);
  CheckpointWriter writer;
  writer.WriteU64(1);  // one-element plan list...
  writer.WriteU8(0);   // ...holding a kPlanNull record
  std::vector<uint8_t> buffer = writer.Take();
  CheckpointReader reader(buffer, &fx.factory);
  EXPECT_TRUE(reader.ReadPlans().empty());
  EXPECT_FALSE(reader.ok());
}

// Restore() must also reject buffers that parse cleanly but violate the
// algorithm's own invariants (Release builds have no asserts to catch
// them later). Crafted here: a weighted-sum checkpoint whose weight
// vectors are shorter than the cost model's metric count.
TEST(CheckpointIoTest, RejectsSemanticallyInvalidSessionState) {
  Fixture fx(4);
  Rng rng(3);
  CheckpointWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteString("weighted-sum");
  writer.WriteString(rng.SaveState());
  writer.WriteI64(0);        // steps
  writer.WriteU64(0);        // empty archive
  writer.WriteU64(1);        // one weight vector...
  writer.WriteDoubleVector({});  // ...with zero entries (metrics = 2)
  writer.WriteDoubleVector({});  // empty norms
  writer.WriteU64(0);        // next_weight
  writer.WriteI32(0);        // climbs
  std::vector<uint8_t> buffer = writer.Take();

  WeightedSumConfig config;
  config.max_climbs = 4;
  std::unique_ptr<OptimizerSession> session =
      WeightedSum(config).NewSession();
  Rng target_rng(9);
  EXPECT_FALSE(session->Restore(&fx.factory, &target_rng, buffer));
}

TEST(RngStateTest, SaveLoadContinuesTheStream) {
  Rng rng(123);
  for (int i = 0; i < 100; ++i) rng.UniformInt(0, 1000);
  std::string state = rng.SaveState();
  std::vector<int> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.UniformInt(0, 1000));

  Rng other(999);  // seed is irrelevant once state is loaded
  ASSERT_TRUE(other.LoadState(state));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(other.UniformInt(0, 1000), expected[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(other.LoadState("not an engine state"));
}

}  // namespace
}  // namespace moqo
