#include "baselines/nsga2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 8, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer}),
        factory(query, &model) {}
};

TEST(FastNonDominatedSortTest, SimpleFronts) {
  std::vector<CostVector> costs = {
      {1.0, 1.0},  // front 0
      {2.0, 2.0},  // front 1 (dominated by #0)
      {1.0, 3.0},  // front 0? dominated by none: (1,1) dominates (1,3)
      {3.0, 3.0},  // dominated by all above
  };
  std::vector<int> ranks = FastNonDominatedSort(costs);
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[1], 1);
  EXPECT_EQ(ranks[1], 1);
  EXPECT_EQ(ranks[3], 2);
}

TEST(FastNonDominatedSortTest, AllIncomparableIsOneFront) {
  std::vector<CostVector> costs = {{1.0, 9.0}, {5.0, 5.0}, {9.0, 1.0}};
  for (int r : FastNonDominatedSort(costs)) EXPECT_EQ(r, 0);
}

TEST(FastNonDominatedSortTest, ChainOfDominance) {
  std::vector<CostVector> costs;
  for (int i = 0; i < 5; ++i) {
    costs.push_back({1.0 + i, 1.0 + i});
  }
  std::vector<int> ranks = FastNonDominatedSort(costs);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ranks[static_cast<size_t>(i)], i);
}

TEST(FastNonDominatedSortTest, EqualVectorsShareFrontZero) {
  std::vector<CostVector> costs = {{2.0, 2.0}, {2.0, 2.0}};
  std::vector<int> ranks = FastNonDominatedSort(costs);
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[1], 0);
}

TEST(CrowdingDistancesTest, BoundariesInfinite) {
  std::vector<CostVector> costs = {{1.0, 9.0}, {5.0, 5.0}, {9.0, 1.0}};
  std::vector<int> front = {0, 1, 2};
  std::vector<double> d = CrowdingDistances(costs, front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[2]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_GT(d[1], 0.0);
}

TEST(CrowdingDistancesTest, DenserPointsLowerDistance) {
  std::vector<CostVector> costs = {
      {1.0, 10.0}, {2.0, 8.0}, {2.5, 7.5}, {3.0, 7.0}, {10.0, 1.0}};
  std::vector<int> front = {0, 1, 2, 3, 4};
  std::vector<double> d = CrowdingDistances(costs, front);
  // Point 2 sits in the densest area.
  EXPECT_LT(d[2], d[1]);
}

TEST(CrowdingDistancesTest, EmptyAndSingleton) {
  std::vector<CostVector> costs = {{1.0, 1.0}};
  EXPECT_TRUE(CrowdingDistances(costs, {}).empty());
  std::vector<double> d = CrowdingDistances(costs, {0});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(std::isinf(d[0]));
}

TEST(GenomeTest, RandomGenomeInBounds) {
  Fixture fx(10);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Nsga2Genome g = RandomGenome(&fx.factory, &rng);
    ASSERT_EQ(g.order.size(), 10u);
    ASSERT_EQ(g.scan_ops.size(), 10u);
    ASSERT_EQ(g.join_ops.size(), 9u);
    for (int k = 0; k < 10; ++k) {
      EXPECT_GE(g.order[static_cast<size_t>(k)], 0);
      EXPECT_LE(g.order[static_cast<size_t>(k)], 9 - k);
    }
  }
}

TEST(GenomeTest, DecodeProducesValidLeftDeepPlan) {
  Fixture fx(10);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    Nsga2Genome g = RandomGenome(&fx.factory, &rng);
    PlanPtr p = DecodeGenome(g, &fx.factory);
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
    PlanPtr node = p;
    while (node->IsJoin()) {
      EXPECT_FALSE(node->inner()->IsJoin());
      node = node->outer();
    }
  }
}

TEST(GenomeTest, DecodeDeterministic) {
  Fixture fx(8);
  Rng rng(3);
  Nsga2Genome g = RandomGenome(&fx.factory, &rng);
  PlanPtr a = DecodeGenome(g, &fx.factory);
  PlanPtr b = DecodeGenome(g, &fx.factory);
  EXPECT_EQ(a->ToString(), b->ToString());
  EXPECT_TRUE(a->cost().EqualTo(b->cost()));
}

TEST(GenomeTest, OrderGenesSelectDistinctTables) {
  Fixture fx(6);
  Nsga2Genome g;
  g.order = {0, 0, 0, 0, 0, 0};  // always pick the first remaining table
  g.scan_ops = std::vector<int>(6, 0);
  g.join_ops = std::vector<int>(5, 3);
  PlanPtr p = DecodeGenome(g, &fx.factory);
  EXPECT_EQ(p->rel().Count(), 6);
}

TEST(Nsga2Test, OptimizeProducesValidFrontier) {
  Fixture fx(8);
  Nsga2Config config;
  config.population_size = 40;
  config.max_generations = 5;
  Nsga2 nsga(config);
  Rng rng(4);
  std::vector<PlanPtr> plans =
      nsga.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  ASSERT_FALSE(plans.empty());
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel(), fx.factory.query().AllTables());
  }
  for (const PlanPtr& a : plans) {
    for (const PlanPtr& b : plans) {
      if (a == b) continue;
      EXPECT_FALSE(a->cost().StrictlyDominates(b->cost()));
    }
  }
}

TEST(Nsga2Test, ImprovesOverGenerations) {
  Fixture fx(12, 7);
  auto best_sum_after = [&](int generations) {
    Nsga2Config config;
    config.population_size = 50;
    config.max_generations = generations;
    Nsga2 nsga(config);
    Rng rng(5);
    std::vector<PlanPtr> plans =
        nsga.Optimize(&fx.factory, &rng, Deadline(), nullptr);
    double best = kMaxCost;
    for (const PlanPtr& p : plans) best = std::min(best, p->cost().Sum());
    return best;
  };
  double gen1 = best_sum_after(1);
  double gen30 = best_sum_after(30);
  EXPECT_LE(gen30, gen1);
}

TEST(Nsga2Test, CallbackPerGeneration) {
  Fixture fx(6);
  Nsga2Config config;
  config.population_size = 20;
  config.max_generations = 4;
  Nsga2 nsga(config);
  Rng rng(6);
  int calls = 0;
  nsga.Optimize(&fx.factory, &rng, Deadline(),
                [&](const std::vector<PlanPtr>&) { ++calls; });
  // Initial population callback + one per generation.
  EXPECT_EQ(calls, 5);
}

TEST(Nsga2Test, ZeroPopulationProducesNothing) {
  // An empty population can never evolve; the session is immediately Done,
  // so the unbounded-deadline call must not spin.
  Fixture fx(4);
  Nsga2Config config;
  config.population_size = 0;
  config.max_generations = 3;
  Nsga2 nsga(config);
  Rng rng(9);
  EXPECT_TRUE(nsga.Optimize(&fx.factory, &rng, Deadline(), nullptr).empty());
}

TEST(Nsga2Test, HonorsDeadline) {
  Fixture fx(40);
  Nsga2 nsga;
  Rng rng(7);
  Stopwatch watch;
  nsga.Optimize(&fx.factory, &rng, Deadline::AfterMillis(60), nullptr);
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
}

TEST(Nsga2Test, SingleTableQuery) {
  Fixture fx(1);
  Nsga2Config config;
  config.population_size = 8;
  config.max_generations = 2;
  Nsga2 nsga(config);
  Rng rng(8);
  std::vector<PlanPtr> plans =
      nsga.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  ASSERT_FALSE(plans.empty());
  EXPECT_FALSE(plans.front()->IsJoin());
}

}  // namespace
}  // namespace moqo
