// Tests for the local-search baselines: II, SA, and 2P.
#include <gtest/gtest.h>

#include "baselines/iterative_improvement.h"
#include "baselines/simulated_annealing.h"
#include "baselines/two_phase.h"
#include "core/pareto_climb.h"
#include "plan/random_plan.h"
#include "query/generator.h"

namespace moqo {
namespace {

struct Fixture {
  QueryPtr query;
  CostModel model;
  PlanFactory factory;

  explicit Fixture(int tables = 8, uint64_t seed = 42)
      : query([&] {
          Rng rng(seed);
          GeneratorConfig config;
          config.num_tables = tables;
          return GenerateQuery(config, &rng);
        }()),
        model({Metric::kTime, Metric::kBuffer, Metric::kDisk}),
        factory(query, &model) {}
};

void ExpectValidFrontier(const std::vector<PlanPtr>& plans,
                         const PlanFactory& factory) {
  ASSERT_FALSE(plans.empty());
  for (const PlanPtr& p : plans) {
    EXPECT_EQ(p->rel(), factory.query().AllTables());
  }
  for (const PlanPtr& a : plans) {
    for (const PlanPtr& b : plans) {
      if (a == b) continue;
      EXPECT_FALSE(a->cost().StrictlyDominates(b->cost()));
    }
  }
}

TEST(IterativeImprovementTest, ProducesNonDominatedLocalOptima) {
  Fixture fx;
  IterativeImprovement ii;
  Rng rng(1);
  std::vector<PlanPtr> plans =
      ii.Optimize(&fx.factory, &rng, Deadline::AfterMillis(100), nullptr);
  ExpectValidFrontier(plans, fx.factory);
}

TEST(IterativeImprovementTest, IterationBudget) {
  Fixture fx;
  IiConfig config;
  config.max_iterations = 5;
  IterativeImprovement ii(config);
  Rng rng(2);
  int callbacks = 0;
  ii.Optimize(&fx.factory, &rng, Deadline(),
              [&](const std::vector<PlanPtr>&) { ++callbacks; });
  EXPECT_GE(callbacks, 1);
  EXPECT_LE(callbacks, 5);
}

TEST(IterativeImprovementTest, ResultsAreLocalOptima) {
  Fixture fx(5);
  IiConfig config;
  config.max_iterations = 5;
  IterativeImprovement ii(config);
  Rng rng(3);
  std::vector<PlanPtr> plans =
      ii.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  for (const PlanPtr& p : plans) {
    EXPECT_TRUE(IsLocalParetoOptimum(p, &fx.factory)) << p->ToString();
  }
}

TEST(IterativeImprovementTest, NaiveClimbVariant) {
  Fixture fx(5);
  IiConfig config;
  config.fast_climb = false;
  config.max_iterations = 3;
  IterativeImprovement ii(config);
  Rng rng(4);
  std::vector<PlanPtr> plans =
      ii.Optimize(&fx.factory, &rng, Deadline(), nullptr);
  ExpectValidFrontier(plans, fx.factory);
}

TEST(SimulatedAnnealingTest, AverageDeltaAndCost) {
  CostVector a = {10.0, 20.0};
  CostVector b = {20.0, 40.0};
  EXPECT_DOUBLE_EQ(AverageDelta(a, b), 15.0);
  EXPECT_DOUBLE_EQ(AverageDelta(b, a), -15.0);
  EXPECT_DOUBLE_EQ(AverageCost(a), 15.0);
}

TEST(SimulatedAnnealingTest, ProducesValidFrontier) {
  Fixture fx;
  SimulatedAnnealing sa;
  Rng rng(5);
  std::vector<PlanPtr> plans =
      sa.Optimize(&fx.factory, &rng, Deadline::AfterMillis(80), nullptr);
  ExpectValidFrontier(plans, fx.factory);
}

TEST(SimulatedAnnealingTest, StartPlanRespected) {
  Fixture fx;
  Rng rng(6);
  PlanPtr start = RandomPlan(&fx.factory, &rng);
  SaConfig config;
  config.start_plan = start;
  SimulatedAnnealing sa(config);
  bool start_archived = false;
  std::vector<PlanPtr> plans = sa.Optimize(
      &fx.factory, &rng, Deadline::AfterMillis(20),
      [&](const std::vector<PlanPtr>& frontier) {
        for (const PlanPtr& p : frontier) {
          if (p == start) start_archived = true;
        }
      });
  EXPECT_TRUE(start_archived || !plans.empty());
}

TEST(SimulatedAnnealingTest, NormalizedVariantAcceptsScaleFree) {
  // The normalized variant must improve on the plain one for a moderate
  // budget because acceptance no longer degenerates to a random walk.
  Fixture fx(12, 7);
  auto run = [&](bool normalize) {
    SaConfig config;
    config.normalize_delta = normalize;
    SimulatedAnnealing sa(config);
    Rng rng(7);
    std::vector<PlanPtr> plans =
        sa.Optimize(&fx.factory, &rng, Deadline::AfterMillis(120), nullptr);
    double best = kMaxCost;
    for (const PlanPtr& p : plans) best = std::min(best, p->cost().Sum());
    return best;
  };
  double plain = run(false);
  double normalized = run(true);
  EXPECT_LE(normalized, plain * 1.5)
      << "scale-free acceptance should not be drastically worse";
}

TEST(SimulatedAnnealingTest, CallbackBatchingDelivers) {
  Fixture fx;
  SimulatedAnnealing sa;
  Rng rng(8);
  int callbacks = 0;
  sa.Optimize(&fx.factory, &rng, Deadline::AfterMillis(50),
              [&](const std::vector<PlanPtr>&) { ++callbacks; });
  EXPECT_GE(callbacks, 1);
}

TEST(TwoPhaseTest, ProducesValidFrontier) {
  Fixture fx;
  TwoPhase tp;
  Rng rng(9);
  std::vector<PlanPtr> plans =
      tp.Optimize(&fx.factory, &rng, Deadline::AfterMillis(100), nullptr);
  ExpectValidFrontier(plans, fx.factory);
}

TEST(TwoPhaseTest, PhaseOneChampionIsGood) {
  // The 2P result must contain at least one plan no worse (in cost sum)
  // than a median random plan — phase one climbs, after all.
  Fixture fx(10);
  TwoPhase tp;
  Rng rng(10);
  std::vector<PlanPtr> plans =
      tp.Optimize(&fx.factory, &rng, Deadline::AfterMillis(100), nullptr);
  ASSERT_FALSE(plans.empty());
  double best = kMaxCost;
  for (const PlanPtr& p : plans) best = std::min(best, p->cost().Sum());

  Rng rng2(11);
  std::vector<double> random_sums;
  for (int i = 0; i < 21; ++i) {
    random_sums.push_back(RandomPlan(&fx.factory, &rng2)->cost().Sum());
  }
  std::sort(random_sums.begin(), random_sums.end());
  EXPECT_LE(best, random_sums[10]);
}

TEST(TwoPhaseTest, ZeroPhaseOneIterationsProducesNothing) {
  // No phase-one restarts -> no champion -> no phase two; the session is
  // immediately Done, so the unbounded-deadline call must not spin.
  Fixture fx(5);
  TwoPhaseConfig config;
  config.phase_one_iterations = 0;
  TwoPhase tp(config);
  Rng rng(14);
  EXPECT_TRUE(tp.Optimize(&fx.factory, &rng, Deadline(), nullptr).empty());
}

TEST(TwoPhaseTest, RespectsVeryShortDeadline) {
  Fixture fx(30);
  TwoPhase tp;
  Rng rng(12);
  // Must return promptly even when the deadline expires during phase one.
  Stopwatch watch;
  tp.Optimize(&fx.factory, &rng, Deadline::AfterMillis(30), nullptr);
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
}

class BaselineDeadlineTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineDeadlineTest, AllLocalSearchBaselinesHonorDeadline) {
  Fixture fx(GetParam());
  std::vector<std::unique_ptr<Optimizer>> algorithms;
  algorithms.push_back(std::make_unique<IterativeImprovement>());
  algorithms.push_back(std::make_unique<SimulatedAnnealing>());
  algorithms.push_back(std::make_unique<TwoPhase>());
  for (auto& alg : algorithms) {
    Rng rng(13);
    Stopwatch watch;
    alg->Optimize(&fx.factory, &rng, Deadline::AfterMillis(60), nullptr);
    // Generous margin: one climb on a large plan may overshoot briefly.
    EXPECT_LT(watch.ElapsedMillis(), 10000.0) << alg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineDeadlineTest,
                         ::testing::Values(5, 20, 60));

}  // namespace
}  // namespace moqo
