#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/join_graph.h"
#include "query/query.h"

namespace moqo {
namespace {

TEST(CatalogTest, AddAndAccess) {
  Catalog catalog;
  EXPECT_EQ(catalog.NumTables(), 0);
  int id = catalog.AddTable({5000.0, 64.0, true});
  EXPECT_EQ(id, 0);
  EXPECT_EQ(catalog.NumTables(), 1);
  EXPECT_DOUBLE_EQ(catalog.Cardinality(0), 5000.0);
  EXPECT_DOUBLE_EQ(catalog.Table(0).tuple_bytes, 64.0);
  EXPECT_TRUE(catalog.Table(0).has_index);
}

TEST(CatalogTest, ConstructFromVector) {
  Catalog catalog({{10.0, 8.0, false}, {20.0, 16.0, true}});
  EXPECT_EQ(catalog.NumTables(), 2);
  EXPECT_DOUBLE_EQ(catalog.Cardinality(1), 20.0);
}

JoinGraph ChainGraph(int n, double sel) {
  JoinGraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, sel);
  return g;
}

TEST(JoinGraphTest, EdgesAndNeighbors) {
  JoinGraph g = ChainGraph(4, 0.1);
  EXPECT_EQ(g.NumTables(), 4);
  EXPECT_EQ(g.Edges().size(), 3u);
  EXPECT_EQ(g.Neighbors(0), TableSet::Singleton(1));
  TableSet n1 = g.Neighbors(1);
  EXPECT_TRUE(n1.Contains(0));
  EXPECT_TRUE(n1.Contains(2));
  EXPECT_EQ(n1.Count(), 2);
}

TEST(JoinGraphTest, SelectivityBetweenCrossProductIsOne) {
  JoinGraph g = ChainGraph(4, 0.1);
  // Tables 0 and 2 share no predicate.
  EXPECT_DOUBLE_EQ(
      g.SelectivityBetween(TableSet::Singleton(0), TableSet::Singleton(2)),
      1.0);
  EXPECT_FALSE(g.Connected(TableSet::Singleton(0), TableSet::Singleton(2)));
}

TEST(JoinGraphTest, SelectivityBetweenMultipliesCrossingEdges) {
  JoinGraph g = ChainGraph(4, 0.1);
  TableSet left;  // {0, 1}
  left.Add(0);
  left.Add(1);
  TableSet right;  // {2, 3}
  right.Add(2);
  right.Add(3);
  // Only edge (1,2) crosses.
  EXPECT_DOUBLE_EQ(g.SelectivityBetween(left, right), 0.1);
  EXPECT_TRUE(g.Connected(left, right));
}

TEST(JoinGraphTest, SelectivityWithin) {
  JoinGraph g = ChainGraph(4, 0.1);
  TableSet s = TableSet::FirstN(3);  // edges (0,1) and (1,2) inside
  EXPECT_NEAR(g.SelectivityWithin(s), 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(g.SelectivityWithin(TableSet::Singleton(0)), 1.0);
}

TEST(JoinGraphTest, CycleSelectivityWithinIncludesClosingEdge) {
  JoinGraph g(3);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(1, 2, 0.5);
  g.AddEdge(2, 0, 0.5);
  EXPECT_NEAR(g.SelectivityWithin(TableSet::FirstN(3)), 0.125, 1e-12);
}

TEST(JoinGraphTest, InducedConnected) {
  JoinGraph g = ChainGraph(5, 0.1);
  EXPECT_TRUE(g.InducedConnected(TableSet::FirstN(5)));
  EXPECT_TRUE(g.InducedConnected(TableSet::Singleton(2)));
  EXPECT_TRUE(g.InducedConnected(TableSet()));
  TableSet disconnected;
  disconnected.Add(0);
  disconnected.Add(2);
  EXPECT_FALSE(g.InducedConnected(disconnected));
}

TEST(JoinGraphTest, StarInducedConnectivityRequiresCenter) {
  JoinGraph g(5);
  for (int t = 1; t < 5; ++t) g.AddEdge(0, t, 0.2);
  TableSet leaves;
  leaves.Add(1);
  leaves.Add(2);
  EXPECT_FALSE(g.InducedConnected(leaves));
  leaves.Add(0);
  EXPECT_TRUE(g.InducedConnected(leaves));
}

TEST(QueryTest, BasicAccessors) {
  Catalog catalog({{100.0, 8.0, false}, {200.0, 8.0, false},
                   {300.0, 8.0, true}});
  JoinGraph graph = ChainGraph(3, 0.5);
  Query query(std::move(catalog), std::move(graph));
  EXPECT_EQ(query.NumTables(), 3);
  EXPECT_EQ(query.AllTables(), TableSet::FirstN(3));
  EXPECT_DOUBLE_EQ(query.catalog().Cardinality(2), 300.0);
  EXPECT_EQ(query.graph().Edges().size(), 2u);
}

}  // namespace
}  // namespace moqo
