// Fixed-capacity bitset identifying a set of query tables.
//
// Queries in this library are sets of tables (see query/query.h); plans and
// plan-cache entries are keyed by the set of tables they join. TableSet is a
// small, trivially copyable 256-bit set (the paper evaluates up to 100
// tables; 256 leaves generous headroom) with value semantics, O(1) union /
// intersection / subset tests, and a hash suitable for unordered containers.
#ifndef MOQO_COMMON_TABLE_SET_H_
#define MOQO_COMMON_TABLE_SET_H_

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>

namespace moqo {

/// A set of table indices in [0, TableSet::kCapacity).
class TableSet {
 public:
  /// Maximum number of distinct tables representable.
  static constexpr int kCapacity = 256;

  /// Creates the empty set.
  constexpr TableSet() : words_{0, 0, 0, 0} {}

  /// Returns the singleton set {table}.
  static TableSet Singleton(int table);

  /// Returns the set {0, 1, ..., n - 1}.
  static TableSet FirstN(int n);

  /// Adds `table` to the set.
  void Add(int table);

  /// Removes `table` from the set.
  void Remove(int table);

  /// Returns true if `table` is a member.
  bool Contains(int table) const;

  /// Returns the number of members.
  int Count() const;

  /// Returns true if the set is empty.
  bool Empty() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  /// Returns the union of this set and `other`.
  TableSet Union(const TableSet& other) const;

  /// Returns the intersection of this set and `other`.
  TableSet Intersect(const TableSet& other) const;

  /// Returns the members of this set that are not in `other`.
  TableSet Minus(const TableSet& other) const;

  /// Returns true if this set is a (non-strict) subset of `other`.
  bool IsSubsetOf(const TableSet& other) const;

  /// Returns true if the two sets share no member.
  bool DisjointWith(const TableSet& other) const;

  /// Returns the smallest member, or -1 if empty.
  int Min() const;

  /// Returns the largest member, or -1 if empty.
  int Max() const;

  /// Calls `fn(table)` for each member in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int w = 0; w < 4; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int bit = __builtin_ctzll(bits);
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Returns a stable hash of the set contents.
  size_t Hash() const;

  /// Returns e.g. "{0,3,7}" for debugging and test failure messages.
  std::string ToString() const;

  friend bool operator==(const TableSet& a, const TableSet& b) {
    return a.words_[0] == b.words_[0] && a.words_[1] == b.words_[1] &&
           a.words_[2] == b.words_[2] && a.words_[3] == b.words_[3];
  }
  friend bool operator!=(const TableSet& a, const TableSet& b) {
    return !(a == b);
  }

  /// A canonical total order on the bit representation. Exists so
  /// containers iterated into serialized bytes — checkpoints, wire
  /// frames, fingerprints — can sort TableSet keys into one deterministic
  /// order regardless of hash-map iteration order.
  friend bool operator<(const TableSet& a, const TableSet& b) {
    for (int w = 0; w < 4; ++w) {
      if (a.words_[w] != b.words_[w]) return a.words_[w] < b.words_[w];
    }
    return false;
  }

 private:
  uint64_t words_[4];
};

/// Hash functor for unordered containers keyed by TableSet.
struct TableSetHash {
  size_t operator()(const TableSet& s) const { return s.Hash(); }
};

}  // namespace moqo

#endif  // MOQO_COMMON_TABLE_SET_H_
