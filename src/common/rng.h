// Seeded random number generation.
//
// Every stochastic component of the library (random plan generation,
// simulated annealing moves, NSGA-II operators, workload generation) draws
// from an explicitly seeded Rng so that experiments are exactly reproducible.
#ifndef MOQO_COMMON_RNG_H_
#define MOQO_COMMON_RNG_H_

#include <cstdint>
#include <locale>
#include <random>
#include <sstream>
#include <string>

namespace moqo {

/// Deterministic pseudo-random source (Mersenne twister behind a small API).
class Rng {
 public:
  /// Constructs a generator from an explicit 64-bit seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Returns an integer uniform in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Returns a 64-bit integer uniform in [lo, hi] (inclusive).
  int64_t UniformInt64(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Returns a double uniform in [0, 1).
  double Uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Returns true with probability p (p clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Uniform01() < p;
  }

  /// Exposes the underlying engine for std::shuffle and distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Derives an independent child seed; useful to fan out deterministic
  /// sub-generators (e.g., one per test case) from a master seed.
  uint64_t Fork() { return engine_(); }

  /// Serializes the engine's exact stream position as text. The standard
  /// guarantees the iostream representation of mt19937_64 round-trips to an
  /// equal engine, so LoadState(SaveState()) continues the stream as if it
  /// was never interrupted — the property session checkpointing relies on.
  std::string SaveState() const {
    std::ostringstream out;
    // Engine state must round-trip between processes regardless of any
    // global locale (digit grouping would corrupt the numbers).
    out.imbue(std::locale::classic());
    out << engine_;
    return out.str();
  }

  /// Restores a SaveState() snapshot; returns false (leaving the engine
  /// unspecified) on malformed input.
  bool LoadState(const std::string& state) {
    std::istringstream in(state);
    in.imbue(std::locale::classic());
    in >> engine_;
    return !in.fail();
  }

 private:
  std::mt19937_64 engine_;
};

/// Combines experiment coordinates into a stable 64-bit seed.
inline uint64_t CombineSeed(uint64_t a, uint64_t b, uint64_t c = 0,
                            uint64_t d = 0) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (uint64_t v : {a, b, c, d}) {
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    h = (h ^ v) * 0xc4ceb9fe1a85ec53ull;
  }
  return h ^ (h >> 29);
}

}  // namespace moqo

#endif  // MOQO_COMMON_RNG_H_
