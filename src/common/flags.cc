#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace moqo {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
               !std::string(argv[i + 1]).empty() &&
               (isdigit(argv[i + 1][0]) || argv[i + 1][0] == '-')) {
      // `--name 42` style only for obviously-numeric values; otherwise treat
      // as boolean so `--verbose run_foo` does not swallow a positional arg.
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

std::vector<int> Flags::GetIntList(const std::string& name,
                                   const std::vector<int>& def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  std::vector<int> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atoi(item.c_str()));
  }
  return out.empty() ? def : out;
}

}  // namespace moqo
