#include "common/table_set.h"

#include <cassert>
#include <sstream>

namespace moqo {

TableSet TableSet::Singleton(int table) {
  TableSet s;
  s.Add(table);
  return s;
}

TableSet TableSet::FirstN(int n) {
  assert(n >= 0 && n <= kCapacity);
  TableSet s;
  for (int i = 0; i < n; ++i) s.Add(i);
  return s;
}

void TableSet::Add(int table) {
  assert(table >= 0 && table < kCapacity);
  words_[table >> 6] |= uint64_t{1} << (table & 63);
}

void TableSet::Remove(int table) {
  assert(table >= 0 && table < kCapacity);
  words_[table >> 6] &= ~(uint64_t{1} << (table & 63));
}

bool TableSet::Contains(int table) const {
  if (table < 0 || table >= kCapacity) return false;
  return (words_[table >> 6] >> (table & 63)) & 1;
}

int TableSet::Count() const {
  return __builtin_popcountll(words_[0]) + __builtin_popcountll(words_[1]) +
         __builtin_popcountll(words_[2]) + __builtin_popcountll(words_[3]);
}

TableSet TableSet::Union(const TableSet& other) const {
  TableSet r;
  for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] | other.words_[i];
  return r;
}

TableSet TableSet::Intersect(const TableSet& other) const {
  TableSet r;
  for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] & other.words_[i];
  return r;
}

TableSet TableSet::Minus(const TableSet& other) const {
  TableSet r;
  for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] & ~other.words_[i];
  return r;
}

bool TableSet::IsSubsetOf(const TableSet& other) const {
  for (int i = 0; i < 4; ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool TableSet::DisjointWith(const TableSet& other) const {
  for (int i = 0; i < 4; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

int TableSet::Min() const {
  for (int w = 0; w < 4; ++w) {
    if (words_[w] != 0) return w * 64 + __builtin_ctzll(words_[w]);
  }
  return -1;
}

int TableSet::Max() const {
  for (int w = 3; w >= 0; --w) {
    if (words_[w] != 0) return w * 64 + 63 - __builtin_clzll(words_[w]);
  }
  return -1;
}

size_t TableSet::Hash() const {
  // Mixes the four words with the 64-bit finalizer from MurmurHash3.
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (uint64_t w : words_) {
    uint64_t k = w * 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    h = (h ^ k) * 0x9e3779b97f4a7c15ull;
  }
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

std::string TableSet::ToString() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  ForEach([&](int t) {
    if (!first) out << ',';
    out << t;
    first = false;
  });
  out << '}';
  return out.str();
}

}  // namespace moqo
