// Deadline / stopwatch utilities shared by all anytime algorithms.
#ifndef MOQO_COMMON_DEADLINE_H_
#define MOQO_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace moqo {

/// Monotonic stopwatch measuring elapsed microseconds since construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Microseconds elapsed since construction / last Restart.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Milliseconds elapsed since construction / last Restart.
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Longest representable deadline window, in microseconds (~142 years).
/// AfterMicros()/AfterMillis() clamp their input into [0, this], so arming
/// a window can never overflow the clock's nanosecond representation, and
/// RemainingMicros() never exceeds it, so callers may add a remaining
/// window to a microsecond timestamp without risking signed overflow.
inline constexpr int64_t kMaxDeadlineMicros = int64_t{1} << 52;

/// A wall-clock budget: algorithms poll Expired() and stop when it is true.
///
/// A default-constructed Deadline never expires (useful for tests that run a
/// fixed number of iterations instead of a fixed time).
class Deadline {
 public:
  /// Never expires.
  Deadline() : has_deadline_(false) {}

  /// Expires `micros` microseconds after construction. The window is
  /// clamped into [0, kMaxDeadlineMicros]: a negative input (e.g. an
  /// admission-relative window computed by subtraction that went past due)
  /// is already expired, and a near-INT64_MAX input saturates instead of
  /// silently wrapping the underlying time_point.
  static Deadline AfterMicros(int64_t micros) {
    Deadline d;
    d.has_deadline_ = true;
    if (micros < 0) micros = 0;
    if (micros > kMaxDeadlineMicros) micros = kMaxDeadlineMicros;
    d.deadline_ = Clock::now() + std::chrono::microseconds(micros);
    return d;
  }

  /// Expires `millis` milliseconds after construction; clamped like
  /// AfterMicros (the millisecond-to-microsecond conversion saturates
  /// instead of overflowing for inputs beyond kMaxDeadlineMicros / 1000).
  static Deadline AfterMillis(int64_t millis) {
    if (millis >= kMaxDeadlineMicros / 1000) {
      return AfterMicros(kMaxDeadlineMicros);
    }
    return AfterMicros(millis <= 0 ? millis : millis * 1000);
  }

  /// Returns true once the budget is exhausted.
  bool Expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Microseconds remaining, in [0, kMaxDeadlineMicros]: 0 if expired,
  /// kMaxDeadlineMicros if unbounded. Safe to add to a microsecond
  /// timestamp (never INT64_MAX).
  int64_t RemainingMicros() const {
    if (!has_deadline_) return kMaxDeadlineMicros;
    auto rem = std::chrono::duration_cast<std::chrono::microseconds>(
                   deadline_ - Clock::now())
                   .count();
    if (rem <= 0) return 0;
    return rem > kMaxDeadlineMicros ? kMaxDeadlineMicros : rem;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_;
  Clock::time_point deadline_;
};

}  // namespace moqo

#endif  // MOQO_COMMON_DEADLINE_H_
