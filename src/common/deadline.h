// Deadline / stopwatch utilities shared by all anytime algorithms.
#ifndef MOQO_COMMON_DEADLINE_H_
#define MOQO_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace moqo {

/// Monotonic stopwatch measuring elapsed microseconds since construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Microseconds elapsed since construction / last Restart.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Milliseconds elapsed since construction / last Restart.
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget: algorithms poll Expired() and stop when it is true.
///
/// A default-constructed Deadline never expires (useful for tests that run a
/// fixed number of iterations instead of a fixed time).
class Deadline {
 public:
  /// Never expires.
  Deadline() : has_deadline_(false) {}

  /// Expires `micros` microseconds after construction.
  static Deadline AfterMicros(int64_t micros) {
    Deadline d;
    d.has_deadline_ = true;
    d.deadline_ = Clock::now() + std::chrono::microseconds(micros);
    return d;
  }

  /// Expires `millis` milliseconds after construction.
  static Deadline AfterMillis(int64_t millis) {
    return AfterMicros(millis * 1000);
  }

  /// Returns true once the budget is exhausted.
  bool Expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Microseconds remaining (0 if expired; a large value if unbounded).
  int64_t RemainingMicros() const {
    if (!has_deadline_) return INT64_MAX;
    auto rem = std::chrono::duration_cast<std::chrono::microseconds>(
                   deadline_ - Clock::now())
                   .count();
    return rem > 0 ? rem : 0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_;
  Clock::time_point deadline_;
};

}  // namespace moqo

#endif  // MOQO_COMMON_DEADLINE_H_
