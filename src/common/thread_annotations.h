// Clang Thread Safety Analysis annotations + annotated mutex wrappers.
//
// The macros below expand to Clang's thread-safety attributes when the
// compiler supports them and to nothing everywhere else, so the locking
// contracts they express are compile-checked on Clang (the CI
// static-analysis tier builds with -Wthread-safety promoted to -Werror)
// and free on GCC. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the model:
// a mutex is a "capability", GUARDED_BY names the capability a field
// needs, REQUIRES states that the caller must already hold it, and
// ACQUIRE/RELEASE describe functions that take or drop it.
//
// The analysis only understands types it can see the attributes on, so
// this header also provides drop-in annotated wrappers around the
// standard primitives:
//
//   * Mutex      — a CAPABILITY-annotated std::mutex.
//   * MutexLock  — a SCOPED_CAPABILITY std::unique_lock<std::mutex>;
//                  relockable (Unlock()/Lock()) for the wait-loop and
//                  run-outside-the-lock patterns, and exposes native()
//                  so CondVar can wait on it.
//   * CondVar    — std::condition_variable taking a MutexLock. Keeping
//                  condition_variable (not _any) means the wrappers add
//                  zero runtime cost over the raw primitives.
//
// Convention in this codebase: every mutex-protected field carries
// GUARDED_BY(mu_), every private *Locked() helper carries REQUIRES(mu_),
// and public entry points that take the lock carry EXCLUDES(mu_) so a
// re-entrant call is a compile error on Clang.
#ifndef MOQO_COMMON_THREAD_ANNOTATIONS_H_
#define MOQO_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define MOQO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MOQO_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares that a class models a capability (e.g. CAPABILITY("mutex")).
#define CAPABILITY(x) MOQO_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY MOQO_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding the named capability.
#define GUARDED_BY(x) MOQO_THREAD_ANNOTATION_(guarded_by(x))

/// Pointed-to data may only be accessed while holding the capability.
#define PT_GUARDED_BY(x) MOQO_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capabilities; the function does not release them.
#define REQUIRES(...) MOQO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define ACQUIRE(...) MOQO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases capabilities the caller held.
#define RELEASE(...) MOQO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  MOQO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (the function takes them itself;
/// re-entry would self-deadlock a non-recursive mutex).
#define EXCLUDES(...) MOQO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for odd control flow).
#define ASSERT_CAPABILITY(x) MOQO_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) MOQO_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Always pair with
/// a comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  MOQO_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace moqo {

/// std::mutex annotated as a capability so Clang can track who holds it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for interop (MutexLock builds a unique_lock on
  /// it). Direct locking through native() is invisible to the analysis —
  /// go through Mutex/MutexLock instead.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated so Clang knows the scope holds the
/// capability. Wraps std::unique_lock, so it supports the codebase's
/// unlock-work-relock pattern (Unlock()/Lock()) and condition-variable
/// waits (via native(), or just CondVar below).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (to run callbacks / join threads without
  /// holding it); pair with Lock() before touching guarded state again.
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

  /// The wrapped unique_lock, for std::condition_variable::wait. A wait
  /// releases and reacquires the mutex, which the analysis cannot see
  /// through native(); CondVar keeps that invisible transition safe by
  /// construction (the lock is held again when wait returns).
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over MutexLock. Waits take the annotated lock
/// so call sites stay inside the analysis; notify is annotation-free.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.native(), std::move(pred));
  }

  /// Returns pred() at wakeup (false means the wait timed out).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& d,
               Pred pred) {
    return cv_.wait_for(lock.native(), d, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace moqo

#endif  // MOQO_COMMON_THREAD_ANNOTATIONS_H_
