// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are reported but ignored so that bench binaries remain robust when
// invoked by generic runners.
#ifndef MOQO_COMMON_FLAGS_H_
#define MOQO_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace moqo {

/// Parsed command-line flags with typed accessors and defaults.
class Flags {
 public:
  /// Parses argv; positional (non `--`) arguments are collected separately.
  Flags(int argc, char** argv);

  /// Returns true if `--name` was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of `--name`, or `def` if absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Integer value of `--name`, or `def` if absent/unparsable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Double value of `--name`, or `def` if absent/unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean: `--name`, `--name=true/1` => true; `--name=false/0` => false.
  bool GetBool(const std::string& name, bool def) const;

  /// Comma-separated integer list, e.g. `--sizes=10,25,50`.
  std::vector<int> GetIntList(const std::string& name,
                              const std::vector<int>& def) const;

  /// Positional arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace moqo

#endif  // MOQO_COMMON_FLAGS_H_
