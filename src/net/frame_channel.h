// Frame transport: length-prefixed, CRC-checked byte frames over stream
// sockets (Unix-domain or loopback/remote TCP).
//
// This is the process-boundary substrate under the sharded service: the
// wire format (service/wire.h) defines *what* a task looks like in bytes,
// and a FrameChannel moves those byte strings between processes without
// tearing them. Each frame on the stream is
//
//   u32 magic ("MOQF")  u32 payload length  u32 CRC32(payload)  payload
//
// with all header fields little-endian. The CRC is verified before a frame
// is handed to the caller, so a flipped bit anywhere in the payload
// surfaces as kError at the transport — the layers above never parse
// corrupt bytes. (Wire task frames carry their own CRC too; the two checks
// guard different failure domains: the socket path here, storage and
// re-framing there.)
//
// Robustness contract:
//   * Send() and Recv() are partial-I/O-safe: short reads and short writes
//     (including the 1-byte-at-a-time worst case) are looped to completion,
//     and EINTR is retried. A test hook (set_io_chunk_limit) forces the
//     torn-I/O paths deterministically.
//   * Recv() keeps incremental state across calls: a frame that arrives
//     half inside one timeout window and half in the next is reassembled,
//     never dropped or misparsed.
//   * A peer that closes at a frame boundary yields kClosed; a close in
//     the middle of a frame — the signature of a killed process — yields
//     kError. Both mean "dead" to the failover machinery; the distinction
//     matters only for diagnostics.
//   * Recv() and Accept()/Connect take millisecond timeouts (-1 = block),
//     so a supervisor can bound how long a silent shard is trusted.
//
// Thread-safety: one concurrent sender plus one concurrent receiver per
// channel is supported — the two directions share no mutable state, down
// to the error strings (last_error() is the receive direction's,
// send_error() the send direction's). Multiple concurrent senders or
// receivers must be serialized by the caller; RemoteShard's send_mu_ is
// the canonical example.
#ifndef MOQO_NET_FRAME_CHANNEL_H_
#define MOQO_NET_FRAME_CHANNEL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace moqo {
namespace net {

/// First bytes of every frame header ("MOQF" little-endian).
inline constexpr uint32_t kFrameMagic = 0x46514f4du;

/// Refuse frames larger than this (a corrupt length field must not turn
/// into a multi-gigabyte allocation).
inline constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Frame header size: magic + length + CRC.
inline constexpr size_t kFrameHeaderBytes = 12;

/// Outcome of one transport operation.
enum class IoStatus {
  kOk,
  /// The timeout elapsed first. Recv() keeps any partial frame buffered;
  /// calling it again resumes where it left off.
  kTimeout,
  /// The peer closed cleanly at a frame boundary.
  kClosed,
  /// Transport failure: syscall error, EOF mid-frame (a killed peer), bad
  /// magic, oversized length, or CRC mismatch. See last_error().
  kError,
};

/// Serializes `payload` into header + payload frame bytes. Exposed so
/// tests can hand-craft torn or corrupted frames byte by byte.
std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& payload);

/// One framed stream connection. Move-only; owns (and closes) its fd.
class FrameChannel {
 public:
  /// Wraps a connected stream socket fd, taking ownership.
  explicit FrameChannel(int fd) : fd_(fd) {}
  FrameChannel() = default;
  ~FrameChannel() { Close(); }

  FrameChannel(FrameChannel&& other) noexcept { *this = std::move(other); }
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Writes one frame, looping over short writes. Returns kClosed if the
  /// peer is gone (EPIPE/ECONNRESET — never a SIGPIPE), kError on other
  /// failures or an unconnected channel.
  IoStatus Send(const std::vector<uint8_t>& payload);

  /// Reads one frame into `*payload`, waiting up to `timeout_ms`
  /// (-1 = indefinitely) for it to complete. Partial frames survive a
  /// kTimeout return and are completed by later calls. On kOk the payload
  /// has passed its CRC check.
  IoStatus Recv(std::vector<uint8_t>* payload, int timeout_ms);

  /// Closes the fd (idempotent). A blocked peer sees EOF. Not safe to
  /// call while another thread is inside Send()/Recv() on this channel —
  /// use Shutdown() for that (see below), and Close() after the other
  /// thread is joined.
  void Close();

  /// Shuts the socket down both ways without closing the fd: a thread
  /// blocked in Recv() (here or in the peer process) wakes with
  /// kClosed/kError, and later Send()s fail. Unlike Close() this is safe
  /// to call concurrently with Send()/Recv() on the same channel — the fd
  /// stays valid (no reuse hazard) and no channel state is written — so
  /// it is the way one thread unblocks another's receive loop during
  /// teardown. Idempotent.
  void Shutdown();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Human-readable reason of the last receive-direction kError/kClosed
  /// (Recv() and frame parsing). Owned by the receiver thread: a
  /// concurrent Send() failure never clobbers it.
  const std::string& last_error() const { return rx_error_; }

  /// Human-readable reason of the last Send() kError/kClosed. Owned by
  /// the sender thread, symmetric to last_error().
  const std::string& send_error() const { return tx_error_; }

  /// Test hook: caps every read/write syscall at `limit` bytes (0 =
  /// unlimited), forcing the partial-I/O reassembly paths.
  void set_io_chunk_limit(size_t limit) { chunk_limit_ = limit; }

  /// A connected socketpair of channels (for tests and in-process use).
  /// Returns false on syscall failure.
  static bool Pair(FrameChannel* a, FrameChannel* b);

 private:
  /// Appends up to `want` more bytes to rx_. Returns kOk if some arrived.
  IoStatus FillRx(size_t want, int timeout_ms);

  int fd_ = -1;
  size_t chunk_limit_ = 0;
  /// Per-direction error state: rx_error_ is written only under Recv()
  /// (receiver thread), tx_error_ only under Send() (sender thread). One
  /// merged string here would be the channel's only cross-direction write
  /// — a data race under the one-sender + one-receiver contract.
  std::string rx_error_;
  std::string tx_error_;
  /// Reassembly buffer of the frame currently being received: header
  /// first, then header + payload. Reset after each completed frame.
  std::vector<uint8_t> rx_;
  /// Parsed from the header once rx_ holds kFrameHeaderBytes.
  uint32_t rx_payload_len_ = 0;
  uint32_t rx_crc_ = 0;
  bool rx_have_header_ = false;
};

/// A listening socket producing FrameChannels. Move-only. A Unix-domain
/// listener unlinks its socket path on destruction.
class FrameListener {
 public:
  FrameListener() = default;
  ~FrameListener() { Close(); }
  FrameListener(FrameListener&& other) noexcept { *this = std::move(other); }
  FrameListener& operator=(FrameListener&& other) noexcept;
  FrameListener(const FrameListener&) = delete;
  FrameListener& operator=(const FrameListener&) = delete;

  /// Listens on a Unix-domain socket at `path` (unlinked first if stale).
  static std::optional<FrameListener> ListenUnix(const std::string& path,
                                                 std::string* error);

  /// Listens on loopback TCP `port` (0 = kernel-assigned; see port()).
  static std::optional<FrameListener> ListenTcp(uint16_t port,
                                                std::string* error);

  /// Accepts one connection, waiting up to `timeout_ms` (-1 = block).
  /// Returns std::nullopt on timeout or error (see last_error()).
  std::optional<FrameChannel> Accept(int timeout_ms);

  void Close();

  bool listening() const { return fd_ >= 0; }
  /// Bound TCP port (0 for Unix-domain listeners).
  uint16_t port() const { return port_; }
  const std::string& path() const { return path_; }
  const std::string& last_error() const { return last_error_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::string path_;
  std::string last_error_;
};

/// Connects to a Unix-domain socket, waiting up to `timeout_ms` for the
/// connection to be accepted. Returns std::nullopt (with a reason in
/// `*error` if non-null) on failure or timeout.
std::optional<FrameChannel> ConnectUnix(const std::string& path,
                                        int timeout_ms,
                                        std::string* error = nullptr);

/// Connects to `host:port` over TCP with a connect timeout.
std::optional<FrameChannel> ConnectTcp(const std::string& host,
                                       uint16_t port, int timeout_ms,
                                       std::string* error = nullptr);

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_FRAME_CHANNEL_H_
