#include "net/frame_channel.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "core/checkpoint.h"

namespace moqo {
namespace net {

namespace {

/// Monotonic milliseconds for timeout deadlines.
int64_t NowMillis() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// Milliseconds left until `deadline_ms` (-1 means never): the poll()
/// argument for the next wait.
int RemainingMs(int64_t deadline_ms) {
  if (deadline_ms < 0) return -1;
  int64_t left = deadline_ms - NowMillis();
  if (left <= 0) return 0;
  if (left > 1000000) return 1000000;
  return static_cast<int>(left);
}

int64_t DeadlineFrom(int timeout_ms) {
  return timeout_ms < 0 ? -1 : NowMillis() + timeout_ms;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

/// Marks `fd` (non-)blocking; returns false on fcntl failure.
bool SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return fcntl(fd, F_SETFL, flags) >= 0;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, kFrameMagic);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    chunk_limit_ = other.chunk_limit_;
    rx_error_ = std::move(other.rx_error_);
    tx_error_ = std::move(other.tx_error_);
    rx_ = std::move(other.rx_);
    rx_payload_len_ = other.rx_payload_len_;
    rx_crc_ = other.rx_crc_;
    rx_have_header_ = other.rx_have_header_;
  }
  return *this;
}

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameChannel::Shutdown() {
  // Deliberately leaves fd_ untouched: concurrent Send()/Recv() may be
  // mid-syscall on it (see header).
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

IoStatus FrameChannel::Send(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) {
    tx_error_ = "send on closed channel";
    return IoStatus::kError;
  }
  if (payload.size() > kMaxFramePayload) {
    tx_error_ = "frame payload exceeds kMaxFramePayload";
    return IoStatus::kError;
  }
  std::vector<uint8_t> frame = FrameBytes(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    size_t chunk = frame.size() - sent;
    if (chunk_limit_ > 0) chunk = std::min(chunk, chunk_limit_);
    // MSG_NOSIGNAL: a peer killed mid-stream must surface as EPIPE, not
    // take the whole router process down with SIGPIPE.
    ssize_t n = ::send(fd_, frame.data() + sent, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      tx_error_ = Errno("send");
      return (errno == EPIPE || errno == ECONNRESET) ? IoStatus::kClosed
                                                     : IoStatus::kError;
    }
    sent += static_cast<size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus FrameChannel::FillRx(size_t want, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return IoStatus::kTimeout;  // caller re-loops
    rx_error_ = Errno("poll");
    return IoStatus::kError;
  }
  if (ready == 0) return IoStatus::kTimeout;
  size_t chunk = want;
  if (chunk_limit_ > 0) chunk = std::min(chunk, chunk_limit_);
  size_t old = rx_.size();
  rx_.resize(old + chunk);
  ssize_t n = ::recv(fd_, rx_.data() + old, chunk, 0);
  if (n < 0) {
    rx_.resize(old);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kTimeout;
    }
    rx_error_ = Errno("recv");
    return IoStatus::kError;
  }
  if (n == 0) {
    rx_.resize(old);
    if (old == 0) {
      rx_error_ = "peer closed at frame boundary";
      return IoStatus::kClosed;
    }
    // EOF with a partial frame buffered: the peer died (or was killed)
    // mid-write. Never deliver the torn prefix.
    rx_error_ = "peer closed mid-frame (" + std::to_string(old) +
                " bytes of a partial frame buffered)";
    return IoStatus::kError;
  }
  rx_.resize(old + static_cast<size_t>(n));
  return IoStatus::kOk;
}

IoStatus FrameChannel::Recv(std::vector<uint8_t>* payload, int timeout_ms) {
  if (fd_ < 0) {
    rx_error_ = "recv on closed channel";
    return IoStatus::kError;
  }
  const int64_t deadline = DeadlineFrom(timeout_ms);
  for (;;) {
    // Phase 1: assemble the header.
    if (!rx_have_header_) {
      if (rx_.size() < kFrameHeaderBytes) {
        IoStatus st =
            FillRx(kFrameHeaderBytes - rx_.size(), RemainingMs(deadline));
        if (st == IoStatus::kTimeout && RemainingMs(deadline) == 0) return st;
        if (st != IoStatus::kOk && st != IoStatus::kTimeout) return st;
        continue;
      }
      uint32_t magic = GetU32(rx_.data());
      rx_payload_len_ = GetU32(rx_.data() + 4);
      rx_crc_ = GetU32(rx_.data() + 8);
      if (magic != kFrameMagic) {
        rx_error_ = "bad frame magic";
        return IoStatus::kError;
      }
      if (rx_payload_len_ > kMaxFramePayload) {
        rx_error_ = "frame length " + std::to_string(rx_payload_len_) +
                    " exceeds limit";
        return IoStatus::kError;
      }
      rx_have_header_ = true;
      rx_.reserve(kFrameHeaderBytes + rx_payload_len_);
    }
    // Phase 2: assemble the payload.
    size_t total = kFrameHeaderBytes + rx_payload_len_;
    if (rx_.size() < total) {
      IoStatus st = FillRx(total - rx_.size(), RemainingMs(deadline));
      if (st == IoStatus::kTimeout && RemainingMs(deadline) == 0) return st;
      if (st != IoStatus::kOk && st != IoStatus::kTimeout) return st;
      continue;
    }
    payload->assign(rx_.begin() + static_cast<long>(kFrameHeaderBytes),
                    rx_.end());
    rx_.clear();
    rx_have_header_ = false;
    if (Crc32(*payload) != rx_crc_) {
      payload->clear();
      rx_error_ = "frame CRC mismatch";
      return IoStatus::kError;
    }
    return IoStatus::kOk;
  }
}

bool FrameChannel::Pair(FrameChannel* a, FrameChannel* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  *a = FrameChannel(fds[0]);
  *b = FrameChannel(fds[1]);
  return true;
}

FrameListener& FrameListener::operator=(FrameListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    port_ = other.port_;
    path_ = std::move(other.path_);
    other.path_.clear();
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

void FrameListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

std::optional<FrameListener> FrameListener::ListenUnix(
    const std::string& path, std::string* error) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (path.size() >= sizeof(addr.sun_path)) {
    SetError(error, "unix socket path too long: " + path);
    return std::nullopt;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, Errno("socket"));
    return std::nullopt;
  }
  ::unlink(path.c_str());  // stale socket from a previous (killed) run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 8) != 0) {
    SetError(error, Errno("bind/listen " + path));
    ::close(fd);
    return std::nullopt;
  }
  FrameListener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

std::optional<FrameListener> FrameListener::ListenTcp(uint16_t port,
                                                      std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, Errno("socket"));
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 8) != 0) {
    SetError(error, Errno("bind/listen port " + std::to_string(port)));
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    SetError(error, Errno("getsockname"));
    ::close(fd);
    return std::nullopt;
  }
  FrameListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<FrameChannel> FrameListener::Accept(int timeout_ms) {
  if (fd_ < 0) {
    last_error_ = "accept on closed listener";
    return std::nullopt;
  }
  const int64_t deadline = DeadlineFrom(timeout_ms);
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      last_error_ = Errno("poll");
      return std::nullopt;
    }
    if (ready == 0) {
      last_error_ = "accept timed out";
      return std::nullopt;
    }
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      last_error_ = Errno("accept");
      return std::nullopt;
    }
    return FrameChannel(fd);
  }
}

namespace {

/// Shared tail of the connect helpers: non-blocking connect on `fd` to
/// `addr`, waiting up to `timeout_ms` for completion.
std::optional<FrameChannel> ConnectWithTimeout(int fd,
                                               const struct sockaddr* addr,
                                               socklen_t addr_len,
                                               int timeout_ms,
                                               const std::string& target,
                                               std::string* error) {
  if (!SetNonBlocking(fd, true)) {
    SetError(error, Errno("fcntl " + target));
    ::close(fd);
    return std::nullopt;
  }
  int rc = ::connect(fd, addr, addr_len);
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    SetError(error, Errno("connect " + target));
    ::close(fd);
    return std::nullopt;
  }
  if (rc != 0) {
    const int64_t deadline = DeadlineFrom(timeout_ms);
    for (;;) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int ready = ::poll(&pfd, 1, RemainingMs(deadline));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) {
        SetError(error, "connect " + target + " timed out");
        ::close(fd);
        return std::nullopt;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        SetError(error, "connect " + target + ": " +
                            std::strerror(so_error != 0 ? so_error : errno));
        ::close(fd);
        return std::nullopt;
      }
      break;
    }
  }
  if (!SetNonBlocking(fd, false)) {
    SetError(error, Errno("fcntl " + target));
    ::close(fd);
    return std::nullopt;
  }
  return FrameChannel(fd);
}

}  // namespace

std::optional<FrameChannel> ConnectUnix(const std::string& path,
                                        int timeout_ms, std::string* error) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (path.size() >= sizeof(addr.sun_path)) {
    SetError(error, "unix socket path too long: " + path);
    return std::nullopt;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, Errno("socket"));
    return std::nullopt;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  return ConnectWithTimeout(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr), timeout_ms, path, error);
}

std::optional<FrameChannel> ConnectTcp(const std::string& host,
                                       uint16_t port, int timeout_ms,
                                       std::string* error) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    SetError(error, "unparsable IPv4 address: " + host);
    return std::nullopt;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, Errno("socket"));
    return std::nullopt;
  }
  int one = 1;
  // Frames are small request/response messages; never batch them.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return ConnectWithTimeout(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr), timeout_ms,
                            host + ":" + std::to_string(port), error);
}

}  // namespace net
}  // namespace moqo
