// Synthetic table data honoring a query's statistics.
//
// The paper evaluates optimizers against cost models only; a downstream
// user additionally wants to *run* the chosen plan. Dataset materializes
// base tables consistent with a query's catalog and join graph: each table
// gets (a scaled-down multiple of) its catalog cardinality in rows, and
// for every join predicate (a, b, sel) both endpoint tables carry a join
// key column drawn uniformly from a domain of size ~1/sel, so the expected
// fraction of the cross product matching the predicate equals the
// catalog's selectivity. Executing a plan over the dataset therefore
// yields result sizes close to the optimizer's cardinality estimates
// (validated by exec tests and bench/ext_executor_validation).
#ifndef MOQO_EXEC_DATASET_H_
#define MOQO_EXEC_DATASET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "query/query.h"

namespace moqo {

/// Materialized rows of one base table: one join-key column per incident
/// join predicate (keyed by the edge's index in the join graph).
struct TableData {
  int num_rows = 0;
  std::unordered_map<int, std::vector<int64_t>> key_columns;
};

/// Synthetic database instance for a query.
class Dataset {
 public:
  /// Materializes tables for `query`. Row counts are the catalog
  /// cardinalities scaled by `scale` and clamped to [1, max_rows] (keeps
  /// generation and execution tractable for large catalogs; scaling every
  /// table by the same factor preserves relative plan quality).
  Dataset(QueryPtr query, Rng* rng, double scale = 1.0,
          int max_rows = 100000);

  /// Rows and key columns of table `t`.
  const TableData& table(int t) const {
    return tables_[static_cast<size_t>(t)];
  }

  /// The query this instance was generated for.
  const Query& query() const { return *query_; }

  /// Key-domain size used for join-graph edge `e` (~ 1 / selectivity).
  int64_t DomainOf(int edge) const {
    return domains_[static_cast<size_t>(edge)];
  }

  /// Effective row count of table `t` (after scaling and clamping).
  int RowsOf(int t) const { return table(t).num_rows; }

 private:
  QueryPtr query_;
  std::vector<TableData> tables_;
  std::vector<int64_t> domains_;
};

}  // namespace moqo

#endif  // MOQO_EXEC_DATASET_H_
