#include "exec/dataset.h"

#include <algorithm>
#include <cmath>

namespace moqo {

Dataset::Dataset(QueryPtr query, Rng* rng, double scale, int max_rows)
    : query_(std::move(query)) {
  const int n = query_->NumTables();
  tables_.resize(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    double rows = query_->catalog().Cardinality(t) * scale;
    tables_[static_cast<size_t>(t)].num_rows = static_cast<int>(
        std::clamp(rows, 1.0, static_cast<double>(max_rows)));
  }

  const auto& edges = query_->graph().Edges();
  domains_.resize(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    const JoinEdge& edge = edges[e];
    // Matching probability for two uniform keys over a domain of size D is
    // 1/D; pick D ~ 1/selectivity.
    double d = std::clamp(1.0 / std::max(edge.selectivity, 1e-12), 1.0, 1e15);
    int64_t domain = static_cast<int64_t>(std::llround(d));
    domains_[e] = std::max<int64_t>(1, domain);
    for (int endpoint : {edge.left, edge.right}) {
      TableData& data = tables_[static_cast<size_t>(endpoint)];
      std::vector<int64_t>& column =
          data.key_columns[static_cast<int>(e)];
      column.resize(static_cast<size_t>(data.num_rows));
      for (int64_t& key : column) {
        key = rng->UniformInt64(0, domains_[e] - 1);
      }
    }
  }
}

}  // namespace moqo
