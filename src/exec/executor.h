// Plan execution over synthetic datasets.
//
// Executes a physical plan produced by any optimizer in this library
// against a Dataset, dispatching on each node's physical operator:
// nested-loop and block-nested-loop joins run the quadratic algorithm,
// hash joins build and probe a hash table on the crossing join keys, and
// sort-merge joins sort both inputs and merge. Join predicates are
// conjunctions of key equalities over all join-graph edges crossing the
// operand table sets; operand pairs connected by no edge execute as cross
// products (the paper's unconstrained bushy space allows them).
//
// Results are materialized as row-index tuples (one base-table row index
// per joined table), so every operator must produce the same multiset of
// result tuples for the same operand results — a strong correctness
// oracle exercised by the exec tests.
#ifndef MOQO_EXEC_EXECUTOR_H_
#define MOQO_EXEC_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/dataset.h"
#include "plan/plan.h"

namespace moqo {

/// Materialized (intermediate) result: `tables` lists the joined table ids
/// in increasing order; every entry of `rows` holds one base-table row
/// index per joined table, aligned with `tables`.
struct ResultSet {
  std::vector<int> tables;
  std::vector<std::vector<int32_t>> rows;

  /// Number of result tuples.
  int64_t NumRows() const { return static_cast<int64_t>(rows.size()); }
};

/// Counters accumulated while executing one plan.
struct ExecStats {
  /// Tuples produced at the plan root.
  int64_t rows_out = 0;
  /// Join-predicate evaluations plus hash probes (work proxy).
  int64_t comparisons = 0;
  /// Largest intermediate result materialized.
  int64_t max_intermediate = 0;
};

/// Executes plans against one dataset.
class Executor {
 public:
  /// `max_intermediate_rows` aborts runaway plans (e.g. huge cross
  /// products) before they exhaust memory.
  explicit Executor(const Dataset* dataset,
                    int64_t max_intermediate_rows = 5000000);

  /// Runs `plan`; returns std::nullopt if an intermediate result would
  /// exceed the configured cap.
  std::optional<ResultSet> Execute(const PlanPtr& plan,
                                   ExecStats* stats = nullptr);

 private:
  const Dataset* dataset_;
  int64_t max_intermediate_rows_;
};

/// Canonicalizes a result set (sorts rows) so two results can be compared
/// for multiset equality; exposed for tests.
void Canonicalize(ResultSet* result);

/// True if `a` and `b` join the same tables and contain the same multiset
/// of row tuples.
bool SameResult(const ResultSet& a, const ResultSet& b);

}  // namespace moqo

#endif  // MOQO_EXEC_EXECUTOR_H_
