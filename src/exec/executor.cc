#include "exec/executor.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace moqo {

namespace {

// Index of table `t` within result.tables, or -1.
int ColumnOf(const ResultSet& result, int t) {
  for (size_t i = 0; i < result.tables.size(); ++i) {
    if (result.tables[i] == t) return static_cast<int>(i);
  }
  return -1;
}

// One equality predicate crossing the operands: compare the key of edge
// `edge` on `left_column` of the outer result against `right_column` of
// the inner result.
struct CrossingPredicate {
  int edge = 0;
  int left_table = 0;
  int right_table = 0;
  int left_column = 0;
  int right_column = 0;
};

std::vector<CrossingPredicate> CrossingPredicates(const Dataset& dataset,
                                                  const ResultSet& left,
                                                  const ResultSet& right) {
  std::vector<CrossingPredicate> predicates;
  const auto& edges = dataset.query().graph().Edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    int a = edges[e].left;
    int b = edges[e].right;
    int la = ColumnOf(left, a);
    int lb = ColumnOf(left, b);
    int ra = ColumnOf(right, a);
    int rb = ColumnOf(right, b);
    if (la >= 0 && rb >= 0) {
      predicates.push_back({static_cast<int>(e), a, b, la, rb});
    } else if (lb >= 0 && ra >= 0) {
      predicates.push_back({static_cast<int>(e), b, a, lb, ra});
    }
  }
  return predicates;
}

int64_t KeyOf(const Dataset& dataset, int table, int edge, int32_t row) {
  const auto& column = dataset.table(table).key_columns.at(edge);
  return column[static_cast<size_t>(row)];
}

// Composite key of one result row under the given predicates (left side).
uint64_t HashKeyLeft(const Dataset& dataset,
                     const std::vector<CrossingPredicate>& preds,
                     const std::vector<int32_t>& row) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const CrossingPredicate& p : preds) {
    uint64_t k = static_cast<uint64_t>(
        KeyOf(dataset, p.left_table, p.edge,
              row[static_cast<size_t>(p.left_column)]));
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    h = (h ^ k) * 0xc4ceb9fe1a85ec53ull;
  }
  return h;
}

uint64_t HashKeyRight(const Dataset& dataset,
                      const std::vector<CrossingPredicate>& preds,
                      const std::vector<int32_t>& row) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const CrossingPredicate& p : preds) {
    uint64_t k = static_cast<uint64_t>(
        KeyOf(dataset, p.right_table, p.edge,
              row[static_cast<size_t>(p.right_column)]));
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    h = (h ^ k) * 0xc4ceb9fe1a85ec53ull;
  }
  return h;
}

bool Matches(const Dataset& dataset,
             const std::vector<CrossingPredicate>& preds,
             const std::vector<int32_t>& left_row,
             const std::vector<int32_t>& right_row, ExecStats* stats) {
  if (stats != nullptr) ++stats->comparisons;
  for (const CrossingPredicate& p : preds) {
    int64_t lk = KeyOf(dataset, p.left_table, p.edge,
                       left_row[static_cast<size_t>(p.left_column)]);
    int64_t rk = KeyOf(dataset, p.right_table, p.edge,
                       right_row[static_cast<size_t>(p.right_column)]);
    if (lk != rk) return false;
  }
  return true;
}

// Concatenates left and right row tuples into the output schema.
std::vector<int32_t> Combine(const ResultSet& left, const ResultSet& right,
                             const std::vector<int>& out_tables,
                             const std::vector<int32_t>& lrow,
                             const std::vector<int32_t>& rrow) {
  std::vector<int32_t> out(out_tables.size());
  for (size_t i = 0; i < out_tables.size(); ++i) {
    int lcol = ColumnOf(left, out_tables[i]);
    if (lcol >= 0) {
      out[i] = lrow[static_cast<size_t>(lcol)];
    } else {
      int rcol = ColumnOf(right, out_tables[i]);
      assert(rcol >= 0);
      out[i] = rrow[static_cast<size_t>(rcol)];
    }
  }
  return out;
}

// Sort-key for sort-merge join: the tuple of crossing-edge keys.
std::vector<int64_t> SortKeyLeft(const Dataset& dataset,
                                 const std::vector<CrossingPredicate>& preds,
                                 const std::vector<int32_t>& row) {
  std::vector<int64_t> key;
  key.reserve(preds.size());
  for (const CrossingPredicate& p : preds) {
    key.push_back(KeyOf(dataset, p.left_table, p.edge,
                        row[static_cast<size_t>(p.left_column)]));
  }
  return key;
}

std::vector<int64_t> SortKeyRight(const Dataset& dataset,
                                  const std::vector<CrossingPredicate>& preds,
                                  const std::vector<int32_t>& row) {
  std::vector<int64_t> key;
  key.reserve(preds.size());
  for (const CrossingPredicate& p : preds) {
    key.push_back(KeyOf(dataset, p.right_table, p.edge,
                        row[static_cast<size_t>(p.right_column)]));
  }
  return key;
}

}  // namespace

Executor::Executor(const Dataset* dataset, int64_t max_intermediate_rows)
    : dataset_(dataset), max_intermediate_rows_(max_intermediate_rows) {}

std::optional<ResultSet> Executor::Execute(const PlanPtr& plan,
                                           ExecStats* stats) {
  if (!plan->IsJoin()) {
    // Scans materialize the identity row list; an index scan delivers rows
    // in key order, which is irrelevant for multiset results but mirrors
    // the sorted output representation.
    ResultSet result;
    result.tables = {plan->table()};
    int rows = dataset_->RowsOf(plan->table());
    result.rows.reserve(static_cast<size_t>(rows));
    for (int32_t r = 0; r < rows; ++r) result.rows.push_back({r});
    if (stats != nullptr) {
      stats->max_intermediate =
          std::max(stats->max_intermediate, result.NumRows());
      stats->rows_out = result.NumRows();
    }
    return result;
  }

  std::optional<ResultSet> left = Execute(plan->outer(), stats);
  if (!left.has_value()) return std::nullopt;
  std::optional<ResultSet> right = Execute(plan->inner(), stats);
  if (!right.has_value()) return std::nullopt;

  std::vector<CrossingPredicate> preds =
      CrossingPredicates(*dataset_, *left, *right);

  ResultSet out;
  plan->rel().ForEach([&](int t) { out.tables.push_back(t); });

  auto emit = [&](const std::vector<int32_t>& lrow,
                  const std::vector<int32_t>& rrow) {
    out.rows.push_back(Combine(*left, *right, out.tables, lrow, rrow));
    return static_cast<int64_t>(out.rows.size()) <= max_intermediate_rows_;
  };

  bool ok = true;
  switch (plan->join_op()) {
    case JoinAlgorithm::kHashSmall:
    case JoinAlgorithm::kHashMedium:
    case JoinAlgorithm::kHashLarge: {
      if (preds.empty()) {
        // Cross product: no keys to hash; fall through to nested loops.
        for (const auto& lrow : left->rows) {
          for (const auto& rrow : right->rows) {
            if (stats != nullptr) ++stats->comparisons;
            if (!emit(lrow, rrow)) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
        break;
      }
      // Build on the left (outer) input, probe with the right.
      std::unordered_multimap<uint64_t, const std::vector<int32_t>*> table;
      table.reserve(left->rows.size());
      for (const auto& lrow : left->rows) {
        table.emplace(HashKeyLeft(*dataset_, preds, lrow), &lrow);
      }
      for (const auto& rrow : right->rows) {
        auto [begin, end] =
            table.equal_range(HashKeyRight(*dataset_, preds, rrow));
        for (auto it = begin; it != end && ok; ++it) {
          if (Matches(*dataset_, preds, *it->second, rrow, stats)) {
            if (!emit(*it->second, rrow)) ok = false;
          }
        }
        if (!ok) break;
      }
      break;
    }
    case JoinAlgorithm::kSortMergeSmall:
    case JoinAlgorithm::kSortMergeLarge: {
      if (preds.empty()) {
        for (const auto& lrow : left->rows) {
          for (const auto& rrow : right->rows) {
            if (stats != nullptr) ++stats->comparisons;
            if (!emit(lrow, rrow)) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
        break;
      }
      // Sort row indices of both inputs by their composite keys, merge.
      auto make_order = [&](const ResultSet& side, bool is_left) {
        std::vector<
            std::pair<std::vector<int64_t>, const std::vector<int32_t>*>>
            order;
        order.reserve(side.rows.size());
        for (const auto& row : side.rows) {
          order.emplace_back(is_left ? SortKeyLeft(*dataset_, preds, row)
                                     : SortKeyRight(*dataset_, preds, row),
                             &row);
        }
        std::sort(
            order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        return order;
      };
      auto lorder = make_order(*left, true);
      auto rorder = make_order(*right, false);
      size_t i = 0;
      size_t j = 0;
      while (i < lorder.size() && j < rorder.size() && ok) {
        if (stats != nullptr) ++stats->comparisons;
        if (lorder[i].first < rorder[j].first) {
          ++i;
        } else if (rorder[j].first < lorder[i].first) {
          ++j;
        } else {
          // Equal key groups: emit the cross product of the two groups.
          size_t i_end = i;
          while (i_end < lorder.size() &&
                 lorder[i_end].first == lorder[i].first) {
            ++i_end;
          }
          size_t j_end = j;
          while (j_end < rorder.size() &&
                 rorder[j_end].first == rorder[j].first) {
            ++j_end;
          }
          for (size_t a = i; a < i_end && ok; ++a) {
            for (size_t b = j; b < j_end && ok; ++b) {
              if (!emit(*lorder[a].second, *rorder[b].second)) ok = false;
            }
          }
          i = i_end;
          j = j_end;
        }
      }
      break;
    }
    case JoinAlgorithm::kNestedLoop:
    case JoinAlgorithm::kBlockNestedLoopSmall:
    case JoinAlgorithm::kBlockNestedLoopLarge: {
      for (const auto& lrow : left->rows) {
        for (const auto& rrow : right->rows) {
          if (Matches(*dataset_, preds, lrow, rrow, stats)) {
            if (!emit(lrow, rrow)) {
              ok = false;
              break;
            }
          }
        }
        if (!ok) break;
      }
      break;
    }
  }
  if (!ok) return std::nullopt;

  if (stats != nullptr) {
    stats->max_intermediate = std::max(stats->max_intermediate, out.NumRows());
    stats->rows_out = out.NumRows();
  }
  return out;
}

void Canonicalize(ResultSet* result) {
  std::sort(result->rows.begin(), result->rows.end());
}

bool SameResult(const ResultSet& a, const ResultSet& b) {
  if (a.tables != b.tables) return false;
  ResultSet ca = a;
  ResultSet cb = b;
  Canonicalize(&ca);
  Canonicalize(&cb);
  return ca.rows == cb.rows;
}

}  // namespace moqo
