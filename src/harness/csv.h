// CSV rendering of experiment results, for plotting the paper's figures
// with external tooling (pandas, gnuplot, ...).
#ifndef MOQO_HARNESS_CSV_H_
#define MOQO_HARNESS_CSV_H_

#include <iosfwd>

#include "harness/experiment.h"

namespace moqo {

/// Writes one row per (graph, size, algorithm, checkpoint):
///   graph,tables,algorithm,time_ms,median_alpha
/// Infinite alphas are rendered as the string "inf".
void WriteExperimentCsv(const ExperimentResult& result, std::ostream& out);

}  // namespace moqo

#endif  // MOQO_HARNESS_CSV_H_
