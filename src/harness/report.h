// Paper-style text rendering of experiment results.
#ifndef MOQO_HARNESS_REPORT_H_
#define MOQO_HARNESS_REPORT_H_

#include <iosfwd>
#include <string>

#include "harness/experiment.h"

namespace moqo {

/// Formats an alpha value the way the paper's log-scale axes read: "1.02",
/// "1e6", "1e40", or "inf" when no plan was produced.
std::string FormatAlpha(double alpha);

/// Prints one table per (graph, size) cell: rows are checkpoints, columns
/// are algorithms, entries are median alpha approximation errors; followed
/// by a winner summary per cell.
void PrintExperiment(const ExperimentResult& result, std::ostream& out);

}  // namespace moqo

#endif  // MOQO_HARNESS_REPORT_H_
