// Experiment runner reproducing the paper's evaluation methodology
// (Section 6.1):
//
//  * random queries per (join graph structure, query size) cell;
//  * per test case, l cost metrics drawn uniformly from {time, buffer,
//    disk};
//  * every algorithm runs on the same queries with the same time budget;
//  * quality = the lowest alpha such that the produced plan set is an
//    alpha-approximate Pareto set of a reference frontier;
//  * the reference frontier is the Pareto-filtered union of all
//    algorithms' final outputs (large queries, Figures 1-7) or a DP(1.01)
//    frontier with formal guarantees (small queries, Figures 8-9);
//  * reported values are medians over the test cases of a cell, sampled at
//    regular time checkpoints.
#ifndef MOQO_HARNESS_EXPERIMENT_H_
#define MOQO_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/suite.h"
#include "query/generator.h"

namespace moqo {

/// How the reference frontier of a test case is obtained.
enum class ReferenceMode {
  /// Pareto-filtered union of all algorithms' final frontiers.
  kUnionOfFinal,
  /// DP with a small alpha (falls back to union if DP cannot finish).
  kDpReference,
};

/// Full description of one experiment (one paper figure).
struct ExperimentConfig {
  std::string title;
  std::vector<GraphType> graphs = {GraphType::kChain, GraphType::kCycle,
                                   GraphType::kStar};
  std::vector<int> sizes = {10, 25, 50};
  int num_metrics = 2;
  int queries_per_point = 3;
  SelectivityModel selectivity = SelectivityModel::kSteinbrunn;
  int64_t timeout_ms = 100;
  /// Number of equally spaced measurement checkpoints within the timeout.
  int num_checkpoints = 6;
  uint64_t seed = 42;
  ReferenceMode reference = ReferenceMode::kUnionOfFinal;
  /// Alpha and budget for the DP reference (ReferenceMode::kDpReference).
  double dp_reference_alpha = 1.01;
  int64_t dp_reference_timeout_ms = 5000;
  /// If > 1, reported alphas are clipped to this value (the paper clips
  /// Figures 6-9 plots to visualize the competitive range).
  double clip_alpha = 0.0;
};

/// Median-alpha series of one algorithm within one cell.
struct CellSeries {
  std::string algorithm;
  /// Median alpha at each checkpoint; +infinity when the algorithm had not
  /// produced any plan yet for at least half the test cases.
  std::vector<double> median_alpha;
};

/// Results for one (graph structure, query size) cell.
struct CellResult {
  GraphType graph = GraphType::kChain;
  int size = 0;
  std::vector<CellSeries> series;
};

/// Results of a full experiment.
struct ExperimentResult {
  ExperimentConfig config;
  /// Measurement times (microseconds since optimizer start).
  std::vector<int64_t> checkpoint_micros;
  std::vector<CellResult> cells;
};

/// Runs `config` over `algorithms` and collects median alpha-error series.
/// Progress lines are written to stderr.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const std::vector<AlgorithmSpec>& algorithms);

/// Draws `l` distinct metrics uniformly from the default pool, matching the
/// paper's per-test-case metric selection. Exposed for tests.
std::vector<Metric> SampleMetrics(int l, Rng* rng);

/// Median of a vector (+infinity entries participate; empty -> +infinity).
double Median(std::vector<double> values);

}  // namespace moqo

#endif  // MOQO_HARNESS_EXPERIMENT_H_
