// Algorithm suites used by the paper's evaluation.
#ifndef MOQO_HARNESS_SUITE_H_
#define MOQO_HARNESS_SUITE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"

namespace moqo {

/// A named optimizer factory; experiments instantiate one optimizer per
/// (query, algorithm) pair so runs never share internal state.
struct AlgorithmSpec {
  std::string name;
  std::function<std::unique_ptr<Optimizer>()> make;
};

/// The full suite of Figures 1-2 and 4-9: DP(Infinity), DP(1000), DP(2),
/// SA, 2P, NSGA-II, II, RMQ.
std::vector<AlgorithmSpec> StandardSuite();

/// Only the randomized algorithms: SA, 2P, NSGA-II, II, RMQ.
std::vector<AlgorithmSpec> RandomizedSuite();

/// Looks up a spec by name from either suite ("RMQ", "II", "SA", "2P",
/// "NSGA-II", "DP(2)", ...); returns nullptr-make spec if unknown.
AlgorithmSpec SpecByName(const std::string& name);

}  // namespace moqo

#endif  // MOQO_HARNESS_SUITE_H_
