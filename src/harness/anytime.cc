#include "harness/anytime.h"

#include <algorithm>

namespace moqo {

AnytimeCallback AnytimeRecorder::MakeCallback() {
  return [this](const std::vector<PlanPtr>& plans) { Record(plans); };
}

void AnytimeRecorder::RecordFinal(const std::vector<PlanPtr>& plans) {
  Record(plans);
}

void AnytimeRecorder::Record(const std::vector<PlanPtr>& plans) {
  FrontierSnapshot snap;
  snap.elapsed_micros = watch_.ElapsedMicros();
  snap.frontier.reserve(plans.size());
  for (const PlanPtr& p : plans) snap.frontier.push_back(p->cost());
  // Skip storing if identical in size and content to the previous snapshot
  // (optimizers may report unchanged frontiers).
  if (!snapshots_.empty()) {
    const auto& prev = snapshots_.back().frontier;
    if (prev.size() == snap.frontier.size()) {
      bool same = true;
      for (size_t i = 0; i < prev.size() && same; ++i) {
        same = prev[i].EqualTo(snap.frontier[i]);
      }
      if (same) return;
    }
  }
  snapshots_.push_back(std::move(snap));
}

std::vector<CostVector> AnytimeRecorder::FrontierAt(
    int64_t elapsed_micros) const {
  std::vector<CostVector> result;
  for (const FrontierSnapshot& snap : snapshots_) {
    if (snap.elapsed_micros > elapsed_micros) break;
    result = snap.frontier;
  }
  return result;
}

std::vector<CostVector> AnytimeRecorder::FinalFrontier() const {
  return snapshots_.empty() ? std::vector<CostVector>{}
                            : snapshots_.back().frontier;
}

std::vector<PlanPtr> StepAndRecord(OptimizerSession* session,
                                   const Deadline& deadline,
                                   AnytimeRecorder* recorder) {
  // RunSession invokes the callback between steps, so every snapshot lands
  // on an exact work-slice boundary; the trailing record covers sessions
  // whose last steps reported no change (Record dedups if it did).
  std::vector<PlanPtr> frontier =
      RunSession(session, deadline, recorder->MakeCallback());
  recorder->RecordFinal(frontier);
  return frontier;
}

}  // namespace moqo
