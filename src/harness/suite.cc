#include "harness/suite.h"

#include <limits>

#include "baselines/dp.h"
#include "baselines/iterative_improvement.h"
#include "baselines/nsga2.h"
#include "baselines/simulated_annealing.h"
#include "baselines/two_phase.h"
#include "core/rmq.h"

namespace moqo {

namespace {

AlgorithmSpec DpSpec(double alpha) {
  DpConfig config;
  config.alpha = alpha;
  DpOptimizer probe(config);
  return {probe.name(),
          [config] { return std::make_unique<DpOptimizer>(config); }};
}

}  // namespace

std::vector<AlgorithmSpec> RandomizedSuite() {
  return {
      {"SA", [] { return std::make_unique<SimulatedAnnealing>(); }},
      {"2P", [] { return std::make_unique<TwoPhase>(); }},
      {"NSGA-II", [] { return std::make_unique<Nsga2>(); }},
      {"II", [] { return std::make_unique<IterativeImprovement>(); }},
      {"RMQ", [] { return std::make_unique<Rmq>(); }},
  };
}

std::vector<AlgorithmSpec> StandardSuite() {
  std::vector<AlgorithmSpec> suite = {
      DpSpec(std::numeric_limits<double>::infinity()),
      DpSpec(1000.0),
      DpSpec(2.0),
  };
  for (AlgorithmSpec& spec : RandomizedSuite()) {
    suite.push_back(std::move(spec));
  }
  return suite;
}

AlgorithmSpec SpecByName(const std::string& name) {
  for (AlgorithmSpec& spec : StandardSuite()) {
    if (spec.name == name) return spec;
  }
  return {name, nullptr};
}

}  // namespace moqo
