#include "harness/csv.h"

#include <cmath>
#include <ostream>

namespace moqo {

void WriteExperimentCsv(const ExperimentResult& result, std::ostream& out) {
  out << "graph,tables,algorithm,time_ms,median_alpha\n";
  for (const CellResult& cell : result.cells) {
    for (const CellSeries& series : cell.series) {
      for (size_t c = 0; c < result.checkpoint_micros.size(); ++c) {
        out << ToString(cell.graph) << ',' << cell.size << ','
            << series.algorithm << ',' << result.checkpoint_micros[c] / 1000
            << ',';
        double alpha = series.median_alpha[c];
        if (std::isinf(alpha)) {
          out << "inf";
        } else {
          out << alpha;
        }
        out << '\n';
      }
    }
  }
}

}  // namespace moqo
