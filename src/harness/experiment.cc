#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "baselines/dp.h"
#include "harness/anytime.h"
#include "pareto/epsilon_indicator.h"
#include "plan/plan_factory.h"

namespace moqo {

std::vector<Metric> SampleMetrics(int l, Rng* rng) {
  std::vector<Metric> pool = DefaultMetricPool();
  std::shuffle(pool.begin(), pool.end(), rng->engine());
  if (l > static_cast<int>(pool.size())) l = static_cast<int>(pool.size());
  pool.resize(static_cast<size_t>(l));
  return pool;
}

double Median(std::vector<double> values) {
  if (values.empty()) return std::numeric_limits<double>::infinity();
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  // With +inf entries the arithmetic mean can be inf; that is intended.
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

namespace {

// Per-algorithm alpha series of one test case.
struct CaseResult {
  std::vector<std::vector<double>> alphas;  // [algorithm][checkpoint]
};

CaseResult RunOneCase(const ExperimentConfig& config,
                      const std::vector<AlgorithmSpec>& algorithms,
                      GraphType graph, int size, int case_index,
                      const std::vector<int64_t>& checkpoints) {
  // Deterministic per-case seeds.
  uint64_t case_seed = CombineSeed(config.seed, static_cast<uint64_t>(graph),
                                   static_cast<uint64_t>(size),
                                   static_cast<uint64_t>(case_index));
  Rng gen_rng(case_seed);

  GeneratorConfig gen;
  gen.num_tables = size;
  gen.graph_type = graph;
  gen.selectivity_model = config.selectivity;
  QueryPtr query = GenerateQuery(gen, &gen_rng);

  CostModel cost_model(SampleMetrics(config.num_metrics, &gen_rng));
  PlanFactory factory(query, &cost_model);

  // Run every algorithm on the same query with its own RNG and recorder,
  // stepping the session so every snapshot lands on an exact work-slice
  // boundary.
  std::vector<AnytimeRecorder> recorders(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    std::unique_ptr<OptimizerSession> session =
        algorithms[a].make()->NewSession();
    Rng alg_rng(CombineSeed(case_seed, 0x5eed, a));
    recorders[a].Start();
    Deadline deadline = Deadline::AfterMillis(config.timeout_ms);
    session->Begin(&factory, &alg_rng);
    StepAndRecord(session.get(), deadline, &recorders[a]);
  }

  // Build the reference frontier.
  std::vector<CostVector> reference;
  if (config.reference == ReferenceMode::kDpReference) {
    DpConfig dp_config;
    dp_config.alpha = config.dp_reference_alpha;
    DpOptimizer dp(dp_config);
    Rng dp_rng(case_seed);
    std::vector<PlanPtr> dp_plans = dp.Optimize(
        &factory, &dp_rng,
        Deadline::AfterMillis(config.dp_reference_timeout_ms), nullptr);
    for (const PlanPtr& p : dp_plans) reference.push_back(p->cost());
    reference = ParetoFilter(std::move(reference));
  }
  if (reference.empty()) {
    std::vector<std::vector<CostVector>> finals;
    for (const AnytimeRecorder& rec : recorders) {
      finals.push_back(rec.FinalFrontier());
    }
    reference = UnionFrontier(finals);
  }

  // Score every algorithm at every checkpoint.
  CaseResult result;
  result.alphas.resize(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (int64_t t : checkpoints) {
      double alpha = AlphaError(recorders[a].FrontierAt(t), reference);
      if (config.clip_alpha > 1.0) alpha = std::min(alpha, config.clip_alpha);
      result.alphas[a].push_back(alpha);
    }
  }
  return result;
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const std::vector<AlgorithmSpec>& algorithms) {
  ExperimentResult result;
  result.config = config;
  for (int c = 1; c <= config.num_checkpoints; ++c) {
    result.checkpoint_micros.push_back(config.timeout_ms * 1000 * c /
                                       config.num_checkpoints);
  }

  for (GraphType graph : config.graphs) {
    for (int size : config.sizes) {
      std::cerr << "[" << config.title << "] " << ToString(graph) << ", "
                << size << " tables: " << config.queries_per_point
                << " queries x " << algorithms.size() << " algorithms...\n";
      // alphas[algorithm][checkpoint][case]
      std::vector<std::vector<std::vector<double>>> alphas(
          algorithms.size(),
          std::vector<std::vector<double>>(
              result.checkpoint_micros.size()));
      for (int q = 0; q < config.queries_per_point; ++q) {
        CaseResult one = RunOneCase(config, algorithms, graph, size, q,
                                    result.checkpoint_micros);
        for (size_t a = 0; a < algorithms.size(); ++a) {
          for (size_t c = 0; c < result.checkpoint_micros.size(); ++c) {
            alphas[a][c].push_back(one.alphas[a][c]);
          }
        }
      }
      CellResult cell;
      cell.graph = graph;
      cell.size = size;
      for (size_t a = 0; a < algorithms.size(); ++a) {
        CellSeries series;
        series.algorithm = algorithms[a].name;
        for (size_t c = 0; c < result.checkpoint_micros.size(); ++c) {
          series.median_alpha.push_back(Median(alphas[a][c]));
        }
        cell.series.push_back(std::move(series));
      }
      result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

}  // namespace moqo
