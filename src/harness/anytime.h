// Anytime frontier recording.
//
// The paper compares algorithms "in terms of how well they approximate the
// Pareto frontier after a certain amount of optimization time" (Section
// 6.1), measuring quality at regular intervals. AnytimeRecorder timestamps
// every frontier update an optimizer reports; after the run, the frontier
// that was current at any checkpoint can be replayed and scored against a
// reference frontier.
#ifndef MOQO_HARNESS_ANYTIME_H_
#define MOQO_HARNESS_ANYTIME_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "core/optimizer.h"
#include "cost/cost_vector.h"

namespace moqo {

/// One timestamped frontier snapshot.
struct FrontierSnapshot {
  int64_t elapsed_micros = 0;
  std::vector<CostVector> frontier;
};

/// Records timestamped frontier snapshots during one optimizer run.
class AnytimeRecorder {
 public:
  AnytimeRecorder() = default;

  /// Resets the clock; call immediately before Optimizer::Optimize.
  void Start() { watch_.Restart(); }

  /// Callback to hand to Optimizer::Optimize.
  AnytimeCallback MakeCallback();

  /// Records a final snapshot from the returned plan set (covers optimizers
  /// that return without a trailing callback).
  void RecordFinal(const std::vector<PlanPtr>& plans);

  /// All snapshots in chronological order.
  const std::vector<FrontierSnapshot>& snapshots() const { return snapshots_; }

  /// The frontier current at `elapsed_micros` (the last snapshot at or
  /// before that time); empty if nothing was produced yet.
  std::vector<CostVector> FrontierAt(int64_t elapsed_micros) const;

  /// The last recorded frontier (empty if none).
  std::vector<CostVector> FinalFrontier() const;

 private:
  void Record(const std::vector<PlanPtr>& plans);

  Stopwatch watch_;
  std::vector<FrontierSnapshot> snapshots_;
};

}  // namespace moqo

#endif  // MOQO_HARNESS_ANYTIME_H_
