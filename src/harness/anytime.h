// Anytime frontier recording.
//
// The paper compares algorithms "in terms of how well they approximate the
// Pareto frontier after a certain amount of optimization time" (Section
// 6.1), measuring quality at regular intervals. AnytimeRecorder timestamps
// frontier snapshots during one optimizer run; after the run, the frontier
// that was current at any checkpoint can be replayed and scored against a
// reference frontier.
//
// With the incremental session API the harness drives the optimizer itself
// (StepAndRecord): it samples the frontier between steps, so snapshot
// timestamps are exact work-slice boundaries instead of whatever moments a
// blocking optimizer chose to invoke its callback.
#ifndef MOQO_HARNESS_ANYTIME_H_
#define MOQO_HARNESS_ANYTIME_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "core/optimizer.h"
#include "cost/cost_vector.h"

namespace moqo {

/// One timestamped frontier snapshot.
struct FrontierSnapshot {
  int64_t elapsed_micros = 0;
  std::vector<CostVector> frontier;
};

/// Records timestamped frontier snapshots during one optimizer run.
class AnytimeRecorder {
 public:
  AnytimeRecorder() = default;

  /// Resets the clock; call immediately before the run starts.
  void Start() { watch_.Restart(); }

  /// Callback to hand to the blocking Optimizer::Optimize wrapper.
  AnytimeCallback MakeCallback();

  /// Records a final snapshot from the returned plan set (covers optimizers
  /// that return without a trailing frontier change).
  void RecordFinal(const std::vector<PlanPtr>& plans);

  /// All snapshots in chronological order.
  const std::vector<FrontierSnapshot>& snapshots() const { return snapshots_; }

  /// The frontier current at `elapsed_micros` (the last snapshot at or
  /// before that time); empty if nothing was produced yet.
  std::vector<CostVector> FrontierAt(int64_t elapsed_micros) const;

  /// The last recorded frontier (empty if none).
  std::vector<CostVector> FinalFrontier() const;

 private:
  void Record(const std::vector<PlanPtr>& plans);

  Stopwatch watch_;
  std::vector<FrontierSnapshot> snapshots_;
};

/// Drives an already-Begin()-ed session until it is Done or `deadline`
/// expires, recording a snapshot into `recorder` after Begin (if the
/// frontier is already non-empty) and after every frontier-changing step.
/// Call recorder->Start() immediately before Begin so snapshot timestamps
/// cover setup work. Returns the final frontier (also recorded).
std::vector<PlanPtr> StepAndRecord(OptimizerSession* session,
                                   const Deadline& deadline,
                                   AnytimeRecorder* recorder);

}  // namespace moqo

#endif  // MOQO_HARNESS_ANYTIME_H_
