#include "harness/report.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace moqo {

std::string FormatAlpha(double alpha) {
  if (std::isinf(alpha)) return "inf";
  std::ostringstream out;
  if (alpha < 100.0) {
    out << std::fixed << std::setprecision(3) << alpha;
  } else {
    out << "1e" << std::fixed << std::setprecision(1) << std::log10(alpha);
  }
  return out.str();
}

void PrintExperiment(const ExperimentResult& result, std::ostream& out) {
  const ExperimentConfig& config = result.config;
  out << "### " << config.title << "\n";
  out << "metrics=" << config.num_metrics
      << " selectivity=" << ToString(config.selectivity)
      << " timeout=" << config.timeout_ms << "ms"
      << " queries/point=" << config.queries_per_point;
  if (config.clip_alpha > 1.0) {
    out << " clip=" << FormatAlpha(config.clip_alpha);
  }
  out << "\n\n";

  for (const CellResult& cell : result.cells) {
    out << "== " << ToString(cell.graph) << ", " << cell.size
        << " tables (median alpha; lower is better) ==\n";
    out << std::setw(10) << "time_ms";
    for (const CellSeries& s : cell.series) {
      out << std::setw(14) << s.algorithm;
    }
    out << "\n";
    for (size_t c = 0; c < result.checkpoint_micros.size(); ++c) {
      out << std::setw(10) << result.checkpoint_micros[c] / 1000;
      for (const CellSeries& s : cell.series) {
        out << std::setw(14) << FormatAlpha(s.median_alpha[c]);
      }
      out << "\n";
    }
    // Winner at the final checkpoint.
    size_t last = result.checkpoint_micros.size() - 1;
    std::string winner = "-";
    double best = std::numeric_limits<double>::infinity();
    for (const CellSeries& s : cell.series) {
      if (s.median_alpha[last] < best) {
        best = s.median_alpha[last];
        winner = s.algorithm;
      }
    }
    out << "  winner@final: " << winner << " (alpha=" << FormatAlpha(best)
        << ")\n\n";
  }
}

}  // namespace moqo
