#include "core/analysis.h"

#include <cassert>
#include <cmath>

namespace moqo {

double DominanceProbability(int num_metrics) {
  assert(num_metrics >= 1);
  return std::pow(0.5, num_metrics);
}

double NoDominatingNeighborProbability(int num_neighbors, int path_length,
                                       int num_metrics) {
  assert(num_neighbors >= 1);
  assert(path_length >= 1);
  // u(n, i) = (1 - (1/2)^(l * i))^n.
  double p_dominate_all = std::pow(0.5, num_metrics * path_length);
  return std::pow(1.0 - p_dominate_all, num_neighbors);
}

double ExpectedClimbPathLength(int num_neighbors, int num_metrics) {
  // E = sum_{i>=1} i * u(n, i) * prod_{j<i} (1 - u(n, j)).
  double expectation = 0.0;
  double continue_prob = 1.0;  // prod_{j<i} (1 - u(n, j))
  for (int i = 1; i <= 100000; ++i) {
    double u = NoDominatingNeighborProbability(num_neighbors, i, num_metrics);
    expectation += i * u * continue_prob;
    continue_prob *= (1.0 - u);
    if (continue_prob < 1e-12) break;  // tail mass negligible
  }
  return expectation;
}

double LocalOptimumProbability(int num_neighbors, int num_metrics) {
  return std::pow(1.0 - DominanceProbability(num_metrics), num_neighbors);
}

}  // namespace moqo
