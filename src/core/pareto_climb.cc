#include "core/pareto_climb.h"

#include <algorithm>
#include <cassert>

namespace moqo {

namespace {

// Cap on plans kept per output format inside one ParetoStep node.
//
// The paper's complexity analysis (Lemma 2) assumes ParetoStep returns a
// single non-dominated plan per node; keeping wide non-dominated sets per
// node instead makes the recombination cost explode (at width 8 the fast
// climber loses its entire advantage over the naive one). Width 2 per
// output format restores the paper's reported economics — >=10x faster
// climbs than naive at 50 tables, and ~10x more RMQ iterations per second
// — at the price that a climbing fixed point is no longer guaranteed to
// be a local optimum of the complete neighborhood (RMQ's frontier
// approximation recovers the lost operator variety along the chosen join
// order, which is why end-to-end quality *improves* with the narrower
// width; see bench/ablation_climb and EXPERIMENTS.md).
constexpr int kMaxPerFormat = 2;

// Prune of Algorithm 2: keep, per output data representation, a small set
// of mutually non-dominated plans. Rejects `candidate` if an existing plan
// with the same representation weakly dominates it.
void PruneBetter(std::vector<PlanPtr>* plans, PlanPtr candidate) {
  for (const PlanPtr& p : *plans) {
    if (SameOutput(*p, *candidate) &&
        p->cost().WeakDominates(candidate->cost())) {
      return;
    }
  }
  plans->erase(std::remove_if(plans->begin(), plans->end(),
                              [&](const PlanPtr& p) {
                                return SameOutput(*p, *candidate) &&
                                       candidate->cost().StrictlyDominates(
                                           p->cost());
                              }),
               plans->end());
  // Count the cap against the survivors: counting before the erase can
  // treat plans the candidate just evicted as occupying slots, dropping a
  // strictly dominating candidate (and possibly emptying the step result).
  int same_format = 0;
  for (const PlanPtr& p : *plans) {
    if (SameOutput(*p, *candidate)) ++same_format;
  }
  if (same_format >= kMaxPerFormat) {
    // Evict the same-format plan with the highest cost sum to make room;
    // keeps the step's working set constant-size.
    auto worst = plans->end();
    double worst_sum = candidate->cost().Sum();
    for (auto it = plans->begin(); it != plans->end(); ++it) {
      if (SameOutput(**it, *candidate) && (*it)->cost().Sum() > worst_sum) {
        worst = it;
        worst_sum = (*it)->cost().Sum();
      }
    }
    if (worst == plans->end()) return;  // candidate is the worst: drop it
    plans->erase(worst);
  }
  plans->push_back(std::move(candidate));
}

}  // namespace

std::vector<PlanPtr> ParetoStep(const PlanPtr& p, PlanFactory* factory,
                                ClimbStats* stats, PlanSpace space) {
  std::vector<PlanPtr> result;
  if (p->IsJoin()) {
    // Improve sub-plans by recursive calls, then recombine every improved
    // sub-plan pair and apply all root mutations to each combination.
    std::vector<PlanPtr> outer_pareto =
        ParetoStep(p->outer(), factory, stats, space);
    std::vector<PlanPtr> inner_pareto =
        ParetoStep(p->inner(), factory, stats, space);
    for (const PlanPtr& outer : outer_pareto) {
      for (const PlanPtr& inner : inner_pareto) {
        PlanPtr base = (outer == p->outer() && inner == p->inner())
                           ? p
                           : factory->MakeJoin(outer, inner, p->join_op());
        PruneBetter(&result, base);
        for (PlanPtr& mutated : RootMutations(base, factory, space)) {
          if (stats != nullptr) ++stats->plans_examined;
          PruneBetter(&result, std::move(mutated));
        }
      }
    }
  } else {
    PruneBetter(&result, p);
    for (PlanPtr& mutated : RootMutations(p, factory, space)) {
      if (stats != nullptr) ++stats->plans_examined;
      PruneBetter(&result, std::move(mutated));
    }
  }
  assert(!result.empty());
  return result;
}

PlanPtr ParetoClimb(const PlanPtr& p, PlanFactory* factory, ClimbStats* stats,
                    const Deadline& deadline, PlanSpace space) {
  PlanPtr current = p;
  bool improving = true;
  while (improving && !deadline.Expired()) {
    improving = false;
    std::vector<PlanPtr> mutations =
        ParetoStep(current, factory, stats, space);
    // Move to the strictly dominating mutation with the lowest cost sum
    // (any strictly dominating neighbor is a valid choice; preferring the
    // cheapest makes progress fastest).
    PlanPtr best;
    for (PlanPtr& m : mutations) {
      if (m->cost().StrictlyDominates(current->cost())) {
        if (best == nullptr || m->cost().Sum() < best->cost().Sum()) {
          best = std::move(m);
        }
      }
    }
    if (best != nullptr) {
      current = std::move(best);
      improving = true;
      if (stats != nullptr) ++stats->steps;
    }
  }
  return current;
}

PlanPtr NaiveClimb(const PlanPtr& p, PlanFactory* factory, ClimbStats* stats,
                   const Deadline& deadline) {
  PlanPtr current = p;
  bool improving = true;
  while (improving && !deadline.Expired()) {
    improving = false;
    std::vector<PlanPtr> neighbors = AllNeighbors(current, factory);
    if (stats != nullptr) {
      stats->plans_examined += static_cast<int64_t>(neighbors.size());
    }
    PlanPtr best;
    for (PlanPtr& m : neighbors) {
      if (m->cost().StrictlyDominates(current->cost())) {
        if (best == nullptr || m->cost().Sum() < best->cost().Sum()) {
          best = std::move(m);
        }
      }
    }
    if (best != nullptr) {
      current = std::move(best);
      improving = true;
      if (stats != nullptr) ++stats->steps;
    }
  }
  return current;
}

bool IsLocalParetoOptimum(const PlanPtr& p, PlanFactory* factory) {
  for (const PlanPtr& neighbor : AllNeighbors(p, factory)) {
    if (neighbor->cost().StrictlyDominates(p->cost())) return false;
  }
  return true;
}

}  // namespace moqo
