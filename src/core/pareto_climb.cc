#include "core/pareto_climb.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace moqo {

namespace {

// Cap on plans kept per output format inside one ParetoStep node.
//
// The paper's complexity analysis (Lemma 2) assumes ParetoStep returns a
// single non-dominated plan per node; keeping wide non-dominated sets per
// node instead makes the recombination cost explode (at width 8 the fast
// climber loses its entire advantage over the naive one). Width 2 per
// output format restores the paper's reported economics — >=10x faster
// climbs than naive at 50 tables, and ~10x more RMQ iterations per second
// — at the price that a climbing fixed point is no longer guaranteed to
// be a local optimum of the complete neighborhood (RMQ's frontier
// approximation recovers the lost operator variety along the chosen join
// order, which is why end-to-end quality *improves* with the narrower
// width; see bench/ablation_climb and EXPERIMENTS.md).
constexpr int kMaxPerFormat = 2;

// Step-local frontier in struct-of-arrays form: plan handles plus inline
// cost rows (fixed kMaxMetrics stride) and output-format tags, kept in
// lockstep. The set is bounded by kMaxPerFormat plans per OutputFormat, so
// the cost rows fit in a fixed inline array — PruneBetter sweeps flat
// doubles with zero heap traffic per candidate.
struct StepSet {
  static constexpr int kNumFormats = 2;  // kUnsorted, kSorted
  static constexpr int kCapacity = kNumFormats * kMaxPerFormat;

  std::vector<PlanPtr> plans;
  double costs[kCapacity * CostVector::kMaxMetrics];
  std::uint8_t formats[kCapacity];

  double* Row(size_t r) { return costs + r * CostVector::kMaxMetrics; }
};

// Prune of Algorithm 2: keep, per output data representation, a small set
// of mutually non-dominated plans. Rejects `candidate` if an existing plan
// with the same representation weakly dominates it.
//
// Fused one-pass sweep over the former reject pass (same-format plan weakly
// dominates candidate?) and evict pass (candidate strictly dominates
// same-format plan?): same scan order, same comparisons, and a reject
// aborts before any mutation — outcomes are bit-identical to the scalar
// two-pass version. After a reject-free sweep no same-format row weakly
// dominates the candidate, so "strictly dominates" reduces to "weakly
// dominates" (equality would have rejected).
void PruneBetter(StepSet* set, PlanPtr candidate) {
  const CostVector& cost = candidate->cost();
  const int metrics = cost.size();
  const double* cand = cost.data();
  const std::uint8_t fmt = static_cast<std::uint8_t>(candidate->format());
  const size_t n = set->plans.size();

  std::uint8_t keep[StepSet::kCapacity];
  bool any_evicted = false;
  for (size_t r = 0; r < n; ++r) {
    keep[r] = 1;
    if (set->formats[r] != fmt) continue;
    const double* row = set->Row(r);
    const bool reject = AllLanesLE(row, cand);
    const bool evict = AllLanesLE(cand, row);
    if (reject) return;
    if (evict) {
      keep[r] = 0;
      any_evicted = true;
    }
  }

  size_t size = n;
  if (any_evicted) {
    size_t out = 0;
    for (size_t r = 0; r < n; ++r) {
      if (!keep[r]) continue;
      if (out != r) {
        set->plans[out] = std::move(set->plans[r]);
        set->formats[out] = set->formats[r];
        std::copy_n(set->Row(r), CostVector::kMaxMetrics, set->Row(out));
      }
      ++out;
    }
    set->plans.resize(out);
    size = out;
  }

  // Count the cap against the survivors: counting before the erase can
  // treat plans the candidate just evicted as occupying slots, dropping a
  // strictly dominating candidate (and possibly emptying the step result).
  int same_format = 0;
  for (size_t r = 0; r < size; ++r) {
    if (set->formats[r] == fmt) ++same_format;
  }
  if (same_format >= kMaxPerFormat) {
    // Evict the same-format plan with the highest cost sum to make room;
    // keeps the step's working set constant-size.
    size_t worst = size;
    double worst_sum = 0.0;
    for (int i = 0; i < metrics; ++i) worst_sum += cand[i];
    for (size_t r = 0; r < size; ++r) {
      if (set->formats[r] != fmt) continue;
      const double* row = set->Row(r);
      double sum = 0.0;
      for (int i = 0; i < metrics; ++i) sum += row[i];
      if (sum > worst_sum) {
        worst = r;
        worst_sum = sum;
      }
    }
    if (worst == size) return;  // candidate is the worst: drop it
    set->plans.erase(set->plans.begin() + static_cast<std::ptrdiff_t>(worst));
    for (size_t r = worst + 1; r < size; ++r) {
      set->formats[r - 1] = set->formats[r];
      std::copy_n(set->Row(r), CostVector::kMaxMetrics, set->Row(r - 1));
    }
    --size;
  }

  assert(size < static_cast<size_t>(StepSet::kCapacity));
  std::copy_n(cand, CostVector::kMaxMetrics, set->Row(size));
  set->formats[size] = fmt;
  set->plans.push_back(std::move(candidate));
}

}  // namespace

std::vector<PlanPtr> ParetoStep(const PlanPtr& p, PlanFactory* factory,
                                ClimbStats* stats, PlanSpace space) {
  StepSet result;
  if (p->IsJoin()) {
    // Improve sub-plans by recursive calls, then recombine every improved
    // sub-plan pair and apply all root mutations to each combination.
    std::vector<PlanPtr> outer_pareto =
        ParetoStep(p->outer(), factory, stats, space);
    std::vector<PlanPtr> inner_pareto =
        ParetoStep(p->inner(), factory, stats, space);
    for (const PlanPtr& outer : outer_pareto) {
      for (const PlanPtr& inner : inner_pareto) {
        PlanPtr base =
            (outer.get() == p->outer_node() && inner.get() == p->inner_node())
                ? p
                : factory->MakeJoin(outer, inner, p->join_op());
        PruneBetter(&result, base);
        for (PlanPtr& mutated : RootMutations(base, factory, space)) {
          if (stats != nullptr) ++stats->plans_examined;
          PruneBetter(&result, std::move(mutated));
        }
      }
    }
  } else {
    PruneBetter(&result, p);
    for (PlanPtr& mutated : RootMutations(p, factory, space)) {
      if (stats != nullptr) ++stats->plans_examined;
      PruneBetter(&result, std::move(mutated));
    }
  }
  assert(!result.plans.empty());
  return std::move(result.plans);
}

PlanPtr ParetoClimb(const PlanPtr& p, PlanFactory* factory, ClimbStats* stats,
                    const Deadline& deadline, PlanSpace space) {
  PlanPtr current = p;
  bool improving = true;
  while (improving && !deadline.Expired()) {
    improving = false;
    std::vector<PlanPtr> mutations =
        ParetoStep(current, factory, stats, space);
    // Move to the strictly dominating mutation with the lowest cost sum
    // (any strictly dominating neighbor is a valid choice; preferring the
    // cheapest makes progress fastest).
    PlanPtr best;
    for (PlanPtr& m : mutations) {
      if (m->cost().StrictlyDominates(current->cost())) {
        if (best == nullptr || m->cost().Sum() < best->cost().Sum()) {
          best = std::move(m);
        }
      }
    }
    if (best != nullptr) {
      current = std::move(best);
      improving = true;
      if (stats != nullptr) ++stats->steps;
    }
  }
  return current;
}

PlanPtr NaiveClimb(const PlanPtr& p, PlanFactory* factory, ClimbStats* stats,
                   const Deadline& deadline) {
  PlanPtr current = p;
  bool improving = true;
  while (improving && !deadline.Expired()) {
    improving = false;
    std::vector<PlanPtr> neighbors = AllNeighbors(current, factory);
    if (stats != nullptr) {
      stats->plans_examined += static_cast<int64_t>(neighbors.size());
    }
    PlanPtr best;
    for (PlanPtr& m : neighbors) {
      if (m->cost().StrictlyDominates(current->cost())) {
        if (best == nullptr || m->cost().Sum() < best->cost().Sum()) {
          best = std::move(m);
        }
      }
    }
    if (best != nullptr) {
      current = std::move(best);
      improving = true;
      if (stats != nullptr) ++stats->steps;
    }
  }
  return current;
}

bool IsLocalParetoOptimum(const PlanPtr& p, PlanFactory* factory) {
  for (const PlanPtr& neighbor : AllNeighbors(p, factory)) {
    if (neighbor->cost().StrictlyDominates(p->cost())) return false;
  }
  return true;
}

}  // namespace moqo
