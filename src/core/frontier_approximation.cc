#include "core/frontier_approximation.h"

#include <cmath>

namespace moqo {

double AlphaForIteration(int iteration) {
  return AlphaForIteration(iteration, 25.0, 0.99, 25);
}

double AlphaForIteration(int iteration, double start, double decay,
                         int step) {
  double alpha = start * std::pow(decay, iteration / step);
  return alpha < 1.0 ? 1.0 : alpha;
}

int64_t ApproximateFrontiers(const PlanPtr& plan, PlanCache* cache,
                             double alpha, PlanFactory* factory) {
  int64_t inserted = 0;
  if (plan->IsJoin()) {
    // Approximate outer and inner frontiers first (post-order).
    inserted += ApproximateFrontiers(plan->outer(), cache, alpha, factory);
    inserted += ApproximateFrontiers(plan->inner(), cache, alpha, factory);
    // Copy the child plan lists: inserting into the cache may rehash the
    // underlying map and would invalidate references into it.
    std::vector<PlanPtr> outer_plans = cache->Lookup(plan->outer()->rel());
    std::vector<PlanPtr> inner_plans = cache->Lookup(plan->inner()->rel());
    for (const PlanPtr& outer : outer_plans) {
      for (const PlanPtr& inner : inner_plans) {
        for (JoinAlgorithm op : AllJoinAlgorithms()) {
          PlanPtr np = factory->MakeJoin(outer, inner, op);
          if (cache->Insert(plan->rel(), std::move(np), alpha)) ++inserted;
        }
      }
    }
  } else {
    for (ScanAlgorithm op : factory->ApplicableScans(plan->table())) {
      PlanPtr np = factory->MakeScan(plan->table(), op);
      if (cache->Insert(plan->rel(), std::move(np), alpha)) ++inserted;
    }
  }
  return inserted;
}

}  // namespace moqo
