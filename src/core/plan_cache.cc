#include "core/plan_cache.h"

#include <algorithm>
#include <cassert>

namespace moqo {

// `plan` is taken by reference and only copied into the entry on
// acceptance: rejected candidates — the common case under a converged cache
// — never touch the shared_ptr control block.
bool PlanCache::Insert(const TableSet& rel, const PlanPtr& plan,
                       double alpha) {
  assert(plan->rel() == rel);
  assert(alpha >= 1.0);
  Entry& entry = cache_[rel];

  const CostVector& cost = plan->cost();
  const int metrics = cost.size();
  const double* cand = cost.data();
  const std::uint8_t fmt = static_cast<std::uint8_t>(plan->format());
  const size_t n = entry.plans.size();
  assert(entry.costs.rows() == n && entry.formats.size() == n);

  // alpha * cand is the same product for every row; hoist it so the reject
  // test per row is a plain component-wise <=. Bit-identical: IEEE
  // multiplication is deterministic, so row[i] <= alpha * cand[i] here is
  // the exact comparison ApproxDominates evaluated per row. Padding lanes
  // are zeroed (cand's are zero by CostVector's invariant, and alpha * 0
  // is 0) so the per-row loops below can run branch-free over all
  // kMaxMetrics lanes: pads contribute 0 <= 0 to both verdicts.
  double scaled[CostVector::kMaxMetrics];
  for (int i = 0; i < CostVector::kMaxMetrics; ++i) {
    scaled[i] = i < metrics ? alpha * cand[i] : 0.0;
  }

  // Fused one-pass sweep over the former reject pass (same-format row
  // alpha-dominates candidate?) and evict pass (candidate weakly dominates
  // same-format row at factor 1?). Same row order, same comparisons; a
  // reject aborts before any mutation, exactly like the old early return,
  // so outcomes are bit-identical. The keep mask is initialized only when
  // the first eviction appears: most candidates reject or append cleanly,
  // and those paths never touch it.
  bool any_evicted = false;
  for (size_t r = 0; r < n; ++r) {
    if (entry.formats[r] != fmt) continue;
    const double* row = entry.costs.Row(r);
    const bool reject = AllLanesLE(row, scaled);
    const bool evict = AllLanesLE(cand, row);
    if (reject) return false;
    if (evict) {
      if (!any_evicted) keep_.assign(n, 1);
      keep_[r] = 0;
      any_evicted = true;
    }
  }
  if (any_evicted) {
    size_t out = 0;
    for (size_t r = 0; r < n; ++r) {
      if (!keep_[r]) continue;
      entry.plans[out] = std::move(entry.plans[r]);
      entry.formats[out] = entry.formats[r];
      ++out;
    }
    entry.plans.resize(out);
    entry.formats.resize(out);
    entry.costs.Compact(keep_);
  }
  entry.costs.PushRow(cost);
  entry.formats.push_back(fmt);
  entry.plans.push_back(plan);
  return true;
}

const std::vector<PlanPtr>& PlanCache::Lookup(const TableSet& rel) const {
  static const std::vector<PlanPtr> kEmpty;
  auto it = cache_.find(rel);
  return it == cache_.end() ? kEmpty : it->second.plans;
}

size_t PlanCache::TotalPlans() const {
  size_t total = 0;
  for (const auto& [rel, entry] : cache_) total += entry.plans.size();
  return total;
}

void PlanCache::Adopt(const TableSet& rel, std::vector<PlanPtr> plans) {
  Entry& entry = cache_[rel];
  entry.plans = std::move(plans);
  entry.costs.Clear();
  entry.formats.clear();
  for (const PlanPtr& p : entry.plans) {
    entry.costs.PushRow(p->cost());
    entry.formats.push_back(static_cast<std::uint8_t>(p->format()));
  }
}

}  // namespace moqo
