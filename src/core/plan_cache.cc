#include "core/plan_cache.h"

#include <algorithm>
#include <cassert>

namespace moqo {

bool PlanCache::Insert(const TableSet& rel, PlanPtr plan, double alpha) {
  assert(plan->rel() == rel);
  assert(alpha >= 1.0);
  std::vector<PlanPtr>& plans = cache_[rel];
  for (const PlanPtr& p : plans) {
    if (SigBetterPlan(*p, *plan, alpha)) return false;
  }
  plans.erase(std::remove_if(plans.begin(), plans.end(),
                             [&](const PlanPtr& p) {
                               return SigBetterPlan(*plan, *p, 1.0);
                             }),
              plans.end());
  plans.push_back(std::move(plan));
  return true;
}

const std::vector<PlanPtr>& PlanCache::Lookup(const TableSet& rel) const {
  static const std::vector<PlanPtr> kEmpty;
  auto it = cache_.find(rel);
  return it == cache_.end() ? kEmpty : it->second;
}

size_t PlanCache::TotalPlans() const {
  size_t total = 0;
  for (const auto& [rel, plans] : cache_) total += plans.size();
  return total;
}

}  // namespace moqo
