// Canonical, seed-independent query identity.
//
// Two submissions of the same query shape must map to the same 64-bit
// fingerprint even when their table ids are permuted or their join edges
// are listed in a different order / with swapped endpoints — that is what
// lets a frontier cache recognize repeat traffic across clients that
// number their tables differently. The fingerprint is computed over a
// *canonical form* of the query:
//
//  1. Every table gets a label-invariant signature seeded from its
//     statistics (cardinality, tuple width, index flag) and refined
//     Weisfeiler-Leman style: each round folds in the sorted multiset of
//     (edge selectivity, neighbor signature) pairs over the table's
//     incident predicates, so topology distinguishes tables with equal
//     statistics.
//  2. Tables are ordered by final signature (ties broken by original id;
//     tied tables are automorphic as far as the refinement can tell, so
//     either order serializes identically).
//  3. Edges are renumbered into canonical table ranks, endpoint-normalized
//     (lo, hi), and sorted.
//  4. The canonical form is serialized with CheckpointWriter (bit-exact
//     doubles) and hashed with FNV-1a.
//
// The fingerprint deliberately ignores the optimization seed: layered
// identity keys derived from (fingerprint, seed) — e.g. the service
// placement RouteKey — are built on top, see service/wire.h.
#ifndef MOQO_CORE_QUERY_FINGERPRINT_H_
#define MOQO_CORE_QUERY_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"

namespace moqo {

/// The canonical byte form of `query` (step 1-4 above, before hashing).
/// Exposed so tests can assert relabeling-invariance at the byte level and
/// so callers needing a collision-free identity can keep the full form.
std::vector<uint8_t> CanonicalQueryBytes(const Query& query);

/// FNV-1a hash of CanonicalQueryBytes: equal for relabeled isomorphic
/// queries, independent of any optimization seed.
uint64_t QueryFingerprint(const Query& query);

/// Fixed-width rendering ("0x" + 16 lowercase hex digits) used by log and
/// error strings; identical format to the service layer's RouteKeyString so
/// the two identities line up in operator output.
std::string FingerprintString(uint64_t fingerprint);

/// FNV-1a over a byte string; the hash behind QueryFingerprint, exposed for
/// other layered identities (service/wire.cc derives RouteKey from it).
uint64_t Fnv1a64(const uint8_t* data, size_t size);
inline uint64_t Fnv1a64(const std::vector<uint8_t>& bytes) {
  return Fnv1a64(bytes.data(), bytes.size());
}

}  // namespace moqo

#endif  // MOQO_CORE_QUERY_FINGERPRINT_H_
