// Common interface for all anytime multi-objective query optimizers.
//
// Every algorithm in this repository (RMQ and the baselines of Section 6.1)
// is exposed through two layers:
//
//  * OptimizerSession — the incremental core. A session binds to one query
//    (PlanFactory) and one seeded Rng, then advances through repeated
//    Step() calls, each running one bounded work slice (one RMQ iteration,
//    one NSGA-II generation, one SA epoch, ...). The current result
//    frontier can be read between any two steps, which is exactly the
//    anytime-interruptibility contract the paper's Section 6 evaluation
//    relies on, and what lets a service multiplex many open queries over
//    few threads.
//
//  * Optimizer — a stateless, reusable description of an algorithm (name +
//    configuration). It mints sessions via NewSession() and offers the
//    classic blocking Optimize() call as a thin wrapper that loops Step()
//    until the deadline expires or the session is done.
//
// Determinism: a session's step sequence depends only on its configuration
// and the Rng handed to Begin(). As long as the per-step budget never
// expires (iteration-bounded runs), stepping a session produces a frontier
// bitwise identical to the blocking Optimize() call with the same seed —
// regardless of how steps are interleaved with other sessions.
#ifndef MOQO_CORE_OPTIMIZER_H_
#define MOQO_CORE_OPTIMIZER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "pareto/pareto_archive.h"
#include "plan/plan_factory.h"

namespace moqo {

class CheckpointReader;
class CheckpointWriter;

/// Invoked by the blocking Optimize() wrapper whenever the current result
/// plan set may have changed. The vector holds the current non-dominated
/// plans for the full query. Implementations must not retain references
/// beyond the call.
using AnytimeCallback = std::function<void(const std::vector<PlanPtr>&)>;

/// Generic counters every session maintains; algorithm-specific sessions
/// expose richer typed stats on top (e.g. RmqSession::stats()).
struct SessionStats {
  /// Completed Step() calls since Begin().
  int64_t steps = 0;
};

/// One incremental optimization run: query + RNG + all per-run mutable
/// state. Sessions are single-threaded objects; to serve many queries
/// concurrently, open one session per query (see service/).
class OptimizerSession {
 public:
  virtual ~OptimizerSession() = default;

  /// Binds the session to a query and RNG and resets all per-run state.
  /// Cheap setup work that the blocking algorithms performed before their
  /// main loop (e.g. drawing SA's start plan) happens here, so it is
  /// charged to the session even if Step() is never called.
  void Begin(PlanFactory* factory, Rng* rng) {
    factory_ = factory;
    rng_ = rng;
    session_stats_ = SessionStats();
    warm_.Clear();
    OnBegin();
  }

  /// Begin() plus a warm-start seed: `warm` plans (typically a cached
  /// frontier of the same query shape, rebuilt through `factory`) are
  /// adopted into a side archive that Frontier() merges over the
  /// algorithm's own result set. The seed never touches algorithm state —
  /// no RNG draw, no cache entry, no population slot — so the step
  /// sequence is bitwise identical to a cold Begin() with the same seed;
  /// only the reported frontier is (weakly) improved. An empty `warm` is
  /// exactly Begin().
  void BeginFrom(PlanFactory* factory, Rng* rng,
                 const std::vector<PlanPtr>& warm) {
    Begin(factory, rng);
    for (const PlanPtr& plan : warm) {
      if (plan != nullptr) warm_.Insert(plan);
    }
  }

  /// Runs one bounded work slice and returns true if the result frontier
  /// may have changed. `budget` caps wall-clock time spent inside the
  /// slice: long-running primitives (hill climbs, DP lattice sweeps) poll
  /// it and cut work short when it expires, which trades bitwise
  /// determinism for latency exactly like the blocking deadline did. Pass
  /// the default never-expiring Deadline for deterministic
  /// iteration-bounded stepping. Returns false (doing nothing) once the
  /// session is Done().
  bool Step(const Deadline& budget = Deadline()) {
    if (Done()) return false;
    bool changed = DoStep(budget);
    ++session_stats_.steps;
    return changed;
  }

  /// The current non-dominated plans for the full query; empty if nothing
  /// complete has been produced yet. For a cold-started session this is
  /// the algorithm's own frontier verbatim; after BeginFrom() it is that
  /// frontier merged with the still-useful warm plans. Algorithm plans
  /// always pass through untouched; a warm plan is appended only when no
  /// algorithm plan weakly dominates it. That makes merging a frontier
  /// with itself the identity — the property behind the warm-vs-cold
  /// bitwise conformance gate.
  std::vector<PlanPtr> Frontier() const;

  /// True once the session has exhausted its configured work (iteration /
  /// generation bounds, or DP completion). Unbounded anytime algorithms
  /// never report Done.
  virtual bool Done() const = 0;

  /// True if the session stopped without completing its configured work —
  /// it is Done, but only because it abandoned the run (DP giving up on an
  /// oversized query or an expired mid-lattice budget). Service layers
  /// must never count a gave-up run as a deadline hit, even when it
  /// reported Done inside the window.
  virtual bool GaveUp() const { return false; }

  /// Serializes the session's complete mid-run state — the RNG stream
  /// position, the step counter, and all algorithm state — into a
  /// self-describing byte buffer. Call only between two Step() calls on a
  /// session that has been Begin()- or Restore()-bound. Together with
  /// Restore(), the buffer reconstructs a session that is
  /// bitwise-indistinguishable from one that never paused: same frontier,
  /// same remaining step sequence.
  std::vector<uint8_t> Checkpoint() const;

  /// Counterpart of Begin() for resuming a checkpointed run: binds the
  /// session to `factory` and `rng` and reconstructs all per-run state from
  /// `buffer`. The session must have been minted by the same algorithm and
  /// configuration as the checkpointing one, and `factory` must describe
  /// the same query and cost model (its deterministic cost stamping is what
  /// makes restored plans bit-identical). `rng`'s stream position is
  /// overwritten with the checkpointed one — its seed is irrelevant.
  /// Returns false if the buffer is malformed or belongs to a different
  /// algorithm; the session is then in an indeterminate state and only
  /// Begin() or another Restore() may touch it next.
  bool Restore(PlanFactory* factory, Rng* rng,
               const std::vector<uint8_t>& buffer);

  /// Generic per-session counters (see algorithm sessions for typed ones).
  const SessionStats& session_stats() const { return session_stats_; }

 protected:
  /// The algorithm's own current non-dominated plans, before any
  /// warm-start merge. Implementations must not consult the warm archive;
  /// the base class owns the merge.
  virtual std::vector<PlanPtr> CurrentFrontier() const = 0;

  /// Resets algorithm state; factory()/rng() are valid when called.
  virtual void OnBegin() = 0;

  /// One work slice; only called while !Done().
  virtual bool DoStep(const Deadline& budget) = 0;

  /// Algorithm identifier stamped into checkpoint headers and verified by
  /// Restore() (e.g. "rmq", "dp"). Stable across versions.
  virtual const char* CheckpointTag() const = 0;

  /// Serializes all algorithm state (the base class has already written
  /// the header, RNG position, and step counter).
  virtual void OnCheckpoint(CheckpointWriter* writer) const = 0;

  /// Reconstructs all algorithm state from `reader`; factory()/rng() are
  /// valid when called. Returns false on malformed input (the reader's
  /// failure flag is also checked by the caller afterwards).
  virtual bool OnRestore(CheckpointReader* reader) = 0;

  PlanFactory* factory() const { return factory_; }
  Rng* rng() const { return rng_; }

 private:
  PlanFactory* factory_ = nullptr;
  Rng* rng_ = nullptr;
  SessionStats session_stats_;
  /// Warm-start seed plans (BeginFrom); empty for cold sessions. Owned by
  /// the base class so no algorithm's step sequence can depend on it.
  ParetoArchive warm_;
};

/// An anytime multi-objective query optimization algorithm. Optimizer
/// objects hold configuration only — all per-run state lives in the
/// sessions they mint — so one instance may be shared freely across
/// threads and reused for any number of runs.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Short display name, e.g. "RMQ", "NSGA-II", "DP(2)".
  virtual std::string name() const = 0;

  /// Creates a fresh unbound session for this algorithm/configuration.
  virtual std::unique_ptr<OptimizerSession> NewSession() const = 0;

  /// Blocking convenience: optimizes the factory's query until `deadline`
  /// expires or the session reports Done, invoking `callback` (if set) on
  /// frontier updates. Implemented as NewSession + Begin + RunSession.
  /// Returns the final set of non-dominated plans for the full query;
  /// empty if the algorithm produced no complete plan within the deadline.
  virtual std::vector<PlanPtr> Optimize(PlanFactory* factory, Rng* rng,
                                        const Deadline& deadline,
                                        const AnytimeCallback& callback) const;
};

/// Drives an already-Begin()-ed session to completion: loops Step(deadline)
/// until the session is Done or the deadline expires, invoking `callback`
/// after Begin (if the frontier is already non-empty) and after every
/// frontier-changing step. Returns the final frontier. Use this instead of
/// Optimizer::Optimize when you need the session afterwards (typed stats).
std::vector<PlanPtr> RunSession(OptimizerSession* session,
                                const Deadline& deadline,
                                const AnytimeCallback& callback = nullptr);

}  // namespace moqo

#endif  // MOQO_CORE_OPTIMIZER_H_
