// Common interface for all anytime multi-objective query optimizers.
//
// Every algorithm in this repository (RMQ and the baselines of Section 6.1)
// implements Optimizer: given a plan factory (query + cost model), a seeded
// RNG, and a deadline, it incrementally produces an approximation of the
// Pareto plan set and reports frontier updates through a callback so the
// evaluation harness can measure approximation quality over time.
#ifndef MOQO_CORE_OPTIMIZER_H_
#define MOQO_CORE_OPTIMIZER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "plan/plan_factory.h"

namespace moqo {

/// Invoked by optimizers whenever their current result plan set may have
/// changed. The vector holds the current non-dominated plans for the full
/// query. Implementations must not retain references beyond the call.
using AnytimeCallback = std::function<void(const std::vector<PlanPtr>&)>;

/// An anytime multi-objective query optimization algorithm.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Short display name, e.g. "RMQ", "NSGA-II", "DP(2)".
  virtual std::string name() const = 0;

  /// Optimizes the factory's query until `deadline` expires, invoking
  /// `callback` (if set) on frontier updates. Returns the final set of
  /// non-dominated plans for the full query; empty if the algorithm
  /// produced no complete plan within the deadline.
  virtual std::vector<PlanPtr> Optimize(PlanFactory* factory, Rng* rng,
                                        const Deadline& deadline,
                                        const AnytimeCallback& callback) = 0;
};

}  // namespace moqo

#endif  // MOQO_CORE_OPTIMIZER_H_
