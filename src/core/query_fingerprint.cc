#include "core/query_fingerprint.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "core/checkpoint.h"

namespace moqo {

namespace {

/// Bit pattern of a double; canonicalization hashes statistics bit-exactly,
/// mirroring the bit-exact equality the rest of the code base uses for
/// catalog and selectivity comparisons.
uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Label-invariant starting signature of one table: statistics only.
uint64_t StatsSignature(const TableStats& stats) {
  return CombineSeed(DoubleBits(stats.cardinality),
                     DoubleBits(stats.tuple_bytes),
                     stats.has_index ? 1u : 0u, 0x7461626cull /* "tabl" */);
}

/// Weisfeiler-Leman refinement rounds. Three rounds distinguish tables up
/// to the usual WL horizon, which is far beyond what statistics-identical
/// tables in generated or real workloads need; refinement is cheap (edges
/// are few), so the constant is chosen for safety, not speed.
constexpr int kRefinementRounds = 3;

/// One refinement round: fold each table's sorted multiset of
/// (selectivity bits, neighbor signature) contributions into its signature.
std::vector<uint64_t> RefineSignatures(const Query& query,
                                       const std::vector<uint64_t>& sig) {
  const int n = query.NumTables();
  std::vector<std::vector<uint64_t>> incident(static_cast<size_t>(n));
  for (const JoinEdge& edge : query.graph().Edges()) {
    const uint64_t sel = DoubleBits(edge.selectivity);
    incident[static_cast<size_t>(edge.left)].push_back(
        CombineSeed(sel, sig[static_cast<size_t>(edge.right)]));
    incident[static_cast<size_t>(edge.right)].push_back(
        CombineSeed(sel, sig[static_cast<size_t>(edge.left)]));
  }
  std::vector<uint64_t> next(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    std::vector<uint64_t>& contrib = incident[static_cast<size_t>(t)];
    std::sort(contrib.begin(), contrib.end());
    uint64_t h = CombineSeed(sig[static_cast<size_t>(t)],
                             static_cast<uint64_t>(contrib.size()));
    for (uint64_t c : contrib) h = CombineSeed(h, c);
    next[static_cast<size_t>(t)] = h;
  }
  return next;
}

/// Canonical table order: ranks[i] = canonical rank of original table i.
/// Tables sort by refined signature; equal signatures (automorphic as far
/// as refinement can tell) keep original order, which serializes
/// identically for true automorphisms.
std::vector<int> CanonicalRanks(const Query& query,
                                std::vector<int>* order_out) {
  const int n = query.NumTables();
  std::vector<uint64_t> sig(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    sig[static_cast<size_t>(t)] = StatsSignature(query.catalog().Table(t));
  }
  for (int round = 0; round < kRefinementRounds; ++round) {
    sig = RefineSignatures(query, sig);
  }
  std::vector<int> order(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) order[static_cast<size_t>(t)] = t;
  std::stable_sort(order.begin(), order.end(), [&sig](int a, int b) {
    return sig[static_cast<size_t>(a)] < sig[static_cast<size_t>(b)];
  });
  std::vector<int> ranks(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    ranks[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  if (order_out != nullptr) *order_out = std::move(order);
  return ranks;
}

/// An edge in canonical coordinates, ready for sorting.
struct CanonicalEdge {
  int lo = 0;
  int hi = 0;
  uint64_t selectivity_bits = 0;
};

bool operator<(const CanonicalEdge& a, const CanonicalEdge& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  if (a.hi != b.hi) return a.hi < b.hi;
  return a.selectivity_bits < b.selectivity_bits;
}

}  // namespace

std::vector<uint8_t> CanonicalQueryBytes(const Query& query) {
  std::vector<int> order;
  const std::vector<int> ranks = CanonicalRanks(query, &order);
  const int n = query.NumTables();

  // These bytes are hash input consumed in-process, never decoded, so a
  // version gate would only dilute the fingerprint.
  CheckpointWriter writer;  // moqo-lint: allow(checkpoint-magic)
  writer.WriteU32(static_cast<uint32_t>(n));
  for (int r = 0; r < n; ++r) {
    const TableStats& stats =
        query.catalog().Table(order[static_cast<size_t>(r)]);
    writer.WriteDouble(stats.cardinality);
    writer.WriteDouble(stats.tuple_bytes);
    writer.WriteU8(stats.has_index ? 1 : 0);
  }

  std::vector<CanonicalEdge> edges;
  edges.reserve(query.graph().Edges().size());
  for (const JoinEdge& edge : query.graph().Edges()) {
    CanonicalEdge canonical;
    const int a = ranks[static_cast<size_t>(edge.left)];
    const int b = ranks[static_cast<size_t>(edge.right)];
    canonical.lo = a < b ? a : b;
    canonical.hi = a < b ? b : a;
    canonical.selectivity_bits = DoubleBits(edge.selectivity);
    edges.push_back(canonical);
  }
  std::sort(edges.begin(), edges.end());
  writer.WriteU32(static_cast<uint32_t>(edges.size()));
  for (const CanonicalEdge& edge : edges) {
    writer.WriteU32(static_cast<uint32_t>(edge.lo));
    writer.WriteU32(static_cast<uint32_t>(edge.hi));
    writer.WriteU64(edge.selectivity_bits);
  }
  return writer.Take();
}

uint64_t QueryFingerprint(const Query& query) {
  return Fnv1a64(CanonicalQueryBytes(query));
}

std::string FingerprintString(uint64_t fingerprint) {
  static const char kHex[] = "0123456789abcdef";
  std::string text = "0x0000000000000000";
  for (int i = 0; i < 16; ++i) {
    text[static_cast<size_t>(17 - i)] = kHex[(fingerprint >> (4 * i)) & 0xf];
  }
  return text;
}

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace moqo
