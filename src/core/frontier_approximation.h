// Local Pareto frontier approximation (Algorithm 3 of the paper).
//
// Given a (locally optimal) plan, ApproximateFrontiers approximates the
// Pareto frontier of every intermediate result the plan generates: it
// traverses the plan tree in post-order and, for each node, recombines all
// cached partial plans for the node's outer and inner table sets with every
// applicable operator, pruning with the iteration-dependent approximation
// factor alpha. Cached partial plans may stem from earlier iterations and
// different join orders — this is where decomposability is exploited.
#ifndef MOQO_CORE_FRONTIER_APPROXIMATION_H_
#define MOQO_CORE_FRONTIER_APPROXIMATION_H_

#include "core/plan_cache.h"
#include "plan/plan_factory.h"

namespace moqo {

/// The paper's approximation-precision schedule: alpha = 25 * 0.99^floor(i/25),
/// clamped to >= 1. Starts coarse (fast, many join orders explored) and
/// refines as iterations progress.
double AlphaForIteration(int iteration);

/// Generalized schedule alpha = start * decay^floor(i/step), clamped to
/// >= 1; the paper's formula is (25, 0.99, 25). Exposed so deployments
/// with very different iteration throughput can rescale the refinement
/// (e.g., decay faster when time budgets are short).
double AlphaForIteration(int iteration, double start, double decay, int step);

/// Function ApproximateFrontiers (Algorithm 3): updates `cache` with
/// alpha-pruned Pareto frontiers for every intermediate result appearing in
/// `plan`. Returns the number of plans inserted into the cache.
int64_t ApproximateFrontiers(const PlanPtr& plan, PlanCache* cache,
                             double alpha, PlanFactory* factory);

}  // namespace moqo

#endif  // MOQO_CORE_FRONTIER_APPROXIMATION_H_
