// Session checkpoint serialization substrate.
//
// A checkpoint captures the full mid-run state of an OptimizerSession —
// RNG stream position, step counter, and algorithm state — in a
// self-describing byte buffer, so a session can be suspended on one
// scheduler instance and restored on another (the in-process stand-in for
// migrating sessions between worker processes; see
// service/online_scheduler.h) with a bitwise-identical continuation.
//
// CheckpointWriter appends fixed-width little-endian primitives to a
// growable buffer; CheckpointReader mirrors every Write* with a Read* and
// degrades to a sticky failure flag (ok()) on malformed input instead of
// throwing, so Restore() can reject corrupt buffers gracefully.
//
// Plans are serialized structurally (scan and join records referencing
// earlier nodes by id) with node-level deduplication, so the structural
// sharing that makes the plan cache O(1) space per entry (paper, Theorem 5)
// survives the round-trip: a sub-plan shared by many cache entries is
// written once and restored as one shared node. Costs are not serialized —
// nodes are rebuilt through the restoring PlanFactory, whose cost stamping
// is deterministic for a fixed query and cost model, so restored cost
// vectors are bit-identical to the originals.
#ifndef MOQO_CORE_CHECKPOINT_H_
#define MOQO_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/table_set.h"
#include "core/plan_cache.h"
#include "plan/plan.h"
#include "query/query.h"

namespace moqo {

class PlanFactory;

/// First bytes of every session checkpoint ("MOQC" little-endian).
inline constexpr uint32_t kCheckpointMagic = 0x43514f4du;

/// Bumped whenever the checkpoint layout changes; Restore() rejects other
/// versions. Version 2 added the warm-start plan archive to the common
/// header fields (see OptimizerSession::BeginFrom).
inline constexpr uint32_t kCheckpointVersion = 2;

/// Appends checkpoint fields to a byte buffer.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  /// Bit-exact (the value is stored as its IEEE-754 bit pattern).
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  /// Length-prefixed raw bytes (nested checkpoints).
  void WriteBytes(const std::vector<uint8_t>& bytes);
  void WriteTableSet(const TableSet& s);
  void WriteIntVector(const std::vector<int>& v);
  void WriteDoubleVector(const std::vector<double>& v);

  /// Writes `plan` (which may be null) as structural records. Nodes
  /// already written by this writer — including sub-plans of other plans —
  /// are referenced by id instead of re-serialized, preserving structural
  /// sharing across the whole checkpoint.
  void WritePlan(const PlanPtr& plan);

  /// Count-prefixed sequence of WritePlan records.
  void WritePlans(const std::vector<PlanPtr>& plans);

  /// Hands the accumulated buffer to the caller.
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  /// Serializes unseen nodes of `plan` post-order and returns its id.
  uint32_t EmitPlanNodes(const PlanPtr& plan);

  std::vector<uint8_t> out_;
  std::unordered_map<const Plan*, uint32_t> plan_ids_;
};

/// Consumes checkpoint fields from a byte buffer. Every Read* past the end
/// of the buffer (or structurally invalid) clears ok() and returns a
/// zero/default value; callers check ok() once after a batch of reads.
class CheckpointReader {
 public:
  /// The caller keeps `buffer` alive for the reader's lifetime. `factory`
  /// rebuilds deserialized plan nodes (and must describe the same query and
  /// cost model as the checkpointing run); it may be null if the buffer
  /// contains no plans.
  CheckpointReader(const std::vector<uint8_t>& buffer, PlanFactory* factory)
      : buf_(&buffer), factory_(factory) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  int32_t ReadI32() { return static_cast<int32_t>(ReadU32()); }
  uint64_t ReadU64();
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }
  double ReadDouble();
  std::string ReadString();
  std::vector<uint8_t> ReadBytes();
  TableSet ReadTableSet();
  std::vector<int> ReadIntVector();
  std::vector<double> ReadDoubleVector();

  /// Mirrors CheckpointWriter::WritePlan. Returns null (which is also a
  /// legal serialized value — check ok()) on malformed input.
  PlanPtr ReadPlan();

  /// Mirrors CheckpointWriter::WritePlans.
  std::vector<PlanPtr> ReadPlans();

  /// False once any read ran past the buffer or hit invalid structure.
  bool ok() const { return ok_; }

  /// True if the whole buffer has been consumed (trailing garbage in a
  /// checkpoint is treated as corruption by Restore()).
  bool AtEnd() const { return pos_ == buf_->size(); }

  /// Bytes consumed so far. Monotonic, so a decoder parsing a payload
  /// embedded in a larger buffer (the wire format's CRC-framed body) can
  /// require exact consumption without copying the payload out: an
  /// accepted parse ending exactly at the payload boundary cannot have
  /// read past it.
  size_t position() const { return pos_; }

 private:
  /// Marks the reader failed and returns a default value.
  void Fail() { ok_ = false; }
  /// True if `n` more bytes are available.
  bool Ensure(size_t n);

  const std::vector<uint8_t>* buf_;
  size_t pos_ = 0;
  bool ok_ = true;
  PlanFactory* factory_;
  /// Nodes deserialized so far; record i defines plan id i.
  std::vector<PlanPtr> nodes_;
};

/// Restore-time validation helper: true if every plan in `plans` covers
/// exactly the relation set `rel`. Result archives hold full-query plans;
/// a corrupt plan reference that decodes to an interior node must fail the
/// restore rather than silently truncate the query.
bool AllPlansCover(const std::vector<PlanPtr>& plans, const TableSet& rel);

/// Serializes a whole plan cache (entry count, then per entry the table
/// set and its plan vector in stored order). Shared by the RMQ and DP
/// session checkpoints so the corruption checks live in one place.
void WritePlanCache(CheckpointWriter* writer, const PlanCache& cache);

/// Mirrors WritePlanCache into `cache` (cleared first), adopting each
/// entry verbatim — restore must not re-prune, as entries were pruned
/// under the alpha in effect when they were inserted. Rejects (returns
/// false) entries whose plans do not cover their key's relation set.
bool ReadPlanCache(CheckpointReader* reader, PlanCache* cache);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320, the zlib/PNG
/// variant) over `size` bytes. Used as the integrity trailer of wire frames
/// (service/wire.h); lives here so all framing primitives share one home.
uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Query serialization records, shared by the wire format and anything
/// else that needs to ship a query next to a session checkpoint. A query
/// is written as catalog + join graph; the table set joined is implied
/// (every query joins all of its catalog's tables, see query/query.h) but
/// written explicitly anyway so a frame is self-describing and a decoder
/// can reject a mismatched set without reconstructing the query first.

/// Per-table statistics, bit-exact (doubles keep their IEEE-754 pattern,
/// so a restored catalog stamps identical costs).
void WriteCatalog(CheckpointWriter* writer, const Catalog& catalog);

/// Mirrors WriteCatalog. Returns false (also clearing the reader's ok())
/// on malformed input: zero tables or more than TableSet::kCapacity,
/// non-finite or non-positive statistics, or a truncated record.
bool ReadCatalog(CheckpointReader* reader, Catalog* catalog);

/// Join predicates in stored order (order is preserved, so selectivity
/// products recompute in the same sequence and round bit-identically).
void WriteJoinGraph(CheckpointWriter* writer, const JoinGraph& graph);

/// Mirrors WriteJoinGraph into a graph over `num_tables` tables. Returns
/// false on malformed input: out-of-range or self-join endpoints, or a
/// selectivity outside (0, 1].
bool ReadJoinGraph(CheckpointReader* reader, int num_tables,
                   JoinGraph* graph);

/// Writes catalog + joined table set + join graph.
void WriteQuery(CheckpointWriter* writer, const Query& query);

/// Mirrors WriteQuery. Returns null on malformed input, including a joined
/// table set that is not exactly {0, ..., NumTables()-1}.
QueryPtr ReadQuery(CheckpointReader* reader);

}  // namespace moqo

#endif  // MOQO_CORE_CHECKPOINT_H_
