// The paper's statistical model of hill-climbing behavior (Section 5).
//
// The analysis models the cost of a random plan per metric as independent
// random variables and derives:
//
//  * Lemma 3 — the probability that one random plan dominates another is
//    (1/2)^l for l metrics;
//  * Lemma 4 — u(n, i) = (1 - (1/2)^(l*i))^n, the probability that none of
//    n neighbors dominates all i plans visited so far;
//  * Theorem 1 — the expected number of plans visited until a local Pareto
//    optimum: sum_i i * u(n,i) * prod_{j<i} (1 - u(n,j));
//  * Lemma 5 — the probability that a random plan is a local Pareto
//    optimum, (1 - (1/2)^l)^n.
//
// These closed forms let benches compare the measured climb path lengths
// (Figure 3, left) against the model's prediction.
#ifndef MOQO_CORE_ANALYSIS_H_
#define MOQO_CORE_ANALYSIS_H_

namespace moqo {

/// Lemma 3: probability that a random plan dominates another under l
/// independent metrics.
double DominanceProbability(int num_metrics);

/// Lemma 4: u(n, i) — probability that none of n neighbor plans dominates
/// all of i plans.
double NoDominatingNeighborProbability(int num_neighbors, int path_length,
                                       int num_metrics);

/// Theorem 1: expected number of plans visited by multi-objective hill
/// climbing until reaching a local Pareto optimum, for a plan with
/// `num_neighbors` neighbors and `num_metrics` metrics. The infinite sum
/// is truncated once the remaining tail mass falls below 1e-12.
double ExpectedClimbPathLength(int num_neighbors, int num_metrics);

/// Lemma 5: probability that a random plan is a local Pareto optimum.
double LocalOptimumProbability(int num_neighbors, int num_metrics);

}  // namespace moqo

#endif  // MOQO_CORE_ANALYSIS_H_
