#include "core/optimizer.h"

namespace moqo {

std::vector<PlanPtr> RunSession(OptimizerSession* session,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) {
  if (callback) {
    // Sessions whose Begin() already produces a result (e.g. SA archiving
    // its start plan) report it before the first step, mirroring the
    // pre-redesign blocking implementations.
    std::vector<PlanPtr> initial = session->Frontier();
    if (!initial.empty()) callback(initial);
  }
  while (!session->Done() && !deadline.Expired()) {
    if (session->Step(deadline) && callback) callback(session->Frontier());
  }
  return session->Frontier();
}

std::vector<PlanPtr> Optimizer::Optimize(
    PlanFactory* factory, Rng* rng, const Deadline& deadline,
    const AnytimeCallback& callback) const {
  std::unique_ptr<OptimizerSession> session = NewSession();
  session->Begin(factory, rng);
  return RunSession(session.get(), deadline, callback);
}

}  // namespace moqo
