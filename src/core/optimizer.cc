#include "core/optimizer.h"

#include "core/checkpoint.h"

namespace moqo {

std::vector<uint8_t> OptimizerSession::Checkpoint() const {
  CheckpointWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteString(CheckpointTag());
  writer.WriteString(rng()->SaveState());
  writer.WriteI64(session_stats_.steps);
  OnCheckpoint(&writer);
  return writer.Take();
}

bool OptimizerSession::Restore(PlanFactory* factory, Rng* rng,
                               const std::vector<uint8_t>& buffer) {
  factory_ = factory;
  rng_ = rng;
  CheckpointReader reader(buffer, factory);
  if (reader.ReadU32() != kCheckpointMagic) return false;
  if (reader.ReadU32() != kCheckpointVersion) return false;
  if (reader.ReadString() != CheckpointTag()) return false;
  if (!rng->LoadState(reader.ReadString())) return false;
  session_stats_ = SessionStats();
  session_stats_.steps = reader.ReadI64();
  if (!reader.ok()) return false;
  if (!OnRestore(&reader)) return false;
  // A checkpoint with trailing bytes (or one whose payload reads ran dry)
  // is corrupt even if every individual field decoded.
  return reader.ok() && reader.AtEnd();
}

std::vector<PlanPtr> RunSession(OptimizerSession* session,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) {
  if (callback) {
    // Sessions whose Begin() already produces a result (e.g. SA archiving
    // its start plan) report it before the first step, mirroring the
    // pre-redesign blocking implementations.
    std::vector<PlanPtr> initial = session->Frontier();
    if (!initial.empty()) callback(initial);
  }
  while (!session->Done() && !deadline.Expired()) {
    if (session->Step(deadline) && callback) callback(session->Frontier());
  }
  return session->Frontier();
}

std::vector<PlanPtr> Optimizer::Optimize(
    PlanFactory* factory, Rng* rng, const Deadline& deadline,
    const AnytimeCallback& callback) const {
  std::unique_ptr<OptimizerSession> session = NewSession();
  session->Begin(factory, rng);
  return RunSession(session.get(), deadline, callback);
}

}  // namespace moqo
