#include "core/optimizer.h"

#include "core/checkpoint.h"

namespace moqo {

std::vector<PlanPtr> OptimizerSession::Frontier() const {
  std::vector<PlanPtr> own = CurrentFrontier();
  if (warm_.empty()) return own;
  // Merge, biased toward the algorithm's plans: every algorithm plan is
  // kept verbatim (approximate algorithms such as DP(alpha) deliberately
  // report representatives that a sibling plan dominates — pruning those
  // here would make a warm run differ from its cold twin), and a warm
  // plan is appended only if no algorithm plan weakly dominates it.
  // Seeding a session with its own frontier therefore reproduces that
  // frontier exactly: every warm plan is weakly dominated by its
  // identical algorithm twin, so nothing is appended — which is what
  // keeps warm and cold runs bitwise comparable.
  std::vector<PlanPtr> merged = own;
  merged.reserve(own.size() + warm_.size());
  for (const PlanPtr& warm : warm_.plans()) {
    bool dominated = false;
    for (const PlanPtr& plan : own) {
      if (plan->cost().WeakDominates(warm->cost())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(warm);
  }
  return merged;
}

std::vector<uint8_t> OptimizerSession::Checkpoint() const {
  CheckpointWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteString(CheckpointTag());
  writer.WriteString(rng()->SaveState());
  writer.WriteI64(session_stats_.steps);
  // The warm-start seed is session state like any other: a warm session
  // suspended mid-run must keep reporting merged frontiers after it
  // resumes on another scheduler.
  writer.WritePlans(warm_.plans());
  OnCheckpoint(&writer);
  return writer.Take();
}

bool OptimizerSession::Restore(PlanFactory* factory, Rng* rng,
                               const std::vector<uint8_t>& buffer) {
  factory_ = factory;
  rng_ = rng;
  CheckpointReader reader(buffer, factory);
  if (reader.ReadU32() != kCheckpointMagic) return false;
  if (reader.ReadU32() != kCheckpointVersion) return false;
  if (reader.ReadString() != CheckpointTag()) return false;
  if (!rng->LoadState(reader.ReadString())) return false;
  session_stats_ = SessionStats();
  session_stats_.steps = reader.ReadI64();
  if (!reader.ok()) return false;
  std::vector<PlanPtr> warm_plans = reader.ReadPlans();
  if (!reader.ok() ||
      !AllPlansCover(warm_plans, factory->query().AllTables())) {
    return false;
  }
  warm_.Clear();
  for (const PlanPtr& plan : warm_plans) warm_.Insert(plan);
  if (!OnRestore(&reader)) return false;
  // A checkpoint with trailing bytes (or one whose payload reads ran dry)
  // is corrupt even if every individual field decoded.
  return reader.ok() && reader.AtEnd();
}

std::vector<PlanPtr> RunSession(OptimizerSession* session,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) {
  if (callback) {
    // Sessions whose Begin() already produces a result (e.g. SA archiving
    // its start plan) report it before the first step, mirroring the
    // pre-redesign blocking implementations.
    std::vector<PlanPtr> initial = session->Frontier();
    if (!initial.empty()) callback(initial);
  }
  while (!session->Done() && !deadline.Expired()) {
    if (session->Step(deadline) && callback) callback(session->Frontier());
  }
  return session->Frontier();
}

std::vector<PlanPtr> Optimizer::Optimize(
    PlanFactory* factory, Rng* rng, const Deadline& deadline,
    const AnytimeCallback& callback) const {
  std::unique_ptr<OptimizerSession> session = NewSession();
  session->Begin(factory, rng);
  return RunSession(session.get(), deadline, callback);
}

}  // namespace moqo
