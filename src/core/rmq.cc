#include "core/rmq.h"

#include "core/frontier_approximation.h"
#include "plan/random_plan.h"

namespace moqo {

std::string Rmq::name() const {
  if (config_.use_climb && config_.share_cache &&
      config_.fixed_alpha == 0.0 && config_.plan_space == PlanSpace::kBushy) {
    return "RMQ";
  }
  std::string n = "RMQ[";
  if (config_.plan_space == PlanSpace::kLeftDeep) n += "leftdeep";
  if (!config_.use_climb) n += "-climb";
  if (!config_.share_cache) n += "-cache";
  if (config_.fixed_alpha >= 1.0) {
    n += "a=" + std::to_string(config_.fixed_alpha);
  }
  n += "]";
  return n;
}

double Rmq::AlphaFor(int iteration) const {
  if (config_.fixed_alpha >= 1.0) return config_.fixed_alpha;
  return AlphaForIteration(iteration, config_.alpha_start,
                           config_.alpha_decay, config_.alpha_step);
}

std::vector<PlanPtr> Rmq::Optimize(PlanFactory* factory, Rng* rng,
                                   const Deadline& deadline,
                                   const AnytimeCallback& callback) {
  stats_ = RmqStats();
  PlanCache cache;
  const TableSet all = factory->query().AllTables();

  int i = 1;
  while (!deadline.Expired() &&
         (config_.max_iterations == 0 || i <= config_.max_iterations)) {
    if (!config_.share_cache && i > 1) {
      // Ablation: forget partial plans between iterations, but keep the
      // result plans for the full query so the output is still anytime.
      std::vector<PlanPtr> results = cache.Lookup(all);
      double alpha = AlphaFor(i);
      cache.Clear();
      for (PlanPtr& p : results) cache.Insert(all, std::move(p), alpha);
    }

    // Step 1: random plan from the configured join-order space.
    PlanPtr plan = config_.plan_space == PlanSpace::kLeftDeep
                       ? RandomLeftDeepPlan(factory, rng)
                       : RandomPlan(factory, rng);

    // Step 2: fast multi-objective hill climbing.
    PlanPtr opt_plan = plan;
    if (config_.use_climb) {
      ClimbStats climb;
      opt_plan =
          ParetoClimb(plan, factory, &climb, deadline, config_.plan_space);
      stats_.path_lengths.push_back(climb.steps);
    }

    // Step 3: approximate the Pareto frontiers of all intermediate results
    // of the locally optimal plan, sharing partial plans via the cache.
    stats_.frontier_insertions +=
        ApproximateFrontiers(opt_plan, &cache, AlphaFor(i), factory);

    ++stats_.iterations;
    if (callback) callback(cache.Lookup(all));
    ++i;
  }

  std::vector<PlanPtr> result = cache.Lookup(all);
  stats_.final_frontier_size = result.size();
  return result;
}

}  // namespace moqo
