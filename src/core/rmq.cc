#include "core/rmq.h"

#include "core/checkpoint.h"
#include "core/frontier_approximation.h"
#include "plan/random_plan.h"

namespace moqo {

std::string Rmq::name() const {
  if (config_.use_climb && config_.share_cache &&
      config_.fixed_alpha == 0.0 && config_.plan_space == PlanSpace::kBushy) {
    return "RMQ";
  }
  std::string n = "RMQ[";
  if (config_.plan_space == PlanSpace::kLeftDeep) n += "leftdeep";
  if (!config_.use_climb) n += "-climb";
  if (!config_.share_cache) n += "-cache";
  if (config_.fixed_alpha >= 1.0) {
    n += "a=" + std::to_string(config_.fixed_alpha);
  }
  n += "]";
  return n;
}

double RmqAlphaFor(const RmqConfig& config, int iteration) {
  if (config.fixed_alpha >= 1.0) return config.fixed_alpha;
  return AlphaForIteration(iteration, config.alpha_start, config.alpha_decay,
                           config.alpha_step);
}

void RmqSession::OnBegin() {
  stats_ = RmqStats();
  cache_.Clear();
  all_ = factory()->query().AllTables();
  next_iteration_ = 1;
}

bool RmqSession::Done() const {
  return config_.max_iterations > 0 &&
         next_iteration_ > config_.max_iterations;
}

std::vector<PlanPtr> RmqSession::CurrentFrontier() const {
  return cache_.Lookup(all_);
}

bool RmqSession::DoStep(const Deadline& budget) {
  const int i = next_iteration_;
  if (!config_.share_cache && i > 1) {
    // Ablation: forget partial plans between iterations, but keep the
    // result plans for the full query so the output is still anytime.
    std::vector<PlanPtr> results = cache_.Lookup(all_);
    double alpha = RmqAlphaFor(config_, i);
    cache_.Clear();
    for (PlanPtr& p : results) cache_.Insert(all_, std::move(p), alpha);
  }

  // Step 1: random plan from the configured join-order space.
  PlanPtr plan = config_.plan_space == PlanSpace::kLeftDeep
                     ? RandomLeftDeepPlan(factory(), rng())
                     : RandomPlan(factory(), rng());

  // Step 2: fast multi-objective hill climbing.
  PlanPtr opt_plan = plan;
  if (config_.use_climb) {
    ClimbStats climb;
    opt_plan =
        ParetoClimb(plan, factory(), &climb, budget, config_.plan_space);
    stats_.path_lengths.push_back(climb.steps);
  }

  // Step 3: approximate the Pareto frontiers of all intermediate results
  // of the locally optimal plan, sharing partial plans via the cache.
  stats_.frontier_insertions += ApproximateFrontiers(
      opt_plan, &cache_, RmqAlphaFor(config_, i), factory());

  ++stats_.iterations;
  stats_.final_frontier_size = cache_.Lookup(all_).size();
  ++next_iteration_;
  // The cache almost always absorbs new (partial) plans, and the paper's
  // harness re-scores the frontier after every iteration; report a
  // potential change unconditionally.
  return true;
}

void RmqSession::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WriteI32(stats_.iterations);
  writer->WriteIntVector(stats_.path_lengths);
  writer->WriteI64(stats_.frontier_insertions);
  writer->WriteU64(stats_.final_frontier_size);
  writer->WriteI32(next_iteration_);
  WritePlanCache(writer, cache_);
}

bool RmqSession::OnRestore(CheckpointReader* reader) {
  stats_ = RmqStats();
  stats_.iterations = reader->ReadI32();
  stats_.path_lengths = reader->ReadIntVector();
  stats_.frontier_insertions = reader->ReadI64();
  stats_.final_frontier_size = reader->ReadU64();
  next_iteration_ = reader->ReadI32();
  all_ = factory()->query().AllTables();
  return ReadPlanCache(reader, &cache_);
}

}  // namespace moqo
