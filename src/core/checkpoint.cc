#include "core/checkpoint.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "plan/plan_factory.h"

namespace moqo {

namespace {

// Record tags of the structural plan encoding. A WritePlan() call emits
// zero or more definition records (whose ids are assigned in emission
// order) followed by exactly one kNull or kRef record.
constexpr uint8_t kPlanNull = 0;
constexpr uint8_t kPlanRef = 1;
constexpr uint8_t kPlanScanDef = 2;
constexpr uint8_t kPlanJoinDef = 3;

}  // namespace

void CheckpointWriter::WriteU8(uint8_t v) { out_.push_back(v); }

void CheckpointWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void CheckpointWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void CheckpointWriter::WriteDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void CheckpointWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void CheckpointWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteU64(bytes.size());
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void CheckpointWriter::WriteTableSet(const TableSet& s) {
  WriteU32(static_cast<uint32_t>(s.Count()));
  s.ForEach([this](int table) { WriteU32(static_cast<uint32_t>(table)); });
}

void CheckpointWriter::WriteIntVector(const std::vector<int>& v) {
  WriteU64(v.size());
  for (int x : v) WriteI32(x);
}

void CheckpointWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

uint32_t CheckpointWriter::EmitPlanNodes(const PlanPtr& plan) {
  auto it = plan_ids_.find(plan.get());
  if (it != plan_ids_.end()) return it->second;
  uint32_t id;
  if (plan->IsJoin()) {
    uint32_t outer = EmitPlanNodes(plan->outer());
    uint32_t inner = EmitPlanNodes(plan->inner());
    WriteU8(kPlanJoinDef);
    WriteU32(outer);
    WriteU32(inner);
    WriteU8(static_cast<uint8_t>(plan->join_op()));
  } else {
    WriteU8(kPlanScanDef);
    WriteU32(static_cast<uint32_t>(plan->table()));
    WriteU8(static_cast<uint8_t>(plan->scan_op()));
  }
  id = static_cast<uint32_t>(plan_ids_.size());
  plan_ids_.emplace(plan.get(), id);
  return id;
}

void CheckpointWriter::WritePlan(const PlanPtr& plan) {
  if (plan == nullptr) {
    WriteU8(kPlanNull);
    return;
  }
  uint32_t id = EmitPlanNodes(plan);
  WriteU8(kPlanRef);
  WriteU32(id);
}

void CheckpointWriter::WritePlans(const std::vector<PlanPtr>& plans) {
  WriteU64(plans.size());
  for (const PlanPtr& plan : plans) WritePlan(plan);
}

bool CheckpointReader::Ensure(size_t n) {
  if (!ok_ || buf_->size() - pos_ < n) {
    Fail();
    return false;
  }
  return true;
}

uint8_t CheckpointReader::ReadU8() {
  if (!Ensure(1)) return 0;
  return (*buf_)[pos_++];
}

uint32_t CheckpointReader::ReadU32() {
  if (!Ensure(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>((*buf_)[pos_++]) << (8 * i);
  }
  return v;
}

uint64_t CheckpointReader::ReadU64() {
  if (!Ensure(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>((*buf_)[pos_++]) << (8 * i);
  }
  return v;
}

double CheckpointReader::ReadDouble() {
  uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::ReadString() {
  uint64_t size = ReadU64();
  if (!Ensure(size)) return std::string();
  std::string s(reinterpret_cast<const char*>(buf_->data()) + pos_, size);
  pos_ += size;
  return s;
}

std::vector<uint8_t> CheckpointReader::ReadBytes() {
  uint64_t size = ReadU64();
  if (!Ensure(size)) return {};
  std::vector<uint8_t> bytes(buf_->begin() + static_cast<ptrdiff_t>(pos_),
                             buf_->begin() +
                                 static_cast<ptrdiff_t>(pos_ + size));
  pos_ += size;
  return bytes;
}

TableSet CheckpointReader::ReadTableSet() {
  uint32_t count = ReadU32();
  TableSet s;
  for (uint32_t i = 0; i < count && ok_; ++i) {
    uint32_t table = ReadU32();
    if (table >= static_cast<uint32_t>(TableSet::kCapacity)) {
      Fail();
      break;
    }
    s.Add(static_cast<int>(table));
  }
  return s;
}

std::vector<int> CheckpointReader::ReadIntVector() {
  uint64_t size = ReadU64();
  if (!ok_ || size > (buf_->size() - pos_) / 4) {
    Fail();
    return {};
  }
  std::vector<int> v(size);
  for (uint64_t i = 0; i < size; ++i) v[i] = ReadI32();
  return v;
}

std::vector<double> CheckpointReader::ReadDoubleVector() {
  uint64_t size = ReadU64();
  if (!ok_ || size > (buf_->size() - pos_) / 8) {
    Fail();
    return {};
  }
  std::vector<double> v(size);
  for (uint64_t i = 0; i < size; ++i) v[i] = ReadDouble();
  return v;
}

PlanPtr CheckpointReader::ReadPlan() {
  while (ok_) {
    uint8_t tag = ReadU8();
    switch (tag) {
      case kPlanNull:
        return nullptr;
      case kPlanRef: {
        uint32_t id = ReadU32();
        if (id >= nodes_.size()) {
          Fail();
          return nullptr;
        }
        return nodes_[id];
      }
      case kPlanScanDef: {
        uint32_t table = ReadU32();
        uint8_t op = ReadU8();
        if (factory_ == nullptr ||
            table >= static_cast<uint32_t>(
                         factory_->query().NumTables()) ||
            op >= static_cast<uint8_t>(kNumScanAlgorithms)) {
          Fail();
          return nullptr;
        }
        // Reject scan operators the catalog does not offer for the table
        // (an index scan on an unindexed table would trip PlanFactory
        // invariants).
        ScanAlgorithm scan = static_cast<ScanAlgorithm>(op);
        bool applicable = false;
        for (ScanAlgorithm candidate :
             factory_->ApplicableScans(static_cast<int>(table))) {
          applicable |= candidate == scan;
        }
        if (!applicable) {
          Fail();
          return nullptr;
        }
        nodes_.push_back(factory_->MakeScan(static_cast<int>(table), scan));
        break;
      }
      case kPlanJoinDef: {
        uint32_t outer = ReadU32();
        uint32_t inner = ReadU32();
        uint8_t op = ReadU8();
        if (factory_ == nullptr || outer >= nodes_.size() ||
            inner >= nodes_.size() ||
            op >= static_cast<uint8_t>(kNumJoinAlgorithms) ||
            !nodes_[outer]->rel().DisjointWith(nodes_[inner]->rel())) {
          Fail();
          return nullptr;
        }
        nodes_.push_back(factory_->MakeJoin(
            nodes_[outer], nodes_[inner], static_cast<JoinAlgorithm>(op)));
        break;
      }
      default:
        Fail();
        return nullptr;
    }
  }
  return nullptr;
}

std::vector<PlanPtr> CheckpointReader::ReadPlans() {
  uint64_t count = ReadU64();
  // Every serialized plan is at least one tag byte; a count beyond the
  // remaining bytes is corruption, not a huge allocation request.
  if (!ok_ || count > buf_->size() - pos_) {
    Fail();
    return {};
  }
  std::vector<PlanPtr> plans;
  plans.reserve(count);
  for (uint64_t i = 0; i < count && ok_; ++i) {
    PlanPtr plan = ReadPlan();
    // WritePlans never emits null elements (only the standalone WritePlan
    // does, for optional fields), so a null here is corruption that would
    // otherwise plant nullptrs in restored archives and caches.
    if (plan == nullptr) {
      Fail();
      break;
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

bool AllPlansCover(const std::vector<PlanPtr>& plans, const TableSet& rel) {
  for (const PlanPtr& plan : plans) {
    if (plan == nullptr || plan->rel() != rel) return false;
  }
  return true;
}

void WritePlanCache(CheckpointWriter* writer, const PlanCache& cache) {
  // The cache is an unordered_map: its iteration order depends on
  // insertion history and hash seeding, so serializing it directly would
  // make checkpoint bytes — and everything derived from them (CRCs,
  // snapshot frames, bitwise restore comparisons) — nondeterministic.
  // Sort the keys into canonical TableSet order first.
  std::vector<const TableSet*> keys;
  keys.reserve(cache.entries().size());
  for (const auto& [rel, entry] : cache.entries()) keys.push_back(&rel);
  std::sort(keys.begin(), keys.end(),
            [](const TableSet* a, const TableSet* b) { return *a < *b; });
  writer->WriteU64(keys.size());
  for (const TableSet* rel : keys) {
    writer->WriteTableSet(*rel);
    writer->WritePlans(cache.entries().at(*rel).plans);
  }
}

bool ReadPlanCache(CheckpointReader* reader, PlanCache* cache) {
  cache->Clear();
  uint64_t entries = reader->ReadU64();
  for (uint64_t i = 0; i < entries && reader->ok(); ++i) {
    TableSet rel = reader->ReadTableSet();
    std::vector<PlanPtr> plans = reader->ReadPlans();
    // Every cached plan must cover exactly its key's relation set: both
    // RMQ's frontier approximation and DP's lattice joins recombine
    // entries relying on it, and their guards are Debug-only asserts.
    if (!AllPlansCover(plans, rel)) return false;
    cache->Adopt(rel, std::move(plans));
  }
  return reader->ok();
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void WriteCatalog(CheckpointWriter* writer, const Catalog& catalog) {
  writer->WriteU32(static_cast<uint32_t>(catalog.NumTables()));
  for (int t = 0; t < catalog.NumTables(); ++t) {
    const TableStats& stats = catalog.Table(t);
    writer->WriteDouble(stats.cardinality);
    writer->WriteDouble(stats.tuple_bytes);
    writer->WriteU8(stats.has_index ? 1 : 0);
  }
}

bool ReadCatalog(CheckpointReader* reader, Catalog* catalog) {
  uint32_t num_tables = reader->ReadU32();
  // A query joins at least one table; plan generation indexes table 0
  // unconditionally (its n >= 1 precondition is a Debug-only assert), so
  // an empty catalog must be rejected here, on any build type.
  if (!reader->ok() || num_tables == 0 ||
      num_tables > static_cast<uint32_t>(TableSet::kCapacity)) {
    return false;
  }
  std::vector<TableStats> stats;
  stats.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables && reader->ok(); ++t) {
    TableStats s;
    s.cardinality = reader->ReadDouble();
    s.tuple_bytes = reader->ReadDouble();
    uint8_t has_index = reader->ReadU8();
    // The cost model divides by these; a zero, negative, NaN, or infinite
    // statistic would poison every cost stamped from the catalog.
    if (!std::isfinite(s.cardinality) || s.cardinality <= 0.0 ||
        !std::isfinite(s.tuple_bytes) || s.tuple_bytes <= 0.0 ||
        has_index > 1) {
      return false;
    }
    s.has_index = has_index == 1;
    stats.push_back(s);
  }
  if (!reader->ok()) return false;
  *catalog = Catalog(std::move(stats));
  return true;
}

void WriteJoinGraph(CheckpointWriter* writer, const JoinGraph& graph) {
  writer->WriteU64(graph.Edges().size());
  for (const JoinEdge& edge : graph.Edges()) {
    writer->WriteU32(static_cast<uint32_t>(edge.left));
    writer->WriteU32(static_cast<uint32_t>(edge.right));
    writer->WriteDouble(edge.selectivity);
  }
}

bool ReadJoinGraph(CheckpointReader* reader, int num_tables,
                   JoinGraph* graph) {
  uint64_t num_edges = reader->ReadU64();
  // Each serialized edge is 16 bytes; a count beyond what the buffer could
  // hold is corruption, not a request to reserve terabytes.
  if (!reader->ok() || num_edges > (1u << 24)) return false;
  JoinGraph out(num_tables);
  for (uint64_t i = 0; i < num_edges && reader->ok(); ++i) {
    uint32_t left = reader->ReadU32();
    uint32_t right = reader->ReadU32();
    double selectivity = reader->ReadDouble();
    // AddEdge's preconditions are Debug-only asserts; a decoder must
    // enforce them on any build type.
    if (left >= static_cast<uint32_t>(num_tables) ||
        right >= static_cast<uint32_t>(num_tables) || left == right ||
        !std::isfinite(selectivity) || selectivity <= 0.0 ||
        selectivity > 1.0) {
      return false;
    }
    out.AddEdge(static_cast<int>(left), static_cast<int>(right),
                selectivity);
  }
  if (!reader->ok()) return false;
  *graph = std::move(out);
  return true;
}

void WriteQuery(CheckpointWriter* writer, const Query& query) {
  WriteCatalog(writer, query.catalog());
  writer->WriteTableSet(query.AllTables());
  WriteJoinGraph(writer, query.graph());
}

QueryPtr ReadQuery(CheckpointReader* reader) {
  Catalog catalog;
  if (!ReadCatalog(reader, &catalog)) return nullptr;
  TableSet joined = reader->ReadTableSet();
  // Every query in this library joins all of its catalog's tables; a frame
  // claiming otherwise was not produced by WriteQuery.
  if (!reader->ok() || joined != TableSet::FirstN(catalog.NumTables())) {
    return nullptr;
  }
  JoinGraph graph;
  if (!ReadJoinGraph(reader, catalog.NumTables(), &graph)) return nullptr;
  return std::make_shared<const Query>(std::move(catalog), std::move(graph));
}

}  // namespace moqo
