// RMQ — the paper's randomized multi-objective query optimizer
// (Algorithm 1: RandomMOQO).
//
// Each iteration (i) samples a uniformly random bushy plan, (ii) improves it
// to a local Pareto optimum with the fast multi-objective hill climber of
// Algorithm 2, and (iii) approximates the Pareto frontier of every
// intermediate result of the locally optimal plan (Algorithm 3), sharing
// partial plans across iterations through the plan cache. The approximation
// precision alpha is refined over iterations, so a coarse approximation of
// the whole frontier appears quickly and converges toward the exact Pareto
// set as time passes.
//
// RmqSession exposes the algorithm incrementally: one Step() is one RMQ
// iteration, and the plan cache plus all run counters live in the session,
// so Rmq objects are stateless and shareable.
#ifndef MOQO_CORE_RMQ_H_
#define MOQO_CORE_RMQ_H_

#include <memory>
#include <vector>

#include "core/optimizer.h"
#include "core/pareto_climb.h"
#include "core/plan_cache.h"
#include "plan/transformations.h"

namespace moqo {

/// Tunables and ablation switches for RMQ.
struct RmqConfig {
  /// Join-order search space: unconstrained bushy (the paper's default) or
  /// left-deep only (Section 4.1 notes the algorithm adapts by swapping
  /// the random plan generator and the transformation rule set).
  PlanSpace plan_space = PlanSpace::kBushy;
  /// If false, skips the hill-climbing phase and approximates frontiers
  /// directly around the random plan (ablation: value of local search).
  bool use_climb = true;
  /// If false, the plan cache is cleared before every iteration, disabling
  /// cross-iteration sharing of partial plans (ablation: value of
  /// decomposability).
  bool share_cache = true;
  /// If >= 1, overrides the iteration-dependent alpha schedule with a fixed
  /// approximation factor (ablation: value of precision refinement).
  double fixed_alpha = 0.0;
  /// Alpha schedule alpha = start * decay^floor(i/step); defaults are the
  /// paper's formula 25 * 0.99^floor(i/25).
  double alpha_start = 25.0;
  double alpha_decay = 0.99;
  int alpha_step = 25;
  /// Stop after this many iterations (0 = until deadline).
  int max_iterations = 0;
};

/// Counters accumulated over one session (one run).
struct RmqStats {
  int iterations = 0;
  /// Climbing path lengths, one entry per iteration (Figure 3, left).
  std::vector<int> path_lengths;
  /// Total plans constructed during frontier approximation.
  int64_t frontier_insertions = 0;
  /// Result frontier size after the most recent iteration (Figure 3,
  /// right).
  size_t final_frontier_size = 0;
};

/// Approximation factor used in iteration `iteration` under `config`
/// (fixed override or the paper's schedule).
double RmqAlphaFor(const RmqConfig& config, int iteration);

/// One incremental RMQ run; each Step() is one Algorithm-1 iteration.
class RmqSession : public OptimizerSession {
 public:
  explicit RmqSession(RmqConfig config = RmqConfig()) : config_(config) {}

  std::vector<PlanPtr> CurrentFrontier() const override;
  bool Done() const override;

  /// Statistics of this run so far.
  const RmqStats& stats() const { return stats_; }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "rmq"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  RmqConfig config_;
  RmqStats stats_;
  PlanCache cache_;
  TableSet all_;
  int next_iteration_ = 1;
};

/// The paper's algorithm (called "RMQ" in Sections 5 and 6).
class Rmq : public Optimizer {
 public:
  explicit Rmq(RmqConfig config = RmqConfig()) : config_(config) {}

  std::string name() const override;

  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<RmqSession>(config_);
  }

  /// Approximation factor used in the given iteration (schedule or fixed
  /// override). Exposed for tests.
  double AlphaFor(int iteration) const {
    return RmqAlphaFor(config_, iteration);
  }

 private:
  RmqConfig config_;
};

}  // namespace moqo

#endif  // MOQO_CORE_RMQ_H_
