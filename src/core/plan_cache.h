// Partial-plan cache (the `P` of Algorithms 1 and 3).
//
// The cache maps each intermediate result (a set of joined tables) that was
// encountered in any iteration to a set of partial plans generating it,
// pruned so that no cached plan's cost can be approximated (factor alpha)
// by another cached plan with the same output representation. The cache is
// how RMQ shares Pareto-optimal partial plans across iterations: frontier
// approximation recombines cached sub-plans that may stem from *different*
// join orders than the current locally optimal plan.
//
// Each entry keeps a struct-of-arrays mirror of its plans' cost vectors
// (cost/cost_matrix.h) plus a flat output-format tag array, so the pruning
// sweep of Insert runs over contiguous doubles and bytes instead of
// dereferencing a plan node per comparison. Prune decisions are bit-for-bit
// those of the scalar implementation.
#ifndef MOQO_CORE_PLAN_CACHE_H_
#define MOQO_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/table_set.h"
#include "cost/cost_matrix.h"
#include "plan/plan.h"

namespace moqo {

/// Maps table sets to alpha-pruned sets of non-dominated partial plans.
class PlanCache {
 public:
  /// One cached table set: the plans plus flat mirrors of their cost rows
  /// and output-format tags, kept in lockstep (same order).
  struct Entry {
    std::vector<PlanPtr> plans;
    CostMatrix costs;
    std::vector<std::uint8_t> formats;
  };

  PlanCache() = default;

  /// The paper's Prune (Algorithm 3): inserts `plan` under `rel` unless an
  /// existing same-representation plan alpha-approximately dominates it;
  /// evicts existing plans that the new plan (factor 1) dominates. Returns
  /// true if the plan was inserted.
  bool Insert(const TableSet& rel, const PlanPtr& plan, double alpha);

  /// Cached plans for `rel`; empty if the table set was never seen.
  const std::vector<PlanPtr>& Lookup(const TableSet& rel) const;

  /// Number of distinct table sets with cached plans.
  size_t NumTableSets() const { return cache_.size(); }

  /// Total number of cached partial plans.
  size_t TotalPlans() const;

  /// Drops all entries.
  void Clear() { cache_.clear(); }

  /// Read access to the underlying map, for checkpoint serialization.
  const std::unordered_map<TableSet, Entry, TableSetHash>& entries() const {
    return cache_;
  }

  /// Replaces the entry for `rel` verbatim with a previously captured plan
  /// vector (checkpoint restore). Bypasses pruning on purpose: entries were
  /// pruned under the alpha in effect when they were inserted, so
  /// re-running Insert with the current alpha could evict plans the
  /// original cache still holds and diverge the resumed run.
  void Adopt(const TableSet& rel, std::vector<PlanPtr> plans);

 private:
  std::unordered_map<TableSet, Entry, TableSetHash> cache_;
  // Scratch keep-mask reused across inserts to avoid reallocation.
  std::vector<std::uint8_t> keep_;
};

}  // namespace moqo

#endif  // MOQO_CORE_PLAN_CACHE_H_
