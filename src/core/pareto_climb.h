// Fast multi-objective hill climbing (Algorithm 2 of the paper).
//
// ParetoClimb moves from a plan to a strictly dominating neighbor until no
// neighbor dominates (a local Pareto optimum). Two optimizations distinguish
// it from naive hill climbing (Section 4.2):
//
//  1. Principle of optimality: a mutation that worsens the sub-plan it was
//     applied to cannot improve the whole plan, so candidate mutations are
//     evaluated locally (constant time) instead of re-costing the full plan.
//  2. Subtree parallelism: ParetoStep recursively improves the outer and
//     inner sub-plans and recombines, so many beneficial mutations in
//     independent subtrees are applied in a single step, shortening the
//     climbing path.
//
// NaiveClimb implements the textbook single-mutation-per-step climber over
// the same neighborhood; it reaches local optima of the same quality but is
// asymptotically slower (quantified in bench/ablation_climb).
#ifndef MOQO_CORE_PARETO_CLIMB_H_
#define MOQO_CORE_PARETO_CLIMB_H_

#include <vector>

#include "common/deadline.h"
#include "plan/plan_factory.h"
#include "plan/transformations.h"

namespace moqo {

/// Observability counters filled by the climbing functions.
struct ClimbStats {
  /// Accepted climbing steps (path length to the local optimum).
  int steps = 0;
  /// Plans constructed while exploring mutations.
  int64_t plans_examined = 0;
};

/// One parallel transformation step (function ParetoStep, Algorithm 2):
/// recursively improves sub-plans, recombines improved sub-plan pairs, and
/// applies all root mutations, pruning to a constant-width plan set per
/// output data representation (the paper's Lemma 2 assumes one plan per
/// node; see kMaxPerFormat in the implementation). The result is never
/// empty. Because the width is bounded, the result may not contain a weak
/// dominator of `p` itself — ParetoClimb therefore only *moves* on strict
/// dominance, which preserves the climb-never-worsens invariant.
std::vector<PlanPtr> ParetoStep(const PlanPtr& p, PlanFactory* factory,
                                ClimbStats* stats = nullptr,
                                PlanSpace space = PlanSpace::kBushy);

/// Climbs from `p` to a local Pareto optimum (function ParetoClimb,
/// Algorithm 2). An optional deadline aborts long climbs early (the
/// current best plan is returned).
PlanPtr ParetoClimb(const PlanPtr& p, PlanFactory* factory,
                    ClimbStats* stats = nullptr,
                    const Deadline& deadline = Deadline(),
                    PlanSpace space = PlanSpace::kBushy);

/// Naive climber: evaluates every complete neighbor plan, moves to one that
/// strictly dominates, repeats. Same fixed point quality, no subtree
/// parallelism, quadratic per-step cost. Used by tests and ablations.
PlanPtr NaiveClimb(const PlanPtr& p, PlanFactory* factory,
                   ClimbStats* stats = nullptr,
                   const Deadline& deadline = Deadline());

/// True if no neighbor of `p` strictly dominates `p` (local Pareto
/// optimality under the shared transformation rule set).
bool IsLocalParetoOptimum(const PlanPtr& p, PlanFactory* factory);

}  // namespace moqo

#endif  // MOQO_CORE_PARETO_CLIMB_H_
