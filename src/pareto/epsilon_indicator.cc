#include "pareto/epsilon_indicator.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "cost/cost_matrix.h"

namespace moqo {

std::vector<CostVector> ParetoFilter(std::vector<CostVector> vectors) {
  // Struct-of-arrays filter: the kept set lives in a flat cost matrix and
  // each incoming vector runs one fused reject/evict sweep over it — the
  // same scan order and comparisons as the former two-pass loop (reject on
  // a weak dominator aborts before any mutation; after a reject-free sweep
  // "strictly dominates" reduces to "weakly dominates" because equality
  // would have rejected). Identical output, one pass per candidate.
  CostMatrix kept;
  std::vector<std::uint8_t> keep;
  for (const CostVector& v : vectors) {
    const double* cand = v.data();
    const size_t n = kept.rows();
    bool rejected = false;
    bool any_evicted = false;
    for (size_t r = 0; r < n; ++r) {
      bool row_le_cand = false;
      bool cand_le_row = false;
      DominanceCompare(kept.Row(r), cand, &row_le_cand, &cand_le_row);
      if (row_le_cand) {
        rejected = true;
        break;
      }
      if (cand_le_row) {
        if (!any_evicted) keep.assign(n, 1);
        keep[r] = 0;
        any_evicted = true;
      }
    }
    if (rejected) continue;
    if (any_evicted) kept.Compact(keep);
    kept.PushRow(v);
  }

  std::vector<CostVector> out;
  out.reserve(kept.rows());
  for (size_t r = 0; r < kept.rows(); ++r) out.push_back(kept.RowVector(r));
  return out;
}

double AlphaError(const std::vector<CostVector>& approx,
                  const std::vector<CostVector>& reference) {
  if (reference.empty()) return 1.0;
  if (approx.empty()) return std::numeric_limits<double>::infinity();
  double worst = 1.0;
  for (const CostVector& r : reference) {
    double best = std::numeric_limits<double>::infinity();
    for (const CostVector& a : approx) {
      best = std::min(best, a.MaxRatioOver(r));
      if (best <= worst) break;  // cannot raise the max any further
    }
    worst = std::max(worst, best);
  }
  return worst;
}

std::vector<CostVector> UnionFrontier(
    const std::vector<std::vector<CostVector>>& frontiers) {
  std::vector<CostVector> all;
  for (const auto& f : frontiers) all.insert(all.end(), f.begin(), f.end());
  return ParetoFilter(std::move(all));
}

}  // namespace moqo
