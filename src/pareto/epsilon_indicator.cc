#include "pareto/epsilon_indicator.h"

#include <algorithm>
#include <limits>

namespace moqo {

std::vector<CostVector> ParetoFilter(std::vector<CostVector> vectors) {
  std::vector<CostVector> out;
  for (const CostVector& v : vectors) {
    bool dominated = false;
    for (const CostVector& kept : out) {
      if (kept.WeakDominates(v)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const CostVector& kept) {
                               return v.StrictlyDominates(kept);
                             }),
              out.end());
    out.push_back(v);
  }
  return out;
}

double AlphaError(const std::vector<CostVector>& approx,
                  const std::vector<CostVector>& reference) {
  if (reference.empty()) return 1.0;
  if (approx.empty()) return std::numeric_limits<double>::infinity();
  double worst = 1.0;
  for (const CostVector& r : reference) {
    double best = std::numeric_limits<double>::infinity();
    for (const CostVector& a : approx) {
      best = std::min(best, a.MaxRatioOver(r));
      if (best <= worst) break;  // cannot raise the max any further
    }
    worst = std::max(worst, best);
  }
  return worst;
}

std::vector<CostVector> UnionFrontier(
    const std::vector<std::vector<CostVector>>& frontiers) {
  std::vector<CostVector> all;
  for (const auto& f : frontiers) all.insert(all.end(), f.begin(), f.end());
  return ParetoFilter(std::move(all));
}

}  // namespace moqo
