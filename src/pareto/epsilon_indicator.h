// Approximation-quality measurement.
//
// The paper judges an optimizer's plan set by the lowest alpha such that the
// set is an alpha-approximate Pareto set of a reference frontier: for every
// reference vector r there must be a produced vector a with a <= alpha * r
// component-wise. This equals the multiplicative epsilon indicator of
// Zitzler & Thiele with alpha = 1 + epsilon (Section 6.1).
#ifndef MOQO_PARETO_EPSILON_INDICATOR_H_
#define MOQO_PARETO_EPSILON_INDICATOR_H_

#include <vector>

#include "cost/cost_vector.h"

namespace moqo {

/// Removes strictly dominated vectors and exact duplicates; the result is a
/// Pareto frontier (mutually non-dominated cost vectors).
std::vector<CostVector> ParetoFilter(std::vector<CostVector> vectors);

/// Smallest alpha >= 1 such that `approx` alpha-approximately dominates
/// every vector in `reference`. Returns +infinity if `approx` is empty and
/// `reference` is not; returns 1 if `reference` is empty.
double AlphaError(const std::vector<CostVector>& approx,
                  const std::vector<CostVector>& reference);

/// Pareto-filtered union of several frontiers; used to build the evaluation
/// reference frontier from all algorithms' outputs (Section 6.1).
std::vector<CostVector> UnionFrontier(
    const std::vector<std::vector<CostVector>>& frontiers);

}  // namespace moqo

#endif  // MOQO_PARETO_EPSILON_INDICATOR_H_
