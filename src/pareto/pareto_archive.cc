#include "pareto/pareto_archive.h"

#include <algorithm>

namespace moqo {

// `plan` is taken by reference and only copied in on acceptance, so
// rejected candidates never touch the shared_ptr control block.
bool ParetoArchive::Insert(const PlanPtr& plan) {
  const CostVector& cost = plan->cost();
  const double* cand = cost.data();
  const size_t n = costs_.rows();
  assert(plans_.size() == n);

  // Fused one-pass sweep, replacing the former reject pass (any archived
  // plan weakly dominates the candidate?) followed by an evict pass (which
  // archived plans does the candidate strictly dominate?). Scanning rows in
  // the same order with the same comparisons, a reject aborts the sweep
  // before any mutation — exactly the old early return — and if no row
  // rejects, no row weakly dominates the candidate, so "candidate strictly
  // dominates row" reduces to "candidate weakly dominates row" (equality
  // would have rejected). Bit-identical outcomes, one pass. The keep mask
  // is initialized lazily on the first eviction; reject and clean-append
  // sweeps never touch it.
  bool any_evicted = false;
  for (size_t r = 0; r < n; ++r) {
    bool row_le_cand = false;
    bool cand_le_row = false;
    DominanceCompare(costs_.Row(r), cand, &row_le_cand, &cand_le_row);
    if (row_le_cand) return false;
    if (cand_le_row) {
      if (!any_evicted) keep_.assign(n, 1);
      keep_[r] = 0;
      any_evicted = true;
    }
  }
  if (any_evicted) {
    size_t out = 0;
    for (size_t r = 0; r < n; ++r) {
      if (keep_[r]) plans_[out++] = std::move(plans_[r]);
    }
    plans_.resize(out);
    costs_.Compact(keep_);
  }
  costs_.PushRow(cost);
  plans_.push_back(plan);
  return true;
}

std::vector<CostVector> ParetoArchive::Frontier() const {
  std::vector<CostVector> out;
  out.reserve(plans_.size());
  for (size_t r = 0; r < plans_.size(); ++r) out.push_back(costs_.RowVector(r));
  return out;
}

void ParetoArchive::Adopt(std::vector<PlanPtr> plans) {
  plans_ = std::move(plans);
  costs_.Clear();
  for (const PlanPtr& p : plans_) costs_.PushRow(p->cost());
}

}  // namespace moqo
