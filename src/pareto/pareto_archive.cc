#include "pareto/pareto_archive.h"

#include <algorithm>

namespace moqo {

bool ParetoArchive::Insert(PlanPtr plan) {
  for (const PlanPtr& p : plans_) {
    if (p->cost().WeakDominates(plan->cost())) return false;
  }
  plans_.erase(std::remove_if(plans_.begin(), plans_.end(),
                              [&](const PlanPtr& p) {
                                return plan->cost().StrictlyDominates(
                                    p->cost());
                              }),
               plans_.end());
  plans_.push_back(std::move(plan));
  return true;
}

std::vector<CostVector> ParetoArchive::Frontier() const {
  std::vector<CostVector> out;
  out.reserve(plans_.size());
  for (const PlanPtr& p : plans_) out.push_back(p->cost());
  return out;
}

}  // namespace moqo
