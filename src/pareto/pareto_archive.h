// Non-dominated plan archives.
//
// A ParetoArchive maintains the set of mutually non-dominated plans seen so
// far, compared on cost vectors only (the final result set of a
// multi-objective optimizer; the paper's quality metric judges cost vectors,
// not data representations). Equal-cost duplicates are kept only once.
//
// This differs from the *plan cache* pruning of Algorithm 3 (see
// core/plan_cache.h), which is representation-aware and approximate.
#ifndef MOQO_PARETO_PARETO_ARCHIVE_H_
#define MOQO_PARETO_PARETO_ARCHIVE_H_

#include <cstdint>
#include <vector>

#include "cost/cost_matrix.h"
#include "cost/cost_vector.h"
#include "plan/plan.h"

namespace moqo {

/// Set of mutually non-dominated plans (cost-only comparison).
class ParetoArchive {
 public:
  ParetoArchive() = default;

  /// Inserts `plan` unless an archived plan weakly dominates it; evicts
  /// archived plans that `plan` strictly dominates. Returns true if the
  /// plan was inserted.
  bool Insert(const PlanPtr& plan);

  /// The archived plans (unspecified order).
  const std::vector<PlanPtr>& plans() const { return plans_; }

  /// Cost vectors of the archived plans.
  std::vector<CostVector> Frontier() const;

  /// Number of archived plans.
  size_t size() const { return plans_.size(); }

  /// True if no plan has been archived.
  bool empty() const { return plans_.empty(); }

  /// Removes all plans.
  void Clear() {
    plans_.clear();
    costs_.Clear();
  }

  /// Replaces the archive with a previously captured plans() snapshot,
  /// preserving order (checkpoint restore). The caller guarantees the
  /// plans are mutually non-dominated — the invariant plans() snapshots
  /// hold by construction.
  void Adopt(std::vector<PlanPtr> plans);

 private:
  std::vector<PlanPtr> plans_;
  // Struct-of-arrays mirror of plans_[i]->cost(): row i holds plan i's cost
  // components, so Insert sweeps flat doubles instead of chasing plan
  // pointers. Kept in lockstep with plans_ (same order).
  CostMatrix costs_;
  // Scratch keep-mask reused across inserts to avoid reallocation.
  std::vector<std::uint8_t> keep_;
};

}  // namespace moqo

#endif  // MOQO_PARETO_PARETO_ARCHIVE_H_
