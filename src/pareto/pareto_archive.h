// Non-dominated plan archives.
//
// A ParetoArchive maintains the set of mutually non-dominated plans seen so
// far, compared on cost vectors only (the final result set of a
// multi-objective optimizer; the paper's quality metric judges cost vectors,
// not data representations). Equal-cost duplicates are kept only once.
//
// This differs from the *plan cache* pruning of Algorithm 3 (see
// core/plan_cache.h), which is representation-aware and approximate.
#ifndef MOQO_PARETO_PARETO_ARCHIVE_H_
#define MOQO_PARETO_PARETO_ARCHIVE_H_

#include <vector>

#include "cost/cost_vector.h"
#include "plan/plan.h"

namespace moqo {

/// Set of mutually non-dominated plans (cost-only comparison).
class ParetoArchive {
 public:
  ParetoArchive() = default;

  /// Inserts `plan` unless an archived plan weakly dominates it; evicts
  /// archived plans that `plan` strictly dominates. Returns true if the
  /// plan was inserted.
  bool Insert(PlanPtr plan);

  /// The archived plans (unspecified order).
  const std::vector<PlanPtr>& plans() const { return plans_; }

  /// Cost vectors of the archived plans.
  std::vector<CostVector> Frontier() const;

  /// Number of archived plans.
  size_t size() const { return plans_.size(); }

  /// True if no plan has been archived.
  bool empty() const { return plans_.empty(); }

  /// Removes all plans.
  void Clear() { plans_.clear(); }

  /// Replaces the archive with a previously captured plans() snapshot,
  /// preserving order (checkpoint restore). The caller guarantees the
  /// plans are mutually non-dominated — the invariant plans() snapshots
  /// hold by construction.
  void Adopt(std::vector<PlanPtr> plans) { plans_ = std::move(plans); }

 private:
  std::vector<PlanPtr> plans_;
};

}  // namespace moqo

#endif  // MOQO_PARETO_PARETO_ARCHIVE_H_
