// Uniform random bushy plan generation (function RandomPlan, Algorithm 1).
//
// Tree shapes are drawn uniformly from all binary trees with n leaves using
// Remy's algorithm (the paper cites Quiroz's O(n) generator; Remy's is the
// classic O(n) method achieving the same uniform distribution). Tables are
// assigned to leaves by a uniform random permutation; scan and join
// operators are drawn uniformly from the applicable operator sets.
#ifndef MOQO_PLAN_RANDOM_PLAN_H_
#define MOQO_PLAN_RANDOM_PLAN_H_

#include "common/rng.h"
#include "plan/plan_factory.h"

namespace moqo {

/// Returns a uniformly random bushy plan joining all query tables, with
/// uniformly random operator labels. Runs in O(n) plan constructions.
PlanPtr RandomPlan(PlanFactory* factory, Rng* rng);

/// Returns a random *left-deep* plan (used by the NSGA-II baseline's
/// initial population and by left-deep-space experiments).
PlanPtr RandomLeftDeepPlan(PlanFactory* factory, Rng* rng);

/// Draws a uniformly random applicable scan operator for `table`.
ScanAlgorithm RandomScanOp(PlanFactory* factory, int table, Rng* rng);

/// Draws a uniformly random join operator.
JoinAlgorithm RandomJoinOp(Rng* rng);

}  // namespace moqo

#endif  // MOQO_PLAN_RANDOM_PLAN_H_
