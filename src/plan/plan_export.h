// Plan and frontier serialization.
//
// Downstream tooling (plotting the paper's figures, feeding plans to an
// execution engine, diffing optimizer outputs) needs machine-readable
// plans: JSON for single plan trees, CSV for frontiers of cost vectors.
#ifndef MOQO_PLAN_PLAN_EXPORT_H_
#define MOQO_PLAN_PLAN_EXPORT_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "plan/plan.h"

namespace moqo {

/// Renders `plan` as a JSON object:
///   scan:  {"op":"full-scan","table":3,"card":1000,"cost":[...]}
///   join:  {"op":"hash-join(large)","cost":[...],"outer":{...},"inner":{...}}
std::string PlanToJson(const PlanPtr& plan);

/// Renders a whole frontier as a JSON array of PlanToJson objects.
std::string FrontierToJson(const std::vector<PlanPtr>& plans);

/// Renders a frontier as CSV: one header row naming the metrics, then one
/// row of cost values per plan, followed by the rendered plan string.
/// Suitable for pandas / gnuplot.
std::string FrontierToCsv(const std::vector<PlanPtr>& plans,
                          const std::vector<Metric>& metrics);

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_EXPORT_H_
