// PlanFactory: the only way to construct plans.
//
// The factory binds a query and a cost model, memoizes cardinality and
// tuple-width estimates per table set (the estimate depends only on the set
// of joined tables, not on the join order), and stamps every constructed
// node with its derived properties. Centralizing construction guarantees
// that any two plans for the same query are always compared under identical
// statistics.
#ifndef MOQO_PLAN_PLAN_FACTORY_H_
#define MOQO_PLAN_PLAN_FACTORY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/table_set.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "plan/plan_arena.h"
#include "query/query.h"

namespace moqo {

/// Builds scan and join plans with costs under a fixed query + cost model.
class PlanFactory {
 public:
  /// The factory keeps a reference to `cost_model`; the caller must keep it
  /// alive for the factory's lifetime.
  PlanFactory(QueryPtr query, const CostModel* cost_model);

  /// The query being optimized.
  const Query& query() const { return *query_; }

  /// Shared handle to the query.
  const QueryPtr& query_ptr() const { return query_; }

  /// The cost model used for all plans from this factory.
  const CostModel& cost_model() const { return *cost_model_; }

  /// Builds ScanPlan(table, op). `op` must be applicable to the table.
  PlanPtr MakeScan(int table, ScanAlgorithm op);

  /// Builds JoinPlan(outer, inner, op). The children's table sets must be
  /// disjoint and non-empty.
  PlanPtr MakeJoin(PlanPtr outer, PlanPtr inner, JoinAlgorithm op);

  /// Rebuilds `plan` node-for-node (same shape and operators). Used by
  /// tests to verify that cost stamping is deterministic.
  PlanPtr Rebuild(const PlanPtr& plan);

  /// Scan operators applicable to `table` under the catalog.
  std::vector<ScanAlgorithm> ApplicableScans(int table) const;

  /// Estimated output cardinality of joining exactly the tables in `s`
  /// (order-independent; memoized; capped at kMaxCardinality).
  double Cardinality(const TableSet& s);

  /// Estimated output tuple width of the tables in `s`, in bytes.
  double TupleBytes(const TableSet& s);

  /// Number of plans constructed so far (observability for benches).
  int64_t plans_built() const { return plans_built_; }

  /// The arena holding every node built by this factory since the last
  /// ResetArena(). Shared so escaped PlanPtr handles keep it alive.
  const std::shared_ptr<PlanArena>& arena() const { return arena_; }

  /// Swaps in a fresh empty arena. Existing PlanPtr handles stay valid —
  /// they own the old arena, which is freed when the last of them dies.
  /// Call between queries/sessions to reclaim plan memory wholesale.
  void ResetArena();

 private:
  struct SetStats {
    double cardinality;
    double tuple_bytes;
  };

  const SetStats& StatsFor(const TableSet& s);

  QueryPtr query_;
  const CostModel* cost_model_;
  std::shared_ptr<PlanArena> arena_;
  std::unordered_map<TableSet, SetStats, TableSetHash> set_stats_;
  int64_t plans_built_ = 0;
};

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_FACTORY_H_
