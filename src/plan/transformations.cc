#include "plan/transformations.h"

#include <cassert>

namespace moqo {

bool IsLeftDeep(const PlanPtr& p) {
  PlanPtr node = p;
  while (node->IsJoin()) {
    if (node->inner()->IsJoin()) return false;
    node = node->outer();
  }
  return true;
}

std::vector<PlanPtr> RootMutations(const PlanPtr& p, PlanFactory* factory,
                                   PlanSpace space) {
  std::vector<PlanPtr> out;
  if (!p->IsJoin()) {
    // Rule 2: scan operator replacement.
    for (ScanAlgorithm op : factory->ApplicableScans(p->table())) {
      if (op != p->scan_op()) out.push_back(factory->MakeScan(p->table(), op));
    }
    return out;
  }

  const PlanPtr& l = p->outer();
  const PlanPtr& r = p->inner();
  const JoinAlgorithm a = p->join_op();
  const bool bushy = space == PlanSpace::kBushy;

  // Rule 1: join operator replacement (shape-preserving in every space).
  for (JoinAlgorithm op : AllJoinAlgorithms()) {
    if (op != a) out.push_back(factory->MakeJoin(l, r, op));
  }

  // Rule 3: commutativity. In the left-deep space only the bottom pair
  // (both operands scans) may swap without leaving the space.
  if (bushy || !l->IsJoin()) {
    out.push_back(factory->MakeJoin(r, l, a));
  }

  // Rules 4 and 6 require a join as outer child: L = (A b B).
  if (l->IsJoin()) {
    const PlanPtr& A = l->outer();
    const PlanPtr& B = l->inner();
    const JoinAlgorithm b = l->join_op();
    if (bushy) {
      // Rule 4: ((A b B) a C) -> (A b (B a C)).
      out.push_back(factory->MakeJoin(A, factory->MakeJoin(B, r, a), b));
    }
    // Rule 6: ((A b B) a C) -> ((A b C) a B). Left-deep preserving.
    out.push_back(factory->MakeJoin(factory->MakeJoin(A, r, b), B, a));
  }

  // Rules 5 and 7 require a join as inner child: R = (B b C). A left-deep
  // plan never has one, so these fire in the bushy space only.
  if (bushy && r->IsJoin()) {
    const PlanPtr& B = r->outer();
    const PlanPtr& C = r->inner();
    const JoinAlgorithm b = r->join_op();
    // Rule 5: (A a (B b C)) -> ((A a B) b C).
    out.push_back(factory->MakeJoin(factory->MakeJoin(l, B, a), C, b));
    // Rule 7: (A a (B b C)) -> (B b (A a C)).
    out.push_back(factory->MakeJoin(B, factory->MakeJoin(l, C, a), b));
  }

  return out;
}

int CountNodes(const PlanPtr& p) { return p->NodeCount(); }

namespace {

// Rebuilds `p` with the node at pre-order index `target` replaced by
// `replacement(node)`. Only the path from the root to the mutated node is
// rebuilt; untouched subtrees are shared. Returns nullptr if the
// replacement returned nullptr (no mutation possible at that node).
template <typename Fn>
PlanPtr ReplaceAt(const PlanPtr& p, int target, PlanFactory* factory,
                  const Fn& replacement) {
  assert(target >= 0 && target < p->NodeCount());
  if (target == 0) return replacement(p);
  assert(p->IsJoin());
  int outer_count = p->outer()->NodeCount();
  if (target <= outer_count) {
    PlanPtr outer = ReplaceAt(p->outer(), target - 1, factory, replacement);
    if (outer == nullptr) return nullptr;
    return factory->MakeJoin(std::move(outer), p->inner(), p->join_op());
  }
  PlanPtr inner =
      ReplaceAt(p->inner(), target - 1 - outer_count, factory, replacement);
  if (inner == nullptr) return nullptr;
  return factory->MakeJoin(p->outer(), std::move(inner), p->join_op());
}

// Collects each subtree in pre-order.
void CollectSubtrees(const PlanPtr& p, std::vector<PlanPtr>* out) {
  out->push_back(p);
  if (p->IsJoin()) {
    CollectSubtrees(p->outer(), out);
    CollectSubtrees(p->inner(), out);
  }
}

}  // namespace

std::vector<PlanPtr> AllNeighbors(const PlanPtr& p, PlanFactory* factory,
                                  PlanSpace space) {
  std::vector<PlanPtr> subtrees;
  CollectSubtrees(p, &subtrees);

  std::vector<PlanPtr> neighbors;
  for (int node = 0; node < static_cast<int>(subtrees.size()); ++node) {
    std::vector<PlanPtr> local =
        RootMutations(subtrees[static_cast<size_t>(node)], factory, space);
    for (const PlanPtr& mutated : local) {
      PlanPtr full = ReplaceAt(p, node, factory,
                               [&](const PlanPtr&) { return mutated; });
      assert(full != nullptr);
      neighbors.push_back(std::move(full));
    }
  }
  return neighbors;
}

PlanPtr RandomNeighbor(const PlanPtr& p, PlanFactory* factory, Rng* rng,
                       PlanSpace space) {
  int nodes = p->NodeCount();
  int target = rng->UniformInt(0, nodes - 1);
  return ReplaceAt(p, target, factory, [&](const PlanPtr& node) {
    std::vector<PlanPtr> local = RootMutations(node, factory, space);
    if (local.empty()) return PlanPtr(nullptr);
    return local[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int>(local.size()) - 1))];
  });
}

}  // namespace moqo
