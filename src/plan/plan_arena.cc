#include "plan/plan_arena.h"

#include <limits>
#include <type_traits>

namespace moqo {

// Arena nodes are reclaimed wholesale (chunk arrays of trivially destructible
// Plans), never one at a time; this is what makes bump allocation safe.
static_assert(std::is_trivially_destructible<Plan>::value,
              "Plan must stay trivially destructible for arena storage");

PlanArena::~PlanArena() = default;

Plan* PlanArena::Allocate() {
  assert(size_ < std::numeric_limits<PlanIndex>::max());
  const size_t offset = size_ % kChunkNodes;
  if (offset == 0) {
    // make_unique can't reach Plan's private constructor (its new happens
    // inside a std function, not in this friend class), so the raw new[]
    // stays; ownership lands in the unique_ptr on the same line.
    // moqo-lint: allow(raw-new-array)
    chunks_.emplace_back(new Plan[kChunkNodes]);
  }
  Plan* node = &chunks_.back()[offset];
  node->arena_index_ = static_cast<PlanIndex>(size_);
  ++size_;
  return node;
}

size_t PlanArena::ApproxBytes() const {
  return chunks_.size() * kChunkNodes * sizeof(Plan) +
         chunks_.capacity() * sizeof(chunks_[0]);
}

}  // namespace moqo
