// Immutable query plan trees.
//
// A plan is a labeled binary tree (Section 3 of the paper): leaves are
// ScanPlan(table, scanOp) nodes and inner nodes are JoinPlan(outer, inner,
// joinOp) nodes. Plans are immutable and share sub-plans structurally, so
// the plan cache, Pareto archives, and optimizers keep each cached plan at
// O(1) additional space exactly as the paper's space analysis (Theorem 5)
// assumes.
//
// Every node carries its derived properties, computed once at construction
// by the PlanFactory: the joined table set `rel`, the estimated output
// cardinality and tuple width, the output data representation, and the full
// cost vector under the factory's cost model.
//
// Storage and ownership: nodes live in the factory's PlanArena (see
// plan_arena.h) as trivially destructible values, not as individual heap
// objects. A PlanPtr is still a `shared_ptr<const Plan>`, but handles from
// the factory are *aliasing* pointers that own the whole arena rather than
// one node — refcounting is per-arena, so a frontier that escapes a session
// keeps its arena (and hence every reachable sub-plan) alive with a single
// control block. Child links are raw pointers into the same arena;
// `outer()`/`inner()` return non-owning views that are valid as long as any
// owning handle to the tree (or the factory) exists.
#ifndef MOQO_PLAN_PLAN_H_
#define MOQO_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/table_set.h"
#include "cost/cost_vector.h"
#include "cost/operators.h"

namespace moqo {

class Plan;
class PlanArena;

/// Shared handle to an immutable plan node. Handles returned by PlanFactory
/// own the node's arena (aliasing shared_ptr); handles returned by
/// Plan::outer()/inner() are non-owning views into a live tree.
using PlanPtr = std::shared_ptr<const Plan>;

/// Dense per-arena node index (allocation order). 32 bits: no realistic
/// optimization run allocates 4B nodes in one session.
using PlanIndex = std::uint32_t;

/// arena_index() value of a node not allocated from an arena.
inline constexpr PlanIndex kInvalidPlanIndex = ~PlanIndex{0};

/// One node of an immutable plan tree. Construct via PlanFactory.
class Plan {
 public:
  /// True for join nodes (|rel| > 1), false for scan leaves.
  bool IsJoin() const { return outer_ != nullptr; }

  /// Set of tables joined by this (sub-)plan.
  const TableSet& rel() const { return rel_; }

  /// Outer child (join nodes only). Non-owning view: valid while an owning
  /// handle to this tree (or its factory) is alive; re-own via the factory
  /// if it must escape.
  PlanPtr outer() const { return PlanPtr(PlanPtr(), outer_); }

  /// Inner child (join nodes only). Non-owning view; see outer().
  PlanPtr inner() const { return PlanPtr(PlanPtr(), inner_); }

  /// Outer child as a raw pointer (join nodes only).
  const Plan* outer_node() const { return outer_; }

  /// Inner child as a raw pointer (join nodes only).
  const Plan* inner_node() const { return inner_; }

  /// Scanned table id (scan leaves only).
  int table() const { return table_; }

  /// Scan operator (scan leaves only).
  ScanAlgorithm scan_op() const { return scan_op_; }

  /// Join operator (join nodes only).
  JoinAlgorithm join_op() const { return join_op_; }

  /// Cost vector under the owning factory's cost model.
  const CostVector& cost() const { return cost_; }

  /// Estimated output cardinality (rows).
  double cardinality() const { return cardinality_; }

  /// Estimated output tuple width (bytes).
  double tuple_bytes() const { return tuple_bytes_; }

  /// Output data representation; the `SameOutput` test of Algorithms 2/3
  /// compares this tag.
  OutputFormat format() const { return format_; }

  /// Total number of nodes in this subtree (2 * |rel| - 1).
  int NodeCount() const { return node_count_; }

  /// Dense index of this node within its arena (allocation order), or
  /// kInvalidPlanIndex if the node was not arena-allocated.
  PlanIndex arena_index() const { return arena_index_; }

  /// Renders e.g. "((T0 HJ T1) SM T2)" for debugging and logs.
  std::string ToString() const;

 private:
  friend class PlanFactory;
  friend class PlanArena;
  Plan() = default;

  TableSet rel_;
  // Raw pointers into the same arena: an owning child handle would make the
  // arena keep itself alive. Parent handles own the arena, which owns the
  // children, so the links can never dangle while a tree is reachable.
  const Plan* outer_ = nullptr;
  const Plan* inner_ = nullptr;
  int table_ = -1;
  ScanAlgorithm scan_op_ = ScanAlgorithm::kFullScan;
  JoinAlgorithm join_op_ = JoinAlgorithm::kNestedLoop;
  CostVector cost_;
  double cardinality_ = 0.0;
  double tuple_bytes_ = 0.0;
  OutputFormat format_ = OutputFormat::kUnsorted;
  int node_count_ = 1;
  PlanIndex arena_index_ = kInvalidPlanIndex;
};

/// True if `a` and `b` produce the same output data representation; plans
/// with different representations are never pruned against each other.
inline bool SameOutput(const Plan& a, const Plan& b) {
  return a.format() == b.format();
}

/// The paper's `Better` (Algorithm 2): same output representation and
/// strictly dominating cost.
inline bool BetterPlan(const Plan& a, const Plan& b) {
  return SameOutput(a, b) && a.cost().StrictlyDominates(b.cost());
}

/// The paper's `SigBetter` (Algorithm 3): same output representation and
/// approximately dominating cost with coarsening factor alpha.
inline bool SigBetterPlan(const Plan& a, const Plan& b, double alpha) {
  return SameOutput(a, b) && a.cost().ApproxDominates(b.cost(), alpha);
}

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_H_
