// Local plan transformations (the neighborhood relation).
//
// All local-search algorithms in this repository (RMQ's ParetoClimb, II,
// SA, 2P, and the naive-climber ablation) share the standard transformation
// rule set for bushy query plans described by Steinbrunn et al. (VLDBJ'97):
//
//   1. join operator replacement   (L op R)        -> (L op' R)
//   2. scan operator replacement   Scan(t, op)     -> Scan(t, op')
//   3. commutativity               (L op R)        -> (R op L)
//   4. left associativity          ((A b B) a C)   -> (A b (B a C))
//   5. right associativity         (A a (B b C))   -> ((A a B) b C)
//   6. left join exchange          ((A b B) a C)   -> ((A b C) a B)
//   7. right join exchange         (A a (B b C))   -> (B b (A a C))
//
// Rules 4-7 preserve the operator labels of the two participating joins;
// operator changes are reachable through rules 1-2, keeping the neighbor
// count per node bounded by a constant (as assumed by the paper's
// complexity analysis, Lemma 2).
#ifndef MOQO_PLAN_TRANSFORMATIONS_H_
#define MOQO_PLAN_TRANSFORMATIONS_H_

#include <vector>

#include "common/rng.h"
#include "plan/plan_factory.h"

namespace moqo {

/// Join-order search space (Section 4.1: the algorithm adapts to different
/// spaces by exchanging the random plan generator and the transformation
/// rule set).
enum class PlanSpace {
  /// Unconstrained bushy plans (the paper's evaluated space).
  kBushy,
  /// Left-deep plans only: every inner operand is a base-table scan. The
  /// rule set restricts to operator replacement, bottom-pair commutativity
  /// (both operands scans), and left join exchange — all of which preserve
  /// left-deep shape.
  kLeftDeep,
};

/// All plans reachable from `p` by applying one rule at the *root* node
/// (child subtrees are reused unchanged). Does not include `p` itself.
std::vector<PlanPtr> RootMutations(const PlanPtr& p, PlanFactory* factory,
                                   PlanSpace space = PlanSpace::kBushy);

/// True if every inner operand in `p` is a scan leaf.
bool IsLeftDeep(const PlanPtr& p);

/// All complete neighbor plans reachable from `p` by applying one rule at
/// any single node (the classic neighborhood; used by SA and by the naive
/// climber ablation). O(n) rebuilds per neighbor.
std::vector<PlanPtr> AllNeighbors(const PlanPtr& p, PlanFactory* factory,
                                  PlanSpace space = PlanSpace::kBushy);

/// One uniformly random neighbor of `p` (random node, random applicable
/// rule), or nullptr if the chosen node admits no mutation. Used by SA.
PlanPtr RandomNeighbor(const PlanPtr& p, PlanFactory* factory, Rng* rng,
                       PlanSpace space = PlanSpace::kBushy);

/// Number of nodes in `p` (leaves + joins); exposed for sampling.
int CountNodes(const PlanPtr& p);

}  // namespace moqo

#endif  // MOQO_PLAN_TRANSFORMATIONS_H_
