#include "plan/plan_factory.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace moqo {

PlanFactory::PlanFactory(QueryPtr query, const CostModel* cost_model)
    : query_(std::move(query)),
      cost_model_(cost_model),
      arena_(PlanArena::Create()) {
  assert(query_ != nullptr);
  assert(cost_model_ != nullptr);
}

void PlanFactory::ResetArena() { arena_ = PlanArena::Create(); }

const PlanFactory::SetStats& PlanFactory::StatsFor(const TableSet& s) {
  auto it = set_stats_.find(s);
  if (it != set_stats_.end()) return it->second;

  SetStats stats{1.0, 0.0};
  s.ForEach([&](int t) {
    stats.cardinality *= query_->catalog().Cardinality(t);
    stats.cardinality = std::min(stats.cardinality, kMaxCardinality);
    stats.tuple_bytes += query_->catalog().Table(t).tuple_bytes;
  });
  stats.cardinality *= query_->graph().SelectivityWithin(s);
  stats.cardinality = std::clamp(stats.cardinality, 1.0, kMaxCardinality);
  return set_stats_.emplace(s, stats).first->second;
}

double PlanFactory::Cardinality(const TableSet& s) {
  return StatsFor(s).cardinality;
}

double PlanFactory::TupleBytes(const TableSet& s) {
  return StatsFor(s).tuple_bytes;
}

std::vector<ScanAlgorithm> PlanFactory::ApplicableScans(int table) const {
  std::vector<ScanAlgorithm> ops;
  for (ScanAlgorithm op : AllScanAlgorithms()) {
    if (cost_model_->ScanApplicable(query_->catalog().Table(table), op)) {
      ops.push_back(op);
    }
  }
  return ops;
}

PlanPtr PlanFactory::MakeScan(int table, ScanAlgorithm op) {
  assert(table >= 0 && table < query_->NumTables());
  const TableStats& stats = query_->catalog().Table(table);
  assert(cost_model_->ScanApplicable(stats, op));

  Plan* plan = arena_->Allocate();
  plan->rel_ = TableSet::Singleton(table);
  plan->table_ = table;
  plan->scan_op_ = op;
  plan->cardinality_ = stats.cardinality;
  plan->tuple_bytes_ = stats.tuple_bytes;
  plan->format_ = FormatOf(op);
  plan->cost_ = cost_model_->ScanCost(stats, op);
  plan->node_count_ = 1;
  ++plans_built_;
  return PlanPtr(arena_, plan);
}

PlanPtr PlanFactory::MakeJoin(PlanPtr outer, PlanPtr inner, JoinAlgorithm op) {
  assert(outer != nullptr && inner != nullptr);
  assert(!outer->rel().Empty() && !inner->rel().Empty());
  assert(outer->rel().DisjointWith(inner->rel()));

  Plan* plan = arena_->Allocate();
  plan->rel_ = outer->rel().Union(inner->rel());
  const SetStats& stats = StatsFor(plan->rel_);
  plan->join_op_ = op;
  plan->cardinality_ = stats.cardinality;
  plan->tuple_bytes_ = stats.tuple_bytes;
  plan->format_ = FormatOf(op);
  CostVector op_cost = cost_model_->JoinCost(
      op, outer->cardinality(), outer->tuple_bytes(), outer->format(),
      inner->cardinality(), inner->tuple_bytes(), inner->format(),
      stats.cardinality);
  plan->cost_ = cost_model_->Combine(outer->cost(), inner->cost(), op_cost);
  plan->node_count_ = outer->NodeCount() + inner->NodeCount() + 1;
  // Children are linked as raw pointers; the parent's owning handle keeps
  // the (shared) arena — and with it both children — alive. Children built
  // by this factory live in arena_ or, after ResetArena, in an arena kept
  // alive by the caller's own handles; either way the link cannot dangle
  // while the returned handle is reachable.
  plan->outer_ = outer.get();
  plan->inner_ = inner.get();
  ++plans_built_;
  return PlanPtr(arena_, plan);
}

PlanPtr PlanFactory::Rebuild(const PlanPtr& plan) {
  if (!plan->IsJoin()) return MakeScan(plan->table(), plan->scan_op());
  return MakeJoin(Rebuild(plan->outer()), Rebuild(plan->inner()),
                  plan->join_op());
}

}  // namespace moqo
