#include "plan/plan_export.h"

#include <sstream>

namespace moqo {

namespace {

void CostJson(const CostVector& cost, std::ostringstream& out) {
  out << '[';
  for (int i = 0; i < cost.size(); ++i) {
    if (i > 0) out << ',';
    out << cost[i];
  }
  out << ']';
}

void PlanJson(const Plan& plan, std::ostringstream& out) {
  out << '{';
  if (plan.IsJoin()) {
    out << "\"op\":\"" << ToString(plan.join_op()) << "\"";
  } else {
    out << "\"op\":\"" << ToString(plan.scan_op()) << "\""
        << ",\"table\":" << plan.table();
  }
  out << ",\"card\":" << plan.cardinality();
  out << ",\"format\":\"" << ToString(plan.format()) << "\"";
  out << ",\"cost\":";
  CostJson(plan.cost(), out);
  if (plan.IsJoin()) {
    out << ",\"outer\":";
    PlanJson(*plan.outer(), out);
    out << ",\"inner\":";
    PlanJson(*plan.inner(), out);
  }
  out << '}';
}

}  // namespace

std::string PlanToJson(const PlanPtr& plan) {
  std::ostringstream out;
  PlanJson(*plan, out);
  return out.str();
}

std::string FrontierToJson(const std::vector<PlanPtr>& plans) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < plans.size(); ++i) {
    if (i > 0) out << ',';
    PlanJson(*plans[i], out);
  }
  out << ']';
  return out.str();
}

std::string FrontierToCsv(const std::vector<PlanPtr>& plans,
                          const std::vector<Metric>& metrics) {
  std::ostringstream out;
  for (const Metric& m : metrics) out << ToString(m) << ',';
  out << "plan\n";
  for (const PlanPtr& p : plans) {
    for (int i = 0; i < p->cost().size(); ++i) out << p->cost()[i] << ',';
    out << '"' << p->ToString() << "\"\n";
  }
  return out.str();
}

}  // namespace moqo
