#include "plan/plan.h"

#include <sstream>

namespace moqo {

namespace {

const char* JoinAbbrev(JoinAlgorithm op) {
  switch (op) {
    case JoinAlgorithm::kNestedLoop:
      return "NL";
    case JoinAlgorithm::kBlockNestedLoopSmall:
      return "BNLs";
    case JoinAlgorithm::kBlockNestedLoopLarge:
      return "BNLl";
    case JoinAlgorithm::kHashSmall:
      return "HJs";
    case JoinAlgorithm::kHashMedium:
      return "HJm";
    case JoinAlgorithm::kHashLarge:
      return "HJl";
    case JoinAlgorithm::kSortMergeSmall:
      return "SMs";
    case JoinAlgorithm::kSortMergeLarge:
      return "SMl";
  }
  return "?";
}

void Render(const Plan& p, std::ostringstream& out) {
  if (!p.IsJoin()) {
    out << 'T' << p.table();
    if (p.scan_op() == ScanAlgorithm::kIndexScan) out << 'i';
    return;
  }
  out << '(';
  Render(*p.outer(), out);
  out << ' ' << JoinAbbrev(p.join_op()) << ' ';
  Render(*p.inner(), out);
  out << ')';
}

}  // namespace

std::string Plan::ToString() const {
  std::ostringstream out;
  Render(*this, out);
  return out.str();
}

}  // namespace moqo
