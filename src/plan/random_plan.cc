#include "plan/random_plan.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace moqo {

ScanAlgorithm RandomScanOp(PlanFactory* factory, int table, Rng* rng) {
  std::vector<ScanAlgorithm> ops = factory->ApplicableScans(table);
  assert(!ops.empty());
  return ops[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int>(ops.size()) - 1))];
}

JoinAlgorithm RandomJoinOp(Rng* rng) {
  const auto& ops = AllJoinAlgorithms();
  return ops[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int>(ops.size()) - 1))];
}

namespace {

// Array representation of an unlabeled binary tree under construction.
// node 0 is the root; leaves have child[0] == -1.
struct ShapeNode {
  int child[2] = {-1, -1};
};

// Remy's algorithm: starting from a single leaf, repeatedly pick a uniform
// random node v and a uniform random side, and replace v by a new internal
// node whose children are v's subtree and a fresh leaf. After n - 1
// insertions the shape is uniform over binary trees with n leaves.
std::vector<ShapeNode> UniformShape(int num_leaves, Rng* rng) {
  std::vector<ShapeNode> nodes;
  nodes.emplace_back();  // the initial single leaf, also the root
  int root = 0;
  std::vector<int> parent = {-1};

  for (int leaf = 1; leaf < num_leaves; ++leaf) {
    int v = rng->UniformInt(0, static_cast<int>(nodes.size()) - 1);
    int side = rng->UniformInt(0, 1);

    int internal = static_cast<int>(nodes.size());
    nodes.emplace_back();
    parent.push_back(parent[static_cast<size_t>(v)]);
    int fresh = static_cast<int>(nodes.size());
    nodes.emplace_back();
    parent.push_back(internal);

    // Splice the new internal node where v used to hang.
    int p = parent[static_cast<size_t>(internal)];
    if (p == -1) {
      root = internal;
    } else {
      ShapeNode& pn = nodes[static_cast<size_t>(p)];
      if (pn.child[0] == v) {
        pn.child[0] = internal;
      } else {
        pn.child[1] = internal;
      }
    }
    parent[static_cast<size_t>(v)] = internal;
    nodes[static_cast<size_t>(internal)].child[side] = fresh;
    nodes[static_cast<size_t>(internal)].child[1 - side] = v;
  }

  // Normalize so the root is node 0 (swap if needed).
  if (root != 0) {
    std::swap(nodes[0], nodes[static_cast<size_t>(root)]);
    // Fix children that pointed at 0 or root.
    for (ShapeNode& n : nodes) {
      for (int s = 0; s < 2; ++s) {
        if (n.child[s] == 0) {
          n.child[s] = root;
        } else if (n.child[s] == root) {
          n.child[s] = 0;
        }
      }
    }
  }
  return nodes;
}

PlanPtr BuildFromShape(const std::vector<ShapeNode>& nodes, int node,
                       const std::vector<int>& leaf_tables, int* next_leaf,
                       PlanFactory* factory, Rng* rng) {
  const ShapeNode& n = nodes[static_cast<size_t>(node)];
  if (n.child[0] == -1) {
    int table = leaf_tables[static_cast<size_t>((*next_leaf)++)];
    return factory->MakeScan(table, RandomScanOp(factory, table, rng));
  }
  PlanPtr outer =
      BuildFromShape(nodes, n.child[0], leaf_tables, next_leaf, factory, rng);
  PlanPtr inner =
      BuildFromShape(nodes, n.child[1], leaf_tables, next_leaf, factory, rng);
  return factory->MakeJoin(std::move(outer), std::move(inner),
                           RandomJoinOp(rng));
}

}  // namespace

PlanPtr RandomPlan(PlanFactory* factory, Rng* rng) {
  const int n = factory->query().NumTables();
  assert(n >= 1);
  std::vector<int> leaf_tables(static_cast<size_t>(n));
  std::iota(leaf_tables.begin(), leaf_tables.end(), 0);
  std::shuffle(leaf_tables.begin(), leaf_tables.end(), rng->engine());

  if (n == 1) {
    return factory->MakeScan(leaf_tables[0],
                             RandomScanOp(factory, leaf_tables[0], rng));
  }
  std::vector<ShapeNode> shape = UniformShape(n, rng);
  int next_leaf = 0;
  PlanPtr plan =
      BuildFromShape(shape, 0, leaf_tables, &next_leaf, factory, rng);
  assert(next_leaf == n);
  assert(plan->rel() == factory->query().AllTables());
  return plan;
}

PlanPtr RandomLeftDeepPlan(PlanFactory* factory, Rng* rng) {
  const int n = factory->query().NumTables();
  assert(n >= 1);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng->engine());

  PlanPtr plan =
      factory->MakeScan(order[0], RandomScanOp(factory, order[0], rng));
  for (int i = 1; i < n; ++i) {
    int table = order[static_cast<size_t>(i)];
    PlanPtr right =
        factory->MakeScan(table, RandomScanOp(factory, table, rng));
    plan = factory->MakeJoin(std::move(plan), std::move(right),
                             RandomJoinOp(rng));
  }
  return plan;
}

}  // namespace moqo
