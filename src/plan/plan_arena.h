// Arena storage for plan nodes.
//
// The optimizer inner loop allocates plan nodes at a very high rate: every
// RMQ climb step materializes dozens of candidate joins, and NSGA-II crossover
// rebuilds whole trees per generation. Allocating each node with
// `make_shared` costs one malloc plus one atomic control block per node and
// scatters nodes across the heap, so dominance sweeps chase pointers.
//
// A PlanArena instead bump-allocates POD-style plan nodes into fixed-size
// chunks with stable addresses, addressed by dense 32-bit PlanIndex values
// (the same node numbering idea the checkpoint serializer uses for node
// dedup). Ownership is amortized to a *single* control block: the factory
// hands out `PlanPtr` handles created with the aliasing `shared_ptr`
// constructor, so every escaped handle shares the arena's refcount and an
// arena dies exactly when the factory and the last escaped plan are gone.
//
// Node lifetime rules:
//  - Nodes are never freed individually; the arena is monotonic. A session
//    reclaims memory wholesale via PlanFactory::ResetArena().
//  - Child links inside a node are raw `const Plan*` into the same arena
//    (an owning pointer would make the arena reference itself and leak).
//  - `Plan::outer()/inner()` therefore return *non-owning* views; anything
//    that must outlive the factory has to come from (or be re-owned by) the
//    factory, which all construction paths already guarantee.
#ifndef MOQO_PLAN_PLAN_ARENA_H_
#define MOQO_PLAN_PLAN_ARENA_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "plan/plan.h"

namespace moqo {

/// Chunked bump allocator for Plan nodes with stable addresses and dense
/// 32-bit indices. Create via Create(); always held by shared_ptr so plan
/// handles can alias its control block.
class PlanArena {
 public:
  /// Nodes per chunk. Chunks are never reallocated, so node addresses are
  /// stable for the arena's lifetime.
  static constexpr size_t kChunkNodes = 256;

  static std::shared_ptr<PlanArena> Create() {
    return std::shared_ptr<PlanArena>(new PlanArena());
  }

  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;
  ~PlanArena();

  /// Returns a fresh zero-initialized node; the caller stamps its fields.
  /// The node's arena_index() is set to its dense index. Never invalidates
  /// previously allocated nodes.
  Plan* Allocate();

  /// Node by dense index, 0 <= i < size().
  const Plan& At(PlanIndex i) const {
    assert(i < size_);
    return chunks_[i / kChunkNodes][i % kChunkNodes];
  }

  /// Number of nodes allocated so far.
  size_t size() const { return size_; }

  /// Number of chunks backing the arena.
  size_t chunks() const { return chunks_.size(); }

  /// Bytes reserved for node storage (capacity, not just used nodes).
  size_t ApproxBytes() const;

 private:
  PlanArena() = default;

  std::vector<std::unique_ptr<Plan[]>> chunks_;
  size_t size_ = 0;
};

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_ARENA_H_
