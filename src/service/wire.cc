#include "service/wire.h"

#include <cmath>
#include <utility>

#include "core/checkpoint.h"

namespace moqo {

namespace {

/// FNV-1a over a byte string; the 64-bit placement hash behind RouteKey.
uint64_t Fnv1a64(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The scheduler treats deadline_micros <= 0 as "no deadline"; the frame
/// stores the normal form so the decoder's non-negativity check never
/// rejects a frame the encoder produced from a healthy task.
int64_t NormalizedDeadline(int64_t deadline_micros) {
  if (deadline_micros <= 0) return 0;
  return deadline_micros > kMaxDeadlineMicros ? kMaxDeadlineMicros
                                              : deadline_micros;
}

}  // namespace

WireTask MakeWireTask(const BatchTask& task) {
  WireTask wire;
  wire.task = task;
  wire.task.deadline_micros = NormalizedDeadline(task.deadline_micros);
  wire.had_deadline = wire.task.deadline_micros > 0;
  wire.remaining_micros = wire.task.deadline_micros;
  return wire;
}

WireTask MakeWireTask(const SuspendedTask& task) {
  WireTask wire;
  wire.task = task.task;
  wire.task.deadline_micros = NormalizedDeadline(task.task.deadline_micros);
  wire.had_deadline = task.had_deadline;
  wire.remaining_micros = task.remaining_micros;
  wire.optimize_millis = task.optimize_millis;
  wire.steps = task.steps;
  wire.checkpoint = task.checkpoint;
  return wire;
}

std::vector<uint8_t> EncodeWireTask(const WireTask& task) {
  CheckpointWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(kWireVersion);
  WriteQuery(&writer, *task.task.query);
  writer.WriteU64(task.task.seed);
  writer.WriteI64(task.task.deadline_micros);
  writer.WriteU8(task.had_deadline ? 1 : 0);
  writer.WriteI64(task.remaining_micros);
  writer.WriteDouble(task.optimize_millis);
  writer.WriteI64(task.steps);
  writer.WriteBytes(task.checkpoint);
  std::vector<uint8_t> frame = writer.Take();
  uint32_t crc = Crc32(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return frame;
}

bool DecodeWireTask(const std::vector<uint8_t>& frame, WireTask* out) {
  // Smallest conceivable frame: magic + version + CRC trailer.
  if (frame.size() < 12) return false;
  const size_t body_size = frame.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(frame[body_size + i]) << (8 * i);
  }
  if (Crc32(frame.data(), body_size) != stored_crc) return false;

  // The CRC covers exactly the body; the reader parses the frame in place
  // and the position() == body_size check below guarantees the accepted
  // parse consumed the body exactly — position is monotonic, so a parse
  // that read even one trailer byte cannot end at the boundary.
  CheckpointReader reader(frame, /*factory=*/nullptr);
  if (reader.ReadU32() != kWireMagic) return false;
  if (reader.ReadU32() != kWireVersion) return false;
  WireTask wire;
  wire.task.query = ReadQuery(&reader);
  if (wire.task.query == nullptr || !reader.ok()) return false;
  wire.task.seed = reader.ReadU64();
  wire.task.deadline_micros = reader.ReadI64();
  uint8_t had_deadline = reader.ReadU8();
  wire.remaining_micros = reader.ReadI64();
  wire.optimize_millis = reader.ReadDouble();
  wire.steps = reader.ReadI64();
  wire.checkpoint = reader.ReadBytes();
  // A frame with leftover bytes between a well-formed payload and the CRC
  // trailer is corrupt even though every individual field decoded (the
  // CRC passed, so the garbage was framed deliberately or the encoder
  // disagrees with us on the layout — reject either way).
  if (!reader.ok() || reader.position() != body_size) return false;
  if (had_deadline > 1) return false;
  wire.had_deadline = had_deadline == 1;
  if (wire.task.deadline_micros < 0 ||
      wire.task.deadline_micros > kMaxDeadlineMicros ||
      wire.remaining_micros < 0 ||
      wire.remaining_micros > kMaxDeadlineMicros || wire.steps < 0 ||
      !std::isfinite(wire.optimize_millis) || wire.optimize_millis < 0.0) {
    return false;
  }
  *out = std::move(wire);
  return true;
}

SuspendedTask ToSuspendedTask(WireTask&& wire,
                              std::promise<BatchTaskResult> promise) {
  SuspendedTask task;
  task.task = std::move(wire.task);
  task.checkpoint = std::move(wire.checkpoint);
  task.had_deadline = wire.had_deadline;
  task.remaining_micros = wire.remaining_micros;
  task.optimize_millis = wire.optimize_millis;
  task.steps = wire.steps;
  task.promise = std::move(promise);
  return task;
}

uint64_t RouteKey(const BatchTask& task) {
  CheckpointWriter writer;
  WriteQuery(&writer, *task.query);
  writer.WriteU64(task.seed);
  return Fnv1a64(writer.Take());
}

}  // namespace moqo
