#include "service/wire.h"

#include <cmath>
#include <utility>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/query_fingerprint.h"

namespace moqo {

namespace {

/// The scheduler treats deadline_micros <= 0 as "no deadline"; the frame
/// stores the normal form so the decoder's non-negativity check never
/// rejects a frame the encoder produced from a healthy task.
int64_t NormalizedDeadline(int64_t deadline_micros) {
  if (deadline_micros <= 0) return 0;
  return deadline_micros > kMaxDeadlineMicros ? kMaxDeadlineMicros
                                              : deadline_micros;
}

}  // namespace

WireTask MakeWireTask(const BatchTask& task) {
  WireTask wire;
  wire.task = task;
  wire.task.fingerprint = FingerprintOf(task);
  wire.task.deadline_micros = NormalizedDeadline(task.deadline_micros);
  wire.had_deadline = wire.task.deadline_micros > 0;
  wire.remaining_micros = wire.task.deadline_micros;
  return wire;
}

WireTask MakeWireTask(const SuspendedTask& task) {
  WireTask wire;
  wire.task = task.task;
  wire.task.fingerprint = FingerprintOf(task.task);
  wire.task.deadline_micros = NormalizedDeadline(task.task.deadline_micros);
  wire.had_deadline = task.had_deadline;
  wire.remaining_micros = task.remaining_micros;
  wire.optimize_millis = task.optimize_millis;
  wire.steps = task.steps;
  wire.checkpoint = task.checkpoint;
  return wire;
}

WireTask MakeWireTask(const TaskSnapshot& snapshot) {
  WireTask wire;
  wire.task = snapshot.task;
  wire.task.fingerprint = FingerprintOf(snapshot.task);
  wire.task.deadline_micros =
      NormalizedDeadline(snapshot.task.deadline_micros);
  wire.had_deadline = snapshot.had_deadline;
  wire.remaining_micros =
      snapshot.remaining_micros < 0 ? 0 : snapshot.remaining_micros;
  wire.optimize_millis = snapshot.optimize_millis;
  wire.steps = snapshot.steps;
  wire.checkpoint = snapshot.checkpoint;
  return wire;
}

std::vector<uint8_t> EncodeWireTask(const WireTask& task) {
  CheckpointWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(kWireVersion);
  WriteQuery(&writer, *task.task.query);
  writer.WriteU64(task.task.seed);
  writer.WriteU64(task.task.fingerprint);
  writer.WriteI64(task.task.deadline_micros);
  writer.WriteU8(task.had_deadline ? 1 : 0);
  writer.WriteI64(task.remaining_micros);
  writer.WriteDouble(task.optimize_millis);
  writer.WriteI64(task.steps);
  writer.WriteBytes(task.checkpoint);
  std::vector<uint8_t> frame = writer.Take();
  uint32_t crc = Crc32(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return frame;
}

namespace {

/// Shared Decode failure path: records the reason (when asked for) and
/// returns false so each rejection in DecodeWireTask stays one line.
bool DecodeFail(std::string* why, const char* reason) {
  if (why != nullptr) *why = reason;
  return false;
}

}  // namespace

bool DecodeWireTask(const std::vector<uint8_t>& frame, WireTask* out) {
  return DecodeWireTask(frame, out, nullptr);
}

bool DecodeWireTask(const std::vector<uint8_t>& frame, WireTask* out,
                    std::string* why) {
  if (why != nullptr) why->clear();  // a reused string must not go stale
  // Smallest conceivable frame: magic + version + CRC trailer.
  if (frame.size() < 12) return DecodeFail(why, "frame too short");
  const size_t body_size = frame.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(frame[body_size + i]) << (8 * i);
  }
  if (Crc32(frame.data(), body_size) != stored_crc) {
    return DecodeFail(why, "CRC mismatch");
  }

  // The CRC covers exactly the body; the reader parses the frame in place
  // and the position() == body_size check below guarantees the accepted
  // parse consumed the body exactly — position is monotonic, so a parse
  // that read even one trailer byte cannot end at the boundary.
  CheckpointReader reader(frame, /*factory=*/nullptr);
  if (reader.ReadU32() != kWireMagic) return DecodeFail(why, "bad magic");
  if (reader.ReadU32() != kWireVersion) {
    return DecodeFail(why, "unsupported version");
  }
  WireTask wire;
  wire.task.query = ReadQuery(&reader);
  if (wire.task.query == nullptr || !reader.ok()) {
    return DecodeFail(why, "invalid query record");
  }
  wire.task.seed = reader.ReadU64();
  wire.task.fingerprint = reader.ReadU64();
  wire.task.deadline_micros = reader.ReadI64();
  uint8_t had_deadline = reader.ReadU8();
  wire.remaining_micros = reader.ReadI64();
  wire.optimize_millis = reader.ReadDouble();
  wire.steps = reader.ReadI64();
  wire.checkpoint = reader.ReadBytes();
  // A frame with leftover bytes between a well-formed payload and the CRC
  // trailer is corrupt even though every individual field decoded (the
  // CRC passed, so the garbage was framed deliberately or the encoder
  // disagrees with us on the layout — reject either way).
  if (!reader.ok()) return DecodeFail(why, "payload reads past frame");
  if (reader.position() != body_size) {
    return DecodeFail(why, "trailing bytes after payload");
  }
  if (had_deadline > 1) return DecodeFail(why, "field out of range");
  // The fingerprint rides the frame so the receiving shard's cache keys
  // agree with the router's without re-canonicalizing — but a frame whose
  // stamped fingerprint disagrees with the query it carries would poison
  // that cache, so the decoder pays one canonicalization to verify.
  if (wire.task.fingerprint != QueryFingerprint(*wire.task.query)) {
    return DecodeFail(why, "fingerprint mismatch");
  }
  wire.had_deadline = had_deadline == 1;
  if (wire.task.deadline_micros < 0 ||
      wire.task.deadline_micros > kMaxDeadlineMicros ||
      wire.remaining_micros < 0 ||
      wire.remaining_micros > kMaxDeadlineMicros || wire.steps < 0 ||
      !std::isfinite(wire.optimize_millis) || wire.optimize_millis < 0.0) {
    return DecodeFail(why, "field out of range");
  }
  *out = std::move(wire);
  return true;
}

SuspendedTask ToSuspendedTask(WireTask&& wire,
                              std::promise<BatchTaskResult> promise) {
  SuspendedTask task;
  task.task = std::move(wire.task);
  task.checkpoint = std::move(wire.checkpoint);
  task.had_deadline = wire.had_deadline;
  task.remaining_micros = wire.remaining_micros;
  task.optimize_millis = wire.optimize_millis;
  task.steps = wire.steps;
  task.promise = std::move(promise);
  return task;
}

uint64_t FingerprintOf(const BatchTask& task) {
  return task.fingerprint != 0 ? task.fingerprint
                               : QueryFingerprint(*task.query);
}

uint64_t DeriveRouteKey(uint64_t fingerprint, uint64_t seed) {
  return CombineSeed(fingerprint, seed, 0x726f757465ull /* "route" */);
}

uint64_t RouteKey(const BatchTask& task) {
  return DeriveRouteKey(FingerprintOf(task), task.seed);
}

std::string RouteKeyString(uint64_t key) {
  static const char kHex[] = "0123456789abcdef";
  std::string text = "0x0000000000000000";
  for (int i = 0; i < 16; ++i) {
    text[17 - i] = kHex[(key >> (4 * i)) & 0xf];
  }
  return text;
}

/// Frontier sizes far beyond anything the optimizer produces mark a frame
/// that decoded to garbage lengths; rejecting them bounds the allocation a
/// hostile or corrupt peer can force.
namespace {
constexpr uint32_t kMaxWireFrontier = 1u << 20;
}  // namespace

void EncodeTaskResult(CheckpointWriter* writer,
                      const BatchTaskResult& result) {
  writer->WriteDouble(result.optimize_millis);
  writer->WriteDouble(result.elapsed_millis);
  writer->WriteDouble(result.admit_millis);
  writer->WriteI64(result.steps);
  writer->WriteU8(result.had_deadline ? 1 : 0);
  writer->WriteU8(result.deadline_hit ? 1 : 0);
  writer->WriteU8(result.gave_up ? 1 : 0);
  writer->WriteU8(result.migrated ? 1 : 0);
  writer->WriteU8(result.served_from_cache ? 1 : 0);
  writer->WriteU32(static_cast<uint32_t>(result.frontier.size()));
  for (const CostVector& vec : result.frontier) {
    writer->WriteU8(static_cast<uint8_t>(vec.size()));
    for (int i = 0; i < vec.size(); ++i) {
      writer->WriteDouble(vec[i]);
    }
  }
}

bool DecodeTaskResult(CheckpointReader* reader, BatchTaskResult* out) {
  BatchTaskResult result;
  result.optimize_millis = reader->ReadDouble();
  result.elapsed_millis = reader->ReadDouble();
  result.admit_millis = reader->ReadDouble();
  result.steps = reader->ReadI64();
  uint8_t had_deadline = reader->ReadU8();
  uint8_t deadline_hit = reader->ReadU8();
  uint8_t gave_up = reader->ReadU8();
  uint8_t migrated = reader->ReadU8();
  uint8_t served_from_cache = reader->ReadU8();
  uint32_t frontier_size = reader->ReadU32();
  if (!reader->ok() || had_deadline > 1 || deadline_hit > 1 ||
      gave_up > 1 || migrated > 1 || served_from_cache > 1 ||
      result.steps < 0 || frontier_size > kMaxWireFrontier) {
    return false;
  }
  result.had_deadline = had_deadline == 1;
  result.deadline_hit = deadline_hit == 1;
  result.gave_up = gave_up == 1;
  result.migrated = migrated == 1;
  result.served_from_cache = served_from_cache == 1;
  result.frontier.reserve(frontier_size);
  for (uint32_t i = 0; i < frontier_size; ++i) {
    uint8_t metrics = reader->ReadU8();
    if (!reader->ok() || metrics == 0 ||
        metrics > static_cast<uint8_t>(CostVector::kMaxMetrics)) {
      return false;
    }
    CostVector vec(static_cast<int>(metrics));
    for (int m = 0; m < vec.size(); ++m) {
      vec[m] = reader->ReadDouble();
    }
    if (!reader->ok()) return false;
    result.frontier.push_back(vec);
  }
  // The timing fields are diagnostics, not determinism inputs, but a NaN
  // would still poison downstream aggregation.
  if (!std::isfinite(result.optimize_millis) ||
      !std::isfinite(result.elapsed_millis) ||
      !std::isfinite(result.admit_millis) || result.optimize_millis < 0.0 ||
      result.elapsed_millis < 0.0 || result.admit_millis < 0.0) {
    return false;
  }
  *out = std::move(result);
  return true;
}

}  // namespace moqo
