// Shard supervisor: spawns shard server processes, wires them into a
// ShardRouter as RemoteShards, and drives failover when one dies.
//
// SpawnShard() launches one `shardd` (shard_server_main.cc) child via
// posix_spawn, listening on a fresh Unix-domain socket; connects to it
// (retrying until the child's listener is up, bailing out if the child
// exits first); wraps the connection in a RemoteShard; and adds it to the
// router's ring. From then on the shard is indistinguishable from a local
// one to every router caller.
//
// Failure path: the RemoteShard's receiver detects death (mid-frame EOF
// from a killed process, a transport error, or heartbeat silence) and
// fires its death callback — which only enqueues the shard onto the
// supervisor's monitor queue, because the receiver thread must not drive
// failover itself (ShardRouter::FailShard stops the dead shard, which
// joins that very thread). The monitor thread dequeues, reaps the child
// process, and calls FailShard: in-flight tasks replay from their last
// checkpoint snapshot onto surviving shards while the original Submit()
// futures keep delivering.
//
// Lifetime: the supervisor must outlive nothing — destroy it before or
// after the router, but stop the router's use of spawned shards first
// (router Stop()/destruction closes the connections; the supervisor
// destructor then reaps any children still around, SIGKILLing ones that
// survived a dirty shutdown). The monitor never dereferences a shard
// pointer after enqueue — it is a map key only — so a shard destroyed by
// router Stop() racing a death notification is benign.
#ifndef MOQO_SERVICE_SHARD_SUPERVISOR_H_
#define MOQO_SERVICE_SHARD_SUPERVISOR_H_

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "service/remote_shard.h"
#include "service/shard_router.h"

namespace moqo {

/// Configuration for one ShardSupervisor.
struct ShardSupervisorConfig {
  /// Path of the shardd binary to spawn.
  std::string server_binary;
  /// Extra argv entries passed to every child after --socket=...
  /// (e.g. "--iterations=20", "--snapshot-every=4").
  std::vector<std::string> server_args;
  /// Directory for the per-shard Unix-domain sockets.
  std::string socket_dir = "/tmp";
  /// Bound on waiting for a freshly spawned child to accept the
  /// connection.
  int connect_timeout_ms = 10000;
  /// Transport configuration of every spawned shard's RemoteShard.
  RemoteShardConfig remote;
};

/// See file header.
class ShardSupervisor {
 public:
  /// `router` must outlive every SpawnShard()ed shard's membership; the
  /// supervisor keeps a reference for FailShard only.
  ShardSupervisor(ShardSupervisorConfig config, ShardRouter* router);

  /// Stops the monitor and reaps every child this supervisor spawned
  /// (SIGKILL for ones still running). Stop the router's use of the
  /// shards first.
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Spawns one shard process, connects, and adds it to the router.
  /// Returns the router shard id, or size_t(-1) if the spawn, the
  /// connection, or the router registration failed (the child is killed
  /// and reaped on any failure).
  size_t SpawnShard() EXCLUDES(mu_);

  /// Sends `signal` to the child behind router shard `shard_id` (test
  /// hook: SIGKILL simulates a crash; failover then proceeds through the
  /// normal detection path). False for an unknown or already-reaped id.
  bool KillShard(size_t shard_id, int signal) EXCLUDES(mu_);

  /// Pid of the child behind `shard_id`, or -1 if unknown.
  pid_t ShardPid(size_t shard_id) const EXCLUDES(mu_);

  /// Blocks until at least `count` failovers completed (FailShard
  /// returned) or `timeout_ms` elapsed. Returns whether the count was
  /// reached.
  bool WaitForFailovers(size_t count, int timeout_ms) EXCLUDES(mu_);

  /// Completed failovers so far.
  size_t failovers() const EXCLUDES(mu_);

  /// Children spawned so far (including exited ones).
  size_t spawned() const EXCLUDES(mu_);

 private:
  struct ChildInfo {
    pid_t pid = -1;
    /// Router shard id; size_t(-1) until registration completes.
    size_t shard_id = static_cast<size_t>(-1);
    bool reaped = false;
  };

  void MonitorLoop() EXCLUDES(mu_);
  /// Reaps `pid` (SIGKILL first if `force`), idempotently.
  void ReapLocked(ChildInfo* info, bool force) REQUIRES(mu_);

  ShardSupervisorConfig config_;
  ShardRouter* router_;

  mutable Mutex mu_;
  CondVar cv_;
  /// Started by the constructor, joined by the destructor after stop_ is
  /// set; never touched in between, so it needs no guard.
  std::thread monitor_;
  /// Shards whose death callback fired, awaiting failover. Pointers are
  /// map keys only — never dereferenced (see file header).
  std::deque<RemoteShard*> dead_ GUARDED_BY(mu_);
  std::map<RemoteShard*, ChildInfo> children_ GUARDED_BY(mu_);
  uint64_t next_socket_seq_ GUARDED_BY(mu_) = 0;
  size_t failovers_ GUARDED_BY(mu_) = 0;
  size_t spawned_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SHARD_SUPERVISOR_H_
