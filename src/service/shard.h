// The shard abstraction behind ShardRouter: one scheduler's worth of
// capacity addressed through a uniform Submit/Suspend/Resume/Drain/Stop
// surface, regardless of where the scheduler actually runs.
//
// Two implementations exist. LocalShard (below) wraps an in-process
// OnlineScheduler one-to-one — the original sharding mode, still the
// default. RemoteShard (service/remote_shard.h) speaks the same surface
// over a frame channel to a shard server in another process. The router
// mixes both behind one consistent-hash ring and cannot tell them apart —
// which is the point: every migration already round-trips the wire format,
// so whether the destination is a function call or a socket away changes
// only who performs the decode.
//
// Failure surface: an in-process shard cannot die, so LocalShard::alive()
// is constant true and TakeOrphans() is empty. A remote shard dies with
// its process; the router then calls TakeOrphans() to recover the last
// known wire frame of every task that was in flight there — each paired
// with the promise feeding the original Submit() future — and replays
// them onto surviving shards (ShardRouter::FailShard).
#ifndef MOQO_SERVICE_SHARD_H_
#define MOQO_SERVICE_SHARD_H_

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

namespace moqo {

/// One in-flight task recovered from a dead shard: the freshest wire frame
/// the router-side ever held for it (the submit frame, superseded by each
/// periodic checkpoint snapshot the shard shipped back) plus the promise
/// feeding the original Submit() future. Replaying the frame elsewhere
/// re-runs only the steps after the last snapshot; the checkpoint restores
/// bitwise, so iteration-bounded results are unaffected by the failover.
struct OrphanTask {
  /// The task's submission index on the dead shard (the router's Entry
  /// records the same index, which is how the two are matched back up).
  size_t local_index = 0;
  /// The dead connection's request id (diagnostics).
  uint64_t request_id = 0;
  /// EncodeWireTask() bytes: the submit frame or the latest snapshot.
  std::vector<uint8_t> frame;
  /// Fulfills the future returned by the original Submit().
  std::promise<BatchTaskResult> promise;
};

/// One shard of a sharded service. Mirrors the OnlineScheduler lifecycle
/// contract: Start() idempotent, Stop() at most once, Submit/Suspend/
/// Resume/Drain thread-safe. Calls arrive serialized by the router's
/// mutex, but implementations must not require that.
class Shard {
 public:
  virtual ~Shard() = default;

  virtual void Start() = 0;

  /// Admits one fresh task. std::nullopt on rejection (full kReject
  /// window, shard stopping, or — remote — the connection is down).
  virtual std::optional<std::future<BatchTaskResult>> Submit(
      const BatchTask& task) = 0;

  /// Blocks until every admitted task completed (or, remote, the
  /// connection died — futures then fail rather than hang).
  virtual void Drain() = 0;

  /// Drains and shuts the shard down, returning its report over all local
  /// submissions in local submission order. At most once.
  virtual BatchReport Stop() = 0;

  /// Drains one unfinished task off the shard mid-run. std::nullopt if it
  /// already finished, the index is invalid, or the shard is unreachable.
  virtual std::optional<SuspendedTask> Suspend(size_t submission_index) = 0;

  /// Re-admits a suspended task (possibly from another shard). False —
  /// leaving `task` intact for a retry elsewhere — on refusal.
  virtual bool Resume(SuspendedTask& task) = 0;

  /// Tasks admitted so far; a successful Submit()/Resume() makes the
  /// task's local index submitted_count() - 1 (the router relies on this
  /// under its own mutex).
  virtual size_t submitted_count() const = 0;

  /// False once the shard's process/connection is known dead. A dead
  /// shard rejects all work; its recovery state is TakeOrphans().
  virtual bool alive() const = 0;

  /// Recovers the in-flight tasks of a dead shard (empty while alive, and
  /// always empty for in-process shards). Each orphan's promise is moved
  /// out, so the caller owns delivery from here on.
  virtual std::vector<OrphanTask> TakeOrphans() { return {}; }
};

/// The in-process shard: a thin forwarding wrapper around an owned
/// OnlineScheduler.
class LocalShard : public Shard {
 public:
  LocalShard(OnlineConfig config, OptimizerFactory make_optimizer)
      : scheduler_(std::make_unique<OnlineScheduler>(
            std::move(config), std::move(make_optimizer))) {}

  void Start() override { scheduler_->Start(); }
  std::optional<std::future<BatchTaskResult>> Submit(
      const BatchTask& task) override {
    return scheduler_->Submit(task);
  }
  void Drain() override { scheduler_->Drain(); }
  BatchReport Stop() override { return scheduler_->Stop(); }
  std::optional<SuspendedTask> Suspend(size_t submission_index) override {
    return scheduler_->Suspend(submission_index);
  }
  bool Resume(SuspendedTask& task) override {
    return scheduler_->Resume(task);
  }
  size_t submitted_count() const override {
    return scheduler_->submitted_count();
  }
  bool alive() const override { return true; }

  OnlineScheduler* scheduler() { return scheduler_.get(); }

 private:
  std::unique_ptr<OnlineScheduler> scheduler_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SHARD_H_
