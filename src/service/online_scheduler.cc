#include "service/online_scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "plan/plan_factory.h"

namespace moqo {

/// All state of one admitted query. Lives at a stable address (behind a
/// unique_ptr) until finalization because the session keeps pointers to
/// the factory and Rng, and is only ever touched by the thread currently
/// holding it: the submitter before it enters the ready queue, then exactly
/// one worker per slice. Hand-offs go through mu_.
struct OnlineScheduler::OpenQuery {
  OpenQuery(const BatchTask& task, const CostModel* model)
      : rng(task.seed), factory(task.query, model) {}

  int index = -1;  // submission index == result slot
  Rng rng;
  PlanFactory factory;
  std::unique_ptr<OptimizerSession> session;
  Deadline deadline;
  bool had_deadline = false;
  /// Admission-relative absolute deadline (micros since epoch_); the EDF
  /// ready-queue key. Unused for deadline-free tasks.
  int64_t deadline_key_micros = 0;
  int64_t admit_micros = 0;
  bool begun = false;
  /// Sum of slice durations so far (excludes ready-queue wait time).
  double optimize_millis = 0.0;
  std::promise<BatchTaskResult> promise;
};

OnlineScheduler::OnlineScheduler(OnlineConfig config,
                                 OptimizerFactory make_optimizer)
    : config_(std::move(config)),
      make_optimizer_(std::move(make_optimizer)),
      model_(config_.metrics) {}

OnlineScheduler::~OnlineScheduler() {
  bool stopped;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopped = stopping_;
  }
  if (!stopped) Stop();
}

void OnlineScheduler::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  int n = std::max(1, config_.num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

std::optional<std::future<BatchTaskResult>> OnlineScheduler::Submit(
    const BatchTask& task) {
  // Build the expensive per-task state (factory, session) outside the lock;
  // the factory callback is user code and must not run under mu_.
  auto owned = std::make_unique<OpenQuery>(task, &model_);
  owned->session = make_optimizer_()->NewSession();

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return std::nullopt;
  if (config_.max_open > 0 && open_ >= config_.max_open) {
    if (config_.admission == AdmissionPolicy::kReject) return std::nullopt;
    admit_cv_.wait(lock, [this] {
      return stopping_ || open_ < config_.max_open;
    });
    if (stopping_) return std::nullopt;
  }

  OpenQuery* q = owned.get();
  q->index = static_cast<int>(queries_.size());
  q->had_deadline = task.deadline_micros > 0;
  q->admit_micros = epoch_.ElapsedMicros();
  if (q->had_deadline) {
    // The deadline starts at admission: queueing delay counts against it.
    q->deadline = Deadline::AfterMicros(task.deadline_micros);
    q->deadline_key_micros = q->admit_micros + task.deadline_micros;
  }
  std::future<BatchTaskResult> ticket = q->promise.get_future();
  queries_.push_back(std::move(owned));
  results_.emplace_back();
  ++open_;
  ready_.push(MakeReadyItem(q));
  lock.unlock();
  work_cv_.notify_one();
  return ticket;
}

void OnlineScheduler::Drain() {
  Start();
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return open_ == 0; });
}

BatchReport OnlineScheduler::Stop() {
  Drain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  admit_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  std::unique_lock<std::mutex> lock(mu_);
  BatchReport report;
  report.num_threads = std::max(1, config_.num_threads);
  report.tasks = std::move(results_);
  results_.clear();
  report.wall_millis = epoch_.ElapsedMillis();
  report.Aggregate();
  return report;
}

size_t OnlineScheduler::open_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return open_;
}

size_t OnlineScheduler::submitted_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queries_.size();
}

OnlineScheduler::ReadyItem OnlineScheduler::MakeReadyItem(OpenQuery* query) {
  ReadyItem item;
  item.seq = seq_++;
  item.query = query;
  switch (config_.policy) {
    case SchedulingPolicy::kFifo:
      item.primary = 0.0;
      break;
    case SchedulingPolicy::kEarliestDeadlineFirst:
      item.primary = query->had_deadline
                         ? static_cast<double>(query->deadline_key_micros)
                         : std::numeric_limits<double>::infinity();
      break;
    case SchedulingPolicy::kSlackWeighted:
      if (!query->had_deadline) {
        item.primary = std::numeric_limits<double>::infinity();
      } else {
        double remaining =
            static_cast<double>(query->deadline.RemainingMicros());
        double steps =
            static_cast<double>(query->session->session_stats().steps);
        item.primary = remaining / (1.0 + steps);
      }
      break;
  }
  return item;
}

void OnlineScheduler::Finalize(OpenQuery* query, BatchTaskResult result,
                               std::exception_ptr error) {
  BatchTaskResult& slot = results_[static_cast<size_t>(query->index)];
  slot = result;
  if (!config_.retain_frontiers) {
    slot.frontier.clear();
    slot.frontier.shrink_to_fit();
  }
  if (error) {
    query->promise.set_exception(error);
  } else {
    query->promise.set_value(std::move(result));
  }
  queries_[static_cast<size_t>(query->index)].reset();
  --open_;
  admit_cv_.notify_one();
  if (open_ == 0) drain_cv_.notify_all();
}

void OnlineScheduler::WorkerLoop() {
  const int slice_steps = std::max(1, config_.steps_per_slice);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_workers_ || !ready_.empty(); });
    // Even when stopping, drain what is ready: a requeued slice must finish
    // its task so that every admitted task's promise is fulfilled.
    if (ready_.empty()) return;
    OpenQuery* q = ready_.top().query;
    ready_.pop();
    lock.unlock();

    // Run one slice without the lock; this worker owns `q` exclusively
    // until it is requeued or finalized.
    bool finished = false;
    std::exception_ptr error;
    BatchTaskResult result;
    try {
      Stopwatch slice_watch;
      if (!q->begun) {
        q->session->Begin(&q->factory, &q->rng);
        q->begun = true;
      }
      for (int s = 0; s < slice_steps && !q->session->Done() &&
                      !q->deadline.Expired();
           ++s) {
        q->session->Step(q->deadline);
      }
      q->optimize_millis += slice_watch.ElapsedMillis();
      // Sample expiry once, here: the post-processing below (frontier copy
      // and sort) takes time, and a task that finished its work inside the
      // window must not be reclassified as a miss by a later clock read.
      const bool expired = q->deadline.Expired();
      finished = q->session->Done() || expired;
      if (finished) {
        result.index = q->index;
        result.frontier = CanonicalFrontier(q->session->Frontier());
        result.optimize_millis = q->optimize_millis;
        result.admit_millis = static_cast<double>(q->admit_micros) / 1000.0;
        result.elapsed_millis = epoch_.ElapsedMillis() - result.admit_millis;
        result.steps = q->session->session_stats().steps;
        result.had_deadline = q->had_deadline;
        result.deadline_hit =
            q->had_deadline && q->session->Done() && !expired;
      }
    } catch (...) {
      // A throwing optimizer must not take the service down: finalize the
      // task with what it has and surface the error through its future.
      error = std::current_exception();
      finished = true;
      result.index = q->index;
      result.optimize_millis = q->optimize_millis;
      result.admit_millis = static_cast<double>(q->admit_micros) / 1000.0;
      result.elapsed_millis = epoch_.ElapsedMillis() - result.admit_millis;
      result.had_deadline = q->had_deadline;
    }

    lock.lock();
    if (!finished) {
      ready_.push(MakeReadyItem(q));
      work_cv_.notify_one();
      continue;
    }
    Finalize(q, std::move(result), error);
  }
}

}  // namespace moqo
