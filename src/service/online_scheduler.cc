#include "service/online_scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "plan/plan_factory.h"
#include "service/wire.h"

namespace moqo {

void SuspendedTask::Abandon() noexcept {
  if (consumed_) return;
  try {
    std::string message =
        "SuspendedTask dropped without Resume(): the session was suspended "
        "off its scheduler and abandoned mid-migration, so its result will "
        "never be produced";
    if (!origin.empty()) message += " [" + origin + "]";
    promise.set_exception(
        std::make_exception_ptr(std::runtime_error(message)));
  } catch (const std::future_error&) {
    // No shared state (the promise was moved to a transport or rebuilt
    // task) or the future was already satisfied — nothing to fail.
  }
}

SuspendedTask::~SuspendedTask() { Abandon(); }

SuspendedTask& SuspendedTask::operator=(SuspendedTask&& other) noexcept {
  if (this != &other) {
    Abandon();
    task = std::move(other.task);
    checkpoint = std::move(other.checkpoint);
    had_deadline = other.had_deadline;
    remaining_micros = other.remaining_micros;
    optimize_millis = other.optimize_millis;
    steps = other.steps;
    promise = std::move(other.promise);
    origin = std::move(other.origin);
    consumed_ = other.consumed_;
  }
  return *this;
}

/// All state of one admitted query. Lives at a stable address (behind a
/// unique_ptr) until finalization because the session keeps pointers to
/// the factory and Rng, and is only ever touched by the thread currently
/// holding it: the submitter before it enters the ready queue, then exactly
/// one worker per slice. Hand-offs go through mu_.
struct OnlineScheduler::OpenQuery {
  OpenQuery(const BatchTask& request, const CostModel* model)
      : task(request), rng(request.seed), factory(request.query, model) {}

  /// Where the per-task state currently lives. Hand-offs through mu_:
  /// kQueued — in ready_, touched by nobody; kRunning — owned by exactly
  /// one worker; kParked — pulled out of circulation for a Suspend() in
  /// progress, owned by the suspending thread.
  enum class RunState { kQueued, kRunning, kParked };

  /// The original request, retained so Suspend() can hand it on.
  BatchTask task;
  int index = -1;  // submission index == result slot
  Rng rng;
  PlanFactory factory;
  std::unique_ptr<OptimizerSession> session;
  Deadline deadline;
  bool had_deadline = false;
  /// Admission-relative absolute deadline (micros since epoch_); the EDF
  /// ready-queue key. Unused for deadline-free tasks.
  int64_t deadline_key_micros = 0;
  int64_t admit_micros = 0;
  bool begun = false;
  /// Sum of slice durations so far (excludes ready-queue wait time).
  double optimize_millis = 0.0;
  RunState state = RunState::kQueued;
  /// Slices completed since the last periodic snapshot (see
  /// OnlineConfig::snapshot_every). Touched only by the worker owning the
  /// current slice.
  int slices_since_snapshot = 0;
  /// Set under mu_ by Suspend(); a worker seeing it after a slice parks
  /// the query instead of requeueing it.
  bool suspend_requested = false;
  /// Warm-start seed decoded from a frontier-cache hit at Submit() time;
  /// consumed by the worker's first slice (BeginFrom instead of Begin).
  std::vector<PlanPtr> warm_plans;
  std::promise<BatchTaskResult> promise;
};

OnlineScheduler::OnlineScheduler(OnlineConfig config,
                                 OptimizerFactory make_optimizer)
    : config_(std::move(config)),
      make_optimizer_(std::move(make_optimizer)),
      model_(config_.metrics) {}

OnlineScheduler::~OnlineScheduler() {
  bool stopped;
  {
    MutexLock lock(mu_);
    stopped = stopping_;
  }
  if (!stopped) Stop();
}

void OnlineScheduler::Start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  int n = std::max(1, config_.num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool OnlineScheduler::WaitForAdmissionSlot(MutexLock& lock) {
  if (stopping_) return false;
  if (config_.max_open > 0 && open_ >= config_.max_open) {
    if (config_.admission == AdmissionPolicy::kReject) return false;
    admit_cv_.Wait(lock, [this]() REQUIRES(mu_) {
      return stopping_ || open_ < config_.max_open;
    });
    if (stopping_) return false;
  }
  return true;
}

void OnlineScheduler::EnqueueAdmitted(std::unique_ptr<OpenQuery> owned,
                                      int64_t window_micros) {
  OpenQuery* q = owned.get();
  q->index = static_cast<int>(queries_.size());
  q->admit_micros = epoch_.ElapsedMicros();
  if (q->had_deadline) {
    // The deadline starts at admission: queueing delay counts against it.
    // The window is clamped (see kMaxDeadlineMicros), so adding it to the
    // admission timestamp cannot overflow the EDF key.
    q->deadline = Deadline::AfterMicros(window_micros);
    q->deadline_key_micros = q->admit_micros + window_micros;
  }
  queries_.push_back(std::move(owned));
  results_.emplace_back();
  ++open_;
  ready_.push(MakeReadyItem(q));
}

std::optional<std::future<BatchTaskResult>> OnlineScheduler::Submit(
    const BatchTask& task) {
  // Build the expensive per-task state (factory, session) outside the lock;
  // the factory callback is user code and must not run under mu_.
  auto owned = std::make_unique<OpenQuery>(task, &model_);
  std::shared_ptr<const CachedFrontier> cached;
  if (config_.frontier_cache != nullptr) {
    // Canonicalization and the cache probe both happen outside mu_; the
    // fingerprint is stamped into the retained task so Suspend()/snapshot
    // consumers (and the completion insert) reuse it.
    owned->task.fingerprint = FingerprintOf(task);
    cached = config_.frontier_cache->Lookup(owned->task.fingerprint,
                                            task.seed);
  }
  if (cached != nullptr && cached->seed == task.seed) {
    // Exact hit: this submission is a bitwise repeat of the cached
    // completed run, so its future resolves right here — no admission
    // slot, no session, no worker round-trip. The report still gets a
    // slot (keeping submission indices aligned with queries_), marked
    // served_from_cache.
    BatchTaskResult result;
    result.frontier = cached->frontier;
    result.had_deadline = task.deadline_micros > 0;
    // The full configured work was delivered instantly, so a deadline —
    // any deadline — is trivially hit.
    result.deadline_hit = result.had_deadline;
    result.served_from_cache = true;
    MutexLock lock(mu_);
    if (stopping_) return std::nullopt;
    result.index = static_cast<int>(queries_.size());
    result.admit_millis =
        static_cast<double>(epoch_.ElapsedMicros()) / 1000.0;
    queries_.push_back(nullptr);
    results_.emplace_back();
    BatchTaskResult& slot = results_.back();
    slot = result;
    if (!config_.retain_frontiers) {
      slot.frontier.clear();
      slot.frontier.shrink_to_fit();
    }
    lock.Unlock();
    std::promise<BatchTaskResult> promise;
    std::future<BatchTaskResult> ticket = promise.get_future();
    promise.set_value(std::move(result));
    return ticket;
  }
  owned->session = make_optimizer_()->NewSession();
  owned->had_deadline = task.deadline_micros > 0;
  if (cached != nullptr) {
    // Warm hit (same shape, different seed): rebuild the cached plans
    // through this task's own factory — deterministic cost restamping —
    // and hand them to the first slice's BeginFrom(). A stale or
    // undecodable entry silently degrades to a cold start; the run is
    // correct either way.
    CheckpointReader reader(cached->plan_bytes, &owned->factory);
    std::vector<PlanPtr> warm = reader.ReadPlans();
    if (reader.ok() && reader.AtEnd() &&
        AllPlansCover(warm, task.query->AllTables())) {
      owned->warm_plans = std::move(warm);
    }
  }
  std::future<BatchTaskResult> ticket = owned->promise.get_future();
  int64_t window = task.deadline_micros > kMaxDeadlineMicros
                       ? kMaxDeadlineMicros
                       : task.deadline_micros;

  MutexLock lock(mu_);
  if (!WaitForAdmissionSlot(lock)) return std::nullopt;
  EnqueueAdmitted(std::move(owned), window);
  lock.Unlock();
  work_cv_.NotifyOne();
  return ticket;
}

std::optional<SuspendedTask> OnlineScheduler::Suspend(
    size_t submission_index) {
  MutexLock lock(mu_);
  if (submission_index >= queries_.size()) return std::nullopt;
  OpenQuery* q = queries_[submission_index].get();
  if (q == nullptr || q->suspend_requested || stopping_) return std::nullopt;
  q->suspend_requested = true;
  if (q->state == OpenQuery::RunState::kQueued) {
    RemoveFromReady(q);
    q->state = OpenQuery::RunState::kParked;
  } else {
    // A worker owns the current slice; it parks the query (instead of
    // requeueing) or finalizes it when the slice ends.
    suspend_cv_.Wait(lock, [&]() REQUIRES(mu_) {
      OpenQuery* p = queries_[submission_index].get();
      return p == nullptr || p->state == OpenQuery::RunState::kParked;
    });
    if (queries_[submission_index] == nullptr) {
      // The slice completed the task; its future is already fulfilled.
      return std::nullopt;
    }
  }

  // Parked and out of the ready queue: this thread owns the query
  // exclusively, so the (potentially large) checkpoint is serialized
  // without blocking the workers.
  lock.Unlock();
  SuspendedTask out;
  out.task = q->task;
  out.had_deadline = q->had_deadline;
  if (q->had_deadline) out.remaining_micros = q->deadline.RemainingMicros();
  out.optimize_millis = q->optimize_millis;
  if (q->begun) {
    out.checkpoint = q->session->Checkpoint();
    out.steps = q->session->session_stats().steps;
  }
  out.promise = std::move(q->promise);

  lock.Lock();
  BatchTaskResult& slot = results_[submission_index];
  slot.index = q->index;
  slot.migrated = true;
  slot.had_deadline = q->had_deadline;
  slot.optimize_millis = q->optimize_millis;
  slot.admit_millis = static_cast<double>(q->admit_micros) / 1000.0;
  slot.steps = out.steps;
  queries_[submission_index].reset();
  --open_;
  admit_cv_.NotifyOne();
  if (open_ == 0) drain_cv_.NotifyAll();
  return out;
}

bool OnlineScheduler::Resume(SuspendedTask& task) {
  if (task.consumed()) return false;
  {
    // A migration destination must be live: enqueueing into a scheduler
    // that was never started (or is stopping) would park the task where no
    // worker will ever run it, while its submitter waits forever. Refuse
    // up front — before the expensive restore — leaving `task` resumable
    // elsewhere. started_ never reverts, so the recheck under the
    // admission lock below only needs to watch stopping_.
    MutexLock lock(mu_);
    if (!started_ || stopping_) return false;
  }
  auto owned = std::make_unique<OpenQuery>(task.task, &model_);
  owned->session = make_optimizer_()->NewSession();
  if (!task.checkpoint.empty()) {
    // Restore eagerly (outside the lock) so a rejected checkpoint can be
    // reported to the caller instead of surfacing as a worker error.
    if (!owned->session->Restore(&owned->factory, &owned->rng,
                                 task.checkpoint)) {
      return false;
    }
    owned->begun = true;
  }
  owned->had_deadline = task.had_deadline;
  owned->optimize_millis = task.optimize_millis;
  int64_t window = task.remaining_micros;
  if (window < 0) window = 0;
  if (window > kMaxDeadlineMicros) window = kMaxDeadlineMicros;

  MutexLock lock(mu_);
  if (!WaitForAdmissionSlot(lock)) return false;
  task.MarkConsumed();
  owned->promise = std::move(task.promise);
  EnqueueAdmitted(std::move(owned), window);
  lock.Unlock();
  work_cv_.NotifyOne();
  return true;
}

void OnlineScheduler::Drain() {
  Start();
  MutexLock lock(mu_);
  drain_cv_.Wait(lock, [this]() REQUIRES(mu_) { return open_ == 0; });
}

BatchReport OnlineScheduler::Stop() {
  Drain();
  {
    MutexLock lock(mu_);
    stopping_ = true;
    stop_workers_ = true;
  }
  work_cv_.NotifyAll();
  admit_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  MutexLock lock(mu_);
  BatchReport report;
  report.num_threads = std::max(1, config_.num_threads);
  report.tasks = std::move(results_);
  results_.clear();
  report.wall_millis = epoch_.ElapsedMillis();
  report.Aggregate();
  return report;
}

size_t OnlineScheduler::open_count() const {
  MutexLock lock(mu_);
  return open_;
}

size_t OnlineScheduler::submitted_count() const {
  MutexLock lock(mu_);
  return queries_.size();
}

size_t OnlineScheduler::snapshot_count() const {
  MutexLock lock(mu_);
  return snapshots_taken_;
}

OnlineScheduler::ReadyItem OnlineScheduler::MakeReadyItem(OpenQuery* query) {
  ReadyItem item;
  item.seq = seq_++;
  item.query = query;
  switch (config_.policy) {
    case SchedulingPolicy::kFifo:
      item.primary = 0.0;
      break;
    case SchedulingPolicy::kEarliestDeadlineFirst:
      item.primary = query->had_deadline
                         ? static_cast<double>(query->deadline_key_micros)
                         : std::numeric_limits<double>::infinity();
      break;
    case SchedulingPolicy::kSlackWeighted:
      if (!query->had_deadline) {
        item.primary = std::numeric_limits<double>::infinity();
      } else {
        double remaining =
            static_cast<double>(query->deadline.RemainingMicros());
        double steps =
            static_cast<double>(query->session->session_stats().steps);
        item.primary = remaining / (1.0 + steps);
      }
      break;
  }
  return item;
}

void OnlineScheduler::Finalize(OpenQuery* query, BatchTaskResult result,
                               std::exception_ptr error) {
  BatchTaskResult& slot = results_[static_cast<size_t>(query->index)];
  slot = result;
  if (!config_.retain_frontiers) {
    slot.frontier.clear();
    slot.frontier.shrink_to_fit();
  }
  if (error) {
    query->promise.set_exception(error);
  } else {
    query->promise.set_value(std::move(result));
  }
  queries_[static_cast<size_t>(query->index)].reset();
  --open_;
  admit_cv_.NotifyOne();
  // A Suspend() may be waiting on this query; it observes the reset slot
  // and reports that the task already finished.
  suspend_cv_.NotifyAll();
  if (open_ == 0) drain_cv_.NotifyAll();
}

void OnlineScheduler::RemoveFromReady(OpenQuery* query) {
  std::vector<ReadyItem> keep;
  keep.reserve(ready_.size());
  while (!ready_.empty()) {
    if (ready_.top().query != query) keep.push_back(ready_.top());
    ready_.pop();
  }
  for (ReadyItem& item : keep) ready_.push(item);
}

void OnlineScheduler::WorkerLoop() {
  const int slice_steps = std::max(1, config_.steps_per_slice);
  MutexLock lock(mu_);
  for (;;) {
    work_cv_.Wait(lock, [this]() REQUIRES(mu_) {
      return stop_workers_ || !ready_.empty();
    });
    // Even when stopping, drain what is ready: a requeued slice must finish
    // its task so that every admitted task's promise is fulfilled.
    if (ready_.empty()) return;
    OpenQuery* q = ready_.top().query;
    ready_.pop();
    q->state = OpenQuery::RunState::kRunning;
    lock.Unlock();

    // Run one slice without the lock; this worker owns `q` exclusively
    // until it is requeued or finalized.
    bool finished = false;
    bool snapshot_due = false;
    std::exception_ptr error;
    BatchTaskResult result;
    try {
      Stopwatch slice_watch;
      if (!q->begun) {
        if (q->warm_plans.empty()) {
          q->session->Begin(&q->factory, &q->rng);
        } else {
          q->session->BeginFrom(&q->factory, &q->rng, q->warm_plans);
          q->warm_plans.clear();
          q->warm_plans.shrink_to_fit();
        }
        q->begun = true;
      }
      for (int s = 0; s < slice_steps && !q->session->Done() &&
                      !q->deadline.Expired();
           ++s) {
        q->session->Step(q->deadline);
      }
      q->optimize_millis += slice_watch.ElapsedMillis();
      // Sample expiry once, here: the post-processing below (frontier copy
      // and sort) takes time, and a task that finished its work inside the
      // window must not be reclassified as a miss by a later clock read.
      const bool expired = q->deadline.Expired();
      finished = q->session->Done() || expired;
      if (finished) {
        result.index = q->index;
        result.frontier = CanonicalFrontier(q->session->Frontier());
        result.optimize_millis = q->optimize_millis;
        result.admit_millis = static_cast<double>(q->admit_micros) / 1000.0;
        result.elapsed_millis = epoch_.ElapsedMillis() - result.admit_millis;
        result.steps = q->session->session_stats().steps;
        result.had_deadline = q->had_deadline;
        result.gave_up = q->session->GaveUp();
        // A gave-up session (e.g. DP on an oversized query) is Done with
        // an empty frontier; being inside the window is not a hit.
        result.deadline_hit = q->had_deadline && q->session->Done() &&
                              !result.gave_up && !expired;
        if (config_.frontier_cache != nullptr && q->session->Done() &&
            !result.gave_up && !result.frontier.empty()) {
          // Cache only completed runs: a deadline-expired partial frontier
          // would poison exact hits with worse-than-cold answers. The
          // serialization happens here, outside mu_, on the worker that
          // owns the session.
          CachedFrontier entry;
          entry.fingerprint = FingerprintOf(q->task);
          entry.seed = q->task.seed;
          // Cache-internal bytes: decoded only by this process's own
          // ReadPlans, never persisted or shipped across a build boundary.
          CheckpointWriter plan_writer;  // moqo-lint: allow(checkpoint-magic)
          plan_writer.WritePlans(q->session->Frontier());
          entry.plan_bytes = plan_writer.Take();
          entry.frontier = result.frontier;
          entry.steps = result.steps;
          config_.frontier_cache->Insert(std::move(entry));
        }
      } else if (config_.snapshot_every > 0 && config_.snapshot_sink &&
                 ++q->slices_since_snapshot >= config_.snapshot_every) {
        q->slices_since_snapshot = 0;
        snapshot_due = true;
      }
    } catch (...) {
      // A throwing optimizer must not take the service down: finalize the
      // task with what it has and surface the error through its future.
      error = std::current_exception();
      finished = true;
      result.index = q->index;
      result.optimize_millis = q->optimize_millis;
      result.admit_millis = static_cast<double>(q->admit_micros) / 1000.0;
      result.elapsed_millis = epoch_.ElapsedMillis() - result.admit_millis;
      result.had_deadline = q->had_deadline;
    }

    if (snapshot_due) {
      // Still outside the lock and still the exclusive owner of `q`:
      // serialize the (pure-read) checkpoint without stalling the other
      // workers, then publish it. Snapshot time is deliberately excluded
      // from optimize_millis — it is recovery bookkeeping, not
      // optimization work — and a throwing sink is treated like a
      // throwing optimizer would be: it must not take a worker down, so
      // failures are swallowed (the next interval retries).
      try {
        TaskSnapshot snapshot;
        snapshot.submission_index = static_cast<size_t>(q->index);
        snapshot.task = q->task;
        snapshot.checkpoint = q->session->Checkpoint();
        snapshot.had_deadline = q->had_deadline;
        if (q->had_deadline) {
          snapshot.remaining_micros = q->deadline.RemainingMicros();
        }
        snapshot.optimize_millis = q->optimize_millis;
        snapshot.steps = q->session->session_stats().steps;
        config_.snapshot_sink(std::move(snapshot));
      } catch (...) {
        snapshot_due = false;
      }
    }

    lock.Lock();
    if (snapshot_due) ++snapshots_taken_;
    if (!finished && q->suspend_requested) {
      // Hand the query to the waiting Suspend() instead of requeueing.
      q->state = OpenQuery::RunState::kParked;
      suspend_cv_.NotifyAll();
      continue;
    }
    if (!finished) {
      q->state = OpenQuery::RunState::kQueued;
      ready_.push(MakeReadyItem(q));
      work_cv_.NotifyOne();
      continue;
    }
    Finalize(q, std::move(result), error);
  }
}

}  // namespace moqo
