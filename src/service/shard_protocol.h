// Message layer of the cross-process shard transport.
//
// A frame channel (net/frame_channel.h) moves opaque byte strings with
// integrity checking; this header gives those bytes meaning. Every payload
// is one Message: a magic/version preamble, a message type, a request id
// correlating a shard's reply stream back to the router's submissions, and
// a type-specific body (itself usually a wire.h encoding).
//
// The conversation is asymmetric. The router side sends requests
// (kSubmit, kSuspend, kShutdown); the shard server streams back replies
// and unsolicited events (kResult, kSnapshot, kPing, ...) tagged with the
// request id they concern. There is no per-request blocking RPC: the
// client correlates whatever arrives, whenever it arrives, which is what
// lets one connection carry many concurrent tasks plus a heartbeat.
//
// Like the wire format, decoding is strict: unknown types, short bodies,
// and trailing bytes are all rejections, never best-effort acceptance.
#ifndef MOQO_SERVICE_SHARD_PROTOCOL_H_
#define MOQO_SERVICE_SHARD_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace moqo {

/// First bytes of every protocol message ("MOQN" little-endian).
inline constexpr uint32_t kNetMagic = 0x4e514f4du;

/// Bumped whenever the message layout or type set changes.
inline constexpr uint32_t kNetVersion = 1;

/// Message types. Requests (router -> shard) are < 16, replies and events
/// (shard -> router) are >= 16; the split is convention, not enforced.
enum class MsgType : uint8_t {
  /// Body: EncodeWireTask() frame. A fresh task (empty checkpoint) is
  /// Submit()ed; a mid-run task (checkpoint present) is Resume()d.
  kSubmit = 1,
  /// Body: empty. Suspend the task of `request_id` and ship it back.
  kSuspend = 2,
  /// Body: empty. Drain, flush every pending result, reply kBye, stop.
  kShutdown = 3,

  /// Body: EncodeTaskResult() record for `request_id`'s task.
  kResult = 16,
  /// Body: UTF-8 error text; `request_id`'s task threw instead of
  /// finishing.
  kTaskError = 17,
  /// Body: EncodeWireTask() frame — a periodic checkpoint snapshot of
  /// `request_id`'s still-running task (recovery state; supersedes the
  /// previous frame the client holds for it).
  kSnapshot = 18,
  /// Body: EncodeWireTask() frame — the suspended task requested by
  /// kSuspend, now off the server's scheduler.
  kSuspended = 19,
  /// Body: UTF-8 reason; the kSuspend for `request_id` failed (already
  /// finished, unknown id, ...). The task — if it exists — keeps running.
  kSuspendFail = 20,
  /// Body: empty. Liveness heartbeat (request_id = 0).
  kPing = 21,
  /// Body: empty. Shutdown handshake: every result has been flushed and
  /// the server is about to close the connection.
  kBye = 22,
  /// Body: UTF-8 reason; the kSubmit for `request_id` was refused
  /// (admission window full, duplicate id, undecodable frame).
  kReject = 23,
};

/// One decoded protocol message.
struct Message {
  MsgType type = MsgType::kPing;
  /// Correlates replies/events with the request (client-chosen, unique per
  /// connection); 0 for unsolicited connection-level events.
  uint64_t request_id = 0;
  /// Type-specific body, opaque at this layer.
  std::vector<uint8_t> body;
};

/// Serializes `message` into a frame-channel payload.
std::vector<uint8_t> EncodeMessage(const Message& message);

/// Mirrors EncodeMessage. Returns false — recording the reason in `why`
/// when non-null — on bad magic/version, an unknown type, a truncated
/// payload, or trailing bytes.
bool DecodeMessage(const std::vector<uint8_t>& payload, Message* out,
                   std::string* why);

}  // namespace moqo

#endif  // MOQO_SERVICE_SHARD_PROTOCOL_H_
