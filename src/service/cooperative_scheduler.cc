#include "service/cooperative_scheduler.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "common/deadline.h"
#include "plan/plan_factory.h"
#include "service/thread_pool.h"

namespace moqo {

namespace {

/// All state of one in-flight query. Lives at a stable address for the
/// whole run because the session keeps pointers to the factory and Rng.
struct OpenQuery {
  OpenQuery(int index_in, uint64_t seed, QueryPtr query,
            const CostModel* model)
      : index(index_in), rng(seed), factory(std::move(query), model) {}

  const int index;
  Rng rng;
  PlanFactory factory;
  std::unique_ptr<OptimizerSession> session;
  Deadline deadline;
  bool had_deadline = false;
  bool begun = false;
  /// Sum of slice durations so far (excludes ready-queue wait time).
  double optimize_millis = 0.0;
};

}  // namespace

CooperativeScheduler::CooperativeScheduler(CooperativeConfig config,
                                           OptimizerFactory make_optimizer)
    : config_(std::move(config)),
      make_optimizer_(std::move(make_optimizer)) {}

BatchReport CooperativeScheduler::Run(const std::vector<BatchTask>& tasks) {
  BatchReport report;
  report.num_threads = std::max(1, config_.num_threads);
  report.tasks.resize(tasks.size());
  if (tasks.empty()) return report;
  const int slice_steps = std::max(1, config_.steps_per_slice);

  Stopwatch wall;
  CostModel model(config_.metrics);

  // Admission: every task gets its session and (if any) its wall-clock
  // deadline now, before the workers start.
  std::vector<std::unique_ptr<OpenQuery>> queries;
  queries.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto q = std::make_unique<OpenQuery>(static_cast<int>(i), tasks[i].seed,
                                         tasks[i].query, &model);
    q->session = make_optimizer_()->NewSession();
    q->had_deadline = tasks[i].deadline_micros > 0;
    q->deadline = q->had_deadline
                      ? Deadline::AfterMicros(tasks[i].deadline_micros)
                      : Deadline();
    queries.push_back(std::move(q));
  }

  {
    ThreadPool pool(report.num_threads);
    // One pool task = one slice; an unfinished query requeues itself, so
    // the FIFO queue round-robins all open sessions.
    std::function<void(OpenQuery*)> slice = [&](OpenQuery* q) {
      Stopwatch slice_watch;
      if (!q->begun) {
        q->session->Begin(&q->factory, &q->rng);
        q->begun = true;
      }
      for (int s = 0; s < slice_steps && !q->session->Done() &&
                      !q->deadline.Expired();
           ++s) {
        q->session->Step(q->deadline);
      }
      q->optimize_millis += slice_watch.ElapsedMillis();

      if (q->session->Done() || q->deadline.Expired()) {
        BatchTaskResult* slot =
            &report.tasks[static_cast<size_t>(q->index)];
        slot->index = q->index;
        slot->frontier = CanonicalFrontier(q->session->Frontier());
        slot->optimize_millis = q->optimize_millis;
        slot->elapsed_millis = wall.ElapsedMillis();
        slot->steps = q->session->session_stats().steps;
        slot->had_deadline = q->had_deadline;
      } else {
        pool.Submit([&slice, q] { slice(q); });
      }
    };
    for (std::unique_ptr<OpenQuery>& q : queries) {
      OpenQuery* raw = q.get();
      pool.Submit([&slice, raw] { slice(raw); });
    }
    pool.Wait();
  }
  report.wall_millis = wall.ElapsedMillis();
  report.Aggregate();
  return report;
}

}  // namespace moqo
