#include "service/cooperative_scheduler.h"

#include <algorithm>
#include <utility>

namespace moqo {

CooperativeScheduler::CooperativeScheduler(CooperativeConfig config,
                                           OptimizerFactory make_optimizer)
    : config_(std::move(config)),
      make_optimizer_(std::move(make_optimizer)) {}

BatchReport CooperativeScheduler::Run(const std::vector<BatchTask>& tasks) {
  if (tasks.empty()) {
    BatchReport report;
    report.num_threads = std::max(1, config_.num_threads);
    return report;
  }

  OnlineConfig online;
  online.num_threads = config_.num_threads;
  online.metrics = config_.metrics;
  online.steps_per_slice = config_.steps_per_slice;
  online.policy = config_.policy;

  // Closed batch = admit everything up front (arming each task's deadline
  // at its Submit), then start the workers and run the backlog dry.
  OnlineScheduler service(online, make_optimizer_);
  for (const BatchTask& task : tasks) service.Submit(task);
  service.Start();
  return service.Stop();
}

}  // namespace moqo
