// Consistent-hash shard router: the online service scaled across N
// scheduler shards behind one Submit/Drain/Stop + futures front door.
//
// A ShardRouter owns a set of in-process OnlineScheduler shards and places
// every submitted query on a consistent-hash ring: each shard contributes
// `virtual_nodes` points keyed by its stable shard id, and a query lands
// on the first point at or after its RouteKey (service/wire.h). Placement
// therefore depends only on the query content, the seed, and the current
// membership — never on submission order — and changing membership moves
// only the keys between the departed/arrived shard's points and their
// predecessors, not the whole keyspace.
//
// Elasticity: AddShard()/RemoveShard() change membership while the service
// runs. The router re-derives every in-flight task's owner and migrates
// the ones whose owner changed: Suspend() drains the task (a portable
// session checkpoint plus its unexpired deadline remainder) off the old
// shard, the task is round-tripped through the wire format — encoded and
// decoded exactly as a cross-process transport would put it on a socket,
// so the destination sees only what the wire carries — and Resume() lands
// it on the new owner. The future handed out by the original Submit() is
// untouched throughout and delivers the final result from whichever shard
// finishes the task.
//
// Determinism contract (inherited from the schedulers underneath): every
// task owns an Rng seeded from its submission, so shard placement and
// rebalancing affect only timing. Iteration-bounded tasks produce
// frontiers bitwise identical to an unsharded OnlineScheduler reference —
// across any shard count and any AddShard/RemoveShard schedule — which
// bench/shard_throughput.cc gates on every run.
//
// Thread-safety: Submit/Drain/AddShard/RemoveShard/observers may be called
// concurrently from any thread (one router mutex serializes them; worker
// threads inside the shards never take it). Start() and Stop() follow the
// OnlineScheduler contract: at most once each.
#ifndef MOQO_SERVICE_SHARD_ROUTER_H_
#define MOQO_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

namespace moqo {

/// Configuration for one ShardRouter instance.
struct ShardRouterConfig {
  /// Configuration applied to every shard (thread count, metrics, policy,
  /// admission window). Keep retain_frontiers = true if the Stop() report
  /// should carry frontiers for reference comparison.
  OnlineConfig shard;
  /// Shards created up front (clamped to >= 1).
  int num_shards = 2;
  /// Ring points per shard (clamped to >= 1). More points smooth the key
  /// distribution; 64 keeps the worst shard within a few percent of fair
  /// share for realistic shard counts.
  int virtual_nodes = 64;
};

/// A sharded online optimization service. See file header.
class ShardRouter {
 public:
  ShardRouter(ShardRouterConfig config, OptimizerFactory make_optimizer);

  /// Stops the router (draining all shards) if Stop() was not called.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts every shard's workers. Idempotent; called implicitly by
  /// Drain() and by membership changes (a rebalance needs live
  /// destinations to Resume() onto).
  void Start();

  /// Routes the task to its ring owner and admits it there. Returns the
  /// shard's future for the result, or std::nullopt if the owner rejected
  /// it (full window under kReject, or the router is stopping). Under
  /// kBlock a full owner window blocks the caller — and any concurrent
  /// membership change — until the owner frees a slot.
  std::optional<std::future<BatchTaskResult>> Submit(const BatchTask& task);

  /// Blocks until every admitted task on every shard has completed.
  void Drain();

  /// Drains, stops every shard, and returns one report over all router
  /// submissions in router submission order: task i is the i-th successful
  /// Submit(), with its result taken from the shard that finished it
  /// (migrated-away stub slots are skipped). `migrated_tasks` counts
  /// rebalance hops performed by this router. After Stop() every Submit()
  /// is rejected; the router cannot be restarted.
  BatchReport Stop();

  /// Adds a shard, rebalancing in-flight tasks whose ring owner changed
  /// onto it via suspend → wire round-trip → resume. Starts the router if
  /// it was not running. Returns the new shard's stable id, or size_t(-1)
  /// — changing nothing — once the router is stopped.
  size_t AddShard();

  /// Removes shard `shard_id`, first migrating its in-flight tasks to
  /// their new ring owners (a task whose new owner refuses it finishes on
  /// the departing shard before retirement — never dropped), then
  /// stopping it and retiring its report (finished results keep being
  /// served from the retired report by Stop()). Returns false — changing
  /// nothing — for an unknown id, the last shard, or a stopped router.
  /// Starts the router if it was not running.
  bool RemoveShard(size_t shard_id);

  /// Live shard ids in ascending order.
  std::vector<size_t> shard_ids() const;

  /// Live shards.
  size_t shard_count() const;

  /// The shard id `task` currently routes to (for tests and placement
  /// diagnostics; Submit() recomputes this under the same lock). Returns
  /// size_t(-1) once the router is stopped.
  size_t ShardFor(const BatchTask& task) const;

  /// Successful Submit() calls so far.
  size_t submitted_count() const;

  /// In-flight tasks moved between shards by membership changes.
  size_t migrations() const;

  /// The subset of migrations() that carried a non-empty mid-run session
  /// checkpoint across the wire (the rest were still queued, fresh).
  size_t checkpointed_migrations() const;

  const ShardRouterConfig& config() const { return config_; }

 private:
  /// One router submission: its placement key and where it currently
  /// lives (shard id + that shard's submission index).
  struct Entry {
    uint64_t key = 0;
    size_t shard_id = 0;
    size_t local_index = 0;
  };

  /// One ring point; shard ids are stable across membership changes.
  struct RingPoint {
    uint64_t hash = 0;
    size_t shard_id = 0;
    bool operator<(const RingPoint& other) const {
      if (hash != other.hash) return hash < other.hash;
      return shard_id < other.shard_id;
    }
  };

  void StartLocked();
  /// Recomputes ring_ from the current shards_ membership.
  void RebuildRingLocked();
  /// Ring owner of `key`; requires a non-empty ring.
  size_t OwnerLocked(uint64_t key) const;
  /// Re-derives every in-flight entry's owner and migrates the moved ones.
  void RebalanceLocked();
  /// Moves one entry off `source` (the scheduler it currently lives on,
  /// which RemoveShard may have already taken out of shards_) to
  /// `to_shard` via suspend → wire → resume. Returns false if the task
  /// had already finished on its current shard (nothing to move). A task
  /// is never lost: if the destination refuses, it is resumed back onto
  /// `source`.
  bool MigrateLocked(OnlineScheduler* source, Entry* entry,
                     size_t to_shard);

  ShardRouterConfig config_;
  OptimizerFactory make_optimizer_;
  /// Epoch of the Stop() report's wall clock: construction time.
  Stopwatch epoch_;

  mutable std::mutex mu_;
  /// Live shards by stable id.
  std::map<size_t, std::unique_ptr<OnlineScheduler>> shards_;
  /// Final reports of removed (and, after Stop(), all) shards.
  std::map<size_t, BatchReport> retired_;
  std::vector<RingPoint> ring_;
  /// Router submission i is entries_[i].
  std::vector<Entry> entries_;
  size_t next_shard_id_ = 0;
  size_t migrations_ = 0;
  size_t checkpointed_migrations_ = 0;
  /// Peak live shard count, for the report's num_threads.
  size_t peak_shards_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SHARD_ROUTER_H_
