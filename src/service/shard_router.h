// Consistent-hash shard router: the online service scaled across N
// scheduler shards behind one Submit/Drain/Stop + futures front door.
//
// A ShardRouter owns a set of shards — in-process schedulers (LocalShard)
// and/or connections to shard server processes (RemoteShard), mixed freely
// behind the Shard interface (service/shard.h) — and places every
// submitted query on a consistent-hash ring: each shard contributes
// `virtual_nodes` points keyed by its stable shard id, and a query lands
// on the first point at or after its RouteKey (service/wire.h). Placement
// therefore depends only on the query content, the seed, and the current
// membership — never on submission order — and changing membership moves
// only the keys between the departed/arrived shard's points and their
// predecessors, not the whole keyspace.
//
// Elasticity: AddShard()/RemoveShard() change membership while the service
// runs. The router re-derives every in-flight task's owner and migrates
// the ones whose owner changed: Suspend() drains the task (a portable
// session checkpoint plus its unexpired deadline remainder) off the old
// shard, the task is round-tripped through the wire format — for a remote
// destination the frame really does cross a socket — and Resume() lands
// it on the new owner. The future handed out by the original Submit() is
// untouched throughout and delivers the final result from whichever shard
// finishes the task.
//
// Failover: a remote shard's process can die. FailShard() — driven by the
// supervisor (service/shard_supervisor.h) when death is detected — takes
// the shard out of the ring, recovers every in-flight task's last known
// wire frame (the submit frame, superseded by each periodic checkpoint
// snapshot the shard shipped back), and replays them onto surviving
// shards. The original Submit() futures keep delivering; replay re-runs
// only the steps after the last snapshot, and checkpoints restore bitwise,
// so iteration-bounded results are unaffected by the failure.
//
// Determinism contract (inherited from the schedulers underneath): every
// task owns an Rng seeded from its submission, so shard placement,
// rebalancing, and failover affect only timing. Iteration-bounded tasks
// produce frontiers bitwise identical to an unsharded OnlineScheduler
// reference — across any shard count, any AddShard/RemoveShard schedule,
// and any kill schedule — which bench/shard_throughput.cc and
// bench/failover_bench.cc gate on every run.
//
// Thread-safety: Submit/Drain/AddShard/RemoveShard/FailShard/observers may
// be called concurrently from any thread (one router mutex serializes
// them; worker threads inside the shards never take it). Start() and
// Stop() follow the OnlineScheduler contract: at most once each. Do NOT
// call FailShard() from a RemoteShard death callback — it stops the dead
// shard, which joins the thread the callback runs on; hand off to another
// thread (the supervisor's monitor does exactly this).
#ifndef MOQO_SERVICE_SHARD_ROUTER_H_
#define MOQO_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"
#include "service/shard.h"

namespace moqo {

/// Configuration for one ShardRouter instance.
struct ShardRouterConfig {
  /// Configuration applied to every local shard (thread count, metrics,
  /// policy, admission window). Keep retain_frontiers = true if the Stop()
  /// report should carry frontiers for reference comparison.
  OnlineConfig shard;
  /// In-process shards created up front (clamped to >= 0; 0 makes sense
  /// only when remote shards are added before the first Submit()).
  int num_shards = 2;
  /// Ring points per shard (clamped to >= 1). More points smooth the key
  /// distribution; 64 keeps the worst shard within a few percent of fair
  /// share for realistic shard counts.
  int virtual_nodes = 64;
};

/// A sharded online optimization service. See file header.
class ShardRouter {
 public:
  ShardRouter(ShardRouterConfig config, OptimizerFactory make_optimizer);

  /// Stops the router (draining all shards) if Stop() was not called.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts every shard's workers. Idempotent; called implicitly by
  /// Drain() and by membership changes (a rebalance needs live
  /// destinations to Resume() onto).
  void Start() EXCLUDES(mu_);

  /// Routes the task to its ring owner and admits it there. A dead (not
  /// yet failed-over) owner is skipped: the task lands on the next live
  /// shard along the ring instead. Returns the shard's future for the
  /// result, or std::nullopt if no live shard accepted it (full window
  /// under kReject, empty membership, or the router is stopping). Under
  /// kBlock a full local owner window blocks the caller — and any
  /// concurrent membership change — until the owner frees a slot.
  std::optional<std::future<BatchTaskResult>> Submit(const BatchTask& task)
      EXCLUDES(mu_);

  /// Blocks until every admitted task on every shard has completed (dead
  /// shards are skipped; their tasks complete elsewhere after FailShard).
  void Drain() EXCLUDES(mu_);

  /// Drains, stops every shard, and returns one report over all router
  /// submissions in router submission order: task i is the i-th successful
  /// Submit(), with its result taken from the shard that finished it
  /// (migrated-away stub slots are skipped). `migrated_tasks` counts
  /// rebalance + failover hops performed by this router. After Stop()
  /// every Submit() is rejected; the router cannot be restarted.
  BatchReport Stop() EXCLUDES(mu_);

  /// Adds an in-process shard, rebalancing in-flight tasks whose ring
  /// owner changed onto it via suspend → wire round-trip → resume. Starts
  /// the router if it was not running. Returns the new shard's stable id,
  /// or size_t(-1) — changing nothing — once the router is stopped.
  size_t AddShard() EXCLUDES(mu_);

  /// As above with a caller-built shard (how a supervisor wires in a
  /// RemoteShard). The shard is Start()ed before it joins the ring.
  size_t AddShard(std::unique_ptr<Shard> shard) EXCLUDES(mu_);

  /// Removes shard `shard_id`, first migrating its in-flight tasks to
  /// their new ring owners (a task whose new owner refuses it finishes on
  /// the departing shard before retirement — never dropped), then
  /// stopping it and retiring its report (finished results keep being
  /// served from the retired report by Stop()). Returns false — changing
  /// nothing — for an unknown id, the last shard, or a stopped router.
  /// Starts the router if it was not running.
  bool RemoveShard(size_t shard_id) EXCLUDES(mu_);

  /// Fails shard `shard_id` over: takes it off the ring, recovers its
  /// in-flight tasks' last known wire frames, and replays each onto a
  /// surviving live shard — the original Submit() futures keep
  /// delivering. A task whose frame cannot be decoded, or that no
  /// survivor accepts, fails its future with the shard id and route key
  /// in the error. Returns false for an unknown id or a stopped router.
  /// Never call from a shard's death callback (see file header).
  bool FailShard(size_t shard_id) EXCLUDES(mu_);

  /// Live shard ids in ascending order (dead-but-not-yet-failed-over
  /// shards included until FailShard removes them).
  std::vector<size_t> shard_ids() const EXCLUDES(mu_);

  /// Current member shards.
  size_t shard_count() const EXCLUDES(mu_);

  /// The shard id `task` currently routes to (for tests and placement
  /// diagnostics; Submit() recomputes this under the same lock). Returns
  /// size_t(-1) once the router is stopped.
  size_t ShardFor(const BatchTask& task) const EXCLUDES(mu_);

  /// Successful Submit() calls so far.
  size_t submitted_count() const EXCLUDES(mu_);

  /// In-flight tasks moved between shards by membership changes and
  /// failovers.
  size_t migrations() const EXCLUDES(mu_);

  /// The subset of migrations() that carried a non-empty mid-run session
  /// checkpoint across the wire (the rest were still queued, fresh).
  size_t checkpointed_migrations() const EXCLUDES(mu_);

  /// Shards taken out by FailShard().
  size_t failed_shards() const EXCLUDES(mu_);

  /// In-flight tasks replayed onto survivors by FailShard().
  size_t failover_replayed() const EXCLUDES(mu_);

  /// The subset of failover_replayed() whose recovery frame carried a
  /// mid-run checkpoint snapshot (the rest replayed from scratch).
  size_t failover_checkpointed() const EXCLUDES(mu_);

  /// Sum of the already-executed step counts carried by replayed recovery
  /// frames: work the failover did NOT re-run thanks to snapshots.
  int64_t failover_resume_steps() const EXCLUDES(mu_);

  const ShardRouterConfig& config() const { return config_; }

 private:
  /// One router submission: its placement key and where it currently
  /// lives (shard id + that shard's submission index).
  struct Entry {
    uint64_t key = 0;
    /// Canonical query fingerprint the key was derived from; seed-
    /// independent, printed next to the key in failover/migration errors
    /// so operators can correlate failures across seeds of one shape.
    uint64_t fingerprint = 0;
    size_t shard_id = 0;
    size_t local_index = 0;
  };

  /// One ring point; shard ids are stable across membership changes.
  struct RingPoint {
    uint64_t hash = 0;
    size_t shard_id = 0;
    bool operator<(const RingPoint& other) const {
      if (hash != other.hash) return hash < other.hash;
      return shard_id < other.shard_id;
    }
  };

  void StartLocked() REQUIRES(mu_);
  /// Recomputes ring_ from the current shards_ membership.
  void RebuildRingLocked() REQUIRES(mu_);
  /// Ring owner of `key`; requires a non-empty ring.
  size_t OwnerLocked(uint64_t key) const REQUIRES(mu_);
  /// First live shard at or after `key` on the ring; size_t(-1) if none.
  size_t LiveOwnerLocked(uint64_t key) const REQUIRES(mu_);
  /// Re-derives every in-flight entry's owner and migrates the moved ones.
  void RebalanceLocked() REQUIRES(mu_);
  /// Moves one entry off `source` (the shard it currently lives on, which
  /// RemoveShard may have already taken out of shards_) to `to_shard` via
  /// suspend → wire → resume. Returns false if the task had already
  /// finished on its current shard (nothing to move). A task is never
  /// lost: if the destination refuses, it is resumed back onto `source`.
  bool MigrateLocked(Shard* source, Entry* entry, size_t to_shard)
      REQUIRES(mu_);
  size_t AddShardLocked(std::unique_ptr<Shard> shard) REQUIRES(mu_);

  ShardRouterConfig config_;
  OptimizerFactory make_optimizer_;
  /// Epoch of the Stop() report's wall clock: construction time.
  Stopwatch epoch_;

  mutable Mutex mu_;
  /// Member shards by stable id (std::map: membership iteration order is
  /// part of the determinism contract — Start/Drain/Stop and failover
  /// replay walk shards in id order everywhere, in every process).
  std::map<size_t, std::unique_ptr<Shard>> shards_ GUARDED_BY(mu_);
  /// Final reports of removed/failed (and, after Stop(), all) shards.
  std::map<size_t, BatchReport> retired_ GUARDED_BY(mu_);
  std::vector<RingPoint> ring_ GUARDED_BY(mu_);
  /// Router submission i is entries_[i].
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  size_t next_shard_id_ GUARDED_BY(mu_) = 0;
  size_t migrations_ GUARDED_BY(mu_) = 0;
  size_t checkpointed_migrations_ GUARDED_BY(mu_) = 0;
  size_t failed_shards_ GUARDED_BY(mu_) = 0;
  size_t failover_replayed_ GUARDED_BY(mu_) = 0;
  size_t failover_checkpointed_ GUARDED_BY(mu_) = 0;
  int64_t failover_resume_steps_ GUARDED_BY(mu_) = 0;
  /// Peak member count, for the report's num_threads.
  size_t peak_shards_ GUARDED_BY(mu_) = 0;
  bool started_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SHARD_ROUTER_H_
