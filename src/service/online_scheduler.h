// Online optimization service: queries are admitted while the workers are
// already spinning, and a pluggable scheduling policy decides which open
// session gets the next slice.
//
// This generalizes the closed-batch cooperative scheduler
// (cooperative_scheduler.h, which is now a thin wrapper around this class):
// instead of one Run(tasks) call over a batch known up front, the service
// has a lifecycle —
//
//   OnlineScheduler service(config, factory);
//   service.Start();                       // spin up the workers
//   auto ticket = service.Submit(task);    // thread-safe, any time
//   ticket->get();                         // per-task future
//   service.Drain();                       // wait for all admitted tasks
//   BatchReport report = service.Stop();   // join workers, final report
//
// Admission: Submit() may be called from any thread, before or after
// Start() (pre-Start submissions build a backlog that the workers drain
// once started). A bounded admission window (`max_open` in-flight tasks)
// provides back-pressure: under AdmissionPolicy::kBlock a full window makes
// Submit() wait for a slot, under kReject it returns std::nullopt and the
// task is never admitted. A task's wall-clock deadline is armed at
// admission time (inside Submit), so queueing delay counts against the
// deadline exactly like in a real service.
//
// Scheduling: ready sessions live in a priority queue keyed per
// SchedulingPolicy. kFifo reproduces the round-robin of the closed-batch
// scheduler (requeued slices go to the back). kEarliestDeadlineFirst keys
// by the admission-relative absolute deadline, so a tight-deadline query
// admitted behind loose ones overtakes them at slice granularity.
// kSlackWeighted divides the remaining deadline slack by the progress the
// session has already made, preferring urgent tasks that are still behind.
//
// Determinism contract (unchanged from the batch service): every task owns
// an independent Rng seeded from (master seed, submission index), its own
// PlanFactory, and its own session. Thread count and scheduling policy
// affect only *timing* — which tasks finish inside their deadlines — never
// the step sequence of an individual session, so iteration-bounded tasks
// produce frontiers bitwise identical to a single-thread blocking
// reference under every policy and thread count.
#ifndef MOQO_SERVICE_ONLINE_SCHEDULER_H_
#define MOQO_SERVICE_ONLINE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/thread_annotations.h"
#include "cost/cost_model.h"
#include "service/batch_optimizer.h"
#include "service/frontier_cache.h"

namespace moqo {

/// Which ready session a free worker picks next.
enum class SchedulingPolicy {
  /// Strict arrival order; requeued slices go to the back (round-robin).
  kFifo,
  /// Smallest admission-relative absolute deadline first; deadline-free
  /// tasks rank last and fall back to arrival order among themselves.
  kEarliestDeadlineFirst,
  /// Remaining deadline slack divided by executed steps: urgent tasks that
  /// have made little progress run first. Recomputed at every requeue.
  kSlackWeighted,
};

/// What Submit() does when the admission window is full.
enum class AdmissionPolicy {
  /// Block the submitting thread until an in-flight task completes.
  kBlock,
  /// Return std::nullopt immediately; the task is not admitted.
  kReject,
};

/// A task drained off a scheduler mid-run by Suspend(): the original
/// request, the serialized session state (checkpoint), the unexpired
/// deadline budget, and the promise feeding the future handed out by the
/// original Submit(). Resume() re-admits it to any scheduler instance
/// whose optimizer configuration and cost metrics match — the in-process
/// stand-in for migrating a session between worker processes — and the
/// original future then delivers the final result. Destroying a
/// SuspendedTask without resuming it fails that future with a descriptive
/// std::runtime_error (not a bare broken_promise), exactly like a
/// migration coordinator reporting a task lost in transit.
struct SuspendedTask {
  SuspendedTask() = default;
  SuspendedTask(SuspendedTask&&) noexcept = default;
  /// Abandons any live un-resumed promise this object currently holds
  /// (failing its future descriptively) before adopting `other`'s state.
  SuspendedTask& operator=(SuspendedTask&& other) noexcept;
  SuspendedTask(const SuspendedTask&) = delete;
  SuspendedTask& operator=(const SuspendedTask&) = delete;
  /// Fails the original Submit() future with a descriptive exception if
  /// the task was never resumed. A dropped migration must surface as an
  /// explicit error at the submitter, not as an opaque broken promise.
  ~SuspendedTask();

  BatchTask task;
  /// OptimizerSession::Checkpoint() of the mid-run state (RNG stream
  /// position included); empty if the task never ran a slice, in which
  /// case Resume() simply begins the session from scratch.
  std::vector<uint8_t> checkpoint;
  bool had_deadline = false;
  /// Unexpired window at suspension time, re-armed by Resume(). Time spent
  /// suspended is a free pause: the clock restarts on re-admission, just
  /// as a cross-process migration would re-arm its local timer.
  int64_t remaining_micros = 0;
  /// Slice time accumulated on the source scheduler; carried into the
  /// destination's accounting.
  double optimize_millis = 0.0;
  /// Steps executed so far (also inside the checkpoint; exposed for logs).
  int64_t steps = 0;
  /// Fulfills the future returned by the original Submit().
  std::promise<BatchTaskResult> promise;
  /// Free-form provenance ("shard 3, route key 0x9f…") stamped by whoever
  /// drained the task; included in the abandonment error so a dropped
  /// migration names the shard it was lost in transit from.
  std::string origin;

  /// True once the promise has moved on: set by a successful Resume() — a
  /// second Resume() of the same object returns false instead of admitting
  /// a duplicate whose moved-from promise would blow up at finalization —
  /// or by MarkConsumed() when a transport moves the promise into a rebuilt
  /// task (see service/wire.h), which keeps the destructor from failing the
  /// moved-away future.
  ///
  /// Ownership contract (why this is deliberately NOT guarded by a mutex):
  /// a SuspendedTask has exactly one owner at a time — the thread that
  /// drained it via Suspend(), then whichever thread it is std::moved to —
  /// and only the current owner may call Resume()/MarkConsumed()/the
  /// destructor. The flag is private so every mutation goes through those
  /// single-owner entry points; concurrent access would be a bug in the
  /// caller's hand-off, not in this type.
  bool consumed() const { return consumed_; }

  /// Records that the promise was moved out (e.g. into a transport frame
  /// or a rebuilt task), so neither the destructor nor a later Resume()
  /// touches the moved-away future. Single-owner, like consumed().
  void MarkConsumed() { consumed_ = true; }

 private:
  /// Destructor/move-assign helper: fails the promise if still live.
  void Abandon() noexcept;

  bool consumed_ = false;
};

/// One periodic checkpoint of a still-running task, published through
/// OnlineConfig::snapshot_sink at a slice boundary (where session state is
/// checkpointable). Carries everything Resume() needs except the promise —
/// a supervisor holds these as recovery state and, should the scheduler's
/// process die, replays the task elsewhere from its last snapshot (re-
/// running only the steps after it; the checkpoint restores bitwise, so
/// iteration-bounded results are unaffected by the replay).
struct TaskSnapshot {
  /// Submission index of the task on its scheduler.
  size_t submission_index = 0;
  /// The original request (query, seed, full deadline window).
  BatchTask task;
  /// OptimizerSession::Checkpoint() at the slice boundary.
  std::vector<uint8_t> checkpoint;
  bool had_deadline = false;
  /// Unexpired window at snapshot time.
  int64_t remaining_micros = 0;
  /// Slice time accumulated so far.
  double optimize_millis = 0.0;
  /// Steps executed so far (also inside the checkpoint).
  int64_t steps = 0;
};

/// Configuration for one OnlineScheduler instance.
struct OnlineConfig {
  /// Worker threads serving all open sessions.
  int num_threads = 1;
  /// Cost metrics every task is optimized under.
  std::vector<Metric> metrics = {Metric::kTime, Metric::kBuffer};
  /// Session steps per scheduling slice (clamped to >= 1). Larger slices
  /// amortize scheduling overhead; smaller slices tighten the interleaving
  /// and let a deadline-aware policy preempt sooner.
  int steps_per_slice = 1;
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Bound on admitted-but-unfinished tasks (the admission window);
  /// 0 = unbounded.
  size_t max_open = 0;
  /// If false, a finalized task's frontier is delivered only through its
  /// Submit() future and dropped from the retained report slot, so a
  /// long-lived service holds just a small fixed-size record per
  /// submission (plus the max_open live sessions) instead of every
  /// frontier it ever produced. Keep true (the default) for closed
  /// batches whose Stop() report frontiers are compared to a reference.
  bool retain_frontiers = true;
  /// Every `snapshot_every` completed slices a live task is checkpointed
  /// at the slice boundary and published through snapshot_sink — the
  /// recovery substrate supervised failover replays from. 0 (the default)
  /// disables snapshots. Checkpointing is a pure read of the session, so
  /// enabling snapshots never changes results; it only costs the
  /// serialization time (outside the scheduler lock, off the slice's
  /// optimize_millis accounting).
  int snapshot_every = 0;
  /// Receives the periodic snapshots. Invoked from worker threads while
  /// the task keeps running, so the sink must be thread-safe and fast
  /// (hand the snapshot off, don't process it inline). Ignored when null
  /// or snapshot_every == 0.
  std::function<void(TaskSnapshot&&)> snapshot_sink;
  /// Optional frontier cache consulted by Submit() before admission and
  /// fed by task completion (see service/frontier_cache.h). Shared so
  /// several scheduler generations (e.g. one per shardd connection) and
  /// external observers can use one cache. Semantics, keyed by the task's
  /// canonical query fingerprint:
  ///  * exact hit (same fingerprint and seed as the cached completed run):
  ///    Submit() resolves the future immediately from the cached frontier
  ///    without consuming an admission slot or opening a session; the
  ///    report slot records served_from_cache with zero steps.
  ///  * warm hit (same fingerprint, different seed): the session starts
  ///    via BeginFrom() seeded with the cached plans rebuilt through the
  ///    task's own factory — the step sequence is unchanged, only the
  ///    reported frontier is (weakly) improved.
  ///  * completions that are Done and not gave-up insert their frontier;
  ///    deadline-expired partial frontiers are never cached.
  /// Null (the default) disables caching entirely.
  std::shared_ptr<FrontierCache> frontier_cache;
};

/// A long-lived deadline-aware optimization service multiplexing admitted
/// queries over a fixed worker pool. Thread-safe: Submit()/Drain()/
/// open_count() may be called concurrently from any thread. Start() and
/// Stop() must each be called at most once, from one thread.
///
/// Memory: the Stop() report covers every admitted task, so the service
/// keeps one result record per submission for its whole lifetime. The
/// dominant term — the result frontiers — can be dropped as each future
/// is delivered via OnlineConfig::retain_frontiers = false.
class OnlineScheduler {
 public:
  OnlineScheduler(OnlineConfig config, OptimizerFactory make_optimizer);

  /// Stops the service (draining admitted work) if Stop() was not called.
  ~OnlineScheduler();

  OnlineScheduler(const OnlineScheduler&) = delete;
  OnlineScheduler& operator=(const OnlineScheduler&) = delete;

  /// Spins up the worker threads. Idempotent; called implicitly by Drain().
  void Start() EXCLUDES(mu_);

  /// Admits one task and returns a future for its result, or std::nullopt
  /// if the task was rejected (full window under kReject, or the service
  /// is stopping). The task's deadline (if any) starts now, not when the
  /// first slice runs. Under kBlock with a full window, blocks until a
  /// slot frees up — which requires the workers to be running, so only
  /// call pre-Start Submit() on a bounded window if it cannot fill up.
  std::optional<std::future<BatchTaskResult>> Submit(const BatchTask& task)
      EXCLUDES(mu_);

  /// Blocks until every admitted task has completed (session done or
  /// deadline expired). Starts the workers if Start() was never called.
  /// Tasks submitted by other threads while draining extend the wait.
  /// Tasks migrated away by Suspend() released their slot at suspension,
  /// so Drain() never waits on them — even if the suspended task was
  /// abandoned and will never finish anywhere.
  void Drain() EXCLUDES(mu_);

  /// Drains, joins the workers, and returns the aggregated report over all
  /// admitted tasks in submission order. After Stop() every Submit() is
  /// rejected; the scheduler cannot be restarted.
  BatchReport Stop() EXCLUDES(mu_);

  /// Drains one admitted-but-unfinished task off this scheduler.
  /// `submission_index` is the task's zero-based admission order — the
  /// position of its result in the Stop() report. If the task is currently
  /// running a slice, blocks until that slice completes (suspension happens
  /// only at slice boundaries, where the session state is checkpointable).
  /// Returns std::nullopt if the index is invalid, the task already
  /// finished (its future is already fulfilled), it was already suspended,
  /// or the scheduler is stopping. On success the task's report slot is
  /// marked migrated and its admission-window slot is released.
  std::optional<SuspendedTask> Suspend(size_t submission_index)
      EXCLUDES(mu_);

  /// Re-admits a suspended task — from this scheduler or another instance
  /// with the same optimizer configuration and metrics — restoring its
  /// session from the checkpoint and re-arming the remaining deadline
  /// window. Admission back-pressure applies exactly like Submit().
  /// Returns false, leaving `task` intact for a retry elsewhere, if the
  /// scheduler is not running (Start() never called, or Stop() begun — a
  /// migration destination must be live, or the work would be enqueued
  /// for workers that never run it), the window is full under kReject, or
  /// the checkpoint is rejected (wrong algorithm or corrupt buffer). On
  /// success `task` is consumed and the original Submit() future will
  /// deliver the task's final result from this scheduler.
  bool Resume(SuspendedTask& task) EXCLUDES(mu_);

  const OnlineConfig& config() const { return config_; }

  /// Admitted-but-unfinished tasks.
  size_t open_count() const EXCLUDES(mu_);

  /// Tasks admitted so far (completed or not; excludes rejected).
  size_t submitted_count() const EXCLUDES(mu_);

  /// Periodic snapshots published so far (see OnlineConfig::snapshot_every).
  size_t snapshot_count() const EXCLUDES(mu_);

 private:
  struct OpenQuery;

  /// One entry of the ready queue; lower (primary, seq) runs first.
  struct ReadyItem {
    double primary = 0.0;
    uint64_t seq = 0;
    OpenQuery* query = nullptr;
    bool operator>(const ReadyItem& other) const {
      if (primary != other.primary) return primary > other.primary;
      return seq > other.seq;
    }
  };

  void WorkerLoop() EXCLUDES(mu_);
  /// Computes the ready-queue key for `query` under the configured policy
  /// (seq_ is guarded); called at admission and at every requeue.
  ReadyItem MakeReadyItem(OpenQuery* query) REQUIRES(mu_);
  /// Records `result` into the task's report slot (dropping the frontier
  /// there unless config_.retain_frontiers), fulfills the promise with the
  /// full result or with `error`, destroys the per-task state, and
  /// releases the admission slot.
  void Finalize(OpenQuery* query, BatchTaskResult result,
                std::exception_ptr error) REQUIRES(mu_);
  /// Waits for an admission-window slot (kBlock) or reports rejection
  /// (kReject / stopping). `lock` holds mu_ (it is what the wait sleeps
  /// on); shared by Submit() and Resume().
  bool WaitForAdmissionSlot(MutexLock& lock) REQUIRES(mu_);
  /// Assigns the submission index, arms the deadline window
  /// (`window_micros`, already clamped; ignored unless the query has a
  /// deadline), and enqueues the first slice.
  void EnqueueAdmitted(std::unique_ptr<OpenQuery> owned,
                       int64_t window_micros) REQUIRES(mu_);
  /// Rebuilds ready_ without `query`'s entry (Suspend of a queued task).
  /// Seq keys are preserved, so relative order is unchanged.
  void RemoveFromReady(OpenQuery* query) REQUIRES(mu_);

  OnlineConfig config_;
  OptimizerFactory make_optimizer_;
  CostModel model_;
  /// Epoch of all admit/finish timestamps: construction time.
  Stopwatch epoch_;

  mutable Mutex mu_;
  CondVar work_cv_;     // workers: ready work or shutdown
  CondVar admit_cv_;    // Submit(kBlock): window slot freed
  CondVar drain_cv_;    // Drain()/Stop(): open_ hit zero
  CondVar suspend_cv_;  // Suspend(): slice parked/finished
  /// Written by Start() (under mu_, at most once) and joined by Stop()
  /// without the lock — joining under mu_ would deadlock the workers. The
  /// Start/Stop at-most-once contract makes that hand-off safe unguarded.
  std::vector<std::thread> workers_;
  std::priority_queue<ReadyItem, std::vector<ReadyItem>, std::greater<>>
      ready_ GUARDED_BY(mu_);
  /// Keeps every admitted task's state alive at a stable address; the slot
  /// is released (reset) once the task is finalized.
  std::vector<std::unique_ptr<OpenQuery>> queries_ GUARDED_BY(mu_);
  /// Result slot i belongs to submission index i; filled at finalization.
  std::vector<BatchTaskResult> results_ GUARDED_BY(mu_);
  /// Ready-queue tie-breaker, bumped on every push.
  uint64_t seq_ GUARDED_BY(mu_) = 0;
  /// Admitted-but-unfinished tasks.
  size_t open_ GUARDED_BY(mu_) = 0;
  /// Periodic snapshots published through config_.snapshot_sink.
  size_t snapshots_taken_ GUARDED_BY(mu_) = 0;
  bool started_ GUARDED_BY(mu_) = false;
  /// No further admissions (Stop() has begun).
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Workers exit once ready_ runs empty.
  bool stop_workers_ GUARDED_BY(mu_) = false;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_ONLINE_SCHEDULER_H_
