#include "service/shard_server.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "core/checkpoint.h"
#include "service/shard_protocol.h"
#include "service/wire.h"

namespace moqo {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<uint8_t> TextBody(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

}  // namespace

ShardServer::ShardServer(ShardServerConfig config,
                         OptimizerFactory make_optimizer)
    : config_(std::move(config)),
      make_optimizer_(std::move(make_optimizer)) {
  if (config_.pump_interval_ms < 1) config_.pump_interval_ms = 1;
  if (config_.heartbeat_ms < 1) config_.heartbeat_ms = 1;
}

bool ShardServer::SendMessage(net::FrameChannel* channel, uint8_t type,
                              uint64_t request_id,
                              std::vector<uint8_t> body) {
  Message message;
  message.type = static_cast<MsgType>(type);
  message.request_id = request_id;
  message.body = std::move(body);
  if (channel->Send(EncodeMessage(message)) != net::IoStatus::kOk) {
    return false;
  }
  last_send_millis_ = NowMillis();
  return true;
}

bool ShardServer::HandleSubmit(net::FrameChannel* channel,
                               OnlineScheduler* scheduler,
                               SnapshotState* snapshots, uint64_t request_id,
                               const std::vector<uint8_t>& body) {
  auto reject = [&](const std::string& reason) {
    return SendMessage(channel, static_cast<uint8_t>(MsgType::kReject),
                       request_id, TextBody(reason));
  };
  if (index_by_request_.count(request_id) != 0) {
    return reject("duplicate request id");
  }
  WireTask wire;
  std::string why;
  if (!DecodeWireTask(body, &wire, &why)) {
    return reject("bad task frame: " + why);
  }
  size_t index = 0;
  std::future<BatchTaskResult> future;
  if (wire.checkpoint.empty()) {
    auto ticket = scheduler->Submit(wire.task);
    if (!ticket.has_value()) return reject("admission refused");
    future = std::move(*ticket);
  } else {
    std::promise<BatchTaskResult> promise;
    future = promise.get_future();
    SuspendedTask rebuilt =
        ToSuspendedTask(std::move(wire), std::move(promise));
    if (!scheduler->Resume(rebuilt)) {
      // The refusal is reported over the wire; silence the abandonment
      // error the rebuilt task's destructor would raise into the future
      // we are about to drop.
      rebuilt.MarkConsumed();
      return reject("resume refused");
    }
  }
  // This thread is the only admitter, so the task's index is the latest
  // submission.
  index = scheduler->submitted_count() - 1;
  pending_[index] = PendingReply{request_id, std::move(future)};
  index_by_request_[request_id] = index;
  {
    MutexLock lock(snapshots->mu);
    snapshots->request_ids[index] = request_id;
  }
  ++served_tasks_;
  return true;
}

bool ShardServer::HandleSuspend(net::FrameChannel* channel,
                                OnlineScheduler* scheduler,
                                SnapshotState* snapshots,
                                uint64_t request_id) {
  auto it = index_by_request_.find(request_id);
  if (it == index_by_request_.end()) {
    return SendMessage(channel, static_cast<uint8_t>(MsgType::kSuspendFail),
                       request_id, TextBody("unknown request id"));
  }
  size_t index = it->second;
  std::optional<SuspendedTask> suspended = scheduler->Suspend(index);
  if (!suspended.has_value()) {
    return SendMessage(channel, static_cast<uint8_t>(MsgType::kSuspendFail),
                       request_id,
                       TextBody("task already finished or not suspendable"));
  }
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(*suspended));
  // The promise feeding our server-side future dies with `suspended`; the
  // client re-attaches the original submitter promise to the shipped
  // frame, so this is the transport-moved case, not an abandonment.
  suspended->MarkConsumed();
  pending_.erase(index);
  index_by_request_.erase(it);
  {
    MutexLock lock(snapshots->mu);
    snapshots->request_ids.erase(index);
  }
  return SendMessage(channel, static_cast<uint8_t>(MsgType::kSuspended),
                     request_id, std::move(frame));
}

bool ShardServer::Pump(net::FrameChannel* channel, SnapshotState* snapshots,
                       bool force_heartbeat) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++it;
      continue;
    }
    size_t index = it->first;
    uint64_t request_id = it->second.request_id;
    std::vector<uint8_t> body;
    bool ok = true;
    std::string error;
    try {
      BatchTaskResult result = it->second.future.get();
      // Message body inside the shard protocol envelope, which already
      // carries kNetMagic + kNetVersion (shard_protocol.cc).
      CheckpointWriter writer;  // moqo-lint: allow(checkpoint-magic)
      EncodeTaskResult(&writer, result);
      body = writer.Take();
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    it = pending_.erase(it);
    index_by_request_.erase(request_id);
    {
      MutexLock lock(snapshots->mu);
      snapshots->request_ids.erase(index);
    }
    if (!SendMessage(channel,
                     static_cast<uint8_t>(ok ? MsgType::kResult
                                             : MsgType::kTaskError),
                     request_id, ok ? std::move(body) : TextBody(error))) {
      return false;
    }
  }

  std::vector<std::vector<uint8_t>> queued;
  {
    MutexLock lock(snapshots->mu);
    queued.swap(snapshots->outbox);
  }
  for (std::vector<uint8_t>& payload : queued) {
    // Already-encoded kSnapshot messages from the worker-side sink. A
    // snapshot of a task whose result was just flushed may still be
    // queued; the client ignores snapshots for finished tasks.
    if (channel->Send(payload) != net::IoStatus::kOk) return false;
    last_send_millis_ = NowMillis();
  }

  if (force_heartbeat ||
      NowMillis() - last_send_millis_ >= config_.heartbeat_ms) {
    return SendMessage(channel, static_cast<uint8_t>(MsgType::kPing), 0, {});
  }
  return true;
}

bool ShardServer::Serve(net::FrameChannel* channel) {
  pending_.clear();
  index_by_request_.clear();

  // The sink outlives every scheduler worker because the scheduler below
  // is declared after it (destroyed first) and Stop() joins the workers.
  SnapshotState snapshots;
  ShardServerConfig config = config_;
  if (config.scheduler.snapshot_every > 0) {
    SnapshotState* state = &snapshots;
    config.scheduler.snapshot_sink = [state](TaskSnapshot&& snapshot) {
      // Encode outside the lock; it is the expensive part.
      std::vector<uint8_t> frame =
          EncodeWireTask(MakeWireTask(snapshot));
      MutexLock lock(state->mu);
      auto it = state->request_ids.find(snapshot.submission_index);
      // A snapshot can race admission bookkeeping or arrive after the
      // result was flushed; dropping it is safe — the previous frame the
      // client holds stays valid recovery state.
      if (it == state->request_ids.end()) return;
      Message message;
      message.type = MsgType::kSnapshot;
      message.request_id = it->second;
      message.body = std::move(frame);
      state->outbox.push_back(EncodeMessage(message));
    };
  }

  OnlineScheduler scheduler(config.scheduler, make_optimizer_);
  scheduler.Start();
  last_send_millis_ = NowMillis();
  bool clean = false;
  bool done = false;
  while (!done) {
    std::vector<uint8_t> payload;
    net::IoStatus status = channel->Recv(&payload, config_.pump_interval_ms);
    switch (status) {
      case net::IoStatus::kOk: {
        Message message;
        std::string why;
        if (!DecodeMessage(payload, &message, &why)) {
          // The request id is unrecoverable from a corrupt message;
          // request id 0 marks a connection-level rejection.
          if (!SendMessage(channel, static_cast<uint8_t>(MsgType::kReject),
                           0, TextBody("undecodable message: " + why))) {
            done = true;
          }
          break;
        }
        switch (message.type) {
          case MsgType::kSubmit:
            if (!HandleSubmit(channel, &scheduler, &snapshots,
                              message.request_id, message.body) ||
                !Pump(channel, &snapshots, false)) {
              done = true;
            }
            break;
          case MsgType::kSuspend:
            if (!HandleSuspend(channel, &scheduler, &snapshots,
                               message.request_id) ||
                !Pump(channel, &snapshots, false)) {
              done = true;
            }
            break;
          case MsgType::kShutdown:
            scheduler.Drain();
            if (Pump(channel, &snapshots, false) &&
                SendMessage(channel, static_cast<uint8_t>(MsgType::kBye), 0,
                            {})) {
              clean = true;
            }
            done = true;
            break;
          default:
            // Shard-to-router types arriving here are a peer bug, not a
            // transport failure; ignore rather than kill the connection.
            break;
        }
        break;
      }
      case net::IoStatus::kTimeout:
        if (!Pump(channel, &snapshots, false)) done = true;
        break;
      case net::IoStatus::kClosed:
      case net::IoStatus::kError:
        done = true;
        break;
    }
  }
  // Joins the workers before `snapshots` goes out of scope; remaining
  // futures are dropped (their submitter is gone with the connection).
  scheduler.Stop();
  pending_.clear();
  index_by_request_.clear();
  return clean;
}

}  // namespace moqo
