// shardd: one shard server process.
//
// Listens on a Unix-domain socket (--socket) or loopback TCP (--port),
// accepts exactly one router connection, and serves it with a ShardServer
// hosting an RMQ-based OnlineScheduler. The process exists to be
// expendable: the supervisor (service/shard_supervisor.h) spawns one per
// shard, and killing it -9 mid-stream is the failure mode the snapshot/
// failover machinery is built for.
//
// Exit codes: 0 after an orderly kShutdown/kBye handshake, 1 when the
// connection died first, 2 when the listener or accept failed (setup
// error — the supervisor treats a child that exits before connecting as
// failed spawn, not failover).
//
//   $ shardd --socket=/tmp/moqo-shard.sock [--threads=2]
//       [--steps-per-slice=8] [--snapshot-every=4] [--iterations=20]
//       [--heartbeat-ms=200] [--pump-ms=10] [--accept-timeout-ms=10000]
//       [--cache-mb=64]
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/flags.h"
#include "core/rmq.h"
#include "net/frame_channel.h"
#include "service/shard_server.h"

using namespace moqo;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string socket_path = flags.GetString("socket", "");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  const int accept_timeout_ms =
      static_cast<int>(flags.GetInt("accept-timeout-ms", 10000));
  const int threads = static_cast<int>(flags.GetInt("threads", 2));
  const int steps_per_slice =
      static_cast<int>(flags.GetInt("steps-per-slice", 8));
  const int snapshot_every =
      static_cast<int>(flags.GetInt("snapshot-every", 4));
  const int heartbeat_ms =
      static_cast<int>(flags.GetInt("heartbeat-ms", 200));
  const int pump_ms = static_cast<int>(flags.GetInt("pump-ms", 10));
  const int iterations = static_cast<int>(flags.GetInt("iterations", 20));
  const int cache_mb = static_cast<int>(flags.GetInt("cache-mb", 64));

  ShardServerConfig config;
  config.scheduler.num_threads = threads;
  config.scheduler.steps_per_slice = steps_per_slice;
  config.scheduler.snapshot_every = snapshot_every;
  // Results leave through the connection as they finish; retaining every
  // frontier in the server-side report would only grow a long-lived shard.
  config.scheduler.retain_frontiers = false;
  if (cache_mb > 0) {
    // Per-shard frontier cache: the router's consistent-hash placement
    // sends every repeat of a (shape, seed) to the same shard, so a local
    // cache sees all of its shape's traffic. Wire frames carry the
    // router-computed fingerprint, so cache keys agree across processes.
    FrontierCacheConfig cache;
    cache.max_bytes = static_cast<size_t>(cache_mb) << 20;
    config.scheduler.frontier_cache =
        std::make_shared<FrontierCache>(cache);
  }
  config.pump_interval_ms = pump_ms;
  config.heartbeat_ms = heartbeat_ms;

  OptimizerFactory make_rmq = [iterations] {
    RmqConfig rmq;
    rmq.max_iterations = iterations;
    return std::make_unique<Rmq>(rmq);
  };

  std::string error;
  std::optional<net::FrameListener> listener =
      socket_path.empty()
          ? net::FrameListener::ListenTcp(static_cast<uint16_t>(port),
                                          &error)
          : net::FrameListener::ListenUnix(socket_path, &error);
  if (!listener.has_value()) {
    std::fprintf(stderr, "shardd: listen failed: %s\n", error.c_str());
    return 2;
  }
  if (socket_path.empty()) {
    // The supervisor connects by port; with --port=0 it needs to learn
    // the kernel-assigned one.
    std::printf("shardd: listening on port %u\n", listener->port());
    std::fflush(stdout);
  }
  std::optional<net::FrameChannel> channel =
      listener->Accept(accept_timeout_ms);
  if (!channel.has_value()) {
    std::fprintf(stderr, "shardd: accept failed: %s\n",
                 listener->last_error().c_str());
    return 2;
  }

  ShardServer server(std::move(config), std::move(make_rmq));
  bool clean = server.Serve(&channel.value());
  return clean ? 0 : 1;
}
