#include "service/shard_router.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/query_fingerprint.h"
#include "service/wire.h"

namespace moqo {

namespace {

/// Hash of one ring point. Seeded by a fixed tag plus the shard's stable
/// id and the replica number, so every router instance — in any process —
/// derives the identical ring for the same membership.
uint64_t RingPointHash(size_t shard_id, int replica) {
  return CombineSeed(0x52494e47ull /* "RING" */,
                     static_cast<uint64_t>(shard_id),
                     static_cast<uint64_t>(replica));
}

}  // namespace

ShardRouter::ShardRouter(ShardRouterConfig config,
                         OptimizerFactory make_optimizer)
    : config_(std::move(config)), make_optimizer_(std::move(make_optimizer)) {
  config_.num_shards = std::max(0, config_.num_shards);
  config_.virtual_nodes = std::max(1, config_.virtual_nodes);
  MutexLock lock(mu_);
  for (int i = 0; i < config_.num_shards; ++i) {
    size_t id = next_shard_id_++;
    shards_.emplace(id, std::make_unique<LocalShard>(config_.shard,
                                                     make_optimizer_));
  }
  peak_shards_ = shards_.size();
  RebuildRingLocked();
}

ShardRouter::~ShardRouter() {
  bool stopped;
  {
    MutexLock lock(mu_);
    stopped = stopped_;
  }
  if (!stopped) Stop();
}

void ShardRouter::StartLocked() {
  if (started_) return;
  started_ = true;
  for (auto& [id, shard] : shards_) shard->Start();
}

void ShardRouter::Start() {
  MutexLock lock(mu_);
  StartLocked();
}

void ShardRouter::RebuildRingLocked() {
  ring_.clear();
  ring_.reserve(shards_.size() *
                static_cast<size_t>(config_.virtual_nodes));
  for (const auto& [id, shard] : shards_) {
    for (int replica = 0; replica < config_.virtual_nodes; ++replica) {
      ring_.push_back(RingPoint{RingPointHash(id, replica), id});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ShardRouter::OwnerLocked(uint64_t key) const {
  // First point at or after the key, wrapping to the ring's start.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingPoint& point, uint64_t k) { return point.hash < k; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard_id;
}

size_t ShardRouter::LiveOwnerLocked(uint64_t key) const {
  if (ring_.empty()) return static_cast<size_t>(-1);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingPoint& point, uint64_t k) { return point.hash < k; });
  size_t start = static_cast<size_t>(it - ring_.begin()) % ring_.size();
  for (size_t step = 0; step < ring_.size(); ++step) {
    size_t id = ring_[(start + step) % ring_.size()].shard_id;
    if (shards_.at(id)->alive()) return id;
  }
  return static_cast<size_t>(-1);
}

std::optional<std::future<BatchTaskResult>> ShardRouter::Submit(
    const BatchTask& task) {
  // The layered identity is computed once, outside mu_ (canonicalization
  // walks the query), and the fingerprint is stamped into the task so the
  // owning shard's scheduler — and, for a remote shard, the wire frame —
  // reuses it for its frontier cache instead of re-canonicalizing.
  BatchTask routed = task;
  routed.fingerprint = FingerprintOf(task);
  uint64_t key = DeriveRouteKey(routed.fingerprint, routed.seed);
  MutexLock lock(mu_);
  if (stopped_ || ring_.empty()) return std::nullopt;
  // Walk the ring from the key's owner, skipping shards known dead (their
  // failover is pending) and shards that die under the Submit itself —
  // but honoring a *live* shard's refusal, which is admission
  // back-pressure, not a routing problem.
  size_t start;
  {
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), key,
        [](const RingPoint& point, uint64_t k) { return point.hash < k; });
    start = static_cast<size_t>(it - ring_.begin()) % ring_.size();
  }
  size_t last_tried = static_cast<size_t>(-1);
  for (size_t step = 0; step < ring_.size(); ++step) {
    size_t owner = ring_[(start + step) % ring_.size()].shard_id;
    if (owner == last_tried) continue;
    last_tried = owner;
    Shard* shard = shards_.at(owner).get();
    if (!shard->alive()) continue;
    auto ticket = shard->Submit(routed);
    if (ticket.has_value()) {
      // No other router-driven admission can interleave (mu_ is held), so
      // the task's shard-local index is the shard's latest submission.
      entries_.push_back(Entry{key, routed.fingerprint, owner,
                               shard->submitted_count() - 1});
      return ticket;
    }
    if (shard->alive()) return std::nullopt;
  }
  return std::nullopt;
}

void ShardRouter::Drain() {
  MutexLock lock(mu_);
  StartLocked();
  // Shard workers never take mu_, so holding it while the shards drain is
  // safe; it also pins membership for the duration.
  for (auto& [id, shard] : shards_) shard->Drain();
}

BatchReport ShardRouter::Stop() {
  MutexLock lock(mu_);
  BatchReport report;
  if (stopped_) return report;
  stopped_ = true;
  for (auto& [id, shard] : shards_) retired_[id] = shard->Stop();
  shards_.clear();
  ring_.clear();

  report.num_threads = static_cast<int>(peak_shards_) *
                       std::max(1, config_.shard.num_threads);
  report.tasks.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    // The entry always points at the shard that last admitted the task —
    // its slot there is the real result, never a migrated-away stub. Each
    // slot is read by exactly one entry and retired_ dies with this call,
    // so the (frontier-carrying) result is moved out, not copied.
    BatchTaskResult result = std::move(
        retired_.at(entry.shard_id).tasks.at(entry.local_index));
    result.index = static_cast<int>(i);
    report.tasks.push_back(std::move(result));
  }
  report.wall_millis = epoch_.ElapsedMillis();
  report.Aggregate();
  // Aggregate() counts migrated stub slots, of which the router keeps
  // none; repurpose the field for the router-level hop count.
  report.migrated_tasks = migrations_;
  return report;
}

size_t ShardRouter::AddShardLocked(std::unique_ptr<Shard> shard) {
  // A rebalance Resume()s onto live shards only, so membership changes
  // imply a running service.
  StartLocked();
  size_t id = next_shard_id_++;
  shard->Start();
  shards_.emplace(id, std::move(shard));
  peak_shards_ = std::max(peak_shards_, shards_.size());
  RebuildRingLocked();
  RebalanceLocked();
  return id;
}

size_t ShardRouter::AddShard() {
  MutexLock lock(mu_);
  if (stopped_) return static_cast<size_t>(-1);
  return AddShardLocked(
      std::make_unique<LocalShard>(config_.shard, make_optimizer_));
}

size_t ShardRouter::AddShard(std::unique_ptr<Shard> shard) {
  MutexLock lock(mu_);
  if (stopped_ || shard == nullptr) return static_cast<size_t>(-1);
  return AddShardLocked(std::move(shard));
}

bool ShardRouter::RemoveShard(size_t shard_id) {
  MutexLock lock(mu_);
  if (stopped_) return false;
  auto it = shards_.find(shard_id);
  if (it == shards_.end() || shards_.size() == 1) return false;
  StartLocked();
  // Take the departing shard off the ring first: the rebalance below then
  // re-derives owners without it and migrates its in-flight tasks away. A
  // task whose new owner refuses it falls back onto the departing shard
  // (still live here) and simply finishes there before the Stop() below
  // retires it — never lost, only un-moved.
  std::unique_ptr<Shard> departing = std::move(it->second);
  shards_.erase(it);
  RebuildRingLocked();
  for (Entry& entry : entries_) {
    if (entry.shard_id != shard_id) continue;
    size_t owner = LiveOwnerLocked(entry.key);
    if (owner == static_cast<size_t>(-1)) continue;
    MigrateLocked(departing.get(), &entry, owner);
  }
  retired_[shard_id] = departing->Stop();
  // Also re-derive owners for everyone else: removing points can only move
  // keys that lived on the departed shard, so this is a no-op by
  // construction — but a cheap invariant to hold rather than assume.
  RebalanceLocked();
  return true;
}

bool ShardRouter::FailShard(size_t shard_id) {
  MutexLock lock(mu_);
  if (stopped_) return false;
  auto it = shards_.find(shard_id);
  if (it == shards_.end()) return false;
  std::unique_ptr<Shard> dead = std::move(it->second);
  shards_.erase(it);
  RebuildRingLocked();
  // Recovery frames must come out before Stop(): stopping a dead shard
  // fails whatever promises it still holds, and these are the ones the
  // replay below is supposed to keep alive.
  std::vector<OrphanTask> orphans = dead->TakeOrphans();
  retired_[shard_id] = dead->Stop();
  dead.reset();
  ++failed_shards_;

  for (OrphanTask& orphan : orphans) {
    Entry* entry = nullptr;
    for (Entry& candidate : entries_) {
      if (candidate.shard_id == shard_id &&
          candidate.local_index == orphan.local_index) {
        entry = &candidate;
        break;
      }
    }
    std::string context =
        "shard " + std::to_string(shard_id) +
        (entry != nullptr
             ? ", route key " + RouteKeyString(entry->key) +
                   ", fingerprint " + FingerprintString(entry->fingerprint)
             : "");
    WireTask wire;
    std::string why;
    if (!DecodeWireTask(orphan.frame, &wire, &why)) {
      orphan.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("failover replay failed for " + context +
                             ": " + why)));
      continue;
    }
    bool mid_run = !wire.checkpoint.empty();
    int64_t resumed_steps = wire.steps;
    SuspendedTask rebuilt =
        ToSuspendedTask(std::move(wire), std::move(orphan.promise));
    rebuilt.origin = "failover from " + context;

    // Preferred destination: the key's post-failure ring owner; fall back
    // to any live survivor before giving up.
    bool placed = false;
    size_t preferred = entry != nullptr ? LiveOwnerLocked(entry->key)
                                        : static_cast<size_t>(-1);
    if (preferred != static_cast<size_t>(-1)) {
      Shard* destination = shards_.at(preferred).get();
      if (destination->Resume(rebuilt)) {
        if (entry != nullptr) {
          entry->shard_id = preferred;
          entry->local_index = destination->submitted_count() - 1;
        }
        placed = true;
      }
    }
    if (!placed) {
      for (auto& [id, shard] : shards_) {
        if (id == preferred || !shard->alive()) continue;
        if (shard->Resume(rebuilt)) {
          if (entry != nullptr) {
            entry->shard_id = id;
            entry->local_index = shard->submitted_count() - 1;
          }
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      // No survivor accepted it; `rebuilt`'s destructor fails the future
      // with the origin context. The entry keeps pointing at the failed
      // shard, whose retired report holds a migrated stub at this index,
      // so Stop()'s index arithmetic stays aligned.
      continue;
    }
    ++migrations_;
    ++failover_replayed_;
    if (mid_run) {
      ++checkpointed_migrations_;
      ++failover_checkpointed_;
      failover_resume_steps_ += resumed_steps;
    }
  }
  RebalanceLocked();
  return true;
}

void ShardRouter::RebalanceLocked() {
  for (Entry& entry : entries_) {
    // An entry pointing at a retired shard finished there before the shard
    // left; its result lives in the retired report and never moves again.
    auto it = shards_.find(entry.shard_id);
    if (it == shards_.end()) continue;
    // A dead shard's tasks move via FailShard's orphan replay, not via
    // suspend (there is no process left to suspend from).
    if (!it->second->alive()) continue;
    size_t owner = OwnerLocked(entry.key);
    if (owner == entry.shard_id) continue;
    if (!shards_.at(owner)->alive()) continue;
    MigrateLocked(it->second.get(), &entry, owner);
  }
}

bool ShardRouter::MigrateLocked(Shard* source, Entry* entry,
                                size_t to_shard) {
  std::optional<SuspendedTask> suspended =
      source->Suspend(entry->local_index);
  // Already finished on the current shard: its report slot is final.
  if (!suspended.has_value()) return false;

  // Round-trip through the wire exactly as a cross-process transport
  // would: the destination sees only what the frame carries (the query is
  // rebuilt value-for-value, the checkpoint is opaque bytes). The promise
  // is the submitter-side reply channel and stays on this side of the
  // wire.
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(*suspended));
  WireTask wire;
  std::string why;
  if (!DecodeWireTask(frame, &wire, &why)) {
    // Decoding our own frame cannot fail short of a framing bug; resume in
    // place so the task is not lost to one.
    if (source->Resume(*suspended)) {
      entry->local_index = source->submitted_count() - 1;
    }
    return false;
  }
  bool mid_run = !wire.checkpoint.empty();
  SuspendedTask rebuilt =
      ToSuspendedTask(std::move(wire), std::move(suspended->promise));
  rebuilt.origin = "migration from shard " + std::to_string(entry->shard_id) +
                   ", route key " + RouteKeyString(entry->key) +
                   ", fingerprint " + FingerprintString(entry->fingerprint);
  suspended->MarkConsumed();

  Shard* destination = shards_.at(to_shard).get();
  if (!destination->Resume(rebuilt)) {
    // Destination refused (stopping or full kReject window): fall back to
    // the old owner rather than dropping the task. If even that fails the
    // rebuilt task's destructor fails the submitter's future descriptively.
    if (source->Resume(rebuilt)) {
      entry->local_index = source->submitted_count() - 1;
    }
    return false;
  }
  entry->shard_id = to_shard;
  entry->local_index = destination->submitted_count() - 1;
  ++migrations_;
  if (mid_run) ++checkpointed_migrations_;
  return true;
}

std::vector<size_t> ShardRouter::shard_ids() const {
  MutexLock lock(mu_);
  std::vector<size_t> ids;
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

size_t ShardRouter::shard_count() const {
  MutexLock lock(mu_);
  return shards_.size();
}

size_t ShardRouter::ShardFor(const BatchTask& task) const {
  uint64_t key = RouteKey(task);  // query serialization: not under mu_
  MutexLock lock(mu_);
  if (ring_.empty()) return static_cast<size_t>(-1);  // stopped
  return OwnerLocked(key);
}

size_t ShardRouter::submitted_count() const {
  MutexLock lock(mu_);
  return entries_.size();
}

size_t ShardRouter::migrations() const {
  MutexLock lock(mu_);
  return migrations_;
}

size_t ShardRouter::checkpointed_migrations() const {
  MutexLock lock(mu_);
  return checkpointed_migrations_;
}

size_t ShardRouter::failed_shards() const {
  MutexLock lock(mu_);
  return failed_shards_;
}

size_t ShardRouter::failover_replayed() const {
  MutexLock lock(mu_);
  return failover_replayed_;
}

size_t ShardRouter::failover_checkpointed() const {
  MutexLock lock(mu_);
  return failover_checkpointed_;
}

int64_t ShardRouter::failover_resume_steps() const {
  MutexLock lock(mu_);
  return failover_resume_steps_;
}

}  // namespace moqo
