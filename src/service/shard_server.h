// Server half of the cross-process shard transport: one process hosting
// one OnlineScheduler behind a frame channel.
//
// A ShardServer serves one connection at a time. Serve() owns the
// conversation end to end: it decodes protocol messages (shard_protocol.h)
// off the channel, turns kSubmit frames into fresh-task Submit() or —
// when the frame carries a mid-run checkpoint — Resume() on its local
// scheduler, and streams completions back as kResult/kTaskError messages
// tagged with the originating request id. Between messages it pumps: any
// task future that became ready is flushed, queued snapshot messages are
// sent, and a kPing heartbeat goes out when the connection would otherwise
// be silent, so the supervisor on the far side can distinguish "busy" from
// "dead" by clock alone.
//
// Recovery state: when the scheduler's snapshot cadence is enabled
// (OnlineConfig::snapshot_every), every periodic TaskSnapshot is encoded
// as a kSnapshot message and shipped to the router, which retains the
// latest frame per task as the state it replays onto surviving shards if
// this process dies. The sink runs on scheduler worker threads and only
// encodes + enqueues; all socket writes happen on the Serve() thread, so
// the channel never sees two concurrent senders.
//
// Serve() returns true after an orderly kShutdown handshake (drain, flush
// every result, kBye) and false when the connection died first — the
// process exit codes of shardd (shard_server_main.cc) mirror this.
#ifndef MOQO_SERVICE_SHARD_SERVER_H_
#define MOQO_SERVICE_SHARD_SERVER_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "net/frame_channel.h"
#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

namespace moqo {

/// Configuration for one ShardServer instance.
struct ShardServerConfig {
  /// Configuration of the scheduler hosted behind the connection. Set
  /// snapshot_every > 0 to ship periodic recovery snapshots; the server
  /// installs its own snapshot_sink (any caller-provided sink is
  /// replaced).
  OnlineConfig scheduler;
  /// Recv timeout of the serve loop: how often pending results, queued
  /// snapshots, and the heartbeat are pumped while no request arrives.
  int pump_interval_ms = 20;
  /// A kPing goes out whenever nothing else was sent for this long.
  int heartbeat_ms = 500;
};

/// See file header.
class ShardServer {
 public:
  ShardServer(ShardServerConfig config, OptimizerFactory make_optimizer);

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Serves `channel` until the peer shuts the conversation down (true)
  /// or the transport dies (false). Creates a fresh scheduler per call;
  /// a server object can serve sequential connections.
  bool Serve(net::FrameChannel* channel);

  /// Tasks admitted over all connections served so far.
  size_t served_tasks() const { return served_tasks_; }

 private:
  /// One admitted task the server still owes a reply for.
  struct PendingReply {
    uint64_t request_id = 0;
    std::future<BatchTaskResult> future;
  };

  /// State shared between the serve loop and the scheduler worker threads
  /// that publish snapshots.
  struct SnapshotState {
    Mutex mu;
    /// scheduler submission index -> request id, for stamping snapshots.
    std::map<size_t, uint64_t> request_ids GUARDED_BY(mu);
    /// Encoded kSnapshot messages awaiting the serve-loop sender.
    std::vector<std::vector<uint8_t>> outbox GUARDED_BY(mu);
  };

  /// Handles one decoded request. Returns false when the reply could not
  /// be sent (transport death).
  bool HandleSubmit(net::FrameChannel* channel, OnlineScheduler* scheduler,
                    SnapshotState* snapshots, uint64_t request_id,
                    const std::vector<uint8_t>& body);
  bool HandleSuspend(net::FrameChannel* channel, OnlineScheduler* scheduler,
                     SnapshotState* snapshots, uint64_t request_id);
  /// Flushes ready futures, queued snapshots, and — if the connection has
  /// been silent past the heartbeat — a kPing. False on transport death.
  bool Pump(net::FrameChannel* channel, SnapshotState* snapshots,
            bool force_heartbeat);

  /// Sends one protocol message, stamping last_send_millis_.
  bool SendMessage(net::FrameChannel* channel, uint8_t type,
                   uint64_t request_id, std::vector<uint8_t> body);

  ShardServerConfig config_;
  OptimizerFactory make_optimizer_;
  /// Written only by the Serve() thread; served_tasks() is documented as
  /// a between-connections observer, so it carries no guard.
  size_t served_tasks_ = 0;

  /// Serve()-local state, members only to keep the handlers' signatures
  /// readable; no cross-connection state survives in them.
  std::map<size_t, PendingReply> pending_;
  std::map<uint64_t, size_t> index_by_request_;
  int64_t last_send_millis_ = 0;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SHARD_SERVER_H_
