// Fixed-size thread pool used by the batch optimization service.
//
// Deliberately minimal: tasks are opaque closures, execution order is the
// submission order (single FIFO queue), and Wait() blocks until every
// submitted task has finished. Determinism of batch results is achieved one
// level up (per-task seeded Rngs), not by constraining the interleaving.
#ifndef MOQO_SERVICE_THREAD_POOL_H_
#define MOQO_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace moqo {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Waits for queued tasks to finish, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after the destructor has begun.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing. If any task
  /// threw since the last Wait(), rethrows the first such exception (later
  /// ones are dropped); the pool itself stays usable — a throwing task
  /// never takes a worker down.
  void Wait();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: work or shutdown
  std::condition_variable idle_cv_;  // signals Wait(): pool drained
  int active_ = 0;                   // tasks currently executing
  bool stop_ = false;                // set once the destructor has begun
  std::exception_ptr first_error_;   // first task exception since last Wait
};

}  // namespace moqo

#endif  // MOQO_SERVICE_THREAD_POOL_H_
