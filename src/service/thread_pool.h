// Fixed-size thread pool used by the batch optimization service.
//
// Deliberately minimal: tasks are opaque closures, execution order is the
// submission order (single FIFO queue), and Wait() blocks until every
// submitted task has finished. Determinism of batch results is achieved one
// level up (per-task seeded Rngs), not by constraining the interleaving.
#ifndef MOQO_SERVICE_THREAD_POOL_H_
#define MOQO_SERVICE_THREAD_POOL_H_

#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace moqo {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Waits for queued tasks to finish, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after the destructor has begun.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is executing. If any task
  /// threw since the last Wait(), rethrows the first such exception (later
  /// ones are dropped); the pool itself stays usable — a throwing task
  /// never takes a worker down.
  void Wait() EXCLUDES(mu_);

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Fixed at construction, joined by the destructor; never touched by
  /// the workers themselves, so it needs no guard.
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  // signals workers: work or shutdown
  CondVar idle_cv_;  // signals Wait(): pool drained
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  int active_ GUARDED_BY(mu_) = 0;   // tasks currently executing
  bool stop_ GUARDED_BY(mu_) = false;  // set once the destructor has begun
  /// First task exception since the last Wait().
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

}  // namespace moqo

#endif  // MOQO_SERVICE_THREAD_POOL_H_
