// Cooperative query multiplexing: M open optimizer sessions interleaved
// over N worker threads, M >> N — the closed-batch convenience wrapper
// around the online service in online_scheduler.h.
//
// The batch service (batch_optimizer.h) runs each query to completion on
// one worker — a query admitted behind 63 others waits for a full slot.
// The cooperative scheduler instead opens an OptimizerSession per query
// and interleaves them: a worker picks the next ready session under the
// configured SchedulingPolicy, advances it by a fixed number of steps (one
// slice), and requeues it. Every in-flight query therefore makes progress
// at slice granularity, bounding per-query latency by roughly
// total_work / num_threads instead of queue position.
//
// Run(tasks) is now a thin wrapper over OnlineScheduler: it submits every
// task (admission order = task order), starts the workers, and stops the
// service once all tasks have completed. Callers that need *online*
// admission — submitting tasks while the workers are already running,
// per-task futures, back-pressure — use OnlineScheduler directly.
//
// Determinism contract (same as the batch service, preserved under online
// admission): every task owns an independent Rng seeded from (master seed,
// submission index), its own PlanFactory, and its own session, and a
// session's step sequence depends only on that seed and configuration.
// Interleaving, thread count, and scheduling policy affect only timing, so
// iteration-bounded tasks produce frontiers bitwise identical to a
// single-thread — or blocking — reference run under kFifo and
// kEarliestDeadlineFirst alike.
//
// Deadline contract: a task's wall-clock deadline starts at admission —
// when Run() submits the batch, or when Submit() admits the task on the
// online path — so queueing delay counts against the window. Each slice
// passes the task's deadline down as the step budget, so a climb mid-slice
// is cut short exactly as in blocking mode; a task whose deadline has
// expired is finalized with the frontier it has, and the report records
// whether each deadline task completed its configured work in time
// (BatchTaskResult::deadline_hit, BatchReport::deadline_hit_rate). A
// deadline-aware policy changes *which* tasks finish inside their windows,
// never the bits of the frontiers they produce.
#ifndef MOQO_SERVICE_COOPERATIVE_SCHEDULER_H_
#define MOQO_SERVICE_COOPERATIVE_SCHEDULER_H_

#include <vector>

#include "cost/cost_model.h"
#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

namespace moqo {

/// Configuration for one CooperativeScheduler instance.
struct CooperativeConfig {
  /// Worker threads serving all open sessions.
  int num_threads = 1;
  /// Cost metrics every task is optimized under.
  std::vector<Metric> metrics = {Metric::kTime, Metric::kBuffer};
  /// Session steps per scheduling slice: how far a query advances before
  /// yielding its worker. Larger slices amortize scheduling overhead;
  /// smaller slices tighten the interleaving (clamped to >= 1).
  int steps_per_slice = 1;
  /// Ready-queue order; see SchedulingPolicy (online_scheduler.h).
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
};

/// Runs a closed batch of optimization tasks as interleaved sessions on a
/// thread pool. Thin wrapper over OnlineScheduler.
class CooperativeScheduler {
 public:
  CooperativeScheduler(CooperativeConfig config,
                       OptimizerFactory make_optimizer);

  /// Opens one session per task, multiplexes them to completion (session
  /// Done or task deadline expired), and aggregates the results. Task i of
  /// the returned report corresponds to tasks[i]; BatchTaskResult::steps
  /// holds the executed session steps and elapsed_millis the completion
  /// latency since admission. An empty batch returns an empty report.
  BatchReport Run(const std::vector<BatchTask>& tasks);

  const CooperativeConfig& config() const { return config_; }

 private:
  CooperativeConfig config_;
  OptimizerFactory make_optimizer_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_COOPERATIVE_SCHEDULER_H_
