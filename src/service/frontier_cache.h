// Bounded cache of completed Pareto frontiers, keyed by canonical query
// fingerprint (core/query_fingerprint.h).
//
// Skewed workloads resubmit the same query shapes over and over; ROADMAP
// item 3 calls caching their frontiers the single biggest throughput lever
// for such traffic. The cache stores, per fingerprint, the frontier of the
// most recently *completed* (Done, not gave-up) run: its canonical cost
// vectors (what an exact hit answers with), the structurally serialized
// plans (what a warm start rebuilds through the new task's PlanFactory),
// and the producing seed (what distinguishes an exact hit from a warm
// hit). Consumers interpret a Lookup as:
//
//  * exact hit  — entry->seed == submitted seed: the submitted run is a
//    bitwise repeat of the cached one, so its future can be resolved
//    immediately from entry->frontier without opening a session.
//  * warm hit   — same shape, different seed: the run must still execute
//    (its result is seed-dependent), but it starts from
//    OptimizerSession::BeginFrom(decoded plans), so its frontier is at
//    least as good as cold from the first step.
//
// Capacity is bounded in bytes, not entries, because frontier sizes vary
// by orders of magnitude across query sizes; eviction is LRU. The cache is
// thread-safe and internally sharded by fingerprint so concurrent Submit
// paths on a busy scheduler do not serialize on one mutex. Counters
// (lookups, exact/warm hits, misses, inserts, evictions) feed bench gates
// and operator dashboards.
#ifndef MOQO_SERVICE_FRONTIER_CACHE_H_
#define MOQO_SERVICE_FRONTIER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "cost/cost_vector.h"

namespace moqo {

/// Capacity and sharding knobs.
struct FrontierCacheConfig {
  /// Byte budget across all entries (approximate: serialized plan bytes +
  /// cost vectors + fixed per-entry overhead). Entries are evicted LRU
  /// once the budget is exceeded; an entry larger than a whole lock
  /// shard's slice of the budget is never admitted.
  size_t max_bytes = 64ull << 20;
  /// Internal lock shards (each owns max_bytes / lock_shards of the
  /// budget). More shards = less contention, coarser LRU.
  int lock_shards = 8;
};

/// One cached completed run.
struct CachedFrontier {
  /// Canonical fingerprint of the producing query.
  uint64_t fingerprint = 0;
  /// Seed of the run that produced this frontier; Lookup(fingerprint,
  /// seed) classifies exact vs warm against it.
  uint64_t seed = 0;
  /// CheckpointWriter::WritePlans serialization of the frontier plans,
  /// decodable through any PlanFactory for the same query shape.
  std::vector<uint8_t> plan_bytes;
  /// The frontier's cost vectors in canonical (lexicographic) order — the
  /// exact-hit answer.
  std::vector<CostVector> frontier;
  /// Steps the producing session executed (diagnostics).
  int64_t steps = 0;
};

/// Counter snapshot; all counters are cumulative since construction.
struct FrontierCacheStats {
  uint64_t lookups = 0;
  uint64_t exact_hits = 0;
  uint64_t warm_hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  /// Current occupancy.
  size_t bytes = 0;
  size_t entries = 0;

  uint64_t hits() const { return exact_hits + warm_hits; }
};

/// Thread-safe, byte-bounded, LRU frontier cache (see file header).
class FrontierCache {
 public:
  explicit FrontierCache(FrontierCacheConfig config = FrontierCacheConfig());

  FrontierCache(const FrontierCache&) = delete;
  FrontierCache& operator=(const FrontierCache&) = delete;

  /// Returns the cached entry for `fingerprint` (refreshing its LRU
  /// position) or null. `seed` only classifies the hit counter (exact vs
  /// warm); the returned entry is the same either way, and the caller
  /// compares entry->seed itself to pick the serving path.
  std::shared_ptr<const CachedFrontier> Lookup(uint64_t fingerprint,
                                               uint64_t seed);

  /// Inserts (or replaces) the entry for entry.fingerprint as the
  /// most-recently-used, then evicts LRU entries until the shard is back
  /// under budget. An entry exceeding a whole shard budget by itself is
  /// dropped on the floor (counted as neither insert nor eviction).
  void Insert(CachedFrontier entry);

  /// Aggregated counters across all lock shards.
  FrontierCacheStats stats() const;

  const FrontierCacheConfig& config() const { return config_; }

 private:
  using LruList = std::list<std::shared_ptr<const CachedFrontier>>;

  struct Shard {
    mutable Mutex mu;
    /// Front = most recently used.
    LruList lru GUARDED_BY(mu);
    /// Lookup/erase only — never iterated, so its unordered order can
    /// leak into neither the LRU sequence nor any serialized bytes.
    std::unordered_map<uint64_t, LruList::iterator> index GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
    uint64_t lookups GUARDED_BY(mu) = 0;
    uint64_t exact_hits GUARDED_BY(mu) = 0;
    uint64_t warm_hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t inserts GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t fingerprint);

  FrontierCacheConfig config_;
  /// Per-shard byte budget (max_bytes / lock_shards, at least 1).
  size_t shard_budget_;
  std::unique_ptr<Shard[]> shards_;
};

/// Approximate resident bytes of one entry — the unit the byte budget is
/// accounted in. Exposed for capacity tests.
size_t CachedFrontierBytes(const CachedFrontier& entry);

}  // namespace moqo

#endif  // MOQO_SERVICE_FRONTIER_CACHE_H_
