// Batch optimization service: runs an anytime optimizer over many queries
// concurrently on a fixed-size thread pool, one task per worker until it
// completes. For M-queries-over-N-threads multiplexing at step
// granularity, see service/cooperative_scheduler.h.
//
// Determinism contract: every task owns an independent Rng seeded from
// (master seed, task index), its own PlanFactory, and its own
// OptimizerSession, so a task's result frontier depends only on its seed
// and configuration — never on the number of worker threads or on how the
// scheduler interleaves tasks. Running the same batch with 1 or 8 threads
// yields bitwise-identical per-task frontiers as long as tasks are
// iteration-bounded (wall-clock deadlines are inherently load-dependent).
//
// Deadline contract: a task with a deadline never runs its optimizer past
// it. With `hold_full_window` set, the task additionally occupies its worker
// slot until the deadline expires, modelling a latency-bound service where
// every query is granted its full optimization window (the anytime setting
// of the paper: the budget is wall-clock time, not iterations). Batch
// wall-clock then measures how well windows overlap across threads.
#ifndef MOQO_SERVICE_BATCH_OPTIMIZER_H_
#define MOQO_SERVICE_BATCH_OPTIMIZER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "cost/cost_model.h"
#include "cost/cost_vector.h"
#include "query/generator.h"
#include "query/query.h"

namespace moqo {

/// Creates the Optimizer used for a task. Optimizer objects are stateless
/// (all per-run state lives in the OptimizerSession they mint), so the
/// factory may hand out a shared instance or a fresh one per call — the
/// service only uses it to open one session per task.
using OptimizerFactory = std::function<std::unique_ptr<Optimizer>()>;

/// One optimization request in a batch.
struct BatchTask {
  QueryPtr query;
  /// Seed of the task's private Rng.
  uint64_t seed = 0;
  /// Wall-clock optimization window in microseconds; 0 = unbounded.
  int64_t deadline_micros = 0;
  /// Canonical query fingerprint (core/query_fingerprint.h), stamped once
  /// by whichever layer computes it first (router Submit, wire decode) so
  /// downstream layers — shard placement, the frontier cache — reuse it
  /// instead of re-canonicalizing. 0 = not yet computed (0 is not a
  /// reachable FNV-1a output for any non-degenerate query, and
  /// FingerprintOf() recomputes on demand either way).
  uint64_t fingerprint = 0;
};

/// Service configuration for one BatchOptimizer instance.
struct BatchConfig {
  /// Worker threads in the pool.
  int num_threads = 1;
  /// Cost metrics every task is optimized under.
  std::vector<Metric> metrics = {Metric::kTime, Metric::kBuffer};
  /// If true, a task holds its worker slot until its deadline even when the
  /// optimizer finishes early (latency-bound service mode; see file header).
  bool hold_full_window = false;
};

/// Per-task outcome.
struct BatchTaskResult {
  int index = -1;
  /// Result frontier in canonical (lexicographic) order, so two results can
  /// be compared bitwise.
  std::vector<CostVector> frontier;
  /// Time the task's optimizer actually ran, in milliseconds. For
  /// cooperative runs this sums the task's slices, excluding time spent
  /// waiting for its next turn.
  double optimize_millis = 0.0;
  /// Completion latency since admission (>= optimize_millis when the task
  /// held its slot past the optimizer under hold_full_window, or waited
  /// between cooperative slices).
  double elapsed_millis = 0.0;
  /// Milliseconds since scheduler start when the task was admitted. Always
  /// ~0 for closed-batch runs, where every task is admitted up front; an
  /// online scheduler stamps the actual Submit() time.
  double admit_millis = 0.0;
  /// Session steps executed since Begin().
  int64_t steps = 0;
  /// True if the task ran under a wall-clock deadline.
  bool had_deadline = false;
  /// True if the task had a deadline and its session completed its
  /// configured work (Done) before that deadline expired — the headline
  /// service-level metric aggregated into BatchReport::deadline_hit_rate.
  /// A gave-up session (see below) never hits, even inside the window.
  bool deadline_hit = false;
  /// True if the session stopped without completing its configured work
  /// (OptimizerSession::GaveUp — e.g. DP abandoning an oversized query or
  /// an expired mid-lattice budget). Such a run reports an empty frontier
  /// and must not be counted as a deadline hit.
  bool gave_up = false;
  /// True if the task was drained off this scheduler by Suspend() and
  /// finished (or will finish) on whichever scheduler resumed it. The slot
  /// keeps only the pre-migration step/time counters and is excluded from
  /// report aggregation; the destination scheduler reports the final
  /// result, and the original Submit() future delivers it.
  bool migrated = false;
  /// True if the result was served from the scheduler's FrontierCache
  /// (exact hit: same fingerprint and seed as a completed run) without
  /// opening a session. Such a slot reports zero steps and ~zero latency;
  /// its frontier is the cached producer's canonical frontier.
  bool served_from_cache = false;
};

/// Aggregated outcome of one batch run.
struct BatchReport {
  std::vector<BatchTaskResult> tasks;
  int num_threads = 0;
  double wall_millis = 0.0;
  /// Sum / mean / max of per-task frontier sizes.
  size_t total_frontier = 0;
  double mean_frontier = 0.0;
  size_t max_frontier = 0;

  /// p50 / p95 of per-task optimize_millis (0 for an empty report).
  double p50_optimize_millis = 0.0;
  double p95_optimize_millis = 0.0;

  /// Tasks that ran under a wall-clock deadline, and how many of those
  /// completed their configured work inside it.
  size_t deadline_tasks = 0;
  size_t deadline_hits = 0;
  /// deadline_hits / deadline_tasks; 1.0 (vacuously) when no task had a
  /// deadline.
  double deadline_hit_rate = 1.0;
  /// Tasks suspended off this scheduler mid-run (their slots are excluded
  /// from every aggregate above).
  size_t migrated_tasks = 0;
  /// Tasks answered from the frontier cache without running a session.
  size_t cache_served_tasks = 0;

  /// Recomputes the aggregate fields (frontier totals, percentiles) from
  /// `tasks`. Run() calls this; schedulers producing their own reports can
  /// reuse it.
  void Aggregate();

  /// Human-readable multi-line summary.
  std::string Summary() const;
};

/// Nearest-rank percentile of `values`, q in [0, 1]; 0 when empty.
/// Exposed for tests and report code.
double Percentile(std::vector<double> values, double q);

/// Element-wise equality of two canonical frontiers — the determinism
/// check behind every "bitwise identical" verdict. Exposed for tests and
/// bench code.
bool BitwiseEqual(const std::vector<CostVector>& a,
                  const std::vector<CostVector>& b);

/// Comparison of a parallel run against a single-thread reference run.
struct BatchComparison {
  /// reference wall-clock / parallel wall-clock.
  double speedup = 0.0;
  /// True if every task's frontier is bitwise identical to the reference.
  bool identical = true;
  /// Worst / mean multiplicative epsilon indicator (alpha error) of the
  /// parallel frontiers measured against the reference frontiers; 1.0 means
  /// exact agreement in approximation quality.
  double max_alpha = 1.0;
  double mean_alpha = 1.0;
};

/// Runs batches of optimization tasks over a thread pool.
///
/// Deliberately free of mutexes and thread-safety annotations: the object
/// itself is immutable after construction, per-task state is confined to
/// the worker running it, and result slots are pre-sized so workers write
/// disjoint indices. The only synchronization is inside ThreadPool.
class BatchOptimizer {
 public:
  BatchOptimizer(BatchConfig config, OptimizerFactory make_optimizer);

  /// Runs all tasks to completion and aggregates the results. Task i of the
  /// returned report corresponds to tasks[i]. An empty batch returns an
  /// empty report immediately.
  BatchReport Run(const std::vector<BatchTask>& tasks);

  const BatchConfig& config() const { return config_; }

 private:
  BatchTaskResult RunOne(int index, const BatchTask& task,
                         const CostModel& model) const;

  BatchConfig config_;
  OptimizerFactory make_optimizer_;
};

/// Generates `n` batch tasks with queries drawn from `base` and per-task
/// seeds fanned out from `master_seed`; all tasks share `deadline_micros`.
std::vector<BatchTask> GenerateBatch(int n, const GeneratorConfig& base,
                                     uint64_t master_seed,
                                     int64_t deadline_micros);

/// Extracts the cost vectors of `plans` in canonical lexicographic order.
std::vector<CostVector> CanonicalFrontier(const std::vector<PlanPtr>& plans);

/// Compares a parallel report against its single-thread reference
/// (reports must stem from the same task list).
BatchComparison CompareToReference(const BatchReport& reference,
                                   const BatchReport& parallel);

}  // namespace moqo

#endif  // MOQO_SERVICE_BATCH_OPTIMIZER_H_
