#include "service/batch_optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "common/deadline.h"
#include "pareto/epsilon_indicator.h"
#include "plan/plan_factory.h"
#include "service/thread_pool.h"

namespace moqo {

namespace {

bool LexLess(const CostVector& a, const CostVector& b) {
  for (int i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();
}

}  // namespace

bool BitwiseEqual(const std::vector<CostVector>& a,
                  const std::vector<CostVector>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (int j = 0; j < a[i].size(); ++j) {
      if (a[i][j] != b[i][j]) return false;
    }
  }
  return true;
}

std::vector<CostVector> CanonicalFrontier(const std::vector<PlanPtr>& plans) {
  std::vector<CostVector> frontier;
  frontier.reserve(plans.size());
  for (const PlanPtr& plan : plans) frontier.push_back(plan->cost());
  std::sort(frontier.begin(), frontier.end(), LexLess);
  return frontier;
}

BatchOptimizer::BatchOptimizer(BatchConfig config,
                               OptimizerFactory make_optimizer)
    : config_(std::move(config)), make_optimizer_(std::move(make_optimizer)) {}

BatchTaskResult BatchOptimizer::RunOne(int index, const BatchTask& task,
                                       const CostModel& model) const {
  BatchTaskResult result;
  result.index = index;
  result.had_deadline = task.deadline_micros > 0;

  Stopwatch watch;
  Rng rng(task.seed);
  PlanFactory factory(task.query, &model);
  std::unique_ptr<Optimizer> optimizer = make_optimizer_();
  Deadline deadline = result.had_deadline
                          ? Deadline::AfterMicros(task.deadline_micros)
                          : Deadline();
  // Drive a session directly (instead of the blocking Optimize() wrapper)
  // so the report can record executed steps and the deadline-hit verdict.
  std::unique_ptr<OptimizerSession> session = optimizer->NewSession();
  session->Begin(&factory, &rng);
  std::vector<PlanPtr> plans = RunSession(session.get(), deadline, nullptr);
  // Sample expiry before post-processing: sorting the frontier must not
  // turn a completion just inside the window into a recorded miss.
  const bool expired = deadline.Expired();
  result.optimize_millis = watch.ElapsedMillis();
  result.frontier = CanonicalFrontier(plans);
  result.steps = session->session_stats().steps;
  result.gave_up = session->GaveUp();
  // A gave-up session (DP abandoning the run) is Done with nothing to
  // show; completing the window with no result is not a hit.
  result.deadline_hit = result.had_deadline && session->Done() &&
                        !result.gave_up && !expired;

  if (config_.hold_full_window && result.had_deadline) {
    int64_t remaining = deadline.RemainingMicros();
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(remaining));
    }
  }
  result.elapsed_millis = watch.ElapsedMillis();
  return result;
}

BatchReport BatchOptimizer::Run(const std::vector<BatchTask>& tasks) {
  BatchReport report;
  report.num_threads = std::max(1, config_.num_threads);
  report.tasks.resize(tasks.size());
  if (tasks.empty()) return report;

  Stopwatch wall;
  CostModel model(config_.metrics);
  {
    ThreadPool pool(report.num_threads);
    for (size_t i = 0; i < tasks.size(); ++i) {
      BatchTaskResult* slot = &report.tasks[i];
      const BatchTask* task = &tasks[i];
      pool.Submit([this, i, slot, task, &model] {
        *slot = RunOne(static_cast<int>(i), *task, model);
      });
    }
    pool.Wait();
  }
  report.wall_millis = wall.ElapsedMillis();
  report.Aggregate();
  return report;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest value such that at least q of the sample is
  // at or below it.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank > 0) --rank;
  return values[rank];
}

void BatchReport::Aggregate() {
  total_frontier = 0;
  max_frontier = 0;
  deadline_tasks = 0;
  deadline_hits = 0;
  migrated_tasks = 0;
  cache_served_tasks = 0;
  size_t counted = 0;
  std::vector<double> optimize_times;
  optimize_times.reserve(tasks.size());
  for (const BatchTaskResult& task : tasks) {
    if (task.migrated) {
      // The task finished elsewhere; whatever scheduler resumed it reports
      // it. Counting the stub slot here would dilute every aggregate.
      ++migrated_tasks;
      continue;
    }
    ++counted;
    if (task.served_from_cache) ++cache_served_tasks;
    total_frontier += task.frontier.size();
    max_frontier = std::max(max_frontier, task.frontier.size());
    optimize_times.push_back(task.optimize_millis);
    if (task.had_deadline) {
      ++deadline_tasks;
      // Belt and braces: producers already clear deadline_hit for gave-up
      // runs, but an aggregate must never count one as a hit.
      if (task.deadline_hit && !task.gave_up) ++deadline_hits;
    }
  }
  mean_frontier = counted == 0 ? 0.0
                               : static_cast<double>(total_frontier) /
                                     static_cast<double>(counted);
  p50_optimize_millis = Percentile(optimize_times, 0.50);
  p95_optimize_millis = Percentile(optimize_times, 0.95);
  deadline_hit_rate = deadline_tasks == 0
                          ? 1.0
                          : static_cast<double>(deadline_hits) /
                                static_cast<double>(deadline_tasks);
}

std::string BatchReport::Summary() const {
  std::ostringstream out;
  out << "batch: " << tasks.size() << " tasks on " << num_threads
      << " thread(s), wall " << wall_millis << " ms\n"
      << "frontiers: total " << total_frontier << ", mean " << mean_frontier
      << ", max " << max_frontier << "\n"
      << "optimize_millis: p50 " << p50_optimize_millis << ", p95 "
      << p95_optimize_millis << "\n";
  if (deadline_tasks > 0) {
    out << "deadlines: " << deadline_hits << "/" << deadline_tasks
        << " hit (" << 100.0 * deadline_hit_rate << "%)\n";
  }
  if (migrated_tasks > 0) {
    out << "migrated away: " << migrated_tasks << " task(s)\n";
  }
  if (cache_served_tasks > 0) {
    out << "cache-served: " << cache_served_tasks << " task(s)\n";
  }
  return out.str();
}

std::vector<BatchTask> GenerateBatch(int n, const GeneratorConfig& base,
                                     uint64_t master_seed,
                                     int64_t deadline_micros) {
  std::vector<BatchTask> tasks;
  tasks.reserve(static_cast<size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) {
    BatchTask task;
    // Queries and optimizer runs get independent seed streams so that
    // changing one never perturbs the other.
    Rng query_rng(CombineSeed(master_seed, static_cast<uint64_t>(i), 1));
    task.query = GenerateQuery(base, &query_rng);
    task.seed = CombineSeed(master_seed, static_cast<uint64_t>(i), 2);
    task.deadline_micros = deadline_micros;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

BatchComparison CompareToReference(const BatchReport& reference,
                                   const BatchReport& parallel) {
  BatchComparison cmp;
  cmp.speedup = parallel.wall_millis > 0.0
                    ? reference.wall_millis / parallel.wall_millis
                    : 0.0;
  size_t n = std::min(reference.tasks.size(), parallel.tasks.size());
  cmp.identical = reference.tasks.size() == parallel.tasks.size();
  double alpha_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<CostVector>& ref = reference.tasks[i].frontier;
    const std::vector<CostVector>& par = parallel.tasks[i].frontier;
    if (!BitwiseEqual(ref, par)) cmp.identical = false;
    double alpha = AlphaError(par, ref);
    cmp.max_alpha = std::max(cmp.max_alpha, alpha);
    alpha_sum += alpha;
  }
  cmp.mean_alpha = n > 0 ? alpha_sum / static_cast<double>(n) : 1.0;
  return cmp;
}

}  // namespace moqo
