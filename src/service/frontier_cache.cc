#include "service/frontier_cache.h"

#include <algorithm>
#include <utility>

namespace moqo {

namespace {

/// Fixed accounting overhead per entry: the CachedFrontier struct itself,
/// the shared_ptr control block, the LRU node, and the index slot. The
/// exact malloc footprint is allocator-dependent; the constant only needs
/// to keep "a million tiny entries" from reading as zero bytes.
constexpr size_t kEntryOverhead = 160;

}  // namespace

size_t CachedFrontierBytes(const CachedFrontier& entry) {
  return entry.plan_bytes.size() + entry.frontier.size() * sizeof(CostVector) +
         kEntryOverhead;
}

FrontierCache::FrontierCache(FrontierCacheConfig config)
    : config_(config) {
  if (config_.lock_shards < 1) config_.lock_shards = 1;
  shard_budget_ = std::max<size_t>(
      1, config_.max_bytes / static_cast<size_t>(config_.lock_shards));
  shards_ = std::make_unique<Shard[]>(
      static_cast<size_t>(config_.lock_shards));
}

FrontierCache::Shard& FrontierCache::ShardFor(uint64_t fingerprint) {
  // The fingerprint is already a 64-bit hash; folding the high half in
  // keeps shard choice balanced even if a workload's fingerprints share
  // low bits.
  uint64_t mixed = fingerprint ^ (fingerprint >> 32);
  return shards_[mixed % static_cast<uint64_t>(config_.lock_shards)];
}

std::shared_ptr<const CachedFrontier> FrontierCache::Lookup(
    uint64_t fingerprint, uint64_t seed) {
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(shard.mu);
  ++shard.lookups;
  auto it = shard.index.find(fingerprint);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  // Touch: move to the front of the LRU list; the index keeps pointing at
  // the same (spliced, not reallocated) node.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  const std::shared_ptr<const CachedFrontier>& entry = shard.lru.front();
  if (entry->seed == seed) {
    ++shard.exact_hits;
  } else {
    ++shard.warm_hits;
  }
  return entry;
}

void FrontierCache::Insert(CachedFrontier entry) {
  const size_t entry_bytes = CachedFrontierBytes(entry);
  if (entry_bytes > shard_budget_) return;  // would evict the whole shard
  Shard& shard = ShardFor(entry.fingerprint);
  const uint64_t fingerprint = entry.fingerprint;
  auto shared = std::make_shared<const CachedFrontier>(std::move(entry));
  MutexLock lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it != shard.index.end()) {
    // Replace in place: the newest completed run wins (a repeat under a
    // new seed refreshes the entry, so exact hits always answer with the
    // most recent completion). Replacement is not an eviction — the key
    // stays resident.
    shard.bytes -= CachedFrontierBytes(**it->second);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(std::move(shared));
  shard.index[fingerprint] = shard.lru.begin();
  shard.bytes += entry_bytes;
  ++shard.inserts;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const CachedFrontier& victim = *shard.lru.back();
    shard.bytes -= CachedFrontierBytes(victim);
    shard.index.erase(victim.fingerprint);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

FrontierCacheStats FrontierCache::stats() const {
  FrontierCacheStats total;
  for (int i = 0; i < config_.lock_shards; ++i) {
    const Shard& shard = shards_[static_cast<size_t>(i)];
    MutexLock lock(shard.mu);
    total.lookups += shard.lookups;
    total.exact_hits += shard.exact_hits;
    total.warm_hits += shard.warm_hits;
    total.misses += shard.misses;
    total.inserts += shard.inserts;
    total.evictions += shard.evictions;
    total.bytes += shard.bytes;
    total.entries += shard.lru.size();
  }
  return total;
}

}  // namespace moqo
