#include "service/shard_protocol.h"

#include <utility>

#include "core/checkpoint.h"

namespace moqo {

namespace {

bool KnownType(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kSubmit:
    case MsgType::kSuspend:
    case MsgType::kShutdown:
    case MsgType::kResult:
    case MsgType::kTaskError:
    case MsgType::kSnapshot:
    case MsgType::kSuspended:
    case MsgType::kSuspendFail:
    case MsgType::kPing:
    case MsgType::kBye:
    case MsgType::kReject:
      return true;
  }
  return false;
}

bool Fail(std::string* why, const char* reason) {
  if (why != nullptr) *why = reason;
  return false;
}

}  // namespace

std::vector<uint8_t> EncodeMessage(const Message& message) {
  CheckpointWriter writer;
  writer.WriteU32(kNetMagic);
  writer.WriteU32(kNetVersion);
  writer.WriteU8(static_cast<uint8_t>(message.type));
  writer.WriteU64(message.request_id);
  writer.WriteBytes(message.body);
  return writer.Take();
}

bool DecodeMessage(const std::vector<uint8_t>& payload, Message* out,
                   std::string* why) {
  CheckpointReader reader(payload, /*factory=*/nullptr);
  if (reader.ReadU32() != kNetMagic || !reader.ok()) {
    return Fail(why, "bad message magic");
  }
  if (reader.ReadU32() != kNetVersion || !reader.ok()) {
    return Fail(why, "unsupported message version");
  }
  uint8_t type = reader.ReadU8();
  uint64_t request_id = reader.ReadU64();
  std::vector<uint8_t> body = reader.ReadBytes();
  if (!reader.ok()) return Fail(why, "truncated message");
  if (reader.position() != payload.size()) {
    return Fail(why, "trailing bytes after message");
  }
  if (!KnownType(type)) return Fail(why, "unknown message type");
  out->type = static_cast<MsgType>(type);
  out->request_id = request_id;
  out->body = std::move(body);
  return true;
}

}  // namespace moqo
