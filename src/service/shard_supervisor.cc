#include "service/shard_supervisor.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "net/frame_channel.h"

extern char** environ;

namespace moqo {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardSupervisor::ShardSupervisor(ShardSupervisorConfig config,
                                 ShardRouter* router)
    : config_(std::move(config)), router_(router) {
  monitor_ = std::thread([this] { MonitorLoop(); });
}

ShardSupervisor::~ShardSupervisor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  if (monitor_.joinable()) monitor_.join();
  MutexLock lock(mu_);
  for (auto& [shard, info] : children_) {
    ReapLocked(&info, /*force=*/true);
  }
}

void ShardSupervisor::ReapLocked(ChildInfo* info, bool force) {
  if (info->reaped || info->pid <= 0) return;
  if (force) kill(info->pid, SIGKILL);
  int status = 0;
  // The child either exited (killed, crashed, or clean shutdown after
  // kBye) or just got SIGKILL; either way this wait terminates.
  while (waitpid(info->pid, &status, 0) < 0 && errno == EINTR) {
  }
  info->reaped = true;
}

size_t ShardSupervisor::SpawnShard() {
  std::string socket_path;
  {
    MutexLock lock(mu_);
    socket_path = config_.socket_dir + "/moqo-shard-" +
                  std::to_string(getpid()) + "-" +
                  std::to_string(next_socket_seq_++) + ".sock";
  }

  std::vector<std::string> args;
  args.push_back(config_.server_binary);
  args.push_back("--socket=" + socket_path);
  for (const std::string& arg : config_.server_args) args.push_back(arg);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_t pid = -1;
  int rc = posix_spawn(&pid, config_.server_binary.c_str(),
                       /*file_actions=*/nullptr, /*attrp=*/nullptr,
                       argv.data(), environ);
  if (rc != 0) return static_cast<size_t>(-1);
  {
    MutexLock lock(mu_);
    ++spawned_;
  }

  // Connect, retrying until the child's listener is up. A child that
  // exits before accepting (bad flags, bind failure) ends the retry loop
  // early instead of burning the full timeout.
  std::optional<net::FrameChannel> channel;
  int64_t give_up = NowMillis() + config_.connect_timeout_ms;
  for (;;) {
    std::string error;
    channel = net::ConnectUnix(socket_path, /*timeout_ms=*/200, &error);
    if (channel.has_value()) break;
    int status = 0;
    pid_t waited = waitpid(pid, &status, WNOHANG);
    if (waited == pid) {
      // Child already exited; nothing to connect to and nothing to reap.
      return static_cast<size_t>(-1);
    }
    if (NowMillis() >= give_up) {
      kill(pid, SIGKILL);
      while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      return static_cast<size_t>(-1);
    }
    usleep(20 * 1000);
  }

  auto shard =
      std::make_unique<RemoteShard>(config_.remote, std::move(*channel));
  RemoteShard* ptr = shard.get();
  shard->set_label("remote shard (pid " + std::to_string(pid) + ")");
  shard->set_death_callback([this](RemoteShard* dead) {
    // Receiver thread: enqueue only (see file header).
    MutexLock lock(mu_);
    dead_.push_back(dead);
    cv_.NotifyAll();
  });
  {
    // Registered before AddShard starts the receiver, so a death callback
    // firing immediately still finds the child (shard_id is patched in
    // below; the monitor waits for it).
    MutexLock lock(mu_);
    children_[ptr] = ChildInfo{pid, static_cast<size_t>(-1), false};
  }

  size_t shard_id = router_->AddShard(std::move(shard));
  MutexLock lock(mu_);
  if (shard_id == static_cast<size_t>(-1)) {
    // Router refused (stopped); the shard object is already destroyed.
    ReapLocked(&children_[ptr], /*force=*/true);
    children_.erase(ptr);
    return static_cast<size_t>(-1);
  }
  children_[ptr].shard_id = shard_id;
  cv_.NotifyAll();
  return shard_id;
}

void ShardSupervisor::MonitorLoop() {
  for (;;) {
    RemoteShard* dead = nullptr;
    size_t shard_id = static_cast<size_t>(-1);
    {
      MutexLock lock(mu_);
      cv_.Wait(lock,
               [this]() REQUIRES(mu_) { return stop_ || !dead_.empty(); });
      if (dead_.empty() && stop_) return;
      dead = dead_.front();
      dead_.pop_front();
      // Registration may still be in flight (death raced SpawnShard);
      // wait for the shard id to be patched in.
      cv_.WaitFor(lock, std::chrono::seconds(5),
                  [this, dead]() REQUIRES(mu_) {
                    auto it = children_.find(dead);
                    return it == children_.end() ||
                           it->second.shard_id != static_cast<size_t>(-1);
                  });
      auto it = children_.find(dead);
      if (it == children_.end()) continue;
      shard_id = it->second.shard_id;
      // The process is dead or dying; make sure and reap before failover
      // so a half-dead child cannot keep the socket breathing.
      ReapLocked(&it->second, /*force=*/true);
    }
    if (shard_id != static_cast<size_t>(-1)) {
      router_->FailShard(shard_id);
    }
    MutexLock lock(mu_);
    ++failovers_;
    cv_.NotifyAll();
  }
}

bool ShardSupervisor::KillShard(size_t shard_id, int signal) {
  MutexLock lock(mu_);
  for (auto& [shard, info] : children_) {
    if (info.shard_id != shard_id || info.reaped) continue;
    return kill(info.pid, signal) == 0;
  }
  return false;
}

pid_t ShardSupervisor::ShardPid(size_t shard_id) const {
  MutexLock lock(mu_);
  for (const auto& [shard, info] : children_) {
    if (info.shard_id == shard_id) return info.pid;
  }
  return -1;
}

bool ShardSupervisor::WaitForFailovers(size_t count, int timeout_ms) {
  MutexLock lock(mu_);
  return cv_.WaitFor(
      lock, std::chrono::milliseconds(timeout_ms),
      [this, count]() REQUIRES(mu_) { return failovers_ >= count; });
}

size_t ShardSupervisor::failovers() const {
  MutexLock lock(mu_);
  return failovers_;
}

size_t ShardSupervisor::spawned() const {
  MutexLock lock(mu_);
  return spawned_;
}

}  // namespace moqo
