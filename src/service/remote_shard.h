// Client half of the cross-process shard transport: the Shard
// implementation the router uses when the scheduler lives in another
// process.
//
// A RemoteShard owns one frame channel to a shard server and a receiver
// thread that continuously drains the server's reply stream. Submit() and
// Resume() encode the task as a wire frame, send it as a kSubmit message,
// and register a pending slot holding the submitter's promise plus the
// freshest recovery frame for the task (the submit frame at first, then
// each kSnapshot the server ships back). The receiver fulfills promises as
// kResult/kTaskError messages arrive, so futures handed out by Submit()
// behave exactly like a local shard's — including across a failover.
//
// Death detection: a mid-frame EOF (killed process), a receive error, or
// prolonged silence (the server heartbeats; see
// RemoteShardConfig::silence_timeout_ms) marks the shard dead, fires the
// death callback once, and leaves every unfinished task recoverable:
// TakeOrphans() yields (frame, promise) pairs the router replays onto
// surviving shards (ShardRouter::FailShard). Promises are never failed by
// death itself — only by abandonment, with the shard's label and the
// task's route context in the error text.
//
// Threading: the public surface is called under the router's mutex (one
// caller at a time) but is internally locked regardless; the receiver
// thread is the only other actor and never sends, so the channel's
// one-sender/one-receiver contract holds. The death callback runs on the
// receiver thread and must only hand off (the supervisor enqueues and
// returns) — calling back into this shard or the router from it deadlocks.
#ifndef MOQO_SERVICE_REMOTE_SHARD_H_
#define MOQO_SERVICE_REMOTE_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame_channel.h"
#include "service/shard.h"
#include "service/shard_protocol.h"

namespace moqo {

/// Configuration for one RemoteShard connection.
struct RemoteShardConfig {
  /// Receiver poll granularity (also bounds death-detection latency on
  /// silence).
  int recv_poll_ms = 50;
  /// The shard is declared dead after this much silence from the server,
  /// whose heartbeat cadence must be comfortably shorter. 0 disables the
  /// silence check (socket death still detects).
  int silence_timeout_ms = 5000;
  /// Bound on rendezvous waits: Suspend() waiting for kSuspended, Stop()
  /// waiting for the kBye handshake.
  int op_timeout_ms = 10000;
};

/// See file header.
class RemoteShard : public Shard {
 public:
  /// Takes ownership of a connected channel to a shard server.
  RemoteShard(RemoteShardConfig config, net::FrameChannel channel);

  /// Stops the receiver and fails any promise still unclaimed (tasks
  /// neither finished nor taken as orphans) descriptively.
  ~RemoteShard() override;

  /// Invoked exactly once, from the receiver thread, when the shard is
  /// declared dead. Set before Start(); the callback must only hand off.
  void set_death_callback(std::function<void(RemoteShard*)> callback);

  /// Diagnostic label ("shard 3 (pid 12345)") stamped into every error
  /// this shard raises. Set before Start().
  void set_label(std::string label);
  const std::string& label() const { return label_; }

  void Start() override;
  std::optional<std::future<BatchTaskResult>> Submit(
      const BatchTask& task) override;
  void Drain() override;
  BatchReport Stop() override;
  std::optional<SuspendedTask> Suspend(size_t submission_index) override;
  bool Resume(SuspendedTask& task) override;
  size_t submitted_count() const override;
  bool alive() const override;
  std::vector<OrphanTask> TakeOrphans() override;

  /// kSnapshot messages applied so far (recovery frames refreshed).
  size_t snapshots_received() const;
  /// Why the shard was declared dead (empty while alive).
  std::string death_reason() const;

 private:
  /// One task submitted over this connection, by local index.
  struct Pending {
    uint64_t request_id = 0;
    /// Fulfills the future handed out by Submit() (or carried in by
    /// Resume()). Moved out when the task finishes, is suspended away, or
    /// becomes an orphan.
    std::promise<BatchTaskResult> promise;
    /// Freshest recovery frame: the submit frame, superseded by each
    /// snapshot.
    std::vector<uint8_t> frame;
    bool done = false;
    /// Suspended away, orphaned away, or rejected — no longer this
    /// shard's to finish.
    bool migrated = false;
    /// Valid once done: the decoded result for the Stop() report.
    BatchTaskResult result;
  };

  void ReceiverLoop();
  /// Declares the shard dead (idempotent) and wakes every waiter. The
  /// death callback fires outside the lock, on the receiver thread.
  void MarkDead(const std::string& reason);
  /// Sends one protocol message. False if the transport refused it (the
  /// shard is then marked dead by the receiver or here).
  bool SendRequest(uint8_t type, uint64_t request_id,
                   std::vector<uint8_t> body);
  /// Common Submit()/Resume() path: ship a task frame, register pending.
  /// `*promise` is moved from only on success.
  bool SubmitFrame(std::vector<uint8_t> frame,
                   std::promise<BatchTaskResult>* promise);
  /// Receiver-side message dispatch. Requires mu_.
  void HandleMessage(std::unique_lock<std::mutex>& lock, Message&& message);

  RemoteShardConfig config_;
  net::FrameChannel channel_;
  std::function<void(RemoteShard*)> death_callback_;
  std::string label_ = "remote shard";

  mutable std::mutex mu_;
  /// Serializes senders (router thread vs. destructor).
  std::mutex send_mu_;
  std::condition_variable cv_;
  std::thread receiver_;
  std::vector<Pending> pending_;
  /// request id -> local index.
  std::map<uint64_t, size_t> index_by_request_;
  uint64_t next_request_id_ = 1;
  /// Unfinished tasks this shard still owes results for.
  size_t open_ = 0;
  size_t snapshots_received_ = 0;
  /// Rendezvous slot of the (single, router-serialized) Suspend() in
  /// flight.
  uint64_t suspend_request_ = 0;
  std::optional<SuspendedTask> suspend_result_;
  bool suspend_failed_ = false;
  bool started_ = false;
  bool stopping_ = false;
  bool bye_received_ = false;
  bool dead_ = false;
  std::string death_reason_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_REMOTE_SHARD_H_
