// Client half of the cross-process shard transport: the Shard
// implementation the router uses when the scheduler lives in another
// process.
//
// A RemoteShard owns one frame channel to a shard server and a receiver
// thread that continuously drains the server's reply stream. Submit() and
// Resume() encode the task as a wire frame, send it as a kSubmit message,
// and register a pending slot holding the submitter's promise plus the
// freshest recovery frame for the task (the submit frame at first, then
// each kSnapshot the server ships back). The receiver fulfills promises as
// kResult/kTaskError messages arrive, so futures handed out by Submit()
// behave exactly like a local shard's — including across a failover.
//
// Death detection: a mid-frame EOF (killed process), a receive error, or
// prolonged silence (the server heartbeats; see
// RemoteShardConfig::silence_timeout_ms) marks the shard dead, fires the
// death callback once, and leaves every unfinished task recoverable:
// TakeOrphans() yields (frame, promise) pairs the router replays onto
// surviving shards (ShardRouter::FailShard). Promises are never failed by
// death itself — only by abandonment, with the shard's label and the
// task's route context in the error text.
//
// Threading: the public surface is called under the router's mutex (one
// caller at a time) but is internally locked regardless; the receiver
// thread is the only other actor and never sends, so the channel's
// one-sender/one-receiver contract holds. The death callback runs on the
// receiver thread and must only hand off (the supervisor enqueues and
// returns) — calling back into this shard or the router from it deadlocks.
#ifndef MOQO_SERVICE_REMOTE_SHARD_H_
#define MOQO_SERVICE_REMOTE_SHARD_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "net/frame_channel.h"
#include "service/shard.h"
#include "service/shard_protocol.h"

namespace moqo {

/// Configuration for one RemoteShard connection.
struct RemoteShardConfig {
  /// Receiver poll granularity (also bounds death-detection latency on
  /// silence).
  int recv_poll_ms = 50;
  /// The shard is declared dead after this much silence from the server,
  /// whose heartbeat cadence must be comfortably shorter. 0 disables the
  /// silence check (socket death still detects).
  int silence_timeout_ms = 5000;
  /// Bound on rendezvous waits: Suspend() waiting for kSuspended, Stop()
  /// waiting for the kBye handshake.
  int op_timeout_ms = 10000;
};

/// See file header.
class RemoteShard : public Shard {
 public:
  /// Takes ownership of a connected channel to a shard server.
  RemoteShard(RemoteShardConfig config, net::FrameChannel channel);

  /// Stops the receiver and fails any promise still unclaimed (tasks
  /// neither finished nor taken as orphans) descriptively.
  ~RemoteShard() override;

  /// Invoked exactly once, from the receiver thread, when the shard is
  /// declared dead. Conventionally set before Start(); taking mu_ anyway
  /// keeps a late setter from racing the receiver reading the callback.
  void set_death_callback(std::function<void(RemoteShard*)> callback)
      EXCLUDES(mu_);

  /// Diagnostic label ("shard 3 (pid 12345)") stamped into every error
  /// this shard raises. Conventionally set before Start(); guarded like
  /// the death callback because the receiver thread reads it.
  void set_label(std::string label) EXCLUDES(mu_);
  std::string label() const EXCLUDES(mu_);

  void Start() override EXCLUDES(mu_);
  std::optional<std::future<BatchTaskResult>> Submit(
      const BatchTask& task) override EXCLUDES(mu_, send_mu_);
  void Drain() override EXCLUDES(mu_);
  BatchReport Stop() override EXCLUDES(mu_, send_mu_);
  std::optional<SuspendedTask> Suspend(size_t submission_index) override
      EXCLUDES(mu_, send_mu_);
  bool Resume(SuspendedTask& task) override EXCLUDES(mu_, send_mu_);
  size_t submitted_count() const override EXCLUDES(mu_);
  bool alive() const override EXCLUDES(mu_);
  std::vector<OrphanTask> TakeOrphans() override EXCLUDES(mu_);

  /// kSnapshot messages applied so far (recovery frames refreshed).
  size_t snapshots_received() const EXCLUDES(mu_);
  /// Why the shard was declared dead (empty while alive).
  std::string death_reason() const EXCLUDES(mu_);

 private:
  /// One task submitted over this connection, by local index.
  struct Pending {
    uint64_t request_id = 0;
    /// Fulfills the future handed out by Submit() (or carried in by
    /// Resume()). Moved out when the task finishes, is suspended away, or
    /// becomes an orphan.
    std::promise<BatchTaskResult> promise;
    /// Freshest recovery frame: the submit frame, superseded by each
    /// snapshot.
    std::vector<uint8_t> frame;
    bool done = false;
    /// Suspended away, orphaned away, or rejected — no longer this
    /// shard's to finish.
    bool migrated = false;
    /// Valid once done: the decoded result for the Stop() report.
    BatchTaskResult result;
  };

  void ReceiverLoop() EXCLUDES(mu_);
  /// Declares the shard dead (idempotent) and wakes every waiter. The
  /// death callback fires outside the lock, on the receiver thread.
  void MarkDead(const std::string& reason) EXCLUDES(mu_);
  /// Sends one protocol message. False if the transport refused it (the
  /// shard is then marked dead by the receiver or here). Never called
  /// with mu_ held: send_mu_ sits strictly outside mu_ in the lock order,
  /// and a blocked send must not stall the receiver.
  bool SendRequest(uint8_t type, uint64_t request_id,
                   std::vector<uint8_t> body) EXCLUDES(mu_, send_mu_);
  /// Common Submit()/Resume() path: ship a task frame, register pending.
  /// `*promise` is moved from only on success.
  bool SubmitFrame(std::vector<uint8_t> frame,
                   std::promise<BatchTaskResult>* promise)
      EXCLUDES(mu_, send_mu_);
  /// Receiver-side message dispatch. `lock` holds mu_ (waiters are
  /// notified through it).
  void HandleMessage(MutexLock& lock, Message&& message) REQUIRES(mu_);

  RemoteShardConfig config_;
  /// Two independent directions by contract: exactly one sender at a time
  /// (serialized by send_mu_) and the receiver thread; FrameChannel keeps
  /// per-direction state, so the halves share nothing.
  net::FrameChannel channel_;

  mutable Mutex mu_;
  /// Serializes senders (router thread vs. destructor).
  Mutex send_mu_;
  CondVar cv_;
  /// Started once under mu_ in Start(), joined by Stop()/the destructor
  /// without the lock (joining under mu_ would deadlock the receiver).
  std::thread receiver_;
  std::function<void(RemoteShard*)> death_callback_ GUARDED_BY(mu_);
  std::string label_ GUARDED_BY(mu_) = "remote shard";
  std::vector<Pending> pending_ GUARDED_BY(mu_);
  /// request id -> local index. Lookup only — never iterated, so its
  /// unordered cousin would be safe too; std::map keeps failover frame
  /// recovery order deterministic anyway.
  std::map<uint64_t, size_t> index_by_request_ GUARDED_BY(mu_);
  uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
  /// Unfinished tasks this shard still owes results for.
  size_t open_ GUARDED_BY(mu_) = 0;
  size_t snapshots_received_ GUARDED_BY(mu_) = 0;
  /// Rendezvous slot of the (single, router-serialized) Suspend() in
  /// flight.
  uint64_t suspend_request_ GUARDED_BY(mu_) = 0;
  std::optional<SuspendedTask> suspend_result_ GUARDED_BY(mu_);
  bool suspend_failed_ GUARDED_BY(mu_) = false;
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  bool bye_received_ GUARDED_BY(mu_) = false;
  bool dead_ GUARDED_BY(mu_) = false;
  std::string death_reason_ GUARDED_BY(mu_);
};

}  // namespace moqo

#endif  // MOQO_SERVICE_REMOTE_SHARD_H_
