#include "service/remote_shard.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "service/wire.h"

namespace moqo {

namespace {

std::string TextOf(const std::vector<uint8_t>& body) {
  return std::string(body.begin(), body.end());
}

}  // namespace

RemoteShard::RemoteShard(RemoteShardConfig config, net::FrameChannel channel)
    : config_(std::move(config)), channel_(std::move(channel)) {
  if (config_.recv_poll_ms < 1) config_.recv_poll_ms = 1;
}

RemoteShard::~RemoteShard() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  // Shutdown, not Close: the receiver may be mid-Recv on this channel.
  channel_.Shutdown();
  if (receiver_.joinable()) receiver_.join();
  channel_.Close();
  // Anything still pending was neither finished, suspended away, nor
  // recovered as an orphan: its submitter is owed an explicit error, not
  // a broken promise.
  MutexLock lock(mu_);
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& entry = pending_[i];
    if (entry.done || entry.migrated) continue;
    entry.migrated = true;
    entry.promise.set_exception(std::make_exception_ptr(std::runtime_error(
        "task lost with " + label_ + " (local index " + std::to_string(i) +
        "): shard destroyed with task in flight" +
        (death_reason_.empty() ? "" : " [" + death_reason_ + "]"))));
  }
}

void RemoteShard::set_death_callback(
    std::function<void(RemoteShard*)> callback) {
  MutexLock lock(mu_);
  death_callback_ = std::move(callback);
}

void RemoteShard::set_label(std::string label) {
  MutexLock lock(mu_);
  label_ = std::move(label);
}

std::string RemoteShard::label() const {
  MutexLock lock(mu_);
  return label_;
}

void RemoteShard::Start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

void RemoteShard::MarkDead(const std::string& reason) {
  std::function<void(RemoteShard*)> callback;
  {
    MutexLock lock(mu_);
    if (dead_) return;
    dead_ = true;
    death_reason_ = reason;
    callback = death_callback_;
    cv_.NotifyAll();
  }
  if (callback) callback(this);
}

void RemoteShard::HandleMessage(MutexLock& lock, Message&& message) {
  auto find_pending = [&]() -> Pending* {
    auto it = index_by_request_.find(message.request_id);
    if (it == index_by_request_.end()) return nullptr;
    return &pending_[it->second];
  };
  switch (message.type) {
    case MsgType::kResult: {
      Pending* entry = find_pending();
      if (entry == nullptr || entry->done || entry->migrated) break;
      CheckpointReader reader(message.body, /*factory=*/nullptr);
      BatchTaskResult result;
      if (!DecodeTaskResult(&reader, &result) ||
          reader.position() != message.body.size()) {
        entry->done = true;
        entry->migrated = true;
        --open_;
        entry->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(
                "undecodable result from " + label_ + " (request " +
                std::to_string(message.request_id) + ")")));
        break;
      }
      result.index = static_cast<int>(entry - pending_.data());
      entry->done = true;
      entry->result = result;
      --open_;
      entry->promise.set_value(std::move(result));
      break;
    }
    case MsgType::kTaskError: {
      Pending* entry = find_pending();
      if (entry == nullptr || entry->done || entry->migrated) break;
      entry->done = true;
      entry->result.index = static_cast<int>(entry - pending_.data());
      --open_;
      entry->promise.set_exception(std::make_exception_ptr(
          std::runtime_error(TextOf(message.body))));
      break;
    }
    case MsgType::kSnapshot: {
      Pending* entry = find_pending();
      if (entry == nullptr || entry->done || entry->migrated) break;
      entry->frame = std::move(message.body);
      ++snapshots_received_;
      break;
    }
    case MsgType::kSuspended: {
      Pending* entry = find_pending();
      if (entry == nullptr || entry->done || entry->migrated) break;
      WireTask wire;
      std::string why;
      if (!DecodeWireTask(message.body, &wire, &why)) {
        entry->done = true;
        entry->migrated = true;
        --open_;
        entry->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(
                "undecodable suspended task from " + label_ + ": " + why)));
        if (message.request_id == suspend_request_) suspend_failed_ = true;
        break;
      }
      entry->migrated = true;
      --open_;
      if (message.request_id == suspend_request_) {
        suspend_result_ =
            ToSuspendedTask(std::move(wire), std::move(entry->promise));
        suspend_result_->origin = label_;
      } else {
        // A suspended task nobody is waiting for (stale rendezvous):
        // dropping the frame would strand the submitter, so fail loudly.
        entry->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(
                "unrequested suspension from " + label_)));
      }
      break;
    }
    case MsgType::kSuspendFail:
      if (message.request_id == suspend_request_) suspend_failed_ = true;
      break;
    case MsgType::kReject: {
      Pending* entry = find_pending();
      if (entry == nullptr || entry->done || entry->migrated) break;
      entry->done = true;
      entry->migrated = true;
      entry->result.index = static_cast<int>(entry - pending_.data());
      --open_;
      entry->promise.set_exception(std::make_exception_ptr(
          std::runtime_error("task rejected by " + label_ + ": " +
                             TextOf(message.body))));
      break;
    }
    case MsgType::kBye:
      bye_received_ = true;
      break;
    case MsgType::kPing:
      break;
    default:
      // Router-to-shard request types have no business arriving here;
      // ignore rather than kill a healthy connection.
      break;
  }
  cv_.NotifyAll();
  (void)lock;
}

void RemoteShard::ReceiverLoop() {
  auto now_millis = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  int64_t last_rx = now_millis();
  for (;;) {
    std::vector<uint8_t> payload;
    net::IoStatus status = channel_.Recv(&payload, config_.recv_poll_ms);
    {
      MutexLock lock(mu_);
      if (dead_) return;
      if (status == net::IoStatus::kOk) {
        last_rx = now_millis();
        Message message;
        std::string why;
        if (DecodeMessage(payload, &message, &why)) {
          HandleMessage(lock, std::move(message));
        }
        // An undecodable message over a CRC-clean channel is a peer bug;
        // tolerated — the silence timeout still guards a wedged peer.
        continue;
      }
      if (status == net::IoStatus::kTimeout) {
        if (config_.silence_timeout_ms > 0 && !stopping_ &&
            now_millis() - last_rx > config_.silence_timeout_ms) {
          lock.Unlock();
          MarkDead("silence timeout (" +
                   std::to_string(config_.silence_timeout_ms) + " ms)");
          return;
        }
        continue;
      }
      // kClosed / kError.
      if (stopping_ || bye_received_) {
        cv_.NotifyAll();
        return;
      }
    }
    MarkDead(status == net::IoStatus::kClosed
                 ? "connection closed by shard"
                 : "transport error: " + channel_.last_error());
    return;
  }
}

bool RemoteShard::SendRequest(uint8_t type, uint64_t request_id,
                              std::vector<uint8_t> body) {
  Message message;
  message.type = static_cast<MsgType>(type);
  message.request_id = request_id;
  message.body = std::move(body);
  MutexLock send_lock(send_mu_);
  return channel_.Send(EncodeMessage(message)) == net::IoStatus::kOk;
}

bool RemoteShard::SubmitFrame(std::vector<uint8_t> frame,
                              std::promise<BatchTaskResult>* promise) {
  uint64_t request_id;
  {
    MutexLock lock(mu_);
    if (dead_ || stopping_) return false;
    request_id = next_request_id_++;
  }
  // The promise is moved from only after the frame is on the wire, so a
  // refused send leaves the caller's task (and its reply channel) intact.
  if (!SendRequest(static_cast<uint8_t>(MsgType::kSubmit), request_id,
                   frame)) {
    return false;
  }
  MutexLock lock(mu_);
  Pending entry;
  entry.request_id = request_id;
  entry.promise = std::move(*promise);
  entry.frame = std::move(frame);
  index_by_request_[request_id] = pending_.size();
  pending_.push_back(std::move(entry));
  ++open_;
  return true;
}

std::optional<std::future<BatchTaskResult>> RemoteShard::Submit(
    const BatchTask& task) {
  {
    MutexLock lock(mu_);
    if (!started_ || dead_ || stopping_) return std::nullopt;
  }
  std::promise<BatchTaskResult> promise;
  std::future<BatchTaskResult> future = promise.get_future();
  if (!SubmitFrame(EncodeWireTask(MakeWireTask(task)), &promise)) {
    return std::nullopt;
  }
  return future;
}

bool RemoteShard::Resume(SuspendedTask& task) {
  {
    MutexLock lock(mu_);
    if (!started_ || dead_ || stopping_) return false;
  }
  std::vector<uint8_t> frame = EncodeWireTask(MakeWireTask(task));
  // SubmitFrame moves the promise only once the frame is sent, so a
  // refusal leaves `task` fully intact for a retry elsewhere.
  if (!SubmitFrame(std::move(frame), &task.promise)) return false;
  task.MarkConsumed();
  return true;
}

std::optional<SuspendedTask> RemoteShard::Suspend(size_t submission_index) {
  uint64_t request_id = 0;
  {
    MutexLock lock(mu_);
    if (!started_ || dead_ || stopping_) return std::nullopt;
    if (submission_index >= pending_.size()) return std::nullopt;
    Pending& entry = pending_[submission_index];
    if (entry.done || entry.migrated) return std::nullopt;
    request_id = entry.request_id;
    suspend_request_ = request_id;
    suspend_result_.reset();
    suspend_failed_ = false;
  }
  if (!SendRequest(static_cast<uint8_t>(MsgType::kSuspend), request_id,
                   {})) {
    MutexLock lock(mu_);
    suspend_request_ = 0;
    return std::nullopt;
  }
  MutexLock lock(mu_);
  cv_.WaitFor(lock, std::chrono::milliseconds(config_.op_timeout_ms),
              [this]() REQUIRES(mu_) {
                return suspend_result_.has_value() || suspend_failed_ ||
                       dead_;
              });
  suspend_request_ = 0;
  if (!suspend_result_.has_value()) return std::nullopt;
  std::optional<SuspendedTask> result = std::move(suspend_result_);
  suspend_result_.reset();
  return result;
}

void RemoteShard::Drain() {
  MutexLock lock(mu_);
  cv_.Wait(lock, [this]() REQUIRES(mu_) { return open_ == 0 || dead_; });
}

BatchReport RemoteShard::Stop() {
  bool send_shutdown = false;
  {
    MutexLock lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      send_shutdown = started_ && !dead_;
    }
  }
  if (send_shutdown) {
    if (SendRequest(static_cast<uint8_t>(MsgType::kShutdown), 0, {})) {
      MutexLock lock(mu_);
      cv_.WaitFor(lock, std::chrono::milliseconds(config_.op_timeout_ms),
                  [this]() REQUIRES(mu_) {
                    return (bye_received_ && open_ == 0) || dead_;
                  });
    }
  }
  // Shutdown, not Close: the receiver may be mid-Recv on this channel.
  channel_.Shutdown();
  if (receiver_.joinable()) receiver_.join();
  channel_.Close();

  MutexLock lock(mu_);
  BatchReport report;
  report.tasks.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& entry = pending_[i];
    if (entry.done && !entry.migrated) {
      report.tasks.push_back(entry.result);
      continue;
    }
    if (!entry.done && !entry.migrated) {
      // Defensive: a live task at Stop() means the shutdown handshake was
      // cut short (dead connection without a failover). Its submitter gets
      // an explicit error; the report keeps a migrated stub so indexes
      // stay aligned.
      entry.migrated = true;
      entry.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("task lost with " + label_ +
                             " (local index " + std::to_string(i) + ")" +
                             (death_reason_.empty()
                                  ? ""
                                  : " [" + death_reason_ + "]"))));
    }
    BatchTaskResult stub;
    stub.index = static_cast<int>(i);
    stub.migrated = true;
    report.tasks.push_back(std::move(stub));
  }
  report.num_threads = 1;
  report.Aggregate();
  return report;
}

size_t RemoteShard::submitted_count() const {
  MutexLock lock(mu_);
  return pending_.size();
}

bool RemoteShard::alive() const {
  MutexLock lock(mu_);
  return !dead_;
}

std::vector<OrphanTask> RemoteShard::TakeOrphans() {
  MutexLock lock(mu_);
  std::vector<OrphanTask> orphans;
  if (!dead_) return orphans;
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& entry = pending_[i];
    if (entry.done || entry.migrated) continue;
    OrphanTask orphan;
    orphan.local_index = i;
    orphan.request_id = entry.request_id;
    orphan.frame = std::move(entry.frame);
    orphan.promise = std::move(entry.promise);
    orphans.push_back(std::move(orphan));
    entry.migrated = true;
    --open_;
  }
  cv_.NotifyAll();
  return orphans;
}

size_t RemoteShard::snapshots_received() const {
  MutexLock lock(mu_);
  return snapshots_received_;
}

std::string RemoteShard::death_reason() const {
  MutexLock lock(mu_);
  return death_reason_;
}

}  // namespace moqo
