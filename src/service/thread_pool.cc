#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace moqo {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_cv_.Wait(lock, [this]() REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(lock,
                    [this]() REQUIRES(mu_) { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace moqo
