// Wire format for shipping optimization tasks between service shards.
//
// A wire frame is a self-describing byte string carrying everything a
// shard needs to run (or continue) one optimization task: the full query
// (catalog + join graph, rebuilt value-for-value on the receiving side),
// the task configuration (seed, original deadline window), the unexpired
// deadline remainder and accumulated runtime of a mid-run task, and
// optionally an OptimizerSession checkpoint of its mid-run state. It is
// what the in-process ShardRouter (service/shard_router.h) round-trips on
// every rebalance, and what a cross-process transport would put on the
// socket unchanged.
//
// Framing reuses the checkpoint substrate (core/checkpoint.h): fixed-width
// little-endian primitives behind CheckpointWriter/Reader, a magic/version
// header, and — because wire frames cross process and machine boundaries
// where corruption is a when, not an if — a CRC32 trailer over the whole
// body. DecodeWireTask() verifies the CRC before parsing, validates every
// field range, and requires full buffer consumption: a frame with trailing
// bytes after a well-formed payload is rejected as corrupt, never
// silently accepted.
//
// Determinism: the frame stores doubles bit-exactly and the decoder
// rebuilds the query through the same value types, so a session checkpoint
// restored against the rebuilt query continues bitwise identically to one
// that never crossed the wire (gated by tests/wire_test.cc and
// bench/shard_throughput.cc).
#ifndef MOQO_SERVICE_WIRE_H_
#define MOQO_SERVICE_WIRE_H_

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

namespace moqo {

/// First bytes of every wire frame ("MOQW" little-endian).
inline constexpr uint32_t kWireMagic = 0x57514f4du;

/// Bumped whenever the frame layout changes; DecodeWireTask() rejects
/// other versions. Version 2 added the canonical query fingerprint after
/// the seed, so per-shard frontier caches reuse the router's
/// canonicalization instead of recomputing it.
inline constexpr uint32_t kWireVersion = 2;

/// One optimization task in transportable form: everything a SuspendedTask
/// carries except the promise, which is the submitter-side reply channel
/// and never crosses the wire (a transport pairs a decoded frame with its
/// own reply path; in-process, ToSuspendedTask() re-attaches the original
/// promise).
struct WireTask {
  /// The query (rebuilt from the frame on decode) + seed + the task's
  /// original deadline window.
  BatchTask task;
  /// True if the task runs under a wall-clock deadline.
  bool had_deadline = false;
  /// Unexpired window at suspension time (the full window for a task that
  /// never ran), re-armed by OnlineScheduler::Resume().
  int64_t remaining_micros = 0;
  /// Slice time accumulated before the hop, carried into the destination's
  /// accounting.
  double optimize_millis = 0.0;
  /// Steps executed before the hop (also inside the checkpoint; exposed
  /// for logs).
  int64_t steps = 0;
  /// OptimizerSession::Checkpoint() of the mid-run state; empty if the
  /// task never ran a slice, in which case the destination begins the
  /// session from scratch with the task's own seed.
  std::vector<uint8_t> checkpoint;
};

/// Wraps a fresh, not-yet-admitted task (full deadline window remaining,
/// no checkpoint).
WireTask MakeWireTask(const BatchTask& task);

/// Wraps a task drained off a scheduler by Suspend(). Copies everything
/// except the promise, which stays with the caller.
WireTask MakeWireTask(const SuspendedTask& task);

/// Wraps a periodic checkpoint snapshot of a still-running task (the
/// recovery state a supervisor replays after a shard death).
WireTask MakeWireTask(const TaskSnapshot& snapshot);

/// Serializes `task` into a framed byte string:
/// magic, version, query, seed, deadline, remainder, accounting,
/// checkpoint bytes, CRC32 trailer over everything before it.
std::vector<uint8_t> EncodeWireTask(const WireTask& task);

/// Mirrors EncodeWireTask. Returns false — leaving `out` untouched — on
/// any malformation: short frame, CRC mismatch, wrong magic or version,
/// invalid query records, out-of-range fields, a payload that reads past
/// the frame, or trailing bytes after the payload (the frame must be
/// consumed exactly). The embedded session checkpoint is opaque here; it
/// is validated against the rebuilt query by OptimizerSession::Restore()
/// at resume time.
bool DecodeWireTask(const std::vector<uint8_t>& frame, WireTask* out);

/// As above, additionally reporting *why* a frame was rejected ("CRC
/// mismatch", "invalid query record", …) so failover diagnostics can name
/// the failure next to the shard id / route key context the caller adds.
/// `why` is untouched on success and may be null.
bool DecodeWireTask(const std::vector<uint8_t>& frame, WireTask* out,
                    std::string* why);

/// Rebuilds a scheduler-resumable task from a decoded frame plus the
/// reply channel (in-process: the promise carried out of Suspend(); a
/// cross-process transport would mint a promise whose future it forwards
/// back over its own connection).
SuspendedTask ToSuspendedTask(WireTask&& wire,
                              std::promise<BatchTaskResult> promise);

/// The task's canonical query fingerprint: returns the stamped
/// BatchTask::fingerprint when present, computing QueryFingerprint(query)
/// otherwise. Layers that already paid for canonicalization (the router on
/// Submit, the wire decoder) stamp the field so everything downstream hits
/// the cached value.
uint64_t FingerprintOf(const BatchTask& task);

/// Derives the placement key from the layered identity: a seed-mixed
/// finalization of the canonical fingerprint (fingerprint ⊕ seed). Same
/// (query shape, seed) always lands on the same key — and therefore the
/// same consistent-hash shard — across processes and runs, while repeats
/// of one shape under different seeds still spread over the ring.
uint64_t DeriveRouteKey(uint64_t fingerprint, uint64_t seed);

/// Stable 64-bit placement key of a task:
/// DeriveRouteKey(FingerprintOf(task), task.seed). Identical across
/// processes and runs, so every router instance agrees where a task
/// lives — the property consistent hashing needs.
uint64_t RouteKey(const BatchTask& task);

/// Renders a route key the way every diagnostic message spells it
/// ("0x" + 16 hex digits), so failover errors and logs agree.
std::string RouteKeyString(uint64_t key);

/// Serializes a task result — the shard-to-router half of the transport —
/// as checkpoint-substrate fields: counters, flags, and the frontier's
/// cost vectors bit-exactly. `index` is scheduler-local and deliberately
/// not carried: the receiving side re-stamps its own submission index.
void EncodeTaskResult(CheckpointWriter* writer,
                      const BatchTaskResult& result);

/// Mirrors EncodeTaskResult. Returns false (clearing nothing) on a
/// truncated record, an oversized frontier, or out-of-range fields.
bool DecodeTaskResult(CheckpointReader* reader, BatchTaskResult* out);

}  // namespace moqo

#endif  // MOQO_SERVICE_WIRE_H_
