// Plan cost vectors and Pareto-dominance relations between them.
//
// A plan's cost is a vector with one non-negative component per cost metric
// (Section 3 of the paper). Following the paper and its predecessors, the
// number of metrics l is treated as a small constant; we support up to
// kMaxMetrics components stored inline.
#ifndef MOQO_COST_COST_VECTOR_H_
#define MOQO_COST_COST_VECTOR_H_

#include <array>
#include <cassert>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace moqo {

/// Upper bound on plan cost components. Costs are clamped here so that
/// products and sums of pathological (cross-product-heavy) plans never
/// overflow IEEE doubles to +infinity, which would make Pareto dominance
/// ill-defined.
inline constexpr double kMaxCost = 1e290;

/// A fixed-capacity vector of cost values, one per metric.
class CostVector {
 public:
  static constexpr int kMaxMetrics = 4;

  /// Zero vector with `size` components.
  explicit CostVector(int size = 0) : size_(size) {
    assert(size >= 0 && size <= kMaxMetrics);
    values_.fill(0.0);
  }

  /// Vector with the given components.
  CostVector(std::initializer_list<double> values) : size_(0) {
    values_.fill(0.0);
    for (double v : values) {
      assert(size_ < kMaxMetrics);
      values_[static_cast<size_t>(size_++)] = v;
    }
  }

  /// Number of metrics.
  int size() const { return size_; }

  /// Component accessor.
  double operator[](int i) const {
    assert(i >= 0 && i < size_);
    return values_[static_cast<size_t>(i)];
  }

  /// Mutable component accessor.
  double& operator[](int i) {
    assert(i >= 0 && i < size_);
    return values_[static_cast<size_t>(i)];
  }

  /// Component-wise sum (sizes must match).
  CostVector operator+(const CostVector& o) const {
    assert(size_ == o.size_);
    CostVector r(size_);
    for (int i = 0; i < size_; ++i) {
      r.values_[static_cast<size_t>(i)] =
          values_[static_cast<size_t>(i)] + o.values_[static_cast<size_t>(i)];
    }
    return r.Clamped();
  }

  /// Returns a copy with every component clamped to [0, kMaxCost].
  CostVector Clamped() const;

  /// Weak Pareto dominance: this <= other in every component.
  bool WeakDominates(const CostVector& other) const;

  /// Strict Pareto dominance: weak dominance plus strictly lower in at
  /// least one component (i.e., the vectors are not equal).
  bool StrictlyDominates(const CostVector& other) const;

  /// Approximate dominance with factor alpha >= 1: this <= alpha * other
  /// component-wise (the paper's `p1 \preceq_alpha p2`).
  bool ApproxDominates(const CostVector& other, double alpha) const;

  /// True iff all components are equal.
  bool EqualTo(const CostVector& other) const;

  /// Sum of components; a convenient monotone scalarization used by tests
  /// and by termination arguments (strict dominance strictly lowers it).
  double Sum() const;

  /// Maximum component ratio max_i(this[i] / other[i]); used by the
  /// epsilon/alpha approximation-error indicator. Components where both
  /// values are zero contribute 1; zero `other` with positive `this`
  /// contributes +infinity.
  double MaxRatioOver(const CostVector& other) const;

  /// Renders e.g. "(12.5, 3e4)" for debugging.
  std::string ToString() const;

  /// Raw component storage (size() leading entries are meaningful). Used by
  /// the struct-of-arrays dominance kernels in cost_matrix.h.
  const double* data() const { return values_.data(); }

 private:
  std::array<double, kMaxMetrics> values_;
  int size_;
};

/// True iff a[i] <= b[i] in every one of the kMaxMetrics lanes. Both inputs
/// must be kMaxMetrics doubles with unused trailing lanes zero (the
/// invariant CostVector and CostMatrix maintain): padding lanes then
/// contribute 0 <= 0 and never change the verdict. Evaluating all lanes
/// unconditionally removes the trip-count and early-exit branches of the
/// scalar relations, and on x86-64 compiles to two packed compares; the
/// verdict is identical to the scalar `<=` loop (CMPLEPD, like scalar
/// comparison, is false on NaN — and costs are clamped so NaN never
/// appears).
inline bool AllLanesLE(const double* a, const double* b) {
  static_assert(CostVector::kMaxMetrics == 4,
                "dominance kernels assume 4 cost lanes");
#if defined(__SSE2__)
  const __m128d a0 = _mm_loadu_pd(a);
  const __m128d a1 = _mm_loadu_pd(a + 2);
  const __m128d b0 = _mm_loadu_pd(b);
  const __m128d b1 = _mm_loadu_pd(b + 2);
  return (_mm_movemask_pd(_mm_cmple_pd(a0, b0)) &
          _mm_movemask_pd(_mm_cmple_pd(a1, b1))) == 0x3;
#else
  bool le = true;
  for (int i = 0; i < CostVector::kMaxMetrics; ++i) le &= a[i] <= b[i];
  return le;
#endif
}

/// Fused one-pass dominance comparison between two kMaxMetrics-wide cost
/// rows: sets *a_le_b iff a weakly dominates b and *b_le_a iff b weakly
/// dominates a. From those two bits every relation follows: equal = both,
/// a strictly dominates b = *a_le_b && !*b_le_a. Costs are clamped at
/// construction, so components are never NaN and `<=` is a total order per
/// component.
inline void DominanceCompare(const double* a, const double* b, bool* a_le_b,
                             bool* b_le_a) {
  *a_le_b = AllLanesLE(a, b);
  *b_le_a = AllLanesLE(b, a);
}

}  // namespace moqo

#endif  // MOQO_COST_COST_VECTOR_H_
