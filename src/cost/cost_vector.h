// Plan cost vectors and Pareto-dominance relations between them.
//
// A plan's cost is a vector with one non-negative component per cost metric
// (Section 3 of the paper). Following the paper and its predecessors, the
// number of metrics l is treated as a small constant; we support up to
// kMaxMetrics components stored inline.
#ifndef MOQO_COST_COST_VECTOR_H_
#define MOQO_COST_COST_VECTOR_H_

#include <array>
#include <cassert>
#include <string>

namespace moqo {

/// Upper bound on plan cost components. Costs are clamped here so that
/// products and sums of pathological (cross-product-heavy) plans never
/// overflow IEEE doubles to +infinity, which would make Pareto dominance
/// ill-defined.
inline constexpr double kMaxCost = 1e290;

/// A fixed-capacity vector of cost values, one per metric.
class CostVector {
 public:
  static constexpr int kMaxMetrics = 4;

  /// Zero vector with `size` components.
  explicit CostVector(int size = 0) : size_(size) {
    assert(size >= 0 && size <= kMaxMetrics);
    values_.fill(0.0);
  }

  /// Vector with the given components.
  CostVector(std::initializer_list<double> values) : size_(0) {
    values_.fill(0.0);
    for (double v : values) {
      assert(size_ < kMaxMetrics);
      values_[static_cast<size_t>(size_++)] = v;
    }
  }

  /// Number of metrics.
  int size() const { return size_; }

  /// Component accessor.
  double operator[](int i) const {
    assert(i >= 0 && i < size_);
    return values_[static_cast<size_t>(i)];
  }

  /// Mutable component accessor.
  double& operator[](int i) {
    assert(i >= 0 && i < size_);
    return values_[static_cast<size_t>(i)];
  }

  /// Component-wise sum (sizes must match).
  CostVector operator+(const CostVector& o) const {
    assert(size_ == o.size_);
    CostVector r(size_);
    for (int i = 0; i < size_; ++i) {
      r.values_[static_cast<size_t>(i)] =
          values_[static_cast<size_t>(i)] + o.values_[static_cast<size_t>(i)];
    }
    return r.Clamped();
  }

  /// Returns a copy with every component clamped to [0, kMaxCost].
  CostVector Clamped() const;

  /// Weak Pareto dominance: this <= other in every component.
  bool WeakDominates(const CostVector& other) const;

  /// Strict Pareto dominance: weak dominance plus strictly lower in at
  /// least one component (i.e., the vectors are not equal).
  bool StrictlyDominates(const CostVector& other) const;

  /// Approximate dominance with factor alpha >= 1: this <= alpha * other
  /// component-wise (the paper's `p1 \preceq_alpha p2`).
  bool ApproxDominates(const CostVector& other, double alpha) const;

  /// True iff all components are equal.
  bool EqualTo(const CostVector& other) const;

  /// Sum of components; a convenient monotone scalarization used by tests
  /// and by termination arguments (strict dominance strictly lowers it).
  double Sum() const;

  /// Maximum component ratio max_i(this[i] / other[i]); used by the
  /// epsilon/alpha approximation-error indicator. Components where both
  /// values are zero contribute 1; zero `other` with positive `this`
  /// contributes +infinity.
  double MaxRatioOver(const CostVector& other) const;

  /// Renders e.g. "(12.5, 3e4)" for debugging.
  std::string ToString() const;

 private:
  std::array<double, kMaxMetrics> values_;
  int size_;
};

}  // namespace moqo

#endif  // MOQO_COST_COST_VECTOR_H_
