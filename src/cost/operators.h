// Physical scan and join operators.
//
// The paper's plan space (Section 3) selects a join order plus a scan
// operator per base table and a join operator per join. Pareto tradeoffs at
// a fixed join order arise from operator *variants* that consume different
// amounts of buffer memory (footnote 2, Section 4.3): we provide nested-loop
// joins, block-nested-loop joins at two buffer budgets, hash joins at three
// memory budgets, and sort-merge joins at two budgets.
//
// Operators also determine the *data representation* of their output (the
// `SameOutput` test in Algorithms 2 and 3): sort-based operators emit sorted
// streams, everything else emits unsorted pipelined tuples. Representation
// matters upstream: sort-merge joins skip the sort phase for pre-sorted
// inputs.
#ifndef MOQO_COST_OPERATORS_H_
#define MOQO_COST_OPERATORS_H_

#include <string>
#include <vector>

namespace moqo {

/// Physical scan algorithms.
enum class ScanAlgorithm {
  /// Sequential heap scan; fastest per page, needs a prefetch buffer.
  kFullScan,
  /// Index-order scan; slower per page and needs no buffer, but emits its
  /// output sorted. Only applicable if the table has an index.
  kIndexScan,
};

/// Physical join algorithms (variants encode buffer budgets).
enum class JoinAlgorithm {
  /// Tuple nested loop; minimal buffer, quadratic page cost.
  kNestedLoop,
  /// Block nested loop with a small block buffer.
  kBlockNestedLoopSmall,
  /// Block nested loop with a large block buffer.
  kBlockNestedLoopLarge,
  /// Hash join with a small memory budget (partitions to disk when the
  /// build side exceeds the budget).
  kHashSmall,
  /// Hash join with a medium memory budget.
  kHashMedium,
  /// Hash join with a large memory budget.
  kHashLarge,
  /// Sort-merge join with a small sort buffer; output is sorted.
  kSortMergeSmall,
  /// Sort-merge join with a large sort buffer; output is sorted.
  kSortMergeLarge,
};

/// Data representation of an operator's output stream; plans are only
/// comparable during pruning when their representations match.
enum class OutputFormat {
  kUnsorted,
  kSorted,
};

/// Number of distinct JoinAlgorithm values.
inline constexpr int kNumJoinAlgorithms = 8;

/// Number of distinct ScanAlgorithm values.
inline constexpr int kNumScanAlgorithms = 2;

/// All join algorithms, in enum order.
const std::vector<JoinAlgorithm>& AllJoinAlgorithms();

/// All scan algorithms, in enum order.
const std::vector<ScanAlgorithm>& AllScanAlgorithms();

/// Output representation of a scan.
OutputFormat FormatOf(ScanAlgorithm op);

/// Output representation of a join.
OutputFormat FormatOf(JoinAlgorithm op);

/// Buffer budget, in pages, granted to a join algorithm.
double BufferPages(JoinAlgorithm op);

/// Human-readable operator names ("hash-join(large)", "full-scan", ...).
std::string ToString(ScanAlgorithm op);
std::string ToString(JoinAlgorithm op);
std::string ToString(OutputFormat format);

}  // namespace moqo

#endif  // MOQO_COST_OPERATORS_H_
