#include "cost/cost_vector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace moqo {

CostVector CostVector::Clamped() const {
  CostVector r = *this;
  for (int i = 0; i < size_; ++i) {
    double& v = r.values_[static_cast<size_t>(i)];
    if (!(v >= 0.0)) v = 0.0;  // also catches NaN
    v = std::min(v, kMaxCost);
  }
  return r;
}

bool CostVector::WeakDominates(const CostVector& other) const {
  assert(size_ == other.size_);
  for (int i = 0; i < size_; ++i) {
    if (values_[static_cast<size_t>(i)] >
        other.values_[static_cast<size_t>(i)]) {
      return false;
    }
  }
  return true;
}

bool CostVector::StrictlyDominates(const CostVector& other) const {
  // One pass: weakly dominating and strictly lower somewhere. Equivalent to
  // WeakDominates(other) && !EqualTo(other), without walking the metrics
  // twice (this is the hottest comparison in the optimizer).
  assert(size_ == other.size_);
  bool strictly_lower = false;
  for (int i = 0; i < size_; ++i) {
    const double a = values_[static_cast<size_t>(i)];
    const double b = other.values_[static_cast<size_t>(i)];
    if (a > b) return false;
    strictly_lower |= a < b;
  }
  return strictly_lower;
}

bool CostVector::ApproxDominates(const CostVector& other, double alpha) const {
  assert(size_ == other.size_);
  for (int i = 0; i < size_; ++i) {
    if (values_[static_cast<size_t>(i)] >
        alpha * other.values_[static_cast<size_t>(i)]) {
      return false;
    }
  }
  return true;
}

bool CostVector::EqualTo(const CostVector& other) const {
  assert(size_ == other.size_);
  for (int i = 0; i < size_; ++i) {
    if (values_[static_cast<size_t>(i)] !=
        other.values_[static_cast<size_t>(i)]) {
      return false;
    }
  }
  return true;
}

double CostVector::Sum() const {
  double s = 0.0;
  for (int i = 0; i < size_; ++i) s += values_[static_cast<size_t>(i)];
  return s;
}

double CostVector::MaxRatioOver(const CostVector& other) const {
  assert(size_ == other.size_);
  double worst = 0.0;
  for (int i = 0; i < size_; ++i) {
    double a = values_[static_cast<size_t>(i)];
    double r = other.values_[static_cast<size_t>(i)];
    double ratio;
    if (r > 0.0) {
      ratio = a / r;
    } else {
      ratio = (a == 0.0) ? 1.0 : std::numeric_limits<double>::infinity();
    }
    worst = std::max(worst, ratio);
  }
  return worst;
}

std::string CostVector::ToString() const {
  std::ostringstream out;
  out << '(';
  for (int i = 0; i < size_; ++i) {
    if (i > 0) out << ", ";
    out << values_[static_cast<size_t>(i)];
  }
  out << ')';
  return out.str();
}

}  // namespace moqo
