#include "cost/cost_matrix.h"

#include <algorithm>

namespace moqo {

void CostMatrix::Compact(const std::vector<std::uint8_t>& keep) {
  assert(keep.size() == rows_);
  const size_t stride = static_cast<size_t>(CostVector::kMaxMetrics);
  size_t out = 0;
  for (size_t r = 0; r < rows_; ++r) {
    if (!keep[r]) continue;
    if (out != r) {
      std::copy_n(data_.data() + r * stride, stride,
                  data_.data() + out * stride);
    }
    ++out;
  }
  rows_ = out;
  data_.resize(rows_ * stride);
}

void CostMatrix::EraseRow(size_t r) {
  assert(r < rows_);
  const size_t stride = static_cast<size_t>(CostVector::kMaxMetrics);
  data_.erase(data_.begin() + static_cast<std::ptrdiff_t>(r * stride),
              data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * stride));
  --rows_;
}

}  // namespace moqo
