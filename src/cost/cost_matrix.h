// Struct-of-arrays cost storage for dominance sweeps.
//
// Archives and frontiers compare one candidate cost vector against *every*
// archived vector on each insert. Stored as one CostVector per plan node,
// each comparison dereferences a plan pointer and runs short scalar loops
// with early-outs — cache-hostile and branch-heavy. A CostMatrix keeps the
// same vectors as one contiguous row-major double array (row per plan,
// column per metric), so a sweep is a single linear pass over flat doubles
// computing the fused dominance bits of DominanceCompare (cost_vector.h).
//
// The matrix mirrors an owner's plan vector: rows are appended in insert
// order and compacted with an order-preserving keep mask, exactly matching
// `erase(remove_if(...))` over the plan vector. Comparison results are
// bit-identical to the scalar CostVector relations (same doubles, same
// comparisons), so frontiers are unchanged — only the loop shape differs.
#ifndef MOQO_COST_COST_MATRIX_H_
#define MOQO_COST_COST_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cost/cost_vector.h"

namespace moqo {

/// Row-major matrix of cost vectors: row per plan, column per metric. The
/// metric count is fixed by the first appended row and persists across
/// Clear() so a reused matrix stays consistent.
class CostMatrix {
 public:
  CostMatrix() = default;

  /// Number of metrics per row (0 until the first row is appended).
  int metrics() const { return metrics_; }

  /// Number of rows.
  size_t rows() const { return rows_; }

  /// True if the matrix has no rows.
  bool empty() const { return rows_ == 0; }

  /// Appends `v` as the last row. All rows must have identical size.
  /// Rows are stored at a fixed kMaxMetrics stride with unused trailing
  /// lanes zero (CostVector zero-fills its padding), so DominanceCompare
  /// can run branch-free over all lanes.
  void PushRow(const CostVector& v) {
    if (rows_ == 0 && metrics_ == 0) metrics_ = v.size();
    assert(v.size() == metrics_);
    data_.insert(data_.end(), v.data(),
                 v.data() + CostVector::kMaxMetrics);
    ++rows_;
  }

  /// Flat row accessor (kMaxMetrics doubles; the metrics() leading lanes
  /// are live, the rest are zero).
  const double* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * static_cast<size_t>(CostVector::kMaxMetrics);
  }

  /// Copies row `r` back into CostVector form.
  CostVector RowVector(size_t r) const {
    const double* row = Row(r);
    CostVector v(metrics_);
    for (int i = 0; i < metrics_; ++i) v[i] = row[i];
    return v;
  }

  /// Removes all rows, keeping the metric count.
  void Clear() {
    data_.clear();
    rows_ = 0;
  }

  /// Keeps exactly the rows with keep[r] != 0, preserving their order —
  /// the SoA equivalent of erase(remove_if(...)) on the mirrored vector.
  void Compact(const std::vector<std::uint8_t>& keep);

  /// Removes the single row `r`, preserving the order of the others.
  void EraseRow(size_t r);

 private:
  std::vector<double> data_;
  size_t rows_ = 0;
  int metrics_ = 0;
};

}  // namespace moqo

#endif  // MOQO_COST_COST_MATRIX_H_
