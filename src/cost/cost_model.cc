#include "cost/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace moqo {

std::string ToString(Metric metric) {
  switch (metric) {
    case Metric::kTime:
      return "time";
    case Metric::kBuffer:
      return "buffer";
    case Metric::kDisk:
      return "disk";
    case Metric::kEnergy:
      return "energy";
    case Metric::kMoney:
      return "money";
  }
  return "metric?";
}

const std::vector<Metric>& DefaultMetricPool() {
  static const std::vector<Metric> kPool = {Metric::kTime, Metric::kBuffer,
                                            Metric::kDisk};
  return kPool;
}

CostModel::CostModel(std::vector<Metric> metrics)
    : metrics_(std::move(metrics)) {
  assert(!metrics_.empty());
  assert(static_cast<int>(metrics_.size()) <= CostVector::kMaxMetrics);
}

double CostModel::Pages(double card, double bytes) {
  return std::max(1.0, card * bytes / kPageBytes);
}

bool CostModel::ScanApplicable(const TableStats& stats,
                               ScanAlgorithm op) const {
  switch (op) {
    case ScanAlgorithm::kFullScan:
      return true;
    case ScanAlgorithm::kIndexScan:
      return stats.has_index;
  }
  return false;
}

CostVector CostModel::ScanCost(const TableStats& stats,
                               ScanAlgorithm op) const {
  double pages = Pages(stats.cardinality, stats.tuple_bytes);
  OpResources r;
  switch (op) {
    case ScanAlgorithm::kFullScan:
      // Sequential read with a prefetch window.
      r.time = pages;
      r.buffer = 4.0;
      r.disk = 1.0;
      break;
    case ScanAlgorithm::kIndexScan:
      // Index-order access: dependent page reads are ~2x slower and pay a
      // per-tuple pointer chase, but need only a single buffer page and
      // deliver sorted output (exploited by sort-merge joins upstream).
      r.time = 2.0 * pages + 1e-3 * stats.cardinality;
      r.buffer = 1.0;
      r.disk = 1.0;
      break;
  }
  return Project(r);
}

namespace {

// External-sort resource consumption for `pages` input pages with `buffer`
// pages of working memory: zero-pass if the input fits, otherwise run
// generation plus log_{B-1} merge passes with all runs spilled to disk.
struct SortCost {
  double time = 0.0;
  double spill = 0.0;
};

SortCost ExternalSort(double pages, double buffer) {
  SortCost s;
  if (pages <= buffer) {
    // In-memory sort: CPU only, charged as a fraction of a scan.
    s.time = 0.2 * pages;
    s.spill = 0.0;
    return s;
  }
  double runs = std::ceil(pages / buffer);
  double fan_in = std::max(2.0, buffer - 1.0);
  double passes = std::ceil(std::log(runs) / std::log(fan_in));
  passes = std::max(1.0, passes);
  // Each pass reads and writes the whole input.
  s.time = 2.0 * pages * (1.0 + passes);
  s.spill = 2.0 * pages;
  return s;
}

}  // namespace

CostVector CostModel::JoinCost(JoinAlgorithm op, double outer_card,
                               double outer_bytes, OutputFormat outer_format,
                               double inner_card, double inner_bytes,
                               OutputFormat inner_format,
                               double out_card) const {
  double pl = Pages(outer_card, outer_bytes);
  double pr = Pages(inner_card, inner_bytes);
  double buffer = BufferPages(op);
  // Per-tuple CPU work: probing/merging both inputs and emitting output.
  double cpu = 1e-3 * (outer_card + inner_card) + 5e-4 * out_card;
  cpu = std::min(cpu, kMaxCost);

  OpResources r;
  r.buffer = buffer;
  r.disk = 1.0;  // bookkeeping page; keeps every metric strictly positive

  switch (op) {
    case JoinAlgorithm::kNestedLoop:
      // One inner pass per outer page.
      r.time = pl + pl * pr + cpu;
      break;
    case JoinAlgorithm::kBlockNestedLoopSmall:
    case JoinAlgorithm::kBlockNestedLoopLarge: {
      double block = std::max(1.0, buffer - 2.0);
      r.time = pl + std::ceil(pl / block) * pr + cpu;
      break;
    }
    case JoinAlgorithm::kHashSmall:
    case JoinAlgorithm::kHashMedium:
    case JoinAlgorithm::kHashLarge:
      if (pl <= buffer) {
        // Build side fits in memory: one pass over each input.
        r.time = pl + pr + cpu;
      } else {
        // Grace hash: partition both inputs to disk, then join partitions.
        r.time = 3.0 * (pl + pr) + cpu;
        r.disk += 2.0 * (pl + pr);
      }
      break;
    case JoinAlgorithm::kSortMergeSmall:
    case JoinAlgorithm::kSortMergeLarge: {
      SortCost sl{0.0, 0.0};
      SortCost sr{0.0, 0.0};
      if (outer_format != OutputFormat::kSorted) {
        sl = ExternalSort(pl, buffer);
      }
      if (inner_format != OutputFormat::kSorted) {
        sr = ExternalSort(pr, buffer);
      }
      r.time = sl.time + sr.time + pl + pr + cpu;
      r.disk += sl.spill + sr.spill;
      break;
    }
  }
  return Project(r);
}

CostVector CostModel::Project(const OpResources& r) const {
  CostVector out(NumMetrics());
  for (int i = 0; i < NumMetrics(); ++i) {
    switch (metrics_[static_cast<size_t>(i)]) {
      case Metric::kTime:
        out[i] = std::max(1.0, r.time);
        break;
      case Metric::kBuffer:
        out[i] = std::max(1.0, r.buffer);
        break;
      case Metric::kDisk:
        out[i] = std::max(1.0, r.disk);
        break;
      case Metric::kEnergy:
        // I/O energy dominates; DRAM residency and spills contribute with
        // their own coefficients so energy is correlated with — but not
        // proportional to — time.
        out[i] = std::max(1.0, 0.3 * r.time + 0.002 * r.buffer +
                                   0.15 * r.disk);
        break;
      case Metric::kMoney:
        // Cloud pricing: compute time at one rate, rented working memory
        // at a steep rate (memory-optimized instances), temp storage
        // cheaply. The heavy buffer coefficient creates money-vs-time
        // tradeoffs across operator variants.
        out[i] = std::max(1.0, 0.05 * r.time + 0.5 * r.buffer +
                                   0.01 * r.disk);
        break;
    }
  }
  return out.Clamped();
}

}  // namespace moqo
