// Multi-metric cost model for scans and joins.
//
// The paper assumes "cost models for all considered cost metrics are
// available" (Section 3) and evaluates with the three metrics of Trummer &
// Koch (SIGMOD'14): execution time, buffer space consumption, and disk
// space consumption. We implement textbook formulas for these plus an
// optional energy metric (Xu et al., PVLDB'12 motivate energy as a query
// optimization objective):
//
//  * time   — page I/Os plus a per-tuple CPU term; operator variants with
//             more buffer run faster (fewer passes / larger blocks);
//  * buffer — pages of working memory held while the plan's pipeline runs;
//             combined additively over operators (worst-case concurrency);
//  * disk   — pages of temporary disk space (sort runs, hash partitions)
//             plus one bookkeeping page per operator, so every component is
//             strictly positive and approximation ratios stay well-defined;
//  * energy — a weighted mix of I/O work, CPU work, and DRAM residency.
//
// All metrics combine child costs additively (cost(plan) = cost(outer) +
// cost(inner) + opCost), which is monotone and therefore satisfies the
// multi-objective principle of optimality (Ganguly et al.) that Algorithm 2
// and the plan cache rely on: improving a sub-plan can never worsen the
// full plan.
#ifndef MOQO_COST_COST_MODEL_H_
#define MOQO_COST_COST_MODEL_H_

#include <string>
#include <vector>

#include "cost/cost_vector.h"
#include "cost/operators.h"
#include "query/catalog.h"

namespace moqo {

/// Cap on estimated intermediate-result cardinalities. Unconstrained bushy
/// plans over 100 tables can produce astronomical cross products; capping
/// keeps all downstream arithmetic finite without reordering any realistic
/// plan comparison.
inline constexpr double kMaxCardinality = 1e140;

/// Pages per buffer / disk unit.
inline constexpr double kPageBytes = 8192.0;

/// Cost metrics supported by the model.
enum class Metric {
  kTime,
  kBuffer,
  kDisk,
  /// Energy consumption (Xu et al., PVLDB'12): a weighted mix of I/O work,
  /// DRAM residency, and spill traffic.
  kEnergy,
  /// Monetary cost in a cloud setting (Kllapi et al., SIGMOD'11): compute
  /// time plus rented memory plus temp-storage fees, each at its own rate.
  kMoney,
};

/// Returns "time", "buffer", "disk", or "energy".
std::string ToString(Metric metric);

/// The full metric pool from which experiments sample (the paper samples
/// l metrics uniformly from {time, buffer, disk} per test case).
const std::vector<Metric>& DefaultMetricPool();

/// Computes per-operator and whole-plan cost vectors for a fixed list of
/// metrics. Stateless apart from the metric list; shared by all algorithms.
class CostModel {
 public:
  /// Builds a model over the given metrics (1..CostVector::kMaxMetrics).
  explicit CostModel(std::vector<Metric> metrics);

  /// Number of cost metrics l.
  int NumMetrics() const { return static_cast<int>(metrics_.size()); }

  /// The metric list, in component order.
  const std::vector<Metric>& metrics() const { return metrics_; }

  /// True if `op` may scan a table with the given statistics (index scans
  /// require an index).
  bool ScanApplicable(const TableStats& stats, ScanAlgorithm op) const;

  /// Cost vector of scanning a base table with `op`.
  CostVector ScanCost(const TableStats& stats, ScanAlgorithm op) const;

  /// Operator-local cost vector of joining inputs with the given
  /// cardinalities, tuple widths (bytes), and representations; `out_card`
  /// is the estimated join output cardinality.
  CostVector JoinCost(JoinAlgorithm op, double outer_card, double outer_bytes,
                      OutputFormat outer_format, double inner_card,
                      double inner_bytes, OutputFormat inner_format,
                      double out_card) const;

  /// Whole-plan combination: child costs plus operator cost, component-wise.
  CostVector Combine(const CostVector& outer, const CostVector& inner,
                     const CostVector& op) const {
    return (outer + inner + op).Clamped();
  }

  /// Pages occupied by `card` tuples of `bytes` bytes (>= 1).
  static double Pages(double card, double bytes);

 private:
  // Raw per-operator resource consumption, prior to metric projection.
  struct OpResources {
    double time = 0.0;
    double buffer = 0.0;
    double disk = 0.0;
  };

  CostVector Project(const OpResources& r) const;

  std::vector<Metric> metrics_;
};

}  // namespace moqo

#endif  // MOQO_COST_COST_MODEL_H_
