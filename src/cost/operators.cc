#include "cost/operators.h"

namespace moqo {

const std::vector<JoinAlgorithm>& AllJoinAlgorithms() {
  static const std::vector<JoinAlgorithm> kAll = {
      JoinAlgorithm::kNestedLoop,
      JoinAlgorithm::kBlockNestedLoopSmall,
      JoinAlgorithm::kBlockNestedLoopLarge,
      JoinAlgorithm::kHashSmall,
      JoinAlgorithm::kHashMedium,
      JoinAlgorithm::kHashLarge,
      JoinAlgorithm::kSortMergeSmall,
      JoinAlgorithm::kSortMergeLarge,
  };
  return kAll;
}

const std::vector<ScanAlgorithm>& AllScanAlgorithms() {
  static const std::vector<ScanAlgorithm> kAll = {
      ScanAlgorithm::kFullScan,
      ScanAlgorithm::kIndexScan,
  };
  return kAll;
}

OutputFormat FormatOf(ScanAlgorithm op) {
  switch (op) {
    case ScanAlgorithm::kFullScan:
      return OutputFormat::kUnsorted;
    case ScanAlgorithm::kIndexScan:
      return OutputFormat::kSorted;
  }
  return OutputFormat::kUnsorted;
}

OutputFormat FormatOf(JoinAlgorithm op) {
  switch (op) {
    case JoinAlgorithm::kSortMergeSmall:
    case JoinAlgorithm::kSortMergeLarge:
      return OutputFormat::kSorted;
    default:
      return OutputFormat::kUnsorted;
  }
}

double BufferPages(JoinAlgorithm op) {
  switch (op) {
    case JoinAlgorithm::kNestedLoop:
      return 2.0;
    case JoinAlgorithm::kBlockNestedLoopSmall:
      return 16.0;
    case JoinAlgorithm::kBlockNestedLoopLarge:
      return 256.0;
    case JoinAlgorithm::kHashSmall:
      return 64.0;
    case JoinAlgorithm::kHashMedium:
      return 1024.0;
    case JoinAlgorithm::kHashLarge:
      return 16384.0;
    case JoinAlgorithm::kSortMergeSmall:
      return 64.0;
    case JoinAlgorithm::kSortMergeLarge:
      return 1024.0;
  }
  return 2.0;
}

std::string ToString(ScanAlgorithm op) {
  switch (op) {
    case ScanAlgorithm::kFullScan:
      return "full-scan";
    case ScanAlgorithm::kIndexScan:
      return "index-scan";
  }
  return "scan?";
}

std::string ToString(JoinAlgorithm op) {
  switch (op) {
    case JoinAlgorithm::kNestedLoop:
      return "nested-loop";
    case JoinAlgorithm::kBlockNestedLoopSmall:
      return "block-nl(small)";
    case JoinAlgorithm::kBlockNestedLoopLarge:
      return "block-nl(large)";
    case JoinAlgorithm::kHashSmall:
      return "hash-join(small)";
    case JoinAlgorithm::kHashMedium:
      return "hash-join(medium)";
    case JoinAlgorithm::kHashLarge:
      return "hash-join(large)";
    case JoinAlgorithm::kSortMergeSmall:
      return "sort-merge(small)";
    case JoinAlgorithm::kSortMergeLarge:
      return "sort-merge(large)";
  }
  return "join?";
}

std::string ToString(OutputFormat format) {
  switch (format) {
    case OutputFormat::kUnsorted:
      return "unsorted";
    case OutputFormat::kSorted:
      return "sorted";
  }
  return "format?";
}

}  // namespace moqo
