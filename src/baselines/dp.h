// Dynamic-programming approximation schemes for multi-objective query
// optimization (the paper's "DP(alpha)" baselines; Trummer & Koch,
// SIGMOD'14).
//
// Classic bottom-up dynamic programming over table subsets, generalized to
// multiple cost metrics: for every table subset (in increasing cardinality
// order), all ordered splits into two disjoint non-empty subsets are
// combined with every join operator, and the resulting plan set is pruned
// with approximation factor alpha — exactly the pruning rule of the paper's
// Algorithm 3. DP(1) computes the exact Pareto plan set (used as the
// evaluation reference for small queries); larger alpha trades precision
// for speed; DP(infinity) keeps a single plan per subset and output format.
//
// Complexity is exponential in the number of tables (Section 2), so the
// optimizer checks the deadline throughout and returns an empty result if
// it cannot finish — reproducing the paper's observation that DP produces
// no output within the time budget for queries of 25+ tables.
#ifndef MOQO_BASELINES_DP_H_
#define MOQO_BASELINES_DP_H_

#include "core/optimizer.h"

namespace moqo {

/// Configuration for the DP approximation scheme.
struct DpConfig {
  /// Approximation factor alpha >= 1 (may be infinity).
  double alpha = 1.0;
  /// Hard guard on query size: beyond this many tables the subset lattice
  /// would not even fit in memory, so DP gives up immediately (the paper's
  /// DP baselines never finish for such sizes anyway).
  int max_tables = 20;
};

/// Multi-objective dynamic programming with alpha-pruning.
class DpOptimizer : public Optimizer {
 public:
  explicit DpOptimizer(DpConfig config = DpConfig()) : config_(config) {}

  std::string name() const override;

  /// Runs DP to completion or deadline. Invokes the callback exactly once,
  /// after the full frontier is available (DP is not anytime). Returns the
  /// final plan set, or empty if the deadline struck first.
  std::vector<PlanPtr> Optimize(PlanFactory* factory, Rng* rng,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) override;

  /// True if the most recent Optimize call finished before the deadline.
  bool finished() const { return finished_; }

 private:
  DpConfig config_;
  bool finished_ = false;
};

/// Convenience: the exact Pareto plan set of the factory's query, computed
/// by DP(1) without a deadline. Only valid for small queries (<= ~12
/// tables). Used by tests and as the precise evaluation reference.
std::vector<PlanPtr> ExactParetoSet(PlanFactory* factory);

}  // namespace moqo

#endif  // MOQO_BASELINES_DP_H_
