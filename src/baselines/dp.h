// Dynamic-programming approximation schemes for multi-objective query
// optimization (the paper's "DP(alpha)" baselines; Trummer & Koch,
// SIGMOD'14).
//
// Classic bottom-up dynamic programming over table subsets, generalized to
// multiple cost metrics: for every table subset (in increasing cardinality
// order), all ordered splits into two disjoint non-empty subsets are
// combined with every join operator, and the resulting plan set is pruned
// with approximation factor alpha — exactly the pruning rule of the paper's
// Algorithm 3. DP(1) computes the exact Pareto plan set (used as the
// evaluation reference for small queries); larger alpha trades precision
// for speed; DP(infinity) keeps a single plan per subset and output format.
//
// Complexity is exponential in the number of tables (Section 2), so the
// optimizer checks the deadline throughout and returns an empty result if
// it cannot finish — reproducing the paper's observation that DP produces
// no output within the time budget for queries of 25+ tables.
//
// DpSession steps through the subset lattice one table subset per Step().
// DP is all-or-nothing: the frontier stays empty until the full lattice is
// processed, and an expired step budget aborts the whole run (the paper's
// "DP produced no result in time").
#ifndef MOQO_BASELINES_DP_H_
#define MOQO_BASELINES_DP_H_

#include <memory>
#include <vector>

#include "core/optimizer.h"
#include "core/plan_cache.h"

namespace moqo {

/// Configuration for the DP approximation scheme.
struct DpConfig {
  /// Approximation factor alpha >= 1 (may be infinity).
  double alpha = 1.0;
  /// Hard guard on query size: beyond this many tables the subset lattice
  /// would not even fit in memory, so DP gives up immediately (the paper's
  /// DP baselines never finish for such sizes anyway).
  int max_tables = 20;
};

/// One incremental DP run; each Step() processes one table subset of the
/// lattice (in increasing mask order).
class DpSession : public OptimizerSession {
 public:
  explicit DpSession(DpConfig config = DpConfig()) : config_(config) {}

  /// Non-empty only once the whole lattice has been processed.
  std::vector<PlanPtr> CurrentFrontier() const override;
  bool Done() const override { return finished_ || gave_up_; }

  /// DP abandons runs (oversized query, expired mid-lattice budget): such
  /// a session is Done with an empty frontier but did not complete its
  /// work, so schedulers must not record its run as a deadline hit.
  bool GaveUp() const override { return gave_up_; }

  /// True if the run processed the full lattice (was not aborted by the
  /// max_tables guard or an expired budget).
  bool finished() const { return finished_; }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "dp"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  DpConfig config_;
  int num_tables_ = 0;
  uint64_t full_ = 0;
  uint64_t next_mask_ = 0;
  std::vector<std::vector<PlanPtr>> best_;
  PlanCache cache_;
  bool finished_ = false;
  bool gave_up_ = false;
};

/// Multi-objective dynamic programming with alpha-pruning.
class DpOptimizer : public Optimizer {
 public:
  explicit DpOptimizer(DpConfig config = DpConfig()) : config_(config) {}

  std::string name() const override;

  /// The blocking wrapper invokes the callback exactly once, after the
  /// full frontier is available (DP is not anytime), and returns empty if
  /// the deadline struck first.
  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<DpSession>(config_);
  }

 private:
  DpConfig config_;
};

/// Convenience: the exact Pareto plan set of the factory's query, computed
/// by DP(1) without a deadline. Only valid for small queries (<= ~12
/// tables). Used by tests and as the precise evaluation reference.
std::vector<PlanPtr> ExactParetoSet(PlanFactory* factory);

}  // namespace moqo

#endif  // MOQO_BASELINES_DP_H_
