#include "baselines/weighted_sum.h"

#include <cmath>
#include <vector>

#include "core/checkpoint.h"
#include "plan/random_plan.h"
#include "plan/transformations.h"

namespace moqo {

namespace {

// LINEAR scalarization: sum_i w_i * cost_i / norm_i. Linearity is the
// point — minimizers of linear scalarizations are exactly the convex-hull
// points of the Pareto frontier (the paper's Section 2 remark), so this
// baseline provably cannot reach non-convex frontier points. The fixed
// per-metric normalizers make weights comparable across metrics whose
// magnitudes differ by orders of magnitude; a positive diagonal scaling
// preserves convexity, so the hull restriction stands.
double Scalarize(const CostVector& cost, const std::vector<double>& weights,
                 const std::vector<double>& norms) {
  double sum = 0.0;
  for (int i = 0; i < cost.size(); ++i) {
    sum += weights[static_cast<size_t>(i)] * cost[i] /
           norms[static_cast<size_t>(i)];
  }
  return sum;
}

// Single-objective hill climbing on the scalarized cost.
PlanPtr ScalarClimb(PlanPtr plan, const std::vector<double>& weights,
                    const std::vector<double>& norms, PlanFactory* factory,
                    const Deadline& deadline) {
  bool improving = true;
  while (improving && !deadline.Expired()) {
    improving = false;
    double current = Scalarize(plan->cost(), weights, norms);
    for (PlanPtr& neighbor : AllNeighbors(plan, factory)) {
      double score = Scalarize(neighbor->cost(), weights, norms);
      if (score < current) {
        plan = std::move(neighbor);
        current = score;
        improving = true;
      }
    }
  }
  return plan;
}

}  // namespace

void WeightedSumSession::OnBegin() {
  archive_.Clear();
  weight_vectors_.clear();
  next_weight_ = 0;
  climbs_ = 0;
  const int l = factory()->cost_model().NumMetrics();

  // Weight sweep: axis extremes first (pure per-metric optima), then
  // random simplex points. The sweep cycles with fresh random starts
  // until the deadline, so the baseline is anytime like the others.
  for (int axis = 0; axis < l; ++axis) {
    std::vector<double> w(static_cast<size_t>(l), 0.05);
    w[static_cast<size_t>(axis)] = 1.0;
    weight_vectors_.push_back(std::move(w));
  }
  while (static_cast<int>(weight_vectors_.size()) <
         config_.num_weight_vectors) {
    std::vector<double> w(static_cast<size_t>(l));
    double total = 0.0;
    for (double& v : w) {
      v = -std::log(std::max(rng()->Uniform01(), 1e-12));  // Dirichlet(1)
      total += v;
    }
    for (double& v : w) v /= total;
    weight_vectors_.push_back(std::move(w));
  }

  // Fix per-metric normalizers from a sample of random plans so the
  // scalarization stays linear during every climb.
  norms_.assign(static_cast<size_t>(l), 0.0);
  for (int s = 0; s < 8; ++s) {
    PlanPtr sample = RandomPlan(factory(), rng());
    for (int i = 0; i < l; ++i) {
      double c = sample->cost()[i];
      size_t idx = static_cast<size_t>(i);
      norms_[idx] = norms_[idx] == 0.0 ? c : std::min(norms_[idx], c);
    }
  }
  for (double& n : norms_) n = std::max(n, 1.0);
}

bool WeightedSumSession::DoStep(const Deadline& budget) {
  const std::vector<double>& weights = weight_vectors_[next_weight_];
  next_weight_ = (next_weight_ + 1) % weight_vectors_.size();
  PlanPtr plan = RandomPlan(factory(), rng());
  plan = ScalarClimb(std::move(plan), weights, norms_, factory(), budget);
  ++climbs_;
  return archive_.Insert(std::move(plan));
}

void WeightedSumSession::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WritePlans(archive_.plans());
  writer->WriteU64(weight_vectors_.size());
  for (const std::vector<double>& w : weight_vectors_) {
    writer->WriteDoubleVector(w);
  }
  writer->WriteDoubleVector(norms_);
  writer->WriteU64(next_weight_);
  writer->WriteI32(climbs_);
}

bool WeightedSumSession::OnRestore(CheckpointReader* reader) {
  archive_.Adopt(reader->ReadPlans());
  const size_t metrics =
      static_cast<size_t>(factory()->cost_model().NumMetrics());
  weight_vectors_.clear();
  uint64_t vectors = reader->ReadU64();
  for (uint64_t i = 0; i < vectors && reader->ok(); ++i) {
    std::vector<double> w = reader->ReadDoubleVector();
    // Scalarize indexes one weight and one norm per metric; a corrupt
    // buffer with short vectors must be rejected, not read out of bounds.
    if (w.size() != metrics) return false;
    weight_vectors_.push_back(std::move(w));
  }
  norms_ = reader->ReadDoubleVector();
  next_weight_ = reader->ReadU64();
  climbs_ = reader->ReadI32();
  // DoStep indexes weight_vectors_[next_weight_] unconditionally, and the
  // archived climb results are full-query plans.
  return reader->ok() && !weight_vectors_.empty() &&
         next_weight_ < weight_vectors_.size() &&
         norms_.size() == metrics &&
         AllPlansCover(archive_.plans(), factory()->query().AllTables());
}

}  // namespace moqo
