#include "baselines/nsga2.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>

#include "core/checkpoint.h"

namespace moqo {

std::vector<int> FastNonDominatedSort(const CostMatrix& costs) {
  const int n = static_cast<int>(costs.rows());
  std::vector<int> rank(static_cast<size_t>(n), -1);
  std::vector<int> domination_count(static_cast<size_t>(n), 0);

  // The O(n^2) pairwise stage dominates a generation's cost. One fused
  // comparison per pair yields both dominance directions (the scalar code
  // called StrictlyDominates twice per pair), and the verdict is stored in
  // a flat upper-triangle byte array — 1 if i strictly dominates j, 2 if j
  // strictly dominates i — with branch-free degree accounting, instead of
  // growing one dominated-list vector per individual. Front propagation
  // reads dominated sets straight out of the triangle (one O(n) row scan
  // per individual, O(n^2) total — the same asymptotics as the pairwise
  // stage it follows). Ranks depend only on the verdicts, which are the
  // same booleans the scalar code computed, so the fronts are identical.
  std::vector<std::uint8_t> verdict(
      static_cast<size_t>(n) * static_cast<size_t>(n > 0 ? n - 1 : 0) / 2);
  // offset[i] = start of row i's (j > i) verdicts in the triangle.
  std::vector<size_t> offset(static_cast<size_t>(n), 0);
  {
    size_t pos = 0;
    for (int i = 0; i < n; ++i) {
      offset[static_cast<size_t>(i)] = pos;
      pos += static_cast<size_t>(n - i - 1);
    }
  }
  for (int i = 0; i < n; ++i) {
    const double* row_i = costs.Row(static_cast<size_t>(i));
    std::uint8_t* out = verdict.data() + offset[static_cast<size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      bool i_le_j = false;
      bool j_le_i = false;
      DominanceCompare(row_i, costs.Row(static_cast<size_t>(j)), &i_le_j,
                       &j_le_i);
      const std::uint8_t fwd =
          static_cast<std::uint8_t>(i_le_j & !j_le_i);  // i dominates j
      const std::uint8_t bwd =
          static_cast<std::uint8_t>(j_le_i & !i_le_j);  // j dominates i
      out[j - i - 1] = static_cast<std::uint8_t>(fwd | (bwd << 1));
      domination_count[static_cast<size_t>(j)] += fwd;
      domination_count[static_cast<size_t>(i)] += bwd;
    }
  }

  std::vector<int> current;
  for (int i = 0; i < n; ++i) {
    if (domination_count[static_cast<size_t>(i)] == 0) {
      rank[static_cast<size_t>(i)] = 0;
      current.push_back(i);
    }
  }
  int front = 0;
  while (!current.empty()) {
    std::vector<int> next;
    for (int i : current) {
      // j dominated by i: triangle(j, i) == 2 for j < i, and
      // triangle(i, j) == 1 for j > i.
      for (int j = 0; j < i; ++j) {
        const size_t p = offset[static_cast<size_t>(j)] +
                         static_cast<size_t>(i - j - 1);
        if (verdict[p] == 2 &&
            --domination_count[static_cast<size_t>(j)] == 0) {
          rank[static_cast<size_t>(j)] = front + 1;
          next.push_back(j);
        }
      }
      const std::uint8_t* row = verdict.data() + offset[static_cast<size_t>(i)];
      for (int j = i + 1; j < n; ++j) {
        if (row[j - i - 1] == 1 &&
            --domination_count[static_cast<size_t>(j)] == 0) {
          rank[static_cast<size_t>(j)] = front + 1;
          next.push_back(j);
        }
      }
    }
    ++front;
    current = std::move(next);
  }
  return rank;
}

std::vector<int> FastNonDominatedSort(const std::vector<CostVector>& costs) {
  CostMatrix matrix;
  for (const CostVector& c : costs) matrix.PushRow(c);
  return FastNonDominatedSort(matrix);
}

std::vector<double> CrowdingDistances(const CostMatrix& costs,
                                      const std::vector<int>& front) {
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> distance(front.size(), 0.0);
  if (front.empty()) return distance;
  const int metrics = costs.metrics();
  auto at = [&](size_t k, int m) {
    return costs.Row(static_cast<size_t>(front[k]))[m];
  };

  std::vector<int> order(front.size());
  std::iota(order.begin(), order.end(), 0);
  for (int m = 0; m < metrics; ++m) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return at(static_cast<size_t>(a), m) < at(static_cast<size_t>(b), m);
    });
    double lo = at(static_cast<size_t>(order.front()), m);
    double hi = at(static_cast<size_t>(order.back()), m);
    distance[static_cast<size_t>(order.front())] = kInf;
    distance[static_cast<size_t>(order.back())] = kInf;
    if (hi <= lo) continue;  // all equal in this metric
    for (size_t k = 1; k + 1 < order.size(); ++k) {
      double prev = at(static_cast<size_t>(order[k - 1]), m);
      double next = at(static_cast<size_t>(order[k + 1]), m);
      distance[static_cast<size_t>(order[k])] += (next - prev) / (hi - lo);
    }
  }
  return distance;
}

std::vector<double> CrowdingDistances(const std::vector<CostVector>& costs,
                                      const std::vector<int>& front) {
  CostMatrix matrix;
  for (const CostVector& c : costs) matrix.PushRow(c);
  return CrowdingDistances(matrix, front);
}

PlanPtr DecodeGenome(const Nsga2Genome& genome, PlanFactory* factory) {
  const int n = factory->query().NumTables();
  assert(static_cast<int>(genome.order.size()) == n);

  // Materialize the ordinal encoding into a table order.
  std::vector<int> available(static_cast<size_t>(n));
  std::iota(available.begin(), available.end(), 0);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int pick = genome.order[static_cast<size_t>(i)];
    assert(pick >= 0 && pick < static_cast<int>(available.size()));
    order.push_back(available[static_cast<size_t>(pick)]);
    available.erase(available.begin() + pick);
  }

  auto scan_for = [&](int position) {
    int table = order[static_cast<size_t>(position)];
    std::vector<ScanAlgorithm> ops = factory->ApplicableScans(table);
    int gene = genome.scan_ops[static_cast<size_t>(position)];
    return factory->MakeScan(
        table, ops[static_cast<size_t>(gene) % ops.size()]);
  };

  PlanPtr plan = scan_for(0);
  const auto& join_algos = AllJoinAlgorithms();
  for (int i = 1; i < n; ++i) {
    JoinAlgorithm op = join_algos[static_cast<size_t>(
        genome.join_ops[static_cast<size_t>(i - 1)] %
        static_cast<int>(join_algos.size()))];
    plan = factory->MakeJoin(std::move(plan), scan_for(i), op);
  }
  return plan;
}

Nsga2Genome RandomGenome(PlanFactory* factory, Rng* rng) {
  const int n = factory->query().NumTables();
  Nsga2Genome g;
  g.order.resize(static_cast<size_t>(n));
  g.scan_ops.resize(static_cast<size_t>(n));
  g.join_ops.resize(static_cast<size_t>(n > 0 ? n - 1 : 0));
  for (int i = 0; i < n; ++i) {
    g.order[static_cast<size_t>(i)] = rng->UniformInt(0, n - 1 - i);
    g.scan_ops[static_cast<size_t>(i)] =
        rng->UniformInt(0, kNumScanAlgorithms - 1);
  }
  for (int i = 0; i + 1 < n; ++i) {
    g.join_ops[static_cast<size_t>(i)] =
        rng->UniformInt(0, kNumJoinAlgorithms - 1);
  }
  return g;
}

namespace {

using Individual = Nsga2Individual;

int GenomeLength(const Nsga2Genome& g) {
  return static_cast<int>(g.order.size() + g.scan_ops.size() +
                          g.join_ops.size());
}

// Single-point crossover over the concatenated genome (order | scan | join).
// The ordinal encoding keeps children valid: gene ranges depend only on the
// position, never on other genes.
Nsga2Genome Crossover(const Nsga2Genome& a, const Nsga2Genome& b, Rng* rng) {
  Nsga2Genome child = a;
  int len = GenomeLength(a);
  int point = rng->UniformInt(1, len - 1);
  auto copy_tail = [&](std::vector<int>& dst, const std::vector<int>& src,
                       int offset) {
    for (size_t i = 0; i < dst.size(); ++i) {
      if (offset + static_cast<int>(i) >= point) dst[i] = src[i];
    }
  };
  int off = 0;
  copy_tail(child.order, b.order, off);
  off += static_cast<int>(child.order.size());
  copy_tail(child.scan_ops, b.scan_ops, off);
  off += static_cast<int>(child.scan_ops.size());
  copy_tail(child.join_ops, b.join_ops, off);
  return child;
}

void Mutate(Nsga2Genome* g, double pm, Rng* rng) {
  int n = static_cast<int>(g->order.size());
  for (int i = 0; i < n; ++i) {
    if (rng->Bernoulli(pm)) {
      g->order[static_cast<size_t>(i)] = rng->UniformInt(0, n - 1 - i);
    }
    if (rng->Bernoulli(pm)) {
      g->scan_ops[static_cast<size_t>(i)] =
          rng->UniformInt(0, kNumScanAlgorithms - 1);
    }
  }
  for (size_t i = 0; i < g->join_ops.size(); ++i) {
    if (rng->Bernoulli(pm)) {
      g->join_ops[i] = rng->UniformInt(0, kNumJoinAlgorithms - 1);
    }
  }
}

// Binary tournament on (rank asc, crowding desc).
const Individual& Tournament(const std::vector<Individual>& pop, Rng* rng) {
  const Individual& a =
      pop[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int>(pop.size()) - 1))];
  const Individual& b =
      pop[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int>(pop.size()) - 1))];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding >= b.crowding ? a : b;
}

// Assigns ranks and crowding distances to `pop` in place. The cost matrix
// is gathered once per ranking; sorting and crowding then run over flat
// rows without touching plan nodes.
void RankPopulation(std::vector<Individual>* pop) {
  CostMatrix costs;
  for (const Individual& ind : *pop) costs.PushRow(ind.plan->cost());
  std::vector<int> ranks = FastNonDominatedSort(costs);
  int max_rank = 0;
  for (size_t i = 0; i < pop->size(); ++i) {
    (*pop)[i].rank = ranks[i];
    max_rank = std::max(max_rank, ranks[i]);
  }
  for (int r = 0; r <= max_rank; ++r) {
    std::vector<int> front;
    for (size_t i = 0; i < pop->size(); ++i) {
      if (ranks[i] == r) front.push_back(static_cast<int>(i));
    }
    std::vector<double> crowd = CrowdingDistances(costs, front);
    for (size_t k = 0; k < front.size(); ++k) {
      (*pop)[static_cast<size_t>(front[k])].crowding = crowd[k];
    }
  }
}

}  // namespace

void Nsga2Session::OnBegin() {
  archive_.Clear();
  population_.clear();
  mutation_probability_ = 0.0;
  generation_ = 0;
  initialized_ = false;
}

bool Nsga2Session::DoStep(const Deadline& budget) {
  const int pop_size = config_.population_size;

  if (!initialized_) {
    // First slice: draw and rank the initial population.
    population_.reserve(static_cast<size_t>(pop_size));
    for (int i = 0; i < pop_size && !budget.Expired(); ++i) {
      Individual ind;
      ind.genome = RandomGenome(factory(), rng());
      ind.plan = DecodeGenome(ind.genome, factory());
      archive_.Insert(ind.plan);
      population_.push_back(std::move(ind));
    }
    if (population_.empty()) return false;
    RankPopulation(&population_);
    mutation_probability_ =
        config_.mutation_probability > 0.0
            ? config_.mutation_probability
            : 1.0 / GenomeLength(population_.front().genome);
    initialized_ = true;
    return true;
  }

  // One generation. Variation: produce pop_size offspring.
  std::vector<Individual> combined = population_;
  combined.reserve(population_.size() * 2);
  for (int i = 0; i < pop_size && !budget.Expired(); ++i) {
    const Individual& p1 = Tournament(population_, rng());
    const Individual& p2 = Tournament(population_, rng());
    Individual child;
    child.genome = rng()->Bernoulli(config_.crossover_probability)
                       ? Crossover(p1.genome, p2.genome, rng())
                       : p1.genome;
    Mutate(&child.genome, mutation_probability_, rng());
    child.plan = DecodeGenome(child.genome, factory());
    archive_.Insert(child.plan);
    combined.push_back(std::move(child));
  }

  // Elitist (mu + lambda) survival with crowding truncation.
  RankPopulation(&combined);
  std::stable_sort(combined.begin(), combined.end(),
                   [](const Individual& a, const Individual& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.crowding > b.crowding;
                   });
  combined.resize(static_cast<size_t>(
      std::min<int>(pop_size, static_cast<int>(combined.size()))));
  population_ = std::move(combined);

  ++generation_;
  return true;
}

void Nsga2Session::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WritePlans(archive_.plans());
  writer->WriteU8(initialized_ ? 1 : 0);
  writer->WriteI32(generation_);
  writer->WriteDouble(mutation_probability_);
  writer->WriteU64(population_.size());
  for (const Nsga2Individual& ind : population_) {
    writer->WriteIntVector(ind.genome.order);
    writer->WriteIntVector(ind.genome.scan_ops);
    writer->WriteIntVector(ind.genome.join_ops);
    writer->WritePlan(ind.plan);
    writer->WriteI32(ind.rank);
    // Crowding distances can be +infinity (front boundaries); the bit
    // pattern round-trips exactly.
    writer->WriteDouble(ind.crowding);
  }
}

namespace {

// DecodeGenome's bounds checks are Debug-only asserts, so a corrupt
// checkpoint must be rejected here before it can reach them in Release.
bool ValidGenome(const Nsga2Genome& g, int n) {
  if (static_cast<int>(g.order.size()) != n ||
      static_cast<int>(g.scan_ops.size()) != n ||
      static_cast<int>(g.join_ops.size()) != (n > 0 ? n - 1 : 0)) {
    return false;
  }
  for (int i = 0; i < n; ++i) {
    if (g.order[static_cast<size_t>(i)] < 0 ||
        g.order[static_cast<size_t>(i)] > n - 1 - i) {
      return false;
    }
    if (g.scan_ops[static_cast<size_t>(i)] < 0) return false;
  }
  for (int gene : g.join_ops) {
    // DecodeGenome takes the gene modulo the operator count as a signed
    // int, so a negative gene would index out of bounds.
    if (gene < 0) return false;
  }
  return true;
}

}  // namespace

bool Nsga2Session::OnRestore(CheckpointReader* reader) {
  archive_.Adopt(reader->ReadPlans());
  initialized_ = reader->ReadU8() != 0;
  generation_ = reader->ReadI32();
  mutation_probability_ = reader->ReadDouble();
  population_.clear();
  const int n = factory()->query().NumTables();
  const TableSet all = factory()->query().AllTables();
  uint64_t size = reader->ReadU64();
  for (uint64_t i = 0; i < size && reader->ok(); ++i) {
    Nsga2Individual ind;
    ind.genome.order = reader->ReadIntVector();
    ind.genome.scan_ops = reader->ReadIntVector();
    ind.genome.join_ops = reader->ReadIntVector();
    ind.plan = reader->ReadPlan();
    ind.rank = reader->ReadI32();
    ind.crowding = reader->ReadDouble();
    if (ind.plan == nullptr || ind.plan->rel() != all ||
        !ValidGenome(ind.genome, n)) {
      return false;
    }
    population_.push_back(std::move(ind));
  }
  // Tournament() indexes the population unconditionally once initialized;
  // evaluated individuals and archived results are full-query plans.
  return reader->ok() && (!initialized_ || !population_.empty()) &&
         AllPlansCover(archive_.plans(), all);
}

}  // namespace moqo
