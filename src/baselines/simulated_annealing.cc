#include "baselines/simulated_annealing.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "plan/random_plan.h"
#include "plan/transformations.h"

namespace moqo {

double AverageDelta(const CostVector& from, const CostVector& to) {
  double sum = 0.0;
  for (int i = 0; i < from.size(); ++i) sum += to[i] - from[i];
  return sum / from.size();
}

double AverageCost(const CostVector& c) {
  double sum = 0.0;
  for (int i = 0; i < c.size(); ++i) sum += c[i];
  return sum / c.size();
}

void SaSession::OnBegin() {
  archive_.Clear();
  current_ =
      config_.start_plan ? config_.start_plan : RandomPlan(factory(), rng());
  archive_.Insert(current_);
  temperature_ =
      config_.initial_temperature_factor * AverageCost(current_->cost());
  stage_length_ = config_.stage_length_factor * current_->NodeCount();
  stage_step_ = 0;
  epochs_ = 0;
}

bool SaSession::DoStep(const Deadline& budget) {
  bool archive_dirty = false;
  for (int move = 0; move < kSaMovesPerEpoch && !budget.Expired(); ++move) {
    PlanPtr neighbor = RandomNeighbor(current_, factory(), rng());
    if (neighbor != nullptr) {
      double delta = AverageDelta(current_->cost(), neighbor->cost());
      if (config_.normalize_delta) {
        delta /= std::max(AverageCost(current_->cost()), 1e-12);
      }
      bool accept =
          delta <= 0.0 || rng()->Bernoulli(std::exp(-delta / temperature_));
      if (accept) {
        current_ = std::move(neighbor);
        archive_dirty |= archive_.Insert(current_);
      }
    }

    if (++stage_step_ >= stage_length_) {
      stage_step_ = 0;
      temperature_ *= config_.cooling;
      double scale = config_.normalize_delta
                         ? 1.0
                         : std::max(AverageCost(current_->cost()), 1.0);
      if (temperature_ < config_.frozen_fraction * scale) {
        // Frozen: restart the chain from a fresh random plan so the
        // algorithm remains anytime over long deadlines.
        current_ = RandomPlan(factory(), rng());
        archive_dirty |= archive_.Insert(current_);
        temperature_ =
            config_.initial_temperature_factor *
            (config_.normalize_delta ? 1.0 : AverageCost(current_->cost()));
      }
    }
  }
  ++epochs_;
  return archive_dirty;
}

void SaSession::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WritePlans(archive_.plans());
  writer->WritePlan(current_);
  writer->WriteDouble(temperature_);
  writer->WriteI32(stage_length_);
  writer->WriteI32(stage_step_);
  writer->WriteI32(epochs_);
}

bool SaSession::OnRestore(CheckpointReader* reader) {
  archive_.Adopt(reader->ReadPlans());
  current_ = reader->ReadPlan();
  temperature_ = reader->ReadDouble();
  stage_length_ = reader->ReadI32();
  stage_step_ = reader->ReadI32();
  epochs_ = reader->ReadI32();
  // The chain and every archived result are full-query plans; a corrupt
  // plan reference decoding to an interior node must fail the restore.
  TableSet all = factory()->query().AllTables();
  return reader->ok() && current_ != nullptr && current_->rel() == all &&
         AllPlansCover(archive_.plans(), all);
}

}  // namespace moqo
