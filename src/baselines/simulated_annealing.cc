#include "baselines/simulated_annealing.h"

#include <algorithm>
#include <cmath>

#include "pareto/pareto_archive.h"
#include "plan/random_plan.h"
#include "plan/transformations.h"

namespace moqo {

double AverageDelta(const CostVector& from, const CostVector& to) {
  double sum = 0.0;
  for (int i = 0; i < from.size(); ++i) sum += to[i] - from[i];
  return sum / from.size();
}

double AverageCost(const CostVector& c) {
  double sum = 0.0;
  for (int i = 0; i < c.size(); ++i) sum += c[i];
  return sum / c.size();
}

std::vector<PlanPtr> SimulatedAnnealing::Optimize(
    PlanFactory* factory, Rng* rng, const Deadline& deadline,
    const AnytimeCallback& callback) {
  ParetoArchive archive;

  PlanPtr current =
      config_.start_plan ? config_.start_plan : RandomPlan(factory, rng);
  archive.Insert(current);
  if (callback) callback(archive.plans());

  double temperature =
      config_.initial_temperature_factor * AverageCost(current->cost());
  int stage_length = config_.stage_length_factor * current->NodeCount();
  int stage_step = 0;
  int64_t steps_since_callback = 0;
  bool archive_dirty = false;

  while (!deadline.Expired()) {
    PlanPtr neighbor = RandomNeighbor(current, factory, rng);
    if (neighbor != nullptr) {
      double delta = AverageDelta(current->cost(), neighbor->cost());
      if (config_.normalize_delta) {
        delta /= std::max(AverageCost(current->cost()), 1e-12);
      }
      bool accept =
          delta <= 0.0 || rng->Bernoulli(std::exp(-delta / temperature));
      if (accept) {
        current = std::move(neighbor);
        archive_dirty |= archive.Insert(current);
      }
    }

    if (++stage_step >= stage_length) {
      stage_step = 0;
      temperature *= config_.cooling;
      double scale = config_.normalize_delta
                         ? 1.0
                         : std::max(AverageCost(current->cost()), 1.0);
      if (temperature < config_.frozen_fraction * scale) {
        // Frozen: restart the chain from a fresh random plan so the
        // algorithm remains anytime over long deadlines.
        current = RandomPlan(factory, rng);
        archive_dirty |= archive.Insert(current);
        temperature =
            config_.initial_temperature_factor *
            (config_.normalize_delta ? 1.0 : AverageCost(current->cost()));
      }
    }

    if (++steps_since_callback >= 64) {
      steps_since_callback = 0;
      if (archive_dirty && callback) callback(archive.plans());
      archive_dirty = false;
    }
  }
  if (archive_dirty && callback) callback(archive.plans());
  return archive.plans();
}

}  // namespace moqo
