// Two-Phase Optimization (the paper's "2P" baseline).
//
// Following Steinbrunn et al. (VLDBJ'97): a first phase runs iterative
// improvement for a small number of restarts (the paper switches after ten
// II iterations), then a second phase runs simulated annealing starting
// from the best plan of phase one with a low initial temperature. The
// multi-objective generalization shares the archives of both phases; the
// phase-one "best" plan is the archived plan with the lowest sum of
// log-costs (a scale-balanced scalarization).
//
// Session stepping: each phase-one Step() is one II restart; the step that
// completes phase one crowns the champion and seeds the embedded SA
// session; every later Step() is one SA epoch whose frontier is merged
// into the shared archive.
#ifndef MOQO_BASELINES_TWO_PHASE_H_
#define MOQO_BASELINES_TWO_PHASE_H_

#include <memory>

#include "baselines/simulated_annealing.h"
#include "core/optimizer.h"
#include "pareto/pareto_archive.h"

namespace moqo {

/// Configuration for the 2P baseline.
struct TwoPhaseConfig {
  /// II restarts in phase one (the paper uses 10).
  int phase_one_iterations = 10;
  /// Phase-two initial temperature as a multiple of the champion's average
  /// cost (low: phase-one plans are already good).
  double phase_two_temperature = 0.1;
  /// Stop after this many SA epochs in phase two (0 = until deadline).
  int max_phase_two_epochs = 0;
};

/// One incremental 2P run (II restarts, then SA epochs).
class TwoPhaseSession : public OptimizerSession {
 public:
  explicit TwoPhaseSession(TwoPhaseConfig config = TwoPhaseConfig())
      : config_(config) {}

  std::vector<PlanPtr> CurrentFrontier() const override;
  bool Done() const override {
    // No phase-one restarts means no champion to seed phase two: the run
    // produces nothing (matching the blocking implementation's behavior
    // for this degenerate configuration).
    if (config_.phase_one_iterations <= 0) return true;
    return sa_session_ != nullptr && sa_session_->Done();
  }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "two-phase"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  TwoPhaseConfig config_;
  ParetoArchive archive_;
  PlanPtr champion_;
  int phase_one_done_ = 0;
  /// Non-null once phase two has begun.
  std::unique_ptr<SaSession> sa_session_;
};

/// Two-phase optimization: II then SA.
class TwoPhase : public Optimizer {
 public:
  explicit TwoPhase(TwoPhaseConfig config = TwoPhaseConfig())
      : config_(config) {}

  std::string name() const override { return "2P"; }

  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<TwoPhaseSession>(config_);
  }

 private:
  TwoPhaseConfig config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_TWO_PHASE_H_
