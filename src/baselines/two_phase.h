// Two-Phase Optimization (the paper's "2P" baseline).
//
// Following Steinbrunn et al. (VLDBJ'97): a first phase runs iterative
// improvement for a small number of restarts (the paper switches after ten
// II iterations), then a second phase runs simulated annealing starting
// from the best plan of phase one with a low initial temperature. The
// multi-objective generalization shares the archives of both phases; the
// phase-one "best" plan is the archived plan with the lowest sum of
// log-costs (a scale-balanced scalarization).
#ifndef MOQO_BASELINES_TWO_PHASE_H_
#define MOQO_BASELINES_TWO_PHASE_H_

#include "core/optimizer.h"

namespace moqo {

/// Configuration for the 2P baseline.
struct TwoPhaseConfig {
  /// II restarts in phase one (the paper uses 10).
  int phase_one_iterations = 10;
  /// Phase-two initial temperature as a multiple of the champion's average
  /// cost (low: phase-one plans are already good).
  double phase_two_temperature = 0.1;
};

/// Two-phase optimization: II then SA.
class TwoPhase : public Optimizer {
 public:
  explicit TwoPhase(TwoPhaseConfig config = TwoPhaseConfig())
      : config_(config) {}

  std::string name() const override { return "2P"; }

  std::vector<PlanPtr> Optimize(PlanFactory* factory, Rng* rng,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) override;

 private:
  TwoPhaseConfig config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_TWO_PHASE_H_
