#include "baselines/iterative_improvement.h"

#include "core/pareto_climb.h"
#include "pareto/pareto_archive.h"
#include "plan/random_plan.h"

namespace moqo {

std::vector<PlanPtr> IterativeImprovement::Optimize(
    PlanFactory* factory, Rng* rng, const Deadline& deadline,
    const AnytimeCallback& callback) {
  ParetoArchive archive;
  int iterations = 0;
  while (!deadline.Expired() &&
         (config_.max_iterations == 0 || iterations < config_.max_iterations)) {
    PlanPtr plan = RandomPlan(factory, rng);
    PlanPtr opt = config_.fast_climb
                      ? ParetoClimb(plan, factory, nullptr, deadline)
                      : NaiveClimb(plan, factory, nullptr, deadline);
    bool changed = archive.Insert(std::move(opt));
    ++iterations;
    if (changed && callback) callback(archive.plans());
  }
  return archive.plans();
}

}  // namespace moqo
