#include "baselines/iterative_improvement.h"

#include "core/checkpoint.h"
#include "core/pareto_climb.h"
#include "plan/random_plan.h"

namespace moqo {

void IiSession::OnBegin() {
  archive_.Clear();
  iterations_ = 0;
}

bool IiSession::DoStep(const Deadline& budget) {
  PlanPtr plan = RandomPlan(factory(), rng());
  PlanPtr opt = config_.fast_climb
                    ? ParetoClimb(plan, factory(), nullptr, budget)
                    : NaiveClimb(plan, factory(), nullptr, budget);
  ++iterations_;
  return archive_.Insert(std::move(opt));
}

void IiSession::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WritePlans(archive_.plans());
  writer->WriteI32(iterations_);
}

bool IiSession::OnRestore(CheckpointReader* reader) {
  archive_.Adopt(reader->ReadPlans());
  iterations_ = reader->ReadI32();
  // Archived local optima are full-query plans.
  return reader->ok() &&
         AllPlansCover(archive_.plans(), factory()->query().AllTables());
}

}  // namespace moqo
