#include "baselines/iterative_improvement.h"

#include "core/pareto_climb.h"
#include "plan/random_plan.h"

namespace moqo {

void IiSession::OnBegin() {
  archive_.Clear();
  iterations_ = 0;
}

bool IiSession::DoStep(const Deadline& budget) {
  PlanPtr plan = RandomPlan(factory(), rng());
  PlanPtr opt = config_.fast_climb
                    ? ParetoClimb(plan, factory(), nullptr, budget)
                    : NaiveClimb(plan, factory(), nullptr, budget);
  ++iterations_;
  return archive_.Insert(std::move(opt));
}

}  // namespace moqo
