#include "baselines/dp.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace moqo {

std::string DpOptimizer::name() const {
  std::ostringstream out;
  out << "DP(";
  if (std::isinf(config_.alpha)) {
    out << "Infinity";
  } else {
    // Print integral alphas without trailing zeros ("DP(2)", "DP(1000)").
    if (config_.alpha == std::floor(config_.alpha)) {
      out << static_cast<long long>(config_.alpha);
    } else {
      out << config_.alpha;
    }
  }
  out << ")";
  return out.str();
}

namespace {

TableSet ToTableSet(uint64_t mask) {
  TableSet s;
  while (mask != 0) {
    int bit = __builtin_ctzll(mask);
    s.Add(bit);
    mask &= mask - 1;
  }
  return s;
}

}  // namespace

void DpSession::OnBegin() {
  num_tables_ = factory()->query().NumTables();
  finished_ = false;
  gave_up_ = false;
  best_.clear();
  cache_.Clear();
  next_mask_ = 1;
  if (num_tables_ > config_.max_tables) {
    // The 2^n subset lattice would exhaust memory long before any realistic
    // deadline; give up immediately (matches the paper: DP produces no
    // result for large queries).
    gave_up_ = true;
    return;
  }

  const int n = num_tables_;
  full_ = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
  best_.resize(full_ + 1);

  // Base case: single tables. Pruning is identical to the plan cache's
  // (Algorithm 3 Prune).
  for (int t = 0; t < n; ++t) {
    TableSet rel = TableSet::Singleton(t);
    for (ScanAlgorithm op : factory()->ApplicableScans(t)) {
      cache_.Insert(rel, factory()->MakeScan(t, op), config_.alpha);
    }
    best_[uint64_t{1} << t] = cache_.Lookup(rel);
  }
}

std::vector<PlanPtr> DpSession::Frontier() const {
  if (!finished_) return {};
  return best_[full_];
}

bool DpSession::DoStep(const Deadline& budget) {
  // Subsets already covered by the base case are skipped inline, so every
  // step performs the joins of exactly one subset of size >= 2.
  while (next_mask_ <= full_ && __builtin_popcountll(next_mask_) < 2) {
    ++next_mask_;
  }
  if (next_mask_ > full_) {
    // Single-table queries have no join work at all.
    finished_ = true;
    return true;
  }

  const uint64_t mask = next_mask_;
  TableSet rel = ToTableSet(mask);
  // All ordered splits into (outer, inner): iterate proper sub-masks.
  // Enumerating masks in numeric order guarantees sub-masks come first.
  int64_t joins_since_check = 0;
  for (uint64_t outer = (mask - 1) & mask; outer != 0;
       outer = (outer - 1) & mask) {
    uint64_t inner = mask ^ outer;
    const std::vector<PlanPtr>& outer_plans = best_[outer];
    const std::vector<PlanPtr>& inner_plans = best_[inner];
    for (const PlanPtr& o : outer_plans) {
      for (const PlanPtr& i : inner_plans) {
        for (JoinAlgorithm op : AllJoinAlgorithms()) {
          cache_.Insert(rel, factory()->MakeJoin(o, i, op), config_.alpha);
        }
        if (++joins_since_check >= 4096) {
          joins_since_check = 0;
          if (budget.Expired()) {
            // DP is all-or-nothing: an expired budget aborts the run.
            gave_up_ = true;
            return false;
          }
        }
      }
    }
  }
  best_[mask] = cache_.Lookup(rel);
  ++next_mask_;
  if (mask == full_) {
    finished_ = true;
    return true;
  }
  return false;
}

std::vector<PlanPtr> ExactParetoSet(PlanFactory* factory) {
  DpConfig config;
  config.alpha = 1.0;
  config.max_tables = 14;
  DpOptimizer dp(config);
  Rng rng(0);
  return dp.Optimize(factory, &rng, Deadline(), nullptr);
}

}  // namespace moqo
