#include "baselines/dp.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "core/checkpoint.h"

namespace moqo {

std::string DpOptimizer::name() const {
  std::ostringstream out;
  out << "DP(";
  if (std::isinf(config_.alpha)) {
    out << "Infinity";
  } else {
    // Print integral alphas without trailing zeros ("DP(2)", "DP(1000)").
    if (config_.alpha == std::floor(config_.alpha)) {
      out << static_cast<long long>(config_.alpha);
    } else {
      out << config_.alpha;
    }
  }
  out << ")";
  return out.str();
}

namespace {

TableSet ToTableSet(uint64_t mask) {
  TableSet s;
  while (mask != 0) {
    int bit = __builtin_ctzll(mask);
    s.Add(bit);
    mask &= mask - 1;
  }
  return s;
}

}  // namespace

void DpSession::OnBegin() {
  num_tables_ = factory()->query().NumTables();
  finished_ = false;
  gave_up_ = false;
  best_.clear();
  cache_.Clear();
  next_mask_ = 1;
  if (num_tables_ > config_.max_tables) {
    // The 2^n subset lattice would exhaust memory long before any realistic
    // deadline; give up immediately (matches the paper: DP produces no
    // result for large queries).
    gave_up_ = true;
    return;
  }

  const int n = num_tables_;
  full_ = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
  best_.resize(full_ + 1);

  // Base case: single tables. Pruning is identical to the plan cache's
  // (Algorithm 3 Prune).
  for (int t = 0; t < n; ++t) {
    TableSet rel = TableSet::Singleton(t);
    for (ScanAlgorithm op : factory()->ApplicableScans(t)) {
      cache_.Insert(rel, factory()->MakeScan(t, op), config_.alpha);
    }
    best_[uint64_t{1} << t] = cache_.Lookup(rel);
  }
}

std::vector<PlanPtr> DpSession::CurrentFrontier() const {
  if (!finished_) return {};
  return best_[full_];
}

bool DpSession::DoStep(const Deadline& budget) {
  // Subsets already covered by the base case are skipped inline, so every
  // step performs the joins of exactly one subset of size >= 2.
  while (next_mask_ <= full_ && __builtin_popcountll(next_mask_) < 2) {
    ++next_mask_;
  }
  if (next_mask_ > full_) {
    // Single-table queries have no join work at all.
    finished_ = true;
    return true;
  }

  const uint64_t mask = next_mask_;
  TableSet rel = ToTableSet(mask);
  // All ordered splits into (outer, inner): iterate proper sub-masks.
  // Enumerating masks in numeric order guarantees sub-masks come first.
  int64_t joins_since_check = 0;
  for (uint64_t outer = (mask - 1) & mask; outer != 0;
       outer = (outer - 1) & mask) {
    uint64_t inner = mask ^ outer;
    const std::vector<PlanPtr>& outer_plans = best_[outer];
    const std::vector<PlanPtr>& inner_plans = best_[inner];
    for (const PlanPtr& o : outer_plans) {
      for (const PlanPtr& i : inner_plans) {
        for (JoinAlgorithm op : AllJoinAlgorithms()) {
          cache_.Insert(rel, factory()->MakeJoin(o, i, op), config_.alpha);
        }
        if (++joins_since_check >= 4096) {
          joins_since_check = 0;
          if (budget.Expired()) {
            // DP is all-or-nothing: an expired budget aborts the run.
            gave_up_ = true;
            return false;
          }
        }
      }
    }
  }
  best_[mask] = cache_.Lookup(rel);
  ++next_mask_;
  if (mask == full_) {
    finished_ = true;
    return true;
  }
  return false;
}

void DpSession::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WriteU8(finished_ ? 1 : 0);
  writer->WriteU8(gave_up_ ? 1 : 0);
  writer->WriteU64(next_mask_);
  // Only masks populated so far carry plans (base-case singletons plus
  // every completed subset); num_tables_ and full_ are re-derived from the
  // restoring factory's query.
  uint64_t populated = 0;
  for (const std::vector<PlanPtr>& plans : best_) {
    if (!plans.empty()) ++populated;
  }
  writer->WriteU64(populated);
  for (uint64_t mask = 0; mask < best_.size(); ++mask) {
    if (best_[mask].empty()) continue;
    writer->WriteU64(mask);
    writer->WritePlans(best_[mask]);
  }
  WritePlanCache(writer, cache_);
}

bool DpSession::OnRestore(CheckpointReader* reader) {
  num_tables_ = factory()->query().NumTables();
  finished_ = reader->ReadU8() != 0;
  gave_up_ = reader->ReadU8() != 0;
  next_mask_ = reader->ReadU64();
  best_.clear();
  cache_.Clear();
  full_ = 0;
  if (num_tables_ <= config_.max_tables && num_tables_ > 0) {
    const int n = num_tables_;
    full_ = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
    best_.resize(full_ + 1);
  }
  uint64_t populated = reader->ReadU64();
  for (uint64_t i = 0; i < populated && reader->ok(); ++i) {
    uint64_t mask = reader->ReadU64();
    if (mask >= best_.size()) return false;
    std::vector<PlanPtr> plans = reader->ReadPlans();
    // Every plan filed under a mask must cover exactly that relation set:
    // DoStep joins best_[outer] with best_[inner] relying on disjointness,
    // and MakeJoin's guard is a Debug-only assert.
    if (!AllPlansCover(plans, ToTableSet(mask))) return false;
    best_[mask] = std::move(plans);
  }
  if (!ReadPlanCache(reader, &cache_)) return false;
  // Consistency: a live (non-gave-up) run always has the base-case
  // singleton plans that Begin() filed — and cannot exist at all for an
  // oversized query — while a finished run must have a populated lattice
  // (Frontier() reads best_[full_]). Anything else is a corrupt or
  // mismatched buffer.
  if (!gave_up_) {
    if (num_tables_ > config_.max_tables || best_.empty()) return false;
    for (int t = 0; t < num_tables_; ++t) {
      if (best_[uint64_t{1} << t].empty()) return false;
    }
  }
  if (finished_ && (best_.empty() || best_[full_].empty())) return false;
  return reader->ok();
}

std::vector<PlanPtr> ExactParetoSet(PlanFactory* factory) {
  DpConfig config;
  config.alpha = 1.0;
  config.max_tables = 14;
  DpOptimizer dp(config);
  Rng rng(0);
  return dp.Optimize(factory, &rng, Deadline(), nullptr);
}

}  // namespace moqo
