#include "baselines/dp.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "core/plan_cache.h"

namespace moqo {

std::string DpOptimizer::name() const {
  std::ostringstream out;
  out << "DP(";
  if (std::isinf(config_.alpha)) {
    out << "Infinity";
  } else {
    // Print integral alphas without trailing zeros ("DP(2)", "DP(1000)").
    if (config_.alpha == std::floor(config_.alpha)) {
      out << static_cast<long long>(config_.alpha);
    } else {
      out << config_.alpha;
    }
  }
  out << ")";
  return out.str();
}

std::vector<PlanPtr> DpOptimizer::Optimize(PlanFactory* factory, Rng* /*rng*/,
                                           const Deadline& deadline,
                                           const AnytimeCallback& callback) {
  finished_ = false;
  const int n = factory->query().NumTables();
  if (n > config_.max_tables) {
    // The 2^n subset lattice would exhaust memory long before any realistic
    // deadline; give up immediately (matches the paper: DP produces no
    // result for large queries).
    return {};
  }

  const uint64_t full = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
  std::vector<std::vector<PlanPtr>> best(full + 1);

  auto to_table_set = [](uint64_t mask) {
    TableSet s;
    while (mask != 0) {
      int bit = __builtin_ctzll(mask);
      s.Add(bit);
      mask &= mask - 1;
    }
    return s;
  };

  // Pruning identical to the plan cache's (Algorithm 3 Prune).
  PlanCache cache;

  // Base case: single tables.
  for (int t = 0; t < n; ++t) {
    TableSet rel = TableSet::Singleton(t);
    for (ScanAlgorithm op : factory->ApplicableScans(t)) {
      cache.Insert(rel, factory->MakeScan(t, op), config_.alpha);
    }
    best[uint64_t{1} << t] = cache.Lookup(rel);
  }

  // Joins, by increasing subset size. Enumerating masks in numeric order
  // already guarantees sub-masks come first, but grouping by popcount keeps
  // the traversal cache-friendly and the deadline checks cheap.
  int64_t joins_since_check = 0;
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (__builtin_popcountll(mask) < 2) continue;
    if (deadline.Expired()) return {};
    TableSet rel = to_table_set(mask);
    // All ordered splits into (outer, inner): iterate proper sub-masks.
    for (uint64_t outer = (mask - 1) & mask; outer != 0;
         outer = (outer - 1) & mask) {
      uint64_t inner = mask ^ outer;
      const std::vector<PlanPtr>& outer_plans = best[outer];
      const std::vector<PlanPtr>& inner_plans = best[inner];
      for (const PlanPtr& o : outer_plans) {
        for (const PlanPtr& i : inner_plans) {
          for (JoinAlgorithm op : AllJoinAlgorithms()) {
            cache.Insert(rel, factory->MakeJoin(o, i, op), config_.alpha);
          }
          if (++joins_since_check >= 4096) {
            joins_since_check = 0;
            if (deadline.Expired()) return {};
          }
        }
      }
    }
    best[mask] = cache.Lookup(rel);
  }

  finished_ = true;
  std::vector<PlanPtr> result = best[full];
  if (callback) callback(result);
  return result;
}

std::vector<PlanPtr> ExactParetoSet(PlanFactory* factory) {
  DpConfig config;
  config.alpha = 1.0;
  config.max_tables = 14;
  DpOptimizer dp(config);
  Rng rng(0);
  return dp.Optimize(factory, &rng, Deadline(), nullptr);
}

}  // namespace moqo
