// Weighted-sum scalarization baseline (extension).
//
// Section 2 of the paper notes that "mapping multi-objective optimization
// into a single-objective optimization problem using a weighted sum over
// different cost metrics with varying weights will not yield the Pareto
// frontier but at most a subset of it (the convex hull)". This optimizer
// makes that limitation measurable: it sweeps a set of weight vectors and,
// for each, runs single-objective iterative improvement on the scalarized
// cost, archiving the best plans. Points of the Pareto frontier that lie
// inside the convex hull are unreachable by construction, so its alpha
// error is bounded away from 1 on non-convex frontiers.
#ifndef MOQO_BASELINES_WEIGHTED_SUM_H_
#define MOQO_BASELINES_WEIGHTED_SUM_H_

#include "core/optimizer.h"

namespace moqo {

/// Configuration for the weighted-sum baseline.
struct WeightedSumConfig {
  /// Number of weight vectors swept (uniform over the simplex, plus the
  /// axis-aligned extremes).
  int num_weight_vectors = 16;
};

/// Weighted-sum scalarization with per-weight hill climbing.
class WeightedSum : public Optimizer {
 public:
  explicit WeightedSum(WeightedSumConfig config = WeightedSumConfig())
      : config_(config) {}

  std::string name() const override { return "WeightedSum"; }

  std::vector<PlanPtr> Optimize(PlanFactory* factory, Rng* rng,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) override;

 private:
  WeightedSumConfig config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_WEIGHTED_SUM_H_
