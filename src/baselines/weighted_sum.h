// Weighted-sum scalarization baseline (extension).
//
// Section 2 of the paper notes that "mapping multi-objective optimization
// into a single-objective optimization problem using a weighted sum over
// different cost metrics with varying weights will not yield the Pareto
// frontier but at most a subset of it (the convex hull)". This optimizer
// makes that limitation measurable: it sweeps a set of weight vectors and,
// for each, runs single-objective iterative improvement on the scalarized
// cost, archiving the best plans. Points of the Pareto frontier that lie
// inside the convex hull are unreachable by construction, so its alpha
// error is bounded away from 1 on non-convex frontiers.
//
// One session Step() is one climb under the next weight vector of the
// (cyclic) sweep; the weight vectors and per-metric normalizers are fixed
// in Begin().
#ifndef MOQO_BASELINES_WEIGHTED_SUM_H_
#define MOQO_BASELINES_WEIGHTED_SUM_H_

#include <memory>
#include <vector>

#include "core/optimizer.h"
#include "pareto/pareto_archive.h"

namespace moqo {

/// Configuration for the weighted-sum baseline.
struct WeightedSumConfig {
  /// Number of weight vectors swept (uniform over the simplex, plus the
  /// axis-aligned extremes).
  int num_weight_vectors = 16;
  /// Stop after this many climbs, i.e. weight-vector visits (0 = until
  /// deadline). Gives stepped runs a deterministic end.
  int max_climbs = 0;
};

/// One incremental weighted-sum run; each Step() is one scalarized climb.
class WeightedSumSession : public OptimizerSession {
 public:
  explicit WeightedSumSession(WeightedSumConfig config = WeightedSumConfig())
      : config_(config) {}

  std::vector<PlanPtr> CurrentFrontier() const override { return archive_.plans(); }
  bool Done() const override {
    return config_.max_climbs > 0 && climbs_ >= config_.max_climbs;
  }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "weighted-sum"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  WeightedSumConfig config_;
  ParetoArchive archive_;
  std::vector<std::vector<double>> weight_vectors_;
  std::vector<double> norms_;
  size_t next_weight_ = 0;
  int climbs_ = 0;
};

/// Weighted-sum scalarization with per-weight hill climbing.
class WeightedSum : public Optimizer {
 public:
  explicit WeightedSum(WeightedSumConfig config = WeightedSumConfig())
      : config_(config) {}

  std::string name() const override { return "WeightedSum"; }

  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<WeightedSumSession>(config_);
  }

 private:
  WeightedSumConfig config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_WEIGHTED_SUM_H_
