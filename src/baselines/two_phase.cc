#include "baselines/two_phase.h"

#include <cmath>

#include "core/checkpoint.h"
#include "core/pareto_climb.h"
#include "plan/random_plan.h"

namespace moqo {

namespace {

// Scale-balanced scalarization used to pick the phase-one champion.
double LogCostSum(const CostVector& c) {
  double sum = 0.0;
  for (int i = 0; i < c.size(); ++i) sum += std::log(std::max(c[i], 1e-9));
  return sum;
}

}  // namespace

void TwoPhaseSession::OnBegin() {
  archive_.Clear();
  champion_ = nullptr;
  phase_one_done_ = 0;
  sa_session_ = nullptr;
}

std::vector<PlanPtr> TwoPhaseSession::CurrentFrontier() const {
  // During phase one the champion is the only result so far (it enters the
  // shared archive the moment phase one completes).
  if (sa_session_ == nullptr) {
    if (champion_ == nullptr) return {};
    if (archive_.empty()) return {champion_};
  }
  return archive_.plans();
}

bool TwoPhaseSession::DoStep(const Deadline& budget) {
  if (sa_session_ == nullptr) {
    // Phase one: one II restart per step. Following Steinbrunn et al.,
    // only the best plan of the phase survives (2P is built on the
    // assumption that a single very good plan is the goal — which is
    // exactly why the paper finds it ill-suited for frontier
    // approximation).
    PlanPtr opt =
        ParetoClimb(RandomPlan(factory(), rng()), factory(), nullptr, budget);
    if (champion_ == nullptr ||
        LogCostSum(opt->cost()) < LogCostSum(champion_->cost())) {
      champion_ = opt;
    }
    if (++phase_one_done_ < config_.phase_one_iterations) return false;

    // Phase one complete: archive the champion and seed phase two.
    archive_.Insert(champion_);
    SaConfig sa_config;
    sa_config.initial_temperature_factor = config_.phase_two_temperature;
    sa_config.start_plan = champion_;
    sa_config.max_epochs = config_.max_phase_two_epochs;
    sa_session_ = std::make_unique<SaSession>(std::move(sa_config));
    sa_session_->Begin(factory(), rng());
    return true;
  }

  // Phase two: one SA epoch, then merge its frontier into the shared
  // archive (the champion may dominate SA plans and vice versa).
  bool changed = sa_session_->Step(budget);
  if (changed) {
    for (PlanPtr& p : sa_session_->Frontier()) {
      changed |= archive_.Insert(std::move(p));
    }
  }
  return changed;
}

void TwoPhaseSession::OnCheckpoint(CheckpointWriter* writer) const {
  writer->WritePlans(archive_.plans());
  writer->WritePlan(champion_);
  writer->WriteI32(phase_one_done_);
  writer->WriteU8(sa_session_ != nullptr ? 1 : 0);
  if (sa_session_ != nullptr) {
    // The embedded SA session nests its own full checkpoint. Its RNG
    // snapshot duplicates ours (both sessions share one stream), so the
    // nested restore re-applies the same position — harmless and exact.
    writer->WriteBytes(sa_session_->Checkpoint());
  }
}

bool TwoPhaseSession::OnRestore(CheckpointReader* reader) {
  archive_.Adopt(reader->ReadPlans());
  champion_ = reader->ReadPlan();
  phase_one_done_ = reader->ReadI32();
  bool phase_two = reader->ReadU8() != 0;
  sa_session_ = nullptr;
  if (!reader->ok()) return false;
  // The champion and all archived results are full-query plans.
  TableSet all = factory()->query().AllTables();
  if (champion_ != nullptr && champion_->rel() != all) return false;
  if (!AllPlansCover(archive_.plans(), all)) return false;
  if (phase_two) {
    if (champion_ == nullptr) return false;
    // Rebuild the embedded session exactly as DoStep seeds it, then let
    // the nested checkpoint overwrite its run state.
    SaConfig sa_config;
    sa_config.initial_temperature_factor = config_.phase_two_temperature;
    sa_config.start_plan = champion_;
    sa_config.max_epochs = config_.max_phase_two_epochs;
    sa_session_ = std::make_unique<SaSession>(std::move(sa_config));
    std::vector<uint8_t> nested = reader->ReadBytes();
    if (!sa_session_->Restore(factory(), rng(), nested)) return false;
  }
  return reader->ok();
}

}  // namespace moqo
