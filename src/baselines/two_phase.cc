#include "baselines/two_phase.h"

#include <cmath>

#include "baselines/simulated_annealing.h"
#include "core/pareto_climb.h"
#include "pareto/pareto_archive.h"
#include "plan/random_plan.h"

namespace moqo {

namespace {

// Scale-balanced scalarization used to pick the phase-one champion.
double LogCostSum(const CostVector& c) {
  double sum = 0.0;
  for (int i = 0; i < c.size(); ++i) sum += std::log(std::max(c[i], 1e-9));
  return sum;
}

}  // namespace

std::vector<PlanPtr> TwoPhase::Optimize(PlanFactory* factory, Rng* rng,
                                        const Deadline& deadline,
                                        const AnytimeCallback& callback) {
  ParetoArchive archive;

  // Phase one: a few iterations of iterative improvement. Following
  // Steinbrunn et al., only the best plan of the phase survives (2P is
  // built on the assumption that a single very good plan is the goal —
  // which is exactly why the paper finds it ill-suited for frontier
  // approximation).
  PlanPtr champion;
  for (int it = 0;
       it < config_.phase_one_iterations && !deadline.Expired(); ++it) {
    PlanPtr opt =
        ParetoClimb(RandomPlan(factory, rng), factory, nullptr, deadline);
    if (champion == nullptr ||
        LogCostSum(opt->cost()) < LogCostSum(champion->cost())) {
      champion = opt;
    }
  }
  if (champion == nullptr) return archive.plans();
  archive.Insert(champion);
  if (callback) callback(archive.plans());
  if (deadline.Expired()) return archive.plans();

  // Phase two: simulated annealing seeded with the phase-one champion.
  SaConfig sa_config;
  sa_config.initial_temperature_factor = config_.phase_two_temperature;
  sa_config.start_plan = champion;
  SimulatedAnnealing sa(sa_config);
  std::vector<PlanPtr> sa_result = sa.Optimize(
      factory, rng, deadline, [&](const std::vector<PlanPtr>& frontier) {
        // Merge SA's frontier into the shared archive for the callback.
        bool changed = false;
        for (const PlanPtr& p : frontier) changed |= archive.Insert(p);
        if (changed && callback) callback(archive.plans());
      });
  for (PlanPtr& p : sa_result) archive.Insert(std::move(p));
  return archive.plans();
}

}  // namespace moqo
