#include "baselines/two_phase.h"

#include <cmath>

#include "core/pareto_climb.h"
#include "plan/random_plan.h"

namespace moqo {

namespace {

// Scale-balanced scalarization used to pick the phase-one champion.
double LogCostSum(const CostVector& c) {
  double sum = 0.0;
  for (int i = 0; i < c.size(); ++i) sum += std::log(std::max(c[i], 1e-9));
  return sum;
}

}  // namespace

void TwoPhaseSession::OnBegin() {
  archive_.Clear();
  champion_ = nullptr;
  phase_one_done_ = 0;
  sa_session_ = nullptr;
}

std::vector<PlanPtr> TwoPhaseSession::Frontier() const {
  // During phase one the champion is the only result so far (it enters the
  // shared archive the moment phase one completes).
  if (sa_session_ == nullptr) {
    if (champion_ == nullptr) return {};
    if (archive_.empty()) return {champion_};
  }
  return archive_.plans();
}

bool TwoPhaseSession::DoStep(const Deadline& budget) {
  if (sa_session_ == nullptr) {
    // Phase one: one II restart per step. Following Steinbrunn et al.,
    // only the best plan of the phase survives (2P is built on the
    // assumption that a single very good plan is the goal — which is
    // exactly why the paper finds it ill-suited for frontier
    // approximation).
    PlanPtr opt =
        ParetoClimb(RandomPlan(factory(), rng()), factory(), nullptr, budget);
    if (champion_ == nullptr ||
        LogCostSum(opt->cost()) < LogCostSum(champion_->cost())) {
      champion_ = opt;
    }
    if (++phase_one_done_ < config_.phase_one_iterations) return false;

    // Phase one complete: archive the champion and seed phase two.
    archive_.Insert(champion_);
    SaConfig sa_config;
    sa_config.initial_temperature_factor = config_.phase_two_temperature;
    sa_config.start_plan = champion_;
    sa_config.max_epochs = config_.max_phase_two_epochs;
    sa_session_ = std::make_unique<SaSession>(std::move(sa_config));
    sa_session_->Begin(factory(), rng());
    return true;
  }

  // Phase two: one SA epoch, then merge its frontier into the shared
  // archive (the champion may dominate SA plans and vice versa).
  bool changed = sa_session_->Step(budget);
  if (changed) {
    for (PlanPtr& p : sa_session_->Frontier()) {
      changed |= archive_.Insert(std::move(p));
    }
  }
  return changed;
}

}  // namespace moqo
