// Multi-objective Simulated Annealing (the paper's "SA" baseline).
//
// A generalization of the SAIO variant described by Steinbrunn et al.
// (VLDBJ'97). The single-objective algorithm accepts a random neighbor if
// it is cheaper, and otherwise with probability exp(-delta / T). Following
// the paper (Section 6.1), the multi-objective generalization replaces the
// scalar cost delta by the cost difference between current plan and
// neighbor *averaged over all cost metrics*, and chooses the initial
// temperature as described by Steinbrunn et al. (proportional to the start
// plan's cost). Every accepted plan is offered to a Pareto archive, which
// forms the anytime result set.
//
// One session Step() is one "epoch" of kSaMovesPerEpoch proposed moves
// (the cadence at which the pre-redesign implementation reported frontier
// updates). The chain state (current plan, temperature, stage counters)
// lives in the session.
//
// Note: with plan costs spanning many orders of magnitude, the
// absolute-delta acceptance rule makes SA behave like a random walk until
// the temperature drops below the cost scale — the paper observes exactly
// this (SA and 2P trail the other algorithms by >100 orders of magnitude).
// A scale-normalized variant (`normalize_delta`) is provided as an
// extension and used by the ablation benches.
#ifndef MOQO_BASELINES_SIMULATED_ANNEALING_H_
#define MOQO_BASELINES_SIMULATED_ANNEALING_H_

#include <memory>

#include "core/optimizer.h"
#include "pareto/pareto_archive.h"

namespace moqo {

/// Proposed moves per session step (and per callback batch of the blocking
/// wrapper).
inline constexpr int kSaMovesPerEpoch = 64;

/// Configuration for the SA baseline (defaults follow SAIO).
struct SaConfig {
  /// Initial temperature as a multiple of the start plan's average cost
  /// (Steinbrunn et al. use T0 = 2 * cost(start)).
  double initial_temperature_factor = 2.0;
  /// Multiplicative cooling per temperature stage.
  double cooling = 0.95;
  /// Neighbors examined per temperature stage, as a multiple of the plan
  /// node count (SAIO uses 16 * nodes).
  int stage_length_factor = 16;
  /// The system is frozen once the temperature falls below this fraction
  /// of the current plan's average cost; the chain then restarts from a
  /// fresh random plan so the algorithm stays anytime.
  double frozen_fraction = 1e-7;
  /// Extension (not the paper's baseline): divide the cost delta by the
  /// current plan's average cost, making acceptance scale-free.
  bool normalize_delta = false;
  /// Optional fixed start plan (used by two-phase optimization); when null
  /// a random plan is drawn.
  PlanPtr start_plan;
  /// Stop after this many epochs of kSaMovesPerEpoch moves (0 = until
  /// deadline). Gives stepped runs a deterministic end.
  int max_epochs = 0;
};

/// One incremental SA run; each Step() is one epoch of proposed moves.
class SaSession : public OptimizerSession {
 public:
  explicit SaSession(SaConfig config = SaConfig())
      : config_(std::move(config)) {}

  std::vector<PlanPtr> CurrentFrontier() const override { return archive_.plans(); }
  bool Done() const override {
    return config_.max_epochs > 0 && epochs_ >= config_.max_epochs;
  }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "sa"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  SaConfig config_;
  ParetoArchive archive_;
  PlanPtr current_;
  double temperature_ = 0.0;
  int stage_length_ = 0;
  int stage_step_ = 0;
  int epochs_ = 0;
};

/// Simulated annealing with Pareto archiving.
class SimulatedAnnealing : public Optimizer {
 public:
  explicit SimulatedAnnealing(SaConfig config = SaConfig())
      : config_(std::move(config)) {}

  std::string name() const override { return "SA"; }

  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<SaSession>(config_);
  }

 private:
  SaConfig config_;
};

/// Average cost difference between `to` and `from` over all metrics:
/// mean_k(to_k - from_k). Negative means improvement. Exposed for tests.
double AverageDelta(const CostVector& from, const CostVector& to);

/// Average of a cost vector's components (temperature scale). Exposed for
/// tests.
double AverageCost(const CostVector& c);

}  // namespace moqo

#endif  // MOQO_BASELINES_SIMULATED_ANNEALING_H_
