// NSGA-II (the paper's genetic-algorithm baseline).
//
// The Non-dominated Sorting Genetic Algorithm II of Deb et al. applied to
// query optimization exactly as the paper describes (Section 6.1): plans
// are encoded with the ordinal (left-deep) encoding of Steinbrunn et al.
// plus operator genes, recombined with single-point crossover, and evolved
// with binary-tournament selection on (rank, crowding distance), elitist
// (mu + lambda) survival, population 200. All evaluated plans feed a Pareto
// archive that forms the anytime result set.
//
// The session's first Step() draws and ranks the initial population; every
// later Step() is one generation. Population, archive, and generation
// counter live in the session.
#ifndef MOQO_BASELINES_NSGA2_H_
#define MOQO_BASELINES_NSGA2_H_

#include <memory>
#include <vector>

#include "core/optimizer.h"
#include "cost/cost_matrix.h"
#include "pareto/pareto_archive.h"

namespace moqo {

/// Configuration for the NSGA-II baseline (defaults follow Deb et al.).
struct Nsga2Config {
  int population_size = 200;
  /// Crossover probability (Deb et al. use 0.9).
  double crossover_probability = 0.9;
  /// Per-gene mutation probability; <= 0 means 1 / genome_length.
  double mutation_probability = -1.0;
  /// Stop after this many generations (0 = until deadline).
  int max_generations = 0;
};

/// Genome of one individual: an ordinal join-order encoding (entry i picks
/// the i-th table out of the remaining tables, so gene i ranges over
/// [0, n-1-i]), one scan-operator gene per table, and one join-operator
/// gene per join of the left-deep plan.
struct Nsga2Genome {
  std::vector<int> order;      // size n, order[i] in [0, n-1-i]
  std::vector<int> scan_ops;   // size n
  std::vector<int> join_ops;   // size n-1
};

/// One individual of the evolving population.
struct Nsga2Individual {
  Nsga2Genome genome;
  PlanPtr plan;
  int rank = 0;
  double crowding = 0.0;
};

/// Fast non-dominated sort: returns the front index (0 = best) of each cost
/// row. The matrix form is the hot path — the pairwise dominance loop runs
/// fused one-pass comparisons over contiguous rows.
std::vector<int> FastNonDominatedSort(const CostMatrix& costs);

/// Convenience overload for unit tests and callers holding CostVectors;
/// delegates to the matrix form (identical results).
std::vector<int> FastNonDominatedSort(const std::vector<CostVector>& costs);

/// Crowding distances within one front (indices into `costs` rows);
/// boundary points receive +infinity.
std::vector<double> CrowdingDistances(const CostMatrix& costs,
                                      const std::vector<int>& front);

/// Convenience overload; delegates to the matrix form (identical results).
std::vector<double> CrowdingDistances(const std::vector<CostVector>& costs,
                                      const std::vector<int>& front);

/// Decodes a genome into a left-deep plan. Exposed for unit tests.
PlanPtr DecodeGenome(const Nsga2Genome& genome, PlanFactory* factory);

/// Draws a uniformly random valid genome for the factory's query.
Nsga2Genome RandomGenome(PlanFactory* factory, Rng* rng);

/// One incremental NSGA-II run; Step() = population init, then one
/// generation per step.
class Nsga2Session : public OptimizerSession {
 public:
  explicit Nsga2Session(Nsga2Config config = Nsga2Config())
      : config_(config) {}

  std::vector<PlanPtr> CurrentFrontier() const override { return archive_.plans(); }
  bool Done() const override {
    // An empty population can never evolve: the run produces nothing
    // (matching the blocking implementation's early exit).
    if (config_.population_size <= 0) return true;
    return initialized_ && config_.max_generations > 0 &&
           generation_ >= config_.max_generations;
  }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "nsga2"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  Nsga2Config config_;
  ParetoArchive archive_;
  std::vector<Nsga2Individual> population_;
  double mutation_probability_ = 0.0;
  int generation_ = 0;
  bool initialized_ = false;
};

/// The NSGA-II optimizer.
class Nsga2 : public Optimizer {
 public:
  explicit Nsga2(Nsga2Config config = Nsga2Config()) : config_(config) {}

  std::string name() const override { return "NSGA-II"; }

  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<Nsga2Session>(config_);
  }

 private:
  Nsga2Config config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_NSGA2_H_
