// Multi-objective Iterative Improvement (the paper's "II" baseline).
//
// The classic II algorithm (Steinbrunn et al., VLDBJ'97) repeatedly climbs
// from random start plans to local optima and keeps the best plan found.
// The multi-objective generalization climbs with the same fast Pareto
// climbing function as RMQ (Algorithm 2 — the paper explicitly gives II the
// efficient climber too) and archives every local optimum in a
// non-dominated result set. One session Step() is one restart (random plan
// + climb + archive insert).
#ifndef MOQO_BASELINES_ITERATIVE_IMPROVEMENT_H_
#define MOQO_BASELINES_ITERATIVE_IMPROVEMENT_H_

#include <memory>

#include "core/optimizer.h"
#include "pareto/pareto_archive.h"

namespace moqo {

/// Configuration for the II baseline.
struct IiConfig {
  /// If true (default), uses the fast ParetoClimb; if false, the naive
  /// climber (for ablations).
  bool fast_climb = true;
  /// Stop after this many restarts (0 = until deadline).
  int max_iterations = 0;
};

/// One incremental II run; each Step() is one random restart + climb.
class IiSession : public OptimizerSession {
 public:
  explicit IiSession(IiConfig config = IiConfig()) : config_(config) {}

  std::vector<PlanPtr> CurrentFrontier() const override { return archive_.plans(); }
  bool Done() const override {
    return config_.max_iterations > 0 &&
           iterations_ >= config_.max_iterations;
  }

 protected:
  void OnBegin() override;
  bool DoStep(const Deadline& budget) override;
  const char* CheckpointTag() const override { return "ii"; }
  void OnCheckpoint(CheckpointWriter* writer) const override;
  bool OnRestore(CheckpointReader* reader) override;

 private:
  IiConfig config_;
  ParetoArchive archive_;
  int iterations_ = 0;
};

/// Iterative improvement with Pareto archiving.
class IterativeImprovement : public Optimizer {
 public:
  explicit IterativeImprovement(IiConfig config = IiConfig())
      : config_(config) {}

  std::string name() const override { return "II"; }

  std::unique_ptr<OptimizerSession> NewSession() const override {
    return std::make_unique<IiSession>(config_);
  }

 private:
  IiConfig config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_ITERATIVE_IMPROVEMENT_H_
