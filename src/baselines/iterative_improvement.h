// Multi-objective Iterative Improvement (the paper's "II" baseline).
//
// The classic II algorithm (Steinbrunn et al., VLDBJ'97) repeatedly climbs
// from random start plans to local optima and keeps the best plan found.
// The multi-objective generalization climbs with the same fast Pareto
// climbing function as RMQ (Algorithm 2 — the paper explicitly gives II the
// efficient climber too) and archives every local optimum in a
// non-dominated result set.
#ifndef MOQO_BASELINES_ITERATIVE_IMPROVEMENT_H_
#define MOQO_BASELINES_ITERATIVE_IMPROVEMENT_H_

#include "core/optimizer.h"

namespace moqo {

/// Configuration for the II baseline.
struct IiConfig {
  /// If true (default), uses the fast ParetoClimb; if false, the naive
  /// climber (for ablations).
  bool fast_climb = true;
  /// Stop after this many restarts (0 = until deadline).
  int max_iterations = 0;
};

/// Iterative improvement with Pareto archiving.
class IterativeImprovement : public Optimizer {
 public:
  explicit IterativeImprovement(IiConfig config = IiConfig())
      : config_(config) {}

  std::string name() const override { return "II"; }

  std::vector<PlanPtr> Optimize(PlanFactory* factory, Rng* rng,
                                const Deadline& deadline,
                                const AnytimeCallback& callback) override;

 private:
  IiConfig config_;
};

}  // namespace moqo

#endif  // MOQO_BASELINES_ITERATIVE_IMPROVEMENT_H_
