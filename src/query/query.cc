#include "query/query.h"

// Query is fully defined inline; this translation unit anchors the library.
