// Join graph: which tables are connected by join predicates, and how
// selective those predicates are.
//
// The query model follows the paper's Section 3: a query is a set of tables;
// join predicates connect pairs of tables with a selectivity in (0, 1].
// Table pairs without a predicate may still be joined (the paper evaluates
// an *unconstrained* bushy plan space), in which case the join is a cross
// product with selectivity 1.
#ifndef MOQO_QUERY_JOIN_GRAPH_H_
#define MOQO_QUERY_JOIN_GRAPH_H_

#include <vector>

#include "common/table_set.h"

namespace moqo {

/// One binary join predicate between two tables.
struct JoinEdge {
  int left = 0;
  int right = 0;
  /// Fraction of the cross product surviving the predicate, in (0, 1].
  double selectivity = 1.0;
};

/// Bit-exact equality (selectivity compared by value, no tolerance).
inline bool operator==(const JoinEdge& a, const JoinEdge& b) {
  return a.left == b.left && a.right == b.right &&
         a.selectivity == b.selectivity;
}
inline bool operator!=(const JoinEdge& a, const JoinEdge& b) {
  return !(a == b);
}

/// Undirected multigraph of join predicates over `num_tables` tables.
class JoinGraph {
 public:
  JoinGraph() : num_tables_(0) {}

  /// Creates a graph over `num_tables` tables with no edges.
  explicit JoinGraph(int num_tables);

  /// Adds a predicate between tables `a` and `b` with `selectivity`.
  void AddEdge(int a, int b, double selectivity);

  /// Number of tables.
  int NumTables() const { return num_tables_; }

  /// All predicates.
  const std::vector<JoinEdge>& Edges() const { return edges_; }

  /// Product of selectivities of all predicates with one endpoint in `a`
  /// and the other in `b`. Returns 1.0 when no predicate connects the sets
  /// (a pure cross product).
  double SelectivityBetween(const TableSet& a, const TableSet& b) const;

  /// Product of selectivities of all predicates with both endpoints in `s`.
  /// This is the total predicate filter applied within an intermediate
  /// result joining exactly the tables of `s`.
  double SelectivityWithin(const TableSet& s) const;

  /// True if any predicate connects `a` and `b` (i.e., the join would not be
  /// a cross product).
  bool Connected(const TableSet& a, const TableSet& b) const;

  /// True if the sub-graph induced by `s` is connected.
  bool InducedConnected(const TableSet& s) const;

  /// Tables adjacent to table `t` via at least one predicate.
  TableSet Neighbors(int t) const;

 private:
  int num_tables_;
  std::vector<JoinEdge> edges_;
  std::vector<TableSet> adjacency_;  // adjacency_[t] = neighbor set of t
};

/// Structural equality: same table count and the same predicate list in the
/// same order. Order matters because selectivity products are accumulated
/// in edge order, so only order-identical graphs are guaranteed to stamp
/// bit-identical costs.
inline bool operator==(const JoinGraph& a, const JoinGraph& b) {
  return a.NumTables() == b.NumTables() && a.Edges() == b.Edges();
}
inline bool operator!=(const JoinGraph& a, const JoinGraph& b) {
  return !(a == b);
}

}  // namespace moqo

#endif  // MOQO_QUERY_JOIN_GRAPH_H_
