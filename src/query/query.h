// A query = a catalog + a join graph + the set of tables to join.
#ifndef MOQO_QUERY_QUERY_H_
#define MOQO_QUERY_QUERY_H_

#include <memory>

#include "common/table_set.h"
#include "query/catalog.h"
#include "query/join_graph.h"

namespace moqo {

/// An immutable join query over `NumTables()` tables (ids 0..n-1).
///
/// Following the paper's formal model (Section 3), a query is simply the set
/// of tables to be joined; the join graph supplies predicate selectivities
/// and the catalog supplies base-table statistics. Query objects are shared
/// by plans, cost models, and optimizers via shared_ptr.
class Query {
 public:
  Query(Catalog catalog, JoinGraph graph)
      : catalog_(std::move(catalog)), graph_(std::move(graph)) {}

  /// Number of tables joined by the query.
  int NumTables() const { return catalog_.NumTables(); }

  /// The set {0, ..., NumTables()-1} of all query tables.
  TableSet AllTables() const { return TableSet::FirstN(NumTables()); }

  /// Base-table statistics.
  const Catalog& catalog() const { return catalog_; }

  /// Join predicates.
  const JoinGraph& graph() const { return graph_; }

 private:
  Catalog catalog_;
  JoinGraph graph_;
};

/// Structural equality: identical catalog statistics and predicate lists.
/// Two equal queries produce bit-identical cost stampings under the same
/// cost model — the property a wire decoder relies on when it rebuilds a
/// query on another shard and restores a checkpoint against it.
inline bool operator==(const Query& a, const Query& b) {
  return a.catalog() == b.catalog() && a.graph() == b.graph();
}
inline bool operator!=(const Query& a, const Query& b) { return !(a == b); }

using QueryPtr = std::shared_ptr<const Query>;

}  // namespace moqo

#endif  // MOQO_QUERY_QUERY_H_
