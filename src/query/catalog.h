// Database catalog: per-table statistics used by the cost model.
#ifndef MOQO_QUERY_CATALOG_H_
#define MOQO_QUERY_CATALOG_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace moqo {

/// Statistics for one base table.
struct TableStats {
  /// Number of rows.
  double cardinality = 1000.0;
  /// Average row width in bytes (drives page counts).
  double tuple_bytes = 100.0;
  /// Whether an index exists on the table's join column; enables IndexScan
  /// and index-nested-loop joins on this table.
  bool has_index = false;
};

/// Bit-exact equality (doubles compared by value, no tolerance): two equal
/// stats stamp identical costs, which is what wire round-trip verification
/// and shard-compatibility checks need.
inline bool operator==(const TableStats& a, const TableStats& b) {
  return a.cardinality == b.cardinality && a.tuple_bytes == b.tuple_bytes &&
         a.has_index == b.has_index;
}
inline bool operator!=(const TableStats& a, const TableStats& b) {
  return !(a == b);
}

/// Immutable collection of table statistics, indexed by table id.
class Catalog {
 public:
  Catalog() = default;

  /// Builds a catalog over `stats.size()` tables.
  explicit Catalog(std::vector<TableStats> stats) : stats_(std::move(stats)) {}

  /// Appends a table; returns its id.
  int AddTable(const TableStats& stats) {
    stats_.push_back(stats);
    return static_cast<int>(stats_.size()) - 1;
  }

  /// Number of tables in the catalog.
  int NumTables() const { return static_cast<int>(stats_.size()); }

  /// Statistics for table `id`.
  const TableStats& Table(int id) const {
    assert(id >= 0 && id < NumTables());
    return stats_[static_cast<size_t>(id)];
  }

  /// Rows of table `id` (convenience accessor).
  double Cardinality(int id) const { return Table(id).cardinality; }

 private:
  std::vector<TableStats> stats_;
};

/// Table-by-table bit-exact equality.
inline bool operator==(const Catalog& a, const Catalog& b) {
  if (a.NumTables() != b.NumTables()) return false;
  for (int t = 0; t < a.NumTables(); ++t) {
    if (a.Table(t) != b.Table(t)) return false;
  }
  return true;
}
inline bool operator!=(const Catalog& a, const Catalog& b) {
  return !(a == b);
}

}  // namespace moqo

#endif  // MOQO_QUERY_CATALOG_H_
