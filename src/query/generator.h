// Random query generation following the paper's experimental setup (§6.1
// and appendix):
//
//  * join graph structures: chain, cycle, star (plus a connected random
//    graph used by extension experiments);
//  * table cardinalities drawn by stratified sampling from the distribution
//    of Steinbrunn et al. (VLDBJ'97): strata 10-100, 100-1k, 1k-10k, 10k-100k
//    rows;
//  * join predicate selectivities either from the Steinbrunn distribution
//    (uniform magnitudes) or via the MinMax method of Bruno (ICDE'10), where
//    each join output cardinality lies between its input cardinalities.
#ifndef MOQO_QUERY_GENERATOR_H_
#define MOQO_QUERY_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "query/query.h"

namespace moqo {

/// Join graph topology of a generated query.
enum class GraphType {
  kChain,
  kCycle,
  kStar,
  /// Connected Erdos-Renyi-style graph (spanning tree + random extra edges).
  kRandom,
};

/// Returns "chain", "cycle", "star", or "random".
std::string ToString(GraphType type);

/// How join predicate selectivities are drawn.
enum class SelectivityModel {
  /// Steinbrunn et al.: uniform over magnitudes in [1e-4, 1].
  kSteinbrunn,
  /// Bruno MinMax: each join output cardinality lies between the input
  /// cardinalities.
  kMinMax,
};

/// Returns "steinbrunn" or "minmax".
std::string ToString(SelectivityModel model);

/// Parameters for random query generation.
struct GeneratorConfig {
  int num_tables = 10;
  GraphType graph_type = GraphType::kChain;
  SelectivityModel selectivity_model = SelectivityModel::kSteinbrunn;
  /// Probability that a table carries an index on its join column; indexes
  /// enable the index-scan operator variants.
  double index_probability = 0.5;
  /// Extra edge probability for GraphType::kRandom (per non-tree pair).
  double random_extra_edge_probability = 0.1;
};

/// Generates a random query according to `config`, drawing from `rng`.
QueryPtr GenerateQuery(const GeneratorConfig& config, Rng* rng);

/// Draws one table cardinality with the stratified Steinbrunn distribution.
double SampleCardinality(Rng* rng, int stratum_index);

}  // namespace moqo

#endif  // MOQO_QUERY_GENERATOR_H_
