#include "query/catalog.h"

// Catalog is fully defined inline; this translation unit anchors the library.
