#include "query/join_graph.h"

#include <cassert>

namespace moqo {

JoinGraph::JoinGraph(int num_tables) : num_tables_(num_tables) {
  assert(num_tables >= 0 && num_tables <= TableSet::kCapacity);
  adjacency_.resize(static_cast<size_t>(num_tables));
}

void JoinGraph::AddEdge(int a, int b, double selectivity) {
  assert(a >= 0 && a < num_tables_);
  assert(b >= 0 && b < num_tables_);
  assert(a != b);
  assert(selectivity > 0.0 && selectivity <= 1.0);
  edges_.push_back(JoinEdge{a, b, selectivity});
  adjacency_[static_cast<size_t>(a)].Add(b);
  adjacency_[static_cast<size_t>(b)].Add(a);
}

double JoinGraph::SelectivityBetween(const TableSet& a,
                                     const TableSet& b) const {
  double sel = 1.0;
  for (const JoinEdge& e : edges_) {
    bool crosses = (a.Contains(e.left) && b.Contains(e.right)) ||
                   (a.Contains(e.right) && b.Contains(e.left));
    if (crosses) sel *= e.selectivity;
  }
  return sel;
}

double JoinGraph::SelectivityWithin(const TableSet& s) const {
  double sel = 1.0;
  for (const JoinEdge& e : edges_) {
    if (s.Contains(e.left) && s.Contains(e.right)) sel *= e.selectivity;
  }
  return sel;
}

bool JoinGraph::Connected(const TableSet& a, const TableSet& b) const {
  for (const JoinEdge& e : edges_) {
    bool crosses = (a.Contains(e.left) && b.Contains(e.right)) ||
                   (a.Contains(e.right) && b.Contains(e.left));
    if (crosses) return true;
  }
  return false;
}

bool JoinGraph::InducedConnected(const TableSet& s) const {
  if (s.Empty()) return true;
  // Breadth-first expansion within s using the adjacency sets.
  TableSet visited = TableSet::Singleton(s.Min());
  bool grew = true;
  while (grew) {
    grew = false;
    TableSet frontier;
    visited.ForEach([&](int t) {
      frontier = frontier.Union(adjacency_[static_cast<size_t>(t)]);
    });
    TableSet next = visited.Union(frontier.Intersect(s));
    if (next != visited) {
      visited = next;
      grew = true;
    }
  }
  return visited == s;
}

TableSet JoinGraph::Neighbors(int t) const {
  assert(t >= 0 && t < num_tables_);
  return adjacency_[static_cast<size_t>(t)];
}

}  // namespace moqo
