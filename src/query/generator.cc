#include "query/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace moqo {

std::string ToString(GraphType type) {
  switch (type) {
    case GraphType::kChain:
      return "chain";
    case GraphType::kCycle:
      return "cycle";
    case GraphType::kStar:
      return "star";
    case GraphType::kRandom:
      return "random";
  }
  return "unknown";
}

std::string ToString(SelectivityModel model) {
  switch (model) {
    case SelectivityModel::kSteinbrunn:
      return "steinbrunn";
    case SelectivityModel::kMinMax:
      return "minmax";
  }
  return "unknown";
}

double SampleCardinality(Rng* rng, int stratum_index) {
  // Steinbrunn et al. use relation cardinalities stratified over four
  // decades: [10,100), [100,1k), [1k,10k), [10k,100k). Stratified sampling
  // cycles through the strata so every query mixes small and large tables.
  static constexpr double kLo[] = {10.0, 100.0, 1000.0, 10000.0};
  int s = stratum_index % 4;
  // Log-uniform within the stratum.
  double lo = kLo[s];
  double hi = lo * 10.0;
  double u = rng->Uniform01();
  return std::floor(lo * std::pow(hi / lo, u));
}

namespace {

// Selectivity for an edge between tables with cardinalities ca and cb.
double DrawSelectivity(SelectivityModel model, double ca, double cb,
                       Rng* rng) {
  switch (model) {
    case SelectivityModel::kSteinbrunn: {
      // Log-uniform over [1e-4, 1]: matches the broad magnitude spread used
      // by Steinbrunn et al. for join predicate selectivities.
      double u = rng->Uniform01();
      return std::pow(10.0, -4.0 * u);
    }
    case SelectivityModel::kMinMax: {
      // Bruno's MinMax method: the join output cardinality ca*cb*sel must
      // lie between min(ca, cb) and max(ca, cb). Draw the target output
      // cardinality log-uniformly within that band.
      double lo = std::min(ca, cb);
      double hi = std::max(ca, cb);
      double u = rng->Uniform01();
      double out = lo * std::pow(hi / lo, u);
      double sel = out / (ca * cb);
      return std::clamp(sel, 1e-12, 1.0);
    }
  }
  return 1.0;
}

}  // namespace

QueryPtr GenerateQuery(const GeneratorConfig& config, Rng* rng) {
  const int n = config.num_tables;
  assert(n >= 1 && n <= TableSet::kCapacity);

  // Stratified cardinalities: shuffle stratum assignments so the mapping of
  // strata to table ids is random but the overall mix is balanced.
  std::vector<int> strata(static_cast<size_t>(n));
  std::iota(strata.begin(), strata.end(), 0);
  std::shuffle(strata.begin(), strata.end(), rng->engine());

  Catalog catalog;
  for (int t = 0; t < n; ++t) {
    TableStats stats;
    stats.cardinality = SampleCardinality(rng, strata[static_cast<size_t>(t)]);
    stats.tuple_bytes = 8.0 * rng->UniformInt(4, 32);  // 32..256 bytes
    stats.has_index = rng->Bernoulli(config.index_probability);
    catalog.AddTable(stats);
  }

  JoinGraph graph(n);
  auto add_edge = [&](int a, int b) {
    double sel = DrawSelectivity(config.selectivity_model,
                                 catalog.Cardinality(a),
                                 catalog.Cardinality(b), rng);
    graph.AddEdge(a, b, sel);
  };

  switch (config.graph_type) {
    case GraphType::kChain:
      for (int t = 0; t + 1 < n; ++t) add_edge(t, t + 1);
      break;
    case GraphType::kCycle:
      for (int t = 0; t + 1 < n; ++t) add_edge(t, t + 1);
      if (n > 2) add_edge(n - 1, 0);
      break;
    case GraphType::kStar:
      // Table 0 is the fact table; all others are dimensions.
      for (int t = 1; t < n; ++t) add_edge(0, t);
      break;
    case GraphType::kRandom: {
      // Random spanning tree (each node attaches to a random predecessor)
      // plus extra edges with the configured probability.
      for (int t = 1; t < n; ++t) add_edge(rng->UniformInt(0, t - 1), t);
      for (int a = 0; a < n; ++a) {
        for (int b = a + 2; b < n; ++b) {
          if (rng->Bernoulli(config.random_extra_edge_probability)) {
            add_edge(a, b);
          }
        }
      }
      break;
    }
  }

  return std::make_shared<Query>(std::move(catalog), std::move(graph));
}

}  // namespace moqo
