#!/usr/bin/env python3
"""moqo-lint: determinism and portability checks for the moqo tree.

The service's core promise is bitwise-identical Pareto frontiers under any
thread count, sharding layout, migration schedule, failover, or cache
warm-start. Most regressions against that promise are not logic bugs but
*byte* bugs: hash-map iteration order leaking into serialized state, a
wall clock leaking into results, or a checkpoint stream that cannot be
versioned. This linter catches those patterns at review time, before they
cost a bisect.

Rules (ids are stable; use them in allow comments):

  unordered-serialization
      A range-for over a std::unordered_map/unordered_set whose body
      serializes bytes (Write*/Encode*/Serialize*/Fingerprint* calls).
      Iteration order of unordered containers depends on hash seeding and
      insertion history, so such loops make checkpoints, wire frames, and
      fingerprints nondeterministic. Sort the keys first (see
      WritePlanCache in src/core/checkpoint.cc) or iterate an ordered
      container.

  wall-clock
      std::chrono::system_clock, rand(), or std::random_device outside
      the approved sites (src/common/deadline.h and bench/ mains). Wall
      time and ambient randomness are the two classic ways identical runs
      diverge; the codebase uses steady_clock and per-task seeded Rng
      streams instead.

  raw-pthread
      Direct pthread_* calls in src/. The tree standardizes on
      std::thread plus the annotated moqo::Mutex/CondVar wrappers
      (src/common/thread_annotations.h) so Clang thread-safety analysis
      sees every lock.

  raw-new-array
      `new T[n]` in src/. Use std::make_unique<T[]> (or a vector) so
      ownership is typed and the matching delete[] cannot be forgotten.

  checkpoint-magic
      A CheckpointWriter whose byte stream reaches Take() without any
      *Magic* token being written. Unversioned streams cannot be rejected
      by a reader from another build, which turns layout changes into
      silent corruption. Streams that never leave the process (cache
      bytes, hash inputs) or that ride inside an already-versioned
      envelope may carry an allow comment saying so.

Suppression: append `// moqo-lint: allow(<rule-id>)` to the offending
line, or place it on the line directly above, with a comment explaining
why the site is safe.

Self-test: `moqo_lint.py --self-test` runs every rule against the
committed fixtures in tests/lint_fixtures/ — each bad_<rule>.cc must
produce exactly its `// expect: <rule-id>` markers, each good_<rule>.cc
must produce none — so the linter's own regressions fail CI like any
other test.
"""

import argparse
import os
import re
import sys

RULE_IDS = (
    "unordered-serialization",
    "wall-clock",
    "raw-pthread",
    "raw-new-array",
    "checkpoint-magic",
)

ALLOW_RE = re.compile(r"//\s*moqo-lint:\s*allow\(([a-z,\s-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")

# An identifier declared as (or an accessor returning) an unordered
# container: everything after the template argument list's final '>'.
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
DECL_NAME_RE = re.compile(r">\s*&?\s*([A-Za-z_]\w*)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(.+?)\)\s*\{")
SERIALIZE_CALL_RE = re.compile(
    r"\b(?:Write[A-Z]\w*|Encode\w*|Serialize\w*|Fingerprint\w*)\s*\(")

WALL_CLOCK_RES = (
    re.compile(r"std::chrono::system_clock"),
    re.compile(r"\brand\s*\(\s*\)"),
    re.compile(r"\bstd::random_device\b|\brandom_device\s+\w"),
)
WALL_CLOCK_ALLOWED_SUFFIXES = ("src/common/deadline.h",)
WALL_CLOCK_ALLOWED_DIRS = ("bench/",)

PTHREAD_RE = re.compile(r"\bpthread_\w+\s*\(")
NEW_ARRAY_RE = re.compile(r"\bnew\s+[A-Za-z_][\w:]*(?:\s*<[^;{]*?>)?\s*\[")

CHECKPOINT_WRITER_RE = re.compile(r"\bCheckpointWriter\s+([A-Za-z_]\w*)\s*;")
MAGIC_TOKEN_RE = re.compile(r"Magic")

LINE_COMMENT_RE = re.compile(r"^\s*(//|\*|/\*)")


def is_allowed(lines, index, rule):
    """True if line `index` (0-based) or the one above carries an allow
    comment naming `rule`."""
    for probe in (index, index - 1):
        if probe < 0:
            continue
        match = ALLOW_RE.search(lines[probe])
        if match and rule in [r.strip() for r in match.group(1).split(",")]:
            return True
    return False


def collect_unordered_names(files):
    """All identifiers declared as / returning unordered containers across
    the scan set (declarations in headers guard loops in .cc files)."""
    names = set()
    for _, lines in files:
        for line in lines:
            if not UNORDERED_DECL_RE.search(line):
                continue
            matches = DECL_NAME_RE.findall(line)
            if matches:
                names.add(matches[-1])
    return names


def body_of_brace_block(lines, start_index, open_col):
    """Text from the '{' at (start_index, open_col) to its matching '}'.
    Bounded: gives up (returning what it has) after 200 lines."""
    depth = 0
    collected = []
    for i in range(start_index, min(start_index + 200, len(lines))):
        segment = lines[i][open_col:] if i == start_index else lines[i]
        for ch in segment:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    collected.append(segment[: segment.index("}")])
                    return "\n".join(collected)
        collected.append(segment)
    return "\n".join(collected)


def check_unordered_serialization(path, lines, unordered_names, findings):
    for i, line in enumerate(lines):
        if LINE_COMMENT_RE.match(line):
            continue
        match = RANGE_FOR_RE.search(line)
        if not match:
            continue
        iterable = match.group(1)
        words = set(re.findall(r"[A-Za-z_]\w*", iterable))
        if not (words & unordered_names) and "unordered_" not in iterable:
            continue
        open_col = line.index("{", match.end() - 1)
        body = body_of_brace_block(lines, i, open_col)
        if SERIALIZE_CALL_RE.search(body):
            findings.append((
                path, i + 1, "unordered-serialization",
                "range-for over an unordered container feeds serialized "
                "bytes; sort keys into canonical order first",
            ))


def check_wall_clock(path, lines, findings):
    normalized = path.replace(os.sep, "/")
    if normalized.endswith(WALL_CLOCK_ALLOWED_SUFFIXES):
        return
    if any("/" + d in normalized or normalized.startswith(d)
           for d in WALL_CLOCK_ALLOWED_DIRS):
        return
    for i, line in enumerate(lines):
        if LINE_COMMENT_RE.match(line):
            continue
        for pattern in WALL_CLOCK_RES:
            if pattern.search(line):
                findings.append((
                    path, i + 1, "wall-clock",
                    "wall-clock/ambient randomness outside approved sites; "
                    "use steady_clock (common/deadline.h) or a seeded Rng",
                ))
                break


def check_raw_pthread(path, lines, treat_as_src, findings):
    if not treat_as_src:
        return
    for i, line in enumerate(lines):
        if LINE_COMMENT_RE.match(line):
            continue
        if PTHREAD_RE.search(line):
            findings.append((
                path, i + 1, "raw-pthread",
                "direct pthread_* call; use std::thread and the annotated "
                "wrappers in common/thread_annotations.h",
            ))


def check_raw_new_array(path, lines, treat_as_src, findings):
    if not treat_as_src:
        return
    for i, line in enumerate(lines):
        if LINE_COMMENT_RE.match(line):
            continue
        if NEW_ARRAY_RE.search(line):
            findings.append((
                path, i + 1, "raw-new-array",
                "raw array new; use std::make_unique<T[]> or a container",
            ))


def check_checkpoint_magic(path, lines, treat_as_src, findings):
    if not treat_as_src:
        # Tests hand-craft unversioned streams on purpose (round-trip and
        # corruption suites); the rule guards production streams in src/.
        return
    for i, line in enumerate(lines):
        if LINE_COMMENT_RE.match(line):
            continue
        match = CHECKPOINT_WRITER_RE.search(line)
        if not match:
            continue
        writer = match.group(1)
        take_re = re.compile(r"\b" + re.escape(writer) + r"\s*\.\s*Take\s*\(")
        saw_magic = False
        closed = False
        for j in range(i, min(i + 200, len(lines))):
            if MAGIC_TOKEN_RE.search(lines[j]):
                saw_magic = True
                break
            if j > i and take_re.search(lines[j]):
                closed = True
                break
        if closed and not saw_magic:
            findings.append((
                path, i + 1, "checkpoint-magic",
                "CheckpointWriter stream reaches Take() without a versioned "
                "magic token; readers cannot reject foreign layouts",
            ))


def lint_file(path, lines, unordered_names, treat_as_src):
    findings = []
    check_unordered_serialization(path, lines, unordered_names, findings)
    check_wall_clock(path, lines, findings)
    check_raw_pthread(path, lines, treat_as_src, findings)
    check_raw_new_array(path, lines, treat_as_src, findings)
    check_checkpoint_magic(path, lines, treat_as_src, findings)
    return [f for f in findings if not is_allowed(lines, f[1] - 1, f[2])]


def gather_files(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [
                d for d in dirnames
                if d not in ("lint_fixtures", "build", "CMakeFiles",
                             "_deps", ".git")
            ]
            for name in sorted(filenames):
                if name.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def read_all(paths):
    out = []
    for path in paths:
        with open(path, encoding="utf-8", errors="replace") as handle:
            out.append((path, handle.read().splitlines()))
    return out


def run_lint(roots):
    files = read_all(gather_files(roots))
    unordered_names = collect_unordered_names(files)
    findings = []
    for path, lines in files:
        normalized = path.replace(os.sep, "/")
        treat_as_src = "/src/" in normalized or normalized.startswith("src/")
        findings.extend(lint_file(path, lines, unordered_names, treat_as_src))
    return findings


def run_self_test(fixture_dir):
    files = read_all(gather_files([fixture_dir]))
    if not files:
        print(f"moqo-lint self-test: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 1
    unordered_names = collect_unordered_names(files)
    failures = 0
    for path, lines in files:
        # Fixtures exercise the src-only rules too, so every fixture is
        # linted as if it lived under src/.
        actual = {(f[1], f[2])
                  for f in lint_file(path, lines, unordered_names, True)}
        expected = set()
        for i, line in enumerate(lines):
            for rule in EXPECT_RE.findall(line):
                expected.add((i + 1, rule))
        name = os.path.basename(path)
        if name.startswith("good_") and expected:
            print(f"FAIL {name}: good fixtures must not carry expect "
                  f"markers")
            failures += 1
            continue
        if actual == expected:
            print(f"PASS {name}")
            continue
        failures += 1
        print(f"FAIL {name}")
        for line_no, rule in sorted(expected - actual):
            print(f"  missing: line {line_no} [{rule}]")
        for line_no, rule in sorted(actual - expected):
            print(f"  spurious: line {line_no} [{rule}]")
    total = len(files)
    print(f"moqo-lint self-test: {total - failures}/{total} fixtures pass")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*", default=["src", "tests", "bench"],
                        help="files or directories to scan")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against tests/lint_fixtures/")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return run_self_test(os.path.join(repo_root, "tests",
                                          "lint_fixtures"))

    roots = args.roots or ["src", "tests", "bench"]
    roots = [r if os.path.exists(r) else os.path.join(repo_root, r)
             for r in roots]
    findings = run_lint(roots)
    for path, line_no, rule, message in findings:
        print(f"{path}:{line_no}: [{rule}] {message}")
    if findings:
        print(f"moqo-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
