// End-to-end: optimize a query, then EXECUTE Pareto plans over a synthetic
// dataset and compare the cost model's predictions with reality.
//
//   $ ./examples/execute_plan [--tables=6] [--timeout-ms=300]
//
// Materializes base tables matching the query's catalog and selectivities,
// runs RMQ, executes three frontier plans (min-time, min-buffer, and a
// random plan for contrast), and reports actual result sizes, predicate
// evaluations, and largest intermediate results. The executed work tracks
// the optimizer's cost ordering — the property that makes the optimizer
// useful downstream.
#include <iostream>

#include "common/flags.h"
#include "core/rmq.h"
#include "exec/executor.h"
#include "plan/random_plan.h"
#include "query/generator.h"

using namespace moqo;

namespace {

void Run(const char* label, const PlanPtr& plan, Executor* exec) {
  ExecStats stats;
  auto result = exec->Execute(plan, &stats);
  std::cout << label << "\n  " << plan->ToString() << "\n";
  if (!result.has_value()) {
    std::cout << "  ABORTED: intermediate result exceeded the cap\n\n";
    return;
  }
  std::cout << "  result rows:        " << stats.rows_out << "\n"
            << "  comparisons:        " << stats.comparisons << "\n"
            << "  max intermediate:   " << stats.max_intermediate << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int tables = static_cast<int>(flags.GetInt("tables", 6));
  int64_t timeout_ms = flags.GetInt("timeout-ms", 300);

  // Build a chain query whose catalog matches the dataset we materialize
  // exactly (a few hundred rows per table, moderate selectivities), so the
  // optimizer's estimates line up with executed reality.
  Rng rng(4242);
  Catalog catalog;
  for (int t = 0; t < tables; ++t) {
    catalog.AddTable({static_cast<double>(rng.UniformInt(100, 400)), 100.0,
                      rng.Bernoulli(0.5)});
  }
  JoinGraph graph(tables);
  for (int t = 0; t + 1 < tables; ++t) {
    graph.AddEdge(t, t + 1, 0.001 * rng.UniformInt(2, 8));
  }
  QueryPtr query = std::make_shared<Query>(std::move(catalog),
                                           std::move(graph));
  CostModel cost_model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &cost_model);

  Rng data_rng(7);
  Dataset dataset(query, &data_rng, 1.0, 100000);
  Executor exec(&dataset, 5000000);

  std::cout << "Estimated result cardinality: "
            << factory.Cardinality(query->AllTables()) << " rows\n";

  std::cout << "Dataset: ";
  for (int t = 0; t < tables; ++t) {
    std::cout << "T" << t << "=" << dataset.RowsOf(t) << " ";
  }
  std::cout << "rows\n\n";

  Rmq optimizer;
  Rng opt_rng(1);
  std::vector<PlanPtr> frontier = optimizer.Optimize(
      &factory, &opt_rng, Deadline::AfterMillis(timeout_ms), nullptr);
  if (frontier.empty()) {
    std::cout << "optimizer produced no plan\n";
    return 1;
  }

  PlanPtr min_time = frontier.front();
  PlanPtr min_buffer = frontier.front();
  for (const PlanPtr& p : frontier) {
    if (p->cost()[0] < min_time->cost()[0]) min_time = p;
    if (p->cost()[1] < min_buffer->cost()[1]) min_buffer = p;
  }

  Run("Min-time Pareto plan:", min_time, &exec);
  Run("Min-buffer Pareto plan:", min_buffer, &exec);
  Rng rnd(99);
  Run("Random plan (for contrast):", RandomPlan(&factory, &rnd), &exec);

  std::cout << "All plans compute the same result multiset; they differ in "
               "the work and memory\nspent getting there — exactly the "
               "tradeoffs the optimizer's frontier captures.\n";
  return 0;
}
