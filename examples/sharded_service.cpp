// Sharded service demo: one Submit/Drain/Stop front door over several
// scheduler shards, with live resharding while queries are in flight.
//
//   $ ./examples/sharded_service
//
// Shows the ShardRouter lifecycle: queries are placed on shards by
// consistent hashing of their content + seed, AddShard() grows capacity
// mid-stream (rebalancing the affected in-flight queries via
// suspend -> wire round-trip -> resume), RemoveShard() drains a shard out
// of the fleet the same way, and Stop() returns one aggregated report in
// submission order. Exits non-zero if any frontier diverges from a
// blocking single-thread reference (it must not: sharding and rebalancing
// affect only placement and timing, never results).
#include <iostream>
#include <memory>
#include <vector>

#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/shard_router.h"

using namespace moqo;

int main() {
  // Sixteen 7-table queries, each bounded to 30 RMQ iterations.
  GeneratorConfig generator;
  generator.num_tables = 7;
  std::vector<BatchTask> workload =
      GenerateBatch(/*n=*/16, generator, /*master_seed=*/2016,
                    /*deadline_micros=*/0);

  OptimizerFactory make_rmq = [] {
    RmqConfig config;
    config.max_iterations = 30;
    return std::make_unique<Rmq>(config);
  };

  // Two shards of two workers each to start with.
  ShardRouterConfig config;
  config.num_shards = 2;
  config.shard.num_threads = 2;
  config.shard.steps_per_slice = 2;
  ShardRouter router(config, make_rmq);
  router.Start();

  std::vector<std::future<BatchTaskResult>> tickets;
  size_t added = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    std::cout << "query " << i << " -> shard "
              << router.ShardFor(workload[i]) << "\n";
    auto ticket = router.Submit(workload[i]);
    if (!ticket) {
      std::cerr << "query rejected\n";
      return 1;
    }
    tickets.push_back(std::move(*ticket));

    // Mid-stream elasticity: a third shard joins after the first half of
    // the stream, and leaves again near the end. Each membership change
    // rebalances the in-flight queries whose ring owner changed — their
    // sessions cross shards as wire frames (query + checkpoint + deadline
    // remainder), and their futures never notice.
    if (i == 7) {
      added = router.AddShard();
      std::cout << "-- shard " << added << " added ("
                << router.migrations() << " total migrations so far)\n";
    }
    if (i == 13) {
      router.RemoveShard(added);
      std::cout << "-- shard " << added << " removed ("
                << router.migrations() << " total migrations so far)\n";
    }
  }

  router.Drain();
  std::vector<BatchTaskResult> results;
  results.reserve(tickets.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    results.push_back(tickets[i].get());
    std::cout << "query " << i << ": " << results.back().frontier.size()
              << " Pareto plans after " << results.back().steps
              << " steps\n";
  }

  BatchReport report = router.Stop();
  std::cout << "\n"
            << report.Summary() << "rebalance migrations: "
            << report.migrated_tasks << "\n";

  // The determinism contract: sharding + resharding must reproduce the
  // blocking single-thread frontiers bit for bit.
  BatchConfig blocking;
  blocking.num_threads = 1;
  BatchReport reference = BatchOptimizer(blocking, make_rmq).Run(workload);
  bool identical = true;
  for (size_t i = 0; i < results.size(); ++i) {
    identical &=
        BitwiseEqual(results[i].frontier, reference.tasks[i].frontier);
  }
  std::cout << "\nvs blocking single-thread reference: frontiers "
            << (identical ? "bitwise identical" : "DIVERGED") << "\n";
  return identical ? 0 : 1;
}
