// Online service demo: admit queries to an already-running deadline-aware
// scheduler and consume per-query futures as they complete.
//
//   $ ./examples/online_service
//
// Shows the OnlineScheduler lifecycle: Start() spins up the workers,
// Submit() admits a query at any time (arming its deadline at admission and
// returning a std::future for its result), Drain() waits out the admitted
// backlog, and Stop() returns the aggregate report — including the
// deadline-hit rate, the service-level headline that the EDF policy
// improves over FIFO. Exits non-zero if the online frontiers diverge from
// a blocking single-thread reference (they must not: same seeds + same
// iteration budgets => bitwise-identical frontiers under any policy).
#include <iostream>
#include <memory>
#include <vector>

#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

using namespace moqo;

int main() {
  // Twelve 7-table queries, each bounded to 40 RMQ iterations. Half run
  // under a generous 2 s deadline, half without one.
  GeneratorConfig generator;
  generator.num_tables = 7;
  std::vector<BatchTask> workload =
      GenerateBatch(/*n=*/12, generator, /*master_seed=*/2016,
                    /*deadline_micros=*/0);
  for (size_t i = 0; i < workload.size(); i += 2) {
    workload[i].deadline_micros = 2 * 1000 * 1000;
  }

  OptimizerFactory make_rmq = [] {
    RmqConfig config;
    config.max_iterations = 40;
    return std::make_unique<Rmq>(config);
  };

  // An earliest-deadline-first service on two workers, with a bounded
  // admission window: at most 8 queries in flight, extra Submit()s block.
  OnlineConfig config;
  config.num_threads = 2;
  config.steps_per_slice = 2;
  config.policy = SchedulingPolicy::kEarliestDeadlineFirst;
  config.admission = AdmissionPolicy::kBlock;
  config.max_open = 8;
  OnlineScheduler service(config, make_rmq);
  service.Start();

  // Admission while the workers are already running; each ticket is a
  // future for that query's result.
  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : workload) {
    auto ticket = service.Submit(task);
    if (!ticket) {
      std::cerr << "query rejected\n";
      return 1;
    }
    tickets.push_back(std::move(*ticket));
  }

  for (auto& ticket : tickets) {
    BatchTaskResult result = ticket.get();
    std::cout << "query " << result.index << ": " << result.frontier.size()
              << " Pareto plans, admitted at " << result.admit_millis
              << " ms, done " << result.elapsed_millis << " ms later"
              << (result.had_deadline
                      ? (result.deadline_hit ? " (deadline hit)"
                                             : " (deadline MISSED)")
                      : "")
              << "\n";
  }

  BatchReport report = service.Stop();
  std::cout << "\n" << report.Summary();

  // The determinism contract: online EDF scheduling must reproduce the
  // blocking single-thread frontiers bit for bit.
  BatchConfig blocking;
  blocking.num_threads = 1;
  BatchReport reference = BatchOptimizer(blocking, make_rmq).Run(workload);
  BatchComparison cmp = CompareToReference(reference, report);
  std::cout << "\nvs blocking single-thread reference: frontiers "
            << (cmp.identical ? "bitwise identical" : "DIVERGED") << "\n";
  return cmp.identical ? 0 : 1;
}
