// Online service demo: admit queries to an already-running deadline-aware
// scheduler and consume per-query futures as they complete.
//
//   $ ./examples/online_service
//
// Shows the OnlineScheduler lifecycle: Start() spins up the workers,
// Submit() admits a query at any time (arming its deadline at admission and
// returning a std::future for its result), Drain() waits out the admitted
// backlog, and Stop() returns the aggregate report — including the
// deadline-hit rate, the service-level headline that the EDF policy
// improves over FIFO. Two of the queries are checkpointed off the primary
// scheduler mid-run (Suspend) and re-admitted to a standby instance
// (Resume) — live migration; their original futures still deliver. Exits
// non-zero if any frontier diverges from a blocking single-thread
// reference (it must not: same seeds + same iteration budgets =>
// bitwise-identical frontiers under any policy, even across a migration).
#include <iostream>
#include <memory>
#include <vector>

#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/online_scheduler.h"

using namespace moqo;

int main() {
  // Twelve 7-table queries, each bounded to 40 RMQ iterations. Half run
  // under a generous 2 s deadline, half without one.
  GeneratorConfig generator;
  generator.num_tables = 7;
  std::vector<BatchTask> workload =
      GenerateBatch(/*n=*/12, generator, /*master_seed=*/2016,
                    /*deadline_micros=*/0);
  for (size_t i = 0; i < workload.size(); i += 2) {
    workload[i].deadline_micros = 2 * 1000 * 1000;
  }

  OptimizerFactory make_rmq = [] {
    RmqConfig config;
    config.max_iterations = 40;
    return std::make_unique<Rmq>(config);
  };

  // An earliest-deadline-first service on two workers, with a bounded
  // admission window: at most 8 queries in flight, extra Submit()s block.
  OnlineConfig config;
  config.num_threads = 2;
  config.steps_per_slice = 2;
  config.policy = SchedulingPolicy::kEarliestDeadlineFirst;
  config.admission = AdmissionPolicy::kBlock;
  config.max_open = 8;
  OnlineScheduler service(config, make_rmq);
  service.Start();

  // Admission while the workers are already running; each ticket is a
  // future for that query's result.
  std::vector<std::future<BatchTaskResult>> tickets;
  for (const BatchTask& task : workload) {
    auto ticket = service.Submit(task);
    if (!ticket) {
      std::cerr << "query rejected\n";
      return 1;
    }
    tickets.push_back(std::move(*ticket));
  }

  // Live migration: drain two in-flight queries off the primary scheduler
  // — each suspension is a self-contained checkpoint of the session's
  // mid-run state — and re-admit them to a standby instance with the same
  // optimizer configuration. Their futures (handed out by the original
  // Submit) deliver the result from the standby, bit-for-bit the same as
  // if the queries had never moved.
  OnlineScheduler standby(config, make_rmq);
  standby.Start();
  int migrated = 0;
  // Odd indices are deadline-free, so EDF serves them last and they are
  // almost always still in flight when we get here.
  for (size_t index : {size_t{7}, size_t{11}}) {
    std::optional<SuspendedTask> suspended = service.Suspend(index);
    if (!suspended) continue;  // already finished: nothing to move
    if (!standby.Resume(*suspended)) {
      std::cerr << "standby rejected a migrated query\n";
      return 1;
    }
    std::cout << "query " << index << " migrated to the standby after "
              << suspended->steps << " steps\n";
    ++migrated;
  }

  // Note: result.index is the slot in the *reporting* scheduler — a
  // migrated query's result carries its standby-side index — so identify
  // queries by ticket position here.
  std::vector<BatchTaskResult> results;
  results.reserve(tickets.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    results.push_back(tickets[i].get());
    const BatchTaskResult& result = results.back();
    std::cout << "query " << i << ": " << result.frontier.size()
              << " Pareto plans, admitted at " << result.admit_millis
              << " ms, done " << result.elapsed_millis << " ms later"
              << (result.had_deadline
                      ? (result.deadline_hit ? " (deadline hit)"
                                             : " (deadline MISSED)")
                      : "")
              << "\n";
  }

  BatchReport report = service.Stop();
  standby.Stop();
  std::cout << "\n" << report.Summary();

  // The determinism contract: online EDF scheduling — including the two
  // migrated queries — must reproduce the blocking single-thread frontiers
  // bit for bit. Compare through the tickets: a migrated query's report
  // slot lives on the standby, but its future always has the real result.
  BatchConfig blocking;
  blocking.num_threads = 1;
  BatchReport reference = BatchOptimizer(blocking, make_rmq).Run(workload);
  bool identical = true;
  for (size_t i = 0; i < results.size(); ++i) {
    identical &= BitwiseEqual(results[i].frontier,
                              reference.tasks[i].frontier);
  }
  std::cout << "\nvs blocking single-thread reference (" << migrated
            << " migrated): frontiers "
            << (identical ? "bitwise identical" : "DIVERGED") << "\n";
  return identical ? 0 : 1;
}
