// Interactive multi-objective optimization: watch the Pareto frontier
// sharpen over time, rendered as an ASCII scatter plot.
//
//   $ ./examples/interactive_frontier [--tables=15] [--timeout-ms=600]
//
// The paper motivates anytime behavior with interactive optimization: a
// user watches the frontier of (time, buffer) tradeoffs and picks a plan
// when satisfied (Trummer & Koch, SIGMOD'15). This example snapshots RMQ's
// frontier at three points in time and plots all three, showing the
// coarse-to-fine refinement driven by the alpha schedule.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "core/rmq.h"
#include "harness/anytime.h"
#include "query/generator.h"

using namespace moqo;

namespace {

// Plots frontiers (log-log) as layered ASCII scatter; later snapshots
// overwrite earlier glyphs.
void Plot(const std::vector<std::vector<CostVector>>& snapshots,
          const std::vector<const char*>& labels) {
  constexpr int kW = 64;
  constexpr int kH = 20;
  double min_x = 1e300, max_x = 0, min_y = 1e300, max_y = 0;
  for (const auto& snap : snapshots) {
    for (const CostVector& c : snap) {
      min_x = std::min(min_x, c[0]);
      max_x = std::max(max_x, c[0]);
      min_y = std::min(min_y, c[1]);
      max_y = std::max(max_y, c[1]);
    }
  }
  if (max_x <= 0 || max_y <= 0) {
    std::cout << "(no plans to plot)\n";
    return;
  }
  auto xpos = [&](double v) {
    if (max_x <= min_x) return 0;
    return static_cast<int>((kW - 1) * (std::log(v) - std::log(min_x)) /
                            (std::log(max_x) - std::log(min_x) + 1e-12));
  };
  auto ypos = [&](double v) {
    if (max_y <= min_y) return 0;
    return static_cast<int>((kH - 1) * (std::log(v) - std::log(min_y)) /
                            (std::log(max_y) - std::log(min_y) + 1e-12));
  };
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  const char glyphs[] = {'.', 'o', '#'};
  for (size_t s = 0; s < snapshots.size(); ++s) {
    for (const CostVector& c : snapshots[s]) {
      int x = std::clamp(xpos(c[0]), 0, kW - 1);
      int y = std::clamp(ypos(c[1]), 0, kH - 1);
      grid[static_cast<size_t>(kH - 1 - y)][static_cast<size_t>(x)] =
          glyphs[s % 3];
    }
  }
  std::cout << "buffer (log)\n";
  for (const std::string& row : grid) std::cout << "  |" << row << "\n";
  std::cout << "  +" << std::string(kW, '-') << " time (log)\n  legend:";
  for (size_t s = 0; s < labels.size(); ++s) {
    std::cout << "  '" << glyphs[s % 3] << "' = " << labels[s];
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int tables = static_cast<int>(flags.GetInt("tables", 15));
  int64_t timeout_ms = flags.GetInt("timeout-ms", 600);

  Rng rng(11);
  GeneratorConfig gen;
  gen.num_tables = tables;
  gen.graph_type = GraphType::kChain;
  QueryPtr query = GenerateQuery(gen, &rng);
  CostModel cost_model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &cost_model);

  AnytimeRecorder recorder;
  RmqSession session;
  Rng opt_rng(3);
  recorder.Start();
  session.Begin(&factory, &opt_rng);
  std::vector<PlanPtr> final_plans = StepAndRecord(
      &session, Deadline::AfterMillis(timeout_ms), &recorder);

  std::vector<std::vector<CostVector>> snapshots = {
      recorder.FrontierAt(timeout_ms * 1000 / 20),
      recorder.FrontierAt(timeout_ms * 1000 / 4),
      recorder.FrontierAt(timeout_ms * 1000),
  };
  std::vector<const char*> labels = {"t/20", "t/4", "final"};
  std::cout << "Frontier refinement for a " << tables
            << "-table chain query over " << timeout_ms << " ms ("
            << session.stats().iterations << " iterations, "
            << final_plans.size() << " final tradeoffs):\n\n";
  Plot(snapshots, labels);

  std::cout << "\nSnapshot sizes:";
  for (size_t s = 0; s < snapshots.size(); ++s) {
    std::cout << " " << labels[s] << "=" << snapshots[s].size();
  }
  std::cout << " plans\n";
  return 0;
}
