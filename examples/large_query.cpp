// Scalability demo: optimize a 100-table query — one order of magnitude
// beyond what dynamic-programming multi-objective optimizers handle.
//
//   $ ./examples/large_query [--tables=100] [--timeout-ms=2000]
//
// Reproduces the paper's headline capability interactively: the DP
// approximation scheme produces nothing for queries of this size (it gives
// up on the subset lattice immediately), while RMQ returns a frontier of
// tradeoffs within a couple of seconds and reports the statistics of
// Figure 3 (climb path lengths, frontier size) along the way.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "baselines/dp.h"
#include "common/flags.h"
#include "core/rmq.h"
#include "query/generator.h"

using namespace moqo;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int tables = static_cast<int>(flags.GetInt("tables", 100));
  int64_t timeout_ms = flags.GetInt("timeout-ms", 2000);

  Rng rng(2016);
  GeneratorConfig gen;
  gen.num_tables = tables;
  gen.graph_type = GraphType::kCycle;
  QueryPtr query = GenerateQuery(gen, &rng);
  CostModel cost_model({Metric::kTime, Metric::kBuffer, Metric::kDisk});
  PlanFactory factory(query, &cost_model);

  std::cout << "Query: " << tables << "-table cycle, 3 cost metrics, "
            << timeout_ms << " ms budget\n\n";

  // The DP approximation scheme cannot touch this size.
  {
    DpConfig config;
    config.alpha = 1000.0;
    DpSession dp(config);
    Rng dp_rng(1);
    Stopwatch watch;
    dp.Begin(&factory, &dp_rng);
    std::vector<PlanPtr> plans =
        RunSession(&dp, Deadline::AfterMillis(timeout_ms));
    std::cout << "DP(1000): " << plans.size() << " plans after "
              << watch.ElapsedMillis() << " ms ("
              << (dp.finished() ? "finished" : "gave up — subset lattice "
                                               "infeasible at this size")
              << ")\n";
  }

  // RMQ handles it.
  {
    RmqSession rmq;
    Rng opt_rng(2);
    Stopwatch watch;
    rmq.Begin(&factory, &opt_rng);
    std::vector<PlanPtr> plans =
        RunSession(&rmq, Deadline::AfterMillis(timeout_ms));
    const RmqStats& stats = rmq.stats();
    std::cout << "RMQ:      " << plans.size() << " Pareto tradeoffs after "
              << watch.ElapsedMillis() << " ms, " << stats.iterations
              << " iterations\n\n";

    if (!stats.path_lengths.empty()) {
      std::vector<int> paths = stats.path_lengths;
      std::sort(paths.begin(), paths.end());
      double avg = std::accumulate(paths.begin(), paths.end(), 0.0) /
                   static_cast<double>(paths.size());
      std::cout << "Climb path lengths (Figure 3, left): median="
                << paths[paths.size() / 2] << " avg=" << avg
                << " max=" << paths.back() << "\n";
    }
    std::cout << "Partial plans inserted into the cache: "
              << stats.frontier_insertions << "\n\n";

    std::cout << "Frontier extremes:\n";
    const char* names[] = {"time", "buffer", "disk"};
    for (int m = 0; m < 3; ++m) {
      const PlanPtr* best = nullptr;
      for (const PlanPtr& p : plans) {
        if (best == nullptr || p->cost()[m] < (*best)->cost()[m]) best = &p;
      }
      if (best != nullptr) {
        std::cout << "  min-" << names[m] << ": time=" << (*best)->cost()[0]
                  << " buffer=" << (*best)->cost()[1]
                  << " disk=" << (*best)->cost()[2] << "\n";
      }
    }
  }
  return 0;
}
