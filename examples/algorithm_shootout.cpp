// Algorithm shootout on a single query: a miniature version of the
// paper's Figures 1/2 that runs in seconds.
//
//   $ ./examples/algorithm_shootout [--tables=30] [--metrics=3]
//                                   [--timeout-ms=500] [--graph=star]
//
// Runs every algorithm of the paper's evaluation (DP variants, SA, 2P,
// NSGA-II, II, RMQ) on one random query and prints each algorithm's
// approximation error over time against the combined reference frontier.
#include <iostream>

#include "common/flags.h"
#include "harness/anytime.h"
#include "harness/report.h"
#include "harness/suite.h"
#include "pareto/epsilon_indicator.h"
#include "query/generator.h"

using namespace moqo;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int tables = static_cast<int>(flags.GetInt("tables", 30));
  int metrics = static_cast<int>(flags.GetInt("metrics", 3));
  int64_t timeout_ms = flags.GetInt("timeout-ms", 500);
  std::string graph_name = flags.GetString("graph", "star");

  GraphType graph = GraphType::kStar;
  if (graph_name == "chain") graph = GraphType::kChain;
  if (graph_name == "cycle") graph = GraphType::kCycle;
  if (graph_name == "random") graph = GraphType::kRandom;

  Rng rng(99);
  GeneratorConfig gen;
  gen.num_tables = tables;
  gen.graph_type = graph;
  QueryPtr query = GenerateQuery(gen, &rng);

  std::vector<Metric> ms = {Metric::kTime, Metric::kBuffer, Metric::kDisk};
  ms.resize(static_cast<size_t>(std::min(metrics, 3)));
  CostModel cost_model(ms);
  PlanFactory factory(query, &cost_model);

  std::cout << "Shootout: " << graph_name << " query, " << tables
            << " tables, " << ms.size() << " metrics, " << timeout_ms
            << " ms per algorithm\n\n";

  std::vector<AlgorithmSpec> suite = StandardSuite();
  std::vector<AnytimeRecorder> recorders(suite.size());
  for (size_t a = 0; a < suite.size(); ++a) {
    std::unique_ptr<Optimizer> opt = suite[a].make();
    Rng alg_rng(1234 + a);
    recorders[a].Start();
    std::vector<PlanPtr> final_plans =
        opt->Optimize(&factory, &alg_rng, Deadline::AfterMillis(timeout_ms),
                      recorders[a].MakeCallback());
    recorders[a].RecordFinal(final_plans);
    std::cerr << "  ran " << suite[a].name << "\n";
  }

  std::vector<std::vector<CostVector>> finals;
  for (const AnytimeRecorder& rec : recorders) {
    finals.push_back(rec.FinalFrontier());
  }
  std::vector<CostVector> reference = UnionFrontier(finals);
  std::cout << "reference frontier: " << reference.size() << " points\n\n";

  std::cout << "alpha approximation error over time (lower is better):\n";
  printf("%12s", "time_ms");
  for (const AlgorithmSpec& spec : suite) printf("%14s", spec.name.c_str());
  printf("\n");
  for (int c = 1; c <= 5; ++c) {
    int64_t t = timeout_ms * 1000 * c / 5;
    printf("%12lld", static_cast<long long>(t / 1000));
    for (size_t a = 0; a < suite.size(); ++a) {
      double alpha = AlphaError(recorders[a].FrontierAt(t), reference);
      printf("%14s", FormatAlpha(alpha).c_str());
    }
    printf("\n");
  }
  return 0;
}
