// Supervised failover demo: a process-per-shard deployment that survives
// kill -9 without losing a query or changing a result.
//
//   $ ./examples/failover_service
//
// A ShardSupervisor spawns two real shard server processes (`shardd`,
// the same binary a production deployment would run per machine), wires
// them into a ShardRouter next to one in-process shard, and streams
// queries at the fleet. Mid-stream, one shard process is SIGKILLed. The
// supervisor detects the death, reaps the child, and replays the victim's
// in-flight queries — from their last periodic checkpoint snapshot —
// onto the survivors, while the futures handed out by the original
// Submit() calls keep delivering. Exits non-zero if any future is lost
// or any frontier diverges from a blocking single-thread reference.
#include <signal.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/shard_router.h"
#include "service/shard_supervisor.h"

using namespace moqo;

int main() {
  constexpr int kIterations = 40;
  GeneratorConfig generator;
  generator.num_tables = 6;
  std::vector<BatchTask> workload =
      GenerateBatch(/*n=*/16, generator, /*master_seed=*/2016,
                    /*deadline_micros=*/0);

  OptimizerFactory make_rmq = [] {
    RmqConfig config;
    config.max_iterations = kIterations;
    return std::make_unique<Rmq>(config);
  };

  // The bitwise yardstick: every query, single-threaded, undisturbed.
  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, make_rmq).Run(workload);

  // One in-process shard plus two shard server processes.
  ShardRouterConfig config;
  config.num_shards = 1;
  config.shard.num_threads = 2;
  config.shard.steps_per_slice = 2;
  ShardRouter router(config, make_rmq);
  router.Start();

  ShardSupervisorConfig supervision;
  supervision.server_binary = MOQO_SHARDD_PATH;
  supervision.server_args = {"--iterations=" + std::to_string(kIterations),
                             "--steps-per-slice=2", "--snapshot-every=2",
                             "--heartbeat-ms=100"};
  ShardSupervisor supervisor(supervision, &router);
  size_t shard_a = supervisor.SpawnShard();
  size_t shard_b = supervisor.SpawnShard();
  if (shard_a == static_cast<size_t>(-1) ||
      shard_b == static_cast<size_t>(-1)) {
    std::cerr << "could not spawn shard processes\n";
    return 1;
  }
  std::cout << "spawned shardd pids " << supervisor.ShardPid(shard_a)
            << " and " << supervisor.ShardPid(shard_b) << "\n";

  std::vector<std::future<BatchTaskResult>> tickets;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto ticket = router.Submit(workload[i]);
    if (!ticket.has_value()) {
      std::cerr << "query " << i << " rejected\n";
      return 1;
    }
    tickets.push_back(std::move(*ticket));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (i + 1 == workload.size() / 2) {
      std::cout << "kill -9 " << supervisor.ShardPid(shard_a)
                << " (shard " << shard_a << ") with queries in flight\n";
      supervisor.KillShard(shard_a, SIGKILL);
      if (!supervisor.WaitForFailovers(1, /*timeout_ms=*/30000)) {
        std::cerr << "failover never completed\n";
        return 1;
      }
      std::cout << "failover complete: " << router.failover_replayed()
                << " in-flight quer(ies) replayed onto survivors, "
                << router.failover_checkpointed()
                << " from mid-run snapshots (" << router.failover_resume_steps()
                << " optimizer steps not re-run)\n";
    }
  }
  router.Drain();

  bool ok = true;
  for (size_t i = 0; i < tickets.size(); ++i) {
    try {
      BatchTaskResult result = tickets[i].get();
      bool identical =
          BitwiseEqual(result.frontier, reference.tasks[i].frontier);
      if (!identical) ok = false;
      std::cout << "query " << i << ": " << result.frontier.size()
                << " plan(s), " << (identical ? "identical" : "DIVERGED")
                << "\n";
    } catch (const std::exception& e) {
      std::cout << "query " << i << ": LOST (" << e.what() << ")\n";
      ok = false;
    }
  }
  router.Stop();
  std::cout << (ok ? "\nall queries survived the kill bitwise-identically\n"
                   : "\nFAILURE\n");
  return ok ? 0 : 1;
}
