// Batch service demo: optimize a workload of generated queries concurrently
// on a thread pool and compare against a single-threaded reference run.
//
//   $ ./examples/batch_service
//
// Shows the service-layer API: GenerateBatch fans deterministic per-task
// seeds out of one master seed, BatchOptimizer runs any Optimizer over the
// batch with a fixed-size thread pool, and CompareToReference checks that
// parallel results match the single-thread run bitwise (same seeds + same
// iteration budgets => same frontiers, on any thread count).
#include <iostream>
#include <memory>

#include "core/rmq.h"
#include "service/batch_optimizer.h"

using namespace moqo;

int main() {
  // A workload of 12 star-shaped 8-table queries, each optimized for up to
  // 60 RMQ iterations under a 1 s wall-clock window (wide enough that the
  // iteration budget, not the clock, ends every task — the precondition
  // for bitwise-identical frontiers across runs).
  GeneratorConfig generator;
  generator.num_tables = 8;
  generator.graph_type = GraphType::kStar;
  std::vector<BatchTask> workload =
      GenerateBatch(/*n=*/12, generator, /*master_seed=*/2016,
                    /*deadline_micros=*/1000 * 1000);

  OptimizerFactory make_rmq = [] {
    RmqConfig config;
    config.max_iterations = 60;
    return std::make_unique<Rmq>(config);
  };

  // Single-thread reference run, then the same batch on four workers.
  BatchConfig single;
  single.num_threads = 1;
  BatchReport reference = BatchOptimizer(single, make_rmq).Run(workload);

  BatchConfig service;
  service.num_threads = 4;
  BatchReport parallel = BatchOptimizer(service, make_rmq).Run(workload);

  std::cout << "reference " << reference.Summary();
  std::cout << "parallel  " << parallel.Summary() << "\n";

  std::cout << "per-query frontiers (4 threads):\n";
  for (const BatchTaskResult& task : parallel.tasks) {
    std::cout << "  query " << task.index << ": " << task.frontier.size()
              << " Pareto plans in " << task.optimize_millis << " ms\n";
  }

  BatchComparison cmp = CompareToReference(reference, parallel);
  std::cout << "\nvs single-thread reference: speedup " << cmp.speedup
            << "x, frontiers "
            << (cmp.identical ? "bitwise identical" : "DIVERGED")
            << ", epsilon-indicator max alpha " << cmp.max_alpha << "\n";
  return cmp.identical ? 0 : 1;
}
