// Quickstart: optimize a small query with RMQ and print its Pareto
// frontier of cost tradeoffs.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface in ~60 lines: build a catalog
// and join graph, pick cost metrics, run the optimizer, inspect plans.
#include <iostream>

#include "core/rmq.h"
#include "query/query.h"

using namespace moqo;

int main() {
  // 1. Describe the database: four tables with row counts, row widths, and
  //    index availability.
  Catalog catalog;
  int orders = catalog.AddTable({50000.0, 120.0, /*has_index=*/true});
  int customers = catalog.AddTable({5000.0, 200.0, true});
  int items = catalog.AddTable({200000.0, 80.0, false});
  int regions = catalog.AddTable({50.0, 60.0, true});

  // 2. Describe the query: which tables join with which selectivity.
  JoinGraph graph(catalog.NumTables());
  graph.AddEdge(orders, customers, 0.0002);  // orders.cust_id = customers.id
  graph.AddEdge(orders, items, 0.00002);     // items.order_id = orders.id
  graph.AddEdge(customers, regions, 0.02);   // customers.region = regions.id
  QueryPtr query = std::make_shared<Query>(catalog, graph);

  // 3. Pick the cost metrics to trade off: execution time vs buffer space.
  CostModel cost_model({Metric::kTime, Metric::kBuffer});
  PlanFactory factory(query, &cost_model);

  // 4. Optimize for 200 milliseconds with the paper's RMQ algorithm. A
  //    session can also be stepped one iteration at a time (see the README
  //    section on the incremental API); RunSession drives it to the
  //    deadline in one call.
  RmqSession session;
  Rng rng(/*seed=*/2016);
  session.Begin(&factory, &rng);
  std::vector<PlanPtr> frontier =
      RunSession(&session, Deadline::AfterMillis(200));

  // 5. Inspect the Pareto frontier: each plan realizes a distinct optimal
  //    tradeoff between the two metrics.
  std::cout << "Pareto frontier after " << session.stats().iterations
            << " iterations (" << frontier.size() << " plans):\n\n";
  std::cout << "  time        buffer      plan\n";
  for (const PlanPtr& plan : frontier) {
    std::cout << "  " << plan->cost()[0] << "\t" << plan->cost()[1] << "\t"
              << plan->ToString() << "\n";
  }
  std::cout << "\nLegend: HJ=hash join, SM=sort-merge, BNL=block nested "
               "loop, NL=nested loop;\n        s/m/l = small/medium/large "
               "buffer variant; Ti = index scan of table i.\n";
  return 0;
}
