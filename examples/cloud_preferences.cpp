// Cloud scenario: pick a plan from the Pareto frontier using user
// preferences (cost weights and bounds), the selection model of the
// paper's predecessor (Trummer & Koch, SIGMOD'14).
//
//   $ ./examples/cloud_preferences [--tables=20] [--timeout-ms=500]
//
// In a cloud setting users trade execution time against resource
// consumption (here: buffer memory rented from the provider and temp-disk
// footprint). The example optimizes a 20-table query once, then shows how
// different user preferences select different plans *from the same
// frontier* without re-optimizing:
//
//   * a latency-critical dashboard (weight time heavily, no bounds),
//   * a batch report under a strict memory quota (bound on buffer),
//   * a balanced default (equal weights).
#include <cmath>
#include <iostream>
#include <limits>

#include "common/flags.h"
#include "core/rmq.h"
#include "query/generator.h"

using namespace moqo;

namespace {

// Returns the frontier plan minimizing the weighted sum of normalized
// costs among the plans satisfying all bounds; nullptr if none qualifies.
PlanPtr SelectPlan(const std::vector<PlanPtr>& frontier,
                   const std::vector<double>& weights,
                   const std::vector<double>& bounds) {
  // Normalize each metric by its minimum over the frontier so weights act
  // on comparable scales.
  int l = frontier.empty() ? 0 : frontier.front()->cost().size();
  std::vector<double> mins(static_cast<size_t>(l),
                           std::numeric_limits<double>::infinity());
  for (const PlanPtr& p : frontier) {
    for (int i = 0; i < l; ++i) {
      mins[static_cast<size_t>(i)] =
          std::min(mins[static_cast<size_t>(i)], p->cost()[i]);
    }
  }
  PlanPtr best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const PlanPtr& p : frontier) {
    bool ok = true;
    for (int i = 0; i < l; ++i) {
      if (p->cost()[i] > bounds[static_cast<size_t>(i)]) ok = false;
    }
    if (!ok) continue;
    double score = 0.0;
    for (int i = 0; i < l; ++i) {
      score += weights[static_cast<size_t>(i)] * p->cost()[i] /
               std::max(mins[static_cast<size_t>(i)], 1.0);
    }
    if (score < best_score) {
      best_score = score;
      best = p;
    }
  }
  return best;
}

void Report(const char* persona, const PlanPtr& plan) {
  std::cout << persona << "\n";
  if (plan == nullptr) {
    std::cout << "  no plan satisfies the bounds -> relax the quota or "
                 "optimize longer\n\n";
    return;
  }
  std::cout << "  time=" << plan->cost()[0] << " buffer=" << plan->cost()[1]
            << " disk=" << plan->cost()[2] << "\n  " << plan->ToString()
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int tables = static_cast<int>(flags.GetInt("tables", 20));
  int64_t timeout_ms = flags.GetInt("timeout-ms", 500);

  // A star query: fact table joined with many dimensions — the classic
  // cloud analytics shape.
  Rng rng(7);
  GeneratorConfig gen;
  gen.num_tables = tables;
  gen.graph_type = GraphType::kStar;
  QueryPtr query = GenerateQuery(gen, &rng);

  CostModel cost_model({Metric::kTime, Metric::kBuffer, Metric::kDisk});
  PlanFactory factory(query, &cost_model);

  Rmq optimizer;
  Rng opt_rng(42);
  std::vector<PlanPtr> frontier = optimizer.Optimize(
      &factory, &opt_rng, Deadline::AfterMillis(timeout_ms), nullptr);
  std::cout << "Optimized a " << tables << "-table star query for "
            << timeout_ms << " ms: " << frontier.size()
            << " Pareto tradeoffs found.\n\n";

  // Frontier extremes per metric, to show the spread of tradeoffs.
  const char* names[] = {"time", "buffer", "disk"};
  for (int m = 0; m < 3; ++m) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (const PlanPtr& p : frontier) {
      lo = std::min(lo, p->cost()[m]);
      hi = std::max(hi, p->cost()[m]);
    }
    std::cout << "  " << names[m] << " ranges from " << lo << " to " << hi
              << " across the frontier\n";
  }
  std::cout << "\n";

  double inf = std::numeric_limits<double>::infinity();

  // Persona 1: latency above everything.
  Report("Dashboard (minimize time, resources are cheap):",
         SelectPlan(frontier, {1.0, 0.01, 0.01}, {inf, inf, inf}));

  // Persona 2: strict memory quota (cheapest cloud tier).
  double quota = 0.0;
  for (const PlanPtr& p : frontier) quota = std::max(quota, p->cost()[1]);
  quota *= 0.25;  // only a quarter of the worst-case memory is available
  Report("Batch report (buffer quota = 25% of frontier max):",
         SelectPlan(frontier, {1.0, 0.1, 0.1}, {inf, quota, inf}));

  // Persona 3: balanced.
  Report("Balanced default (equal weights):",
         SelectPlan(frontier, {1.0, 1.0, 1.0}, {inf, inf, inf}));
  return 0;
}
