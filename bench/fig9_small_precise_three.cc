// Figure 9 (appendix): PRECISE approximation error for small queries and
// THREE cost metrics (otherwise like Figure 8). In the paper, RMQ is the
// only randomized algorithm reaching a perfect approximation for 8 tables
// and three metrics.
#include "fig_common.h"

int main(int argc, char** argv) {
  moqo::Flags flags(argc, argv);
  moqo::ExperimentConfig config;
  config.title =
      "Figure 9: precise alpha (DP(1.01) reference), 3 metrics, clip 2";
  config.num_metrics = 3;
  config.reference = moqo::ReferenceMode::kDpReference;
  config.dp_reference_alpha = 1.01;
  config.clip_alpha = 2.0;
  if (moqo::bench::PaperScale(flags)) {
    config.sizes = {4, 8};
    config.queries_per_point = 10;
    config.timeout_ms = 30000;
    config.num_checkpoints = 10;
    config.dp_reference_timeout_ms = 60000;
  } else {
    config.sizes = {4, 8};
    config.queries_per_point = 2;
    config.timeout_ms = 1000;
    config.num_checkpoints = 5;
    config.dp_reference_timeout_ms = 10000;
  }
  moqo::bench::ApplyFlags(flags, &config);
  return moqo::bench::RunFigure(config, moqo::StandardSuite(), flags);
}
