// Cooperative multiplexing throughput: M iteration-bounded queries served
// as interleaved optimizer sessions on N worker threads, M >> N.
//
// The batch service runs each query to completion on one worker, so a
// query admitted behind the batch waits for a free slot before making any
// progress. The cooperative scheduler steps all M sessions round-robin at
// slice granularity: every query starts optimizing almost immediately and
// per-query completion latency is bounded by total_work / threads instead
// of queue position. Because each task's step sequence depends only on its
// own seed, the per-task frontiers must stay bitwise identical to a
// single-thread blocking reference run — the session-API determinism
// contract, verified end to end here.
//
//   $ ./bench/multiplex_throughput [--queries=64] [--tables=8]
//         [--iterations=40] [--threads=8] [--steps-per-slice=1]
//         [--seed=2016] [--min-speedup=0] [--json=out.json]
//
// Prints the blocking single-thread reference, the single-thread
// cooperative run, and the multi-thread cooperative run, with per-query
// completion-latency percentiles (measured from admission), then a
// PASS/FAIL verdict on bitwise-identical frontiers everywhere. The work
// here is compute-bound, so wall-clock speedup tracks the physical cores
// available; pass --min-speedup to additionally gate the verdict on it
// when the host has the cores (e.g. --min-speedup=3 on 8 cores).
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/flags.h"
#include "core/rmq.h"
#include "service/batch_optimizer.h"
#include "service/cooperative_scheduler.h"

using namespace moqo;

namespace {

struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

LatencyStats Latencies(const BatchReport& report) {
  std::vector<double> elapsed;
  elapsed.reserve(report.tasks.size());
  LatencyStats stats;
  for (const BatchTaskResult& task : report.tasks) {
    elapsed.push_back(task.elapsed_millis);
    stats.max = std::max(stats.max, task.elapsed_millis);
  }
  stats.p50 = Percentile(elapsed, 0.50);
  stats.p95 = Percentile(elapsed, 0.95);
  return stats;
}

void PrintRow(const char* label, const BatchReport& report,
              const BatchComparison& cmp) {
  LatencyStats lat = Latencies(report);
  std::printf("%-22s %8d %12.1f %9.2fx %10s %11.1f %11.1f %11.1f\n", label,
              report.num_threads, report.wall_millis, cmp.speedup,
              cmp.identical ? "yes" : "NO", lat.p50, lat.p95, lat.max);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int queries = static_cast<int>(flags.GetInt("queries", 64));
  const int tables = static_cast<int>(flags.GetInt("tables", 8));
  const int iterations = static_cast<int>(flags.GetInt("iterations", 40));
  const int threads = static_cast<int>(flags.GetInt("threads", 8));
  const int steps_per_slice =
      static_cast<int>(flags.GetInt("steps-per-slice", 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2016));
  const double min_speedup = flags.GetDouble("min-speedup", 0.0);
  const std::string json_path = flags.GetString("json", "");

  // Iteration-bounded tasks without wall-clock deadlines: the determinism
  // contract only holds when no budget can cut a step short.
  GeneratorConfig generator;
  generator.num_tables = tables;
  std::vector<BatchTask> tasks =
      GenerateBatch(queries, generator, seed, /*deadline_micros=*/0);

  OptimizerFactory make_rmq = [iterations] {
    RmqConfig config;
    config.max_iterations = iterations;
    return std::make_unique<Rmq>(config);
  };

  std::printf(
      "multiplex_throughput: %d queries x %d tables, %d RMQ iterations, "
      "%d steps/slice\n\n",
      queries, tables, iterations, steps_per_slice);
  std::printf("%-22s %8s %12s %10s %10s %11s %11s %11s\n", "mode", "threads",
              "wall_ms", "speedup", "identical", "lat_p50_ms", "lat_p95_ms",
              "lat_max_ms");

  // Blocking single-thread reference: the ground truth for both frontier
  // bits and wall clock.
  BatchConfig blocking;
  blocking.num_threads = 1;
  BatchReport reference = BatchOptimizer(blocking, make_rmq).Run(tasks);
  PrintRow("blocking reference", reference,
           CompareToReference(reference, reference));

  // Cooperative on one thread: pure multiplexing overhead, same bits.
  CooperativeConfig single;
  single.num_threads = 1;
  single.steps_per_slice = steps_per_slice;
  BatchReport coop_single =
      CooperativeScheduler(single, make_rmq).Run(tasks);
  BatchComparison cmp_single = CompareToReference(reference, coop_single);
  PrintRow("cooperative", coop_single, cmp_single);

  // Cooperative on N threads: M sessions multiplexed over the pool.
  CooperativeConfig multi;
  multi.num_threads = threads;
  multi.steps_per_slice = steps_per_slice;
  BatchReport coop_multi = CooperativeScheduler(multi, make_rmq).Run(tasks);
  BatchComparison cmp_multi = CompareToReference(reference, coop_multi);
  PrintRow("cooperative", coop_multi, cmp_multi);

  const bool identical = cmp_single.identical && cmp_multi.identical;
  const bool pass = identical && cmp_multi.speedup >= min_speedup;
  std::printf(
      "\n%s: %.2fx speedup at %d threads, frontiers %s vs blocking "
      "single-thread reference\n",
      pass ? "PASS" : "FAIL", cmp_multi.speedup, threads,
      identical ? "bitwise identical" : "DIVERGED");

  if (!json_path.empty()) {
    LatencyStats lat = Latencies(coop_multi);
    std::ofstream out(json_path);
    bench::JsonWriter w(out);
    bench::BeginReport(&w, "multiplex_throughput");
    w.BeginObject("config");
    w.Field("queries", queries);
    w.Field("tables", tables);
    w.Field("iterations", iterations);
    w.Field("threads", threads);
    w.Field("steps_per_slice", steps_per_slice);
    w.Field("seed", static_cast<int64_t>(seed));
    w.Field("min_speedup", min_speedup);
    w.EndObject();
    w.BeginObject("metrics");
    w.Field("blocking_wall_ms", reference.wall_millis);
    w.Field("coop_single_wall_ms", coop_single.wall_millis);
    w.Field("coop_multi_wall_ms", coop_multi.wall_millis);
    w.Field("coop_multi_speedup", cmp_multi.speedup);
    w.Field("coop_multi_qps",
            coop_multi.wall_millis > 0.0
                ? 1000.0 * queries / coop_multi.wall_millis
                : 0.0);
    w.Field("lat_p50_ms", lat.p50);
    w.Field("lat_p95_ms", lat.p95);
    w.Field("lat_max_ms", lat.max);
    w.EndObject();
    w.BeginObject("gates");
    w.Field("frontiers_identical", identical);
    w.EndObject();
    w.Field("pass", pass);
    w.EndObject();
    out << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
